// Package trace provides trajectory types, discretisation and CSV I/O for
// mobility data: the glue between raw (x, y, t) traces — such as the
// Geolife-style records of §V-A — and the discrete state sequences the
// Markov trainer and the PriSTE release loop consume.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"priste/internal/grid"
)

// Point is one raw trajectory record in user units (e.g. km on the
// experiment map) at an integer timestamp.
type Point struct {
	X, Y float64
	T    int
}

// Raw is a raw continuous trajectory ordered by time.
type Raw []Point

// Discretize maps a raw trajectory onto grid states, one state per point,
// clamping off-map points to the boundary.
func Discretize(g *grid.Grid, raw Raw) []int {
	out := make([]int, len(raw))
	for i, p := range raw {
		out[i] = g.Snap(p.X, p.Y)
	}
	return out
}

// WriteStates writes state trajectories as CSV, one trajectory per line.
func WriteStates(w io.Writer, trajs [][]int) error {
	bw := bufio.NewWriter(w)
	for _, traj := range trajs {
		for i, s := range traj {
			if i > 0 {
				if err := bw.WriteByte(','); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.Itoa(s)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadStates parses CSV state trajectories written by WriteStates. Blank
// lines and lines starting with '#' are skipped.
func ReadStates(r io.Reader) ([][]int, error) {
	var out [][]int
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Split(text, ",")
		traj := make([]int, 0, len(fields))
		for _, f := range fields {
			v, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: %w", line, err)
			}
			if v < 0 {
				return nil, fmt.Errorf("trace: line %d: negative state %d", line, v)
			}
			traj = append(traj, v)
		}
		out = append(out, traj)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// WriteRaw writes raw trajectories as CSV records "t,x,y", trajectories
// separated by blank lines (a simplified .plt-style format).
func WriteRaw(w io.Writer, trajs []Raw) error {
	bw := bufio.NewWriter(w)
	for k, traj := range trajs {
		if k > 0 {
			if err := bw.WriteByte('\n'); err != nil {
				return err
			}
		}
		for _, p := range traj {
			if _, err := fmt.Fprintf(bw, "%d,%g,%g\n", p.T, p.X, p.Y); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadRaw parses the format written by WriteRaw.
func ReadRaw(r io.Reader) ([]Raw, error) {
	var out []Raw
	var cur Raw
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	flush := func() {
		if len(cur) > 0 {
			out = append(out, cur)
			cur = nil
		}
	}
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			flush()
			continue
		}
		if strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Split(text, ",")
		if len(fields) != 3 {
			return nil, fmt.Errorf("trace: line %d: want t,x,y", line)
		}
		t, err := strconv.Atoi(strings.TrimSpace(fields[0]))
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		x, err := strconv.ParseFloat(strings.TrimSpace(fields[1]), 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		y, err := strconv.ParseFloat(strings.TrimSpace(fields[2]), 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		cur = append(cur, Point{X: x, Y: y, T: t})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	flush()
	return out, nil
}
