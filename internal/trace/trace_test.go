package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"priste/internal/grid"
)

func TestDiscretize(t *testing.T) {
	g := grid.MustNew(3, 3, 1)
	raw := Raw{
		{X: 0.5, Y: 0.5, T: 0},
		{X: 2.5, Y: 2.5, T: 1},
		{X: -4, Y: 0.5, T: 2}, // clamps to left edge
	}
	got := Discretize(g, raw)
	want := []int{0, 8, 0}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Discretize = %v want %v", got, want)
	}
	if out := Discretize(g, nil); len(out) != 0 {
		t.Fatal("empty input should give empty output")
	}
}

func TestStatesRoundTrip(t *testing.T) {
	trajs := [][]int{{0, 1, 2}, {5}, {3, 3, 3, 3}}
	var buf bytes.Buffer
	if err := WriteStates(&buf, trajs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadStates(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, trajs) {
		t.Fatalf("round trip = %v want %v", got, trajs)
	}
}

func TestReadStatesSkipsCommentsAndBlanks(t *testing.T) {
	in := "# header\n\n1,2,3\n\n# tail\n4,5\n"
	got, err := ReadStates(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{{1, 2, 3}, {4, 5}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("= %v", got)
	}
}

func TestReadStatesErrors(t *testing.T) {
	if _, err := ReadStates(strings.NewReader("1,x,3\n")); err == nil {
		t.Error("non-numeric accepted")
	}
	if _, err := ReadStates(strings.NewReader("1,-2\n")); err == nil {
		t.Error("negative state accepted")
	}
}

func TestRawRoundTrip(t *testing.T) {
	trajs := []Raw{
		{{X: 0.5, Y: 1.25, T: 0}, {X: 2, Y: 3, T: 1}},
		{{X: -1, Y: 0, T: 5}},
	}
	var buf bytes.Buffer
	if err := WriteRaw(&buf, trajs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRaw(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, trajs) {
		t.Fatalf("round trip = %v want %v", got, trajs)
	}
}

func TestReadRawErrors(t *testing.T) {
	if _, err := ReadRaw(strings.NewReader("1,2\n")); err == nil {
		t.Error("short record accepted")
	}
	if _, err := ReadRaw(strings.NewReader("x,2,3\n")); err == nil {
		t.Error("bad timestamp accepted")
	}
	if _, err := ReadRaw(strings.NewReader("1,x,3\n")); err == nil {
		t.Error("bad x accepted")
	}
	if _, err := ReadRaw(strings.NewReader("1,2,y\n")); err == nil {
		t.Error("bad y accepted")
	}
}

func TestReadRawComments(t *testing.T) {
	in := "# geolife-like\n0,1,1\n1,2,2\n\n0,5,5\n"
	got, err := ReadRaw(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || len(got[0]) != 2 || len(got[1]) != 1 {
		t.Fatalf("structure = %v", got)
	}
}
