package attack

import (
	"math"
	"math/rand"
	"testing"

	"priste/internal/core"
	"priste/internal/event"
	"priste/internal/grid"
	"priste/internal/lppm"
	"priste/internal/markov"
	"priste/internal/mat"
	"priste/internal/world"
)

type fixture struct {
	g     *grid.Grid
	chain *markov.Chain
	pi    mat.Vector
	adv   *Adversary
	ev    event.Event
}

func newFixture(t *testing.T) fixture {
	t.Helper()
	g := grid.MustNew(4, 4, 1)
	chain, err := markov.GaussianChain(g, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	pi := markov.Uniform(16)
	adv, err := NewAdversary(chain, pi, g)
	if err != nil {
		t.Fatal(err)
	}
	region, err := grid.RegionRect(g, 0, 0, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	return fixture{g: g, chain: chain, pi: pi, adv: adv,
		ev: event.MustNewPresence(region, 2, 4)}
}

func TestNewAdversaryValidation(t *testing.T) {
	f := newFixture(t)
	if _, err := NewAdversary(f.chain, markov.Uniform(4), f.g); err == nil {
		t.Error("pi mismatch accepted")
	}
	if _, err := NewAdversary(f.chain, mat.Ones(16), f.g); err == nil {
		t.Error("non-distribution accepted")
	}
	g2 := grid.MustNew(2, 2, 1)
	if _, err := NewAdversary(f.chain, markov.Uniform(16), g2); err == nil {
		t.Error("grid mismatch accepted")
	}
	if _, err := NewAdversary(f.chain, markov.Uniform(16), nil); err != nil {
		t.Errorf("nil grid should be allowed: %v", err)
	}
}

// plmColumns releases a trajectory through a bare PLM (no PriSTE) and
// returns the realised emission columns.
func plmColumns(t *testing.T, f fixture, rng *rand.Rand, truth []int, alpha float64) []mat.Vector {
	t.Helper()
	plm := lppm.NewPlanarLaplace(f.g)
	em, err := plm.Emission(alpha)
	if err != nil {
		t.Fatal(err)
	}
	cols := make([]mat.Vector, len(truth))
	for i, u := range truth {
		o, err := lppm.SampleRow(rng, em, u)
		if err != nil {
			t.Fatal(err)
		}
		cols[i] = em.Col(o)
	}
	return cols
}

// TestInferEventUnprotectedLeaks: against a bare high-budget PLM, a guilty
// trajectory should push the adversary's posterior well above the prior.
func TestInferEventUnprotectedLeaks(t *testing.T) {
	f := newFixture(t)
	rng := rand.New(rand.NewSource(3))
	// A guilty trajectory camped inside the sensitive region during the
	// window.
	truth := []int{5, 1, 0, 0, 1, 5, 6, 7}
	cols := plmColumns(t, f, rng, truth, 4.0)
	inf, err := f.adv.InferEvent(f.ev, cols)
	if err != nil {
		t.Fatal(err)
	}
	if inf.Prior <= 0 || inf.Prior >= 1 {
		t.Fatalf("prior = %v", inf.Prior)
	}
	final := inf.Posterior[len(inf.Posterior)-1]
	if final < inf.Prior+0.2 {
		t.Fatalf("posterior %v did not move from prior %v", final, inf.Prior)
	}
	if !inf.Guess {
		t.Fatal("adversary should decide the event happened")
	}
	if inf.OddsShift < 2 {
		t.Fatalf("odds shift %v too small for an unprotected release", inf.OddsShift)
	}
}

// TestInferEventProtectedBounded: through PriSTE, the same attack's odds
// shift must respect e^ε.
func TestInferEventProtectedBounded(t *testing.T) {
	f := newFixture(t)
	const eps = 0.5
	rng := rand.New(rand.NewSource(5))
	fw, err := core.New(lppm.NewPlanarLaplace(f.g), world.NewHomogeneous(f.chain),
		[]event.Event{f.ev}, core.DefaultConfig(eps, 4.0), rng)
	if err != nil {
		t.Fatal(err)
	}
	truth := []int{5, 1, 0, 0, 1, 5, 6, 7}
	results, err := fw.Run(truth)
	if err != nil {
		t.Fatal(err)
	}
	plm := lppm.NewPlanarLaplace(f.g)
	cols := make([]mat.Vector, len(results))
	for i, r := range results {
		if r.Uniform {
			u := mat.NewVector(16)
			for j := range u {
				u[j] = 1.0 / 16
			}
			cols[i] = u
			continue
		}
		em, err := plm.Emission(r.Alpha)
		if err != nil {
			t.Fatal(err)
		}
		cols[i] = em.Col(r.Obs)
	}
	inf, err := f.adv.InferEvent(f.ev, cols)
	if err != nil {
		t.Fatal(err)
	}
	if inf.OddsShift > math.Exp(eps)*(1+1e-6) {
		t.Fatalf("odds shift %v exceeds e^eps = %v", inf.OddsShift, math.Exp(eps))
	}
}

func TestInferLocations(t *testing.T) {
	f := newFixture(t)
	rng := rand.New(rand.NewSource(7))
	truth := f.chain.SamplePath(rng, f.pi, 10)
	// High budget: the adversary should localise well.
	cols := plmColumns(t, f, rng, truth, 6.0)
	sharp, err := f.adv.InferLocations(cols, truth)
	if err != nil {
		t.Fatal(err)
	}
	// Low budget: localisation degrades.
	cols = plmColumns(t, f, rng, truth, 0.1)
	blurry, err := f.adv.InferLocations(cols, truth)
	if err != nil {
		t.Fatal(err)
	}
	if sharp.HitRate <= blurry.HitRate-0.1 {
		t.Fatalf("sharp hit rate %v should beat blurry %v", sharp.HitRate, blurry.HitRate)
	}
	if math.IsNaN(sharp.MeanError) {
		t.Fatal("mean error missing despite grid")
	}
	if sharp.MeanError > blurry.MeanError+0.5 {
		t.Fatalf("sharp error %v should not exceed blurry %v", sharp.MeanError, blurry.MeanError)
	}
	if _, err := f.adv.InferLocations(cols, truth[:3]); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := f.adv.InferLocations(nil, nil); err == nil {
		t.Error("empty observations accepted")
	}
}

func TestRecoverTrajectory(t *testing.T) {
	f := newFixture(t)
	rng := rand.New(rand.NewSource(9))
	truth := f.chain.SamplePath(rng, f.pi, 12)
	cols := plmColumns(t, f, rng, truth, 6.0)
	path, acc, err := f.adv.RecoverTrajectory(cols, truth)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != len(truth) {
		t.Fatalf("path length %d", len(path))
	}
	if acc < 0.5 {
		t.Fatalf("high-budget recovery accuracy %v too low", acc)
	}
	if _, _, err := f.adv.RecoverTrajectory(cols[:2], truth); err == nil {
		t.Error("length mismatch accepted")
	}
}

// TestAdversaryWithoutGrid: distance metrics degrade gracefully.
func TestAdversaryWithoutGrid(t *testing.T) {
	f := newFixture(t)
	adv, err := NewAdversary(f.chain, f.pi, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	truth := f.chain.SamplePath(rng, f.pi, 5)
	cols := plmColumns(t, f, rng, truth, 2)
	inf, err := adv.InferLocations(cols, truth)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(inf.MeanError) {
		t.Fatal("expected NaN mean error without a grid")
	}
}
