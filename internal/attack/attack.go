// Package attack simulates the inference adversary of the paper's threat
// model (§II, §VI-B): a Bayesian observer who knows the user's mobility
// pattern (the Markov chain), the mechanism's emission matrices, and the
// released perturbed locations, and who tries to (a) decide whether a
// sensitive spatiotemporal event happened, (b) localise the user, and
// (c) reconstruct the trajectory. It is used to demonstrate empirically
// what the PriSTE guarantee buys: under ε-spatiotemporal event privacy the
// adversary's posterior odds about the event cannot move beyond e^ε.
package attack

import (
	"fmt"
	"math"

	"priste/internal/event"
	"priste/internal/grid"
	"priste/internal/hmm"
	"priste/internal/markov"
	"priste/internal/mat"
	"priste/internal/world"
)

// Adversary bundles the attacker's knowledge.
type Adversary struct {
	Chain *markov.Chain
	Pi    mat.Vector
	// Grid is optional; needed only for distance-error metrics.
	Grid *grid.Grid
}

// NewAdversary validates the knowledge tuple.
func NewAdversary(chain *markov.Chain, pi mat.Vector, g *grid.Grid) (*Adversary, error) {
	if chain.States() != len(pi) {
		return nil, fmt.Errorf("attack: chain has %d states, pi has %d", chain.States(), len(pi))
	}
	if !pi.IsDistribution(1e-8) {
		return nil, fmt.Errorf("attack: pi is not a distribution")
	}
	if g != nil && g.States() != chain.States() {
		return nil, fmt.Errorf("attack: grid has %d states, chain has %d", g.States(), chain.States())
	}
	return &Adversary{Chain: chain, Pi: pi.Clone(), Grid: g}, nil
}

// EventInference is the outcome of the event-decision attack.
type EventInference struct {
	// Prior is Pr(EVENT) before any observation.
	Prior float64
	// Posterior[t] is Pr(EVENT | o₀..o_t).
	Posterior []float64
	// OddsShift is the worst multiplicative change of the event's odds
	// across the observation prefixes — exactly the quantity
	// ε-spatiotemporal event privacy bounds by e^ε.
	OddsShift float64
	// Guess is the adversary's final maximum-a-posteriori decision.
	Guess bool
}

// InferEvent runs the Bayesian event-decision attack against a sequence of
// released emission columns (col[t][i] = Pr(o_t | u_t = s_i)).
func (a *Adversary) InferEvent(ev event.Event, emissions []mat.Vector) (*EventInference, error) {
	md, err := world.NewModel(world.NewHomogeneous(a.Chain), ev)
	if err != nil {
		return nil, err
	}
	prior, err := md.Prior(a.Pi)
	if err != nil {
		return nil, err
	}
	post, err := world.EventPosterior(md, a.Pi, emissions)
	if err != nil {
		return nil, err
	}
	out := &EventInference{Prior: prior, Posterior: post}
	if prior <= 0 || prior >= 1 {
		return nil, fmt.Errorf("attack: event prior %g degenerate; odds undefined", prior)
	}
	priorOdds := prior / (1 - prior)
	for _, p := range post {
		if p <= 0 || p >= 1 {
			out.OddsShift = math.Inf(1)
			continue
		}
		shift := (p / (1 - p)) / priorOdds
		if shift < 1 {
			shift = 1 / shift
		}
		if shift > out.OddsShift {
			out.OddsShift = shift
		}
	}
	if len(post) > 0 {
		out.Guess = post[len(post)-1] >= 0.5
	} else {
		out.Guess = prior >= 0.5
	}
	return out, nil
}

// LocationInference is the outcome of the localisation attack.
type LocationInference struct {
	// MAP[t] is the adversary's most likely state for time t given all
	// observations (smoothing).
	MAP []int
	// MeanError is the mean distance between MAP and the true trajectory
	// (grid units; requires a Grid, else NaN).
	MeanError float64
	// HitRate is the fraction of timestamps where MAP equals the truth.
	HitRate float64
}

// InferLocations runs forward–backward smoothing against per-timestamp
// emission columns and scores the MAP states against the true trajectory.
func (a *Adversary) InferLocations(emissions []mat.Vector, truth []int) (*LocationInference, error) {
	if len(emissions) != len(truth) {
		return nil, fmt.Errorf("attack: %d emissions but %d true states", len(emissions), len(truth))
	}
	if len(emissions) == 0 {
		return nil, fmt.Errorf("attack: no observations")
	}
	model, err := hmm.NewModel(a.Chain, a.Pi, columnEmission{cols: emissions, m: a.Chain.States()})
	if err != nil {
		return nil, err
	}
	// The column emission model indexes observations by timestamp.
	obs := make([]int, len(emissions))
	for i := range obs {
		obs[i] = i
	}
	smooth, err := model.Smooth(obs)
	if err != nil {
		return nil, err
	}
	out := &LocationInference{MAP: make([]int, len(truth)), MeanError: math.NaN()}
	hits := 0
	var dist float64
	for t, s := range smooth {
		out.MAP[t] = s.ArgMax()
		if out.MAP[t] == truth[t] {
			hits++
		}
		if a.Grid != nil {
			dist += a.Grid.Dist(out.MAP[t], truth[t])
		}
	}
	out.HitRate = float64(hits) / float64(len(truth))
	if a.Grid != nil {
		out.MeanError = dist / float64(len(truth))
	}
	return out, nil
}

// RecoverTrajectory runs Viterbi decoding and reports the fraction of
// correctly recovered timestamps.
func (a *Adversary) RecoverTrajectory(emissions []mat.Vector, truth []int) (path []int, accuracy float64, err error) {
	if len(emissions) != len(truth) {
		return nil, 0, fmt.Errorf("attack: %d emissions but %d true states", len(emissions), len(truth))
	}
	model, err := hmm.NewModel(a.Chain, a.Pi, columnEmission{cols: emissions, m: a.Chain.States()})
	if err != nil {
		return nil, 0, err
	}
	obs := make([]int, len(emissions))
	for i := range obs {
		obs[i] = i
	}
	path, _, err = model.Viterbi(obs)
	if err != nil {
		return nil, 0, err
	}
	hits := 0
	for t := range path {
		if path[t] == truth[t] {
			hits++
		}
	}
	return path, float64(hits) / float64(len(truth)), nil
}

// columnEmission adapts pre-extracted emission columns (one per timestamp)
// to the hmm.EmissionModel interface; the "observation symbol" is the
// timestamp itself.
type columnEmission struct {
	cols []mat.Vector
	m    int
}

func (c columnEmission) EmissionColumn(t, obs int) mat.Vector {
	if obs < 0 || obs >= len(c.cols) {
		panic(fmt.Sprintf("attack: timestamp-observation %d outside [0,%d)", obs, len(c.cols)))
	}
	return c.cols[obs]
}

func (c columnEmission) States() int { return c.m }
