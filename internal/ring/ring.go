// Package ring implements the consistent-hash ring the fleet router
// places sessions with: every member contributes a fixed number of
// virtual nodes (points on a 64-bit hash circle), and a session id is
// owned by the member whose point follows the id's hash clockwise.
//
// Two properties make the ring fit for live rebalancing:
//
//   - Placement is deterministic: ownership is a pure function of the
//     member set — not of insertion order, process identity or time —
//     so every router (and every restart of one) resolves the same
//     session to the same backend, and a member that leaves and
//     returns reclaims exactly its old ranges.
//   - Movement is minimal: adding a member moves only the keys whose
//     owning arc the new member's points split (roughly 1/n of the
//     keyspace, spread across all members), and removing one moves
//     only the keys it owned. No key ever moves between two members
//     that were both present before and after the change — the
//     property the router's drain/re-home path relies on to migrate
//     only affected sessions.
//
// Rings are immutable: With/Without return new rings sharing nothing
// mutable, so a router can publish one atomically and keep the previous
// ring around as the fallback location of sessions a rebalance is still
// moving.
package ring

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// DefaultVirtualNodes is the per-member point count used when a Ring is
// built with vnodes <= 0. 128 points per member keeps the ownership
// imbalance across a small fleet within a few tens of percent of even —
// tight enough for session placement — while membership changes stay
// O(n·vnodes·log) rebuilds of a few-KB slice.
const DefaultVirtualNodes = 128

// point is one virtual node: a position on the hash circle and the
// member that owns the arc ending there.
type point struct {
	hash   uint64
	member string
}

// Ring is an immutable consistent-hash ring over a set of named
// members. The zero value is unusable; build rings with New.
type Ring struct {
	vnodes  int
	points  []point  // sorted by (hash, member)
	members []string // sorted member names
}

// New returns a ring with vnodes virtual nodes per member (vnodes <= 0
// uses DefaultVirtualNodes) containing the given members. Duplicate
// member names collapse to one.
func New(vnodes int, members ...string) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	set := make(map[string]bool, len(members))
	for _, m := range members {
		set[m] = true
	}
	names := make([]string, 0, len(set))
	for m := range set {
		names = append(names, m)
	}
	sort.Strings(names)
	return build(vnodes, names)
}

// build constructs the sorted point slice for a sorted member list.
func build(vnodes int, names []string) *Ring {
	r := &Ring{vnodes: vnodes, members: names, points: make([]point, 0, vnodes*len(names))}
	for _, m := range names {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{hash: hashPoint(m, v), member: m})
		}
	}
	// Ties (two members hashing a point to the same position) are broken
	// by member name so ownership never depends on construction order.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].member < r.points[j].member
	})
	return r
}

// hashPoint positions one virtual node. FNV-1a is stable across
// processes and Go versions — a requirement here, since every router
// instance must agree on placement.
func hashPoint(member string, vnode int) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(member))
	_, _ = h.Write([]byte{'#'})
	_, _ = h.Write([]byte(strconv.Itoa(vnode)))
	return mix(h.Sum64())
}

// hashKey positions a session id on the circle.
func hashKey(key string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	return mix(h.Sum64())
}

// mix is a 64-bit finalizer (MurmurHash3 fmix64). Raw FNV-1a has weak
// avalanche on trailing bytes: ids sharing a prefix and differing only
// in their last characters ("user-1", "user-2", ...) hash within ~2^40
// of each other — adjacent on a 2^64 circle, so whole families of ids
// would land in one member's arc. The finalizer spreads every input bit
// across the word, restoring uniform placement for exactly the id
// shapes callers pick by hand.
func mix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Owner returns the member owning key, or ok=false on an empty ring.
func (r *Ring) Owner(key string) (member string, ok bool) {
	if len(r.points) == 0 {
		return "", false
	}
	h := hashKey(key)
	// First point at or after h, wrapping to the first point past the
	// top of the circle.
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].member, true
}

// With returns a ring additionally containing member; the receiver is
// unchanged. Adding a present member returns the receiver.
func (r *Ring) With(member string) *Ring {
	if r.Has(member) {
		return r
	}
	names := make([]string, 0, len(r.members)+1)
	names = append(names, r.members...)
	names = append(names, member)
	sort.Strings(names)
	return build(r.vnodes, names)
}

// Without returns a ring with member removed; the receiver is
// unchanged. Removing an absent member returns the receiver.
func (r *Ring) Without(member string) *Ring {
	if !r.Has(member) {
		return r
	}
	names := make([]string, 0, len(r.members)-1)
	for _, m := range r.members {
		if m != member {
			names = append(names, m)
		}
	}
	return build(r.vnodes, names)
}

// Has reports whether member is on the ring.
func (r *Ring) Has(member string) bool {
	i := sort.SearchStrings(r.members, member)
	return i < len(r.members) && r.members[i] == member
}

// Members returns the sorted member names. The caller must not mutate
// the returned slice.
func (r *Ring) Members() []string { return r.members }

// Len returns the member count.
func (r *Ring) Len() int { return len(r.members) }

// VirtualNodes returns the per-member point count.
func (r *Ring) VirtualNodes() int { return r.vnodes }
