package ring

import (
	"fmt"
	"math/rand"
	"testing"
)

// keys returns n deterministic pseudo-session ids.
func keys(n int) []string {
	rng := rand.New(rand.NewSource(42))
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("sess-%016x", rng.Uint64())
	}
	return out
}

func TestEmptyRing(t *testing.T) {
	r := New(0)
	if _, ok := r.Owner("anything"); ok {
		t.Fatal("empty ring claimed an owner")
	}
	if r.Len() != 0 || len(r.Members()) != 0 {
		t.Fatalf("empty ring has members: %v", r.Members())
	}
	if r.VirtualNodes() != DefaultVirtualNodes {
		t.Fatalf("vnodes = %d, want default %d", r.VirtualNodes(), DefaultVirtualNodes)
	}
}

// TestDeterministicPlacement: ownership is a pure function of the
// member set — independent of construction order, of the path taken
// (New vs With/Without), and stable across repeated lookups.
func TestDeterministicPlacement(t *testing.T) {
	a := New(64, "alpha", "beta", "gamma")
	b := New(64, "gamma", "alpha", "beta")
	c := New(64, "alpha", "beta").With("gamma")
	d := New(64, "alpha", "beta", "gamma", "delta").Without("delta")
	for _, k := range keys(2000) {
		oa, _ := a.Owner(k)
		ob, _ := b.Owner(k)
		oc, _ := c.Owner(k)
		od, _ := d.Owner(k)
		if oa != ob || oa != oc || oa != od {
			t.Fatalf("placement of %q depends on construction: %s/%s/%s/%s", k, oa, ob, oc, od)
		}
	}
	if o1, _ := a.Owner("sess-x"); func() bool { o2, _ := a.Owner("sess-x"); return o1 != o2 }() {
		t.Fatal("repeated lookup unstable")
	}
}

// TestMinimalMovementAdd: adding a member moves keys only TO the new
// member — no key moves between two members present in both rings.
// This is the acceptance property: a ring membership change moves only
// sessions in the affected hash ranges.
func TestMinimalMovementAdd(t *testing.T) {
	before := New(64, "alpha", "beta", "gamma")
	after := before.With("delta")
	moved := 0
	for _, k := range keys(5000) {
		ob, _ := before.Owner(k)
		oa, _ := after.Owner(k)
		if ob == oa {
			continue
		}
		moved++
		if oa != "delta" {
			t.Fatalf("key %q moved %s -> %s, not to the added member", k, ob, oa)
		}
	}
	if moved == 0 {
		t.Fatal("adding a member moved nothing — vnodes not taking ownership")
	}
	// Roughly 1/4 of keys should move to the 4th member; allow wide slack.
	if moved > 5000/2 {
		t.Fatalf("adding one member moved %d/5000 keys — far more than its share", moved)
	}
}

// TestMinimalMovementRemove: removing a member moves keys only FROM the
// removed member; everyone else's keys stay put.
func TestMinimalMovementRemove(t *testing.T) {
	before := New(64, "alpha", "beta", "gamma", "delta")
	after := before.Without("beta")
	moved := 0
	for _, k := range keys(5000) {
		ob, _ := before.Owner(k)
		oa, _ := after.Owner(k)
		if ob == oa {
			continue
		}
		moved++
		if ob != "beta" {
			t.Fatalf("key %q moved %s -> %s though %s stayed on the ring", k, ob, oa, ob)
		}
	}
	if moved == 0 {
		t.Fatal("removing a member moved nothing")
	}
}

// TestRemoveThenReadd: a member that leaves and returns reclaims
// exactly its old ranges (ownership equals the original ring's).
func TestRemoveThenReadd(t *testing.T) {
	orig := New(64, "alpha", "beta", "gamma")
	roundtrip := orig.Without("beta").With("beta")
	for _, k := range keys(2000) {
		o1, _ := orig.Owner(k)
		o2, _ := roundtrip.Owner(k)
		if o1 != o2 {
			t.Fatalf("key %q: %s before, %s after leave+rejoin", k, o1, o2)
		}
	}
}

// TestImmutability: With/Without leave the receiver untouched, and
// no-op changes return the receiver itself.
func TestImmutability(t *testing.T) {
	r := New(64, "alpha", "beta")
	_ = r.With("gamma")
	_ = r.Without("alpha")
	if r.Len() != 2 || !r.Has("alpha") || !r.Has("beta") || r.Has("gamma") {
		t.Fatalf("receiver mutated: %v", r.Members())
	}
	if r.With("alpha") != r {
		t.Error("adding a present member did not return the receiver")
	}
	if r.Without("nope") != r {
		t.Error("removing an absent member did not return the receiver")
	}
	if New(64, "a", "a", "a").Len() != 1 {
		t.Error("duplicate members not collapsed")
	}
}

// TestBalance: with DefaultVirtualNodes, no member of a 5-member ring
// owns a wildly disproportionate share of keys.
func TestBalance(t *testing.T) {
	r := New(DefaultVirtualNodes, "n0", "n1", "n2", "n3", "n4")
	counts := map[string]int{}
	const n = 20000
	for _, k := range keys(n) {
		o, _ := r.Owner(k)
		counts[o]++
	}
	want := n / 5
	for m, c := range counts {
		if c < want/3 || c > want*3 {
			t.Errorf("member %s owns %d/%d keys (expected near %d)", m, c, n, want)
		}
	}
	if len(counts) != 5 {
		t.Errorf("only %d/5 members own keys", len(counts))
	}
}

// TestSequentialKeysSpread: ids that share a prefix and differ only in
// a trailing counter — the shape human callers pick — must still spread
// across members. Raw FNV-1a clusters such ids on one arc; the fmix64
// finalizer is what keeps this property.
func TestSequentialKeysSpread(t *testing.T) {
	r := New(64, "n0", "n1", "n2")
	counts := map[string]int{}
	for i := 0; i < 60; i++ {
		o, _ := r.Owner(fmt.Sprintf("user-%02d", i))
		counts[o]++
	}
	if len(counts) < 3 {
		t.Fatalf("sequential ids cluster: %v", counts)
	}
	for m, c := range counts {
		if c > 45 {
			t.Fatalf("member %s owns %d/60 sequential ids: %v", m, c, counts)
		}
	}
}

func TestSingleMember(t *testing.T) {
	r := New(8, "solo")
	for _, k := range keys(100) {
		if o, ok := r.Owner(k); !ok || o != "solo" {
			t.Fatalf("Owner(%q) = %s,%v", k, o, ok)
		}
	}
}
