package mat

import (
	"math"
	"math/rand/v2"
	"testing"
)

// randomBanded returns an m×m non-negative matrix with all nonzeros in
// |i−j| ≤ band and the given interior zero fraction.
func randomBanded(rng *rand.Rand, m, band int, zeroFrac float64) *Matrix {
	a := NewMatrix(m, m)
	for i := 0; i < m; i++ {
		for j := max(0, i-band); j <= min(m-1, i+band); j++ {
			if rng.Float64() < zeroFrac {
				continue
			}
			a.Set(i, j, rng.Float64())
		}
	}
	return a
}

func TestBandwidth(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	for _, tc := range []struct{ m, band int }{
		{1, 0}, {5, 0}, {8, 1}, {20, 3}, {30, 29}, {17, 16},
	} {
		a := randomBanded(rng, tc.m, tc.band, 0)
		if got := Bandwidth(a); got != tc.band {
			t.Fatalf("m=%d band=%d: Bandwidth = %d", tc.m, tc.band, got)
		}
	}
	if got := Bandwidth(NewMatrix(7, 7)); got != 0 {
		t.Fatalf("zero matrix bandwidth = %d", got)
	}
}

func TestMulBandIntoMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	for _, tc := range []struct{ m, aBand, bBand int }{
		{1, 0, 0}, {6, 0, 2}, {6, 2, 0}, {9, 1, 3}, {25, 4, 4},
		{40, 7, 39}, {40, 39, 7}, {33, 32, 32}, {300, 12, 5},
	} {
		a := randomBanded(rng, tc.m, tc.aBand, 0.3)
		b := randomBanded(rng, tc.m, tc.bBand, 0.3)
		want := NewMatrix(tc.m, tc.m)
		MulInto(want, a, b)
		got := NewMatrix(tc.m, tc.m)
		got.Data[0] = math.NaN() // must be fully overwritten/zeroed
		MulBandInto(got, a, b, tc.aBand, tc.bBand)
		for i := range want.Data {
			if want.Data[i] != got.Data[i] {
				t.Fatalf("m=%d bands=(%d,%d): element %d differs: naive %v banded %v",
					tc.m, tc.aBand, tc.bBand, i, want.Data[i], got.Data[i])
			}
		}
	}
}

func TestMulVecBandIntoMatchesDot(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 10))
	for _, tc := range []struct{ m, band int }{
		{1, 0}, {7, 0}, {12, 3}, {40, 39}, {55, 9},
	} {
		a := randomBanded(rng, tc.m, tc.band, 0.2)
		x := make(Vector, tc.m)
		for i := range x {
			x[i] = rng.Float64()
		}
		want := make(Vector, tc.m)
		a.MulVecInto(want, x)
		got := make(Vector, tc.m)
		MulVecBandInto(got, a, x, tc.band)
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("m=%d band=%d: element %d differs", tc.m, tc.band, i)
			}
		}
	}
}

func TestMatrix32Shadow(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	m := 60
	a := randomNonNeg(rng, m, m, 0.3)
	a.Scale(1e-60) // outside float32 range: conversion must rescale
	inv := 1 / a.MaxAbs()
	a32 := Shadow32Scaled(a, inv)
	x := make(Vector, m)
	for i := range x {
		x[i] = rng.Float64()
	}
	want := make(Vector, m)
	a.MulVecInto(want, x)
	got := make(Vector, m)
	a32.MulVecInto(got, x)
	// got ≈ want·inv with per-component relative error ≲ a few 2⁻²⁴.
	for i := range want {
		w := want[i] * inv
		if d := math.Abs(got[i] - w); d > 4*w/(1<<24)+1e-30 {
			t.Fatalf("element %d: shadow %v want ~%v (err %g)", i, got[i], w, d)
		}
	}
	// Row-vector form against the float64 scatter.
	wantR := make(Vector, m)
	a.VecMulInto(wantR, x)
	gotR := make(Vector, m)
	a32.VecMulInto(gotR, x)
	for i := range wantR {
		w := wantR[i] * inv
		if d := math.Abs(gotR[i] - w); d > 4*w/(1<<24)+1e-30 {
			t.Fatalf("row element %d: shadow %v want ~%v", i, gotR[i], w)
		}
	}
}

func TestConvertScaledFlushesSubnormals(t *testing.T) {
	a := NewMatrix(1, 3)
	a.Set(0, 0, 1)
	a.Set(0, 1, 1e-45) // subnormal relative to scale 1
	a.Set(0, 2, 0)
	a32 := Shadow32Scaled(a, 1)
	if a32.Data[0] != 1 || a32.Data[1] != 0 || a32.Data[2] != 0 {
		t.Fatalf("converted = %v", a32.Data)
	}
}

func TestCSR32MatchesCSR(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 14))
	m := 50
	d := randomNonNeg(rng, m, m, 0.8)
	c := CSRFromDense(d)
	c32 := c.Shadow32()
	x := make(Vector, m)
	for i := range x {
		x[i] = rng.Float64()
	}
	want := make(Vector, m)
	c.MulVecInto(want, x)
	got := make(Vector, m)
	c32.MulVecInto(got, x)
	for i := range want {
		if d := math.Abs(got[i] - want[i]); d > 4*want[i]/(1<<24)+1e-30 {
			t.Fatalf("element %d: shadow %v want ~%v", i, got[i], want[i])
		}
	}
}
