package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVectorDot(t *testing.T) {
	v := Vector{1, 2, 3}
	w := Vector{4, 5, 6}
	if got := v.Dot(w); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
}

func TestVectorDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Vector{1}.Dot(Vector{1, 2})
}

func TestVectorSumMinMax(t *testing.T) {
	v := Vector{3, -1, 2}
	if v.Sum() != 4 {
		t.Errorf("Sum = %v", v.Sum())
	}
	if v.Max() != 3 {
		t.Errorf("Max = %v", v.Max())
	}
	if v.Min() != -1 {
		t.Errorf("Min = %v", v.Min())
	}
	if v.AbsMax() != 3 {
		t.Errorf("AbsMax = %v", v.AbsMax())
	}
	if v.ArgMax() != 0 {
		t.Errorf("ArgMax = %v", v.ArgMax())
	}
}

func TestVectorEmptyExtremes(t *testing.T) {
	var v Vector
	if !math.IsInf(v.Max(), -1) || !math.IsInf(v.Min(), 1) {
		t.Errorf("empty Max/Min = %v/%v", v.Max(), v.Min())
	}
	if v.ArgMax() != -1 {
		t.Errorf("empty ArgMax = %d", v.ArgMax())
	}
}

func TestVectorNormalize(t *testing.T) {
	v := Vector{1, 3}
	s := v.Normalize()
	if s != 4 {
		t.Fatalf("Normalize returned %v, want 4", s)
	}
	if !v.EqualApprox(Vector{0.25, 0.75}, 1e-15) {
		t.Fatalf("normalized = %v", v)
	}
}

func TestVectorNormalizeZero(t *testing.T) {
	v := Vector{0, 0}
	if s := v.Normalize(); s != 0 {
		t.Fatalf("Normalize(zero) = %v, want 0", s)
	}
	if v[0] != 0 || v[1] != 0 {
		t.Fatalf("zero vector mutated: %v", v)
	}
}

func TestVectorHadamard(t *testing.T) {
	got := Vector{1, 2, 3}.Hadamard(Vector{2, 0, -1})
	if !got.EqualApprox(Vector{2, 0, -3}, 0) {
		t.Fatalf("Hadamard = %v", got)
	}
}

func TestVectorAddSubInPlaceAliasing(t *testing.T) {
	v := Vector{1, 2}
	v.AddInto(v, Vector{3, 4})
	if !v.EqualApprox(Vector{4, 6}, 0) {
		t.Fatalf("AddInto alias = %v", v)
	}
	v.SubInto(v, Vector{1, 1})
	if !v.EqualApprox(Vector{3, 5}, 0) {
		t.Fatalf("SubInto alias = %v", v)
	}
}

func TestIsDistribution(t *testing.T) {
	if !(Vector{0.5, 0.5}).IsDistribution(1e-9) {
		t.Error("uniform should be a distribution")
	}
	if (Vector{0.5, 0.6}).IsDistribution(1e-9) {
		t.Error("sum 1.1 should fail")
	}
	if (Vector{-0.1, 1.1}).IsDistribution(1e-9) {
		t.Error("negative element should fail")
	}
	if (Vector{math.NaN(), 1}).IsDistribution(1e-9) {
		t.Error("NaN should fail")
	}
}

func TestMatrixBasics(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(1, 0) != 3 {
		t.Fatalf("At(1,0) = %v", m.At(1, 0))
	}
	m.Set(1, 0, 9)
	if m.At(1, 0) != 9 {
		t.Fatalf("after Set, At = %v", m.At(1, 0))
	}
	if got := m.Col(1); !got.EqualApprox(Vector{2, 4}, 0) {
		t.Fatalf("Col(1) = %v", got)
	}
	c := m.Clone()
	c.Set(0, 0, -1)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestIdentityAndMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	i2 := Identity(2)
	if !a.Mul(i2).EqualApprox(a, 0) {
		t.Fatal("A·I != A")
	}
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	got := a.Mul(b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if !got.EqualApprox(want, 1e-12) {
		t.Fatalf("Mul = \n%v want \n%v", got, want)
	}
}

func TestMulRectangular(t *testing.T) {
	a := FromRows([][]float64{{1, 0, 2}})     // 1×3
	b := FromRows([][]float64{{1}, {1}, {1}}) // 3×1
	if got := a.Mul(b); got.At(0, 0) != 3 || got.Rows != 1 || got.Cols != 1 {
		t.Fatalf("Mul rect = %v", got)
	}
}

func TestMulIntoAliasPanics(t *testing.T) {
	a := Identity(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when dst aliases operand")
		}
	}()
	MulInto(a, a, Identity(2))
}

func TestMulVecAndVecMul(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if got := m.MulVec(Vector{1, 1}); !got.EqualApprox(Vector{3, 7}, 0) {
		t.Fatalf("MulVec = %v", got)
	}
	if got := m.VecMul(Vector{1, 1}); !got.EqualApprox(Vector{4, 6}, 0) {
		t.Fatalf("VecMul = %v", got)
	}
}

func TestTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	got := m.Transpose()
	want := FromRows([][]float64{{1, 4}, {2, 5}, {3, 6}})
	if !got.EqualApprox(want, 0) {
		t.Fatalf("Transpose = \n%v", got)
	}
}

func TestScaleRowsCols(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	sc := ScaleColsInto(NewMatrix(2, 2), m, Vector{10, 1})
	if !sc.EqualApprox(FromRows([][]float64{{10, 2}, {30, 4}}), 0) {
		t.Fatalf("ScaleCols = \n%v", sc)
	}
	sr := ScaleRowsInto(NewMatrix(2, 2), m, Vector{10, 1})
	if !sr.EqualApprox(FromRows([][]float64{{10, 20}, {3, 4}}), 0) {
		t.Fatalf("ScaleRows = \n%v", sr)
	}
	// Aliased in-place form.
	ScaleColsInto(m, m, Vector{1, 0})
	if !m.EqualApprox(FromRows([][]float64{{1, 0}, {3, 0}}), 0) {
		t.Fatalf("ScaleCols alias = \n%v", m)
	}
}

func TestAddSubOuter(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := Identity(2)
	sum := AddInto(NewMatrix(2, 2), a, b)
	if !sum.EqualApprox(FromRows([][]float64{{2, 2}, {3, 5}}), 0) {
		t.Fatalf("Add = \n%v", sum)
	}
	diff := SubInto(NewMatrix(2, 2), sum, b)
	if !diff.EqualApprox(a, 0) {
		t.Fatalf("Sub = \n%v", diff)
	}
	o := Outer(Vector{1, 2}, Vector{3, 4})
	if !o.EqualApprox(FromRows([][]float64{{3, 4}, {6, 8}}), 0) {
		t.Fatalf("Outer = \n%v", o)
	}
}

func TestIsRowStochastic(t *testing.T) {
	m := FromRows([][]float64{{0.5, 0.5}, {0.1, 0.9}})
	if !m.IsRowStochastic(1e-12) {
		t.Fatal("expected stochastic")
	}
	m.Set(0, 0, 0.6)
	if m.IsRowStochastic(1e-12) {
		t.Fatal("expected non-stochastic")
	}
}

// Property: (A·B)·x == A·(B·x) for random stochastic-ish matrices.
func TestMulAssociativityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		a, b := randomMatrix(rng, n), randomMatrix(rng, n)
		x := randomVector(rng, n)
		left := a.Mul(b).MulVec(x)
		right := a.MulVec(b.MulVec(x))
		return left.EqualApprox(right, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: VecMul(x, M) == Transpose(M)·x.
func TestVecMulTransposeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		m := randomMatrix(rng, n)
		x := randomVector(rng, n)
		return m.VecMul(x).EqualApprox(m.Transpose().MulVec(x), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: ScaleCols(A, d)·x == A·(d∘x).
func TestScaleColsDiagonalProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		a := randomMatrix(rng, n)
		d, x := randomVector(rng, n), randomVector(rng, n)
		left := ScaleColsInto(NewMatrix(n, n), a, d).MulVec(x)
		right := a.MulVec(d.Hadamard(x))
		return left.EqualApprox(right, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSymEigenDiagonal(t *testing.T) {
	m := FromRows([][]float64{{3, 0}, {0, -1}})
	vals, vecs, err := SymEigen(m)
	if err != nil {
		t.Fatal(err)
	}
	if !vals.EqualApprox(Vector{-1, 3}, 1e-12) {
		t.Fatalf("vals = %v", vals)
	}
	// Eigenvector columns orthonormal.
	for j := 0; j < 2; j++ {
		if math.Abs(vecs.Col(j).Dot(vecs.Col(j))-1) > 1e-12 {
			t.Fatalf("column %d not unit", j)
		}
	}
}

func TestSymEigenKnown(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	m := FromRows([][]float64{{2, 1}, {1, 2}})
	vals, _, err := SymEigen(m)
	if err != nil {
		t.Fatal(err)
	}
	if !vals.EqualApprox(Vector{1, 3}, 1e-10) {
		t.Fatalf("vals = %v", vals)
	}
}

func TestSymEigenRejectsAsymmetric(t *testing.T) {
	m := FromRows([][]float64{{0, 1}, {0, 0}})
	if _, _, err := SymEigen(m); err == nil {
		t.Fatal("expected error for asymmetric input")
	}
}

// Property: SymEigen reconstructs A = V·diag(λ)·Vᵀ.
func TestSymEigenReconstructionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		a := randomMatrix(rng, n)
		// Symmetrize.
		at := a.Transpose()
		AddInto(a, a, at)
		a.Scale(0.5)
		vals, vecs, err := SymEigen(a)
		if err != nil {
			return false
		}
		recon := NewMatrix(n, n)
		for k := 0; k < n; k++ {
			col := vecs.Col(k)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					recon.Data[i*n+j] += vals[k] * col[i] * col[j]
				}
			}
		}
		return recon.EqualApprox(a, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: RankOneSymEigen matches SymEigen extremes of (a·wᵀ+w·aᵀ)/2.
func TestRankOneSymEigenProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		a, w := randomVector(rng, n), randomVector(rng, n)
		lo, hi := RankOneSymEigen(a, w)
		s := Outer(a, w)
		st := s.Transpose()
		AddInto(s, s, st)
		s.Scale(0.5)
		vals, _, err := SymEigen(s)
		if err != nil {
			return false
		}
		return math.Abs(vals[0]-lo) < 1e-8 && math.Abs(vals[len(vals)-1]-hi) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func randomMatrix(rng *rand.Rand, n int) *Matrix {
	m := NewMatrix(n, n)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func randomVector(rng *rand.Rand, n int) Vector {
	v := NewVector(n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}
