package mat

import (
	"math/rand"
	"testing"
)

func benchMatrix(n int) *Matrix {
	rng := rand.New(rand.NewSource(1))
	m := NewMatrix(n, n)
	for i := range m.Data {
		m.Data[i] = rng.Float64()
	}
	return m
}

// BenchmarkMulInto measures the dense kernel at the map size of the
// paper's experiments (m = 400 states for a 20×20 grid); the release loop
// performs two of these per committed timestamp.
func BenchmarkMulInto(b *testing.B) {
	for _, n := range []int{100, 400} {
		b.Run(sizeName(n), func(b *testing.B) {
			x, y := benchMatrix(n), benchMatrix(n)
			dst := NewMatrix(n, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MulInto(dst, x, y)
			}
		})
	}
}

// BenchmarkVecMul measures the row-vector product used by every condition
// check.
func BenchmarkVecMul(b *testing.B) {
	for _, n := range []int{100, 400} {
		b.Run(sizeName(n), func(b *testing.B) {
			m := benchMatrix(n)
			x := NewVector(n)
			for i := range x {
				x[i] = 1 / float64(n)
			}
			dst := NewVector(n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.VecMulInto(dst, x)
			}
		})
	}
}

// benchSparse returns an n×n matrix with ~nnzPerRow nonzeros per row —
// the structure of a local grid mobility kernel.
func benchSparse(n, nnzPerRow int) *Matrix {
	rng := rand.New(rand.NewSource(2))
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		row := m.Row(i)
		for k := 0; k < nnzPerRow; k++ {
			row[rng.Intn(n)] = rng.Float64()
		}
	}
	return m
}

// BenchmarkCSRMulVec measures the sparse matvec against the dense one at
// the candidate-check shape (m=400, ~5 neighbours per state).
func BenchmarkCSRMulVec(b *testing.B) {
	const n = 400
	m := benchSparse(n, 5)
	s := CSRFromDense(m)
	x := NewVector(n)
	for i := range x {
		x[i] = 1 / float64(n)
	}
	dst := NewVector(n)
	b.Run("dense", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.MulVecInto(dst, x)
		}
	})
	b.Run("csr", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.MulVecInto(dst, x)
		}
	})
}

// BenchmarkMulCSRInto measures the Commit-update product A·M (dense ×
// sparse) against the dense kernel at the same shape.
func BenchmarkMulCSRInto(b *testing.B) {
	const n = 400
	m := benchSparse(n, 5)
	s := CSRFromDense(m)
	a := benchMatrix(n)
	dst := NewMatrix(n, n)
	b.Run("dense", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			MulInto(dst, a, m)
		}
	})
	b.Run("csr", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			MulCSRInto(dst, a, s)
		}
	})
}

// BenchmarkSymEigen measures the Jacobi eigensolver (QP diagnostics only;
// not on the release hot path).
func BenchmarkSymEigen(b *testing.B) {
	n := 60
	m := benchMatrix(n)
	t := m.Transpose()
	AddInto(m, m, t)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := SymEigen(m); err != nil {
			b.Fatal(err)
		}
	}
}

func sizeName(n int) string {
	if n >= 400 {
		return "m400"
	}
	return "m100"
}
