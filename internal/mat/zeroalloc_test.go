package mat

import (
	"math/rand"
	"testing"
)

// TestSerialKernelsZeroAlloc pins the serial fast path of every hot
// kernel at 0 allocs/op. The kernels branch on par.Default().Parallel
// *before* materialising their tile closures, so below the flops cutoffs
// no closure (and no captured-variable box) ever escapes to the heap —
// the property the commit loop's per-step allocation budget depends on.
// These matrices sit far below every cutoff, so the serial path is what
// runs regardless of GOMAXPROCS.
func TestSerialKernelsZeroAlloc(t *testing.T) {
	const n = 24
	rng := rand.New(rand.NewSource(3))
	a := NewMatrix(n, n)
	b := NewMatrix(n, n)
	for i := range a.Data {
		a.Data[i] = rng.Float64()
		b.Data[i] = rng.Float64()
	}
	bt := NewMatrix(n, n)
	TransposeInto(bt, b)
	csr := CSRFromDense(b)
	dst := NewMatrix(n, n)
	x := make(Vector, n)
	y := make(Vector, n)
	for i := range x {
		x[i] = rng.Float64()
	}

	cases := []struct {
		name string
		op   func()
	}{
		{"MulInto", func() { MulInto(dst, a, b) }},
		{"MulABtInto", func() { MulABtInto(dst, a, bt) }},
		{"MulBandInto", func() { MulBandInto(dst, a, b, n-1, n-1) }},
		{"MulVecBandInto", func() { MulVecBandInto(y, a, x, n-1) }},
		{"MulCSRInto", func() { MulCSRInto(dst, a, csr) }},
		{"CSR.MulMatInto", func() { csr.MulMatInto(dst, b) }},
	}
	for _, tc := range cases {
		tc.op() // warm up (one-time lazy state, if any)
		if allocs := testing.AllocsPerRun(100, tc.op); allocs != 0 {
			t.Errorf("%s: %v allocs/op on the serial path, want 0", tc.name, allocs)
		}
	}
}
