package mat

import "priste/internal/par"

// Banded multiplication.
//
// Under a grid ordering the mobility kernels are spatially local, so a
// transition matrix M has bandwidth bw ≪ m (all nonzeros within |i−j| ≤
// bw), and the Theorem IV.1 forward operators — products of masked
// copies of M — stay banded for short horizons: each committed step
// widens the operator band by M's band. The kernels here restrict both
// the k loop (to the left operand's band) and the j loop (to the right
// operand's band), turning an O(m³) product into O(m·(2p+1)·(2bw+1)).
//
// Bit-identity with the naive kernel: the loop order is the same i-k-j
// scatter as MulInto with the k chain ascending, and every skipped term
// has a zero factor — either a[i][k] outside a's band (the same skip
// MulInto performs) or b[k][j] outside b's band, which contributes an
// exact +0 on the engine's non-negative data. The band arguments are a
// caller contract: entries outside the declared bands must be exactly
// zero, or the result diverges from the dense product.

// Bandwidth returns the bandwidth of a: the largest |i−j| over nonzero
// entries (0 for a diagonal or zero matrix). For a non-square matrix the
// same |i−j| measure applies.
func Bandwidth(a *Matrix) int {
	bw := 0
	for i := 0; i < a.Rows; i++ {
		row := a.Data[i*a.Cols : (i+1)*a.Cols]
		// Only columns outside [i−bw, i+bw] can grow the band; scan
		// outward-first so dense rows terminate in O(1) amortised.
		for j := 0; j < i-bw; j++ {
			if row[j] != 0 {
				bw = i - j
				break
			}
		}
		for j := a.Cols - 1; j > i+bw; j-- {
			if row[j] != 0 {
				bw = j - i
				break
			}
		}
	}
	return bw
}

// MulBandInto computes dst = a·b where a has bandwidth aBand and b has
// bandwidth bBand (entries outside those bands must be exactly zero).
// dst must not alias an operand; it is fully zeroed first, so entries
// outside the product band come out as exact zeros — the same bits the
// dense kernels produce for them. Band strips (row tiles) split across
// the shared pool above the work cutoff; each dst row has a single
// writer, so the result is bit-deterministic at any parallelism.
func MulBandInto(dst, a, b *Matrix, aBand, bBand int) {
	if a.Cols != b.Rows {
		panic("mat: MulBand inner dims mismatch")
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic("mat: MulBand dst shape mismatch")
	}
	if sameBacking(dst.Data, a.Data) || sameBacking(dst.Data, b.Data) {
		panic("mat: MulBandInto dst aliases an operand")
	}
	dst.Zero()
	flops := int64(a.Rows) * int64(2*aBand+1) * int64(2*bBand+1)
	if !par.Default().Parallel(a.Rows, flops, parallelFlops) {
		mulBandRows(dst, a, b, aBand, bBand, 0, a.Rows)
		return
	}
	par.Default().For(a.Rows, func(lo, hi int) { mulBandRows(dst, a, b, aBand, bBand, lo, hi) })
}

func mulBandRows(dst, a, b *Matrix, aBand, bBand, lo, hi int) {
	kk := a.Cols
	n := b.Cols
	for i := lo; i < hi; i++ {
		arow := a.Data[i*kk : (i+1)*kk]
		drow := dst.Data[i*n : (i+1)*n]
		k0, k1 := i-aBand, i+aBand
		if k0 < 0 {
			k0 = 0
		}
		if k1 > kk-1 {
			k1 = kk - 1
		}
		for k := k0; k <= k1; k++ {
			aik := arow[k]
			if aik == 0 {
				continue
			}
			j0, j1 := k-bBand, k+bBand
			if j0 < 0 {
				j0 = 0
			}
			if j1 > n-1 {
				j1 = n - 1
			}
			brow := b.Data[k*n+j0 : k*n+j1+1]
			dseg := drow[j0 : j1+1]
			for jj, bv := range brow {
				dseg[jj] += aik * bv
			}
		}
	}
}

// NNZ counts the nonzero entries of a. The adaptive dense dispatch uses
// it to decide between the skip-based naive kernel (wins below ~50%
// density) and the blocked kernel; the scan is ~0.5% of a blocked m=400
// product.
func (a *Matrix) NNZ() int {
	n := 0
	for _, v := range a.Data {
		if v != 0 {
			n++
		}
	}
	return n
}

// parallelVecFlops is the multiply-add count above which the banded
// matvec splits its band strips across the pool: a matvec is memory-
// bound, so the cutoff sits well below the matrix-product cutoffs.
const parallelVecFlops = 1 << 18

// MulVecBandInto computes dst = a·x for a with bandwidth band: each row
// dot is restricted to the band columns. Bit-identical to
// Matrix.MulVecInto on a matrix that respects the band (skipped terms
// are exact +0 on non-negative x) — each dst element is one ascending-k
// dot with a single writer, so parallel dispatch preserves bits too.
// dst must not alias x.
func MulVecBandInto(dst Vector, a *Matrix, x Vector, band int) {
	if len(x) != a.Cols || len(dst) != a.Rows {
		panic("mat: MulVecBand shape mismatch")
	}
	if !par.Default().Parallel(a.Rows, int64(a.Rows)*int64(2*band+1), parallelVecFlops) {
		mulVecBandRows(dst, a, x, band, 0, a.Rows)
		return
	}
	par.Default().For(a.Rows, func(lo, hi int) { mulVecBandRows(dst, a, x, band, lo, hi) })
}

// mulVecBandRows computes dst[lo:hi] of the band-restricted matvec.
func mulVecBandRows(dst Vector, a *Matrix, x Vector, band, lo, hi int) {
	for i := lo; i < hi; i++ {
		row := a.Data[i*a.Cols : (i+1)*a.Cols]
		k0, k1 := i-band, i+band
		if k0 < 0 {
			k0 = 0
		}
		if k1 > a.Cols-1 {
			k1 = a.Cols - 1
		}
		var s float64
		seg := row[k0 : k1+1]
		xs := x[k0 : k1+1]
		for k, av := range seg {
			s += av * xs[k]
		}
		dst[i] = s
	}
}
