package mat

// float32 shadow forms.
//
// The shadow check path (see world.Quantifier) runs the Theorem IV.1
// Check matvecs against float32 copies of the step kernels and forward
// operators: half the memory traffic of the float64 forms on a path that
// is bandwidth-bound at the paper's m=400. Accumulation stays in
// float64 over widened float32 entries, so the only rounding a term
// picks up is the single float64→float32 conversion of each operand
// entry — on the engine's non-negative data there is no cancellation,
// and the relative error of every accumulated component is bounded by a
// small multiple of 2⁻²⁴ independent of m. The certified bound consumed
// by qp.CheckReleaseShadow builds on exactly that property.
//
// Conversions take an explicit scale factor: the float64 operators are
// kept inside a wide magnitude band [1e-100, 1e100] that float32 cannot
// represent, so the shadow copies are normalised by the operator's known
// maximum entry. Entries that still land below the smallest normal
// float32 are flushed to zero — they are ~1e-38 relative to the maximum,
// far below the certified bound, and loading subnormal float32 values
// would cost microcode assists on the hot path.

// smallestNormal32 is the smallest positive normal float32 (2⁻¹²⁶).
const smallestNormal32 = 0x1p-126

// Matrix32 is a dense row-major float32 matrix.
type Matrix32 struct {
	Rows, Cols int
	Data       []float32
}

// NewMatrix32 returns a zeroed rows×cols float32 matrix.
func NewMatrix32(rows, cols int) *Matrix32 {
	return &Matrix32{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// ConvertScaled fills dst with float32(src[i][j] · inv), flushing
// magnitudes below the smallest normal float32 to zero. Shapes must
// match.
func (dst *Matrix32) ConvertScaled(src *Matrix, inv float64) {
	if dst.Rows != src.Rows || dst.Cols != src.Cols {
		panic("mat: ConvertScaled shape mismatch")
	}
	for i, v := range src.Data {
		v *= inv
		if v < smallestNormal32 && v > -smallestNormal32 {
			dst.Data[i] = 0
			continue
		}
		dst.Data[i] = float32(v)
	}
}

// MulVecInto computes dst = a·x with float64 accumulation. dst must not
// alias x.
func (a *Matrix32) MulVecInto(dst Vector, x Vector) {
	if len(x) != a.Cols || len(dst) != a.Rows {
		panic("mat: Matrix32 MulVec shape mismatch")
	}
	for i := 0; i < a.Rows; i++ {
		row := a.Data[i*a.Cols : (i+1)*a.Cols]
		var s float64
		for k, av := range row {
			s += float64(av) * x[k]
		}
		dst[i] = s
	}
}

// VecMulInto computes dst = xᵀ·a (a row vector) with float64
// accumulation and returns dst. dst must not alias x.
func (a *Matrix32) VecMulInto(dst Vector, x Vector) Vector {
	if len(x) != a.Rows || len(dst) != a.Cols {
		panic("mat: Matrix32 VecMul shape mismatch")
	}
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < a.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := a.Data[i*a.Cols : (i+1)*a.Cols]
		for j, av := range row {
			dst[j] += xi * float64(av)
		}
	}
	return dst
}

// CSR32 is the float32 shadow of a CSR matrix: it shares the row
// pointers and column indices of the float64 form and carries only a
// float32 value array.
type CSR32 struct {
	rows, cols int
	rowPtr     []int32
	colIdx     []int32
	val        []float32
}

// Shadow32 returns the float32 shadow of c (values converted unscaled;
// transition-matrix entries live in [0,1]).
func (c *CSR) Shadow32() *CSR32 {
	s := &CSR32{rows: c.rows, cols: c.cols, rowPtr: c.rowPtr, colIdx: c.colIdx,
		val: make([]float32, len(c.val))}
	for i, v := range c.val {
		s.val[i] = float32(v)
	}
	return s
}

// MulVecInto computes dst = c·x with float64 accumulation. dst must not
// alias x.
func (c *CSR32) MulVecInto(dst Vector, x Vector) {
	if len(x) != c.cols || len(dst) != c.rows {
		panic("mat: CSR32 MulVec shape mismatch")
	}
	for i := 0; i < c.rows; i++ {
		var s float64
		for p := c.rowPtr[i]; p < c.rowPtr[i+1]; p++ {
			s += float64(c.val[p]) * x[c.colIdx[p]]
		}
		dst[i] = s
	}
}

// Shadow32Scaled returns a float32 copy of a dense matrix scaled by inv
// (see ConvertScaled).
func Shadow32Scaled(src *Matrix, inv float64) *Matrix32 {
	dst := NewMatrix32(src.Rows, src.Cols)
	dst.ConvertScaled(src, inv)
	return dst
}
