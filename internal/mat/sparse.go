package mat

import (
	"fmt"

	"priste/internal/par"
)

// CSR is a compressed-sparse-row matrix: each row stores its nonzero
// values with strictly ascending column indices behind a row-pointer
// array. It is the kernel format the PriSTE release loop
// compiles grid transition matrices into — a local mobility model touches
// only a handful of neighbour cells per state, so the Theorem IV.1
// operator updates drop from O(m³)/O(m²) to O(m·nnz)/O(nnz).
//
// Every product below visits the retained entries in exactly the order the
// dense kernels visit them (row-major, ascending column), and the entries
// dropped by compression are exact floating-point zeros whose products
// contribute +0 to every partial sum — so the sparse and dense paths
// produce bit-identical results on non-negative data (probabilities),
// which is what keeps release sequences, history fingerprints and
// restart replay equivalent across the two kernels.
type CSR struct {
	rows, cols int
	rowPtr     []int32 // len rows+1
	colIdx     []int32 // len nnz, ascending within each row
	val        []float64
}

// CSRFromDense compresses a dense matrix, retaining exactly the nonzero
// entries (no thresholding: sparsity must already be structural).
func CSRFromDense(m *Matrix) *CSR {
	nnz := 0
	for _, v := range m.Data {
		if v != 0 {
			nnz++
		}
	}
	s := &CSR{
		rows:   m.Rows,
		cols:   m.Cols,
		rowPtr: make([]int32, m.Rows+1),
		colIdx: make([]int32, 0, nnz),
		val:    make([]float64, 0, nnz),
	}
	for i := 0; i < m.Rows; i++ {
		for j, v := range m.Row(i) {
			if v != 0 {
				s.colIdx = append(s.colIdx, int32(j))
				s.val = append(s.val, v)
			}
		}
		s.rowPtr[i+1] = int32(len(s.val))
	}
	return s
}

// Rows returns the row count.
func (s *CSR) Rows() int { return s.rows }

// Cols returns the column count.
func (s *CSR) Cols() int { return s.cols }

// NNZ returns the number of stored nonzeros.
func (s *CSR) NNZ() int { return len(s.val) }

// Density returns nnz/(rows·cols), or 0 for an empty shape.
func (s *CSR) Density() float64 {
	if s.rows == 0 || s.cols == 0 {
		return 0
	}
	return float64(len(s.val)) / (float64(s.rows) * float64(s.cols))
}

// Dense expands the matrix back to dense row-major form.
func (s *CSR) Dense() *Matrix {
	m := NewMatrix(s.rows, s.cols)
	for i := 0; i < s.rows; i++ {
		row := m.Row(i)
		for p := s.rowPtr[i]; p < s.rowPtr[i+1]; p++ {
			row[s.colIdx[p]] = s.val[p]
		}
	}
	return m
}

// Transpose returns the CSR form of sᵀ (a column-major walk of s, so the
// result's rows are again sorted by column index).
func (s *CSR) Transpose() *CSR {
	t := &CSR{
		rows:   s.cols,
		cols:   s.rows,
		rowPtr: make([]int32, s.cols+1),
		colIdx: make([]int32, len(s.val)),
		val:    make([]float64, len(s.val)),
	}
	// Counting sort by column: count, prefix-sum, scatter.
	for _, j := range s.colIdx {
		t.rowPtr[j+1]++
	}
	for j := 0; j < s.cols; j++ {
		t.rowPtr[j+1] += t.rowPtr[j]
	}
	next := make([]int32, s.cols)
	copy(next, t.rowPtr[:s.cols])
	for i := 0; i < s.rows; i++ {
		for p := s.rowPtr[i]; p < s.rowPtr[i+1]; p++ {
			j := s.colIdx[p]
			q := next[j]
			next[j]++
			t.colIdx[q] = int32(i)
			t.val[q] = s.val[p]
		}
	}
	return t
}

// MulVecInto stores s·x into dst and returns dst. dst must not alias x.
func (s *CSR) MulVecInto(dst, x Vector) Vector {
	if len(x) != s.cols {
		panic(fmt.Sprintf("mat: CSR MulVec len(x)=%d want %d", len(x), s.cols))
	}
	if len(dst) != s.rows {
		panic(fmt.Sprintf("mat: CSR MulVec len(dst)=%d want %d", len(dst), s.rows))
	}
	for i := 0; i < s.rows; i++ {
		var acc float64
		for p := s.rowPtr[i]; p < s.rowPtr[i+1]; p++ {
			acc += s.val[p] * x[s.colIdx[p]]
		}
		dst[i] = acc
	}
	return dst
}

// VecMulInto stores xᵀ·s into dst and returns dst. dst must not alias x.
func (s *CSR) VecMulInto(dst, x Vector) Vector {
	if len(x) != s.rows {
		panic(fmt.Sprintf("mat: CSR VecMul len(x)=%d want %d", len(x), s.rows))
	}
	if len(dst) != s.cols {
		panic(fmt.Sprintf("mat: CSR VecMul len(dst)=%d want %d", len(dst), s.cols))
	}
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < s.rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		for p := s.rowPtr[i]; p < s.rowPtr[i+1]; p++ {
			dst[s.colIdx[p]] += xi * s.val[p]
		}
	}
	return dst
}

// parallelSparseFlops is the multiply-add count above which the two
// matrix-level CSR products split their output rows across CPUs. Sparse
// multiply-adds carry an index load each, so the cutoff sits below the
// dense kernel's.
const parallelSparseFlops = 1 << 19

// MulCSRInto computes dst = a·s (dense × CSR), the Commit-update form
// X = A·M: for each row of a, the nonzeros of s's row k are scattered into
// the output row scaled by a[i,k]. dst must not alias a and must have
// shape a.Rows × s.Cols. Rows are split across CPUs above a work cutoff;
// each output row is produced by exactly one goroutine with the same
// per-row evaluation order as the serial loop, so the result is
// bit-deterministic.
func MulCSRInto(dst, a *Matrix, s *CSR) {
	if a.Cols != s.rows {
		panic(fmt.Sprintf("mat: MulCSR inner dims %d vs %d", a.Cols, s.rows))
	}
	if dst.Rows != a.Rows || dst.Cols != s.cols {
		panic(fmt.Sprintf("mat: MulCSR dst %d×%d want %d×%d", dst.Rows, dst.Cols, a.Rows, s.cols))
	}
	if sameBacking(dst.Data, a.Data) {
		panic("mat: MulCSRInto dst aliases an operand")
	}
	// Serial path stays closure-free: 0 allocs/op (see MulInto).
	if !par.Default().Parallel(a.Rows, int64(a.Rows)*int64(s.NNZ()), parallelSparseFlops) {
		mulCSRRows(dst, a, s, 0, a.Rows)
		return
	}
	par.Default().For(a.Rows, func(lo, hi int) { mulCSRRows(dst, a, s, lo, hi) })
}

// mulCSRRows computes rows [lo,hi) of dst = a·s.
func mulCSRRows(dst, a *Matrix, s *CSR, lo, hi int) {
	for i := lo; i < hi; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		drow := dst.Data[i*s.cols : (i+1)*s.cols]
		for j := range drow {
			drow[j] = 0
		}
		for k, aik := range arow {
			if aik == 0 {
				continue
			}
			for p := s.rowPtr[k]; p < s.rowPtr[k+1]; p++ {
				drow[s.colIdx[p]] += aik * s.val[p]
			}
		}
	}
}

// MulMatInto computes dst = s·b (CSR × dense), the backward-update form
// Mᵀ·B when called on a precomputed transpose. dst must not alias b and
// must have shape s.Rows × b.Cols. Parallel and bit-deterministic like
// MulCSRInto.
func (s *CSR) MulMatInto(dst, b *Matrix) {
	if s.cols != b.Rows {
		panic(fmt.Sprintf("mat: CSR MulMat inner dims %d vs %d", s.cols, b.Rows))
	}
	if dst.Rows != s.rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("mat: CSR MulMat dst %d×%d want %d×%d", dst.Rows, dst.Cols, s.rows, b.Cols))
	}
	if sameBacking(dst.Data, b.Data) {
		panic("mat: CSR MulMatInto dst aliases an operand")
	}
	if !par.Default().Parallel(s.rows, int64(s.NNZ())*int64(b.Cols), parallelSparseFlops) {
		s.mulMatRows(dst, b, 0, s.rows)
		return
	}
	par.Default().For(s.rows, func(lo, hi int) { s.mulMatRows(dst, b, lo, hi) })
}

// mulMatRows computes rows [lo,hi) of dst = s·b.
func (s *CSR) mulMatRows(dst, b *Matrix, lo, hi int) {
	bc := b.Cols
	for i := lo; i < hi; i++ {
		drow := dst.Data[i*bc : (i+1)*bc]
		for j := range drow {
			drow[j] = 0
		}
		for p := s.rowPtr[i]; p < s.rowPtr[i+1]; p++ {
			sv := s.val[p]
			brow := b.Data[int(s.colIdx[p])*bc : (int(s.colIdx[p])+1)*bc]
			for j, bv := range brow {
				drow[j] += sv * bv
			}
		}
	}
}
