package mat

import (
	"math/rand"
	"testing"
)

// randSparse returns an n×n matrix with roughly density·n² nonzeros.
func randSparse(rng *rand.Rand, n int, density float64) *Matrix {
	m := NewMatrix(n, n)
	for i := range m.Data {
		if rng.Float64() < density {
			m.Data[i] = rng.NormFloat64()
		}
	}
	return m
}

func randVec(rng *rand.Rand, n int) Vector {
	v := NewVector(n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

// sameExact compares element-for-element with ==: the sparse kernels must
// agree with the dense ones bit-for-bit (zero-sign aside), not just
// approximately — release determinism depends on it.
func sameExact(t *testing.T, label string, got, want Vector) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: len %d vs %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: [%d] = %v, want %v", label, i, got[i], want[i])
		}
	}
}

func TestCSRRoundTripAndStats(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 7, 33} {
		for _, d := range []float64{0, 0.05, 0.5, 1} {
			m := randSparse(rng, n, d)
			s := CSRFromDense(m)
			if !s.Dense().EqualApprox(m, 0) {
				t.Fatalf("n=%d d=%g: Dense round trip mismatch", n, d)
			}
			nnz := 0
			for _, v := range m.Data {
				if v != 0 {
					nnz++
				}
			}
			if s.NNZ() != nnz {
				t.Fatalf("NNZ = %d, want %d", s.NNZ(), nnz)
			}
			if got, want := s.Density(), float64(nnz)/float64(n*n); got != want {
				t.Fatalf("Density = %v, want %v", got, want)
			}
			if s.Rows() != n || s.Cols() != n {
				t.Fatalf("shape %dx%d, want %dx%d", s.Rows(), s.Cols(), n, n)
			}
		}
	}
}

func TestCSRTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{3, 17, 40} {
		m := randSparse(rng, n, 0.12)
		got := CSRFromDense(m).Transpose().Dense()
		if !got.EqualApprox(m.Transpose(), 0) {
			t.Fatalf("n=%d: CSR transpose mismatch", n)
		}
	}
}

func TestCSRMatchesDenseKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// n=400 at ~1% density crosses the parallel cutoff for the
	// matrix-level products, exercising the goroutine split too.
	for _, tc := range []struct {
		n       int
		density float64
	}{{5, 0.4}, {60, 0.07}, {400, 0.012}} {
		m := randSparse(rng, tc.n, tc.density)
		s := CSRFromDense(m)
		x := randVec(rng, tc.n)

		sameExact(t, "MulVec", s.MulVecInto(NewVector(tc.n), x), m.MulVec(x))
		sameExact(t, "VecMul", s.VecMulInto(NewVector(tc.n), x), m.VecMul(x))

		a := randSparse(rng, tc.n, 0.6)
		want := a.Mul(m)
		got := NewMatrix(tc.n, tc.n)
		MulCSRInto(got, a, s)
		sameExact(t, "MulCSR", got.Data, want.Data)

		wantT := NewMatrix(tc.n, tc.n)
		MulInto(wantT, m.Transpose(), a)
		gotT := NewMatrix(tc.n, tc.n)
		s.Transpose().MulMatInto(gotT, a)
		sameExact(t, "MulMat", gotT.Data, wantT.Data)
	}
}

func TestCSRShapePanics(t *testing.T) {
	s := CSRFromDense(Identity(3))
	for name, f := range map[string]func(){
		"MulVec x":    func() { s.MulVecInto(NewVector(3), NewVector(2)) },
		"MulVec dst":  func() { s.MulVecInto(NewVector(2), NewVector(3)) },
		"VecMul x":    func() { s.VecMulInto(NewVector(3), NewVector(2)) },
		"VecMul dst":  func() { s.VecMulInto(NewVector(2), NewVector(3)) },
		"MulCSR":      func() { MulCSRInto(NewMatrix(3, 3), NewMatrix(3, 2), s) },
		"MulCSR dst":  func() { MulCSRInto(NewMatrix(2, 3), NewMatrix(3, 3), s) },
		"MulMat":      func() { s.MulMatInto(NewMatrix(3, 3), NewMatrix(2, 3)) },
		"MulMat dst":  func() { s.MulMatInto(NewMatrix(3, 2), NewMatrix(3, 3)) },
		"ColInto dst": func() { Identity(3).ColInto(NewVector(2), 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

func TestColInto(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	dst := NewVector(2)
	if got := m.ColInto(dst, 1); !got.EqualApprox(Vector{2, 4}, 0) {
		t.Fatalf("ColInto = %v", got)
	}
	if &dst[0] != &m.ColInto(dst, 0)[0] {
		t.Fatal("ColInto does not return dst")
	}
}
