package mat

import (
	"math/rand/v2"
	"testing"
)

// randomNonNeg returns a rows×cols matrix of non-negative entries with
// the given zero fraction (the engine's operators and transition matrices
// are non-negative; bit-identity of the kernels is claimed on that
// domain).
func randomNonNeg(rng *rand.Rand, rows, cols int, zeroFrac float64) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		if rng.Float64() < zeroFrac {
			continue
		}
		m.Data[i] = rng.Float64()
	}
	return m
}

func TestMulABtIntoMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	// Sizes straddle the micro-kernel's 4-row/2-column blocking remainders
	// and (at 300+) the parallel split.
	for _, sz := range []struct{ m, k, n int }{
		{1, 1, 1}, {2, 3, 2}, {4, 4, 4}, {5, 7, 3}, {6, 5, 9},
		{17, 13, 19}, {32, 32, 32}, {33, 31, 35}, {300, 300, 300},
	} {
		for _, zero := range []float64{0, 0.5, 0.95} {
			a := randomNonNeg(rng, sz.m, sz.k, zero)
			b := randomNonNeg(rng, sz.k, sz.n, zero)
			want := NewMatrix(sz.m, sz.n)
			MulInto(want, a, b)
			got := NewMatrix(sz.m, sz.n)
			MulABtInto(got, a, b.Transpose())
			for i := range want.Data {
				if want.Data[i] != got.Data[i] {
					t.Fatalf("size %v zero=%g: element %d differs: naive %v blocked %v",
						sz, zero, i, want.Data[i], got.Data[i])
				}
			}
		}
	}
}

func TestTransposeInto(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	src := randomNonNeg(rng, 7, 5, 0.2)
	dst := NewMatrix(5, 7)
	TransposeInto(dst, src)
	want := src.Transpose()
	for i := range want.Data {
		if dst.Data[i] != want.Data[i] {
			t.Fatalf("element %d differs", i)
		}
	}
}

func BenchmarkMulNaive400(b *testing.B) {
	rng := rand.New(rand.NewPCG(9, 9))
	a := randomNonNeg(rng, 400, 400, 0)
	m := randomNonNeg(rng, 400, 400, 0)
	dst := NewMatrix(400, 400)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulInto(dst, a, m)
	}
}

func BenchmarkMulBlocked400(b *testing.B) {
	rng := rand.New(rand.NewPCG(9, 9))
	a := randomNonNeg(rng, 400, 400, 0)
	m := randomNonNeg(rng, 400, 400, 0)
	mt := m.Transpose()
	dst := NewMatrix(400, 400)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulABtInto(dst, a, mt)
	}
}
