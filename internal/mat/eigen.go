package mat

import (
	"fmt"
	"math"
)

// SymEigen computes the full eigendecomposition of a symmetric matrix using
// the cyclic Jacobi method. It returns the eigenvalues (unsorted storage is
// sorted ascending before return) and a matrix whose columns are the
// corresponding orthonormal eigenvectors.
//
// The PriSTE quadratic forms are rank-one products ã·w̃ᵀ whose symmetric
// parts have at most two non-zero eigenvalues; SymEigen is used by the QP
// package to classify definiteness and by tests to validate the closed-form
// rank-one eigenpair used on the hot path.
func SymEigen(a *Matrix) (Vector, *Matrix, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, nil, fmt.Errorf("mat: SymEigen needs square matrix, got %d×%d", a.Rows, a.Cols)
	}
	const symTol = 1e-9
	scale := a.MaxAbs()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if math.Abs(a.At(i, j)-a.At(j, i)) > symTol*math.Max(1, scale) {
				return nil, nil, fmt.Errorf("mat: SymEigen matrix not symmetric at (%d,%d): %g vs %g",
					i, j, a.At(i, j), a.At(j, i))
			}
		}
	}
	w := a.Clone()
	v := Identity(n)
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += w.At(i, j) * w.At(i, j)
			}
		}
		if off <= 1e-28*math.Max(1, scale*scale) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if apq == 0 {
					continue
				}
				app, aqq := w.At(p, p), w.At(q, q)
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(theta*theta+1))
				} else {
					t = -1 / (-theta + math.Sqrt(theta*theta+1))
				}
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				jacobiRotate(w, v, p, q, c, s)
			}
		}
	}
	vals := NewVector(n)
	for i := 0; i < n; i++ {
		vals[i] = w.At(i, i)
	}
	sortEigen(vals, v)
	return vals, v, nil
}

// jacobiRotate applies the rotation J(p,q,c,s) as w ← JᵀwJ and accumulates
// v ← vJ.
func jacobiRotate(w, v *Matrix, p, q int, c, s float64) {
	n := w.Rows
	for k := 0; k < n; k++ {
		wkp, wkq := w.At(k, p), w.At(k, q)
		w.Set(k, p, c*wkp-s*wkq)
		w.Set(k, q, s*wkp+c*wkq)
	}
	for k := 0; k < n; k++ {
		wpk, wqk := w.At(p, k), w.At(q, k)
		w.Set(p, k, c*wpk-s*wqk)
		w.Set(q, k, s*wpk+c*wqk)
	}
	for k := 0; k < n; k++ {
		vkp, vkq := v.At(k, p), v.At(k, q)
		v.Set(k, p, c*vkp-s*vkq)
		v.Set(k, q, s*vkp+c*vkq)
	}
}

func sortEigen(vals Vector, vecs *Matrix) {
	n := len(vals)
	for i := 0; i < n; i++ {
		min := i
		for j := i + 1; j < n; j++ {
			if vals[j] < vals[min] {
				min = j
			}
		}
		if min != i {
			vals[i], vals[min] = vals[min], vals[i]
			for k := 0; k < n; k++ {
				a, b := vecs.At(k, i), vecs.At(k, min)
				vecs.Set(k, i, b)
				vecs.Set(k, min, a)
			}
		}
	}
}

// RankOneSymEigen returns the two (possibly) non-zero eigenvalues of the
// symmetric part (a·wᵀ + w·aᵀ)/2 of a rank-one product. Eigenvalues are
// (a·w ± |a||w|)/2; all remaining eigenvalues are zero. This closed form is
// what the QP solver uses to classify the PriSTE quadratic without an O(n³)
// eigendecomposition.
func RankOneSymEigen(a, w Vector) (lo, hi float64) {
	if len(a) != len(w) {
		panic(fmt.Sprintf("mat: RankOneSymEigen length mismatch %d vs %d", len(a), len(w)))
	}
	dot := a.Dot(w)
	na := math.Sqrt(a.Dot(a))
	nw := math.Sqrt(w.Dot(w))
	lo = (dot - na*nw) / 2
	hi = (dot + na*nw) / 2
	return lo, hi
}
