package mat

import "priste/internal/par"

// Blocked dense multiplication.
//
// The Theorem IV.1 forward-operator updates are dense m×m products
// (X = A·M, and Mᵀ·B on the backward phase). The naive i-k-j loop in
// MulInto streams a store per output element per k step; the kernel here
// instead computes each output element as a dot product against a
// precomputed transpose of the right operand, holding a 4×2 block of
// accumulators in registers — 8 independent multiply-add chains, one
// store per output element, and operand rows that stay resident across
// the inner loop.
//
// Bit-identity with the naive kernel: every accumulator sums its k terms
// in ascending order — exactly the order MulInto adds them — so each
// output element is produced by the identical sequence of floating-point
// operations. (MulInto skips a[i][k] == 0 terms; on the engine's
// non-negative data those terms contribute an exact +0, which leaves the
// running sum unchanged, so the skip is immaterial — the same argument
// that makes the CSR kernels bit-identical, see CSR.) The k chain is
// never split or reassociated, which is also why the micro-kernel does
// not use fused multiply-add: fusing would change the rounding of every
// partial sum.

// MulABtInto computes dst = a·btᵀ, i.e. dst[i][j] = Σ_k a[i][k]·bt[j][k]
// — the blocked form of MulInto(dst, a, b) for callers holding bᵀ. dst
// must not alias a or bt and must have shape a.Rows × bt.Rows. Row tiles
// are split across the shared pool above the same work cutoff as
// MulInto, with fixed tile boundaries and each output row produced by
// exactly one goroutine, so the result is bit-deterministic at any
// parallelism.
func MulABtInto(dst, a, bt *Matrix) {
	if a.Cols != bt.Cols {
		panic("mat: MulABt inner dims mismatch")
	}
	if dst.Rows != a.Rows || dst.Cols != bt.Rows {
		panic("mat: MulABt dst shape mismatch")
	}
	if sameBacking(dst.Data, a.Data) || sameBacking(dst.Data, bt.Data) {
		panic("mat: MulABtInto dst aliases an operand")
	}
	if !par.Default().Parallel(a.Rows, int64(a.Rows)*int64(a.Cols)*int64(bt.Rows), parallelFlops) {
		mulABtRows(dst, a, bt, 0, a.Rows)
		return
	}
	par.Default().For(a.Rows, func(lo, hi int) { mulABtRows(dst, a, bt, lo, hi) })
}

// mulABtRows computes rows [lo,hi) of dst = a·btᵀ with a 4-row × 2-column
// register-blocked micro-kernel.
func mulABtRows(dst, a, bt *Matrix, lo, hi int) {
	kk := a.Cols
	n := bt.Rows
	i := lo
	for ; i+4 <= hi; i += 4 {
		a0 := a.Data[(i+0)*kk : (i+0)*kk+kk]
		a1 := a.Data[(i+1)*kk : (i+1)*kk+kk]
		a2 := a.Data[(i+2)*kk : (i+2)*kk+kk]
		a3 := a.Data[(i+3)*kk : (i+3)*kk+kk]
		d0 := dst.Data[(i+0)*n : (i+0)*n+n]
		d1 := dst.Data[(i+1)*n : (i+1)*n+n]
		d2 := dst.Data[(i+2)*n : (i+2)*n+n]
		d3 := dst.Data[(i+3)*n : (i+3)*n+n]
		j := 0
		for ; j+2 <= n; j += 2 {
			b0 := bt.Data[(j+0)*kk : (j+0)*kk+kk]
			b1 := bt.Data[(j+1)*kk : (j+1)*kk+kk]
			var c00, c01, c10, c11, c20, c21, c30, c31 float64
			for k, bv0 := range b0 {
				bv1 := b1[k]
				av := a0[k]
				c00 += av * bv0
				c01 += av * bv1
				av = a1[k]
				c10 += av * bv0
				c11 += av * bv1
				av = a2[k]
				c20 += av * bv0
				c21 += av * bv1
				av = a3[k]
				c30 += av * bv0
				c31 += av * bv1
			}
			d0[j], d0[j+1] = c00, c01
			d1[j], d1[j+1] = c10, c11
			d2[j], d2[j+1] = c20, c21
			d3[j], d3[j+1] = c30, c31
		}
		for ; j < n; j++ {
			b0 := bt.Data[j*kk : j*kk+kk]
			var c0, c1, c2, c3 float64
			for k, bv := range b0 {
				c0 += a0[k] * bv
				c1 += a1[k] * bv
				c2 += a2[k] * bv
				c3 += a3[k] * bv
			}
			d0[j], d1[j], d2[j], d3[j] = c0, c1, c2, c3
		}
	}
	for ; i < hi; i++ {
		arow := a.Data[i*kk : i*kk+kk]
		drow := dst.Data[i*n : i*n+n]
		for j := 0; j < n; j++ {
			b0 := bt.Data[j*kk : j*kk+kk]
			var c float64
			for k, bv := range b0 {
				c += arow[k] * bv
			}
			drow[j] = c
		}
	}
}

// TransposeInto stores srcᵀ into dst and returns dst. dst must not alias
// src and must have shape src.Cols × src.Rows. It exists for hot paths
// that transpose into reused scratch (the backward Commit update feeds
// the blocked kernel a transpose of the accumulator each step).
func TransposeInto(dst, src *Matrix) *Matrix {
	if dst.Rows != src.Cols || dst.Cols != src.Rows {
		panic("mat: TransposeInto dst shape mismatch")
	}
	if sameBacking(dst.Data, src.Data) {
		panic("mat: TransposeInto dst aliases src")
	}
	for i := 0; i < src.Rows; i++ {
		row := src.Data[i*src.Cols : (i+1)*src.Cols]
		for j, v := range row {
			dst.Data[j*dst.Cols+i] = v
		}
	}
	return dst
}
