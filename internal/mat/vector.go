// Package mat provides the dense linear-algebra substrate used by the
// PriSTE quantifier: row-major matrices, vectors, blocked multiplication,
// Hadamard products, diagonal scaling and a symmetric eigensolver.
//
// The package is deliberately small and allocation-conscious: the PriSTE
// release loop multiplies m×m and m×2m matrices at every timestamp, so all
// hot operations offer an "into destination" form that reuses storage.
package mat

import (
	"errors"
	"fmt"
	"math"
)

// Vector is a dense float64 vector. The zero value is an empty vector.
type Vector []float64

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// Ones returns a vector of length n with every element set to 1.
func Ones(n int) Vector {
	v := make(Vector, n)
	for i := range v {
		v[i] = 1
	}
	return v
}

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	w := make(Vector, len(v))
	copy(w, v)
	return w
}

// Dot returns the inner product of v and w.
// It panics if the lengths differ.
func (v Vector) Dot(w Vector) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("mat: Dot length mismatch %d vs %d", len(v), len(w)))
	}
	var s float64
	for i, x := range v {
		s += x * w[i]
	}
	return s
}

// Sum returns the sum of all elements.
func (v Vector) Sum() float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// Max returns the maximum element, or -Inf for an empty vector.
func (v Vector) Max() float64 {
	m := math.Inf(-1)
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum element, or +Inf for an empty vector.
func (v Vector) Min() float64 {
	m := math.Inf(1)
	for _, x := range v {
		if x < m {
			m = x
		}
	}
	return m
}

// AbsMax returns the maximum absolute element, or 0 for an empty vector.
func (v Vector) AbsMax() float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Scale multiplies every element by c in place and returns v.
func (v Vector) Scale(c float64) Vector {
	for i := range v {
		v[i] *= c
	}
	return v
}

// AddInto stores v+w into dst and returns dst. dst may alias v or w.
func (v Vector) AddInto(dst, w Vector) Vector {
	checkLen3(len(dst), len(v), len(w))
	for i := range v {
		dst[i] = v[i] + w[i]
	}
	return dst
}

// SubInto stores v-w into dst and returns dst. dst may alias v or w.
func (v Vector) SubInto(dst, w Vector) Vector {
	checkLen3(len(dst), len(v), len(w))
	for i := range v {
		dst[i] = v[i] - w[i]
	}
	return dst
}

// HadamardInto stores the elementwise product v∘w into dst and returns dst.
func (v Vector) HadamardInto(dst, w Vector) Vector {
	checkLen3(len(dst), len(v), len(w))
	for i := range v {
		dst[i] = v[i] * w[i]
	}
	return dst
}

// Hadamard returns a new vector holding v∘w.
func (v Vector) Hadamard(w Vector) Vector {
	return v.HadamardInto(NewVector(len(v)), w)
}

// Normalize scales v in place so it sums to 1 and returns the original sum.
// A zero (or numerically zero) vector is left unchanged and 0 is returned.
func (v Vector) Normalize() float64 {
	s := v.Sum()
	if s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		return 0
	}
	v.Scale(1 / s)
	return s
}

// EqualApprox reports whether v and w have the same length and every pair of
// elements differs by at most tol.
func (v Vector) EqualApprox(w Vector, tol float64) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if math.Abs(v[i]-w[i]) > tol {
			return false
		}
	}
	return true
}

// IsDistribution reports whether v is a probability distribution: all
// elements non-negative and summing to 1 within tol.
func (v Vector) IsDistribution(tol float64) bool {
	for _, x := range v {
		if x < -tol || math.IsNaN(x) {
			return false
		}
	}
	return math.Abs(v.Sum()-1) <= tol
}

// ArgMax returns the index of the largest element (-1 for empty).
func (v Vector) ArgMax() int {
	best, bi := math.Inf(-1), -1
	for i, x := range v {
		if x > best {
			best, bi = x, i
		}
	}
	return bi
}

// ErrDimension is returned by checked constructors on shape mismatches.
var ErrDimension = errors.New("mat: dimension mismatch")

func checkLen3(a, b, c int) {
	if a != b || b != c {
		panic(fmt.Sprintf("mat: length mismatch %d, %d, %d", a, b, c))
	}
}
