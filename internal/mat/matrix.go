package mat

import (
	"fmt"
	"math"
	"strings"

	"priste/internal/par"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix returns a zero Rows×Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: negative dimensions %d×%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices. All rows must share a length.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	c := len(rows[0])
	m := NewMatrix(len(rows), c)
	for i, r := range rows {
		if len(r) != c {
			panic(fmt.Sprintf("mat: ragged rows: row %d has %d cols, want %d", i, len(r), c))
		}
		copy(m.Row(i), r)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns element (i,j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i,j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) Vector { return Vector(m.Data[i*m.Cols : (i+1)*m.Cols]) }

// Col returns a copy of column j. Hot paths that extract a column per
// call should use ColInto with a reused buffer instead.
func (m *Matrix) Col(j int) Vector {
	return m.ColInto(NewVector(m.Rows), j)
}

// ColInto stores column j into dst and returns dst.
func (m *Matrix) ColInto(dst Vector, j int) Vector {
	if len(dst) != m.Rows {
		panic(fmt.Sprintf("mat: ColInto len(dst)=%d want %d", len(dst), m.Rows))
	}
	for i := 0; i < m.Rows; i++ {
		dst[i] = m.Data[i*m.Cols+j]
	}
	return dst
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	n := NewMatrix(m.Rows, m.Cols)
	copy(n.Data, m.Data)
	return n
}

// CopyFrom copies src into m; shapes must match.
func (m *Matrix) CopyFrom(src *Matrix) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(fmt.Sprintf("mat: CopyFrom shape %d×%d vs %d×%d", m.Rows, m.Cols, src.Rows, src.Cols))
	}
	copy(m.Data, src.Data)
}

// Zero sets every element to 0 and returns m.
func (m *Matrix) Zero() *Matrix {
	for i := range m.Data {
		m.Data[i] = 0
	}
	return m
}

// Scale multiplies every element by c in place and returns m.
func (m *Matrix) Scale(c float64) *Matrix {
	for i := range m.Data {
		m.Data[i] *= c
	}
	return m
}

// Transpose returns a newly allocated transpose of m.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			t.Data[j*t.Cols+i] = v
		}
	}
	return t
}

// MulVec returns m·x (treating x as a column vector).
func (m *Matrix) MulVec(x Vector) Vector {
	return m.MulVecInto(NewVector(m.Rows), x)
}

// MulVecInto stores m·x into dst and returns dst. dst must not alias x.
func (m *Matrix) MulVecInto(dst, x Vector) Vector {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("mat: MulVec len(x)=%d want %d", len(x), m.Cols))
	}
	if len(dst) != m.Rows {
		panic(fmt.Sprintf("mat: MulVec len(dst)=%d want %d", len(dst), m.Rows))
	}
	for i := 0; i < m.Rows; i++ {
		dst[i] = Vector(m.Data[i*m.Cols : (i+1)*m.Cols]).Dot(x)
	}
	return dst
}

// VecMul returns xᵀ·m as a row vector (length m.Cols).
func (m *Matrix) VecMul(x Vector) Vector {
	return m.VecMulInto(NewVector(m.Cols), x)
}

// VecMulInto stores xᵀ·m into dst and returns dst. dst must not alias x.
func (m *Matrix) VecMulInto(dst, x Vector) Vector {
	if len(x) != m.Rows {
		panic(fmt.Sprintf("mat: VecMul len(x)=%d want %d", len(x), m.Rows))
	}
	if len(dst) != m.Cols {
		panic(fmt.Sprintf("mat: VecMul len(dst)=%d want %d", len(dst), m.Cols))
	}
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < m.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			dst[j] += xi * v
		}
	}
	return dst
}

// Mul returns m·n as a new matrix using the blocked kernel.
func (m *Matrix) Mul(n *Matrix) *Matrix {
	out := NewMatrix(m.Rows, n.Cols)
	MulInto(out, m, n)
	return out
}

// parallelFlops is the dense multiply-add count above which the matrix
// kernels fan tiles out through the shared worker pool; ~2·10⁷
// multiply-adds amortise the fork-join dispatch comfortably.
const parallelFlops = 1 << 24

// MulInto computes dst = a·b. dst must not alias a or b and must have shape
// a.Rows × b.Cols. The kernel is an i-k-j loop which is cache-friendly for
// row-major storage; products large enough to matter (the 400-state maps
// of the paper's experiments) are split row-wise across the shared pool.
func MulInto(dst, a, b *Matrix) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("mat: Mul inner dims %d vs %d", a.Cols, b.Rows))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("mat: Mul dst %d×%d want %d×%d", dst.Rows, dst.Cols, a.Rows, b.Cols))
	}
	if sameBacking(dst.Data, a.Data) || sameBacking(dst.Data, b.Data) {
		panic("mat: MulInto dst aliases an operand")
	}
	// Branch before the closure literal: the serial path must not
	// materialise a func value, keeping the hot multiply at 0 allocs/op
	// (asserted by TestSerialKernelsZeroAlloc).
	if !par.Default().Parallel(a.Rows, int64(a.Rows)*int64(a.Cols)*int64(b.Cols), parallelFlops) {
		mulRows(dst, a, b, 0, a.Rows)
		return
	}
	par.Default().For(a.Rows, func(lo, hi int) { mulRows(dst, a, b, lo, hi) })
}

// mulRows computes rows [lo,hi) of dst = a·b.
func mulRows(dst, a, b *Matrix, lo, hi int) {
	bc := b.Cols
	for i := lo; i < hi; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		drow := dst.Data[i*bc : (i+1)*bc]
		for j := range drow {
			drow[j] = 0
		}
		for k, aik := range arow {
			if aik == 0 {
				continue
			}
			brow := b.Data[k*bc : (k+1)*bc]
			for j, bkj := range brow {
				drow[j] += aik * bkj
			}
		}
	}
}

func sameBacking(a, b []float64) bool {
	return len(a) > 0 && len(b) > 0 && &a[0] == &b[0]
}

// ParallelRows runs body over [0,rows) through the shared par.Default()
// pool when the multiply-add count reaches cutoff (and the pool has CPU
// budget left), serially otherwise. Tile boundaries are a fixed function
// of rows — independent of worker count — and each row is produced by
// exactly one goroutine, so row-wise kernels stay bit-deterministic at
// any parallelism. The body closure escapes; kernels that must keep an
// allocation-free serial path branch on par.Default().Parallel
// themselves before materialising one (see MulInto).
func ParallelRows(rows int, flops, cutoff int64, body func(lo, hi int)) {
	if !par.Default().Parallel(rows, flops, cutoff) {
		body(0, rows)
		return
	}
	par.Default().For(rows, body)
}

// ParallelRowsMax is ParallelRows for row-chunk bodies that also reduce
// a maximum (e.g. the largest absolute entry written): it returns the max
// of the per-chunk results. The reduction is exact, so the result does
// not depend on the split.
func ParallelRowsMax(rows int, flops, cutoff int64, body func(lo, hi int) float64) float64 {
	if !par.Default().Parallel(rows, flops, cutoff) {
		return body(0, rows)
	}
	return par.Default().ForMax(rows, body)
}

// ScaleRowsMaxInto is ScaleRowsInto fused with a MaxAbs reduction over
// the result: it stores diag(d)·a into dst and returns the largest
// absolute element written, saving the hot loop a second full pass.
// dst may alias a.
func ScaleRowsMaxInto(dst, a *Matrix, d Vector) float64 {
	if len(d) != a.Rows {
		panic(fmt.Sprintf("mat: ScaleRowsMax len(d)=%d want %d", len(d), a.Rows))
	}
	if dst.Rows != a.Rows || dst.Cols != a.Cols {
		panic("mat: ScaleRowsMax dst shape mismatch")
	}
	var best float64
	for i := 0; i < a.Rows; i++ {
		src := a.Data[i*a.Cols : (i+1)*a.Cols]
		out := dst.Data[i*a.Cols : (i+1)*a.Cols]
		di := d[i]
		for j, v := range src {
			s := v * di
			out[j] = s
			if s := math.Abs(s); s > best {
				best = s
			}
		}
	}
	return best
}

// ScaleColsInto stores a·diag(d) into dst (column j scaled by d[j]) and
// returns dst. dst may alias a.
func ScaleColsInto(dst, a *Matrix, d Vector) *Matrix {
	if len(d) != a.Cols {
		panic(fmt.Sprintf("mat: ScaleCols len(d)=%d want %d", len(d), a.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != a.Cols {
		panic("mat: ScaleCols dst shape mismatch")
	}
	for i := 0; i < a.Rows; i++ {
		src := a.Data[i*a.Cols : (i+1)*a.Cols]
		out := dst.Data[i*a.Cols : (i+1)*a.Cols]
		for j, v := range src {
			out[j] = v * d[j]
		}
	}
	return dst
}

// ScaleRowsInto stores diag(d)·a into dst (row i scaled by d[i]) and returns
// dst. dst may alias a.
func ScaleRowsInto(dst, a *Matrix, d Vector) *Matrix {
	if len(d) != a.Rows {
		panic(fmt.Sprintf("mat: ScaleRows len(d)=%d want %d", len(d), a.Rows))
	}
	if dst.Rows != a.Rows || dst.Cols != a.Cols {
		panic("mat: ScaleRows dst shape mismatch")
	}
	for i := 0; i < a.Rows; i++ {
		src := a.Data[i*a.Cols : (i+1)*a.Cols]
		out := dst.Data[i*a.Cols : (i+1)*a.Cols]
		di := d[i]
		for j, v := range src {
			out[j] = v * di
		}
	}
	return dst
}

// AddInto stores a+b into dst and returns dst; dst may alias a or b.
func AddInto(dst, a, b *Matrix) *Matrix {
	if a.Rows != b.Rows || a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != a.Cols {
		panic("mat: AddInto shape mismatch")
	}
	for i := range a.Data {
		dst.Data[i] = a.Data[i] + b.Data[i]
	}
	return dst
}

// SubInto stores a-b into dst and returns dst; dst may alias a or b.
func SubInto(dst, a, b *Matrix) *Matrix {
	if a.Rows != b.Rows || a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != a.Cols {
		panic("mat: SubInto shape mismatch")
	}
	for i := range a.Data {
		dst.Data[i] = a.Data[i] - b.Data[i]
	}
	return dst
}

// Outer returns the outer product a·bᵀ as a len(a)×len(b) matrix.
func Outer(a, b Vector) *Matrix {
	m := NewMatrix(len(a), len(b))
	for i, ai := range a {
		if ai == 0 {
			continue
		}
		row := m.Row(i)
		for j, bj := range b {
			row[j] = ai * bj
		}
	}
	return m
}

// MaxAbs returns the largest absolute element of m (0 for empty).
func (m *Matrix) MaxAbs() float64 {
	var best float64
	for _, v := range m.Data {
		if a := math.Abs(v); a > best {
			best = a
		}
	}
	return best
}

// EqualApprox reports whether m and n share a shape and agree elementwise
// within tol.
func (m *Matrix) EqualApprox(n *Matrix, tol float64) bool {
	if m.Rows != n.Rows || m.Cols != n.Cols {
		return false
	}
	for i, v := range m.Data {
		if math.Abs(v-n.Data[i]) > tol {
			return false
		}
	}
	return true
}

// IsRowStochastic reports whether every row of m is a probability
// distribution within tol.
func (m *Matrix) IsRowStochastic(tol float64) bool {
	for i := 0; i < m.Rows; i++ {
		if !m.Row(i).IsDistribution(tol) {
			return false
		}
	}
	return true
}

// String renders the matrix for debugging and test failure messages.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.Rows; i++ {
		b.WriteString("[")
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "%.6g", m.At(i, j))
		}
		b.WriteString("]\n")
	}
	return b.String()
}
