// Package eventspec parses the compact textual event specifications shared
// by the priste CLI and the pristed server. A spec names one PRESENCE
// event as "LO-HI@START-END": protect the region of states LO..HI
// (0-based, inclusive, row-major over the map) during timestamps
// START..END (0-based, inclusive).
package eventspec

import (
	"fmt"
	"strconv"
	"strings"

	"priste/internal/event"
	"priste/internal/grid"
)

// Parse parses one "LO-HI@START-END" PRESENCE spec over an m-state map.
// When horizon > 0 the event window must end before horizon; a
// non-positive horizon disables the bound (open-ended sessions).
func Parse(spec string, m, horizon int) (event.Event, error) {
	parts := strings.Split(spec, "@")
	if len(parts) != 2 {
		return nil, fmt.Errorf("eventspec: %q: want LO-HI@START-END", spec)
	}
	lo, hi, err := ParseRange(parts[0])
	if err != nil {
		return nil, fmt.Errorf("eventspec: %q states: %w", spec, err)
	}
	start, end, err := ParseRange(parts[1])
	if err != nil {
		return nil, fmt.Errorf("eventspec: %q window: %w", spec, err)
	}
	if hi >= m {
		return nil, fmt.Errorf("eventspec: %q: state %d outside %d-state map", spec, hi, m)
	}
	if horizon > 0 && end >= horizon {
		return nil, fmt.Errorf("eventspec: %q: window end %d outside horizon %d", spec, end, horizon)
	}
	region := grid.NewRegion(m)
	for s := lo; s <= hi; s++ {
		region.Add(s)
	}
	return event.NewPresence(region, start, end)
}

// ParseAll parses a list of specs with Parse.
func ParseAll(specs []string, m, horizon int) ([]event.Event, error) {
	out := make([]event.Event, 0, len(specs))
	for _, spec := range specs {
		ev, err := Parse(spec, m, horizon)
		if err != nil {
			return nil, err
		}
		out = append(out, ev)
	}
	return out, nil
}

// ListFlag collects repeated -event command-line flags (flag.Value).
type ListFlag []string

// String joins the collected specs.
func (e *ListFlag) String() string { return strings.Join(*e, ";") }

// Set appends one spec.
func (e *ListFlag) Set(v string) error {
	*e = append(*e, v)
	return nil
}

// ParseRange parses "LO-HI" into a non-empty inclusive integer range with
// 0 <= LO <= HI.
func ParseRange(s string) (lo, hi int, err error) {
	parts := strings.Split(s, "-")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("want LO-HI, got %q", s)
	}
	if lo, err = strconv.Atoi(parts[0]); err != nil {
		return 0, 0, err
	}
	if hi, err = strconv.Atoi(parts[1]); err != nil {
		return 0, 0, err
	}
	if lo < 0 || hi < lo {
		return 0, 0, fmt.Errorf("invalid range %d-%d", lo, hi)
	}
	return lo, hi, nil
}
