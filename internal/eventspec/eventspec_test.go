package eventspec

import (
	"strings"
	"testing"

	"priste/internal/event"
)

func TestParseValid(t *testing.T) {
	ev, err := Parse("0-9@3-7", 100, 20)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	p, ok := ev.(*event.Presence)
	if !ok {
		t.Fatalf("got %T, want *event.Presence", ev)
	}
	start, end := p.Window()
	if start != 3 || end != 7 {
		t.Fatalf("window = [%d,%d], want [3,7]", start, end)
	}
	for s := 0; s <= 9; s++ {
		if !p.Region.Contains(s) {
			t.Fatalf("region missing state %d", s)
		}
	}
	if p.Region.Contains(10) {
		t.Fatal("region contains state 10")
	}
}

func TestParseHorizon(t *testing.T) {
	if _, err := Parse("0-9@3-7", 100, 7); err == nil {
		t.Fatal("window end 7 should be rejected for horizon 7")
	}
	// Non-positive horizon disables the bound (open-ended sessions).
	if _, err := Parse("0-9@3-7", 100, 0); err != nil {
		t.Fatalf("horizon 0 should disable the bound: %v", err)
	}
	if _, err := Parse("0-9@3-7", 100, -1); err != nil {
		t.Fatalf("horizon -1 should disable the bound: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		spec string
		want string
	}{
		{"0-9", "want LO-HI@START-END"},
		{"0-9@3-7@1-2", "want LO-HI@START-END"},
		{"9-0@3-7", "invalid range"},
		{"a-9@3-7", "invalid syntax"},
		{"0-9@7-3", "invalid range"},
		{"0-99@3-7", "outside 50-state map"},
		{"0@3-7", "want LO-HI"},
	}
	for _, c := range cases {
		_, err := Parse(c.spec, 50, 20)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error containing %q", c.spec, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) = %v, want error containing %q", c.spec, err, c.want)
		}
	}
}

func TestParseAll(t *testing.T) {
	evs, err := ParseAll([]string{"0-3@0-2", "4-7@5-9"}, 16, 10)
	if err != nil {
		t.Fatalf("ParseAll: %v", err)
	}
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	if _, err := ParseAll([]string{"0-3@0-2", "bad"}, 16, 10); err == nil {
		t.Fatal("ParseAll with a bad spec should fail")
	}
}

func TestParseRange(t *testing.T) {
	lo, hi, err := ParseRange("2-5")
	if err != nil || lo != 2 || hi != 5 {
		t.Fatalf("ParseRange(2-5) = %d,%d,%v", lo, hi, err)
	}
	if _, _, err := ParseRange("5"); err == nil {
		t.Fatal("ParseRange(5) should fail")
	}
	if _, _, err := ParseRange("-1-5"); err == nil {
		t.Fatal("ParseRange(-1-5) should fail")
	}
}
