package core

import (
	"math/rand"
	"testing"

	"priste/internal/event"
	"priste/internal/grid"
	"priste/internal/lppm"
	"priste/internal/markov"
	"priste/internal/mat"
	"priste/internal/world"
)

// TestFrameworkWithCompiledEvent drives the release loop with an event
// produced by the Boolean-expression compiler.
func TestFrameworkWithCompiledEvent(t *testing.T) {
	s := setup(t)
	expr := event.And(
		event.Or(event.Pred(2, 0), event.Pred(2, 1)),
		event.Or(event.Pred(4, 4), event.Pred(4, 5)),
	)
	ev, err := event.CompileWithStates(expr, 9)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	f, err := New(lppm.NewPlanarLaplace(s.g), s.tp, []event.Event{ev}, DefaultConfig(0.5, 1), rng)
	if err != nil {
		t.Fatal(err)
	}
	traj := s.chain.SamplePath(rng, markov.Uniform(9), 7)
	if _, err := f.Run(traj); err != nil {
		t.Fatal(err)
	}
	loss, err := f.RealizedLoss(0, markov.Uniform(9))
	if err != nil {
		t.Skip("degenerate prior for this compiled event")
	}
	if loss > 0.5+1e-6 {
		t.Fatalf("loss %v exceeds epsilon", loss)
	}
}

// TestFrameworkWithSparsePresence protects a non-consecutive-time event.
func TestFrameworkWithSparsePresence(t *testing.T) {
	s := setup(t)
	region, err := grid.RegionRect(s.g, 0, 0, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := event.NewSparsePresence(region, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(33))
	f, err := New(lppm.NewPlanarLaplace(s.g), s.tp, []event.Event{ev}, DefaultConfig(0.6, 1), rng)
	if err != nil {
		t.Fatal(err)
	}
	traj := s.chain.SamplePath(rng, markov.Uniform(9), 7)
	if _, err := f.Run(traj); err != nil {
		t.Fatal(err)
	}
	loss, err := f.RealizedLoss(0, markov.Uniform(9))
	if err != nil {
		t.Fatal(err)
	}
	if loss > 0.6+1e-6 {
		t.Fatalf("loss %v exceeds epsilon", loss)
	}
}

// TestFrameworkWithTimeVaryingChain drives the loop on a Varying
// provider (the paper's footnote 3 setting).
func TestFrameworkWithTimeVaryingChain(t *testing.T) {
	s := setup(t)
	// Morning chain: the Gaussian chain; afternoon chain: a lazier walk.
	lazy, err := markov.LazyRandomWalk(s.g, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := world.NewVarying([]*mat.Matrix{
		s.chain.Matrix(), s.chain.Matrix(), s.chain.Matrix(),
		lazy.Matrix(), lazy.Matrix(), lazy.Matrix(),
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(37))
	f, err := New(lppm.NewPlanarLaplace(s.g), tp, []event.Event{s.ev}, DefaultConfig(0.5, 1), rng)
	if err != nil {
		t.Fatal(err)
	}
	traj := s.chain.SamplePath(rng, markov.Uniform(9), 6)
	results, err := f.Run(traj)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 6 {
		t.Fatalf("released %d", len(results))
	}
	loss, err := f.RealizedLoss(0, markov.Uniform(9))
	if err != nil {
		t.Fatal(err)
	}
	if loss > 0.5+1e-6 {
		t.Fatalf("loss %v exceeds epsilon under time-varying chain", loss)
	}
}

// TestFrameworkUniformMechanism: the uniform mechanism trivially satisfies
// any epsilon without calibration.
func TestFrameworkUniformMechanism(t *testing.T) {
	s := setup(t)
	mech, err := lppm.NewUniform(9)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(41))
	f, err := New(mech, s.tp, []event.Event{s.ev}, DefaultConfig(0.01, 1), rng)
	if err != nil {
		t.Fatal(err)
	}
	traj := s.chain.SamplePath(rng, markov.Uniform(9), 5)
	results, err := f.Run(traj)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Attempts != 1 {
			t.Fatalf("uniform mechanism needed %d attempts at t=%d", r.Attempts, r.T)
		}
	}
}

// TestFrameworkIdentityMechanismForcedToFallback: the identity mechanism
// cannot satisfy a tight epsilon at any budget (its emission is
// budget-independent), so the loop must exhaust attempts and fall back.
func TestFrameworkIdentityMechanismForcedToFallback(t *testing.T) {
	s := setup(t)
	mech, err := lppm.NewIdentity(9)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(0.05, 1)
	cfg.MaxAttempts = 5
	rng := rand.New(rand.NewSource(43))
	f, err := New(mech, s.tp, []event.Event{s.ev}, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Walk straight through the sensitive region during the window.
	traj := []int{4, 3, 0, 0, 3, 4}
	results, err := f.Run(traj)
	if err != nil {
		t.Fatal(err)
	}
	fallbacks := 0
	for _, r := range results {
		if r.Uniform {
			fallbacks++
		}
	}
	if fallbacks == 0 {
		t.Fatal("identity mechanism should have been forced to the uniform fallback")
	}
	loss, err := f.RealizedLoss(0, markov.Uniform(9))
	if err != nil {
		t.Fatal(err)
	}
	if loss > 0.05+1e-6 {
		t.Fatalf("loss %v exceeds epsilon despite fallbacks", loss)
	}
}
