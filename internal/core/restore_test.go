package core

import (
	"errors"
	"math/rand/v2"
	"testing"

	"priste/internal/event"
	"priste/internal/grid"
	"priste/internal/lppm"
	"priste/internal/markov"
	"priste/internal/world"
)

// restoreHarness compiles a small plan for the given mechanism factory.
func restoreHarness(t *testing.T, mf MechanismFactory) *Plan {
	t.Helper()
	g, err := grid.New(5, 5, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	chain, err := markov.GaussianChain(g, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	region, err := grid.RegionRect(g, 0, 0, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := event.NewPresence(region, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(0.5, 1.0)
	cfg.QPTimeout = 0 // deterministic verdicts
	p, err := NewPlan(mf, world.NewHomogeneous(chain), []event.Event{ev}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func deltaFactory(t *testing.T) MechanismFactory {
	t.Helper()
	g, err := grid.New(5, 5, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	chain, err := markov.GaussianChain(g, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	pi := markov.Uniform(g.States())
	return func() (lppm.Perturber, error) {
		return lppm.NewDeltaLocationSet(g, chain, pi, 0.05)
	}
}

// testRestoreEquivalence steps a session, snapshots it mid-run, restores
// the snapshot into a fresh session, and checks the restored session's
// remaining releases are seed-for-seed identical to the uninterrupted
// run's.
func testRestoreEquivalence(t *testing.T, plan *Plan, restorePlan *Plan) {
	const (
		seed  = int64(42)
		pre   = 6
		post  = 6
		total = pre + post
	)
	traj := make([]int, total)
	pathRNG := rand.New(rand.NewPCG(7, 7))
	for i := range traj {
		traj[i] = pathRNG.IntN(plan.States())
	}

	full, err := plan.NewSession(NewSessionRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	want, err := full.Run(traj)
	if err != nil {
		t.Fatal(err)
	}

	half, err := plan.NewSession(NewSessionRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := half.Run(traj[:pre]); err != nil {
		t.Fatal(err)
	}
	snap, err := half.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if snap.T != pre || len(snap.Tags) != pre {
		t.Fatalf("snapshot T=%d tags=%d, want %d", snap.T, len(snap.Tags), pre)
	}
	if len(snap.RNG) == 0 {
		t.Fatal("snapshot carries no RNG state for a SessionRNG session")
	}

	restored, err := restorePlan.Restore(snap, NewSessionRNG(0))
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if restored.T() != pre {
		t.Fatalf("restored T = %d, want %d", restored.T(), pre)
	}
	if restored.Fingerprint() != half.Fingerprint() {
		t.Fatalf("restored fingerprint %#x != original %#x", restored.Fingerprint(), half.Fingerprint())
	}
	got, err := restored.Run(traj[pre:])
	if err != nil {
		t.Fatal(err)
	}
	for k := range got {
		g, w := got[k], want[pre+k]
		if g.T != w.T || g.Obs != w.Obs || g.Alpha != w.Alpha ||
			g.Attempts != w.Attempts || g.Uniform != w.Uniform {
			t.Errorf("post-restore step %d: got %+v, want %+v", k, g, w)
		}
	}
	// The restored session's full state matches: same fingerprint chain.
	if restored.Fingerprint() != full.Fingerprint() {
		t.Fatalf("final fingerprint %#x != uninterrupted %#x", restored.Fingerprint(), full.Fingerprint())
	}
}

func TestRestoreEquivalenceLaplace(t *testing.T) {
	g, err := grid.New(5, 5, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	plan := restoreHarness(t, SharedMechanism(lppm.NewPlanarLaplace(g)))
	testRestoreEquivalence(t, plan, plan)
}

func TestRestoreEquivalenceDelta(t *testing.T) {
	plan := restoreHarness(t, deltaFactory(t))
	testRestoreEquivalence(t, plan, plan)
}

func TestRestoreFingerprintMismatch(t *testing.T) {
	g, err := grid.New(5, 5, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	plan := restoreHarness(t, SharedMechanism(lppm.NewPlanarLaplace(g)))
	fw, err := plan.NewSession(NewSessionRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fw.Run([]int{0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	snap, err := fw.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	snap.Tags[1].Obs = (snap.Tags[1].Obs + 1) % plan.States()
	if _, err := plan.Restore(snap, NewSessionRNG(0)); !errors.Is(err, ErrFingerprintMismatch) {
		t.Fatalf("tampered tag log: err = %v, want ErrFingerprintMismatch", err)
	}
}

func TestRestoreRejectsInconsistentSnapshot(t *testing.T) {
	g, err := grid.New(5, 5, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	plan := restoreHarness(t, SharedMechanism(lppm.NewPlanarLaplace(g)))
	snap := Snapshot{T: 3, Fingerprint: world.FingerprintSeed}
	if _, err := plan.Restore(snap, NewSessionRNG(0)); err == nil {
		t.Fatal("T/tag-count mismatch accepted")
	}
	snap = Snapshot{Tags: []ReleaseTag{{Obs: 999, AlphaBits: 0}}, T: 1}
	if _, err := plan.Restore(snap, NewSessionRNG(0)); err == nil {
		t.Fatal("out-of-range observation accepted")
	}
}

// TestSessionRNGRoundTrip checks marshal/unmarshal resumes the exact
// draw sequence.
func TestSessionRNGRoundTrip(t *testing.T) {
	a := NewSessionRNG(99)
	for i := 0; i < 17; i++ {
		a.Float64()
	}
	state, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	b := NewSessionRNG(0)
	if err := b.UnmarshalBinary(state); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		if x, y := a.Float64(), b.Float64(); x != y {
			t.Fatalf("draw %d diverged: %g != %g", i, x, y)
		}
	}
}
