package core

import (
	"encoding"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"priste/internal/certcache"
	"priste/internal/event"
	"priste/internal/lppm"
	"priste/internal/mat"
	"priste/internal/par"
	"priste/internal/world"
)

// MechanismFactory builds one per-session Perturber. A factory backing a
// history-independent mechanism (lppm.HistoryIndependent) may — and
// SharedMechanism does — return the same instance on every call; a
// factory for a stateful mechanism (δ-location-set) must return a fresh
// instance each time, because each session owns its mechanism state.
type MechanismFactory func() (lppm.Perturber, error)

// SharedMechanism adapts a single Perturber instance into a factory that
// hands the same instance to every session. Safe for history-independent
// mechanisms; a stateful mechanism passed here supports only one session
// (Plan.NewSession rejects the second).
func SharedMechanism(mech lppm.Perturber) MechanismFactory {
	return func() (lppm.Perturber, error) { return mech, nil }
}

// planIDs allocates process-unique plan ids for certified-release cache
// keying.
var planIDs atomic.Uint64

// Plan is the immutable, shareable half of the PriSTE engine: the
// validated release-loop configuration, the compiled two-possible-world
// model of every protected event (the O(horizon·m²) suffix-vector
// precomputation), the uniform-fallback structures, and — for
// history-independent mechanisms — one shared mechanism instance whose
// per-alpha emission table is filled once for all sessions. Everything
// mutable (RNG, quantifier operators, mechanism posterior, timestamp)
// lives in the per-session Framework returned by NewSession, so thousands
// of sessions with identical parameters compile the world once and, with
// EnableCache, certify each release condition once.
type Plan struct {
	cfg    Config
	events []event.Event
	models []*world.Model
	m      int

	uniformCol mat.Vector
	uniformEm  *mat.Matrix

	mf        MechanismFactory
	shared    lppm.Perturber // non-nil iff the mechanism is history-independent
	stateless bool

	id    uint64
	cache *certcache.Cache

	// shadowChecks counts candidate checks attempted through the float32
	// shadow path; shadowFallbacks counts those whose qp margins were too
	// tight to decide, forcing the exact float64 recompute. Atomic:
	// sessions over one plan step concurrently.
	shadowChecks    atomic.Int64
	shadowFallbacks atomic.Int64

	// mu guards lastMech, the duplicate-instance check for stateful
	// factories (see NewSession).
	mu       sync.Mutex
	lastMech lppm.Perturber
}

// NewPlan validates the configuration, compiles the world model of every
// event, and returns a plan ready to mint sessions. The factory is
// invoked once up front to validate the mechanism shape and detect
// history independence.
func NewPlan(mf MechanismFactory, tp world.TransitionProvider, events []event.Event, cfg Config) (*Plan, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if mf == nil {
		return nil, fmt.Errorf("core: nil mechanism factory")
	}
	if len(events) == 0 {
		return nil, fmt.Errorf("core: at least one event is required")
	}
	proto, err := mf()
	if err != nil {
		return nil, fmt.Errorf("core: mechanism factory: %w", err)
	}
	if proto == nil {
		return nil, fmt.Errorf("core: mechanism factory returned nil")
	}
	if proto.States() != tp.States() {
		return nil, fmt.Errorf("core: mechanism has %d states, chain has %d", proto.States(), tp.States())
	}
	p := &Plan{
		cfg:    cfg.withDefaults(),
		events: append([]event.Event(nil), events...),
		m:      proto.States(),
		mf:     mf,
		id:     planIDs.Add(1),
	}
	if _, ok := proto.(lppm.HistoryIndependent); ok {
		p.stateless = true
		p.shared = proto
	}
	if p.cfg.Parallelism > 0 {
		// Process-global: the kernel pool is shared by every plan (see
		// Config.Parallelism); 0 leaves the current width untouched.
		par.Default().SetParallelism(p.cfg.Parallelism)
	}
	for _, ev := range events {
		md, err := world.NewModelWithOptions(tp, ev, world.ModelOptions{Kernel: p.cfg.Kernel, Shadow: p.cfg.Shadow})
		if err != nil {
			return nil, fmt.Errorf("core: event %v: %w", ev, err)
		}
		p.models = append(p.models, md)
	}
	p.uniformCol = mat.NewVector(p.m)
	p.uniformEm = mat.NewMatrix(p.m, p.m)
	for i := 0; i < p.m; i++ {
		p.uniformCol[i] = 1 / float64(p.m)
		row := p.uniformEm.Row(i)
		for j := range row {
			row[j] = 1 / float64(p.m)
		}
	}
	return p, nil
}

// ID returns the plan's process-unique id (certified-release cache keys
// embed it).
func (p *Plan) ID() uint64 { return p.id }

// Config returns the effective (defaulted) release-loop configuration.
func (p *Plan) Config() Config { return p.cfg }

// Events returns the protected events. Callers must not mutate the slice.
func (p *Plan) Events() []event.Event { return p.events }

// States returns the size of the location domain.
func (p *Plan) States() int { return p.m }

// Stateless reports whether the plan's mechanism is history-independent
// (one shared instance, certified verdicts cacheable across sessions).
func (p *Plan) Stateless() bool { return p.stateless }

// KernelStats aggregates the compiled step kernels across the plan's
// world models: how many transition matrices took the sparse (CSR) path
// versus the dense one, and at what density.
func (p *Plan) KernelStats() world.KernelStats {
	var s world.KernelStats
	for _, md := range p.models {
		s = s.Add(md.KernelStats())
	}
	return s
}

// ShadowStats returns the lifetime float32 shadow-path counters across
// every session of the plan: checks is the number of candidate checks
// attempted through the shadow path, fallbacks the subset whose qp
// margins could not decide and that were recomputed exactly. Both zero
// when Config.Shadow is off.
func (p *Plan) ShadowStats() (checks, fallbacks int64) {
	return p.shadowChecks.Load(), p.shadowFallbacks.Load()
}

// EnableCache attaches a certified-release cache. It is a no-op for
// stateful mechanisms, whose verdicts depend on per-session state and
// must be recomputed. Attach before the plan's sessions start stepping;
// several plans may share one cache (keys embed the plan id).
func (p *Plan) EnableCache(c *certcache.Cache) {
	if p.stateless {
		p.cache = c
	}
}

// Cache returns the attached certified-release cache, or nil.
func (p *Plan) Cache() *certcache.Cache { return p.cache }

// NewSession mints a lightweight per-session Framework over the plan: a
// fresh quantifier per event, the session's RNG, and — for stateful
// mechanisms — a fresh mechanism instance from the factory.
func (p *Plan) NewSession(rng Rand) (*Framework, error) {
	if rng == nil {
		return nil, fmt.Errorf("core: nil rng")
	}
	mech := p.shared
	if mech == nil {
		var err error
		mech, err = p.mf()
		if err != nil {
			return nil, fmt.Errorf("core: mechanism factory: %w", err)
		}
		if mech == nil {
			return nil, fmt.Errorf("core: mechanism factory returned nil")
		}
		if mech.States() != p.m {
			return nil, fmt.Errorf("core: mechanism has %d states, plan has %d", mech.States(), p.m)
		}
		// A stateful factory handing out the same instance twice would
		// silently share mechanism state between sessions.
		p.mu.Lock()
		dup := p.lastMech == mech
		p.lastMech = mech
		p.mu.Unlock()
		if dup {
			return nil, fmt.Errorf("core: stateful mechanism instance reused across sessions (factory must return fresh instances)")
		}
	}
	f := &Framework{
		plan:   p,
		mech:   mech,
		rng:    rng,
		colBuf: mat.NewVector(p.m),
	}
	for _, md := range p.models {
		f.quants = append(f.quants, world.NewQuantifier(md))
	}
	return f, nil
}

// ErrFingerprintMismatch reports that replaying a snapshot's tag log did
// not reproduce its recorded history fingerprint: the log and the
// fingerprint disagree about the committed history, so the restored
// session cannot be trusted.
var ErrFingerprintMismatch = errors.New("core: restored history fingerprint mismatch")

// Restore rebuilds a session from a Snapshot by replaying its committed
// release-tag history through the plan: for each tag the mechanism is
// advanced (Begin), the committed emission column is re-derived — the
// budget's column for the released observation, or the uniform column
// for a fallback tag — and committed into every quantifier and the
// mechanism state, exactly as the original Step did. Replay is
// deterministic, so the rehydrated quantifier operators, mechanism
// posterior and timestamp are bit-identical to the uninterrupted run's;
// the rolling history fingerprint is verified against the snapshot at
// the end (ErrFingerprintMismatch otherwise).
//
// When the snapshot carries RNG state, rng must implement
// encoding.BinaryUnmarshaler (SessionRNG does) and is restored to it, so
// subsequent Steps draw the exact candidate sequence the original
// session would have.
func (p *Plan) Restore(snap Snapshot, rng Rand) (*Framework, error) {
	if snap.T != len(snap.Tags) {
		return nil, fmt.Errorf("core: snapshot T=%d but %d tags", snap.T, len(snap.Tags))
	}
	f, err := p.NewSession(rng)
	if err != nil {
		return nil, err
	}
	for t, tag := range snap.Tags {
		if tag.Obs < 0 || tag.Obs >= p.m {
			return nil, fmt.Errorf("core: replay t=%d: observation %d outside [0,%d)", t, tag.Obs, p.m)
		}
		if err := f.mech.Begin(t); err != nil {
			return nil, fmt.Errorf("core: replay t=%d: mechanism Begin: %w", t, err)
		}
		var col mat.Vector
		if tag.AlphaBits == 0 {
			col = p.uniformCol
		} else {
			alpha := math.Float64frombits(tag.AlphaBits)
			if alpha <= 0 || math.IsNaN(alpha) || math.IsInf(alpha, 0) {
				return nil, fmt.Errorf("core: replay t=%d: invalid budget %g", t, alpha)
			}
			em, err := f.mech.Emission(alpha)
			if err != nil {
				return nil, fmt.Errorf("core: replay t=%d: emission at alpha=%g: %w", t, alpha, err)
			}
			col = em.ColInto(f.colBuf, tag.Obs)
		}
		if err := f.commit(t, tag.Obs, tag.AlphaBits, col); err != nil {
			return nil, fmt.Errorf("core: replay t=%d: %w", t, err)
		}
	}
	if f.Fingerprint() != snap.Fingerprint {
		return nil, fmt.Errorf("%w: replayed %#x, snapshot %#x", ErrFingerprintMismatch, f.Fingerprint(), snap.Fingerprint)
	}
	if len(snap.RNG) > 0 {
		u, ok := rng.(encoding.BinaryUnmarshaler)
		if !ok {
			return nil, fmt.Errorf("core: snapshot carries RNG state but the supplied rng cannot restore it")
		}
		if err := u.UnmarshalBinary(snap.RNG); err != nil {
			return nil, fmt.Errorf("core: restore session rng: %w", err)
		}
	}
	return f, nil
}
