package core

import (
	"math/rand"
	"testing"

	"priste/internal/certcache"
	"priste/internal/event"
	"priste/internal/lppm"
	"priste/internal/markov"
)

// planConfig is a deterministic release-loop configuration: no QP
// deadline, so every verdict is decided by the solver rather than the
// clock and cache-on and cache-off runs must agree exactly.
func planConfig(eps, alpha float64) Config {
	return Config{Epsilon: eps, Alpha: alpha, Decay: 0.5}
}

// stripTimings drops the fields the equivalence contract excludes: wall
// time (always differs), conservative-rejection counts (defined only
// under a QP deadline, which deterministic runs disable), and the cert-
// cache hit/miss observability counters (by construction they differ
// between cache-on and cache-off runs).
func stripTimings(rs []StepResult) []StepResult {
	out := make([]StepResult, len(rs))
	for i, r := range rs {
		r.CheckTime = 0
		r.ConservativeRejections = 0
		r.CertCacheHits = 0
		r.CertCacheMisses = 0
		out[i] = r
	}
	return out
}

// runSessions releases one trajectory per seed over a fresh plan, with an
// optionally attached certified-release cache shared by all sessions.
func runSessions(t *testing.T, cfg Config, cache *certcache.Cache, seeds []int64, horizon int) [][]StepResult {
	t.Helper()
	s := setup(t)
	plan, err := NewPlan(SharedMechanism(lppm.NewPlanarLaplace(s.g)), s.tp, []event.Event{s.ev}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cache != nil {
		plan.EnableCache(cache)
	}
	out := make([][]StepResult, len(seeds))
	for i, seed := range seeds {
		fw, err := plan.NewSession(rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		traj := s.chain.SamplePath(rand.New(rand.NewSource(seed+9000)), markov.Uniform(9), horizon)
		rs, err := fw.Run(traj)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = stripTimings(rs)
	}
	return out
}

func assertSameResults(t *testing.T, name string, a, b [][]StepResult) {
	t.Helper()
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("%s: session %d released %d vs %d steps", name, i, len(a[i]), len(b[i]))
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("%s: session %d step %d differs: %+v vs %+v", name, i, j, a[i][j], b[i][j])
			}
		}
	}
}

// TestCertCacheEquivalence is the cache-correctness contract: N sessions
// stepping the same seeded trajectories must release identical
// (T, obs, alpha, attempts, uniform) sequences with the certified-release
// cache enabled, disabled, and pre-warmed.
func TestCertCacheEquivalence(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	configs := map[string]Config{
		"mixed": planConfig(0.5, 1.0),
		// A tight epsilon forces rejections and uniform fallbacks through
		// the cached path too.
		"tight": {Epsilon: 0.05, Alpha: 1.0, Decay: 0.5, MaxAttempts: 6},
	}
	for name, cfg := range configs {
		t.Run(name, func(t *testing.T) {
			baseline := runSessions(t, cfg, nil, seeds, 6)
			cache := certcache.New(1 << 14)
			cached := runSessions(t, cfg, cache, seeds, 6)
			assertSameResults(t, "cold cache", baseline, cached)
			if st := cache.Stats(); st.Hits == 0 {
				t.Fatalf("cache never hit across %d sibling sessions: %+v", len(seeds), st)
			}
			// Re-running the same seeds over a new plan but the warm cache
			// must still agree (pure-hit path).
			warm := runSessions(t, cfg, cache, seeds, 6)
			assertSameResults(t, "warm cache", baseline, warm)
		})
	}
}

// TestPlanSessionMatchesNew: a session minted from a shared plan must
// behave exactly like the legacy single-shot core.New framework.
func TestPlanSessionMatchesNew(t *testing.T) {
	s := setup(t)
	cfg := planConfig(0.5, 1.0)
	traj := s.chain.SamplePath(rand.New(rand.NewSource(99)), markov.Uniform(9), 6)

	legacy, err := New(lppm.NewPlanarLaplace(s.g), s.tp, []event.Event{s.ev}, cfg, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	legacyRes, err := legacy.Run(traj)
	if err != nil {
		t.Fatal(err)
	}

	plan, err := NewPlan(SharedMechanism(lppm.NewPlanarLaplace(s.g)), s.tp, []event.Event{s.ev}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fw, err := plan.NewSession(rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	planRes, err := fw.Run(traj)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, "plan vs New", [][]StepResult{stripTimings(legacyRes)}, [][]StepResult{stripTimings(planRes)})
}

// TestPlanSharesMechanismWhenStateless: history-independent mechanisms
// are shared across sessions (one emission table); stateful factories
// must produce fresh instances, and reusing one is rejected.
func TestPlanSharesMechanismWhenStateless(t *testing.T) {
	s := setup(t)
	plm := lppm.NewPlanarLaplace(s.g)
	plan, err := NewPlan(SharedMechanism(plm), s.tp, []event.Event{s.ev}, planConfig(0.5, 1.0))
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Stateless() {
		t.Fatal("planar Laplace plan not detected as stateless")
	}
	a, err := plan.NewSession(rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := plan.NewSession(rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if a.mech != b.mech {
		t.Fatal("stateless sessions should share the mechanism instance")
	}

	// Stateful: fresh instances per session, sharing rejected.
	mkDelta := func() (lppm.Perturber, error) {
		return lppm.NewDeltaLocationSet(s.g, s.chain, markov.Uniform(9), 0.3)
	}
	dplan, err := NewPlan(mkDelta, s.tp, []event.Event{s.ev}, planConfig(0.5, 1.0))
	if err != nil {
		t.Fatal(err)
	}
	if dplan.Stateless() {
		t.Fatal("delta-location-set plan must not be stateless")
	}
	da, err := dplan.NewSession(rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	db, err := dplan.NewSession(rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if da.mech == db.mech {
		t.Fatal("stateful sessions must not share the mechanism instance")
	}
	// EnableCache is a no-op for stateful plans.
	dplan.EnableCache(certcache.New(64))
	if dplan.Cache() != nil {
		t.Fatal("cache attached to a stateful plan")
	}

	shared, err := mkDelta()
	if err != nil {
		t.Fatal(err)
	}
	splan, err := NewPlan(SharedMechanism(shared), s.tp, []event.Event{s.ev}, planConfig(0.5, 1.0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := splan.NewSession(rand.New(rand.NewSource(1))); err != nil {
		t.Fatal(err)
	}
	if _, err := splan.NewSession(rand.New(rand.NewSource(2))); err == nil {
		t.Fatal("second session over a shared stateful mechanism accepted")
	}
}

// TestPlanValidation mirrors the legacy constructor checks at plan level.
func TestPlanValidation(t *testing.T) {
	s := setup(t)
	mf := SharedMechanism(lppm.NewPlanarLaplace(s.g))
	if _, err := NewPlan(nil, s.tp, []event.Event{s.ev}, planConfig(1, 1)); err == nil {
		t.Error("nil factory accepted")
	}
	if _, err := NewPlan(mf, s.tp, nil, planConfig(1, 1)); err == nil {
		t.Error("no events accepted")
	}
	if _, err := NewPlan(mf, s.tp, []event.Event{s.ev}, Config{}); err == nil {
		t.Error("zero config accepted")
	}
	plan, err := NewPlan(mf, s.tp, []event.Event{s.ev}, planConfig(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.NewSession(nil); err == nil {
		t.Error("nil rng accepted")
	}
	if plan.ID() == 0 {
		t.Error("plan id not assigned")
	}
	if plan.States() != 9 {
		t.Errorf("plan states = %d", plan.States())
	}
}
