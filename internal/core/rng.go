package core

import (
	"math/rand/v2"

	"priste/internal/lppm"
)

// Rand is the random source a session draws candidate observations from.
// It is the lppm sampling interface re-exposed at the core layer: any
// math/rand or math/rand/v2 *Rand satisfies it. Sessions that must survive
// restarts use SessionRNG, whose state round-trips through
// encoding.BinaryMarshaler so a rehydrated session continues the exact
// draw sequence of the uninterrupted run.
type Rand = lppm.Rand

// sessionRNGStream is the fixed PCG stream constant mixed with the caller
// seed (the 64-bit golden ratio, as in splitmix64). Fixing the second
// word keeps NewSessionRNG a pure function of one int64 seed, which is
// what the serving layer persists.
const sessionRNGStream = 0x9e3779b97f4a7c15

// SessionRNG is a binary-marshalable session random source: a
// math/rand/v2 generator over a PCG whose full state is 16 bytes. The
// durable-session WAL persists the marshaled state after every committed
// step, so Plan.Restore resumes the candidate sequence exactly where the
// previous process stopped.
//
// Only draws that consume the underlying source directly (Float64,
// Uint64, ...) are made by the release loop, so marshaling the source
// captures the complete generator state.
type SessionRNG struct {
	*rand.Rand
	src *rand.PCG
}

// NewSessionRNG returns a session RNG deterministically derived from
// seed: equal seeds yield equal draw sequences.
func NewSessionRNG(seed int64) *SessionRNG {
	src := rand.NewPCG(uint64(seed), sessionRNGStream)
	return &SessionRNG{Rand: rand.New(src), src: src}
}

// MarshalBinary returns the underlying PCG state.
func (r *SessionRNG) MarshalBinary() ([]byte, error) { return r.src.MarshalBinary() }

// UnmarshalBinary restores the underlying PCG state.
func (r *SessionRNG) UnmarshalBinary(b []byte) error { return r.src.UnmarshalBinary(b) }
