package core

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"priste/internal/event"
	"priste/internal/grid"
	"priste/internal/lppm"
	"priste/internal/markov"
	"priste/internal/par"
	"priste/internal/world"
)

// stepRecord is one step's released outputs — everything a client of the
// service can observe about a step.
type stepRecord struct {
	obs      int
	alpha    float64
	attempts int
	uniform  bool
	fp       uint64
}

// randomScenario builds a seeded random plan: random grid geometry,
// random mobility chain family and locality, random event window, random
// privacy budget. The returned plan uses the given kernel mode; the
// location sequence is derived from the same seed.
func randomScenario(t *testing.T, seed int64, mode world.KernelMode) (*Plan, []int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	w := 4 + rng.Intn(4) // 4..7
	h := 4 + rng.Intn(4)
	g := grid.MustNew(w, h, 1)
	m := g.States()

	var chain *markov.Chain
	var err error
	if rng.Intn(2) == 0 {
		chain, err = markov.LazyRandomWalk(g, 0.2+0.6*rng.Float64())
	} else {
		chain, err = markov.GaussianChain(g, 0.5+1.5*rng.Float64())
	}
	if err != nil {
		t.Fatal(err)
	}

	lo := rng.Intn(m - 1)
	hi := lo + 1 + rng.Intn(m-lo-1)
	region, err := grid.RegionRange(m, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	start := 1 + rng.Intn(3)
	ev := event.MustNewPresence(region, start, start+1+rng.Intn(4))

	cfg := DefaultConfig(0.3+0.7*rng.Float64(), 1.0)
	cfg.QPTimeout = 0 // deterministic verdicts
	cfg.Kernel = mode
	plan, err := NewPlan(SharedMechanism(lppm.NewPlanarLaplace(g)), world.NewHomogeneous(chain),
		[]event.Event{ev}, cfg)
	if err != nil {
		t.Fatal(err)
	}

	horizon := 8 + rng.Intn(10)
	locs := make([]int, horizon)
	for i := range locs {
		locs[i] = rng.Intn(m)
	}
	return plan, locs
}

// runTrajectory steps a fresh session through locs, recording every
// released output and the fingerprint after each step. When snapAt >= 0
// it also snapshots mid-trajectory, restores the snapshot into snapInto,
// and verifies the restored session finishes the trajectory with
// bit-identical releases.
func runTrajectory(t *testing.T, plan *Plan, seed int64, locs []int, snapAt int, snapInto *Plan) []stepRecord {
	t.Helper()
	f, err := plan.NewSession(NewSessionRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	var restored *Framework
	recs := make([]stepRecord, 0, len(locs))
	for k, loc := range locs {
		if k == snapAt && snapInto != nil {
			snap, err := f.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			restored, err = snapInto.Restore(snap, NewSessionRNG(seed))
			if err != nil {
				t.Fatal(err)
			}
			if restored.Fingerprint() != f.Fingerprint() {
				t.Fatalf("restore at step %d: fingerprint %#x, want %#x", k, restored.Fingerprint(), f.Fingerprint())
			}
		}
		r, err := f.Step(loc)
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, stepRecord{r.Obs, r.Alpha, r.Attempts, r.Uniform, f.Fingerprint()})
		if restored != nil {
			rr, err := restored.Step(loc)
			if err != nil {
				t.Fatalf("restored session step %d: %v", k, err)
			}
			if rr.Obs != r.Obs || rr.Alpha != r.Alpha || rr.Attempts != r.Attempts || rr.Uniform != r.Uniform ||
				restored.Fingerprint() != f.Fingerprint() {
				t.Fatalf("restored session diverged at step %d", k)
			}
		}
	}
	return recs
}

// TestParallelReleaseEquivalence is the determinism acceptance check for
// the worker pool: over seeded random scenarios (random grid, chain
// family, event window, budget, horizon), the full released trajectory —
// observations, budgets, attempt counts, fingerprints — must be
// bit-identical at every pool width, including widths that do not divide
// the tile count, and identical to the naive oracle kernels. The flops
// cutoff is forced to 1 so even these small worlds actually dispatch
// through the pool, and a mid-trajectory snapshot/restore into the
// oracle plan must land on the same fingerprint and continuation.
func TestParallelReleaseEquivalence(t *testing.T) {
	pool := par.Default()
	defer pool.SetParallelism(0)
	defer pool.SetCutoffOverride(0)

	widths := []int{1, 2, 7, runtime.GOMAXPROCS(0)}
	for _, seed := range []int64{1, 17, 202} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			// Baseline: oracle kernels, serial dispatch.
			pool.SetCutoffOverride(0)
			pool.SetParallelism(1)
			oracle, locs := randomScenario(t, seed, world.KernelOracle)
			want := runTrajectory(t, oracle, seed, locs, -1, nil)

			// Candidates: adaptive kernels through the pool at every
			// width, with parallel dispatch forced.
			pool.SetCutoffOverride(1)
			for _, w := range widths {
				pool.SetParallelism(w)
				plan, _ := randomScenario(t, seed, world.KernelDense)
				got := runTrajectory(t, plan, seed, locs, len(locs)/2, oracle)
				for k := range want {
					if got[k] != want[k] {
						t.Fatalf("width=%d step %d diverged:\n  got  %+v\n  want %+v", w, k, got[k], want[k])
					}
				}
			}

			// The pool must actually have fanned kernels out.
			if st := pool.Stats(); st.ParallelDispatch == 0 {
				t.Fatal("no parallel dispatches recorded — the test exercised only serial paths")
			}
		})
	}
}
