// Package core implements the PriSTE framework of §IV: the release loop
// (Algorithm 1) that drives an LPPM, quantifies the ε-spatiotemporal event
// privacy of each candidate perturbed location with the two-possible-world
// quantifier, and calibrates the LPPM's budget by exponential decay until
// the Theorem IV.1 conditions are certified (Algorithm 2 for
// geo-indistinguishability, Algorithm 3 for δ-location-set privacy — the
// two case studies differ only in the Perturber supplied).
package core

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"priste/internal/event"
	"priste/internal/lppm"
	"priste/internal/mat"
	"priste/internal/qp"
	"priste/internal/world"
)

// Config tunes the release loop.
type Config struct {
	// Epsilon is the ε of ε-spatiotemporal event privacy (Definition II.4).
	Epsilon float64
	// Alpha is the LPPM's initial privacy budget at every timestamp.
	Alpha float64
	// Decay is the multiplicative budget decay applied on each rejected
	// candidate (line 19 of Algorithm 2 uses 1/2). Must lie in (0,1).
	// Smaller values converge faster at the cost of over-perturbation.
	Decay float64
	// MaxAttempts bounds the number of candidate draws per timestamp
	// before the loop falls back to the uniform (zero-information)
	// release, which satisfies the conditions for any ε. Default 40.
	MaxAttempts int
	// MinAlpha is the budget floor triggering the uniform fallback.
	// Default Alpha·2⁻³⁰.
	MinAlpha float64
	// QPTimeout is the conservative-release threshold of §IV-C: the
	// per-candidate time budget for the quadratic-program checks. An
	// expired check counts as "not sure" and the candidate is rejected.
	// Zero means no limit.
	QPTimeout time.Duration
	// QPTol is the positivity tolerance of the condition solver; zero
	// uses the solver default.
	QPTol float64
}

func (c Config) validate() error {
	if c.Epsilon <= 0 || math.IsNaN(c.Epsilon) || math.IsInf(c.Epsilon, 0) {
		return fmt.Errorf("core: epsilon must be positive and finite, got %g", c.Epsilon)
	}
	if c.Alpha <= 0 || math.IsNaN(c.Alpha) || math.IsInf(c.Alpha, 0) {
		return fmt.Errorf("core: alpha must be positive and finite, got %g", c.Alpha)
	}
	if c.Decay <= 0 || c.Decay >= 1 || math.IsNaN(c.Decay) {
		return fmt.Errorf("core: decay must lie in (0,1), got %g", c.Decay)
	}
	return nil
}

func (c Config) withDefaults() Config {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 40
	}
	if c.MinAlpha <= 0 {
		c.MinAlpha = c.Alpha * math.Pow(2, -30)
	}
	return c
}

// DefaultConfig returns the paper's experiment defaults for a given ε and
// initial budget: halving decay and a 1-second conservative-release
// threshold (§V-A).
func DefaultConfig(epsilon, alpha float64) Config {
	return Config{
		Epsilon:   epsilon,
		Alpha:     alpha,
		Decay:     0.5,
		QPTimeout: time.Second,
	}
}

// StepResult records one released timestamp.
type StepResult struct {
	T   int
	Obs int
	// Alpha is the final budget used for the release; 0 when the uniform
	// fallback fired (no information released).
	Alpha float64
	// Attempts is the number of candidate draws, including the released
	// one (1 = first candidate accepted).
	Attempts int
	// ConservativeRejections counts candidates rejected only because the
	// QP solver ran out of budget (Unknown verdicts), the quantity
	// Table III reports as "# of Conservative Release".
	ConservativeRejections int
	// Uniform marks the zero-information fallback.
	Uniform bool
	// CheckTime is the total wall time spent in the QP checks.
	CheckTime time.Duration
}

// Framework is the PriSTE release loop protecting one or more
// spatiotemporal events simultaneously (Fig. 9 protects two).
type Framework struct {
	mech   lppm.Perturber
	quants []*world.Quantifier
	events []event.Event
	cfg    Config
	rng    *rand.Rand

	m          int
	uniformCol mat.Vector
	uniformEm  *mat.Matrix
	t          int
}

// New builds a framework protecting the given events under the supplied
// mobility model. The transition provider is shared across events.
func New(mech lppm.Perturber, tp world.TransitionProvider, events []event.Event, cfg Config, rng *rand.Rand) (*Framework, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(events) == 0 {
		return nil, fmt.Errorf("core: at least one event is required")
	}
	if mech.States() != tp.States() {
		return nil, fmt.Errorf("core: mechanism has %d states, chain has %d", mech.States(), tp.States())
	}
	if rng == nil {
		return nil, fmt.Errorf("core: nil rng")
	}
	cfg = cfg.withDefaults()
	f := &Framework{
		mech:   mech,
		events: events,
		cfg:    cfg,
		rng:    rng,
		m:      mech.States(),
	}
	for _, ev := range events {
		md, err := world.NewModel(tp, ev)
		if err != nil {
			return nil, fmt.Errorf("core: event %v: %w", ev, err)
		}
		f.quants = append(f.quants, world.NewQuantifier(md))
	}
	f.uniformCol = mat.NewVector(f.m)
	f.uniformEm = mat.NewMatrix(f.m, f.m)
	for i := 0; i < f.m; i++ {
		f.uniformCol[i] = 1 / float64(f.m)
		row := f.uniformEm.Row(i)
		for j := range row {
			row[j] = 1 / float64(f.m)
		}
	}
	return f, nil
}

// T returns the next timestamp to be released.
func (f *Framework) T() int { return f.t }

// Events returns the protected events.
func (f *Framework) Events() []event.Event { return f.events }

// Step perturbs and releases one true location (the body of Algorithm 1):
// draw a candidate from the LPPM, certify the Theorem IV.1 conditions for
// every protected event, decay the budget and redraw on failure, and fall
// back to a uniform release when the budget underflows. The uniform
// release is provably safe: with a state-independent emission column the
// condition values scale by a positive constant, so certified conditions
// remain certified.
func (f *Framework) Step(trueLoc int) (StepResult, error) {
	if trueLoc < 0 || trueLoc >= f.m {
		return StepResult{}, fmt.Errorf("core: true location %d outside [0,%d)", trueLoc, f.m)
	}
	t := f.t
	if err := f.mech.Begin(t); err != nil {
		return StepResult{}, fmt.Errorf("core: mechanism Begin(%d): %w", t, err)
	}
	res := StepResult{T: t}
	alpha := f.cfg.Alpha
	relOpts := qp.ReleaseOptions{
		Solver:   qp.Options{Tol: f.cfg.QPTol},
		Deadline: f.cfg.QPTimeout,
	}
	for attempt := 1; attempt <= f.cfg.MaxAttempts && alpha >= f.cfg.MinAlpha; attempt++ {
		res.Attempts = attempt
		em, err := f.mech.Emission(alpha)
		if err != nil {
			return StepResult{}, fmt.Errorf("core: emission at alpha=%g: %w", alpha, err)
		}
		obs, err := lppm.SampleRow(f.rng, em, trueLoc)
		if err != nil {
			return StepResult{}, fmt.Errorf("core: sampling: %w", err)
		}
		col := em.Col(obs)
		ok, conservative, dur, err := f.checkAll(col, relOpts)
		res.CheckTime += dur
		if err != nil {
			return StepResult{}, err
		}
		if ok {
			if err := f.commit(t, obs, col); err != nil {
				return StepResult{}, err
			}
			res.Obs = obs
			res.Alpha = alpha
			return res, nil
		}
		if conservative {
			res.ConservativeRejections++
		}
		alpha *= f.cfg.Decay
	}
	// Uniform fallback: α → 0 releases no information about the true
	// location (§IV-C).
	obs, err := lppm.SampleRow(f.rng, f.uniformEm, trueLoc)
	if err != nil {
		return StepResult{}, err
	}
	if err := f.commit(t, obs, f.uniformCol); err != nil {
		return StepResult{}, err
	}
	res.Obs = obs
	res.Alpha = 0
	res.Uniform = true
	res.Attempts++
	return res, nil
}

// checkAll certifies the conditions for every protected event.
func (f *Framework) checkAll(col mat.Vector, opts qp.ReleaseOptions) (ok, conservative bool, dur time.Duration, err error) {
	start := time.Now()
	defer func() { dur = time.Since(start) }()
	for i, q := range f.quants {
		chk, err := q.Check(col)
		if err != nil {
			return false, false, 0, fmt.Errorf("core: quantifier %d: %w", i, err)
		}
		chk.Epsilon = f.cfg.Epsilon
		dec, err := qp.CheckRelease(chk, opts)
		if err != nil {
			return false, false, 0, fmt.Errorf("core: release check %d: %w", i, err)
		}
		if !dec.OK {
			return false, dec.Conservative, 0, nil
		}
	}
	return true, false, 0, nil
}

// commit folds the released observation into every quantifier and the
// mechanism state.
func (f *Framework) commit(t, obs int, col mat.Vector) error {
	for i, q := range f.quants {
		if err := q.Commit(col); err != nil {
			return fmt.Errorf("core: commit quantifier %d: %w", i, err)
		}
	}
	if err := f.mech.Observe(t, obs, col); err != nil {
		return fmt.Errorf("core: mechanism Observe: %w", err)
	}
	f.t++
	return nil
}

// Run releases a whole trajectory and returns the per-timestamp results.
func (f *Framework) Run(traj []int) ([]StepResult, error) {
	out := make([]StepResult, 0, len(traj))
	for _, u := range traj {
		r, err := f.Step(u)
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}

// RealizedLoss returns, for a fixed initial probability, the realised
// privacy loss of the observation sequence committed so far with respect
// to protected event i (diagnostics; the release-time guarantee already
// holds for every initial probability).
func (f *Framework) RealizedLoss(i int, pi mat.Vector) (float64, error) {
	if i < 0 || i >= len(f.quants) {
		return 0, fmt.Errorf("core: event index %d outside [0,%d)", i, len(f.quants))
	}
	return qp.FixedPiLoss(f.quants[i].Current(), pi)
}
