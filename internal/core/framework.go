// Package core implements the PriSTE framework of §IV: the release loop
// (Algorithm 1) that drives an LPPM, quantifies the ε-spatiotemporal event
// privacy of each candidate perturbed location with the two-possible-world
// quantifier, and calibrates the LPPM's budget by exponential decay until
// the Theorem IV.1 conditions are certified (Algorithm 2 for
// geo-indistinguishability, Algorithm 3 for δ-location-set privacy — the
// two case studies differ only in the Perturber supplied).
package core

import (
	"encoding"
	"fmt"
	"math"
	"time"

	"priste/internal/certcache"
	"priste/internal/event"
	"priste/internal/lppm"
	"priste/internal/mat"
	"priste/internal/qp"
	"priste/internal/world"
)

// Config tunes the release loop.
type Config struct {
	// Epsilon is the ε of ε-spatiotemporal event privacy (Definition II.4).
	Epsilon float64
	// Alpha is the LPPM's initial privacy budget at every timestamp.
	Alpha float64
	// Decay is the multiplicative budget decay applied on each rejected
	// candidate (line 19 of Algorithm 2 uses 1/2). Must lie in (0,1).
	// Smaller values converge faster at the cost of over-perturbation.
	Decay float64
	// MaxAttempts bounds the number of candidate draws per timestamp
	// before the loop falls back to the uniform (zero-information)
	// release, which satisfies the conditions for any ε. Default 40.
	MaxAttempts int
	// MinAlpha is the budget floor triggering the uniform fallback.
	// Default Alpha·2⁻³⁰.
	MinAlpha float64
	// QPTimeout is the conservative-release threshold of §IV-C: the
	// per-candidate time budget for the quadratic-program checks. An
	// expired check counts as "not sure" and the candidate is rejected.
	// Zero means no limit.
	QPTimeout time.Duration
	// QPTol is the positivity tolerance of the condition solver; zero
	// uses the solver default.
	QPTol float64
	// Kernel selects the transition-kernel compilation mode for the
	// plan's world models: world.KernelAuto (the default) compiles a
	// transition matrix to CSR when it is sparse enough and keeps it
	// dense otherwise; KernelDense and KernelSparse force one path. The
	// paths are bit-for-bit equivalent, so this is purely a performance
	// knob (and a regression-test hook).
	Kernel world.KernelMode
	// Shadow enables the float32 shadow check path: candidate checks run
	// against float32 copies of the quantifier operators (float64
	// accumulation) and the qp conditions are decided directly whenever
	// the solver's margin exceeds the certified shadow error bound
	// (world.ShadowEta); ambiguous margins fall back to the exact float64
	// check. Commits always run exact float64 and shadow verdicts are
	// never stored in the certified-release cache, so the released
	// observation sequence is identical to the unshadowed one.
	Shadow bool
	// Parallelism, when positive, fixes the width of the process-global
	// kernel worker pool (par.Default().SetParallelism) the plan's
	// quantifiers fan their tile-parallel products out on; 0 leaves the
	// pool tracking GOMAXPROCS. The pool is shared by every plan in the
	// process, so the last nonzero value compiled wins. Parallel and
	// serial kernels are bit-identical (fixed tile boundaries, one
	// accumulation chain per output entry), so this is a performance
	// knob only — releases, fingerprints and replay are unaffected.
	Parallelism int
}

func (c Config) validate() error {
	if c.Epsilon <= 0 || math.IsNaN(c.Epsilon) || math.IsInf(c.Epsilon, 0) {
		return fmt.Errorf("core: epsilon must be positive and finite, got %g", c.Epsilon)
	}
	if c.Alpha <= 0 || math.IsNaN(c.Alpha) || math.IsInf(c.Alpha, 0) {
		return fmt.Errorf("core: alpha must be positive and finite, got %g", c.Alpha)
	}
	if c.Decay <= 0 || c.Decay >= 1 || math.IsNaN(c.Decay) {
		return fmt.Errorf("core: decay must lie in (0,1), got %g", c.Decay)
	}
	if c.Parallelism < 0 {
		return fmt.Errorf("core: parallelism must be >= 0, got %d", c.Parallelism)
	}
	return nil
}

func (c Config) withDefaults() Config {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 40
	}
	if c.MinAlpha <= 0 {
		c.MinAlpha = c.Alpha * math.Pow(2, -30)
	}
	return c
}

// DefaultConfig returns the paper's experiment defaults for a given ε and
// initial budget: halving decay and a 1-second conservative-release
// threshold (§V-A).
func DefaultConfig(epsilon, alpha float64) Config {
	return Config{
		Epsilon:   epsilon,
		Alpha:     alpha,
		Decay:     0.5,
		QPTimeout: time.Second,
	}
}

// StepResult records one released timestamp.
type StepResult struct {
	T   int
	Obs int
	// Alpha is the final budget used for the release; 0 when the uniform
	// fallback fired (no information released).
	Alpha float64
	// Attempts is the number of candidate draws, including the released
	// one (1 = first candidate accepted).
	Attempts int
	// ConservativeRejections counts candidates rejected only because the
	// QP solver ran out of budget (Unknown verdicts), the quantity
	// Table III reports as "# of Conservative Release".
	ConservativeRejections int
	// Uniform marks the zero-information fallback.
	Uniform bool
	// CheckTime is the total wall time spent in the QP checks.
	CheckTime time.Duration
	// CertCacheHits and CertCacheMisses count per-event certified-release
	// cache lookups across every candidate of this step (both zero when
	// the plan carries no cache). A step with no misses committed without
	// a single quantifier forward pass or QP solve — the serving layer
	// uses that split to report cache-hit and cache-miss commit latency
	// separately.
	CertCacheHits   int
	CertCacheMisses int
}

// Framework is the per-session half of the PriSTE release loop: the
// session's RNG, its mechanism state, one streaming quantifier per
// protected event, and the next timestamp. Everything immutable — the
// validated configuration, compiled world models, uniform-fallback
// structures and (for history-independent mechanisms) the shared emission
// table and certified-release cache — lives in the Plan, so any number of
// sessions over identical parameters share one Plan via Plan.NewSession.
type Framework struct {
	plan   *Plan
	mech   lppm.Perturber
	quants []*world.Quantifier
	rng    Rand
	t      int

	// colBuf is the scratch emission column of the candidate loop: one
	// buffer per session instead of one allocation per candidate. Safe
	// because the framework is single-writer and no callee retains the
	// column (see lppm.Perturber.Observe).
	colBuf mat.Vector

	// tags is the committed release history: one (alphaBits, obs) pair
	// per released timestamp. Together with the plan it fully determines
	// the quantifier and mechanism state (see Snapshot / Plan.Restore).
	tags []ReleaseTag
}

// ReleaseTag is one committed release: math.Float64bits of the budget the
// release was certified at (0 for the uniform fallback, which no genuine
// budget produces) and the released observation. The tag sequence of a
// session determines every committed emission column, so replaying it
// through the session's Plan deterministically rebuilds all mutable
// engine state — the property the durable-session WAL relies on.
type ReleaseTag struct {
	AlphaBits uint64
	Obs       int
}

// Snapshot is a complete, serialisable image of a session's mutable
// state: the committed release-tag history, the rolling history
// fingerprint over it, and (when the session RNG supports
// encoding.BinaryMarshaler, as SessionRNG does) the marshaled RNG state.
// Plan.Restore turns it back into a live Framework.
type Snapshot struct {
	// T is the next timestamp to be released; equals len(Tags).
	T int
	// Tags is the committed release history in timestamp order.
	Tags []ReleaseTag
	// Fingerprint is the rolling history fingerprint the quantifiers
	// report after committing Tags (world.FingerprintSeed when empty).
	Fingerprint uint64
	// RNG is the marshaled session RNG state, or nil when the RNG is not
	// marshalable (such a snapshot restores state but not the draw
	// sequence).
	RNG []byte
}

// New builds a single-session framework protecting the given events under
// the supplied mobility model: a Plan compiled for this one call plus one
// session over it. The transition provider is shared across events.
// Callers serving many sessions with identical parameters should build
// one Plan with NewPlan and mint sessions with Plan.NewSession instead.
func New(mech lppm.Perturber, tp world.TransitionProvider, events []event.Event, cfg Config, rng Rand) (*Framework, error) {
	if mech == nil {
		return nil, fmt.Errorf("core: nil mechanism")
	}
	if rng == nil {
		return nil, fmt.Errorf("core: nil rng")
	}
	p, err := NewPlan(SharedMechanism(mech), tp, events, cfg)
	if err != nil {
		return nil, err
	}
	return p.NewSession(rng)
}

// T returns the next timestamp to be released.
func (f *Framework) T() int { return f.t }

// Plan returns the shared immutable plan backing this session.
func (f *Framework) Plan() *Plan { return f.plan }

// Events returns the protected events.
func (f *Framework) Events() []event.Event { return f.plan.events }

// Step perturbs and releases one true location (the body of Algorithm 1):
// draw a candidate from the LPPM, certify the Theorem IV.1 conditions for
// every protected event, decay the budget and redraw on failure, and fall
// back to a uniform release when the budget underflows. The uniform
// release is provably safe: with a state-independent emission column the
// condition values scale by a positive constant, so certified conditions
// remain certified.
func (f *Framework) Step(trueLoc int) (StepResult, error) {
	cfg := f.plan.cfg
	if trueLoc < 0 || trueLoc >= f.plan.m {
		return StepResult{}, fmt.Errorf("core: true location %d outside [0,%d)", trueLoc, f.plan.m)
	}
	t := f.t
	if err := f.mech.Begin(t); err != nil {
		return StepResult{}, fmt.Errorf("core: mechanism Begin(%d): %w", t, err)
	}
	res := StepResult{T: t}
	alpha := cfg.Alpha
	relOpts := qp.ReleaseOptions{
		Solver:   qp.Options{Tol: cfg.QPTol},
		Deadline: cfg.QPTimeout,
	}
	for attempt := 1; attempt <= cfg.MaxAttempts && alpha >= cfg.MinAlpha; attempt++ {
		res.Attempts = attempt
		em, err := f.mech.Emission(alpha)
		if err != nil {
			return StepResult{}, fmt.Errorf("core: emission at alpha=%g: %w", alpha, err)
		}
		obs, err := lppm.SampleRow(f.rng, em, trueLoc)
		if err != nil {
			return StepResult{}, fmt.Errorf("core: sampling: %w", err)
		}
		col := em.ColInto(f.colBuf, obs)
		ok, conservative, dur, err := f.checkAll(&res, t, math.Float64bits(alpha), obs, col, relOpts)
		res.CheckTime += dur
		if err != nil {
			return StepResult{}, err
		}
		if ok {
			if err := f.commit(t, obs, math.Float64bits(alpha), col); err != nil {
				return StepResult{}, err
			}
			res.Obs = obs
			res.Alpha = alpha
			return res, nil
		}
		if conservative {
			res.ConservativeRejections++
		}
		alpha *= cfg.Decay
	}
	// Uniform fallback: α → 0 releases no information about the true
	// location (§IV-C). Its release tag is alphaBits 0, which no genuine
	// budget produces (budgets are strictly positive).
	obs, err := lppm.SampleRow(f.rng, f.plan.uniformEm, trueLoc)
	if err != nil {
		return StepResult{}, err
	}
	if err := f.commit(t, obs, 0, f.plan.uniformCol); err != nil {
		return StepResult{}, err
	}
	res.Obs = obs
	res.Alpha = 0
	res.Uniform = true
	res.Attempts++
	return res, nil
}

// checkAll certifies the conditions for every protected event. When the
// plan carries a certified-release cache (history-independent mechanisms
// only), each per-event check is first looked up by (plan, event,
// timestamp, committed history fingerprint, candidate alphaBits, obs); a
// hit skips both the quantifier forward pass and the QP solves. Verdicts
// containing Unknown are never stored — they encode an expired time
// budget, not a property of the release — so with no QP deadline a
// cache-backed run is decision-for-decision identical to an uncached one.
//
// With Config.Shadow, a cache miss first tries the float32 shadow check:
// the quantifier's shadow forward pass plus qp.CheckReleaseShadow, which
// accepts or rejects only when the solver margin exceeds the certified
// error bound. A decided shadow verdict is used directly but never
// cached (the cache stores exact verdicts only); an ambiguous one falls
// through to the exact float64 check below.
func (f *Framework) checkAll(res *StepResult, t int, alphaBits uint64, obs int, col mat.Vector, opts qp.ReleaseOptions) (ok, conservative bool, dur time.Duration, err error) {
	start := time.Now()
	defer func() { dur = time.Since(start) }()
	cache := f.plan.cache
	for i, q := range f.quants {
		var key certcache.Key
		if cache != nil {
			key = certcache.Key{
				Plan:      f.plan.id,
				Event:     i,
				T:         t,
				History:   q.HistoryFingerprint(),
				AlphaBits: alphaBits,
				Obs:       obs,
			}
			if dec, hit := cache.Get(key); hit {
				res.CertCacheHits++
				if !dec.OK {
					return false, dec.Conservative, 0, nil
				}
				continue
			}
			res.CertCacheMisses++
		}
		if f.plan.cfg.Shadow {
			if shadowChk, okS := q.ShadowCheck(col); okS {
				f.plan.shadowChecks.Add(1)
				shadowChk.Epsilon = f.plan.cfg.Epsilon
				dec, decided, err := qp.CheckReleaseShadow(shadowChk, world.ShadowEta, opts)
				if err != nil {
					return false, false, 0, fmt.Errorf("core: shadow release check %d: %w", i, err)
				}
				if decided {
					if !dec.OK {
						return false, dec.Conservative, 0, nil
					}
					continue
				}
				f.plan.shadowFallbacks.Add(1)
			}
		}
		// Emission columns come from validated sources (the mechanisms
		// validate at matrix build; the uniform column is constructed by
		// the plan), so the trusted sweep-free entry point applies.
		chk := q.CheckTrusted(col)
		chk.Epsilon = f.plan.cfg.Epsilon
		dec, err := qp.CheckRelease(chk, opts)
		if err != nil {
			return false, false, 0, fmt.Errorf("core: release check %d: %w", i, err)
		}
		if cache != nil && dec.Eq15.Verdict != qp.Unknown && dec.Eq16.Verdict != qp.Unknown {
			cache.Put(key, dec)
		}
		if !dec.OK {
			return false, dec.Conservative, 0, nil
		}
	}
	return true, false, 0, nil
}

// commit folds the released observation into every quantifier (tagged
// with its (alphaBits, obs) release pair for the history fingerprint) and
// the mechanism state.
func (f *Framework) commit(t, obs int, alphaBits uint64, col mat.Vector) error {
	for _, q := range f.quants {
		q.CommitTaggedTrusted(col, alphaBits, obs)
	}
	if err := f.mech.Observe(t, obs, col); err != nil {
		return fmt.Errorf("core: mechanism Observe: %w", err)
	}
	f.tags = append(f.tags, ReleaseTag{AlphaBits: alphaBits, Obs: obs})
	f.t++
	return nil
}

// Fingerprint returns the rolling history fingerprint of the committed
// release tags (world.FingerprintSeed before the first commit). Every
// quantifier of the session folds the same tags, so they agree; the
// first one is authoritative.
func (f *Framework) Fingerprint() uint64 {
	return f.quants[0].HistoryFingerprint()
}

// Tags returns the committed release-tag history. Callers must not
// mutate the slice.
func (f *Framework) Tags() []ReleaseTag { return f.tags }

// RNGState returns the marshaled session RNG state, or nil when the RNG
// is not marshalable. Cheap (tens of bytes): the per-step WAL record
// carries it so a crash-recovered session resumes the exact draw
// sequence.
func (f *Framework) RNGState() ([]byte, error) {
	m, ok := f.rng.(encoding.BinaryMarshaler)
	if !ok {
		return nil, nil
	}
	b, err := m.MarshalBinary()
	if err != nil {
		return nil, fmt.Errorf("core: marshal session rng: %w", err)
	}
	return b, nil
}

// Snapshot captures the session's complete mutable state. The framework
// is single-writer; Snapshot must be called from the same context that
// calls Step (or while the session is provably idle).
func (f *Framework) Snapshot() (Snapshot, error) {
	rng, err := f.RNGState()
	if err != nil {
		return Snapshot{}, err
	}
	return Snapshot{
		T:           f.t,
		Tags:        append([]ReleaseTag(nil), f.tags...),
		Fingerprint: f.Fingerprint(),
		RNG:         rng,
	}, nil
}

// Run releases a whole trajectory and returns the per-timestamp results.
func (f *Framework) Run(traj []int) ([]StepResult, error) {
	out := make([]StepResult, 0, len(traj))
	for _, u := range traj {
		r, err := f.Step(u)
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}

// RealizedLoss returns, for a fixed initial probability, the realised
// privacy loss of the observation sequence committed so far with respect
// to protected event i (diagnostics; the release-time guarantee already
// holds for every initial probability).
func (f *Framework) RealizedLoss(i int, pi mat.Vector) (float64, error) {
	if i < 0 || i >= len(f.quants) {
		return 0, fmt.Errorf("core: event index %d outside [0,%d)", i, len(f.quants))
	}
	return qp.FixedPiLoss(f.quants[i].Current(), pi)
}
