package core

import (
	"testing"

	"priste/internal/event"
	"priste/internal/grid"
	"priste/internal/lppm"
	"priste/internal/markov"
	"priste/internal/world"
)

// kernelPlan compiles a plan over a structurally sparse mobility chain
// (lazy random walk) with the given kernel mode forced.
func kernelPlan(t *testing.T, mode world.KernelMode) *Plan {
	return kernelShadowPlan(t, mode, false)
}

func kernelShadowPlan(t *testing.T, mode world.KernelMode, shadow bool) *Plan {
	t.Helper()
	g := grid.MustNew(6, 6, 1)
	chain, err := markov.LazyRandomWalk(g, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	region, err := grid.RegionRange(g.States(), 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	ev := event.MustNewPresence(region, 2, 4)
	cfg := DefaultConfig(0.5, 1.0)
	cfg.QPTimeout = 0 // deterministic verdicts
	cfg.Kernel = mode
	cfg.Shadow = shadow
	plan, err := NewPlan(SharedMechanism(lppm.NewPlanarLaplace(g)), world.NewHomogeneous(chain),
		[]event.Event{ev}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// TestDenseSparseReleaseEquivalence is the engine-level acceptance check
// for the sparse kernels: two sessions with the same seed over
// forced-dense and forced-sparse plans must release identically —
// observation for observation, budget for budget — and end on the same
// history fingerprint. The fingerprint chain is the same oracle the
// durable-session replay verifies, so agreement here carries over to
// restart equivalence on the sparse path.
func TestDenseSparseReleaseEquivalence(t *testing.T) {
	const seed, steps = 42, 14

	dense := kernelPlan(t, world.KernelDense)
	sparse := kernelPlan(t, world.KernelSparse)
	if ks := dense.KernelStats(); ks.Dense != 1 || ks.Sparse != 0 {
		t.Fatalf("dense plan kernels %+v", ks)
	}
	if ks := sparse.KernelStats(); ks.Sparse != 1 || ks.Dense != 0 {
		t.Fatalf("sparse plan kernels %+v", ks)
	}

	fd, err := dense.NewSession(NewSessionRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	fs, err := sparse.NewSession(NewSessionRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	m := dense.States()
	for k := 0; k < steps; k++ {
		loc := (k * 5) % m
		rd, err := fd.Step(loc)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := fs.Step(loc)
		if err != nil {
			t.Fatal(err)
		}
		if rd.Obs != rs.Obs || rd.Alpha != rs.Alpha || rd.Attempts != rs.Attempts || rd.Uniform != rs.Uniform {
			t.Fatalf("step %d diverged: dense %+v, sparse %+v", k, rd, rs)
		}
		if fd.Fingerprint() != fs.Fingerprint() {
			t.Fatalf("step %d: fingerprint %#x vs %#x", k, fd.Fingerprint(), fs.Fingerprint())
		}
	}

	// A sparse-path restore from the dense session's snapshot (and vice
	// versa) must reproduce the fingerprint — kernels are
	// interchangeable at the persistence boundary too.
	snap, err := fd.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := sparse.Restore(snap, NewSessionRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	if restored.Fingerprint() != fd.Fingerprint() {
		t.Fatalf("cross-kernel restore fingerprint %#x, want %#x", restored.Fingerprint(), fd.Fingerprint())
	}
}

// TestOracleAdaptiveShadowReleaseEquivalence extends the release-sequence
// oracle to the PR's new paths: the naive-reference oracle kernels, the
// adaptive dense dispatch (banded/naive/blocked), and the float32 shadow
// check path must all release identically to each other — same
// observations, budgets, attempt counts, fingerprints. The shadow session
// additionally proves the shadow path actually ran (its decisions feed
// the released sequence) without perturbing it.
func TestOracleAdaptiveShadowReleaseEquivalence(t *testing.T) {
	const seed, steps = 7, 14

	type variant struct {
		name string
		plan *Plan
	}
	variants := []variant{
		{"oracle", kernelPlan(t, world.KernelOracle)},
		{"adaptive", kernelPlan(t, world.KernelDense)},
		{"shadow", kernelShadowPlan(t, world.KernelDense, true)},
		{"shadow-sparse", kernelShadowPlan(t, world.KernelSparse, true)},
	}
	sessions := make([]*Framework, len(variants))
	for i, v := range variants {
		f, err := v.plan.NewSession(NewSessionRNG(seed))
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		sessions[i] = f
	}
	m := variants[0].plan.States()
	for k := 0; k < steps; k++ {
		loc := (k * 7) % m
		ref, err := sessions[0].Step(loc)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(sessions); i++ {
			r, err := sessions[i].Step(loc)
			if err != nil {
				t.Fatalf("%s step %d: %v", variants[i].name, k, err)
			}
			if r.Obs != ref.Obs || r.Alpha != ref.Alpha || r.Attempts != ref.Attempts || r.Uniform != ref.Uniform {
				t.Fatalf("%s step %d diverged: %+v vs oracle %+v", variants[i].name, k, r, ref)
			}
			if sessions[i].Fingerprint() != sessions[0].Fingerprint() {
				t.Fatalf("%s step %d: fingerprint diverged", variants[i].name, k)
			}
		}
	}
	for _, v := range variants[2:] {
		checks, fallbacks := v.plan.ShadowStats()
		if checks == 0 {
			t.Fatalf("%s: shadow path never ran", v.name)
		}
		if fallbacks > checks {
			t.Fatalf("%s: fallbacks %d exceed checks %d", v.name, fallbacks, checks)
		}
		t.Logf("%s: %d shadow checks, %d fallbacks", v.name, checks, fallbacks)
	}
	if checks, _ := variants[0].plan.ShadowStats(); checks != 0 {
		t.Fatalf("unshadowed plan reports %d shadow checks", checks)
	}

	// Shadow-session snapshots restore across variants too.
	snap, err := sessions[2].Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := variants[0].plan.Restore(snap, NewSessionRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	if restored.Fingerprint() != sessions[2].Fingerprint() {
		t.Fatalf("shadow→oracle restore fingerprint mismatch")
	}
}
