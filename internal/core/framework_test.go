package core

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"priste/internal/event"
	"priste/internal/grid"
	"priste/internal/lppm"
	"priste/internal/markov"
	"priste/internal/mat"
	"priste/internal/qp"
	"priste/internal/world"
)

// testSetup builds a small 3×3 world with a Gaussian chain and a PRESENCE
// event over the left column during t=2..3.
type testSetup struct {
	g     *grid.Grid
	chain *markov.Chain
	tp    world.TransitionProvider
	ev    event.Event
}

func setup(t *testing.T) testSetup {
	t.Helper()
	g := grid.MustNew(3, 3, 1)
	chain, err := markov.GaussianChain(g, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	region, err := grid.RegionRect(g, 0, 0, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	return testSetup{
		g:     g,
		chain: chain,
		tp:    world.NewHomogeneous(chain),
		ev:    event.MustNewPresence(region, 2, 3),
	}
}

func TestConfigValidation(t *testing.T) {
	s := setup(t)
	plm := lppm.NewPlanarLaplace(s.g)
	rng := rand.New(rand.NewSource(1))
	bad := []Config{
		{Epsilon: 0, Alpha: 1, Decay: 0.5},
		{Epsilon: 1, Alpha: 0, Decay: 0.5},
		{Epsilon: 1, Alpha: 1, Decay: 0},
		{Epsilon: 1, Alpha: 1, Decay: 1},
		{Epsilon: math.NaN(), Alpha: 1, Decay: 0.5},
	}
	for _, cfg := range bad {
		if _, err := New(plm, s.tp, []event.Event{s.ev}, cfg, rng); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
	if _, err := New(plm, s.tp, nil, DefaultConfig(1, 1), rng); err == nil {
		t.Error("no events accepted")
	}
	if _, err := New(plm, s.tp, []event.Event{s.ev}, DefaultConfig(1, 1), nil); err == nil {
		t.Error("nil rng accepted")
	}
	small := lppm.NewPlanarLaplace(grid.MustNew(2, 2, 1))
	if _, err := New(small, s.tp, []event.Event{s.ev}, DefaultConfig(1, 1), rng); err == nil {
		t.Error("state mismatch accepted")
	}
}

func TestStepValidatesLocation(t *testing.T) {
	s := setup(t)
	f, err := New(lppm.NewPlanarLaplace(s.g), s.tp, []event.Event{s.ev}, DefaultConfig(1, 0.5), rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Step(-1); err == nil {
		t.Error("negative location accepted")
	}
	if _, err := f.Step(9); err == nil {
		t.Error("out-of-range location accepted")
	}
}

// TestRunReleasesEveryTimestamp: the loop must always release something
// (possibly the uniform fallback) and advance time.
func TestRunReleasesEveryTimestamp(t *testing.T) {
	s := setup(t)
	rng := rand.New(rand.NewSource(7))
	f, err := New(lppm.NewPlanarLaplace(s.g), s.tp, []event.Event{s.ev}, DefaultConfig(0.5, 0.5), rng)
	if err != nil {
		t.Fatal(err)
	}
	traj := s.chain.SamplePath(rng, markov.Uniform(9), 8)
	results, err := f.Run(traj)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 8 {
		t.Fatalf("released %d of 8", len(results))
	}
	for i, r := range results {
		if r.T != i {
			t.Errorf("result %d has T=%d", i, r.T)
		}
		if r.Obs < 0 || r.Obs >= 9 {
			t.Errorf("obs %d out of range", r.Obs)
		}
		if r.Attempts < 1 {
			t.Errorf("attempts = %d", r.Attempts)
		}
		if !r.Uniform && (r.Alpha <= 0 || r.Alpha > 0.5) {
			t.Errorf("alpha = %v outside (0, 0.5]", r.Alpha)
		}
	}
	if f.T() != 8 {
		t.Fatalf("T = %d", f.T())
	}
}

// TestReleasedSequenceSatisfiesEpsilon is the paper's core guarantee: the
// realised privacy loss of the released sequence, for any tested initial
// probability, stays within ε (up to solver tolerance).
func TestReleasedSequenceSatisfiesEpsilon(t *testing.T) {
	s := setup(t)
	const eps = 0.8
	rng := rand.New(rand.NewSource(11))
	f, err := New(lppm.NewPlanarLaplace(s.g), s.tp, []event.Event{s.ev}, DefaultConfig(eps, 1.0), rng)
	if err != nil {
		t.Fatal(err)
	}
	traj := s.chain.SamplePath(rng, markov.Uniform(9), 6)
	if _, err := f.Run(traj); err != nil {
		t.Fatal(err)
	}
	// Probe a spread of initial probabilities, including skewed ones.
	pis := []mat.Vector{markov.Uniform(9)}
	for k := 0; k < 20; k++ {
		pi := mat.NewVector(9)
		for i := range pi {
			pi[i] = rng.ExpFloat64()
		}
		pi.Normalize()
		pis = append(pis, pi)
	}
	for _, pi := range pis {
		loss, err := f.RealizedLoss(0, pi)
		if err != nil {
			// Degenerate priors (0 or 1) are excluded by the metric.
			continue
		}
		if loss > eps+1e-6 {
			t.Fatalf("realized loss %v exceeds epsilon %v for pi=%v", loss, eps, pi)
		}
	}
}

// TestStricterEpsilonReducesBudget reproduces the paper's headline
// observation: a smaller ε forces more budget calibration.
func TestStricterEpsilonReducesBudget(t *testing.T) {
	s := setup(t)
	avgAlpha := func(eps float64, seed int64) float64 {
		rng := rand.New(rand.NewSource(seed))
		f, err := New(lppm.NewPlanarLaplace(s.g), s.tp, []event.Event{s.ev}, DefaultConfig(eps, 1.0), rng)
		if err != nil {
			t.Fatal(err)
		}
		traj := s.chain.SamplePath(rng, markov.Uniform(9), 6)
		results, err := f.Run(traj)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, r := range results {
			sum += r.Alpha
		}
		return sum / float64(len(results))
	}
	var tight, loose float64
	const runs = 10
	for seed := int64(0); seed < runs; seed++ {
		tight += avgAlpha(0.1, seed)
		loose += avgAlpha(2.0, seed)
	}
	if tight >= loose {
		t.Fatalf("avg budget under eps=0.1 (%v) should be below eps=2 (%v)", tight/runs, loose/runs)
	}
}

// TestUniformFallbackFires: with an extremely tight ε and only one attempt
// allowed, the framework must fall back to the uniform release rather than
// fail.
func TestUniformFallbackFires(t *testing.T) {
	s := setup(t)
	cfg := Config{
		Epsilon:     1e-6,
		Alpha:       5,
		Decay:       0.5,
		MaxAttempts: 2,
		MinAlpha:    4, // force immediate underflow after one decay
	}
	rng := rand.New(rand.NewSource(3))
	f, err := New(lppm.NewPlanarLaplace(s.g), s.tp, []event.Event{s.ev}, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	sawUniform := false
	for _, u := range []int{4, 4, 0, 1} {
		r, err := f.Step(u)
		if err != nil {
			t.Fatal(err)
		}
		if r.Uniform {
			sawUniform = true
			if r.Alpha != 0 {
				t.Fatalf("uniform release with alpha %v", r.Alpha)
			}
		}
	}
	if !sawUniform {
		t.Fatal("expected at least one uniform fallback under eps=1e-6")
	}
}

// TestUniformFallbackPreservesEpsilon: even a trajectory released entirely
// by the fallback keeps the realised loss at ~0.
func TestUniformFallbackPreservesEpsilon(t *testing.T) {
	s := setup(t)
	cfg := Config{Epsilon: 1e-9, Alpha: 1, Decay: 0.5, MaxAttempts: 1, MinAlpha: 10}
	rng := rand.New(rand.NewSource(5))
	f, err := New(lppm.NewPlanarLaplace(s.g), s.tp, []event.Event{s.ev}, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range []int{0, 1, 2, 4, 8} {
		r, err := f.Step(u)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Uniform {
			t.Fatal("expected all-uniform releases")
		}
	}
	loss, err := f.RealizedLoss(0, markov.Uniform(9))
	if err != nil {
		t.Fatal(err)
	}
	if loss > 1e-9 {
		t.Fatalf("loss = %v after uniform-only releases", loss)
	}
}

// TestMultiEventCostsMoreBudget reproduces Fig. 9: protecting two events
// simultaneously requires at least as much calibration as protecting one.
func TestMultiEventCostsMoreBudget(t *testing.T) {
	s := setup(t)
	region2, err := grid.RegionRect(s.g, 2, 0, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	ev2 := event.MustNewPresence(region2, 4, 5)
	run := func(events []event.Event, seed int64) float64 {
		rng := rand.New(rand.NewSource(seed))
		f, err := New(lppm.NewPlanarLaplace(s.g), s.tp, events, DefaultConfig(0.3, 1.0), rng)
		if err != nil {
			t.Fatal(err)
		}
		traj := s.chain.SamplePath(rng, markov.Uniform(9), 7)
		results, err := f.Run(traj)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, r := range results {
			sum += r.Alpha
		}
		return sum
	}
	var one, two float64
	for seed := int64(0); seed < 8; seed++ {
		one += run([]event.Event{s.ev}, seed)
		two += run([]event.Event{s.ev, ev2}, seed)
	}
	if two > one*1.05 {
		t.Fatalf("two events used more budget (%v) than one (%v)", two, one)
	}
}

// TestDeltaLocationSetFramework runs Algorithm 3 end to end.
func TestDeltaLocationSetFramework(t *testing.T) {
	s := setup(t)
	mech, err := lppm.NewDeltaLocationSet(s.g, s.chain, markov.Uniform(9), 0.3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	f, err := New(mech, s.tp, []event.Event{s.ev}, DefaultConfig(0.5, 1.0), rng)
	if err != nil {
		t.Fatal(err)
	}
	traj := s.chain.SamplePath(rng, markov.Uniform(9), 6)
	results, err := f.Run(traj)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 6 {
		t.Fatalf("released %d", len(results))
	}
	if !mech.Posterior().IsDistribution(1e-9) {
		t.Fatal("posterior corrupted after run")
	}
	// Realised loss still bounded.
	loss, err := f.RealizedLoss(0, markov.Uniform(9))
	if err == nil && loss > 0.5+1e-6 {
		t.Fatalf("loss %v exceeds epsilon", loss)
	}
}

// TestConservativeRelease: a vanishing QP deadline forces Unknown verdicts,
// which must be counted and must push the release toward the fallback, not
// break it.
func TestConservativeRelease(t *testing.T) {
	s := setup(t)
	cfg := DefaultConfig(0.5, 1.0)
	cfg.QPTimeout = time.Nanosecond
	cfg.MaxAttempts = 3
	rng := rand.New(rand.NewSource(13))
	f, err := New(lppm.NewPlanarLaplace(s.g), s.tp, []event.Event{s.ev}, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	r, err := f.Step(4)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Uniform {
		// With a 1ns deadline the solver cannot certify anything beyond
		// its seed evaluations; violations can still be found, so in rare
		// cases an instant Violated verdict avoids conservative counting.
		if r.ConservativeRejections == 0 {
			t.Fatalf("expected conservative rejections or fallback, got %+v", r)
		}
	}
}

// TestRealizedLossValidation covers the index guard.
func TestRealizedLossValidation(t *testing.T) {
	s := setup(t)
	f, err := New(lppm.NewPlanarLaplace(s.g), s.tp, []event.Event{s.ev}, DefaultConfig(1, 1), rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.RealizedLoss(1, markov.Uniform(9)); err == nil {
		t.Error("out-of-range event index accepted")
	}
}

// TestCheckAgainstDirectQP: a framework-released step must agree with an
// independent CheckRelease on the committed columns.
func TestCheckAgainstDirectQP(t *testing.T) {
	s := setup(t)
	rng := rand.New(rand.NewSource(21))
	f, err := New(lppm.NewPlanarLaplace(s.g), s.tp, []event.Event{s.ev}, DefaultConfig(0.5, 0.8), rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Step(4); err != nil {
		t.Fatal(err)
	}
	chk := f.quants[0].Current()
	chk.Epsilon = 0.5
	dec, err := qp.CheckRelease(chk, qp.ReleaseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !dec.OK {
		t.Fatalf("committed release fails independent re-check: %+v %+v", dec.Eq15, dec.Eq16)
	}
}
