package hmm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"priste/internal/markov"
	"priste/internal/mat"
)

func chain3() *markov.Chain {
	return markov.MustNewChain(mat.FromRows([][]float64{
		{0.1, 0.2, 0.7},
		{0.4, 0.1, 0.5},
		{0, 0.1, 0.9},
	}))
}

func noisyEmission3() *MatrixEmission {
	return MustNewMatrixEmission(mat.FromRows([][]float64{
		{0.8, 0.1, 0.1},
		{0.1, 0.8, 0.1},
		{0.1, 0.1, 0.8},
	}))
}

func model3(t *testing.T) *Model {
	t.Helper()
	m, err := NewModel(chain3(), markov.Uniform(3), noisyEmission3())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewMatrixEmissionValidation(t *testing.T) {
	if _, err := NewMatrixEmission(mat.NewMatrix(0, 0)); err == nil {
		t.Error("expected error for empty")
	}
	bad := mat.FromRows([][]float64{{0.5, 0.6}})
	if _, err := NewMatrixEmission(bad); err == nil {
		t.Error("expected error for non-stochastic row")
	}
	neg := mat.FromRows([][]float64{{1.2, -0.2}})
	if _, err := NewMatrixEmission(neg); err == nil {
		t.Error("expected error for negative probability")
	}
}

func TestNewModelValidation(t *testing.T) {
	c := chain3()
	e := noisyEmission3()
	if _, err := NewModel(c, markov.Uniform(2), e); err == nil {
		t.Error("expected error for initial length mismatch")
	}
	bad := mat.Vector{0.5, 0.2, 0.2}
	if _, err := NewModel(c, bad, e); err == nil {
		t.Error("expected error for non-distribution initial")
	}
	e2 := MustNewMatrixEmission(mat.FromRows([][]float64{{1, 0}, {0, 1}}))
	if _, err := NewModel(c, markov.Uniform(3), e2); err == nil {
		t.Error("expected error for emission state mismatch")
	}
}

// Brute-force joint probability Pr(o_1..o_T) by enumerating all hidden paths.
func bruteLikelihood(m *Model, obs []int) float64 {
	states := m.Chain.States()
	var rec func(t, prev int, p float64) float64
	rec = func(t, prev int, p float64) float64 {
		if t == len(obs) {
			return p
		}
		var total float64
		for s := 0; s < states; s++ {
			var trans float64
			if t == 0 {
				trans = m.Initial[s]
			} else {
				trans = m.Chain.Prob(prev, s)
			}
			if trans == 0 {
				continue
			}
			e := m.Emit.EmissionColumn(t, obs[t])[s]
			if e == 0 {
				continue
			}
			total += rec(t+1, s, p*trans*e)
		}
		return total
	}
	return rec(0, 0, 1)
}

func TestForwardLikelihoodMatchesBruteForce(t *testing.T) {
	m := model3(t)
	obs := []int{0, 2, 1, 2}
	_, ll, err := m.Forward(obs)
	if err != nil {
		t.Fatal(err)
	}
	want := bruteLikelihood(m, obs)
	if math.Abs(math.Exp(ll)-want) > 1e-12 {
		t.Fatalf("likelihood = %v want %v", math.Exp(ll), want)
	}
}

func TestForwardFilteringDistributions(t *testing.T) {
	m := model3(t)
	alphas, _, err := m.Forward([]int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	for t2, a := range alphas {
		if !a.IsDistribution(1e-9) {
			t.Fatalf("alpha[%d] = %v not a distribution", t2, a)
		}
	}
	// First observation 0 with strong emission at state 0 should favour 0.
	if alphas[0].ArgMax() != 0 {
		t.Fatalf("alpha[0] = %v, expected mode at state 0", alphas[0])
	}
}

func TestForwardErrors(t *testing.T) {
	m := model3(t)
	if _, _, err := m.Forward(nil); err == nil {
		t.Error("expected error for empty observations")
	}
	// Impossible observation: emission column all zeros for obs at t=0.
	e := MustNewMatrixEmission(mat.FromRows([][]float64{
		{1, 0}, {1, 0},
	}))
	c := markov.MustNewChain(mat.FromRows([][]float64{{0.5, 0.5}, {0.5, 0.5}}))
	m2, _ := NewModel(c, markov.Uniform(2), e)
	if _, _, err := m2.Forward([]int{1}); err == nil {
		t.Error("expected zero-likelihood error")
	}
}

func TestSmoothMatchesBruteForcePosterior(t *testing.T) {
	m := model3(t)
	obs := []int{0, 2, 1}
	smooth, err := m.Smooth(obs)
	if err != nil {
		t.Fatal(err)
	}
	// Brute-force Pr(u_t = s | obs) for all t,s.
	states := 3
	total := bruteLikelihood(m, obs)
	for tt := 0; tt < len(obs); tt++ {
		for s := 0; s < states; s++ {
			// Sum over all paths with u_tt = s.
			var sum float64
			var rec func(t, prev int, p float64)
			rec = func(t, prev int, p float64) {
				if t == len(obs) {
					sum += p
					return
				}
				for st := 0; st < states; st++ {
					if t == tt && st != s {
						continue
					}
					var trans float64
					if t == 0 {
						trans = m.Initial[st]
					} else {
						trans = m.Chain.Prob(prev, st)
					}
					e := m.Emit.EmissionColumn(t, obs[t])[st]
					if trans*e == 0 {
						continue
					}
					rec(t+1, st, p*trans*e)
				}
			}
			rec(0, 0, 1)
			want := sum / total
			if math.Abs(smooth[tt][s]-want) > 1e-10 {
				t.Fatalf("smooth[%d][%d] = %v want %v", tt, s, smooth[tt][s], want)
			}
		}
	}
}

func TestFilterEq21(t *testing.T) {
	prior := mat.Vector{0.5, 0.3, 0.2}
	em := mat.Vector{0.1, 0.8, 0.1}
	post, err := Filter(prior, em)
	if err != nil {
		t.Fatal(err)
	}
	z := 0.5*0.1 + 0.3*0.8 + 0.2*0.1
	want := mat.Vector{0.05 / z, 0.24 / z, 0.02 / z}
	if !post.EqualApprox(want, 1e-12) {
		t.Fatalf("posterior = %v want %v", post, want)
	}
}

func TestFilterErrors(t *testing.T) {
	if _, err := Filter(mat.Vector{1}, mat.Vector{1, 0}); err == nil {
		t.Error("expected length mismatch error")
	}
	if _, err := Filter(mat.Vector{1, 0}, mat.Vector{0, 1}); err == nil {
		t.Error("expected zero-probability error")
	}
}

func TestViterbiRecoversCleanPath(t *testing.T) {
	// Near-deterministic chain and near-perfect emissions: Viterbi should
	// recover the true path from its observations.
	c := markov.MustNewChain(mat.FromRows([][]float64{
		{0.02, 0.96, 0.02},
		{0.02, 0.02, 0.96},
		{0.96, 0.02, 0.02},
	}))
	e := MustNewMatrixEmission(mat.FromRows([][]float64{
		{0.96, 0.02, 0.02},
		{0.02, 0.96, 0.02},
		{0.02, 0.02, 0.96},
	}))
	m, err := NewModel(c, markov.Delta(3, 0), e)
	if err != nil {
		t.Fatal(err)
	}
	obs := []int{0, 1, 2, 0, 1, 2}
	path, score, err := m.Viterbi(obs)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(score, -1) {
		t.Fatal("score is -Inf")
	}
	for i, want := range []int{0, 1, 2, 0, 1, 2} {
		if path[i] != want {
			t.Fatalf("path = %v", path)
		}
	}
}

func TestViterbiImpossible(t *testing.T) {
	c := markov.MustNewChain(mat.FromRows([][]float64{{1, 0}, {0, 1}}))
	e := MustNewMatrixEmission(mat.FromRows([][]float64{{1, 0}, {1, 0}}))
	m, _ := NewModel(c, mat.Vector{1, 0}, e)
	if _, _, err := m.Viterbi([]int{1}); err == nil {
		t.Error("expected error for impossible observation")
	}
}

// Property: smoothing marginals are consistent with the forward filter at
// the final timestamp (β_T = 1 ⇒ smooth[T-1] == alpha[T-1]).
func TestSmoothFinalEqualsFilterProperty(t *testing.T) {
	m := model3(t)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		obs := make([]int, n)
		for i := range obs {
			obs[i] = rng.Intn(3)
		}
		alphas, _, err := m.Forward(obs)
		if err != nil {
			return false
		}
		smooth, err := m.Smooth(obs)
		if err != nil {
			return false
		}
		return smooth[n-1].EqualApprox(alphas[n-1], 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: total likelihood of all observation sequences of length n is 1.
func TestLikelihoodSumsToOneProperty(t *testing.T) {
	m := model3(t)
	for _, n := range []int{1, 2, 3} {
		var total float64
		var rec func(prefix []int)
		rec = func(prefix []int) {
			if len(prefix) == n {
				ll, err := m.LogLikelihood(prefix)
				if err == nil {
					total += math.Exp(ll)
				}
				return
			}
			for o := 0; o < 3; o++ {
				rec(append(prefix, o))
			}
		}
		rec(nil)
		if math.Abs(total-1) > 1e-10 {
			t.Fatalf("sum of likelihoods over length-%d sequences = %v", n, total)
		}
	}
}
