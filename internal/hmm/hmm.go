// Package hmm implements hidden-Markov-model inference — the
// forward–backward algorithm of §III-C [15] — over a Markov mobility chain
// and an LPPM emission model. It serves two roles: the δ-location-set
// mechanism's posterior update (Eq. 21) is a one-step filter, and the full
// smoother is the independent reference implementation the two-world
// quantifier is cross-checked against in tests.
package hmm

import (
	"fmt"
	"math"

	"priste/internal/markov"
	"priste/internal/mat"
)

// EmissionModel supplies the observation likelihood column
// p̃_o[i] = Pr(o_t = o | u_t = s_i) for a given observation. Emission
// matrices may differ across timestamps (§III-C), so the model receives the
// timestamp as well.
type EmissionModel interface {
	// EmissionColumn returns the likelihood vector for observation obs at
	// time t (0-based). The returned slice must not be mutated by callers
	// and must have length States().
	EmissionColumn(t, obs int) mat.Vector
	// States returns the size of the hidden state space.
	States() int
}

// MatrixEmission is a time-homogeneous EmissionModel backed by a row-
// stochastic emission matrix E[i][j] = Pr(o=j | u=i).
type MatrixEmission struct {
	e    *mat.Matrix
	cols []mat.Vector // cached columns
}

// NewMatrixEmission validates and wraps an emission matrix.
func NewMatrixEmission(e *mat.Matrix) (*MatrixEmission, error) {
	if e.Rows == 0 || e.Cols == 0 {
		return nil, fmt.Errorf("hmm: empty emission matrix")
	}
	for i := 0; i < e.Rows; i++ {
		row := e.Row(i)
		for _, v := range row {
			if v < 0 || math.IsNaN(v) {
				return nil, fmt.Errorf("hmm: emission row %d has invalid probability %g", i, v)
			}
		}
		if s := row.Sum(); math.Abs(s-1) > 1e-8 {
			return nil, fmt.Errorf("hmm: emission row %d sums to %g", i, s)
		}
	}
	me := &MatrixEmission{e: e.Clone()}
	me.cols = make([]mat.Vector, e.Cols)
	for j := 0; j < e.Cols; j++ {
		me.cols[j] = me.e.Col(j)
	}
	return me, nil
}

// MustNewMatrixEmission is NewMatrixEmission that panics on error.
func MustNewMatrixEmission(e *mat.Matrix) *MatrixEmission {
	m, err := NewMatrixEmission(e)
	if err != nil {
		panic(err)
	}
	return m
}

// EmissionColumn implements EmissionModel.
func (m *MatrixEmission) EmissionColumn(_, obs int) mat.Vector {
	if obs < 0 || obs >= len(m.cols) {
		panic(fmt.Sprintf("hmm: observation %d outside [0,%d)", obs, len(m.cols)))
	}
	return m.cols[obs]
}

// States implements EmissionModel.
func (m *MatrixEmission) States() int { return m.e.Rows }

// Matrix returns the wrapped emission matrix (not to be mutated).
func (m *MatrixEmission) Matrix() *mat.Matrix { return m.e }

// Model bundles a mobility chain, an initial distribution and an emission
// model.
type Model struct {
	Chain   *markov.Chain
	Initial mat.Vector
	Emit    EmissionModel
}

// NewModel validates dimensions and returns a Model.
func NewModel(c *markov.Chain, pi mat.Vector, emit EmissionModel) (*Model, error) {
	if c.States() != len(pi) {
		return nil, fmt.Errorf("hmm: chain has %d states, initial has %d", c.States(), len(pi))
	}
	if emit.States() != c.States() {
		return nil, fmt.Errorf("hmm: chain has %d states, emission has %d", c.States(), emit.States())
	}
	if !pi.IsDistribution(1e-8) {
		return nil, fmt.Errorf("hmm: initial vector is not a distribution")
	}
	return &Model{Chain: c, Initial: pi.Clone(), Emit: emit}, nil
}

// Forward runs the scaled forward pass (Eq. 10). It returns, for each
// timestamp, the normalised forward vector α̂_t (the filtering distribution
// Pr(u_t | o_1..t)) and the log-likelihood log Pr(o_1..o_T).
func (m *Model) Forward(obs []int) (alphas []mat.Vector, logLik float64, err error) {
	n := len(obs)
	if n == 0 {
		return nil, 0, fmt.Errorf("hmm: no observations")
	}
	states := m.Chain.States()
	alphas = make([]mat.Vector, n)
	cur := mat.NewVector(states)
	e0 := m.Emit.EmissionColumn(0, obs[0])
	m.Initial.HadamardInto(cur, e0)
	c0 := cur.Normalize()
	if c0 == 0 {
		return nil, 0, fmt.Errorf("hmm: observation at t=0 has zero likelihood")
	}
	logLik = math.Log(c0)
	alphas[0] = cur.Clone()
	next := mat.NewVector(states)
	for t := 1; t < n; t++ {
		m.Chain.StepInto(next, cur)
		et := m.Emit.EmissionColumn(t, obs[t])
		next.HadamardInto(next, et)
		ct := next.Normalize()
		if ct == 0 {
			return nil, 0, fmt.Errorf("hmm: observation at t=%d has zero likelihood", t)
		}
		logLik += math.Log(ct)
		alphas[t] = next.Clone()
		cur, next = next, cur
	}
	return alphas, logLik, nil
}

// Backward runs the scaled backward pass (Eq. 11) and returns the
// per-timestamp backward vectors, normalised so each sums to the state
// count (the conventional scaled form). betas[T-1] is all ones.
func (m *Model) Backward(obs []int) ([]mat.Vector, error) {
	n := len(obs)
	if n == 0 {
		return nil, fmt.Errorf("hmm: no observations")
	}
	states := m.Chain.States()
	betas := make([]mat.Vector, n)
	cur := mat.Ones(states)
	betas[n-1] = cur.Clone()
	tmp := mat.NewVector(states)
	tr := m.Chain.Matrix()
	for t := n - 2; t >= 0; t-- {
		et1 := m.Emit.EmissionColumn(t+1, obs[t+1])
		cur.HadamardInto(tmp, et1)
		// β_t = M·(e_{t+1} ∘ β_{t+1})
		next := tr.MulVec(tmp)
		s := next.Sum()
		if s <= 0 {
			return nil, fmt.Errorf("hmm: backward pass degenerated at t=%d", t)
		}
		next.Scale(float64(states) / s)
		betas[t] = next
		cur = next
	}
	return betas, nil
}

// Smooth returns the smoothing distributions Pr(u_t | o_1..o_T) for all t
// (Eq. 12).
func (m *Model) Smooth(obs []int) ([]mat.Vector, error) {
	alphas, _, err := m.Forward(obs)
	if err != nil {
		return nil, err
	}
	betas, err := m.Backward(obs)
	if err != nil {
		return nil, err
	}
	out := make([]mat.Vector, len(obs))
	for t := range obs {
		g := alphas[t].Hadamard(betas[t])
		if g.Normalize() == 0 {
			return nil, fmt.Errorf("hmm: zero smoothing mass at t=%d", t)
		}
		out[t] = g
	}
	return out, nil
}

// LogLikelihood returns log Pr(o_1..o_T) under the model.
func (m *Model) LogLikelihood(obs []int) (float64, error) {
	_, ll, err := m.Forward(obs)
	return ll, err
}

// Filter performs the single-step Bayesian update of Eq. 21: given the
// predictive prior p⁻ and an observation, it returns the posterior
// p⁺[i] ∝ Pr(o|u=s_i)·p⁻[i]. Used by the δ-location-set mechanism.
func Filter(prior mat.Vector, emission mat.Vector) (mat.Vector, error) {
	if len(prior) != len(emission) {
		return nil, fmt.Errorf("hmm: filter length mismatch %d vs %d", len(prior), len(emission))
	}
	post := prior.Hadamard(emission)
	if post.Normalize() == 0 {
		return nil, fmt.Errorf("hmm: observation has zero probability under prior")
	}
	return post, nil
}

// Viterbi returns a most-likely hidden state sequence for the observations
// (in log space). Provided for completeness of the substrate; PriSTE itself
// only needs filtering/smoothing, but attack-simulation examples use it.
func (m *Model) Viterbi(obs []int) ([]int, float64, error) {
	n := len(obs)
	if n == 0 {
		return nil, 0, fmt.Errorf("hmm: no observations")
	}
	states := m.Chain.States()
	logTr := make([][]float64, states)
	for i := 0; i < states; i++ {
		logTr[i] = make([]float64, states)
		for j := 0; j < states; j++ {
			logTr[i][j] = safeLog(m.Chain.Prob(i, j))
		}
	}
	delta := make([]float64, states)
	e0 := m.Emit.EmissionColumn(0, obs[0])
	for i := 0; i < states; i++ {
		delta[i] = safeLog(m.Initial[i]) + safeLog(e0[i])
	}
	back := make([][]int32, n)
	next := make([]float64, states)
	for t := 1; t < n; t++ {
		back[t] = make([]int32, states)
		et := m.Emit.EmissionColumn(t, obs[t])
		for j := 0; j < states; j++ {
			best, bi := math.Inf(-1), 0
			for i := 0; i < states; i++ {
				if v := delta[i] + logTr[i][j]; v > best {
					best, bi = v, i
				}
			}
			next[j] = best + safeLog(et[j])
			back[t][j] = int32(bi)
		}
		delta, next = next, delta
	}
	best, bi := math.Inf(-1), 0
	for i, v := range delta {
		if v > best {
			best, bi = v, i
		}
	}
	if math.IsInf(best, -1) {
		return nil, best, fmt.Errorf("hmm: all paths have zero probability")
	}
	path := make([]int, n)
	path[n-1] = bi
	for t := n - 1; t > 0; t-- {
		path[t-1] = int(back[t][path[t]])
	}
	return path, best, nil
}

func safeLog(x float64) float64 {
	if x <= 0 {
		return math.Inf(-1)
	}
	return math.Log(x)
}
