package geolife

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"time"

	"priste/internal/grid"
	"priste/internal/trace"
)

// This file parses the *real* Geolife trajectory format so the pipeline
// runs on the actual dataset when a user has it locally (the repository
// itself ships only the synthetic substitute; see DESIGN.md). A Geolife
// .plt file is six header lines followed by records
//
//	lat,lng,0,altitude_ft,days_since_1899,date,time
//
// e.g. "39.906631,116.385564,0,492,39745.1200347222,2008-10-24,02:52:51".

// PLTPoint is one parsed Geolife record.
type PLTPoint struct {
	Lat, Lng float64
	Time     time.Time
}

// ParsePLT reads one .plt file. Malformed records are rejected with the
// line number; the six-line header is skipped when present.
func ParsePLT(r io.Reader) ([]PLTPoint, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	var out []PLTPoint
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Split(text, ",")
		if len(fields) != 7 {
			if line <= 6 {
				continue // header block
			}
			return nil, fmt.Errorf("geolife: line %d: want 7 fields, got %d", line, len(fields))
		}
		lat, err := strconv.ParseFloat(strings.TrimSpace(fields[0]), 64)
		if err != nil {
			if line <= 6 {
				continue
			}
			return nil, fmt.Errorf("geolife: line %d: latitude: %w", line, err)
		}
		lng, err := strconv.ParseFloat(strings.TrimSpace(fields[1]), 64)
		if err != nil {
			return nil, fmt.Errorf("geolife: line %d: longitude: %w", line, err)
		}
		if lat < -90 || lat > 90 || lng < -180 || lng > 180 {
			return nil, fmt.Errorf("geolife: line %d: coordinates (%g, %g) out of range", line, lat, lng)
		}
		ts, err := time.Parse("2006-01-02 15:04:05",
			strings.TrimSpace(fields[5])+" "+strings.TrimSpace(fields[6]))
		if err != nil {
			return nil, fmt.Errorf("geolife: line %d: timestamp: %w", line, err)
		}
		out = append(out, PLTPoint{Lat: lat, Lng: lng, Time: ts})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Projector converts WGS-84 coordinates to local kilometre offsets with an
// equirectangular projection around a reference point — accurate to well
// under a cell width over city-scale extents.
type Projector struct {
	RefLat, RefLng float64
	cosRef         float64
}

// NewProjector centres the projection on the given reference point.
func NewProjector(refLat, refLng float64) (*Projector, error) {
	if refLat < -90 || refLat > 90 || refLng < -180 || refLng > 180 {
		return nil, fmt.Errorf("geolife: reference (%g, %g) out of range", refLat, refLng)
	}
	return &Projector{RefLat: refLat, RefLng: refLng, cosRef: math.Cos(refLat * math.Pi / 180)}, nil
}

// earthRadiusKm is the mean Earth radius.
const earthRadiusKm = 6371.0

// ToKm returns the (x, y) kilometre offsets of a point from the reference.
func (p *Projector) ToKm(lat, lng float64) (x, y float64) {
	x = (lng - p.RefLng) * math.Pi / 180 * earthRadiusKm * p.cosRef
	y = (lat - p.RefLat) * math.Pi / 180 * earthRadiusKm
	return x, y
}

// ResampleOptions controls conversion of PLT points to fixed-interval raw
// trajectories.
type ResampleOptions struct {
	// Interval is the sampling period (Geolife logs every 1–5 s; the
	// paper's experiments use coarse timestamps).
	Interval time.Duration
	// Gap splits a trajectory when consecutive records are further apart
	// than this (default 6×Interval).
	Gap time.Duration
}

// Resample converts parsed records into fixed-interval raw trajectories in
// km around the centroid of the data, splitting at temporal gaps. The
// resulting traces feed trace.Discretize and markov.Train exactly like the
// synthetic generator's output.
func Resample(points []PLTPoint, opt ResampleOptions) ([]trace.Raw, *Projector, error) {
	if len(points) == 0 {
		return nil, nil, fmt.Errorf("geolife: no points")
	}
	if opt.Interval <= 0 {
		return nil, nil, fmt.Errorf("geolife: interval must be positive")
	}
	if opt.Gap <= 0 {
		opt.Gap = 6 * opt.Interval
	}
	var latSum, lngSum float64
	for _, p := range points {
		latSum += p.Lat
		lngSum += p.Lng
	}
	proj, err := NewProjector(latSum/float64(len(points)), lngSum/float64(len(points)))
	if err != nil {
		return nil, nil, err
	}
	var trajs []trace.Raw
	var cur trace.Raw
	nextSample := points[0].Time
	step := 0
	flush := func() {
		if len(cur) > 1 {
			trajs = append(trajs, cur)
		}
		cur = nil
		step = 0
	}
	for i, p := range points {
		if i > 0 {
			dt := p.Time.Sub(points[i-1].Time)
			if dt < 0 {
				return nil, nil, fmt.Errorf("geolife: timestamps not monotone at record %d", i)
			}
			if dt > opt.Gap {
				flush()
				nextSample = p.Time
			}
		}
		if p.Time.Before(nextSample) {
			continue
		}
		x, y := proj.ToKm(p.Lat, p.Lng)
		cur = append(cur, trace.Point{X: x, Y: y, T: step})
		step++
		nextSample = p.Time.Add(opt.Interval)
	}
	flush()
	if len(trajs) == 0 {
		return nil, nil, fmt.Errorf("geolife: no trajectory long enough after resampling")
	}
	return trajs, proj, nil
}

// DiscretizeAll maps raw km trajectories onto a grid whose origin is the
// lower-left of the data's bounding box, returning the state trajectories
// plus the grid used. The grid side length adapts to the data extent with
// the given cell size; cells are clamped to at most maxSide per axis to
// keep the state space manageable.
func DiscretizeAll(trajs []trace.Raw, cellKm float64, maxSide int) ([][]int, *grid.Grid, error) {
	if len(trajs) == 0 {
		return nil, nil, fmt.Errorf("geolife: no trajectories")
	}
	if cellKm <= 0 {
		return nil, nil, fmt.Errorf("geolife: cell size must be positive")
	}
	if maxSide <= 0 {
		maxSide = 32
	}
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, tr := range trajs {
		for _, p := range tr {
			minX = math.Min(minX, p.X)
			minY = math.Min(minY, p.Y)
			maxX = math.Max(maxX, p.X)
			maxY = math.Max(maxY, p.Y)
		}
	}
	w := int(math.Ceil((maxX-minX)/cellKm)) + 1
	h := int(math.Ceil((maxY-minY)/cellKm)) + 1
	if w > maxSide {
		w = maxSide
	}
	if h > maxSide {
		h = maxSide
	}
	g, err := grid.New(w, h, cellKm)
	if err != nil {
		return nil, nil, err
	}
	out := make([][]int, len(trajs))
	for i, tr := range trajs {
		shifted := make(trace.Raw, len(tr))
		for j, p := range tr {
			shifted[j] = trace.Point{X: p.X - minX, Y: p.Y - minY, T: p.T}
		}
		out[i] = trace.Discretize(g, shifted)
	}
	return out, g, nil
}
