// Package geolife generates Geolife-like mobility data. The paper's
// evaluation (§V-A) trains a Markov transition matrix from real Geolife
// trajectories [19]; that dataset is not redistributable and the build is
// offline, so — per the reproduction's substitution rule — this package
// synthesises traces with the structural properties the experiments
// actually rely on:
//
//   - anchored daily routine: a home cell and a work cell with commutes
//     between them, so the trained chain has a strong, spatially-coherent
//     pattern (the "significant mobility pattern" of §V-C);
//   - dwell time at anchors and roughly shortest-path movement with noise
//     along commutes, so transitions are local on the km-scale map;
//   - occasional errands to random cells, so the chain keeps non-trivial
//     support off the main corridor.
//
// The output feeds the same training pipeline the authors used (R package
// "markovchain" → internal/markov.Train), yielding a realistic transition
// matrix and km-scale Euclidean utility numbers for Figs. 11 and 12.
package geolife

import (
	"fmt"
	"math/rand"

	"priste/internal/grid"
	"priste/internal/markov"
	"priste/internal/mat"
	"priste/internal/trace"
)

// Config controls the generator.
type Config struct {
	// Grid is the km-scaled map; required.
	Grid *grid.Grid
	// Days is the number of simulated days (one trajectory per day).
	Days int
	// StepsPerDay is the number of timestamped records per day.
	StepsPerDay int
	// ErrandProb is the per-day probability of an errand detour.
	ErrandProb float64
	// WanderNoise is the probability of a random sidestep while
	// commuting (0 = perfectly direct commutes).
	WanderNoise float64
	// Seed makes the generator deterministic.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Days == 0 {
		c.Days = 60
	}
	if c.StepsPerDay == 0 {
		c.StepsPerDay = 48
	}
	if c.ErrandProb == 0 {
		c.ErrandProb = 0.25
	}
	if c.WanderNoise == 0 {
		c.WanderNoise = 0.2
	}
	return c
}

func (c Config) validate() error {
	if c.Grid == nil {
		return fmt.Errorf("geolife: nil grid")
	}
	if c.Days < 0 || c.StepsPerDay < 0 {
		return fmt.Errorf("geolife: negative days/steps")
	}
	if c.ErrandProb < 0 || c.ErrandProb > 1 {
		return fmt.Errorf("geolife: errand probability %g outside [0,1]", c.ErrandProb)
	}
	if c.WanderNoise < 0 || c.WanderNoise > 1 {
		return fmt.Errorf("geolife: wander noise %g outside [0,1]", c.WanderNoise)
	}
	return nil
}

// Dataset is a generated corpus plus its anchors.
type Dataset struct {
	Grid       *grid.Grid
	Home, Work int
	// Raw are the continuous day trajectories; States their grid
	// discretisation.
	Raw    []trace.Raw
	States [][]int
}

// Generate synthesises a dataset.
func Generate(cfg Config) (*Dataset, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	g := cfg.Grid
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Home in the lower-left quadrant, work in the upper-right, far
	// enough apart for a real corridor.
	home := g.State(rng.Intn(maxInt(1, g.W/3)), rng.Intn(maxInt(1, g.H/3)))
	work := g.State(g.W-1-rng.Intn(maxInt(1, g.W/3)), g.H-1-rng.Intn(maxInt(1, g.H/3)))

	ds := &Dataset{Grid: g, Home: home, Work: work}
	for d := 0; d < cfg.Days; d++ {
		day := generateDay(rng, g, home, work, cfg)
		ds.Raw = append(ds.Raw, day)
		ds.States = append(ds.States, trace.Discretize(g, day))
	}
	return ds, nil
}

// generateDay builds one day: dwell at home, commute, dwell at work
// (possibly with an errand), commute back, dwell at home.
func generateDay(rng *rand.Rand, g *grid.Grid, home, work int, cfg Config) trace.Raw {
	n := cfg.StepsPerDay
	var cells []int
	dwellHome := n / 6
	dwellWork := n / 4
	cells = append(cells, repeat(home, dwellHome)...)
	cells = append(cells, walk(rng, g, home, work, cfg.WanderNoise)...)
	cells = append(cells, repeat(work, dwellWork)...)
	if rng.Float64() < cfg.ErrandProb {
		errand := rng.Intn(g.States())
		cells = append(cells, walk(rng, g, work, errand, cfg.WanderNoise)...)
		cells = append(cells, repeat(errand, 2)...)
		cells = append(cells, walk(rng, g, errand, home, cfg.WanderNoise)...)
	} else {
		cells = append(cells, walk(rng, g, work, home, cfg.WanderNoise)...)
	}
	// Pad or trim to exactly n steps with a final home dwell.
	for len(cells) < n {
		cells = append(cells, home)
	}
	cells = cells[:n]

	day := make(trace.Raw, n)
	for i, s := range cells {
		cx, cy := g.Center(s)
		// GPS-style jitter within the cell.
		jx := (rng.Float64() - 0.5) * g.CellSize * 0.8
		jy := (rng.Float64() - 0.5) * g.CellSize * 0.8
		day[i] = trace.Point{X: cx + jx, Y: cy + jy, T: i}
	}
	return day
}

// walk returns a 4-neighbour lattice path from a to b, taking a random
// sidestep with probability noise at each move.
func walk(rng *rand.Rand, g *grid.Grid, a, b int, noise float64) []int {
	var path []int
	x, y := g.XY(a)
	bx, by := g.XY(b)
	guard := 4 * (g.W + g.H) // bound detours
	for (x != bx || y != by) && guard > 0 {
		guard--
		if rng.Float64() < noise {
			// Sidestep to a random in-bounds neighbour.
			dirs := [][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}}
			d := dirs[rng.Intn(4)]
			if g.Contains(x+d[0], y+d[1]) {
				x += d[0]
				y += d[1]
				path = append(path, g.State(x, y))
				continue
			}
		}
		// Greedy step toward the target, breaking ties randomly.
		dx, dy := sign(bx-x), sign(by-y)
		if dx != 0 && (dy == 0 || rng.Intn(2) == 0) {
			x += dx
		} else if dy != 0 {
			y += dy
		}
		path = append(path, g.State(x, y))
	}
	return path
}

// Train fits the transition matrix and empirical initial distribution from
// the dataset with light smoothing, mirroring the paper's pipeline.
func (ds *Dataset) Train(smoothing float64) (*markov.Chain, mat.Vector, error) {
	chain, err := markov.Train(ds.States, markov.TrainOptions{
		States:    ds.Grid.States(),
		Smoothing: smoothing,
	})
	if err != nil {
		return nil, nil, err
	}
	pi, err := markov.EmpiricalInitial(ds.States, ds.Grid.States(), smoothing)
	if err != nil {
		return nil, nil, err
	}
	return chain, pi, nil
}

// Concat joins all day trajectories into one long state sequence (the
// paper uses "the user's entire trajectory" for training and evaluation).
func (ds *Dataset) Concat() []int {
	var out []int
	for _, tr := range ds.States {
		out = append(out, tr...)
	}
	return out
}

func repeat(s, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = s
	}
	return out
}

func sign(v int) int {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	default:
		return 0
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
