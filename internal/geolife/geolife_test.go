package geolife

import (
	"math"
	"testing"

	"priste/internal/grid"
)

func smallConfig(seed int64) Config {
	return Config{
		Grid:        grid.MustNew(8, 8, 1),
		Days:        20,
		StepsPerDay: 40,
		Seed:        seed,
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Config{}); err == nil {
		t.Error("nil grid accepted")
	}
	g := grid.MustNew(4, 4, 1)
	if _, err := Generate(Config{Grid: g, Days: -1}); err == nil {
		t.Error("negative days accepted")
	}
	if _, err := Generate(Config{Grid: g, ErrandProb: 2}); err == nil {
		t.Error("errand prob > 1 accepted")
	}
	if _, err := Generate(Config{Grid: g, WanderNoise: -0.1}); err == nil {
		t.Error("negative noise accepted")
	}
}

func TestGenerateShape(t *testing.T) {
	ds, err := Generate(smallConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Raw) != 20 || len(ds.States) != 20 {
		t.Fatalf("days = %d/%d", len(ds.Raw), len(ds.States))
	}
	for d, day := range ds.Raw {
		if len(day) != 40 {
			t.Fatalf("day %d has %d steps", d, len(day))
		}
		for i, p := range day {
			if p.T != i {
				t.Fatalf("day %d point %d has T=%d", d, i, p.T)
			}
		}
	}
	m := ds.Grid.States()
	for _, traj := range ds.States {
		for _, s := range traj {
			if s < 0 || s >= m {
				t.Fatalf("state %d out of range", s)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(smallConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	if a.Home != b.Home || a.Work != b.Work {
		t.Fatal("anchors differ across identical seeds")
	}
	for d := range a.States {
		for i := range a.States[d] {
			if a.States[d][i] != b.States[d][i] {
				t.Fatalf("day %d step %d differs", d, i)
			}
		}
	}
	c, err := Generate(smallConfig(43))
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for d := range a.States {
		for i := range a.States[d] {
			if a.States[d][i] != c.States[d][i] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

// TestAnchoredRoutine: the day trajectories must start at home, visit
// work, and anchors must dominate the visit distribution.
func TestAnchoredRoutine(t *testing.T) {
	ds, err := Generate(smallConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[int]int)
	for _, traj := range ds.States {
		if traj[0] != ds.Home {
			t.Fatalf("day starts at %d, home is %d", traj[0], ds.Home)
		}
		sawWork := false
		for _, s := range traj {
			counts[s]++
			if s == ds.Work {
				sawWork = true
			}
		}
		if !sawWork {
			t.Fatal("day never reached work")
		}
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	homeFrac := float64(counts[ds.Home]) / float64(total)
	workFrac := float64(counts[ds.Work]) / float64(total)
	if homeFrac < 0.1 || workFrac < 0.1 {
		t.Fatalf("anchors underrepresented: home %v work %v", homeFrac, workFrac)
	}
}

// TestTrainProducesPatternedChain: the trained chain must be far more
// patterned than uniform, which is what Figs. 11–13 rely on.
func TestTrainProducesPatternedChain(t *testing.T) {
	ds, err := Generate(smallConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	chain, pi, err := ds.Train(0.001)
	if err != nil {
		t.Fatal(err)
	}
	m := ds.Grid.States()
	if chain.States() != m || len(pi) != m {
		t.Fatal("dimension mismatch")
	}
	if !pi.IsDistribution(1e-9) {
		t.Fatal("initial not a distribution")
	}
	if ps := chain.PatternStrength(); ps < 5.0/float64(m) {
		t.Fatalf("pattern strength %v too close to uniform (1/m = %v)", ps, 1.0/float64(m))
	}
	// Local moves dominate: average jump distance under the chain from
	// the home cell should be well under the map diameter.
	row := chain.Matrix().Row(ds.Home)
	var mean float64
	for j, p := range row {
		mean += p * ds.Grid.Dist(ds.Home, j)
	}
	diam := ds.Grid.Dist(0, m-1)
	if mean > diam/2 {
		t.Fatalf("mean jump %v vs diameter %v: not local", mean, diam)
	}
}

func TestConcat(t *testing.T) {
	ds, err := Generate(smallConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	all := ds.Concat()
	if len(all) != 20*40 {
		t.Fatalf("concat length %d", len(all))
	}
}

// TestJitterStaysNearCell: raw points must lie within their cell's
// neighbourhood (jitter < one cell).
func TestJitterStaysNearCell(t *testing.T) {
	ds, err := Generate(smallConfig(9))
	if err != nil {
		t.Fatal(err)
	}
	for d, day := range ds.Raw {
		for i, p := range day {
			s := ds.States[d][i]
			cx, cy := ds.Grid.Center(s)
			if math.Hypot(p.X-cx, p.Y-cy) > ds.Grid.CellSize {
				t.Fatalf("day %d point %d drifted %v from its cell",
					d, i, math.Hypot(p.X-cx, p.Y-cy))
			}
		}
	}
}
