package geolife

import (
	"math"
	"strings"
	"testing"
	"time"
)

const samplePLT = `Geolife trajectory
WGS 84
Altitude is in Feet
Reserved 3
0,2,255,My Track,0,0,2,8421376
0
39.906631,116.385564,0,492,39745.1200347222,2008-10-24,02:52:51
39.906554,116.385625,0,492,39745.1200462963,2008-10-24,02:52:52
39.906600,116.385700,0,492,39745.1200578704,2008-10-24,02:52:53
39.906700,116.385800,0,492,39745.1200694444,2008-10-24,02:52:54
`

func TestParsePLT(t *testing.T) {
	pts, err := ParsePLT(strings.NewReader(samplePLT))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("parsed %d points", len(pts))
	}
	if math.Abs(pts[0].Lat-39.906631) > 1e-9 || math.Abs(pts[0].Lng-116.385564) > 1e-9 {
		t.Fatalf("first point = %+v", pts[0])
	}
	if pts[0].Time.Hour() != 2 || pts[0].Time.Second() != 51 {
		t.Fatalf("timestamp = %v", pts[0].Time)
	}
}

func TestParsePLTErrors(t *testing.T) {
	// Malformed data past the header must error, not be skipped.
	bad := samplePLT + "garbage line\n"
	if _, err := ParsePLT(strings.NewReader(bad)); err == nil {
		t.Error("garbage record accepted")
	}
	bad2 := samplePLT + "91.0,116.0,0,1,1,2008-10-24,02:52:55\n"
	if _, err := ParsePLT(strings.NewReader(bad2)); err == nil {
		t.Error("out-of-range latitude accepted")
	}
	bad3 := samplePLT + "39.0,116.0,0,1,1,2008-13-45,02:52:55\n"
	if _, err := ParsePLT(strings.NewReader(bad3)); err == nil {
		t.Error("bad date accepted")
	}
}

func TestProjector(t *testing.T) {
	p, err := NewProjector(39.9, 116.4)
	if err != nil {
		t.Fatal(err)
	}
	// One degree of latitude ≈ 111.2 km.
	_, y := p.ToKm(40.9, 116.4)
	if math.Abs(y-111.19) > 0.5 {
		t.Fatalf("1° latitude = %v km", y)
	}
	// Longitude is compressed by cos(lat) ≈ 0.767 at 39.9°N.
	x, _ := p.ToKm(39.9, 117.4)
	if math.Abs(x-111.19*math.Cos(39.9*math.Pi/180)) > 0.5 {
		t.Fatalf("1° longitude = %v km", x)
	}
	if _, err := NewProjector(100, 0); err == nil {
		t.Error("invalid reference accepted")
	}
}

func buildPoints(n int, stepSec int, latStep float64) []PLTPoint {
	base := time.Date(2008, 10, 24, 2, 0, 0, 0, time.UTC)
	pts := make([]PLTPoint, n)
	for i := range pts {
		pts[i] = PLTPoint{
			Lat:  39.9 + latStep*float64(i),
			Lng:  116.4,
			Time: base.Add(time.Duration(i*stepSec) * time.Second),
		}
	}
	return pts
}

func TestResample(t *testing.T) {
	// 100 points at 1 s spacing, resampled at 10 s → 10 samples.
	pts := buildPoints(100, 1, 0.0001)
	trajs, proj, err := Resample(pts, ResampleOptions{Interval: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if proj == nil {
		t.Fatal("nil projector")
	}
	if len(trajs) != 1 {
		t.Fatalf("got %d trajectories", len(trajs))
	}
	if len(trajs[0]) != 10 {
		t.Fatalf("got %d samples", len(trajs[0]))
	}
	for i, p := range trajs[0] {
		if p.T != i {
			t.Fatalf("sample %d has T=%d", i, p.T)
		}
	}
}

func TestResampleGapSplits(t *testing.T) {
	pts := buildPoints(50, 1, 0.0001)
	// Insert a 10-minute gap.
	for i := 25; i < 50; i++ {
		pts[i].Time = pts[i].Time.Add(10 * time.Minute)
	}
	trajs, _, err := Resample(pts, ResampleOptions{Interval: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(trajs) != 2 {
		t.Fatalf("gap did not split: %d trajectories", len(trajs))
	}
}

func TestResampleErrors(t *testing.T) {
	if _, _, err := Resample(nil, ResampleOptions{Interval: time.Second}); err == nil {
		t.Error("empty input accepted")
	}
	pts := buildPoints(10, 1, 0.0001)
	if _, _, err := Resample(pts, ResampleOptions{}); err == nil {
		t.Error("zero interval accepted")
	}
	// Non-monotone timestamps.
	pts[5].Time = pts[0].Time.Add(-time.Hour)
	if _, _, err := Resample(pts, ResampleOptions{Interval: time.Second}); err == nil {
		t.Error("non-monotone timestamps accepted")
	}
}

func TestDiscretizeAllAndTrainPipeline(t *testing.T) {
	// A back-and-forth walk spanning ~5 km of latitude.
	pts := buildPoints(600, 5, 0.00008)
	trajs, _, err := Resample(pts, ResampleOptions{Interval: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	states, g, err := DiscretizeAll(trajs, 1.0, 16)
	if err != nil {
		t.Fatal(err)
	}
	if g.States() == 0 || len(states) != len(trajs) {
		t.Fatalf("grid %d states, %d trajectories", g.States(), len(states))
	}
	for _, tr := range states {
		for _, s := range tr {
			if s < 0 || s >= g.States() {
				t.Fatalf("state %d outside grid", s)
			}
		}
	}
	if _, _, err := DiscretizeAll(nil, 1, 16); err == nil {
		t.Error("empty input accepted")
	}
	if _, _, err := DiscretizeAll(trajs, -1, 16); err == nil {
		t.Error("negative cell accepted")
	}
}
