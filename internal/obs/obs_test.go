package obs

import (
	"context"
	"math"
	"math/rand"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBucketIndexRangeConsistent(t *testing.T) {
	// Every bucket's own bounds must map back onto that bucket, buckets
	// must tile the axis with no gaps, and indices must be monotone.
	prevHi := int64(-1)
	for i := 0; i < histBuckets; i++ {
		lo, hi := bucketRange(i)
		if lo != prevHi+1 {
			t.Fatalf("bucket %d: lo=%d, want %d (gap after previous hi)", i, lo, prevHi+1)
		}
		if hi < lo {
			t.Fatalf("bucket %d: hi=%d < lo=%d", i, hi, lo)
		}
		if got := bucketIndex(lo); got != i {
			t.Fatalf("bucketIndex(lo=%d)=%d, want %d", lo, got, i)
		}
		if got := bucketIndex(hi); got != i {
			t.Fatalf("bucketIndex(hi=%d)=%d, want %d", hi, got, i)
		}
		prevHi = hi
	}
	if got := bucketIndex(math.MaxInt64); got != histBuckets-1 {
		t.Fatalf("bucketIndex(MaxInt64)=%d, want %d", got, histBuckets-1)
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	// Against a known distribution, every reported quantile must land
	// within the bucket-geometry error bound (12.5% relative) of the
	// exact order statistic.
	rng := rand.New(rand.NewSource(42))
	var h Histogram
	vals := make([]int64, 0, 20000)
	for i := 0; i < 20000; i++ {
		// Log-uniform over ~1µs..100ms, exercising many octaves.
		v := int64(math.Exp(rng.Float64()*math.Log(1e5)) * 1e3)
		vals = append(vals, v)
		h.ObserveNanos(v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, q := range []float64{0, 0.1, 0.5, 0.9, 0.99, 1} {
		exact := vals[int(q*float64(len(vals)-1))]
		got := h.Quantile(q)
		if relErr := math.Abs(float64(got-exact)) / float64(exact); relErr > 0.125 {
			t.Errorf("q=%g: got %d, exact %d, rel err %.3f > 0.125", q, got, exact, relErr)
		}
	}
	if h.Count() != int64(len(vals)) {
		t.Fatalf("count=%d, want %d", h.Count(), len(vals))
	}
	var sum int64
	for _, v := range vals {
		sum += v
	}
	if h.Sum() != sum {
		t.Fatalf("sum=%d, want %d", h.Sum(), sum)
	}
	if mean := h.Mean(); math.Abs(mean-float64(sum)/float64(len(vals))) > 1e-6 {
		t.Fatalf("mean=%g, want %g", mean, float64(sum)/float64(len(vals)))
	}
}

func TestHistogramEdgeValues(t *testing.T) {
	var h Histogram
	h.ObserveNanos(-5) // clamps to 0
	h.ObserveNanos(0)
	h.Observe(3 * time.Millisecond)
	if h.Count() != 3 {
		t.Fatalf("count=%d, want 3", h.Count())
	}
	if h.Sum() != int64(3*time.Millisecond) {
		t.Fatalf("sum=%d, want %d", h.Sum(), int64(3*time.Millisecond))
	}
	var empty Histogram
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestQuantileSmallN(t *testing.T) {
	// Nearest-rank at tiny counts: the p99 of two observations is the
	// larger one, not the minimum (a floor-the-rank bug would report a
	// p99 below the mean).
	var h Histogram
	h.ObserveNanos(70_000)
	h.ObserveNanos(2_100_000)
	if p99 := h.Quantile(0.99); p99 < 1_800_000 {
		t.Fatalf("p99 of {70µs, 2.1ms} = %d ns, want ~2.1ms", p99)
	}
	if p0 := h.Quantile(0); p0 > 80_000 {
		t.Fatalf("p0 = %d ns, want the ~70µs minimum", p0)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b, both Histogram
	for i := int64(1); i <= 1000; i++ {
		a.ObserveNanos(i * 100)
		b.ObserveNanos(i * 37)
		both.ObserveNanos(i * 100)
		both.ObserveNanos(i * 37)
	}
	a.Merge(&b)
	a.Merge(nil)
	if a.Count() != both.Count() || a.Sum() != both.Sum() {
		t.Fatalf("merge: count/sum %d/%d, want %d/%d", a.Count(), a.Sum(), both.Count(), both.Sum())
	}
	for _, q := range []float64{0.1, 0.5, 0.99} {
		if a.Quantile(q) != both.Quantile(q) {
			t.Fatalf("merge: q=%g mismatch %d vs %d", q, a.Quantile(q), both.Quantile(q))
		}
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	// Run with -race: concurrent observers, a merger and a reader must
	// not race, and no observation may be lost.
	var h, other Histogram
	const (
		workers = 8
		perW    = 5000
	)
	for i := 0; i < 1000; i++ {
		other.ObserveNanos(int64(i))
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perW; i++ {
				h.ObserveNanos(rng.Int63n(1 << 30))
			}
		}(int64(w))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			h.Quantile(0.99)
			h.cumulative()
		}
	}()
	wg.Wait()
	h.Merge(&other)
	if want := int64(workers*perW + 1000); h.Count() != want {
		t.Fatalf("count=%d, want %d", h.Count(), want)
	}
	counts, total, _ := h.cumulative()
	if total != h.Count() {
		t.Fatalf("cumulative total=%d, want %d", total, h.Count())
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] < counts[i-1] {
			t.Fatalf("cumulative counts not monotone at %d", i)
		}
	}
}

func TestRegistryExpositionGolden(t *testing.T) {
	// Deterministic registry contents must render byte-for-byte as the
	// Prometheus text format: HELP/TYPE headers, sorted families, label
	// sets, cumulative le buckets with +Inf, _sum and _count.
	r := NewRegistry()
	c := r.Counter("priste_steps_served_total", "Steps served.", Label{"transport", "http"})
	c.Add(7)
	g := r.Gauge("priste_sessions_live", "Live sessions.")
	g.Set(3)
	r.GaugeFunc("priste_cert_cache_entries", "Certified-release cache entries.", func() float64 { return 12 })
	h := r.Histogram("priste_step_seconds", "Served step latency.", Label{"transport", "rpc"})
	h.ObserveNanos(2000)    // ≤ 2048    (le=0.000002048)
	h.ObserveNanos(3000)    // ≤ 4096
	h.ObserveNanos(3000000) // ≤ 2^22 ns (le=0.004194304)

	var b strings.Builder
	r.WriteText(&b)
	got := b.String()

	const want = `# HELP priste_cert_cache_entries Certified-release cache entries.
# TYPE priste_cert_cache_entries gauge
priste_cert_cache_entries 12
# HELP priste_sessions_live Live sessions.
# TYPE priste_sessions_live gauge
priste_sessions_live 3
# HELP priste_step_seconds Served step latency.
# TYPE priste_step_seconds histogram
`
	if !strings.HasPrefix(got, want) {
		t.Fatalf("exposition prefix mismatch:\ngot:\n%s\nwant prefix:\n%s", got, want)
	}
	for _, line := range []string{
		`priste_step_seconds_bucket{transport="rpc",le="0.000001024"} 0`,
		`priste_step_seconds_bucket{transport="rpc",le="0.000002048"} 1`,
		`priste_step_seconds_bucket{transport="rpc",le="0.000004096"} 2`,
		`priste_step_seconds_bucket{transport="rpc",le="0.004194304"} 3`,
		`priste_step_seconds_bucket{transport="rpc",le="+Inf"} 3`,
		`priste_step_seconds_sum{transport="rpc"} 0.003005`,
		`priste_step_seconds_count{transport="rpc"} 3`,
		`# HELP priste_steps_served_total Steps served.`,
		`# TYPE priste_steps_served_total counter`,
		`priste_steps_served_total{transport="http"} 7`,
	} {
		if !strings.Contains(got, line+"\n") {
			t.Errorf("exposition missing line %q\nfull output:\n%s", line, got)
		}
	}
}

func TestRegistryHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("priste_test_total", "A counter.").Add(1)
	RegisterRuntime(r)
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metricsz", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content-type %q", ct)
	}
	body := rec.Body.String()
	for _, series := range []string{"priste_test_total 1", "go_goroutines ", "go_memstats_heap_alloc_bytes "} {
		if !strings.Contains(body, series) {
			t.Errorf("missing %q in:\n%s", series, body)
		}
	}
}

func TestTraceIDs(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		id := NewTraceID()
		if id == 0 {
			t.Fatal("zero trace ID generated")
		}
		if seen[id] {
			t.Fatalf("duplicate trace ID %x", id)
		}
		seen[id] = true
	}
	id := NewTraceID()
	s := FormatTrace(id)
	if len(s) != 16 {
		t.Fatalf("FormatTrace length %d: %q", len(s), s)
	}
	if back := ParseTrace(s); back != id {
		t.Fatalf("round trip: %x != %x", back, id)
	}
	for _, bad := range []string{"", "zz", "12345678123456781", "-1"} {
		if ParseTrace(bad) != 0 {
			t.Errorf("ParseTrace(%q) != 0", bad)
		}
	}
}

func TestContextPlumbing(t *testing.T) {
	ctx := context.Background()
	if TraceFrom(ctx) != 0 || TransportFrom(ctx) != "" {
		t.Fatal("fresh context should carry nothing")
	}
	ctx = WithTrace(ctx, 0xabc)
	ctx = WithTransport(ctx, "rpc")
	if TraceFrom(ctx) != 0xabc {
		t.Fatalf("trace=%x", TraceFrom(ctx))
	}
	if TransportFrom(ctx) != "rpc" {
		t.Fatalf("transport=%q", TransportFrom(ctx))
	}
	if WithTrace(ctx, 0) != ctx {
		t.Fatal("WithTrace(0) should be a no-op")
	}
}

func TestParseLevel(t *testing.T) {
	for s, want := range map[string]string{"debug": "DEBUG", "": "INFO", "info": "INFO", "warn": "WARN", "error": "ERROR"} {
		l, err := ParseLevel(s)
		if err != nil || l.String() != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %s", s, l, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel(loud) should fail")
	}
}

func TestNewLogger(t *testing.T) {
	var b strings.Builder
	log := NewLogger(&b, LogJSON, 0)
	log.Info("hello", "k", "v")
	if !strings.Contains(b.String(), `"msg":"hello"`) || !strings.Contains(b.String(), `"k":"v"`) {
		t.Fatalf("json log output: %s", b.String())
	}
	b.Reset()
	log = NewLogger(&b, LogText, 0)
	log.Info("hello")
	if !strings.Contains(b.String(), "msg=hello") {
		t.Fatalf("text log output: %s", b.String())
	}
	NewLogger(nil, LogText, 0).Info("dropped") // must not panic
}
