package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucket geometry: log-linear (HDR-style) buckets. Values
// 0..histSub-1 land in exact unit buckets; above that each power-of-two
// octave is subdivided into histSub linear sub-buckets, so the relative
// quantization error is bounded by 1/histSub (12.5%). Observations are
// int64 nanoseconds; the layout covers the full non-negative int64 range
// (max exponent 62) with 488 buckets (~4 KB of counters per histogram).
const (
	histSubBits = 3
	histSub     = 1 << histSubBits // sub-buckets per octave
	histBuckets = (63-histSubBits)*histSub + histSub
)

// Histogram is a fixed-size, lock-free latency histogram: every Observe
// is two-three atomic adds, so it can sit on the hot step path, and two
// histograms with identical geometry merge by adding counters — unlike
// the sampled sort-the-window quantiles it replaces, a snapshot never
// locks writers or allocates per observation.
//
// The zero value is ready to use.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	buckets [histBuckets]atomic.Int64
}

// bucketIndex maps a non-negative value onto its bucket.
func bucketIndex(v int64) int {
	u := uint64(v)
	if u < histSub {
		return int(u)
	}
	e := uint(bits.Len64(u) - 1) // e >= histSubBits
	sub := (u >> (e - histSubBits)) & (histSub - 1)
	return int(e-histSubBits)*histSub + histSub + int(sub)
}

// bucketRange returns the inclusive value range [lo, hi] of bucket i.
func bucketRange(i int) (lo, hi int64) {
	if i < histSub {
		return int64(i), int64(i)
	}
	shift := uint(i/histSub - 1)
	lo = int64(uint64(histSub+i%histSub) << shift)
	return lo, lo + int64(uint64(1)<<shift) - 1
}

// Observe records one duration. Negative durations count as zero.
func (h *Histogram) Observe(d time.Duration) { h.ObserveNanos(int64(d)) }

// ObserveNanos records one observation in nanoseconds.
func (h *Histogram) ObserveNanos(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations in nanoseconds.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Mean returns the mean observation in nanoseconds (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile returns an estimate of the q-quantile (q in [0,1]) in
// nanoseconds: the midpoint of the bucket holding the rank, so the
// estimate is within the bucket geometry's 12.5% relative error of the
// exact order statistic. Returns 0 on an empty histogram. The walk reads
// live counters without locking; concurrent observers can make the
// result approximate, never inconsistent.
func (h *Histogram) Quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Nearest-rank: the smallest value with at least ⌈q·n⌉ observations
	// at or below it. (Flooring q·(n−1) instead would send q=0.99 at
	// n=2 to the minimum.)
	rank := int64(math.Ceil(q*float64(total))) - 1
	if rank < 0 {
		rank = 0
	}
	var seen int64
	for i := 0; i < histBuckets; i++ {
		c := h.buckets[i].Load()
		if c == 0 {
			continue
		}
		seen += c
		if seen > rank {
			lo, hi := bucketRange(i)
			return lo + (hi-lo)/2
		}
	}
	lo, hi := bucketRange(histBuckets - 1)
	return lo + (hi-lo)/2
}

// Merge folds other's counters into h. Both histograms share one
// geometry, so merging is exact — the property that lets per-shard or
// per-transport histograms aggregate without re-observing.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil {
		return
	}
	for i := range other.buckets {
		if c := other.buckets[i].Load(); c != 0 {
			h.buckets[i].Add(c)
		}
	}
	h.count.Add(other.count.Load())
	h.sum.Add(other.sum.Load())
}

// expoBounds are the upper bounds (nanoseconds) of the Prometheus
// exposition buckets: powers of two from ~1µs to ~17s. The fine internal
// buckets subdivide octaves, so they never straddle an exposition bound
// and the cumulative counts are exact.
var expoBounds = func() []int64 {
	var b []int64
	for e := uint(10); e <= 34; e++ { // 1.024µs .. ~17.2s
		b = append(b, int64(uint64(1)<<e))
	}
	return b
}()

// cumulative returns the exposition-bucket cumulative counts matching
// expoBounds, plus the total count and sum. Used by the Prometheus text
// renderer.
func (h *Histogram) cumulative() (counts []int64, total, sum int64) {
	counts = make([]int64, len(expoBounds))
	fine := make([]int64, histBuckets)
	for i := range fine {
		fine[i] = h.buckets[i].Load()
		total += fine[i]
	}
	var acc int64
	fi := 0
	for bi, bound := range expoBounds {
		for fi < histBuckets {
			_, hi := bucketRange(fi)
			if hi > bound {
				break
			}
			acc += fine[fi]
			fi++
		}
		counts[bi] = acc
	}
	return counts, total, h.sum.Load()
}
