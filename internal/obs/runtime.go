package obs

import (
	"runtime"
	"sync"
	"time"
)

// memReader caches runtime.ReadMemStats so a scrape storm cannot turn
// into a stop-the-world storm: readings within cacheFor of each other
// reuse the previous snapshot.
type memReader struct {
	mu       sync.Mutex
	last     time.Time
	cacheFor time.Duration
	stats    runtime.MemStats
}

func (m *memReader) read() *runtime.MemStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	if now := time.Now(); now.Sub(m.last) >= m.cacheFor {
		runtime.ReadMemStats(&m.stats)
		m.last = now
	}
	return &m.stats
}

// RegisterRuntime registers Go runtime gauges (goroutines, heap bytes and
// objects, total GC pause, GC cycles) on r under the conventional go_*
// names. Memory stats are cached for one second across scrapes.
func RegisterRuntime(r *Registry) {
	mr := &memReader{cacheFor: time.Second}
	r.GaugeFunc("go_goroutines", "Number of live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("go_memstats_heap_alloc_bytes", "Bytes of allocated heap objects.",
		func() float64 { return float64(mr.read().HeapAlloc) })
	r.GaugeFunc("go_memstats_heap_objects", "Number of allocated heap objects.",
		func() float64 { return float64(mr.read().HeapObjects) })
	r.CounterFunc("go_memstats_alloc_bytes_total", "Cumulative bytes allocated for heap objects.",
		func() float64 { return float64(mr.read().TotalAlloc) })
	r.CounterFunc("go_gc_cycles_total", "Completed GC cycles.",
		func() float64 { return float64(mr.read().NumGC) })
	r.CounterFunc("go_gc_pause_seconds_total", "Cumulative stop-the-world GC pause time.",
		func() float64 { return float64(mr.read().PauseTotalNs) / 1e9 })
}
