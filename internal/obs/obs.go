// Package obs is the zero-dependency observability core shared by the
// priste service: an atomic metric registry with Prometheus text
// exposition (registry.go), lock-free log-linear latency histograms
// (histogram.go), runtime gauges (runtime.go), and — here — trace-ID
// generation/propagation plus slog construction helpers.
//
// Trace IDs are opaque uint64s. They enter the service either via the
// TraceHeader HTTP header or the trace field of an RPC frame, ride the
// request context through the worker pool, and come back out in slow-step
// logs and response headers, tying a client-observed latency to the
// server-side stage breakdown for that exact step.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"io"
	"log/slog"
	"strconv"
	"sync/atomic"
)

// TraceHeader is the HTTP request/response header carrying a trace ID in
// the hexadecimal form produced by FormatTrace.
const TraceHeader = "X-Priste-Trace"

// traceSeq makes generated trace IDs unique within the process even if
// the random source misbehaves; seeded once with random bits.
var traceSeq = func() *atomic.Uint64 {
	var s atomic.Uint64
	var b [8]byte
	if _, err := io.ReadFull(rand.Reader, b[:]); err == nil {
		s.Store(binary.LittleEndian.Uint64(b[:]))
	}
	return &s
}()

// NewTraceID returns a fresh non-zero trace ID. Zero is reserved to mean
// "no trace" on the wire.
func NewTraceID() uint64 {
	for {
		if id := traceSeq.Add(0x9e3779b97f4a7c15); id != 0 { // golden-ratio increment
			return id
		}
	}
}

// FormatTrace renders a trace ID as 16 lowercase hex digits.
func FormatTrace(id uint64) string { return fmt.Sprintf("%016x", id) }

// ParseTrace parses a FormatTrace-shaped string; malformed or empty input
// yields 0 ("no trace") rather than an error so untraced callers cost
// nothing.
func ParseTrace(s string) uint64 {
	if s == "" {
		return 0
	}
	id, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0
	}
	return id
}

type ctxKey int

const (
	traceKey ctxKey = iota
	transportKey
)

// WithTrace returns ctx carrying the trace ID (0 stores nothing).
func WithTrace(ctx context.Context, id uint64) context.Context {
	if id == 0 {
		return ctx
	}
	return context.WithValue(ctx, traceKey, id)
}

// TraceFrom returns the trace ID carried by ctx, or 0.
func TraceFrom(ctx context.Context) uint64 {
	if ctx == nil {
		return 0
	}
	id, _ := ctx.Value(traceKey).(uint64)
	return id
}

// WithTransport returns ctx tagged with the ingress transport name
// ("http", "rpc"); stage metrics attribute pool-side work to it.
func WithTransport(ctx context.Context, name string) context.Context {
	return context.WithValue(ctx, transportKey, name)
}

// TransportFrom returns the transport tag carried by ctx, or "".
func TransportFrom(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	name, _ := ctx.Value(transportKey).(string)
	return name
}

// Log formats accepted by NewLogger.
const (
	LogText = "text"
	LogJSON = "json"
)

// NewLogger builds a slog.Logger writing to w in the given format
// ("text" or "json") at the given minimum level. An unknown format falls
// back to text; a nil writer yields a discard logger.
func NewLogger(w io.Writer, format string, level slog.Level) *slog.Logger {
	if w == nil {
		return slog.New(slog.DiscardHandler)
	}
	opts := &slog.HandlerOptions{Level: level}
	if format == LogJSON {
		return slog.New(slog.NewJSONHandler(w, opts))
	}
	return slog.New(slog.NewTextHandler(w, opts))
}

// ParseLevel maps a -log-level flag value onto a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch s {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	var l slog.Level
	if err := l.UnmarshalText([]byte(s)); err != nil {
		return 0, fmt.Errorf("obs: unknown log level %q (want debug, info, warn or error)", s)
	}
	return l, nil
}

// Trace is a slog attr helper: a "trace" field in FormatTrace form, or a
// no-op attr when id is 0.
func Trace(id uint64) slog.Attr {
	if id == 0 {
		return slog.Attr{}
	}
	return slog.String("trace", FormatTrace(id))
}
