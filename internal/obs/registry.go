package obs

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n (n must be >= 0 for the Prometheus
// contract; the type does not enforce it).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down (live sessions, queue
// depth).
type Gauge struct{ v atomic.Int64 }

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Label is one key="value" pair attached to a metric.
type Label struct{ Key, Value string }

// metric is one registered series: exactly one of counter/gauge/hist/fn
// is set.
type metric struct {
	name   string // family name, e.g. "priste_steps_served_total"
	help   string
	typ    string // "counter" | "gauge" | "histogram"
	labels string // rendered `{k="v",...}` or ""

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64
}

// Registry is a process-local metric registry: atomic counters, gauges
// and histograms registered once at startup and rendered on demand in
// the Prometheus text exposition format by Handler. Registration takes a
// lock; reads and metric updates never do.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// renderLabels renders a deterministic `{k="v",...}` suffix.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

func (r *Registry) add(m *metric) {
	r.mu.Lock()
	r.metrics = append(r.metrics, m)
	r.mu.Unlock()
}

// Counter registers and returns a counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	r.add(&metric{name: name, help: help, typ: "counter", labels: renderLabels(labels), counter: c})
	return c
}

// Gauge registers and returns a gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{}
	r.add(&metric{name: name, help: help, typ: "gauge", labels: renderLabels(labels), gauge: g})
	return g
}

// GaugeFunc registers a gauge whose value is computed at scrape time —
// the bridge for state owned elsewhere (runtime stats, cache entry
// counts).
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.add(&metric{name: name, help: help, typ: "gauge", labels: renderLabels(labels), fn: fn})
}

// CounterFunc registers a counter whose value is read at scrape time
// from state owned elsewhere; fn must be monotonically non-decreasing.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.add(&metric{name: name, help: help, typ: "counter", labels: renderLabels(labels), fn: fn})
}

// Histogram registers and returns a histogram series.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	h := &Histogram{}
	r.add(&metric{name: name, help: help, typ: "histogram", labels: renderLabels(labels), hist: h})
	return h
}

// WriteText renders every registered series in the Prometheus text
// exposition format (version 0.0.4), sorted by family name then label
// set, with one HELP/TYPE header per family.
func (r *Registry) WriteText(w *strings.Builder) {
	r.mu.Lock()
	ms := append([]*metric(nil), r.metrics...)
	r.mu.Unlock()
	sort.SliceStable(ms, func(i, j int) bool {
		if ms[i].name != ms[j].name {
			return ms[i].name < ms[j].name
		}
		return ms[i].labels < ms[j].labels
	})
	lastFamily := ""
	for _, m := range ms {
		if m.name != lastFamily {
			if m.help != "" {
				fmt.Fprintf(w, "# HELP %s %s\n", m.name, m.help)
			}
			fmt.Fprintf(w, "# TYPE %s %s\n", m.name, m.typ)
			lastFamily = m.name
		}
		switch {
		case m.counter != nil:
			fmt.Fprintf(w, "%s%s %d\n", m.name, m.labels, m.counter.Load())
		case m.gauge != nil:
			fmt.Fprintf(w, "%s%s %d\n", m.name, m.labels, m.gauge.Load())
		case m.fn != nil:
			fmt.Fprintf(w, "%s%s %g\n", m.name, m.labels, m.fn())
		case m.hist != nil:
			writeHistogram(w, m)
		}
	}
}

// writeHistogram renders one histogram as cumulative _bucket series with
// le bounds in seconds, plus _sum (seconds) and _count.
func writeHistogram(w *strings.Builder, m *metric) {
	counts, total, sum := m.hist.cumulative()
	sep, close := "{", "}"
	if m.labels != "" {
		sep, close = m.labels[:len(m.labels)-1]+",", "}"
	}
	for i, c := range counts {
		fmt.Fprintf(w, "%s_bucket%sle=%q%s %d\n", m.name, sep, formatSeconds(expoBounds[i]), close, c)
	}
	fmt.Fprintf(w, "%s_bucket%sle=\"+Inf\"%s %d\n", m.name, sep, close, total)
	fmt.Fprintf(w, "%s_sum%s %g\n", m.name, m.labels, float64(sum)/1e9)
	fmt.Fprintf(w, "%s_count%s %d\n", m.name, m.labels, total)
}

// formatSeconds renders a nanosecond bound as seconds.
func formatSeconds(ns int64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.9f", float64(ns)/1e9), "0"), ".")
}

// Handler returns the /metricsz scrape endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		var b strings.Builder
		r.WriteText(&b)
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write([]byte(b.String()))
	})
}
