// Package world implements the paper's two-possible-world method (§III):
// the state space is doubled into an EVENT-false world and an EVENT-true
// world, and the transition matrix is rewritten (Eqs. 3–8) so that the
// prior probability of an arbitrary PRESENCE/PATTERN event (Lemma III.1)
// and the joint probability of the event with a sequence of perturbed
// observations (Lemmas III.2, III.3) are computed in time linear in the
// event length — instead of enumerating the exponentially many predicate
// combinations.
//
// All heavy objects are kept at m×m by exploiting the block structure of
// the augmented matrices: each 2m×2m transition is
//
//	Mᵗ = [ M·diag(1−ft)   M·diag(ft) ]
//	     [ M·diag(1−tt)   M·diag(tt) ]
//
// for two destination masks ft ("false world mass entering the true
// world") and tt ("true world mass staying true"):
//
//	outside the window:        ft = 0,        tt = 1      (Eqs. 5, 8)
//	PRESENCE, entering window: ft = region,   tt = 1      (Eq. 4)
//	PATTERN,  entering window: ft = region₀,  tt = 1      (Eq. 6)
//	PATTERN,  inside window:   ft = 0,        tt = regionₜ (Eq. 7)
//
// Timestamps are 0-based; step t is the transition from time t to t+1.
package world

import (
	"fmt"

	"priste/internal/event"
	"priste/internal/markov"
	"priste/internal/mat"
)

// TransitionProvider supplies the (possibly time-varying) transition
// matrix for each step. Matrix(t) maps the distribution at time t to time
// t+1 and must be row-stochastic. The returned matrix must not be mutated
// and must remain valid for the provider's lifetime.
type TransitionProvider interface {
	States() int
	Matrix(t int) *mat.Matrix
}

// Homogeneous adapts a time-homogeneous markov.Chain to a
// TransitionProvider (the paper's default setting).
type Homogeneous struct {
	chain *markov.Chain
}

// NewHomogeneous wraps a Markov chain.
func NewHomogeneous(c *markov.Chain) *Homogeneous { return &Homogeneous{chain: c} }

// States implements TransitionProvider.
func (h *Homogeneous) States() int { return h.chain.States() }

// Matrix implements TransitionProvider.
func (h *Homogeneous) Matrix(int) *mat.Matrix { return h.chain.Matrix() }

// DistinctMatrices implements MatrixLister: one matrix for every step.
func (h *Homogeneous) DistinctMatrices() []*mat.Matrix {
	return []*mat.Matrix{h.chain.Matrix()}
}

// Varying is a TransitionProvider backed by an explicit per-step matrix
// list; step t uses Matrices[min(t, len-1)]. It supports the paper's
// footnote 3 (time-varying Markov models).
type Varying struct {
	Matrices []*mat.Matrix
}

// NewVarying validates the matrices and returns a provider.
func NewVarying(ms []*mat.Matrix) (*Varying, error) {
	if len(ms) == 0 {
		return nil, fmt.Errorf("world: no transition matrices")
	}
	m := ms[0].Rows
	for i, t := range ms {
		if t.Rows != m || t.Cols != m {
			return nil, fmt.Errorf("world: matrix %d is %d×%d, want %d×%d", i, t.Rows, t.Cols, m, m)
		}
		if !t.IsRowStochastic(1e-8) {
			return nil, fmt.Errorf("world: matrix %d is not row-stochastic", i)
		}
	}
	return &Varying{Matrices: ms}, nil
}

// States implements TransitionProvider.
func (v *Varying) States() int { return v.Matrices[0].Rows }

// Matrix implements TransitionProvider.
func (v *Varying) Matrix(t int) *mat.Matrix {
	if t < 0 {
		panic(fmt.Sprintf("world: negative step %d", t))
	}
	if t >= len(v.Matrices) {
		t = len(v.Matrices) - 1
	}
	return v.Matrices[t]
}

// DistinctMatrices implements MatrixLister.
func (v *Varying) DistinctMatrices() []*mat.Matrix { return v.Matrices }

// Model binds an event to a mobility model and precomputes the suffix
// vectors used by both the prior and the streaming quantifier.
type Model struct {
	tp TransitionProvider
	ev event.Event
	m  int

	start, end int

	// vF[t], vT[t] are the two halves of the suffix product
	// (∏_{j=t}^{end-1} Mⱼᵃᵘᵍ)·[0,1]ᵀ for t = 0..end; entry i of vT[t] is
	// Pr(EVENT | world=true at t, u_t = s_i) and vF likewise for the
	// false world.
	vF, vT []mat.Vector

	// mask0 is the initial true-world mask: zero unless the event window
	// includes time 0, in which case it is the region at time 0.
	mask0 mat.Vector

	ones, zeros mat.Vector

	// kernels holds the compiled step kernel of every distinct
	// transition matrix. The map is completed at compile time and never
	// written afterwards, so quantifier reads need no lock.
	opts    ModelOptions
	kernels map[*mat.Matrix]*stepKernel
	kstats  KernelStats

	// kc tallies the adaptive kernel dispatch decisions of every
	// quantifier over this model (atomic: models are shared across
	// sessions).
	kc kernelCounters
}

// NewModel validates the combination and precomputes suffix vectors with
// default (automatic) kernel compilation.
func NewModel(tp TransitionProvider, ev event.Event) (*Model, error) {
	return NewModelWithOptions(tp, ev, ModelOptions{})
}

// NewModelWithOptions is NewModel with explicit compilation options.
func NewModelWithOptions(tp TransitionProvider, ev event.Event, opts ModelOptions) (*Model, error) {
	m := tp.States()
	if ev.States() != m {
		return nil, fmt.Errorf("world: event over %d states, chain has %d", ev.States(), m)
	}
	start, end := ev.Window()
	md := &Model{
		tp: tp, ev: ev, m: m,
		start: start, end: end,
		ones: mat.Ones(m), zeros: mat.NewVector(m),
		opts: opts,
	}
	md.mask0 = md.zeros
	if start == 0 {
		md.mask0 = ev.RegionAt(0).Mask()
	}
	md.compileKernels()
	md.computeSuffix()
	return md, nil
}

// kernelProbeLimit bounds the Matrix(t) probe used to enumerate the step
// matrices of a provider without DistinctMatrices — and therefore the
// kernels (each carrying a precomputed transpose) such a provider can
// pin. A provider synthesizing a fresh matrix per call retains at most
// this many useless kernels and falls back to per-call compilation,
// which defers the transpose until the backward phase needs it.
const kernelProbeLimit = 64

// compileKernels builds the step kernel (CSR form or dense transpose) of
// every distinct transition matrix the provider can return. Providers
// implementing MatrixLister are compiled exhaustively; others are probed
// over the first kernelProbeLimit steps — a matrix first appearing beyond
// the probe window falls back to uncached per-call compilation in
// kernel(), which is correct but allocates.
func (md *Model) compileKernels() {
	var distinct []*mat.Matrix
	if l, ok := md.tp.(MatrixLister); ok {
		distinct = l.DistinctMatrices()
	} else {
		seen := make(map[*mat.Matrix]bool)
		for t := 0; t < kernelProbeLimit; t++ {
			if m := md.tp.Matrix(t); !seen[m] {
				seen[m] = true
				distinct = append(distinct, m)
			}
		}
	}
	md.kernels = make(map[*mat.Matrix]*stepKernel, len(distinct))
	for _, m := range distinct {
		if _, ok := md.kernels[m]; ok {
			continue
		}
		k := compileKernel(m, md.opts, false)
		md.kernels[m] = k
		md.foldKernelStats(k)
	}
}

func (md *Model) foldKernelStats(k *stepKernel) {
	one := KernelStats{Dense: 1, Density: 1}
	if k.sparse() {
		one = KernelStats{Sparse: 1, NNZ: int64(k.csr.NNZ()), Density: k.csr.Density()}
	}
	md.kstats = md.kstats.Add(one)
}

// KernelStats reports the compiled step kernels (how many took the
// sparse vs the dense path, and at what density) plus the adaptive
// dispatch counts accumulated by quantifiers over this model.
func (md *Model) KernelStats() KernelStats {
	ks := md.kstats
	ks.Blocked = md.kc.blocked.Load()
	ks.Banded = md.kc.banded.Load()
	return ks
}

// kernel returns the compiled kernel for the transition from time t to
// t+1. The compile-time map covers every matrix of a MatrixLister
// provider (and the probe window of any other); a miss compiles on the
// fly without caching — correct for exotic providers at the cost of
// allocation, with the transpose deferred until the backward phase.
func (md *Model) kernel(t int) *stepKernel {
	m := md.tp.Matrix(t)
	if k, ok := md.kernels[m]; ok {
		return k
	}
	return compileKernel(m, md.opts, true)
}

// States returns m.
func (md *Model) States() int { return md.m }

// Event returns the bound event.
func (md *Model) Event() event.Event { return md.ev }

// Window returns the event window.
func (md *Model) Window() (start, end int) { return md.start, md.end }

// stepMasks returns the destination masks (ft, tt) for the transition from
// time t to time t+1.
func (md *Model) stepMasks(t int) (ft, tt mat.Vector) {
	dest := t + 1
	if dest < md.start || dest > md.end {
		return md.zeros, md.ones
	}
	if md.ev.Sticky() {
		// PRESENCE: any entry into the region flips to the true world;
		// the true world is absorbing.
		return md.ev.RegionAt(dest).Mask(), md.ones
	}
	// PATTERN: at the window entry the region redirects to the true
	// world; inside the window the true world must keep hitting the
	// region or fall back.
	if dest == md.start {
		return md.ev.RegionAt(dest).Mask(), md.ones
	}
	return md.zeros, md.ev.RegionAt(dest).Mask()
}

// computeSuffix fills vF, vT backwards from the window end.
func (md *Model) computeSuffix() {
	md.vF = make([]mat.Vector, md.end+1)
	md.vT = make([]mat.Vector, md.end+1)
	md.vF[md.end] = mat.NewVector(md.m) // [0]
	md.vT[md.end] = mat.Ones(md.m)      // [1]
	tmp := mat.NewVector(md.m)
	for t := md.end - 1; t >= 0; t-- {
		ft, tt := md.stepMasks(t)
		k := md.kernel(t)
		nf := mat.NewVector(md.m)
		nt := mat.NewVector(md.m)
		// vF[t] = M·((1−ft)∘vF[t+1] + ft∘vT[t+1])
		for i := 0; i < md.m; i++ {
			tmp[i] = (1-ft[i])*md.vF[t+1][i] + ft[i]*md.vT[t+1][i]
		}
		k.mulVecInto(nf, tmp)
		// vT[t] = M·((1−tt)∘vF[t+1] + tt∘vT[t+1])
		for i := 0; i < md.m; i++ {
			tmp[i] = (1-tt[i])*md.vF[t+1][i] + tt[i]*md.vT[t+1][i]
		}
		k.mulVecInto(nt, tmp)
		md.vF[t], md.vT[t] = nf, nt
	}
}

// ATilde returns ã: ãᵢ = Pr(EVENT | u₀ = sᵢ), the per-initial-state event
// probability (Eq. 17 projected to the first m coordinates). The returned
// vector is shared; callers must not mutate it.
func (md *Model) ATilde() mat.Vector {
	a := mat.NewVector(md.m)
	for i := 0; i < md.m; i++ {
		a[i] = (1-md.mask0[i])*md.vF[0][i] + md.mask0[i]*md.vT[0][i]
	}
	return a
}

// Prior computes Pr(EVENT) for a given initial probability (Lemma III.1).
func (md *Model) Prior(pi mat.Vector) (float64, error) {
	if len(pi) != md.m {
		return 0, fmt.Errorf("world: pi length %d want %d", len(pi), md.m)
	}
	if !pi.IsDistribution(1e-8) {
		return 0, fmt.Errorf("world: pi is not a distribution")
	}
	return pi.Dot(md.ATilde()), nil
}
