package world

import (
	"math"
	"math/rand"
	"testing"

	"priste/internal/event"
	"priste/internal/grid"
	"priste/internal/markov"
	"priste/internal/mat"
)

// TestCrossKernelEquivalence is the property-style oracle test for the
// adaptive kernel paths: for random mobility models (dense Gaussian,
// truncated-sparse, walk; homogeneous and time-varying), random event
// shapes whose horizon spans the window end, and emission streams that
// force renormalisation, every compiled mode (adaptive dense, sparse,
// auto) must agree bit-for-bit with the naive oracle on every Check,
// every Current, the LogScale sequence and the rolling fingerprint —
// the property that lets release sequences, certified-cache entries and
// restart replay move freely between kernels.
func TestCrossKernelEquivalence(t *testing.T) {
	type chainCase struct {
		name  string
		build func(g *grid.Grid) (*markov.Chain, error)
	}
	chains := []chainCase{
		{"gauss", func(g *grid.Grid) (*markov.Chain, error) { return markov.GaussianChain(g, 1) }},
		{"trunc", func(g *grid.Grid) (*markov.Chain, error) {
			c, err := markov.GaussianChain(g, 1)
			if err != nil {
				return nil, err
			}
			return c.Sparsified(1e-3)
		}},
		{"walk", func(g *grid.Grid) (*markov.Chain, error) { return markov.LazyRandomWalk(g, 0.4) }},
	}
	rng := rand.New(rand.NewSource(42))
	for _, cc := range chains {
		for _, varying := range []bool{false, true} {
			name := cc.name
			if varying {
				name += "/varying"
			}
			t.Run(name, func(t *testing.T) {
				side := 5 + rng.Intn(3) // m in 25..49
				g := grid.MustNew(side, side, 1)
				m := g.States()
				chain, err := cc.build(g)
				if err != nil {
					t.Fatal(err)
				}
				var tp TransitionProvider = NewHomogeneous(chain)
				if varying {
					// Mix the chain with a second structure so kernels
					// alternate between steps (CSR and dense under auto).
					walk, err := markov.LazyRandomWalk(g, 0.7)
					if err != nil {
						t.Fatal(err)
					}
					tp, err = NewVarying([]*mat.Matrix{
						chain.Matrix(), walk.Matrix(), chain.Matrix(), walk.Matrix(),
					})
					if err != nil {
						t.Fatal(err)
					}
				}
				start := 1 + rng.Intn(2)
				end := start + 1 + rng.Intn(3)
				region, err := grid.RegionRange(m, 0, m/3)
				if err != nil {
					t.Fatal(err)
				}
				ev := event.MustNewPresence(region, start, end)
				horizon := end + 3 + rng.Intn(4) // always spans the window end

				modes := []KernelMode{KernelOracle, KernelDense, KernelSparse, KernelAuto}
				quants := make([]*Quantifier, len(modes))
				for i, mode := range modes {
					md, err := NewModelWithOptions(tp, ev, ModelOptions{Kernel: mode})
					if err != nil {
						t.Fatal(err)
					}
					quants[i] = NewQuantifier(md)
				}
				for step := 0; step < horizon; step++ {
					col := randomEmissionColumn(rng, m)
					if step == 2 {
						// Crush the magnitude to force lazy renormalisation
						// at the same timestamp on every path.
						col.Scale(1e-130)
					}
					ref, err := quants[0].Check(col)
					if err != nil {
						t.Fatal(err)
					}
					refB := ref.BTilde.Clone()
					refC := ref.CTilde.Clone()
					for i := 1; i < len(quants); i++ {
						chk, err := quants[i].Check(col)
						if err != nil {
							t.Fatal(err)
						}
						sameBits(t, modes[i].String()+" check b", chk.BTilde, refB)
						sameBits(t, modes[i].String()+" check c", chk.CTilde, refC)
					}
					for _, q := range quants {
						if err := q.CommitTagged(col, uint64(step)+1, step%m); err != nil {
							t.Fatal(err)
						}
					}
					for i := 1; i < len(quants); i++ {
						if quants[i].LogScale() != quants[0].LogScale() {
							t.Fatalf("step %d mode %v: logScale %v vs oracle %v",
								step, modes[i], quants[i].LogScale(), quants[0].LogScale())
						}
						if quants[i].HistoryFingerprint() != quants[0].HistoryFingerprint() {
							t.Fatalf("step %d mode %v: fingerprint diverged", step, modes[i])
						}
						cur, refCur := quants[i].Current(), quants[0].Current()
						sameBits(t, modes[i].String()+" current b", cur.BTilde, refCur.BTilde)
						sameBits(t, modes[i].String()+" current c", cur.CTilde, refCur.CTilde)
					}
				}
			})
		}
	}
}

// TestShadowCheckAccuracy drives a shadow-enabled quantifier through a
// full horizon and verifies, at every step and for every candidate,
// that the max-normalised shadow b̃/c̃ agree with the exact ones within
// the certified ShadowEta bound (the shadow result carries an unknown
// common scale, so the comparison is on shape).
func TestShadowCheckAccuracy(t *testing.T) {
	g := grid.MustNew(6, 6, 1)
	m := g.States()
	chain, err := markov.GaussianChain(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	region, err := grid.RegionRange(m, 0, 11)
	if err != nil {
		t.Fatal(err)
	}
	ev := event.MustNewPresence(region, 2, 5)
	md, err := NewModelWithOptions(NewHomogeneous(chain), ev, ModelOptions{Kernel: KernelDense, Shadow: true})
	if err != nil {
		t.Fatal(err)
	}
	q := NewQuantifier(md)
	rng := rand.New(rand.NewSource(9))
	shadowRuns := 0
	for step := 0; step < 10; step++ {
		commitCol := randomEmissionColumn(rng, m)
		if step == 3 {
			commitCol.Scale(1e-120) // cross a renormalisation
		}
		for cand := 0; cand < 3; cand++ {
			col := randomEmissionColumn(rng, m)
			shadow, ok := q.ShadowCheck(col)
			if step == 0 {
				if ok {
					t.Fatal("ShadowCheck must defer to the exact path at t=0")
				}
				continue
			}
			if !ok {
				t.Fatalf("step %d: shadow path unavailable", step)
			}
			shB := shadow.BTilde.Clone()
			shC := shadow.CTilde.Clone()
			exact := q.CheckTrusted(col)
			assertShadowShape(t, "b", shB, exact.BTilde)
			assertShadowShape(t, "c", shC, exact.CTilde)
			shadowRuns++
		}
		if err := q.Commit(commitCol); err != nil {
			t.Fatal(err)
		}
	}
	if shadowRuns == 0 {
		t.Fatal("shadow path never ran")
	}
}

// assertShadowShape checks the certified property the margins build on:
// shadow ≈ scale·exact for a single positive scale, with per-component
// absolute error within ShadowEta relative to the vector's maximum
// (2× slack for the scale estimate itself being a shadow quantity).
func assertShadowShape(t *testing.T, label string, shadow, exact mat.Vector) {
	t.Helper()
	sMax, eMax := shadow.AbsMax(), exact.AbsMax()
	if eMax == 0 {
		return
	}
	if sMax == 0 {
		t.Fatalf("%s: shadow collapsed to zero", label)
	}
	scale := sMax / eMax
	for i := range exact {
		want := exact[i] * scale
		if diff := math.Abs(shadow[i] - want); diff > 2*ShadowEta*sMax {
			t.Fatalf("%s[%d]: shadow %v vs scaled exact %v (err %g > %g)",
				label, i, shadow[i], want, diff/sMax, 2*ShadowEta)
		}
	}
}
