package world

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"priste/internal/event"
	"priste/internal/grid"
	"priste/internal/mat"
	"priste/internal/qp"
)

// These tests close the loop between the three layers of the release
// check: the quantifier's (ã, b̃, c̃) vectors, the QP solver's verdicts
// over all priors, and the realised privacy loss at specific priors.

// randomEmissionColumn draws a random positive likelihood column.
func randomEmissionColumn(rng *rand.Rand, m int) mat.Vector {
	c := mat.NewVector(m)
	for i := range c {
		c[i] = 0.05 + rng.Float64()
	}
	return c
}

// TestQPVerdictMatchesRealizedLoss: when CheckRelease certifies a
// candidate, no sampled prior may realise a loss beyond ε; when it reports
// a violation, the violating prior it returns must realise a loss beyond ε.
func TestQPVerdictMatchesRealizedLoss(t *testing.T) {
	c := paperChain()
	tp := NewHomogeneous(c)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ev := randomEvent(rng)
		md, err := NewModel(tp, ev)
		if err != nil {
			return false
		}
		q := NewQuantifier(md)
		// Commit a random prefix.
		for k := rng.Intn(4); k > 0; k-- {
			if err := q.Commit(randomEmissionColumn(rng, 3)); err != nil {
				return false
			}
		}
		cand := randomEmissionColumn(rng, 3)
		chk, err := q.Check(cand)
		if err != nil {
			return false
		}
		chk.Epsilon = 0.2 + rng.Float64()
		dec, err := qp.CheckRelease(chk, qp.ReleaseOptions{})
		if err != nil {
			return false
		}
		switch {
		case dec.OK:
			// Probe random priors: none may exceed ε.
			for trial := 0; trial < 30; trial++ {
				pi := mat.NewVector(3)
				for i := range pi {
					pi[i] = rng.ExpFloat64()
				}
				pi.Normalize()
				loss, err := qp.FixedPiLoss(chk, pi)
				if err != nil {
					continue // degenerate prior for this event
				}
				if loss > chk.Epsilon+1e-7 {
					return false
				}
			}
			return true
		case dec.Eq15.Verdict == qp.Violated || dec.Eq16.Verdict == qp.Violated:
			// The violating certificate must realise a loss beyond ε
			// (unless the prior is degenerate there, which FixedPiLoss
			// reports as an error).
			var bad mat.Vector
			if dec.Eq15.Verdict == qp.Violated {
				bad = dec.Eq15.BestPi
			} else {
				bad = dec.Eq16.BestPi
			}
			loss, err := qp.FixedPiLoss(chk, bad)
			if err != nil {
				return true // degenerate certificate: cannot compare
			}
			return loss > chk.Epsilon-1e-7
		default:
			return true // Unknown: nothing to verify
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestCheckVectorsMatchBatchComputation: the streaming Check vectors at an
// arbitrary time must reproduce the batch JointAndMarginal values for the
// full sequence, for every probed prior.
func TestCheckVectorsMatchBatchComputation(t *testing.T) {
	c := paperChain()
	tp := NewHomogeneous(c)
	ev := event.MustNewPresence(grid.MustRegionOf(3, 0, 1), 2, 4)
	md := mustModel(t, tp, ev)
	rng := rand.New(rand.NewSource(99))
	cols := make([]mat.Vector, 7)
	for i := range cols {
		cols[i] = randomEmissionColumn(rng, 3)
	}
	q := NewQuantifier(md)
	for i := 0; i < len(cols)-1; i++ {
		if err := q.Commit(cols[i]); err != nil {
			t.Fatal(err)
		}
	}
	chk, err := q.Check(cols[len(cols)-1])
	if err != nil {
		t.Fatal(err)
	}
	scale := math.Exp(q.LogScale())
	for trial := 0; trial < 20; trial++ {
		pi := mat.NewVector(3)
		for i := range pi {
			pi[i] = rng.ExpFloat64()
		}
		pi.Normalize()
		joint, marginal, err := JointAndMarginal(md, pi, cols)
		if err != nil {
			t.Fatal(err)
		}
		gotJoint := pi.Dot(chk.BTilde) * scale
		gotMarg := pi.Dot(chk.CTilde) * scale
		if math.Abs(gotJoint-joint) > 1e-10*math.Max(1, joint) {
			t.Fatalf("joint %v vs batch %v", gotJoint, joint)
		}
		if math.Abs(gotMarg-marginal) > 1e-10*math.Max(1, marginal) {
			t.Fatalf("marginal %v vs batch %v", gotMarg, marginal)
		}
	}
}

// TestEventPosteriorBounds: posteriors are probabilities and converge to
// certainty under perfectly revealing observations.
func TestEventPosteriorBounds(t *testing.T) {
	c := paperChain()
	tp := NewHomogeneous(c)
	ev := event.MustNewPresence(grid.MustRegionOf(3, 0), 1, 2)
	md := mustModel(t, tp, ev)
	pi := mat.Vector{1.0 / 3, 1.0 / 3, 1.0 / 3}
	// Identity-like emissions pointing at state 0 during the window.
	sharp := func(s int) mat.Vector {
		col := mat.Vector{0.001, 0.001, 0.001}
		col[s] = 0.998
		return col
	}
	post, err := EventPosterior(md, pi, []mat.Vector{sharp(1), sharp(0), sharp(2)})
	if err != nil {
		t.Fatal(err)
	}
	for t2, p := range post {
		if p < 0 || p > 1 {
			t.Fatalf("posterior[%d] = %v outside [0,1]", t2, p)
		}
	}
	if post[1] < 0.99 {
		t.Fatalf("observing the region at t=1 should pin the event: %v", post[1])
	}
	if _, err := EventPosterior(md, mat.Vector{1, 0}, nil); err == nil {
		t.Error("length mismatch accepted")
	}
}
