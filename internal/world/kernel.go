package world

import "priste/internal/mat"

// KernelMode selects how a Model compiles its per-timestamp transition
// matrices into step kernels.
type KernelMode int

const (
	// KernelAuto compiles a matrix to CSR when its density is at or
	// below the sparse threshold and keeps it dense otherwise. The two
	// paths are bit-for-bit equivalent (see mat.CSR), so the choice is
	// purely a performance decision.
	KernelAuto KernelMode = iota
	// KernelDense forces the dense kernels (baseline / regression mode).
	KernelDense
	// KernelSparse forces CSR regardless of density (test mode; a dense
	// matrix through CSR is slower, not wrong).
	KernelSparse
)

// String implements fmt.Stringer.
func (m KernelMode) String() string {
	switch m {
	case KernelAuto:
		return "auto"
	case KernelDense:
		return "dense"
	case KernelSparse:
		return "sparse"
	default:
		return "KernelMode(?)"
	}
}

// DefaultSparseThreshold is the density at or below which KernelAuto
// compiles a transition matrix to CSR. CSR multiply-adds carry an index
// load each, so the break-even sits near 0.4–0.5 density; 0.25 leaves
// margin. Local mobility models (random walks, trained chains, truncated
// Gaussian kernels) sit far below it; an untruncated Gaussian chain is
// structurally dense and stays on the dense path.
const DefaultSparseThreshold = 0.25

// ModelOptions tunes model compilation.
type ModelOptions struct {
	// Kernel selects the transition-kernel compilation mode.
	Kernel KernelMode
	// SparseThreshold overrides DefaultSparseThreshold for KernelAuto;
	// zero or negative uses the default.
	SparseThreshold float64
}

func (o ModelOptions) threshold() float64 {
	if o.SparseThreshold > 0 {
		return o.SparseThreshold
	}
	return DefaultSparseThreshold
}

// MatrixLister is an optional TransitionProvider extension enumerating
// every distinct matrix the provider can return. Model compilation uses
// it to build the complete step-kernel set (CSR forms and transposes)
// up front, keeping the quantifier hot path lock- and allocation-free.
// Both built-in providers implement it; a provider that does not is
// probed over an initial window and falls back to per-call compilation
// beyond it.
type MatrixLister interface {
	DistinctMatrices() []*mat.Matrix
}

// stepKernel is one compiled transition matrix: the original dense form
// plus either its CSR form and CSR transpose (sparse path) or its dense
// transpose (dense path). For kernels retained in a Model's map the
// transpose is precomputed at compile time — once per Model, replacing
// the per-quantifier transpose cache that grew with the horizon under
// time-inhomogeneous chains. Kernels compiled on a cache miss (exotic
// providers only; call-private, never shared) defer it until the
// backward phase actually needs it.
type stepKernel struct {
	dense  *mat.Matrix
	denseT *mat.Matrix // non-nil iff csr == nil (once materialised)
	csr    *mat.CSR    // non-nil on the sparse path
	csrT   *mat.CSR
}

// compileKernel builds the kernel for one transition matrix. lazyT
// defers the transpose; pass false for kernels that will be shared
// (the transpose write in transMulMatInto is only safe call-private).
func compileKernel(m *mat.Matrix, opts ModelOptions, lazyT bool) *stepKernel {
	k := &stepKernel{dense: m}
	switch opts.Kernel {
	case KernelDense:
	case KernelSparse:
		k.csr = mat.CSRFromDense(m)
	default:
		if c := mat.CSRFromDense(m); c.Density() <= opts.threshold() {
			k.csr = c
		}
	}
	if !lazyT {
		k.materialiseTranspose()
	}
	return k
}

// materialiseTranspose fills the path-appropriate transpose.
func (k *stepKernel) materialiseTranspose() {
	if k.csr != nil {
		k.csrT = k.csr.Transpose()
	} else {
		k.denseT = k.dense.Transpose()
	}
}

// sparse reports whether the kernel runs on the CSR path.
func (k *stepKernel) sparse() bool { return k.csr != nil }

// mulVecInto stores M·x into dst. dst must not alias x.
func (k *stepKernel) mulVecInto(dst, x mat.Vector) {
	if k.csr != nil {
		k.csr.MulVecInto(dst, x)
		return
	}
	k.dense.MulVecInto(dst, x)
}

// matMulInto stores a·M into dst (the forward Commit update X = A·M).
// dst must not alias a.
func (k *stepKernel) matMulInto(dst, a *mat.Matrix) {
	if k.csr != nil {
		mat.MulCSRInto(dst, a, k.csr)
		return
	}
	mat.MulInto(dst, a, k.dense)
}

// transMulMatInto stores Mᵀ·b into dst (the backward Commit update).
// dst must not alias b.
func (k *stepKernel) transMulMatInto(dst, b *mat.Matrix) {
	if k.csrT == nil && k.denseT == nil {
		// Lazily-compiled (call-private) kernel: first backward use.
		k.materialiseTranspose()
	}
	if k.csrT != nil {
		k.csrT.MulMatInto(dst, b)
		return
	}
	mat.MulInto(dst, k.denseT, b)
}

// KernelStats summarises a model's (or plan's) compiled step kernels.
type KernelStats struct {
	// Sparse and Dense count compiled kernels by path.
	Sparse int `json:"sparse"`
	Dense  int `json:"dense"`
	// NNZ is the total nonzeros retained across sparse kernels.
	NNZ int64 `json:"nnz"`
	// Density is the mean per-kernel density; a dense-path kernel
	// counts as 1 regardless of its zero pattern.
	Density float64 `json:"density"`
}

// Add merges o into s (entries-weighted density) and returns the result.
func (s KernelStats) Add(o KernelStats) KernelStats {
	se := s.entries()
	oe := o.entries()
	s.Sparse += o.Sparse
	s.Dense += o.Dense
	s.NNZ += o.NNZ
	if se+oe > 0 {
		s.Density = (s.Density*se + o.Density*oe) / (se + oe)
	}
	return s
}

func (s KernelStats) entries() float64 {
	return float64(s.Sparse + s.Dense)
}
