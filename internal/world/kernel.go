package world

import (
	"sync/atomic"

	"priste/internal/mat"
)

// KernelMode selects how a Model compiles its per-timestamp transition
// matrices into step kernels.
type KernelMode int

const (
	// KernelAuto compiles a matrix to CSR when its density is at or
	// below the sparse threshold and keeps it dense otherwise. The two
	// paths are bit-for-bit equivalent (see mat.CSR), so the choice is
	// purely a performance decision.
	KernelAuto KernelMode = iota
	// KernelDense forces the dense kernels. The dense path dispatches
	// each operator product adaptively — banded while the tracked
	// operator bandwidth beats dense flops, otherwise the skip-based
	// naive loop below ~50% operator density and the blocked
	// register-tiled kernel above it. All three produce bit-identical
	// results (see mat.MulABtInto, mat.MulBandInto).
	KernelDense
	// KernelSparse forces CSR regardless of density (test mode; a dense
	// matrix through CSR is slower, not wrong).
	KernelSparse
	// KernelOracle forces the naive dense reference kernels everywhere:
	// no CSR, no blocking, no banded dispatch. It is the bit-identical
	// oracle the cross-kernel equivalence tests and BENCH kernel
	// comparisons measure the adaptive paths against.
	KernelOracle
)

// String implements fmt.Stringer.
func (m KernelMode) String() string {
	switch m {
	case KernelAuto:
		return "auto"
	case KernelDense:
		return "dense"
	case KernelSparse:
		return "sparse"
	case KernelOracle:
		return "oracle"
	default:
		return "KernelMode(?)"
	}
}

// DefaultSparseThreshold is the density at or below which KernelAuto
// compiles a transition matrix to CSR. CSR multiply-adds carry an index
// load each, so the break-even sits near 0.4–0.5 density; 0.25 leaves
// margin. Local mobility models (random walks, trained chains, truncated
// Gaussian kernels) sit far below it; an untruncated Gaussian chain is
// structurally dense and stays on the dense path.
const DefaultSparseThreshold = 0.25

// ModelOptions tunes model compilation.
type ModelOptions struct {
	// Kernel selects the transition-kernel compilation mode.
	Kernel KernelMode
	// SparseThreshold overrides DefaultSparseThreshold for KernelAuto;
	// zero or negative uses the default.
	SparseThreshold float64
	// Shadow additionally compiles float32 copies of the step kernels,
	// enabling the quantifier's float32 shadow check path (ShadowCheck):
	// candidate checks run against float32 operators and are accepted or
	// rejected directly when the qp decision margin exceeds the
	// certified error bound, with exact float64 recompute on ambiguous
	// margins. Commit always runs exact float64.
	Shadow bool
}

func (o ModelOptions) threshold() float64 {
	if o.SparseThreshold > 0 {
		return o.SparseThreshold
	}
	return DefaultSparseThreshold
}

// MatrixLister is an optional TransitionProvider extension enumerating
// every distinct matrix the provider can return. Model compilation uses
// it to build the complete step-kernel set (CSR forms and transposes)
// up front, keeping the quantifier hot path lock- and allocation-free.
// Both built-in providers implement it; a provider that does not is
// probed over an initial window and falls back to per-call compilation
// beyond it.
type MatrixLister interface {
	DistinctMatrices() []*mat.Matrix
}

// stepKernel is one compiled transition matrix: the original dense form
// plus either its CSR form and CSR transpose (sparse path) or its dense
// transpose (dense path). For kernels retained in a Model's map the
// transpose is precomputed at compile time — once per Model, replacing
// the per-quantifier transpose cache that grew with the horizon under
// time-inhomogeneous chains. Kernels compiled on a cache miss (exotic
// providers only; call-private, never shared) defer it until the
// backward phase actually needs it.
type stepKernel struct {
	dense  *mat.Matrix
	denseT *mat.Matrix // non-nil iff csr == nil (once materialised)
	csr    *mat.CSR    // non-nil on the sparse path
	csrT   *mat.CSR

	// bw is the bandwidth of the transition matrix (largest |i−j| over
	// nonzeros): the amount each committed step widens the forward
	// operators' band. Computed for every mode; only the adaptive dense
	// dispatch consumes it.
	bw     int
	oracle bool
	// tNNZ is the nonzero count of denseT, fixed at materialisation —
	// the backward dispatch's density input, scanned once per kernel
	// instead of once per commit.
	tNNZ int

	// float32 shadow forms (ModelOptions.Shadow only).
	m32 *mat.Matrix32
	c32 *mat.CSR32
}

// compileKernel builds the kernel for one transition matrix. lazyT
// defers the transpose; pass false for kernels that will be shared
// (the transpose write in backwardMul is only safe call-private).
func compileKernel(m *mat.Matrix, opts ModelOptions, lazyT bool) *stepKernel {
	k := &stepKernel{dense: m, bw: mat.Bandwidth(m)}
	switch opts.Kernel {
	case KernelDense:
	case KernelOracle:
		k.oracle = true
	case KernelSparse:
		k.csr = mat.CSRFromDense(m)
	default:
		if c := mat.CSRFromDense(m); c.Density() <= opts.threshold() {
			k.csr = c
		}
	}
	if opts.Shadow {
		if k.csr != nil {
			k.c32 = k.csr.Shadow32()
		} else {
			// Transition entries live in [0,1]: no rescale needed.
			k.m32 = mat.Shadow32Scaled(m, 1)
		}
	}
	if !lazyT {
		k.materialiseTranspose()
	}
	return k
}

// materialiseTranspose fills the path-appropriate transpose.
func (k *stepKernel) materialiseTranspose() {
	if k.csr != nil {
		k.csrT = k.csr.Transpose()
	} else {
		k.denseT = k.dense.Transpose()
		k.tNNZ = k.denseT.NNZ()
	}
}

// sparse reports whether the kernel runs on the CSR path.
func (k *stepKernel) sparse() bool { return k.csr != nil }

// kernelCounters tallies adaptive dispatch decisions. A Model is shared
// across sessions, so the counters are atomic.
type kernelCounters struct {
	blocked atomic.Int64
	banded  atomic.Int64
}

// bandedWins reports whether a banded product over bands (aBand, bBand)
// beats the blocked dense kernel on an m×m product. The banded scatter
// costs ~2× per multiply-add what the register-blocked kernel does, so
// the band wins while its flop count is under half of m³. Bands at or
// beyond m−1 are full rows — banded degenerates to a slower naive loop.
func bandedWins(m, aBand, bBand int) bool {
	if aBand >= m-1 && bBand >= m-1 {
		return false
	}
	ka := min(aBand, m-1)
	kb := min(bBand, m-1)
	flops := int64(m) * int64(2*ka+1) * int64(2*kb+1)
	return 2*flops < int64(m)*int64(m)*int64(m)
}

// mulVecInto stores M·x into dst. dst must not alias x. The dense
// non-oracle path restricts the row dots to M's band (bit-identical:
// the skipped entries are exact zeros).
func (k *stepKernel) mulVecInto(dst, x mat.Vector) {
	if k.csr != nil {
		k.csr.MulVecInto(dst, x)
		return
	}
	if !k.oracle && 2*k.bw+1 < k.dense.Rows {
		mat.MulVecBandInto(dst, k.dense, x, k.bw)
		return
	}
	k.dense.MulVecInto(dst, x)
}

// mulVec32Into stores M·x into dst through the float32 shadow kernel
// with float64 accumulation, reporting whether a shadow form exists.
func (k *stepKernel) mulVec32Into(dst, x mat.Vector) bool {
	if k.c32 != nil {
		k.c32.MulVecInto(dst, x)
		return true
	}
	if k.m32 != nil {
		k.m32.MulVecInto(dst, x)
		return true
	}
	return false
}

// forwardMul stores a·M into dst (the forward Commit update X = A·M),
// where a is a forward operator with tracked bandwidth aBand (pass
// ≥ m−1 when unknown/full). dst must not alias a. The dense non-oracle
// path picks, in order: the banded kernel while the band beats dense
// flops, the skip-based naive loop while a is under ~50% dense (a
// nonzero scan costs ~0.5% of a blocked product), and the blocked
// register-tiled kernel otherwise. All paths are bit-identical.
func (k *stepKernel) forwardMul(dst, a *mat.Matrix, aBand int, kc *kernelCounters) {
	if k.csr != nil {
		mat.MulCSRInto(dst, a, k.csr)
		return
	}
	if k.oracle {
		mat.MulInto(dst, a, k.dense)
		return
	}
	m := a.Rows
	if bandedWins(m, aBand, k.bw) {
		mat.MulBandInto(dst, a, k.dense, min(aBand, m-1), k.bw)
		kc.banded.Add(1)
		return
	}
	if 2*a.NNZ() < m*m {
		mat.MulInto(dst, a, k.dense)
		return
	}
	if k.denseT == nil {
		k.materialiseTranspose()
	}
	mat.MulABtInto(dst, a, k.denseT)
	kc.blocked.Add(1)
}

// backwardMul stores Mᵀ·b into dst (the backward Commit update), where
// b is the backward accumulator with tracked bandwidth bBand. dst must
// not alias b. tScratch is caller scratch (≥ b's shape) the blocked
// path may overwrite with bᵀ; the blocked kernel wants the right
// operand transposed, and transposing b costs ~2% of the product.
func (k *stepKernel) backwardMul(dst, b *mat.Matrix, bBand int, tScratch *mat.Matrix, kc *kernelCounters) {
	if k.csrT == nil && k.denseT == nil {
		// Lazily-compiled (call-private) kernel: first backward use.
		k.materialiseTranspose()
	}
	if k.csrT != nil {
		k.csrT.MulMatInto(dst, b)
		return
	}
	if k.oracle {
		mat.MulInto(dst, k.denseT, b)
		return
	}
	m := b.Rows
	if bandedWins(m, k.bw, bBand) {
		mat.MulBandInto(dst, k.denseT, b, k.bw, min(bBand, m-1))
		kc.banded.Add(1)
		return
	}
	if 2*k.tNNZ < m*m {
		mat.MulInto(dst, k.denseT, b)
		return
	}
	mat.TransposeInto(tScratch, b)
	mat.MulABtInto(dst, k.denseT, tScratch)
	kc.blocked.Add(1)
}

// KernelStats summarises a model's (or plan's) compiled step kernels and
// the adaptive dispatch decisions taken so far.
type KernelStats struct {
	// Sparse and Dense count compiled kernels by path.
	Sparse int `json:"sparse"`
	Dense  int `json:"dense"`
	// NNZ is the total nonzeros retained across sparse kernels.
	NNZ int64 `json:"nnz"`
	// Density is the mean per-kernel density; a dense-path kernel
	// counts as 1 regardless of its zero pattern.
	Density float64 `json:"density"`
	// Blocked and Banded count operator products executed through the
	// blocked register-tiled and banded kernels (the adaptive dense
	// dispatch; naive-loop products are not counted).
	Blocked int64 `json:"blocked"`
	Banded  int64 `json:"banded"`
}

// Add merges o into s (entries-weighted density) and returns the result.
func (s KernelStats) Add(o KernelStats) KernelStats {
	se := s.entries()
	oe := o.entries()
	s.Sparse += o.Sparse
	s.Dense += o.Dense
	s.NNZ += o.NNZ
	s.Blocked += o.Blocked
	s.Banded += o.Banded
	if se+oe > 0 {
		s.Density = (s.Density*se + o.Density*oe) / (se + oe)
	}
	return s
}

func (s KernelStats) entries() float64 {
	return float64(s.Sparse + s.Dense)
}
