package world

import (
	"fmt"
	"math"

	"priste/internal/mat"
	"priste/internal/qp"
)

// Quantifier is the streaming privacy-loss quantifier of Algorithm 2: it
// maintains the forward operator A = [A_F | A_T] ∈ R^{m×2m} mapping an
// unknown initial probability π to the augmented forward vector, and —
// after the event window — the backward accumulator B (a single m×m block,
// because the augmented after-event factors are block-diagonal with equal
// blocks).
//
// For each timestamp the caller first calls Check with a candidate
// emission column (the quantities ã, b̃, c̃ of Theorem IV.1 for the
// candidate observation) and, once a candidate is accepted, Commit with
// the released observation's emission column.
//
// To avoid underflow over long horizons the internal operators are
// renormalised after every commit; b̃ and c̃ therefore carry a shared
// unknown scale exp(LogScale), which cancels in the Theorem IV.1
// conditions and is exposed for callers needing absolute probabilities.
type Quantifier struct {
	md *Model

	af, at *mat.Matrix // committed forward blocks, m×m each
	b1     *mat.Matrix // backward block, valid once t > end
	t      int         // next timestamp to be observed (0-based)

	logScale float64

	// fp is the rolling FNV-1a fingerprint of the committed release tags
	// (see CommitTagged); it identifies the committed-column history for
	// the certified-release cache.
	fp uint64

	atilde mat.Vector

	// scratch
	tmp1, tmp2, tmp3 mat.Vector
	mx, my           *mat.Matrix
	trCache          map[*mat.Matrix]*mat.Matrix
}

// NewQuantifier returns a fresh quantifier at time 0.
func NewQuantifier(md *Model) *Quantifier {
	m := md.m
	return &Quantifier{
		md:      md,
		fp:      fpOffset,
		af:      mat.NewMatrix(m, m),
		at:      mat.NewMatrix(m, m),
		b1:      mat.Identity(m),
		atilde:  md.ATilde(),
		tmp1:    mat.NewVector(m),
		tmp2:    mat.NewVector(m),
		tmp3:    mat.NewVector(m),
		mx:      mat.NewMatrix(m, m),
		my:      mat.NewMatrix(m, m),
		trCache: make(map[*mat.Matrix]*mat.Matrix, 2),
	}
}

// T returns the next timestamp to be observed.
func (q *Quantifier) T() int { return q.t }

// LogScale returns the accumulated log of the normalisation factors; the
// true joint probabilities are the reported b̃/c̃ times exp(LogScale).
func (q *Quantifier) LogScale() float64 { return q.logScale }

// ATilde returns ã (shared storage; do not mutate).
func (q *Quantifier) ATilde() mat.Vector { return q.atilde }

// Check computes the Theorem IV.1 vectors for observing a candidate with
// emission column emis (emis[i] = Pr(o | u_t = s_i)) at the quantifier's
// current timestamp, without committing it.
func (q *Quantifier) Check(emis mat.Vector) (qp.ReleaseCheck, error) {
	if err := q.validateEmission(emis); err != nil {
		return qp.ReleaseCheck{}, err
	}
	m := q.md.m
	b := mat.NewVector(m)
	c := mat.NewVector(m)
	switch {
	case q.t == 0:
		// b̃ᵢ = emisᵢ·ãᵢ, c̃ᵢ = emisᵢ.
		for i := 0; i < m; i++ {
			b[i] = emis[i] * q.atilde[i]
			c[i] = emis[i]
		}
	case q.t <= q.md.end:
		ft, tt := q.md.stepMasks(q.t - 1)
		tr := q.md.tp.Matrix(q.t - 1)
		vF, vT := q.md.vF[q.t], q.md.vT[q.t]
		// uF = M·((1−ft)∘(emis∘vF) + ft∘(emis∘vT))
		for i := 0; i < m; i++ {
			q.tmp1[i] = emis[i] * ((1-ft[i])*vF[i] + ft[i]*vT[i])
		}
		uF := tr.MulVec(q.tmp1)
		for i := 0; i < m; i++ {
			q.tmp1[i] = emis[i] * ((1-tt[i])*vF[i] + tt[i]*vT[i])
		}
		uT := tr.MulVec(q.tmp1)
		q.af.MulVecInto(b, uF)
		q.at.MulVecInto(q.tmp2, uT)
		b.AddInto(b, q.tmp2)
		// c̃ = (A_F + A_T)·(M·emis)
		cu := tr.MulVec(emis)
		q.af.MulVecInto(c, cu)
		q.at.MulVecInto(q.tmp2, cu)
		c.AddInto(c, q.tmp2)
	default: // q.t > end
		tr := q.md.tp.Matrix(q.t - 1)
		me := tr.MulVec(emis)
		z := q.b1.VecMul(me) // row: (M·emis)ᵀ·B₁
		q.at.MulVecInto(b, z)
		q.af.MulVecInto(c, z)
		c.AddInto(c, b)
	}
	return qp.ReleaseCheck{ATilde: q.atilde, BTilde: b, CTilde: c}, nil
}

// Current returns the Theorem IV.1 vectors for the already-committed
// observation prefix (no candidate). Before any commit, b̃ = ã and c̃ = 1.
func (q *Quantifier) Current() qp.ReleaseCheck {
	m := q.md.m
	b := mat.NewVector(m)
	c := mat.NewVector(m)
	switch {
	case q.t == 0:
		copy(b, q.atilde)
		for i := range c {
			c[i] = 1
		}
	case q.t-1 <= q.md.end:
		vF, vT := q.md.vF[q.t-1], q.md.vT[q.t-1]
		q.af.MulVecInto(b, vF)
		q.at.MulVecInto(q.tmp2, vT)
		b.AddInto(b, q.tmp2)
		q.af.MulVecInto(c, q.md.ones)
		q.at.MulVecInto(q.tmp2, q.md.ones)
		c.AddInto(c, q.tmp2)
	default:
		z := q.b1.VecMul(q.md.ones)
		q.at.MulVecInto(b, z)
		q.af.MulVecInto(c, z)
		c.AddInto(c, b)
	}
	return qp.ReleaseCheck{ATilde: q.atilde, BTilde: b, CTilde: c}
}

// Commit folds the released observation's emission column into the
// quantifier state and advances time.
func (q *Quantifier) Commit(emis mat.Vector) error {
	if err := q.validateEmission(emis); err != nil {
		return err
	}
	m := q.md.m
	switch {
	case q.t == 0:
		mask0 := q.md.mask0
		q.af.Zero()
		q.at.Zero()
		for i := 0; i < m; i++ {
			q.af.Set(i, i, (1-mask0[i])*emis[i])
			q.at.Set(i, i, mask0[i]*emis[i])
		}
	case q.t <= q.md.end:
		ft, tt := q.md.stepMasks(q.t - 1)
		tr := q.md.tp.Matrix(q.t - 1)
		mat.MulInto(q.mx, q.af, tr) // X = A_F·M
		mat.MulInto(q.my, q.at, tr) // Y = A_T·M
		// A_F' = X·diag(1−ft) + Y·diag(1−tt), A_T' = X·diag(ft) + Y·diag(tt),
		// then both column-scaled by the emission.
		for i := 0; i < m; i++ {
			xr := q.mx.Row(i)
			yr := q.my.Row(i)
			fr := q.af.Row(i)
			trw := q.at.Row(i)
			for j := 0; j < m; j++ {
				fr[j] = (xr[j]*(1-ft[j]) + yr[j]*(1-tt[j])) * emis[j]
				trw[j] = (xr[j]*ft[j] + yr[j]*tt[j]) * emis[j]
			}
		}
	default: // q.t > end: B₁ ← diag(emis)·Mᵀ·B₁
		trT := q.transpose(q.md.tp.Matrix(q.t - 1))
		mat.MulInto(q.mx, trT, q.b1)
		mat.ScaleRowsInto(q.b1, q.mx, emis)
	}
	q.t++
	q.renormalise()
	return nil
}

// FNV-1a parameters for the rolling history fingerprint.
const (
	fpOffset uint64 = 14695981039346656037
	fpPrime  uint64 = 1099511628211
)

// FingerprintSeed is the rolling history fingerprint of an empty release
// history (the FNV-1a offset basis). A quantifier that has committed
// nothing reports exactly this value.
const FingerprintSeed uint64 = fpOffset

// fpFold mixes one 64-bit word into the fingerprint byte-wise.
func fpFold(fp, word uint64) uint64 {
	for shift := 0; shift < 64; shift += 8 {
		fp ^= (word >> shift) & 0xff
		fp *= fpPrime
	}
	return fp
}

// FingerprintFold folds one (alphaBits, obs) release tag into a rolling
// history fingerprint, exactly as CommitTagged does. It lets persistence
// layers verify a tag log's fingerprint chain without instantiating a
// quantifier: folding a session's tags in order from FingerprintSeed must
// reproduce the fingerprint its quantifiers report.
func FingerprintFold(fp, alphaBits uint64, obs int) uint64 {
	return fpFold(fpFold(fp, alphaBits), uint64(obs))
}

// HistoryFingerprint returns the rolling fingerprint of the release tags
// committed via CommitTagged. For a history-independent mechanism the tag
// sequence — (alphaBits, obs) per timestamp, alphaBits 0 for the uniform
// fallback — fully determines every committed emission column, so two
// quantifiers over the same model with equal fingerprints are (modulo a
// negligible 64-bit collision probability) in identical states. Commits
// made with plain Commit leave the fingerprint unchanged and make it
// meaningless; cache users must commit exclusively through CommitTagged.
func (q *Quantifier) HistoryFingerprint() uint64 { return q.fp }

// CommitTagged commits the released observation's emission column (as
// Commit) and folds its (alphaBits, obs) release tag into the rolling
// history fingerprint consumed by the certified-release cache.
func (q *Quantifier) CommitTagged(emis mat.Vector, alphaBits uint64, obs int) error {
	if err := q.Commit(emis); err != nil {
		return err
	}
	q.fp = FingerprintFold(q.fp, alphaBits, obs)
	return nil
}

// renormalise rescales the active operator so its largest entry is 1,
// accumulating the factor in logScale. A zero operator (an impossible
// observation sequence) is left as-is; Check/Current then return all-zero
// b̃/c̃, which CheckRelease treats as trivially safe.
func (q *Quantifier) renormalise() {
	var scale float64
	if q.t-1 <= q.md.end {
		scale = math.Max(q.af.MaxAbs(), q.at.MaxAbs())
		if scale == 0 || scale == 1 {
			return
		}
		q.af.Scale(1 / scale)
		q.at.Scale(1 / scale)
	} else {
		scale = q.b1.MaxAbs()
		if scale == 0 || scale == 1 {
			return
		}
		q.b1.Scale(1 / scale)
	}
	q.logScale += math.Log(scale)
}

func (q *Quantifier) transpose(m *mat.Matrix) *mat.Matrix {
	if t, ok := q.trCache[m]; ok {
		return t
	}
	t := m.Transpose()
	if len(q.trCache) < 64 {
		q.trCache[m] = t
	}
	return t
}

func (q *Quantifier) validateEmission(emis mat.Vector) error {
	if len(emis) != q.md.m {
		return fmt.Errorf("world: emission column length %d want %d", len(emis), q.md.m)
	}
	for i, v := range emis {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("world: emission[%d] = %g invalid", i, v)
		}
	}
	return nil
}

// JointAndMarginal runs a fresh quantifier over a full observation
// sequence and returns Pr(EVENT, o₀..o_{T-1}) and Pr(o₀..o_{T-1}) for a
// fixed initial probability. Emission columns are supplied per timestamp.
// This is the direct evaluation of Lemmas III.2/III.3 used in tests and
// the Fig. 14 harness.
func JointAndMarginal(md *Model, pi mat.Vector, emissions []mat.Vector) (joint, marginal float64, err error) {
	if len(pi) != md.m {
		return 0, 0, fmt.Errorf("world: pi length %d want %d", len(pi), md.m)
	}
	q := NewQuantifier(md)
	for _, e := range emissions {
		if err := q.Commit(e); err != nil {
			return 0, 0, err
		}
	}
	chk := q.Current()
	scale := math.Exp(q.LogScale())
	return pi.Dot(chk.BTilde) * scale, pi.Dot(chk.CTilde) * scale, nil
}

// PrivacyLoss returns the realised ε of Definition II.4 for a fixed
// initial probability after observing the given sequence: the max of the
// two log-ratios between Pr(o|EVENT) and Pr(o|¬EVENT).
func PrivacyLoss(md *Model, pi mat.Vector, emissions []mat.Vector) (float64, error) {
	if len(pi) != md.m {
		return 0, fmt.Errorf("world: pi length %d want %d", len(pi), md.m)
	}
	q := NewQuantifier(md)
	for _, e := range emissions {
		if err := q.Commit(e); err != nil {
			return 0, err
		}
	}
	return qp.FixedPiLoss(q.Current(), pi)
}
