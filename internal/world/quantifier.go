package world

import (
	"fmt"
	"math"

	"priste/internal/mat"
	"priste/internal/par"
	"priste/internal/qp"
)

// Quantifier is the streaming privacy-loss quantifier of Algorithm 2: it
// maintains the forward operator A = [A_F | A_T] ∈ R^{m×2m} mapping an
// unknown initial probability π to the augmented forward vector, and —
// after the event window — the backward accumulator B (a single m×m block,
// because the augmented after-event factors are block-diagonal with equal
// blocks).
//
// For each timestamp the caller first calls Check with a candidate
// emission column (the quantities ã, b̃, c̃ of Theorem IV.1 for the
// candidate observation) and, once a candidate is accepted, Commit with
// the released observation's emission column.
//
// To avoid underflow over long horizons the internal operators are
// renormalised whenever their magnitude drifts out of a wide safe band
// (see renormalise); b̃ and c̃ therefore carry a shared unknown scale
// exp(LogScale), which cancels in the Theorem IV.1 conditions and is
// exposed for callers needing absolute probabilities.
type Quantifier struct {
	md *Model

	af, at *mat.Matrix // committed forward blocks, m×m each
	b1     *mat.Matrix // backward block, valid once t > end
	t      int         // next timestamp to be observed (0-based)

	logScale float64

	// fp is the rolling FNV-1a fingerprint of the committed release tags
	// (see CommitTagged); it identifies the committed-column history for
	// the certified-release cache.
	fp uint64

	atilde mat.Vector

	// fwdBand and b1Band track the live bandwidth of the forward
	// operators and the backward accumulator: each committed step widens
	// the band by the step matrix's bandwidth (clamped at m−1 = full).
	// The adaptive dense dispatch uses them to run banded products while
	// they beat dense flops. fwdMax/b1Max hold the largest absolute
	// operator entry after the latest commit (a free byproduct of the
	// commit write passes) — the normalisation scale for the float32
	// shadow copies.
	fwdBand, b1Band int
	fwdMax, b1Max   float64

	// shadow holds the float32 operator copies for the shadow check
	// path (nil unless ModelOptions.Shadow).
	shadow *shadowState

	// scratch. Check and Current are zero-allocation: each writes its
	// b̃/c̃ into its own pair of reusable buffers (checkB/checkC and
	// curB/curC), which the returned ReleaseCheck aliases — see the
	// ownership contract on Check. tmp1/tmp2/uvec hold matvec
	// intermediates; mx/my the Commit matrix products.
	tmp1, tmp2, uvec mat.Vector
	checkB, checkC   mat.Vector
	curB, curC       mat.Vector
	mx, my           *mat.Matrix
}

// shadowState carries the float32 copies of the forward operators and
// backward accumulator consumed by ShadowCheck. Copies are converted
// lazily (dirty flags set by Commit) and normalised by the operator's
// maximum entry — the float64 operators roam a magnitude band float32
// cannot represent. The common scale factor cancels in the Theorem IV.1
// conditions, which are homogeneous in (b̃, c̃).
type shadowState struct {
	af32, at32, b132  *mat.Matrix32
	fwdDirty, b1Dirty bool
}

// NewQuantifier returns a fresh quantifier at time 0.
func NewQuantifier(md *Model) *Quantifier {
	m := md.m
	q := &Quantifier{
		md:     md,
		fp:     fpOffset,
		af:     mat.NewMatrix(m, m),
		at:     mat.NewMatrix(m, m),
		b1:     mat.Identity(m),
		b1Max:  1,
		atilde: md.ATilde(),
		tmp1:   mat.NewVector(m),
		tmp2:   mat.NewVector(m),
		uvec:   mat.NewVector(m),
		checkB: mat.NewVector(m),
		checkC: mat.NewVector(m),
		curB:   mat.NewVector(m),
		curC:   mat.NewVector(m),
		mx:     mat.NewMatrix(m, m),
		my:     mat.NewMatrix(m, m),
	}
	if md.opts.Shadow {
		q.shadow = &shadowState{
			af32:     mat.NewMatrix32(m, m),
			at32:     mat.NewMatrix32(m, m),
			b132:     mat.NewMatrix32(m, m),
			fwdDirty: true,
			b1Dirty:  true,
		}
	}
	return q
}

// T returns the next timestamp to be observed.
func (q *Quantifier) T() int { return q.t }

// LogScale returns the accumulated log of the normalisation factors; the
// true joint probabilities are the reported b̃/c̃ times exp(LogScale).
func (q *Quantifier) LogScale() float64 { return q.logScale }

// ATilde returns ã (shared storage; do not mutate).
func (q *Quantifier) ATilde() mat.Vector { return q.atilde }

// Check computes the Theorem IV.1 vectors for observing a candidate with
// emission column emis (emis[i] = Pr(o | u_t = s_i)) at the quantifier's
// current timestamp, without committing it.
//
// Zero-allocation contract: the returned b̃/c̃ alias buffers owned by the
// quantifier and are overwritten by the next Check call (Commit and
// Current leave them intact). The LPPM candidate loop calls Check once
// per candidate and consumes the result before the next draw, so the
// reuse is free; callers needing the vectors past the next Check must
// clone them.
func (q *Quantifier) Check(emis mat.Vector) (qp.ReleaseCheck, error) {
	if err := q.validateEmission(emis); err != nil {
		return qp.ReleaseCheck{}, err
	}
	return q.CheckTrusted(emis), nil
}

// CheckTrusted is Check without the O(m) emission validation sweep, for
// callers whose columns come from an already-validated source (the
// engine's emission tables validate at build; see lppm.EmissionTable).
// Same zero-allocation buffer contract as Check.
func (q *Quantifier) CheckTrusted(emis mat.Vector) qp.ReleaseCheck {
	m := q.md.m
	b, c := q.checkB, q.checkC
	switch {
	case q.t == 0:
		// b̃ᵢ = emisᵢ·ãᵢ, c̃ᵢ = emisᵢ.
		for i := 0; i < m; i++ {
			b[i] = emis[i] * q.atilde[i]
			c[i] = emis[i]
		}
	case q.t <= q.md.end:
		ft, tt := q.md.stepMasks(q.t - 1)
		k := q.md.kernel(q.t - 1)
		vF, vT := q.md.vF[q.t], q.md.vT[q.t]
		// uF = M·((1−ft)∘(emis∘vF) + ft∘(emis∘vT))
		for i := 0; i < m; i++ {
			q.tmp1[i] = emis[i] * ((1-ft[i])*vF[i] + ft[i]*vT[i])
		}
		k.mulVecInto(q.uvec, q.tmp1)
		q.fwdMulVec(q.af, b, q.uvec)
		// uT likewise with the true-world mask.
		for i := 0; i < m; i++ {
			q.tmp1[i] = emis[i] * ((1-tt[i])*vF[i] + tt[i]*vT[i])
		}
		k.mulVecInto(q.uvec, q.tmp1)
		q.fwdMulVec(q.at, q.tmp2, q.uvec)
		b.AddInto(b, q.tmp2)
		// c̃ = (A_F + A_T)·(M·emis)
		k.mulVecInto(q.uvec, emis)
		q.fwdMulVec(q.af, c, q.uvec)
		q.fwdMulVec(q.at, q.tmp2, q.uvec)
		c.AddInto(c, q.tmp2)
	default: // q.t > end
		k := q.md.kernel(q.t - 1)
		k.mulVecInto(q.uvec, emis)
		z := q.b1.VecMulInto(q.tmp2, q.uvec) // row: (M·emis)ᵀ·B₁
		q.fwdMulVec(q.at, b, z)
		q.fwdMulVec(q.af, c, z)
		c.AddInto(c, b)
	}
	return qp.ReleaseCheck{ATilde: q.atilde, BTilde: b, CTilde: c}
}

// fwdMulVec computes dst = a·x for a forward operator (af or at),
// restricting the row dots to the operator's tracked band when it is
// worthwhile — bit-identical to the full dot, since the skipped entries
// are exact zeros. The oracle mode keeps the plain loop.
func (q *Quantifier) fwdMulVec(a *mat.Matrix, dst, x mat.Vector) {
	if q.md.opts.Kernel != KernelOracle && 2*q.fwdBand+1 < q.md.m {
		mat.MulVecBandInto(dst, a, x, q.fwdBand)
		return
	}
	a.MulVecInto(dst, x)
}

// Current returns the Theorem IV.1 vectors for the already-committed
// observation prefix (no candidate). Before any commit, b̃ = ã and c̃ = 1.
// Like Check, the returned b̃/c̃ alias quantifier-owned buffers (a
// separate pair, so a held Check result survives a Commit+Current) and
// are overwritten by the next Current call.
func (q *Quantifier) Current() qp.ReleaseCheck {
	b, c := q.curB, q.curC
	switch {
	case q.t == 0:
		copy(b, q.atilde)
		for i := range c {
			c[i] = 1
		}
	case q.t-1 <= q.md.end:
		vF, vT := q.md.vF[q.t-1], q.md.vT[q.t-1]
		q.af.MulVecInto(b, vF)
		q.at.MulVecInto(q.tmp2, vT)
		b.AddInto(b, q.tmp2)
		q.af.MulVecInto(c, q.md.ones)
		q.at.MulVecInto(q.tmp2, q.md.ones)
		c.AddInto(c, q.tmp2)
	default:
		z := q.b1.VecMulInto(q.tmp2, q.md.ones)
		q.at.MulVecInto(b, z)
		q.af.MulVecInto(c, z)
		c.AddInto(c, b)
	}
	return qp.ReleaseCheck{ATilde: q.atilde, BTilde: b, CTilde: c}
}

// Commit folds the released observation's emission column into the
// quantifier state and advances time. Each branch computes the largest
// absolute operator entry as a byproduct of its final write pass, so the
// renormalisation check costs no extra sweep.
func (q *Quantifier) Commit(emis mat.Vector) error {
	if err := q.validateEmission(emis); err != nil {
		return err
	}
	q.commitTrusted(emis)
	return nil
}

// commitTrusted is Commit without the emission validation sweep.
func (q *Quantifier) commitTrusted(emis mat.Vector) {
	m := q.md.m
	var scale float64
	switch {
	case q.t == 0:
		mask0 := q.md.mask0
		q.af.Zero()
		q.at.Zero()
		for i := 0; i < m; i++ {
			f := (1 - mask0[i]) * emis[i]
			tr := mask0[i] * emis[i]
			q.af.Set(i, i, f)
			q.at.Set(i, i, tr)
			scale = math.Max(scale, math.Max(math.Abs(f), math.Abs(tr)))
		}
		q.fwdBand = 0
		q.fwdMax = scale
		if q.shadow != nil {
			q.shadow.fwdDirty = true
		}
	case q.t <= q.md.end:
		ft, tt := q.md.stepMasks(q.t - 1)
		k := q.md.kernel(q.t - 1)
		k.forwardMul(q.mx, q.af, q.fwdBand, &q.md.kc) // X = A_F·M
		k.forwardMul(q.my, q.at, q.fwdBand, &q.md.kc) // Y = A_T·M
		scale = q.maskAndScale(ft, tt, emis)
		q.fwdBand = min(q.fwdBand+k.bw, m-1)
		q.fwdMax = scale
		if q.shadow != nil {
			q.shadow.fwdDirty = true
		}
	default: // q.t > end: B₁ ← diag(emis)·Mᵀ·B₁
		k := q.md.kernel(q.t - 1)
		k.backwardMul(q.mx, q.b1, q.b1Band, q.my, &q.md.kc)
		scale = mat.ScaleRowsMaxInto(q.b1, q.mx, emis)
		q.b1Band = min(q.b1Band+k.bw, m-1)
		q.b1Max = scale
		if q.shadow != nil {
			q.shadow.b1Dirty = true
		}
	}
	q.t++
	q.renormalise(scale)
}

// maskFlopsCutoff is the multiply-add count above which maskAndScale
// splits its rows across CPUs: with the matrix products on the sparse
// path this O(m²) loop dominates Commit, and at the paper's m=400 the
// 4·m² ≈ 6.4·10⁵ multiply-adds comfortably amortise goroutine start-up.
const maskFlopsCutoff = 1 << 17

// maskAndScale folds the step masks and the emission column into the
// forward blocks: A_F' = X·diag(1−ft) + Y·diag(1−tt), A_T' = X·diag(ft)
// + Y·diag(tt), both column-scaled by the emission, and returns the
// largest absolute entry written (fused so renormalisation needs no
// second sweep of the operators). Row tiles go through the shared pool
// with fixed boundaries and a single writer per row, so the split is
// bit-deterministic; the max reduction is exact under any split. The
// serial path materialises no closure (commit stays allocation-free).
func (q *Quantifier) maskAndScale(ft, tt, emis mat.Vector) float64 {
	m := q.md.m
	if !par.Default().Parallel(m, 4*int64(m)*int64(m), maskFlopsCutoff) {
		return q.maskRows(ft, tt, emis, 0, m)
	}
	return par.Default().ForMax(m, func(lo, hi int) float64 {
		return q.maskRows(ft, tt, emis, lo, hi)
	})
}

// maskRows runs the fused mask+emission+max loop over rows [lo,hi).
func (q *Quantifier) maskRows(ft, tt, emis mat.Vector, lo, hi int) float64 {
	m := q.md.m
	var best float64
	for i := lo; i < hi; i++ {
		xr := q.mx.Row(i)
		yr := q.my.Row(i)
		fr := q.af.Row(i)
		trw := q.at.Row(i)
		for j := 0; j < m; j++ {
			f := (xr[j]*(1-ft[j]) + yr[j]*(1-tt[j])) * emis[j]
			tr := (xr[j]*ft[j] + yr[j]*tt[j]) * emis[j]
			fr[j] = f
			trw[j] = tr
			if f = math.Abs(f); f > best {
				best = f
			}
			if tr = math.Abs(tr); tr > best {
				best = tr
			}
		}
	}
	return best
}

// FNV-1a parameters for the rolling history fingerprint.
const (
	fpOffset uint64 = 14695981039346656037
	fpPrime  uint64 = 1099511628211
)

// FingerprintSeed is the rolling history fingerprint of an empty release
// history (the FNV-1a offset basis). A quantifier that has committed
// nothing reports exactly this value.
const FingerprintSeed uint64 = fpOffset

// fpFold mixes one 64-bit word into the fingerprint byte-wise.
func fpFold(fp, word uint64) uint64 {
	for shift := 0; shift < 64; shift += 8 {
		fp ^= (word >> shift) & 0xff
		fp *= fpPrime
	}
	return fp
}

// FingerprintFold folds one (alphaBits, obs) release tag into a rolling
// history fingerprint, exactly as CommitTagged does. It lets persistence
// layers verify a tag log's fingerprint chain without instantiating a
// quantifier: folding a session's tags in order from FingerprintSeed must
// reproduce the fingerprint its quantifiers report.
func FingerprintFold(fp, alphaBits uint64, obs int) uint64 {
	return fpFold(fpFold(fp, alphaBits), uint64(obs))
}

// HistoryFingerprint returns the rolling fingerprint of the release tags
// committed via CommitTagged. For a history-independent mechanism the tag
// sequence — (alphaBits, obs) per timestamp, alphaBits 0 for the uniform
// fallback — fully determines every committed emission column, so two
// quantifiers over the same model with equal fingerprints are (modulo a
// negligible 64-bit collision probability) in identical states. Commits
// made with plain Commit leave the fingerprint unchanged and make it
// meaningless; cache users must commit exclusively through CommitTagged.
func (q *Quantifier) HistoryFingerprint() uint64 { return q.fp }

// CommitTagged commits the released observation's emission column (as
// Commit) and folds its (alphaBits, obs) release tag into the rolling
// history fingerprint consumed by the certified-release cache.
func (q *Quantifier) CommitTagged(emis mat.Vector, alphaBits uint64, obs int) error {
	if err := q.Commit(emis); err != nil {
		return err
	}
	q.fp = FingerprintFold(q.fp, alphaBits, obs)
	return nil
}

// CommitTaggedTrusted is CommitTagged without the emission validation
// sweep (see CheckTrusted for the trust contract).
func (q *Quantifier) CommitTaggedTrusted(emis mat.Vector, alphaBits uint64, obs int) {
	q.commitTrusted(emis)
	q.fp = FingerprintFold(q.fp, alphaBits, obs)
}

// ShadowEta bounds the per-component relative error of the float32
// shadow check pipeline: every b̃/c̃ component computed by ShadowCheck
// is within a factor (1 ± ShadowEta) of the exact float64 value (up to
// the common normalisation scale). The bound holds because every matrix
// entry on the shadow path carries exactly one float64→float32
// conversion rounding (≤ 2⁻²⁴ relative) while accumulation runs in
// float64, and the engine's data is non-negative — sums never cancel,
// so per-term relative errors bound the relative error of the sum. The
// deepest chain (post-window: kernel matvec → B₁ row-product → operator
// matvec → add) compounds ≤ 4 such roundings plus O(m·2⁻⁵³) float64
// accumulation noise and the ~1e-38 subnormal flush of the conversion;
// 16·2⁻²⁴ covers all of it with 4× slack.
const ShadowEta = 16.0 / (1 << 24)

// ShadowCheck is the float32 shadow of Check: it computes the Theorem
// IV.1 vectors for a candidate emission column against float32 copies
// of the step kernels and operators, accumulating in float64. The
// returned b̃/c̃ differ from CheckTrusted's by an unknown positive
// common scale (the float32 copies are max-normalised) and a
// per-component relative error ≤ ShadowEta; both are exactly what
// qp.CheckReleaseShadow certifies against. The result aliases the same
// buffers as Check and is invalidated by the next Check/ShadowCheck.
//
// The second return is false when the shadow path cannot run — shadow
// copies not compiled, t == 0 (the exact branch is already O(m)), or a
// zero operator — and the caller must use the exact path.
func (q *Quantifier) ShadowCheck(emis mat.Vector) (qp.ReleaseCheck, bool) {
	sh := q.shadow
	if sh == nil || q.t == 0 || q.fwdMax == 0 {
		return qp.ReleaseCheck{}, false
	}
	m := q.md.m
	b, c := q.checkB, q.checkC
	if q.t <= q.md.end {
		if sh.fwdDirty {
			inv := 1 / q.fwdMax
			sh.af32.ConvertScaled(q.af, inv)
			sh.at32.ConvertScaled(q.at, inv)
			sh.fwdDirty = false
		}
		ft, tt := q.md.stepMasks(q.t - 1)
		k := q.md.kernel(q.t - 1)
		vF, vT := q.md.vF[q.t], q.md.vT[q.t]
		for i := 0; i < m; i++ {
			q.tmp1[i] = emis[i] * ((1-ft[i])*vF[i] + ft[i]*vT[i])
		}
		if !k.mulVec32Into(q.uvec, q.tmp1) {
			return qp.ReleaseCheck{}, false
		}
		sh.af32.MulVecInto(b, q.uvec)
		for i := 0; i < m; i++ {
			q.tmp1[i] = emis[i] * ((1-tt[i])*vF[i] + tt[i]*vT[i])
		}
		k.mulVec32Into(q.uvec, q.tmp1)
		sh.at32.MulVecInto(q.tmp2, q.uvec)
		b.AddInto(b, q.tmp2)
		k.mulVec32Into(q.uvec, emis)
		sh.af32.MulVecInto(c, q.uvec)
		sh.at32.MulVecInto(q.tmp2, q.uvec)
		c.AddInto(c, q.tmp2)
	} else {
		if q.b1Max == 0 {
			return qp.ReleaseCheck{}, false
		}
		if sh.fwdDirty {
			inv := 1 / q.fwdMax
			sh.af32.ConvertScaled(q.af, inv)
			sh.at32.ConvertScaled(q.at, inv)
			sh.fwdDirty = false
		}
		if sh.b1Dirty {
			sh.b132.ConvertScaled(q.b1, 1/q.b1Max)
			sh.b1Dirty = false
		}
		k := q.md.kernel(q.t - 1)
		if !k.mulVec32Into(q.uvec, emis) {
			return qp.ReleaseCheck{}, false
		}
		z := sh.b132.VecMulInto(q.tmp2, q.uvec)
		sh.at32.MulVecInto(b, z)
		sh.af32.MulVecInto(c, z)
		c.AddInto(c, b)
	}
	return qp.ReleaseCheck{ATilde: q.atilde, BTilde: b, CTilde: c}, true
}

// Lazy-renormalisation band: the rescale exists only to keep the
// operators away from floating-point under/overflow over long horizons,
// so it fires when the largest entry leaves [1e-100, 1e100] instead of
// on every commit — the O(m²) Scale pass drops off the hot path. The
// m-term matvec sums of Check have ~1e208 of headroom left above the
// band, and entries more than ~1e208 below the committed maximum flush
// to denormals exactly as they would have under per-commit rescaling.
const (
	rescaleLo = 1e-100
	rescaleHi = 1e100
)

// renormalise rescales the active operator so its largest entry — scale,
// computed by Commit as a byproduct of its final write pass — becomes 1,
// accumulating the factor in logScale; it is a no-op while scale sits
// inside the lazy band. A zero operator (an impossible observation
// sequence) is left as-is; Check/Current then return all-zero b̃/c̃,
// which CheckRelease treats as trivially safe. Both kernel paths commit
// bit-identical operators, so they rescale at the same timestamps by the
// same factors.
func (q *Quantifier) renormalise(scale float64) {
	if scale == 0 || (scale >= rescaleLo && scale <= rescaleHi) {
		return
	}
	if q.t-1 <= q.md.end {
		q.af.Scale(1 / scale)
		q.at.Scale(1 / scale)
		q.fwdMax = 1
	} else {
		q.b1.Scale(1 / scale)
		q.b1Max = 1
	}
	q.logScale += math.Log(scale)
}

func (q *Quantifier) validateEmission(emis mat.Vector) error {
	if len(emis) != q.md.m {
		return fmt.Errorf("world: emission column length %d want %d", len(emis), q.md.m)
	}
	for i, v := range emis {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("world: emission[%d] = %g invalid", i, v)
		}
	}
	return nil
}

// JointAndMarginal runs a fresh quantifier over a full observation
// sequence and returns Pr(EVENT, o₀..o_{T-1}) and Pr(o₀..o_{T-1}) for a
// fixed initial probability. Emission columns are supplied per timestamp.
// This is the direct evaluation of Lemmas III.2/III.3 used in tests and
// the Fig. 14 harness.
func JointAndMarginal(md *Model, pi mat.Vector, emissions []mat.Vector) (joint, marginal float64, err error) {
	if len(pi) != md.m {
		return 0, 0, fmt.Errorf("world: pi length %d want %d", len(pi), md.m)
	}
	q := NewQuantifier(md)
	for _, e := range emissions {
		if err := q.Commit(e); err != nil {
			return 0, 0, err
		}
	}
	chk := q.Current()
	scale := math.Exp(q.LogScale())
	return pi.Dot(chk.BTilde) * scale, pi.Dot(chk.CTilde) * scale, nil
}

// PrivacyLoss returns the realised ε of Definition II.4 for a fixed
// initial probability after observing the given sequence: the max of the
// two log-ratios between Pr(o|EVENT) and Pr(o|¬EVENT).
func PrivacyLoss(md *Model, pi mat.Vector, emissions []mat.Vector) (float64, error) {
	if len(pi) != md.m {
		return 0, fmt.Errorf("world: pi length %d want %d", len(pi), md.m)
	}
	q := NewQuantifier(md)
	for _, e := range emissions {
		if err := q.Commit(e); err != nil {
			return 0, err
		}
	}
	return qp.FixedPiLoss(q.Current(), pi)
}
