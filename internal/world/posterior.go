package world

import (
	"fmt"

	"priste/internal/mat"
)

// EventPosterior returns the Bayesian adversary's belief trajectory: for
// each prefix o₀..o_t of the emission columns, Pr(EVENT | o₀..o_t) under
// the fixed initial probability pi. This is the inference the paper's
// introduction warns about — a geo-indistinguishable mechanism leaks the
// event through the *sequence* — and the quantity PriSTE's guarantee
// bounds relative to the prior Pr(EVENT).
func EventPosterior(md *Model, pi mat.Vector, emissions []mat.Vector) ([]float64, error) {
	if len(pi) != md.m {
		return nil, fmt.Errorf("world: pi length %d want %d", len(pi), md.m)
	}
	q := NewQuantifier(md)
	out := make([]float64, len(emissions))
	for t, e := range emissions {
		if err := q.Commit(e); err != nil {
			return nil, err
		}
		chk := q.Current()
		joint := pi.Dot(chk.BTilde)
		marg := pi.Dot(chk.CTilde)
		if marg <= 0 {
			return nil, fmt.Errorf("world: observations impossible under pi at t=%d", t)
		}
		out[t] = joint / marg
	}
	return out, nil
}
