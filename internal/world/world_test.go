package world

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"priste/internal/event"
	"priste/internal/grid"
	"priste/internal/hmm"
	"priste/internal/markov"
	"priste/internal/mat"
)

// paperChain is the transition matrix of Example III.1 / Eq. (2).
func paperChain() *markov.Chain {
	return markov.MustNewChain(mat.FromRows([][]float64{
		{0.1, 0.2, 0.7},
		{0.4, 0.1, 0.5},
		{0, 0.1, 0.9},
	}))
}

// noisyEmission is a 3-state symmetric noisy channel.
func noisyEmission() *mat.Matrix {
	return mat.FromRows([][]float64{
		{0.8, 0.1, 0.1},
		{0.1, 0.8, 0.1},
		{0.1, 0.1, 0.8},
	})
}

func emissionColumn(e *mat.Matrix, obs int) mat.Vector { return e.Col(obs) }

func mustModel(t *testing.T, tp TransitionProvider, ev event.Event) *Model {
	t.Helper()
	md, err := NewModel(tp, ev)
	if err != nil {
		t.Fatal(err)
	}
	return md
}

// TestExampleC1 reproduces the worked example of Appendix C: the PRESENCE
// event at region {s0,s1} (paper: s1,s2) during paper-times 3..4 (0-based
// 2..3) has Pr(PRESENCE) = π·[0.28, 0.298, 0.226]ᵀ.
func TestExampleC1(t *testing.T) {
	region := grid.MustRegionOf(3, 0, 1)
	ev := event.MustNewPresence(region, 2, 3)
	md := mustModel(t, NewHomogeneous(paperChain()), ev)
	a := md.ATilde()
	want := mat.Vector{0.28, 0.298, 0.226}
	if !a.EqualApprox(want, 1e-12) {
		t.Fatalf("ATilde = %v, want %v", a, want)
	}
	pi := mat.Vector{0.2, 0.3, 0.5}
	prior, err := md.Prior(pi)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(prior-pi.Dot(want)) > 1e-12 {
		t.Fatalf("prior = %v", prior)
	}
}

func TestNewModelValidation(t *testing.T) {
	ev := event.MustNewPresence(grid.MustRegionOf(4, 0), 1, 2)
	if _, err := NewModel(NewHomogeneous(paperChain()), ev); err == nil {
		t.Error("state-space mismatch accepted")
	}
}

func TestVaryingProvider(t *testing.T) {
	m1 := paperChain().Matrix()
	if _, err := NewVarying(nil); err == nil {
		t.Error("empty list accepted")
	}
	bad := mat.NewMatrix(3, 3)
	if _, err := NewVarying([]*mat.Matrix{bad}); err == nil {
		t.Error("non-stochastic accepted")
	}
	if _, err := NewVarying([]*mat.Matrix{m1, mat.Identity(2)}); err == nil {
		t.Error("shape mismatch accepted")
	}
	v, err := NewVarying([]*mat.Matrix{m1, mat.Identity(3)})
	if err != nil {
		t.Fatal(err)
	}
	if v.Matrix(0) != m1 || v.Matrix(1) != v.Matrix(99) {
		t.Error("matrix selection wrong")
	}
	if v.States() != 3 {
		t.Error("states wrong")
	}
}

func TestPriorValidation(t *testing.T) {
	ev := event.MustNewPresence(grid.MustRegionOf(3, 0), 1, 2)
	md := mustModel(t, NewHomogeneous(paperChain()), ev)
	if _, err := md.Prior(mat.Vector{1, 0}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := md.Prior(mat.Vector{1, 1, 1}); err == nil {
		t.Error("non-distribution accepted")
	}
}

// TestPriorMatchesNaivePresence cross-validates Lemma III.1 against the
// exponential enumeration for a spread of PRESENCE events.
func TestPriorMatchesNaivePresence(t *testing.T) {
	c := paperChain()
	tp := NewHomogeneous(c)
	pi := mat.Vector{0.5, 0.2, 0.3}
	cases := []struct {
		states     []int
		start, end int
	}{
		{[]int{0}, 0, 0},
		{[]int{0, 1}, 0, 2},
		{[]int{1}, 1, 1},
		{[]int{0, 1}, 2, 3},
		{[]int{2}, 1, 3},
		{[]int{0, 2}, 3, 4},
	}
	for _, tc := range cases {
		ev := event.MustNewPresence(grid.MustRegionOf(3, tc.states...), tc.start, tc.end)
		md := mustModel(t, tp, ev)
		got, err := md.Prior(pi)
		if err != nil {
			t.Fatal(err)
		}
		want, err := event.NaivePrior(c, pi, ev.Expr(), tc.end+1)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("%v: prior = %v, naive = %v", ev, got, want)
		}
	}
}

// TestPriorMatchesNaivePattern does the same for PATTERN events.
func TestPriorMatchesNaivePattern(t *testing.T) {
	c := paperChain()
	tp := NewHomogeneous(c)
	pi := mat.Vector{0.5, 0.2, 0.3}
	cases := []struct {
		regions [][]int
		start   int
	}{
		{[][]int{{0, 1}}, 0},
		{[][]int{{0, 1}, {1, 2}}, 1},
		{[][]int{{0}, {2}, {1, 2}}, 2},
		{[][]int{{0, 1, 2}, {1}}, 0},
		{[][]int{{2}, {2}, {2}}, 1},
	}
	for _, tc := range cases {
		regions := make([]*grid.Region, len(tc.regions))
		for i, ss := range tc.regions {
			regions[i] = grid.MustRegionOf(3, ss...)
		}
		ev := event.MustNewPattern(regions, tc.start)
		md := mustModel(t, tp, ev)
		got, err := md.Prior(pi)
		if err != nil {
			t.Fatal(err)
		}
		_, end := ev.Window()
		want, err := event.NaivePrior(c, pi, ev.Expr(), end+1)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("%v: prior = %v, naive = %v", ev, got, want)
		}
	}
}

// randomEvent builds a random small PRESENCE or PATTERN event over m=3.
func randomEvent(rng *rand.Rand) event.Event {
	if rng.Intn(2) == 0 {
		var states []int
		for s := 0; s < 3; s++ {
			if rng.Intn(2) == 0 {
				states = append(states, s)
			}
		}
		if len(states) == 0 {
			states = []int{rng.Intn(3)}
		}
		start := rng.Intn(3)
		end := start + rng.Intn(3)
		return event.MustNewPresence(grid.MustRegionOf(3, states...), start, end)
	}
	n := 1 + rng.Intn(3)
	regions := make([]*grid.Region, n)
	for i := range regions {
		var states []int
		for s := 0; s < 3; s++ {
			if rng.Intn(2) == 0 {
				states = append(states, s)
			}
		}
		if len(states) == 0 {
			states = []int{rng.Intn(3)}
		}
		regions[i] = grid.MustRegionOf(3, states...)
	}
	return event.MustNewPattern(regions, rng.Intn(3))
}

// Property: prior via two-possible-worlds equals naive enumeration, and
// Pr(E) + Pr(¬E) = 1 implicitly (naive checks the complement too).
func TestPriorMatchesNaiveProperty(t *testing.T) {
	c := paperChain()
	tp := NewHomogeneous(c)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ev := randomEvent(rng)
		pi := mat.Vector{rng.Float64(), rng.Float64(), rng.Float64()}
		pi.Normalize()
		md, err := NewModel(tp, ev)
		if err != nil {
			return false
		}
		got, err := md.Prior(pi)
		if err != nil {
			return false
		}
		_, end := ev.Window()
		want, err := event.NaivePrior(c, pi, ev.Expr(), end+1)
		if err != nil {
			return false
		}
		return math.Abs(got-want) < 1e-10 && got >= -1e-12 && got <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestJointMatchesNaive cross-validates Lemmas III.2/III.3 (before, during
// and after the window) against naive enumeration.
func TestJointMatchesNaive(t *testing.T) {
	c := paperChain()
	tp := NewHomogeneous(c)
	pi := mat.Vector{0.5, 0.2, 0.3}
	em := noisyEmission()
	emFn := func(tt, o, s int) float64 { return em.At(s, o) }

	region := grid.MustRegionOf(3, 0, 1)
	ev := event.MustNewPresence(region, 2, 3)
	md := mustModel(t, tp, ev)

	obs := []int{0, 2, 1, 2, 0, 1} // covers before, during, after the window
	for prefix := 1; prefix <= len(obs); prefix++ {
		emissions := make([]mat.Vector, prefix)
		for i := 0; i < prefix; i++ {
			emissions[i] = emissionColumn(em, obs[i])
		}
		joint, marginal, err := JointAndMarginal(md, pi, emissions)
		if err != nil {
			t.Fatal(err)
		}
		horizon := 4 // end+1
		if prefix > horizon {
			horizon = prefix
		}
		wantJoint, err := event.NaiveJoint(c, pi, ev.Expr(), obs[:prefix], emFn, horizon)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(joint-wantJoint) > 1e-12 {
			t.Errorf("prefix %d: joint = %v, naive = %v", prefix, joint, wantJoint)
		}
		// Marginal must match the HMM forward likelihood.
		model, err := hmm.NewModel(c, pi, hmm.MustNewMatrixEmission(em))
		if err != nil {
			t.Fatal(err)
		}
		ll, err := model.LogLikelihood(obs[:prefix])
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(marginal-math.Exp(ll)) > 1e-12 {
			t.Errorf("prefix %d: marginal = %v, hmm = %v", prefix, marginal, math.Exp(ll))
		}
	}
}

// Property: joint for random events and observation sequences matches the
// naive enumeration, and joint ≤ marginal.
func TestJointMatchesNaiveProperty(t *testing.T) {
	c := paperChain()
	tp := NewHomogeneous(c)
	em := noisyEmission()
	emFn := func(tt, o, s int) float64 { return em.At(s, o) }
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ev := randomEvent(rng)
		_, end := ev.Window()
		pi := mat.Vector{rng.Float64(), rng.Float64(), rng.Float64()}
		pi.Normalize()
		nObs := 1 + rng.Intn(end+3)
		obs := make([]int, nObs)
		emissions := make([]mat.Vector, nObs)
		for i := range obs {
			obs[i] = rng.Intn(3)
			emissions[i] = emissionColumn(em, obs[i])
		}
		md, err := NewModel(tp, ev)
		if err != nil {
			return false
		}
		joint, marginal, err := JointAndMarginal(md, pi, emissions)
		if err != nil {
			return false
		}
		horizon := end + 1
		if nObs > horizon {
			horizon = nObs
		}
		want, err := event.NaiveJoint(c, pi, ev.Expr(), obs, emFn, horizon)
		if err != nil {
			return false
		}
		return math.Abs(joint-want) < 1e-10 && joint <= marginal+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestCheckConsistentWithCommit verifies that the candidate-check vectors
// equal the committed Current vectors up to the shared rescale.
func TestCheckConsistentWithCommit(t *testing.T) {
	c := paperChain()
	em := noisyEmission()
	ev := event.MustNewPresence(grid.MustRegionOf(3, 0, 1), 2, 3)
	md := mustModel(t, NewHomogeneous(c), ev)
	q := NewQuantifier(md)
	pi := mat.Vector{0.3, 0.3, 0.4}
	obs := []int{0, 1, 2, 0, 1, 2}
	for _, o := range obs {
		col := emissionColumn(em, o)
		chk, err := q.Check(col)
		if err != nil {
			t.Fatal(err)
		}
		preScale := math.Exp(q.LogScale())
		if err := q.Commit(col); err != nil {
			t.Fatal(err)
		}
		cur := q.Current()
		postScale := math.Exp(q.LogScale())
		// π·b̃ and π·c̃ must agree after undoing the rescale.
		gotB := pi.Dot(cur.BTilde) * postScale
		wantB := pi.Dot(chk.BTilde) * preScale
		if math.Abs(gotB-wantB) > 1e-12*math.Max(1, math.Abs(wantB)) {
			t.Fatalf("t=%d: committed joint %v != checked %v", q.T()-1, gotB, wantB)
		}
		gotC := pi.Dot(cur.CTilde) * postScale
		wantC := pi.Dot(chk.CTilde) * preScale
		if math.Abs(gotC-wantC) > 1e-12*math.Max(1, math.Abs(wantC)) {
			t.Fatalf("t=%d: committed marginal %v != checked %v", q.T()-1, gotC, wantC)
		}
	}
}

// TestQuantifierRescaleInvariance runs a long horizon and verifies the
// marginal still matches the HMM likelihood through the rescaling.
func TestQuantifierRescaleInvariance(t *testing.T) {
	c := paperChain()
	em := noisyEmission()
	ev := event.MustNewPresence(grid.MustRegionOf(3, 0), 5, 8)
	md := mustModel(t, NewHomogeneous(c), ev)
	pi := markov.Uniform(3)
	rng := rand.New(rand.NewSource(5))
	obs := make([]int, 40)
	emissions := make([]mat.Vector, len(obs))
	for i := range obs {
		obs[i] = rng.Intn(3)
		emissions[i] = emissionColumn(em, obs[i])
	}
	_, marginal, err := JointAndMarginal(md, pi, emissions)
	if err != nil {
		t.Fatal(err)
	}
	model, _ := hmm.NewModel(c, pi, hmm.MustNewMatrixEmission(em))
	ll, err := model.LogLikelihood(obs)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(marginal-math.Exp(ll)) / math.Exp(ll); rel > 1e-9 {
		t.Fatalf("marginal %v vs hmm %v (rel %v)", marginal, math.Exp(ll), rel)
	}
}

func TestQuantifierEmissionValidation(t *testing.T) {
	ev := event.MustNewPresence(grid.MustRegionOf(3, 0), 1, 2)
	md := mustModel(t, NewHomogeneous(paperChain()), ev)
	q := NewQuantifier(md)
	if _, err := q.Check(mat.Vector{1, 1}); err == nil {
		t.Error("short emission accepted")
	}
	if err := q.Commit(mat.Vector{1, -1, 0}); err == nil {
		t.Error("negative emission accepted")
	}
	if err := q.Commit(mat.Vector{1, math.NaN(), 0}); err == nil {
		t.Error("NaN emission accepted")
	}
}

// TestPrivacyLossUninformative: a constant emission discloses nothing, so
// the realised privacy loss is 0.
func TestPrivacyLossUninformative(t *testing.T) {
	ev := event.MustNewPresence(grid.MustRegionOf(3, 0, 1), 1, 2)
	md := mustModel(t, NewHomogeneous(paperChain()), ev)
	pi := markov.Uniform(3)
	uniformCol := mat.Vector{1.0 / 3, 1.0 / 3, 1.0 / 3}
	loss, err := PrivacyLoss(md, pi, []mat.Vector{uniformCol, uniformCol, uniformCol})
	if err != nil {
		t.Fatal(err)
	}
	if loss > 1e-10 {
		t.Fatalf("loss = %v, want ~0", loss)
	}
}

// TestPrivacyLossRevealing: a near-deterministic emission observing the
// user inside the region during the window should leak heavily.
func TestPrivacyLossRevealing(t *testing.T) {
	sharp := mat.FromRows([][]float64{
		{0.998, 0.001, 0.001},
		{0.001, 0.998, 0.001},
		{0.001, 0.001, 0.998},
	})
	ev := event.MustNewPresence(grid.MustRegionOf(3, 0), 1, 1)
	md := mustModel(t, NewHomogeneous(paperChain()), ev)
	pi := markov.Uniform(3)
	// Observing u0 ≈ s1 (the region's most likely predecessor) and then
	// u1 ≈ s0 (inside the region) pins the event down almost surely.
	emissions := []mat.Vector{emissionColumn(sharp, 1), emissionColumn(sharp, 0)}
	loss, err := PrivacyLoss(md, pi, emissions)
	if err != nil {
		t.Fatal(err)
	}
	if loss < 2 {
		t.Fatalf("loss = %v, expected substantial leakage", loss)
	}
}

// TestPatternDropOut verifies PATTERN's non-sticky dynamics: mass that
// enters the first region but misses the second must not count.
func TestPatternDropOut(t *testing.T) {
	// Deterministic cycle 0→1→2→0. Pattern: region {0} at t=1 then {0} at
	// t=2 — impossible, because after visiting 0 the user must be at 1.
	c := markov.MustNewChain(mat.FromRows([][]float64{
		{0, 1, 0}, {0, 0, 1}, {1, 0, 0},
	}))
	regions := []*grid.Region{grid.MustRegionOf(3, 0), grid.MustRegionOf(3, 0)}
	ev := event.MustNewPattern(regions, 1)
	md := mustModel(t, NewHomogeneous(c), ev)
	prior, err := md.Prior(markov.Uniform(3))
	if err != nil {
		t.Fatal(err)
	}
	if prior > 1e-15 {
		t.Fatalf("impossible pattern has prior %v", prior)
	}
	// The feasible pattern {0} then {1} has prior = Pr(u1=0) = Pr(u0=2) = 1/3.
	regions2 := []*grid.Region{grid.MustRegionOf(3, 0), grid.MustRegionOf(3, 1)}
	ev2 := event.MustNewPattern(regions2, 1)
	md2 := mustModel(t, NewHomogeneous(c), ev2)
	prior2, _ := md2.Prior(markov.Uniform(3))
	if math.Abs(prior2-1.0/3) > 1e-12 {
		t.Fatalf("feasible pattern prior = %v, want 1/3", prior2)
	}
}

// TestStartZeroEvents checks the initial-mask handling when the event
// window includes timestamp 0.
func TestStartZeroEvents(t *testing.T) {
	c := paperChain()
	pi := mat.Vector{0.5, 0.2, 0.3}
	// PRESENCE at {s1} at t=0 only: prior = π₁.
	ev := event.MustNewPresence(grid.MustRegionOf(3, 1), 0, 0)
	md := mustModel(t, NewHomogeneous(c), ev)
	prior, _ := md.Prior(pi)
	if math.Abs(prior-0.2) > 1e-15 {
		t.Fatalf("prior = %v, want 0.2", prior)
	}
	// PRESENCE at {s1} during t=0..1: 1 - Pr(u0≠1, u1≠1).
	ev2 := event.MustNewPresence(grid.MustRegionOf(3, 1), 0, 1)
	md2 := mustModel(t, NewHomogeneous(c), ev2)
	prior2, _ := md2.Prior(pi)
	want := 1.0 - (0.5*(0.1+0.7) + 0.3*(0+0.9))
	if math.Abs(prior2-want) > 1e-12 {
		t.Fatalf("prior = %v, want %v", prior2, want)
	}
}

// TestTimeVaryingChain exercises the Varying provider end to end against a
// naive computation with per-step matrices.
func TestTimeVaryingChain(t *testing.T) {
	m1 := paperChain().Matrix()
	m2 := mat.FromRows([][]float64{
		{0.5, 0.5, 0},
		{0, 0.5, 0.5},
		{0.5, 0, 0.5},
	})
	v, err := NewVarying([]*mat.Matrix{m1, m2, m1})
	if err != nil {
		t.Fatal(err)
	}
	pi := mat.Vector{1, 0, 0}
	ev := event.MustNewPresence(grid.MustRegionOf(3, 2), 2, 2)
	md := mustModel(t, v, ev)
	prior, err := md.Prior(pi)
	if err != nil {
		t.Fatal(err)
	}
	// Pr(u2 = 2 | u0 = 0) under M1 then M2.
	p1 := m1.VecMul(pi)
	p2 := m2.VecMul(p1)
	if math.Abs(prior-p2[2]) > 1e-12 {
		t.Fatalf("prior = %v, want %v", prior, p2[2])
	}
}

// TestImpossibleObservations: a zero emission column drives the operators
// to zero; Check must then report all-zero b̃/c̃ rather than NaN.
func TestImpossibleObservations(t *testing.T) {
	ev := event.MustNewPresence(grid.MustRegionOf(3, 0), 1, 2)
	md := mustModel(t, NewHomogeneous(paperChain()), ev)
	q := NewQuantifier(md)
	zero := mat.Vector{0, 0, 0}
	if err := q.Commit(zero); err != nil {
		t.Fatal(err)
	}
	chk, err := q.Check(mat.Vector{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if chk.BTilde.AbsMax() != 0 || chk.CTilde.AbsMax() != 0 {
		t.Fatalf("expected zero vectors, got b=%v c=%v", chk.BTilde, chk.CTilde)
	}
}

// TestSparseEventsMatchNaive cross-validates the non-consecutive-time
// events (the paper's §II-B generalisation) through the two-possible-world
// quantifier.
func TestSparseEventsMatchNaive(t *testing.T) {
	c := paperChain()
	tp := NewHomogeneous(c)
	pi := mat.Vector{0.5, 0.2, 0.3}
	em := noisyEmission()
	emFn := func(tt, o, s int) float64 { return em.At(s, o) }

	sparsePresence, err := event.NewSparsePresence(grid.MustRegionOf(3, 0), []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	sparsePattern, err := event.NewSparsePattern([]int{1, 3},
		[]*grid.Region{grid.MustRegionOf(3, 0, 1), grid.MustRegionOf(3, 2)})
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range []event.Event{sparsePresence, sparsePattern} {
		md := mustModel(t, tp, ev)
		prior, err := md.Prior(pi)
		if err != nil {
			t.Fatal(err)
		}
		_, end := ev.Window()
		wantPrior, err := event.NaivePrior(c, pi, ev.Expr(), end+1)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(prior-wantPrior) > 1e-12 {
			t.Errorf("%v: prior %v vs naive %v", ev, prior, wantPrior)
		}
		obs := []int{0, 2, 1, 0, 2}
		emissions := make([]mat.Vector, len(obs))
		for i, o := range obs {
			emissions[i] = emissionColumn(em, o)
		}
		joint, _, err := JointAndMarginal(md, pi, emissions)
		if err != nil {
			t.Fatal(err)
		}
		horizon := end + 1
		if len(obs) > horizon {
			horizon = len(obs)
		}
		wantJoint, err := event.NaiveJoint(c, pi, ev.Expr(), obs, emFn, horizon)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(joint-wantJoint) > 1e-12 {
			t.Errorf("%v: joint %v vs naive %v", ev, joint, wantJoint)
		}
	}
}
