package world

import (
	"math"
	"testing"

	"priste/internal/event"
	"priste/internal/grid"
	"priste/internal/markov"
	"priste/internal/mat"
)

func fpModel(t *testing.T) *Model {
	t.Helper()
	g := grid.MustNew(3, 3, 1)
	chain, err := markov.GaussianChain(g, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	region, err := grid.RegionRect(g, 0, 0, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	md, err := NewModel(NewHomogeneous(chain), event.MustNewPresence(region, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	return md
}

// TestHistoryFingerprint: equal tag sequences agree, any differing tag
// (alpha, obs, or order) diverges, and plain Commit leaves the
// fingerprint untouched.
func TestHistoryFingerprint(t *testing.T) {
	md := fpModel(t)
	col := mat.NewVector(9)
	for i := range col {
		col[i] = 1.0 / 9
	}
	tag := func(alpha float64) uint64 { return math.Float64bits(alpha) }

	a, b := NewQuantifier(md), NewQuantifier(md)
	if a.HistoryFingerprint() != b.HistoryFingerprint() {
		t.Fatal("fresh quantifiers disagree")
	}
	for _, step := range []struct {
		alpha float64
		obs   int
	}{{1.0, 3}, {0.5, 7}, {0, 1}} {
		if err := a.CommitTagged(col, tag(step.alpha), step.obs); err != nil {
			t.Fatal(err)
		}
		if err := b.CommitTagged(col, tag(step.alpha), step.obs); err != nil {
			t.Fatal(err)
		}
	}
	if a.HistoryFingerprint() != b.HistoryFingerprint() {
		t.Fatal("identical histories produced different fingerprints")
	}

	c := NewQuantifier(md)
	if err := c.CommitTagged(col, tag(1.0), 4); err != nil { // different obs
		t.Fatal(err)
	}
	if c.HistoryFingerprint() == a.HistoryFingerprint() {
		t.Fatal("different histories share a fingerprint")
	}

	d := NewQuantifier(md)
	if err := d.CommitTagged(col, tag(0.25), 3); err != nil { // different alpha
		t.Fatal(err)
	}
	e := NewQuantifier(md)
	if err := e.CommitTagged(col, tag(1.0), 3); err != nil {
		t.Fatal(err)
	}
	if d.HistoryFingerprint() == e.HistoryFingerprint() {
		t.Fatal("different budgets share a fingerprint")
	}

	before := e.HistoryFingerprint()
	if err := e.Commit(col); err != nil {
		t.Fatal(err)
	}
	if e.HistoryFingerprint() != before {
		t.Fatal("plain Commit changed the fingerprint")
	}
}
