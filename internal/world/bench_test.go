package world

import (
	"fmt"
	"math/rand"
	"testing"

	"priste/internal/event"
	"priste/internal/grid"
	"priste/internal/lppm"
	"priste/internal/markov"
	"priste/internal/mat"
)

// benchSetup builds a w×w-grid quantifier over the paper's event shape.
func benchSetup(b *testing.B, side int) (*Model, []mat.Vector) {
	b.Helper()
	g := grid.MustNew(side, side, 1)
	chain, err := markov.GaussianChain(g, 1)
	if err != nil {
		b.Fatal(err)
	}
	region, err := grid.RegionRange(g.States(), 0, 9)
	if err != nil {
		b.Fatal(err)
	}
	ev := event.MustNewPresence(region, 3, 7)
	md, err := NewModel(NewHomogeneous(chain), ev)
	if err != nil {
		b.Fatal(err)
	}
	plm := lppm.NewPlanarLaplace(g)
	em, err := plm.Emission(1)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	cols := make([]mat.Vector, 20)
	for i := range cols {
		cols[i] = em.Col(rng.Intn(g.States()))
	}
	return md, cols
}

// BenchmarkQuantifierCommit measures one committed timestamp (two m×m
// multiplications) — the per-step cost of Algorithm 2's A/B updates.
func BenchmarkQuantifierCommit(b *testing.B) {
	for _, side := range []int{10, 20} {
		b.Run(gridName(side), func(b *testing.B) {
			md, cols := benchSetup(b, side)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := NewQuantifier(md)
				for _, c := range cols {
					if err := q.Commit(c); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkQuantifierCheck measures one candidate check (O(m²)) — the
// per-attempt cost before the QP solve.
func BenchmarkQuantifierCheck(b *testing.B) {
	for _, side := range []int{10, 20} {
		b.Run(gridName(side), func(b *testing.B) {
			md, cols := benchSetup(b, side)
			q := NewQuantifier(md)
			for _, c := range cols[:5] {
				if err := q.Commit(c); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := q.Check(cols[6]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// kernelBenchCase is one mobility-chain/kernel combination at m=400.
// "gauss/dense" is the structurally dense worst case on the adaptive
// dense dispatch (banded early, naive-skip on masked operators, blocked
// register-tiled on full ones); "gauss/oracle" is the same world on the
// naive reference kernels — their ratio is the adaptive speedup.
// "trunc/sparse" is the serving configuration (pristed -sparse-cutoff):
// negligible Gaussian tails dropped at chain build, the quantifier on
// CSR kernels; "trunc/dense" runs the same banded chain through the
// adaptive dense dispatch, where the small transition bandwidth keeps
// products banded for several commits. The walk pair compares the two
// kernel paths over one identical (bit-equivalent) sparse world.
type kernelBenchCase struct {
	name  string
	chain func(g *grid.Grid) (*markov.Chain, error)
	mode  KernelMode
}

func kernelBenchCases() []kernelBenchCase {
	gauss := func(g *grid.Grid) (*markov.Chain, error) { return markov.GaussianChain(g, 1) }
	trunc := func(g *grid.Grid) (*markov.Chain, error) {
		c, err := markov.GaussianChain(g, 1)
		if err != nil {
			return nil, err
		}
		return c.Sparsified(1e-4)
	}
	walk := func(g *grid.Grid) (*markov.Chain, error) { return markov.LazyRandomWalk(g, 0.4) }
	return []kernelBenchCase{
		{"chain=gauss/kernel=dense", gauss, KernelDense},
		{"chain=gauss/kernel=oracle", gauss, KernelOracle},
		{"chain=trunc/kernel=sparse", trunc, KernelSparse},
		{"chain=trunc/kernel=dense", trunc, KernelDense},
		{"chain=walk/kernel=dense", walk, KernelDense},
		{"chain=walk/kernel=sparse", walk, KernelSparse},
	}
}

// benchCaseSetup builds the case's 20×20 (m=400) model and 20
// planar-Laplace emission columns.
func benchCaseSetup(b *testing.B, bc kernelBenchCase) (*Model, []mat.Vector) {
	b.Helper()
	g := grid.MustNew(20, 20, 1)
	chain, err := bc.chain(g)
	if err != nil {
		b.Fatal(err)
	}
	region, err := grid.RegionRange(g.States(), 0, 9)
	if err != nil {
		b.Fatal(err)
	}
	ev := event.MustNewPresence(region, 3, 7)
	md, err := NewModelWithOptions(NewHomogeneous(chain), ev, ModelOptions{Kernel: bc.mode})
	if err != nil {
		b.Fatal(err)
	}
	plm := lppm.NewPlanarLaplace(g)
	em, err := plm.Emission(1)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	cols := make([]mat.Vector, 20)
	for i := range cols {
		cols[i] = em.Col(rng.Intn(g.States()))
	}
	return md, cols
}

// BenchmarkCommit measures the per-timestamp operator update (Theorem
// IV.1) at the paper's m=400 map: one iteration commits a 20-step
// trajectory crossing the window entry, the in-window updates and the
// backward phase. commits/sec is the per-timestamp rate.
func BenchmarkCommit(b *testing.B) {
	for _, bc := range kernelBenchCases() {
		b.Run(bc.name+"/m400", func(b *testing.B) {
			md, cols := benchCaseSetup(b, bc)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := NewQuantifier(md)
				for _, c := range cols {
					if err := q.Commit(c); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(float64(b.N)*float64(len(cols))/b.Elapsed().Seconds(), "commits/sec")
		})
	}
}

// BenchmarkCheck measures one mid-window candidate check at m=400 —
// the per-attempt cost of the LPPM candidate loop. The check path is
// zero-allocation: b̃/c̃ and every matvec intermediate live in
// quantifier-owned scratch.
func BenchmarkCheck(b *testing.B) {
	for _, bc := range kernelBenchCases() {
		b.Run(bc.name+"/m400", func(b *testing.B) {
			md, cols := benchCaseSetup(b, bc)
			q := NewQuantifier(md)
			for _, c := range cols[:5] {
				if err := q.Commit(c); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := q.Check(cols[6]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkShadowCheck measures the float32 shadow candidate check
// against the exact float64 check on identical warm mid-window state,
// over the structurally dense Gaussian world. The shadow matvecs move
// half the bytes, so the gap widens with m as the operators outgrow
// cache: ~6% at m=400, ~1.4× at m=900. fallback-rate is the fraction of
// iterations the shadow path could not serve (always 0 here — operators
// are warm and nonzero; the qp-margin fallback is a core-layer
// decision, reported by /statsz shadow_fallbacks).
func BenchmarkShadowCheck(b *testing.B) {
	for _, side := range []int{20, 30} {
		g := grid.MustNew(side, side, 1)
		m := g.States()
		chain, err := markov.GaussianChain(g, 1)
		if err != nil {
			b.Fatal(err)
		}
		region, err := grid.RegionRange(m, 0, 9)
		if err != nil {
			b.Fatal(err)
		}
		ev := event.MustNewPresence(region, 3, 7)
		md, err := NewModelWithOptions(NewHomogeneous(chain), ev, ModelOptions{Kernel: KernelDense, Shadow: true})
		if err != nil {
			b.Fatal(err)
		}
		plm := lppm.NewPlanarLaplace(g)
		em, err := plm.Emission(1)
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(1))
		cols := make([]mat.Vector, 20)
		for i := range cols {
			cols[i] = em.Col(rng.Intn(m))
		}
		q := NewQuantifier(md)
		for _, c := range cols[:5] {
			if err := q.Commit(c); err != nil {
				b.Fatal(err)
			}
		}
		if _, ok := q.ShadowCheck(cols[6]); !ok {
			b.Fatal("shadow path unavailable")
		}
		b.Run(fmt.Sprintf("path=exact/m%d", m), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				q.CheckTrusted(cols[6])
			}
		})
		b.Run(fmt.Sprintf("path=shadow/m%d", m), func(b *testing.B) {
			var fallbacks int
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := q.ShadowCheck(cols[6]); !ok {
					fallbacks++
				}
			}
			b.ReportMetric(float64(fallbacks)/float64(b.N), "fallback-rate")
		})
	}
}

// BenchmarkPrior measures Lemma III.1 (suffix products at model build).
func BenchmarkPrior(b *testing.B) {
	for _, side := range []int{10, 20} {
		b.Run(gridName(side), func(b *testing.B) {
			md, _ := benchSetup(b, side)
			pi := markov.Uniform(md.States())
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := md.Prior(pi); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func gridName(side int) string {
	if side >= 20 {
		return "20x20"
	}
	return "10x10"
}
