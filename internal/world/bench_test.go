package world

import (
	"math/rand"
	"testing"

	"priste/internal/event"
	"priste/internal/grid"
	"priste/internal/lppm"
	"priste/internal/markov"
	"priste/internal/mat"
)

// benchSetup builds a w×w-grid quantifier over the paper's event shape.
func benchSetup(b *testing.B, side int) (*Model, []mat.Vector) {
	b.Helper()
	g := grid.MustNew(side, side, 1)
	chain, err := markov.GaussianChain(g, 1)
	if err != nil {
		b.Fatal(err)
	}
	region, err := grid.RegionRange(g.States(), 0, 9)
	if err != nil {
		b.Fatal(err)
	}
	ev := event.MustNewPresence(region, 3, 7)
	md, err := NewModel(NewHomogeneous(chain), ev)
	if err != nil {
		b.Fatal(err)
	}
	plm := lppm.NewPlanarLaplace(g)
	em, err := plm.Emission(1)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	cols := make([]mat.Vector, 20)
	for i := range cols {
		cols[i] = em.Col(rng.Intn(g.States()))
	}
	return md, cols
}

// BenchmarkQuantifierCommit measures one committed timestamp (two m×m
// multiplications) — the per-step cost of Algorithm 2's A/B updates.
func BenchmarkQuantifierCommit(b *testing.B) {
	for _, side := range []int{10, 20} {
		b.Run(gridName(side), func(b *testing.B) {
			md, cols := benchSetup(b, side)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := NewQuantifier(md)
				for _, c := range cols {
					if err := q.Commit(c); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkQuantifierCheck measures one candidate check (O(m²)) — the
// per-attempt cost before the QP solve.
func BenchmarkQuantifierCheck(b *testing.B) {
	for _, side := range []int{10, 20} {
		b.Run(gridName(side), func(b *testing.B) {
			md, cols := benchSetup(b, side)
			q := NewQuantifier(md)
			for _, c := range cols[:5] {
				if err := q.Commit(c); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := q.Check(cols[6]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// kernelBenchCase is one mobility-chain/kernel combination at m=400.
// "gauss/dense" is the pre-PR serving state: the exact Gaussian kernel
// has no structural zeros, so every commit pays the full O(m³) dense
// update. "trunc/sparse" is the new serving configuration (pristed
// -sparse-cutoff): negligible Gaussian tails dropped at chain build, the
// quantifier on CSR kernels. The walk pair compares the two kernel
// paths over one identical (bit-equivalent) sparse world.
type kernelBenchCase struct {
	name  string
	chain func(g *grid.Grid) (*markov.Chain, error)
	mode  KernelMode
}

func kernelBenchCases() []kernelBenchCase {
	gauss := func(g *grid.Grid) (*markov.Chain, error) { return markov.GaussianChain(g, 1) }
	trunc := func(g *grid.Grid) (*markov.Chain, error) {
		c, err := markov.GaussianChain(g, 1)
		if err != nil {
			return nil, err
		}
		return c.Sparsified(1e-4)
	}
	walk := func(g *grid.Grid) (*markov.Chain, error) { return markov.LazyRandomWalk(g, 0.4) }
	return []kernelBenchCase{
		{"chain=gauss/kernel=dense", gauss, KernelDense},
		{"chain=trunc/kernel=sparse", trunc, KernelSparse},
		{"chain=walk/kernel=dense", walk, KernelDense},
		{"chain=walk/kernel=sparse", walk, KernelSparse},
	}
}

// benchCaseSetup builds the case's 20×20 (m=400) model and 20
// planar-Laplace emission columns.
func benchCaseSetup(b *testing.B, bc kernelBenchCase) (*Model, []mat.Vector) {
	b.Helper()
	g := grid.MustNew(20, 20, 1)
	chain, err := bc.chain(g)
	if err != nil {
		b.Fatal(err)
	}
	region, err := grid.RegionRange(g.States(), 0, 9)
	if err != nil {
		b.Fatal(err)
	}
	ev := event.MustNewPresence(region, 3, 7)
	md, err := NewModelWithOptions(NewHomogeneous(chain), ev, ModelOptions{Kernel: bc.mode})
	if err != nil {
		b.Fatal(err)
	}
	plm := lppm.NewPlanarLaplace(g)
	em, err := plm.Emission(1)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	cols := make([]mat.Vector, 20)
	for i := range cols {
		cols[i] = em.Col(rng.Intn(g.States()))
	}
	return md, cols
}

// BenchmarkCommit measures the per-timestamp operator update (Theorem
// IV.1) at the paper's m=400 map: one iteration commits a 20-step
// trajectory crossing the window entry, the in-window updates and the
// backward phase. commits/sec is the per-timestamp rate.
func BenchmarkCommit(b *testing.B) {
	for _, bc := range kernelBenchCases() {
		b.Run(bc.name+"/m400", func(b *testing.B) {
			md, cols := benchCaseSetup(b, bc)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := NewQuantifier(md)
				for _, c := range cols {
					if err := q.Commit(c); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(float64(b.N)*float64(len(cols))/b.Elapsed().Seconds(), "commits/sec")
		})
	}
}

// BenchmarkCheck measures one mid-window candidate check at m=400 —
// the per-attempt cost of the LPPM candidate loop. The check path is
// zero-allocation: b̃/c̃ and every matvec intermediate live in
// quantifier-owned scratch.
func BenchmarkCheck(b *testing.B) {
	for _, bc := range kernelBenchCases() {
		b.Run(bc.name+"/m400", func(b *testing.B) {
			md, cols := benchCaseSetup(b, bc)
			q := NewQuantifier(md)
			for _, c := range cols[:5] {
				if err := q.Commit(c); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := q.Check(cols[6]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPrior measures Lemma III.1 (suffix products at model build).
func BenchmarkPrior(b *testing.B) {
	for _, side := range []int{10, 20} {
		b.Run(gridName(side), func(b *testing.B) {
			md, _ := benchSetup(b, side)
			pi := markov.Uniform(md.States())
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := md.Prior(pi); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func gridName(side int) string {
	if side >= 20 {
		return "20x20"
	}
	return "10x10"
}
