package world

import (
	"math/rand"
	"testing"

	"priste/internal/event"
	"priste/internal/grid"
	"priste/internal/lppm"
	"priste/internal/markov"
	"priste/internal/mat"
)

// benchSetup builds a w×w-grid quantifier over the paper's event shape.
func benchSetup(b *testing.B, side int) (*Model, []mat.Vector) {
	b.Helper()
	g := grid.MustNew(side, side, 1)
	chain, err := markov.GaussianChain(g, 1)
	if err != nil {
		b.Fatal(err)
	}
	region, err := grid.RegionRange(g.States(), 0, 9)
	if err != nil {
		b.Fatal(err)
	}
	ev := event.MustNewPresence(region, 3, 7)
	md, err := NewModel(NewHomogeneous(chain), ev)
	if err != nil {
		b.Fatal(err)
	}
	plm := lppm.NewPlanarLaplace(g)
	em, err := plm.Emission(1)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	cols := make([]mat.Vector, 20)
	for i := range cols {
		cols[i] = em.Col(rng.Intn(g.States()))
	}
	return md, cols
}

// BenchmarkQuantifierCommit measures one committed timestamp (two m×m
// multiplications) — the per-step cost of Algorithm 2's A/B updates.
func BenchmarkQuantifierCommit(b *testing.B) {
	for _, side := range []int{10, 20} {
		b.Run(gridName(side), func(b *testing.B) {
			md, cols := benchSetup(b, side)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := NewQuantifier(md)
				for _, c := range cols {
					if err := q.Commit(c); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkQuantifierCheck measures one candidate check (O(m²)) — the
// per-attempt cost before the QP solve.
func BenchmarkQuantifierCheck(b *testing.B) {
	for _, side := range []int{10, 20} {
		b.Run(gridName(side), func(b *testing.B) {
			md, cols := benchSetup(b, side)
			q := NewQuantifier(md)
			for _, c := range cols[:5] {
				if err := q.Commit(c); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := q.Check(cols[6]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPrior measures Lemma III.1 (suffix products at model build).
func BenchmarkPrior(b *testing.B) {
	for _, side := range []int{10, 20} {
		b.Run(gridName(side), func(b *testing.B) {
			md, _ := benchSetup(b, side)
			pi := markov.Uniform(md.States())
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := md.Prior(pi); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func gridName(side int) string {
	if side >= 20 {
		return "20x20"
	}
	return "10x10"
}
