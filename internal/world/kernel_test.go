package world

import (
	"math/rand"
	"testing"

	"priste/internal/event"
	"priste/internal/grid"
	"priste/internal/markov"
	"priste/internal/mat"
)

// walkModel builds a model over a structurally sparse mobility chain
// (lazy random walk: ≤5 nonzeros per row) with the given kernel options.
func walkModel(t *testing.T, side int, opts ModelOptions) *Model {
	t.Helper()
	g := grid.MustNew(side, side, 1)
	chain, err := markov.LazyRandomWalk(g, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	region, err := grid.RegionRange(g.States(), 0, side-1)
	if err != nil {
		t.Fatal(err)
	}
	ev := event.MustNewPresence(region, 2, 4)
	md, err := NewModelWithOptions(NewHomogeneous(chain), ev, opts)
	if err != nil {
		t.Fatal(err)
	}
	return md
}

func TestKernelAutoSelection(t *testing.T) {
	g := grid.MustNew(6, 6, 1)
	region, err := grid.RegionRange(g.States(), 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	ev := event.MustNewPresence(region, 2, 4)

	// A lazy random walk is ~14% dense on a 6×6 grid: auto goes sparse.
	walk, err := markov.LazyRandomWalk(g, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	md, err := NewModel(NewHomogeneous(walk), ev)
	if err != nil {
		t.Fatal(err)
	}
	ks := md.KernelStats()
	if ks.Sparse != 1 || ks.Dense != 0 {
		t.Fatalf("random walk compiled %+v, want 1 sparse kernel", ks)
	}
	if ks.NNZ == 0 || ks.Density <= 0 || ks.Density > DefaultSparseThreshold {
		t.Fatalf("implausible sparse stats %+v", ks)
	}

	// A Gaussian kernel has no exact zeros: auto stays dense.
	gauss, err := markov.GaussianChain(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	md, err = NewModel(NewHomogeneous(gauss), ev)
	if err != nil {
		t.Fatal(err)
	}
	if ks := md.KernelStats(); ks.Dense != 1 || ks.Sparse != 0 {
		t.Fatalf("gaussian chain compiled %+v, want 1 dense kernel", ks)
	}

	// Forcing overrides the density decision both ways.
	md, err = NewModelWithOptions(NewHomogeneous(gauss), ev, ModelOptions{Kernel: KernelSparse})
	if err != nil {
		t.Fatal(err)
	}
	if ks := md.KernelStats(); ks.Sparse != 1 {
		t.Fatalf("forced sparse compiled %+v", ks)
	}
	md, err = NewModelWithOptions(NewHomogeneous(walk), ev, ModelOptions{Kernel: KernelDense})
	if err != nil {
		t.Fatal(err)
	}
	if ks := md.KernelStats(); ks.Dense != 1 {
		t.Fatalf("forced dense compiled %+v", ks)
	}
}

// TestKernelPathsBitIdentical drives a forced-dense and a forced-sparse
// quantifier through the same long sequence — crossing the window entry,
// the in-window updates and the backward phase — and requires exact
// (bitwise) agreement of every Check, Current and LogScale along the
// way. This is the property that lets release sequences, fingerprints
// and restart replay move freely between the kernels.
func TestKernelPathsBitIdentical(t *testing.T) {
	const side = 6
	dense := walkModel(t, side, ModelOptions{Kernel: KernelDense})
	sparse := walkModel(t, side, ModelOptions{Kernel: KernelSparse})

	// The compiled suffix vectors must already agree exactly.
	for tt := 0; tt <= dense.end; tt++ {
		sameBits(t, "vF", dense.vF[tt], sparse.vF[tt])
		sameBits(t, "vT", dense.vT[tt], sparse.vT[tt])
	}
	sameBits(t, "atilde", dense.ATilde(), sparse.ATilde())

	qd := NewQuantifier(dense)
	qs := NewQuantifier(sparse)
	rng := rand.New(rand.NewSource(7))
	m := side * side
	for step := 0; step < 12; step++ { // window end 4: half the steps run the backward phase
		col := randomEmissionColumn(rng, m)
		cd, err := qd.Check(col)
		if err != nil {
			t.Fatal(err)
		}
		cs, err := qs.Check(col)
		if err != nil {
			t.Fatal(err)
		}
		sameBits(t, "check b", cd.BTilde, cs.BTilde)
		sameBits(t, "check c", cd.CTilde, cs.CTilde)
		if err := qd.Commit(col); err != nil {
			t.Fatal(err)
		}
		if err := qs.Commit(col); err != nil {
			t.Fatal(err)
		}
		if qd.LogScale() != qs.LogScale() {
			t.Fatalf("step %d: logScale %v vs %v", step, qd.LogScale(), qs.LogScale())
		}
		curD, curS := qd.Current(), qs.Current()
		sameBits(t, "current b", curD.BTilde, curS.BTilde)
		sameBits(t, "current c", curD.CTilde, curS.CTilde)
	}
}

// TestCheckCurrentBufferOwnership pins the documented scratch contract:
// a Check result survives Commit and Current (separate buffer pairs) and
// is only overwritten by the next Check.
func TestCheckCurrentBufferOwnership(t *testing.T) {
	md := walkModel(t, 4, ModelOptions{})
	q := NewQuantifier(md)
	rng := rand.New(rand.NewSource(3))
	colA := randomEmissionColumn(rng, 16)
	colB := randomEmissionColumn(rng, 16)

	chk, err := q.Check(colA)
	if err != nil {
		t.Fatal(err)
	}
	heldB := chk.BTilde.Clone()
	heldC := chk.CTilde.Clone()
	if err := q.Commit(colA); err != nil {
		t.Fatal(err)
	}
	_ = q.Current()
	sameBits(t, "b after Commit+Current", heldB, chk.BTilde)
	sameBits(t, "c after Commit+Current", heldC, chk.CTilde)

	if _, err := q.Check(colB); err != nil {
		t.Fatal(err)
	}
	if chk.BTilde.EqualApprox(heldB, 0) {
		t.Fatal("next Check did not reuse the scratch buffers")
	}
}

// opaqueProvider hides DistinctMatrices, exercising the probe fallback.
type opaqueProvider struct{ tp TransitionProvider }

func (o opaqueProvider) States() int              { return o.tp.States() }
func (o opaqueProvider) Matrix(t int) *mat.Matrix { return o.tp.Matrix(t) }

// TestKernelProbeFallback: a provider without DistinctMatrices must
// still compile its kernels (via the probe) and agree exactly with the
// lister path, including for a time-varying chain.
func TestKernelProbeFallback(t *testing.T) {
	g := grid.MustNew(4, 4, 1)
	walk, err := markov.LazyRandomWalk(g, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	walk2, err := markov.LazyRandomWalk(g, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	vary, err := NewVarying([]*mat.Matrix{walk.Matrix(), walk2.Matrix()})
	if err != nil {
		t.Fatal(err)
	}
	region, err := grid.RegionRange(16, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	ev := event.MustNewPresence(region, 1, 3)

	ref, err := NewModel(vary, ev)
	if err != nil {
		t.Fatal(err)
	}
	probed, err := NewModel(opaqueProvider{vary}, ev)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := probed.KernelStats(), ref.KernelStats(); got != want {
		t.Fatalf("probe compiled %+v, lister %+v", got, want)
	}

	qr, qp2 := NewQuantifier(ref), NewQuantifier(probed)
	rng := rand.New(rand.NewSource(11))
	for step := 0; step < 8; step++ {
		col := randomEmissionColumn(rng, 16)
		if err := qr.Commit(col); err != nil {
			t.Fatal(err)
		}
		if err := qp2.Commit(col); err != nil {
			t.Fatal(err)
		}
		cr, cp := qr.Current(), qp2.Current()
		sameBits(t, "probe current b", cr.BTilde, cp.BTilde)
		sameBits(t, "probe current c", cr.CTilde, cp.CTilde)
	}
}

// freshMatrixProvider returns a new matrix pointer on every call — the
// pathological shape that defeats both the lister and the probe, so
// every kernel() lookup misses and compiles call-private (with the
// transpose deferred to the backward phase).
type freshMatrixProvider struct{ m *mat.Matrix }

func (p freshMatrixProvider) States() int            { return p.m.Rows }
func (p freshMatrixProvider) Matrix(int) *mat.Matrix { return p.m.Clone() }

// TestKernelMissCompilesLazily: unstable matrix pointers stay correct —
// including the backward phase, which materialises the transpose on a
// call-private kernel — and agree exactly with the cached path.
func TestKernelMissCompilesLazily(t *testing.T) {
	g := grid.MustNew(4, 4, 1)
	walk, err := markov.LazyRandomWalk(g, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	region, err := grid.RegionRange(16, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	ev := event.MustNewPresence(region, 1, 2)
	ref, err := NewModel(NewHomogeneous(walk), ev)
	if err != nil {
		t.Fatal(err)
	}
	missy, err := NewModel(freshMatrixProvider{walk.Matrix()}, ev)
	if err != nil {
		t.Fatal(err)
	}
	qr, qm := NewQuantifier(ref), NewQuantifier(missy)
	rng := rand.New(rand.NewSource(5))
	for step := 0; step < 7; step++ { // end=2: steps 3.. run the backward phase
		col := randomEmissionColumn(rng, 16)
		if err := qr.Commit(col); err != nil {
			t.Fatal(err)
		}
		if err := qm.Commit(col); err != nil {
			t.Fatal(err)
		}
		cr, cm := qr.Current(), qm.Current()
		sameBits(t, "miss current b", cr.BTilde, cm.BTilde)
		sameBits(t, "miss current c", cr.CTilde, cm.CTilde)
	}
}

func sameBits(t *testing.T, label string, got, want mat.Vector) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: len %d vs %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: [%d] = %v, want %v", label, i, got[i], want[i])
		}
	}
}
