package par

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// TestTileOf checks the tiling invariants the determinism argument rests
// on: boundaries are a pure function of n, every index lands in exactly
// one tile, and the tile count never exceeds maxTiles.
func TestTileOf(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 63, 64, 65, 100, 127, 128, 400, 401, 4096, 9999} {
		tile, tiles := tileOf(n)
		if tiles > maxTiles {
			t.Errorf("n=%d: tiles=%d exceeds maxTiles=%d", n, tiles, maxTiles)
		}
		if tile < 1 || tiles < 1 {
			t.Fatalf("n=%d: degenerate tiling tile=%d tiles=%d", n, tile, tiles)
		}
		// The last tile must be non-empty and the tiles must cover [0,n).
		covered := 0
		for i := 0; i < tiles; i++ {
			lo := i * tile
			hi := lo + tile
			if hi > n {
				hi = n
			}
			if hi <= lo {
				t.Errorf("n=%d: empty tile %d of %d", n, i, tiles)
			}
			covered += hi - lo
		}
		if covered != n {
			t.Errorf("n=%d: tiles cover %d indices", n, covered)
		}
	}
}

// TestForCoversAllIndices runs For at several widths and checks every
// index is visited exactly once — one accumulation chain per output.
func TestForCoversAllIndices(t *testing.T) {
	for _, width := range []int{1, 2, 4, 7} {
		for _, n := range []int{1, 5, 64, 65, 400, 1000} {
			p := NewPool()
			p.SetParallelism(width)
			counts := make([]int32, n)
			p.For(n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&counts[i], 1)
				}
			})
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("width=%d n=%d: index %d visited %d times", width, n, i, c)
				}
			}
		}
	}
}

// TestForMax checks the tile-max reduction against a serial scan.
func TestForMax(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, width := range []int{1, 3, 8} {
		p := NewPool()
		p.SetParallelism(width)
		n := 513
		vals := make([]float64, n)
		want := 0.0
		for i := range vals {
			vals[i] = rng.NormFloat64()
			if vals[i] > want {
				want = vals[i]
			}
		}
		got := p.ForMax(n, func(lo, hi int) float64 {
			best := 0.0
			for i := lo; i < hi; i++ {
				if vals[i] > best {
					best = vals[i]
				}
			}
			return best
		})
		if got != want {
			t.Errorf("width=%d: ForMax=%v want %v", width, got, want)
		}
	}
	p := NewPool()
	if v := p.ForMax(0, func(lo, hi int) float64 { return 99 }); v != 0 {
		t.Errorf("ForMax(0)=%v want 0", v)
	}
}

// TestConcurrentFor drives many concurrent submitters through one pool —
// the 64-sessions-one-budget shape — and checks isolation of their tasks.
func TestConcurrentFor(t *testing.T) {
	p := NewPool()
	p.SetParallelism(4)
	const callers = 16
	var wg sync.WaitGroup
	errs := make(chan string, callers)
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			n := 100 + c*17
			counts := make([]int32, n)
			for rep := 0; rep < 20; rep++ {
				for i := range counts {
					counts[i] = 0
				}
				p.For(n, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&counts[i], 1)
					}
				})
				for i, v := range counts {
					if v != 1 {
						errs <- "caller saw index visited != once"
						_ = i
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestParallelGate checks every serial-dispatch condition: width 1,
// single tile, flops below cutoff, and external load covering the width.
func TestParallelGate(t *testing.T) {
	p := NewPool()
	p.SetParallelism(1)
	if p.Parallel(100, 1<<30, 1) {
		t.Error("width 1 should stay serial")
	}
	p.SetParallelism(4)
	if p.Parallel(1, 1<<30, 1) {
		t.Error("single-row kernels should stay serial")
	}
	if p.Parallel(100, 10, 1000) {
		t.Error("below-cutoff kernels should stay serial")
	}
	if !p.Parallel(100, 1000, 1000) {
		t.Error("at-cutoff kernels should dispatch")
	}
	p.AddExternal(4)
	if p.Parallel(100, 1<<30, 1) {
		t.Error("external load covering the width should force serial")
	}
	p.AddExternal(-1)
	if !p.Parallel(100, 1<<30, 1) {
		t.Error("external load below the width should allow dispatch")
	}
	p.AddExternal(-3)

	st := p.Stats()
	if st.SerialDispatch != 4 {
		t.Errorf("serial dispatches = %d, want 4", st.SerialDispatch)
	}
}

// TestCutoffOverride checks the test hook used by the equivalence tests
// to force parallel dispatch on tiny matrices.
func TestCutoffOverride(t *testing.T) {
	p := NewPool()
	p.SetParallelism(4)
	if p.Parallel(8, 10, 1<<40) {
		t.Fatal("tiny kernel dispatched without override")
	}
	p.SetCutoffOverride(1)
	if !p.Parallel(8, 10, 1<<40) {
		t.Error("override should replace the caller cutoff")
	}
	p.SetCutoffOverride(0)
	if p.Parallel(8, 10, 1<<40) {
		t.Error("clearing the override should restore the caller cutoff")
	}
}

// TestStatsCounters checks the dispatch/steal accounting surfaced at
// /statsz.
func TestStatsCounters(t *testing.T) {
	p := NewPool()
	p.SetParallelism(4)
	if st := p.Stats(); st.Parallelism != 4 {
		t.Errorf("Parallelism = %d, want 4", st.Parallelism)
	}
	for rep := 0; rep < 50; rep++ {
		p.For(256, func(lo, hi int) {
			s := 0.0
			for i := lo; i < hi; i++ {
				s += float64(i)
			}
			_ = s
		})
	}
	st := p.Stats()
	if st.ParallelDispatch != 50 {
		t.Errorf("ParallelDispatch = %d, want 50", st.ParallelDispatch)
	}
	if st.Workers < 0 || st.Workers > maxWorkers {
		t.Errorf("Workers = %d out of range", st.Workers)
	}
	if st.Steals < 0 {
		t.Errorf("Steals = %d negative", st.Steals)
	}
	if st.Busy != 0 {
		t.Errorf("Busy = %d after all joins", st.Busy)
	}
}

// TestSetParallelismClamp checks negative widths clamp to auto.
func TestSetParallelismClamp(t *testing.T) {
	p := NewPool()
	p.SetParallelism(-3)
	if w := p.Parallelism(); w < 1 {
		t.Errorf("Parallelism = %d after negative set, want >= 1 (GOMAXPROCS)", w)
	}
}

// TestForZero checks the degenerate inputs.
func TestForZero(t *testing.T) {
	p := NewPool()
	ran := false
	p.For(0, func(lo, hi int) { ran = true })
	p.For(-5, func(lo, hi int) { ran = true })
	if ran {
		t.Error("For on empty range ran its body")
	}
}
