// Package par is the process-global, capacity-bounded worker pool behind
// every tile-parallel kernel in the engine.
//
// One pool is shared by all sessions and all kernels: 64 concurrent
// commits contend for one CPU budget (GOMAXPROCS cores by default)
// instead of spawning 64×N goroutines. The pool's fork-join primitive,
// For(n, body), splits [0,n) into tiles whose boundaries are a fixed
// function of n alone — never of the worker count — and hands each tile
// to exactly one executor. Kernels built on it therefore produce
// bit-identical results at any parallelism: every output entry keeps a
// single accumulation chain, evaluated in the same order the serial
// kernel uses, so fingerprints, replay, and cross-instance migration are
// preserved whether a product ran on 1 core or 64.
//
// # Scheduling model
//
// The submitting goroutine is always an executor: For publishes the task,
// then claims tiles itself until none remain, so a For call never blocks
// waiting for pool capacity and degrades gracefully to the serial loop
// under load. Helper workers are parked goroutines (at most width−1 per
// task, at most maxWorkers overall, spawned lazily and kept parked when
// idle) that steal tiles from published tasks via an atomic claim
// counter — the "work-stealing" here is tile-granular self-scheduling,
// which load-balances uneven tiles without ever splitting one.
//
// # One CPU budget
//
// Intra-op parallelism (tiles of one product) and inter-session
// parallelism (the server pool draining many sessions) share the same
// budget. The server registers its busy drain workers via AddExternal;
// Parallel() refuses intra-op dispatch while that external load already
// covers the pool width, so a saturated server runs every kernel serially
// (the cores are busy with other sessions) while a lone interactive
// session fans its products out across the idle cores.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

const (
	// maxTiles bounds the tile count of one For call. Tile boundaries
	// depend only on n (never on worker count), so any n > maxTiles
	// splits into exactly maxTiles near-equal contiguous ranges —
	// enough granularity to balance 64 ways, small enough that the
	// claim counter isn't contended.
	maxTiles = 64
	// maxWorkers caps helper goroutines spawned over the pool's
	// lifetime; parked workers are reused, never released.
	maxWorkers = 256
)

// tileOf returns the tile size and tile count for an n-element range.
// Pure function of n: fixed boundaries are what make parallel kernels
// bit-identical to serial ones at any worker count.
func tileOf(n int) (tile, tiles int) {
	tiles = n
	if tiles > maxTiles {
		tiles = maxTiles
	}
	tile = (n + tiles - 1) / tiles
	tiles = (n + tile - 1) / tile
	return tile, tiles
}

// task is one published For/ForMax call.
type task struct {
	body    func(lo, hi int)
	bodyMax func(lo, hi int) float64
	maxes   []float64 // per-tile maxima (ForMax only), reduced after join
	n, tile int
	tiles   int64
	next    atomic.Int64 // tile claim counter
	helpers atomic.Int64 // remaining helper slots (bounds CPU per task)
	wg      sync.WaitGroup
}

// runTile executes tile i ([i·tile, min(n,(i+1)·tile))).
func (t *task) runTile(i int64) {
	lo := int(i) * t.tile
	hi := lo + t.tile
	if hi > t.n {
		hi = t.n
	}
	if t.bodyMax != nil {
		t.maxes[i] = t.bodyMax(lo, hi)
	} else {
		t.body(lo, hi)
	}
	t.wg.Done()
}

// Pool is a bounded fork-join worker pool. The zero value is not ready;
// use NewPool or the process-global Default.
type Pool struct {
	mu      sync.Mutex
	cond    *sync.Cond
	tasks   []*task // published, possibly not yet exhausted
	spawned int     // helper goroutines started (grow-only, parked when idle)

	configured     atomic.Int64 // SetParallelism; 0 = track GOMAXPROCS
	cutoffOverride atomic.Int64 // test hook; >0 replaces caller cutoffs
	external       atomic.Int64 // inter-session load sharing the budget

	busy        atomic.Int64 // helpers currently executing tiles
	parallelFor atomic.Int64 // For/ForMax dispatches
	serialFor   atomic.Int64 // Parallel()==false decisions
	steals      atomic.Int64 // tiles executed by helpers (not the submitter)
}

// NewPool returns an empty pool. Library code should use Default; a
// private pool is for tests that need isolated counters.
func NewPool() *Pool {
	p := &Pool{}
	p.cond = sync.NewCond(&p.mu)
	return p
}

var std = NewPool()

// Default returns the process-global pool shared by every kernel.
func Default() *Pool { return std }

// SetParallelism fixes the pool width to n (the `-parallel` flag /
// core.Config.Parallelism). n <= 0 restores the default: track
// runtime.GOMAXPROCS dynamically. Safe to call concurrently; takes
// effect on the next dispatch decision.
func (p *Pool) SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	p.configured.Store(int64(n))
}

// Parallelism returns the effective pool width: the configured value, or
// GOMAXPROCS when unconfigured. Read per call, so `go test -cpu 1,4`
// exercises both widths within one process.
func (p *Pool) Parallelism() int {
	if c := p.configured.Load(); c > 0 {
		return int(c)
	}
	return runtime.GOMAXPROCS(0)
}

// SetCutoffOverride replaces every caller-supplied flops cutoff with v
// while v > 0 (0 restores caller cutoffs). Test hook: equivalence and
// race tests force parallel dispatch on matrices far below the
// production cutoffs.
func (p *Pool) SetCutoffOverride(v int64) { p.cutoffOverride.Store(v) }

// AddExternal registers delta units of inter-session load (server drain
// workers busy committing other sessions' steps). While the external
// load covers the pool width, Parallel reports false and kernels stay
// serial — the CPU budget is already spent on session-level parallelism.
func (p *Pool) AddExternal(delta int) { p.external.Add(int64(delta)) }

// Parallel reports whether an n-tile kernel costing flops multiply-adds
// should dispatch through For/ForMax. Callers branch on it *before*
// materialising the tile closure, keeping the serial fast path
// allocation-free. A false return counts one serial dispatch.
func (p *Pool) Parallel(n int, flops, cutoff int64) bool {
	if o := p.cutoffOverride.Load(); o > 0 {
		cutoff = o
	}
	w := p.Parallelism()
	if w <= 1 || n <= 1 || flops < cutoff || p.external.Load() >= int64(w) {
		p.serialFor.Add(1)
		return false
	}
	return true
}

// For runs body over [0,n) split into fixed tiles, the submitting
// goroutine participating, and returns when every tile has completed.
// Each index lands in exactly one tile and each tile runs exactly once,
// so row-wise kernels keep one accumulation chain per output entry.
func (p *Pool) For(n int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	p.dispatch(&task{body: body}, n)
}

// ForMax is For for tile bodies that also reduce a maximum (e.g. the
// largest absolute entry written); it returns the max over tiles. Max is
// exact under any evaluation order, so the result is split-independent.
func (p *Pool) ForMax(n int, body func(lo, hi int) float64) float64 {
	if n <= 0 {
		return 0
	}
	_, tiles := tileOf(n)
	t := &task{bodyMax: body, maxes: make([]float64, tiles)}
	p.dispatch(t, n)
	best := t.maxes[0]
	for _, v := range t.maxes[1:] {
		if v > best {
			best = v
		}
	}
	return best
}

func (p *Pool) dispatch(t *task, n int) {
	p.parallelFor.Add(1)
	t.n = n
	t.tile, _ = tileOf(n)
	tiles := (n + t.tile - 1) / t.tile
	t.tiles = int64(tiles)
	t.helpers.Store(int64(p.Parallelism() - 1))
	t.wg.Add(tiles)
	p.publish(t)
	// The submitter is an executor too: claim tiles until none remain,
	// then join on the stragglers helpers still hold.
	for {
		i := t.next.Add(1) - 1
		if i >= t.tiles {
			break
		}
		t.runTile(i)
	}
	t.wg.Wait()
	p.retire(t)
}

// publish makes t stealable and tops the worker complement up to the
// task's helper budget (bounded by maxWorkers; idle parked workers are
// reused first).
func (p *Pool) publish(t *task) {
	need := int(t.helpers.Load())
	if int(t.tiles)-1 < need {
		need = int(t.tiles) - 1
	}
	p.mu.Lock()
	p.tasks = append(p.tasks, t)
	for p.spawned < need && p.spawned < maxWorkers {
		p.spawned++
		go p.worker()
	}
	p.mu.Unlock()
	p.cond.Broadcast()
}

// retire unpublishes t after the submitter has joined all tiles.
func (p *Pool) retire(t *task) {
	p.mu.Lock()
	for i, x := range p.tasks {
		if x == t {
			last := len(p.tasks) - 1
			p.tasks[i] = p.tasks[last]
			p.tasks[last] = nil
			p.tasks = p.tasks[:last]
			break
		}
	}
	p.mu.Unlock()
}

// claimLocked picks a published task with unclaimed tiles and a free
// helper slot, consuming the slot. Caller holds p.mu.
func (p *Pool) claimLocked() *task {
	for _, t := range p.tasks {
		if t.next.Load() >= t.tiles {
			continue
		}
		if t.helpers.Add(-1) >= 0 {
			return t
		}
		t.helpers.Add(1) // full helper complement already working on t
	}
	return nil
}

// worker is a parked helper: it steals tiles from published tasks and
// sleeps on the condition variable between tasks. Workers live for the
// process lifetime — a parked goroutine costs only its stack.
func (p *Pool) worker() {
	p.mu.Lock()
	for {
		t := p.claimLocked()
		if t == nil {
			p.cond.Wait()
			continue
		}
		p.mu.Unlock()
		p.busy.Add(1)
		for {
			i := t.next.Add(1) - 1
			if i >= t.tiles {
				break
			}
			p.steals.Add(1)
			t.runTile(i)
		}
		t.helpers.Add(1)
		p.busy.Add(-1)
		p.mu.Lock()
	}
}

// Stats is a point-in-time snapshot of the pool's counters, surfaced in
// /statsz ("pool" section) and `pristectl stats -kernels`.
type Stats struct {
	// Parallelism is the effective width (configured or GOMAXPROCS).
	Parallelism int
	// Workers is the number of helper goroutines ever spawned (parked
	// when idle, never released).
	Workers int
	// Busy is the number of helpers executing tiles right now.
	Busy int64
	// External is the registered inter-session load (busy server drain
	// workers sharing the CPU budget).
	External int64
	// ParallelDispatch counts For/ForMax calls; SerialDispatch counts
	// Parallel()==false decisions (kernel ran its serial loop).
	ParallelDispatch int64
	SerialDispatch   int64
	// Steals counts tiles executed by helpers rather than the
	// submitting goroutine.
	Steals int64
}

// Stats returns a snapshot of the pool counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	w := p.spawned
	p.mu.Unlock()
	return Stats{
		Parallelism:      p.Parallelism(),
		Workers:          w,
		Busy:             p.busy.Load(),
		External:         p.external.Load(),
		ParallelDispatch: p.parallelFor.Load(),
		SerialDispatch:   p.serialFor.Load(),
		Steals:           p.steals.Load(),
	}
}
