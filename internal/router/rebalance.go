package router

import (
	"context"
	"fmt"

	"priste/internal/api"
	"priste/internal/ring"
)

// RebalanceReport summarises one drain/re-home pass.
type RebalanceReport struct {
	// Backend is the member the pass targeted.
	Backend string `json:"backend"`
	// Moved counts sessions migrated (fingerprint-verified) and Failed
	// sessions whose migration failed — those stay on their source
	// backend and keep serving through the previous-ring fallback.
	Moved  int `json:"moved"`
	Failed int `json:"failed"`
	// Epoch is the ring epoch after the pass.
	Epoch int64 `json:"epoch"`
}

// setRing publishes next as the current ring, keeping the old ring as
// the misroute fallback, and bumps the epoch. Callers must hold
// rebalanceMu.
func (rt *Router) setRing(next *ring.Ring) {
	cur := rt.ringPtr.Load()
	rt.prevPtr.Store(cur)
	rt.ringPtr.Store(next)
	epoch := rt.epoch.Add(1)
	for name, b := range rt.backends {
		b.inRing.Store(next.Has(name))
	}
	rt.logger.Info("router: ring changed",
		"epoch", epoch, "members", next.Members())
}

// migrate moves one session from src to dst through the export→import
// path, holding the session's migration lock exclusively: in-flight
// requests drain first, new ones park until the handoff completes. The
// copy on dst is re-exported and its fingerprint and step count are
// verified bit-for-bit against the source export before the source
// copy is tombstoned; on any failure the source copy stays
// authoritative (a half-imported dst copy is deleted).
func (rt *Router) migrate(id string, src, dst *backend) error {
	l := rt.acquire(id)
	l.mu.Lock()
	defer func() {
		l.mu.Unlock()
		rt.release(id, l)
	}()
	rt.migStarted.Add(1)
	rt.metrics.migStarted.Add(1)
	err := rt.migrateLocked(id, src, dst)
	if err != nil {
		rt.migFailed.Add(1)
		rt.metrics.migFailed.Add(1)
		rt.logger.Warn("router: migration failed",
			"session", id, "from", src.name, "to", dst.name, "err", err)
		return err
	}
	rt.migCompleted.Add(1)
	rt.metrics.migCompleted.Add(1)
	rt.logger.Info("router: session migrated",
		"session", id, "from", src.name, "to", dst.name)
	return nil
}

func (rt *Router) migrateLocked(id string, src, dst *backend) error {
	ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.MigrationTimeout)
	defer cancel()
	exp, err := src.client.ExportSession(ctx, id)
	if err != nil {
		return fmt.Errorf("export from %s: %w", src.name, err)
	}
	if err := exp.Validate(); err != nil {
		return fmt.Errorf("export of %s invalid: %w", id, err)
	}
	if _, err := dst.client.ImportSession(ctx, exp); err != nil {
		return fmt.Errorf("import to %s: %w", dst.name, err)
	}
	// Verify the landed copy before tombstoning the source: re-export
	// from dst and require the identical history fingerprint and length.
	chk, err := dst.client.ExportSession(ctx, id)
	if err != nil || chk.Fingerprint != exp.Fingerprint || chk.T != exp.T {
		_ = dst.client.DeleteSession(ctx, id)
		if err == nil {
			err = fmt.Errorf("fingerprint mismatch (src %x/t=%d, dst %x/t=%d)",
				exp.Fingerprint, exp.T, chk.Fingerprint, chk.T)
		}
		return fmt.Errorf("verify on %s: %w", dst.name, err)
	}
	if err := src.client.DeleteSession(ctx, id); err != nil {
		// The dst copy is verified and the ring already points at it;
		// the stale source copy is shadowed and only wastes memory.
		rt.logger.Warn("router: tombstone of migrated source copy failed",
			"session", id, "backend", src.name, "err", err)
	}
	return nil
}

// listAll pages through every session on b.
func (rt *Router) listAll(b *backend) ([]string, error) {
	var ids []string
	req := api.ListSessionsRequest{Limit: api.MaxListLimit}
	for {
		ctx, cancel := rt.callCtx()
		page, err := b.client.ListSessions(ctx, req)
		cancel()
		if err != nil {
			return nil, err
		}
		for _, s := range page.Sessions {
			ids = append(ids, s.ID)
		}
		if page.NextCursor == "" {
			return ids, nil
		}
		req.Cursor = page.NextCursor
	}
}

// rehomeFrom migrates every session still living on src whose current
// ring owner is some other backend. Callers must hold rebalanceMu (so
// the ring is stable for the whole pass).
func (rt *Router) rehomeFrom(src *backend) RebalanceReport {
	rep := RebalanceReport{Backend: src.name, Epoch: rt.epoch.Load()}
	ids, err := rt.listAll(src)
	if err != nil {
		rt.logger.Warn("router: rehome list failed", "backend", src.name, "err", err)
		return rep
	}
	r := rt.ringPtr.Load()
	for _, id := range ids {
		owner, ok := r.Owner(id)
		if !ok || owner == src.name {
			continue
		}
		if rt.migrate(id, src, rt.backends[owner]) != nil {
			rep.Failed++
		} else {
			rep.Moved++
		}
	}
	return rep
}

// rehomeTo migrates onto dst every session that the current ring
// assigns to dst but that lives on another in-ring backend — the
// minimal-movement set of a readmission. Callers must hold rebalanceMu.
func (rt *Router) rehomeTo(dst *backend) RebalanceReport {
	rep := RebalanceReport{Backend: dst.name, Epoch: rt.epoch.Load()}
	r := rt.ringPtr.Load()
	for _, name := range rt.order {
		src := rt.backends[name]
		if src == dst || !src.inRing.Load() {
			continue
		}
		ids, err := rt.listAll(src)
		if err != nil {
			rt.logger.Warn("router: rehome list failed", "backend", src.name, "err", err)
			rep.Failed++
			continue
		}
		for _, id := range ids {
			if owner, ok := r.Owner(id); !ok || owner != dst.name {
				continue
			}
			if rt.migrate(id, src, dst) != nil {
				rep.Failed++
			} else {
				rep.Moved++
			}
		}
	}
	return rep
}

// Drain removes the named backend from the ring and re-homes every
// session it holds onto the remaining members, leaving the backend
// healthy but out of rotation (the probe loop will not readmit a
// drained member; Undrain reverses). Draining the last in-ring backend
// is refused.
func (rt *Router) Drain(name string) (RebalanceReport, error) {
	rt.rebalanceMu.Lock()
	defer rt.rebalanceMu.Unlock()
	b := rt.backends[name]
	if b == nil {
		return RebalanceReport{}, api.Errf(api.CodeNotFound,
			fmt.Sprintf("router: unknown backend %q", name))
	}
	cur := rt.ringPtr.Load()
	if cur.Has(name) && cur.Len() == 1 {
		return RebalanceReport{}, api.Errf(api.CodeFailedPrecondition,
			"router: refusing to drain the last in-ring backend")
	}
	b.draining.Store(true)
	if cur.Has(name) {
		rt.setRing(cur.Without(name))
	}
	rep := rt.rehomeFrom(b)
	rep.Epoch = rt.epoch.Load()
	rt.logger.Info("router: drain complete",
		"backend", name, "moved", rep.Moved, "failed", rep.Failed)
	return rep, nil
}

// Undrain clears the named backend's drain flag and, if it is healthy,
// re-adds it to the ring and pulls its minimal-movement session set
// back onto it.
func (rt *Router) Undrain(name string) (RebalanceReport, error) {
	rt.rebalanceMu.Lock()
	defer rt.rebalanceMu.Unlock()
	b := rt.backends[name]
	if b == nil {
		return RebalanceReport{}, api.Errf(api.CodeNotFound,
			fmt.Sprintf("router: unknown backend %q", name))
	}
	b.draining.Store(false)
	rep := RebalanceReport{Backend: name, Epoch: rt.epoch.Load()}
	cur := rt.ringPtr.Load()
	if !b.healthy.Load() || cur.Has(name) {
		return rep, nil
	}
	rt.setRing(cur.With(name))
	rep = rt.rehomeTo(b)
	rep.Epoch = rt.epoch.Load()
	rt.logger.Info("router: undrain complete",
		"backend", name, "moved", rep.Moved, "failed", rep.Failed)
	return rep, nil
}
