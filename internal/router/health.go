package router

import (
	"context"
	"sync"
	"time"
)

// probeLoop health-checks the fleet every ProbeInterval until Shutdown.
func (rt *Router) probeLoop() {
	defer rt.wg.Done()
	t := time.NewTicker(rt.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-rt.closed:
			return
		case <-t.C:
			rt.probeAll()
		}
	}
}

// probeAll probes every backend in parallel, then applies the
// hysteresis transitions serially. The consecutive-outcome counters are
// only ever touched here (one probeAll at a time: the loop is a single
// goroutine and tests call it directly), so they need no locking; the
// per-probe goroutines write only their own backend's lastProbeOK, and
// the WaitGroup orders those writes before the serial pass reads them.
func (rt *Router) probeAll() {
	var wg sync.WaitGroup
	for _, name := range rt.order {
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.ProbeTimeout)
			defer cancel()
			b.lastProbeOK = b.client.Health(ctx) == nil
		}(rt.backends[name])
	}
	wg.Wait()
	for _, name := range rt.order {
		b := rt.backends[name]
		if b.lastProbeOK {
			b.consecOK++
			b.consecFail = 0
		} else {
			b.consecFail++
			b.consecOK = 0
		}
		switch {
		case b.healthy.Load() && b.consecFail >= rt.cfg.FailAfter:
			rt.transition(b, false)
		case !b.healthy.Load() && b.consecOK >= rt.cfg.ReadmitAfter:
			rt.transition(b, true)
		}
	}
}

// transition flips a backend's health state and schedules the ring
// consequence in the background: ejection removes the member from the
// ring without moving data (the member is presumed dead — its sessions
// reappear when it does, or are re-created elsewhere), readmission
// re-adds it and pulls its minimal-movement session set back. The ring
// work runs in a goroutine because re-homing takes rebalanceMu and can
// be slow, and the probe loop must keep its cadence; the goroutine
// re-checks state under the lock, so stale duplicates are no-ops.
func (rt *Router) transition(b *backend, healthy bool) {
	b.healthy.Store(healthy)
	rt.healthTransitions.Add(1)
	rt.metrics.observeTransition(b.name, healthy)
	rt.logger.Warn("router: backend health changed",
		"backend", b.name, "healthy", healthy)
	rt.wg.Add(1)
	go func() {
		defer rt.wg.Done()
		rt.rebalanceMu.Lock()
		defer rt.rebalanceMu.Unlock()
		cur := rt.ringPtr.Load()
		switch {
		case !healthy && !b.healthy.Load() && cur.Has(b.name):
			if cur.Len() == 1 {
				// Never empty the ring: a fleet-wide blip would orphan
				// every session id. Requests will fail against the dead
				// member until something comes back.
				rt.logger.Warn("router: not ejecting last in-ring backend", "backend", b.name)
				return
			}
			rt.setRing(cur.Without(b.name))
		case healthy && b.healthy.Load() && !b.draining.Load() && !cur.Has(b.name):
			rt.setRing(cur.With(b.name))
			rep := rt.rehomeTo(b)
			rt.logger.Info("router: readmission rehome complete",
				"backend", b.name, "moved", rep.Moved, "failed", rep.Failed)
		}
	}()
}
