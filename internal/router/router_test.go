package router

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"priste/internal/api"
	"priste/internal/ring"
	"priste/internal/rpc"
	"priste/internal/server"
)

var bg = context.Background()

// testServerConfig mirrors the server package's deterministic test
// deployment: small map, no QP deadline, no janitor.
func testServerConfig() server.Config {
	cfg := server.DefaultConfig()
	cfg.GridW, cfg.GridH = 6, 6
	cfg.Events = []string{"0-5@2-4"}
	cfg.QPTimeout = 0
	cfg.SessionTTL = -1
	return cfg
}

// fleetMember is one live pristed backend plus the client the router
// reaches it with.
type fleetMember struct {
	name   string
	srv    *server.Server
	client api.Client
}

// newFleet starts n backends. The first is reached over the binary RPC
// protocol, the rest over HTTP — the router must not care.
func newFleet(t *testing.T, n int) []fleetMember {
	t.Helper()
	members := make([]fleetMember, n)
	for i := range members {
		srv, err := server.New(testServerConfig())
		if err != nil {
			t.Fatalf("server.New: %v", err)
		}
		t.Cleanup(srv.Close)
		name := fmt.Sprintf("backend-%d", i)
		if i == 0 {
			lis, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			rpcSrv := rpc.NewServer(srv)
			go func() { _ = rpcSrv.Serve(lis) }()
			t.Cleanup(func() { rpcSrv.Close() })
			client, err := rpc.Dial(lis.Addr().String())
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { client.Close() })
			members[i] = fleetMember{name: name, srv: srv, client: client}
			continue
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		members[i] = fleetMember{name: name, srv: srv, client: server.NewClient(ts.URL, nil)}
	}
	return members
}

// newTestRouter builds a Router over the members with probing disabled
// (tests drive probeAll by hand).
func newTestRouter(t *testing.T, members []fleetMember, mutate func(*Config)) *Router {
	t.Helper()
	cfg := Config{VirtualNodes: 64, ProbeInterval: -1}
	for _, m := range members {
		cfg.Backends = append(cfg.Backends, Backend{Name: m.name, Client: m.client})
	}
	if mutate != nil {
		mutate(&cfg)
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(rt.Shutdown)
	return rt
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

// createN makes n seeded sessions through the router and returns their
// ids in creation order.
func createN(t *testing.T, rt *Router, n int) []string {
	t.Helper()
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("sess-%02d", i)
		seed := int64(1000 + i)
		if _, err := rt.CreateSession(api.CreateSessionRequest{ID: ids[i], Seed: &seed}); err != nil {
			t.Fatalf("CreateSession %s: %v", ids[i], err)
		}
	}
	return ids
}

// loc is the deterministic location sequence shared with control runs.
func loc(session, step int) int { return (session*7 + step*3) % 36 }

func TestRouterRoutesAcrossFleet(t *testing.T) {
	members := newFleet(t, 3)
	rt := newTestRouter(t, members, nil)
	ids := createN(t, rt, 20)

	// Sessions must actually be sharded: more than one backend holds some.
	holding := 0
	total := 0
	for _, m := range members {
		page, err := m.srv.ListSessions(api.ListSessionsRequest{Limit: 100})
		if err != nil {
			t.Fatal(err)
		}
		if len(page.Sessions) > 0 {
			holding++
		}
		total += len(page.Sessions)
	}
	if holding < 2 || total != len(ids) {
		t.Fatalf("fleet holds %d sessions on %d backends, want %d on >=2", total, holding, len(ids))
	}

	for i, id := range ids {
		resp, err := rt.Step(bg, id, loc(i, 0))
		if err != nil || resp.T != 0 {
			t.Fatalf("Step %s: %+v, %v", id, resp, err)
		}
		info, err := rt.GetSession(id)
		if err != nil || info.T != 1 {
			t.Fatalf("GetSession %s = %+v, %v; want T=1", id, info, err)
		}
	}

	// Batch: one step per session, order preserved, all sharded out.
	var batch []api.BatchStepItem
	for i, id := range ids {
		batch = append(batch, api.BatchStepItem{SessionID: id, Loc: loc(i, 1)})
	}
	results := rt.StepBatch(bg, batch)
	if len(results) != len(batch) {
		t.Fatalf("batch returned %d results, want %d", len(results), len(batch))
	}
	for i, r := range results {
		if r.SessionID != ids[i] || r.Error != "" || r.T != 1 {
			t.Fatalf("batch[%d] = %+v, want session %s T=1", i, r, ids[i])
		}
	}

	if err := rt.DeleteSession(ids[0]); err != nil {
		t.Fatalf("DeleteSession: %v", err)
	}
	if _, err := rt.GetSession(ids[0]); api.CodeOf(err) != api.CodeNotFound {
		t.Fatalf("deleted session get: %v, want not_found", err)
	}

	st := rt.Stats()
	if st.Fleet == nil {
		t.Fatal("router stats has no fleet section")
	}
	if st.Sessions.Live != int64(len(ids)-1) {
		t.Fatalf("fleet live = %d, want %d", st.Sessions.Live, len(ids)-1)
	}
	if got := len(st.Fleet.Members); got != 3 {
		t.Fatalf("fleet members = %d, want 3", got)
	}
	var routed int64
	for _, m := range st.Fleet.Members {
		if !m.Healthy || !m.InRing {
			t.Fatalf("member %+v not healthy/in-ring", m)
		}
		routed += m.Routes
	}
	if routed == 0 {
		t.Fatal("no routes counted")
	}
	if h := rt.Health(); h.Status != "ok" || h.Sessions != int64(len(ids)-1) {
		t.Fatalf("health = %+v", h)
	}
}

func TestMergedListPagination(t *testing.T) {
	members := newFleet(t, 3)
	rt := newTestRouter(t, members, nil)
	ids := createN(t, rt, 25)

	var got []string
	req := api.ListSessionsRequest{Limit: 10}
	for {
		page, err := rt.ListSessions(req)
		if err != nil {
			t.Fatalf("ListSessions: %v", err)
		}
		for _, s := range page.Sessions {
			got = append(got, s.ID)
		}
		if page.NextCursor == "" {
			break
		}
		req.Cursor = page.NextCursor
	}
	if len(got) != len(ids) {
		t.Fatalf("paged %d sessions, want %d: %v", len(got), len(ids), got)
	}
	seen := map[string]bool{}
	for i, id := range got {
		if seen[id] {
			t.Fatalf("duplicate id %s in merged pages", id)
		}
		seen[id] = true
		if i > 0 && got[i-1] >= id {
			t.Fatalf("merged pages out of order: %s before %s", got[i-1], id)
		}
	}
}

// TestDrainRehomeFingerprint is the heart of the acceptance criteria:
// drain a backend mid-history, keep stepping through the router, and
// require every migrated session's releases to be bit-identical to an
// uninterrupted single-instance control run.
func TestDrainRehomeFingerprint(t *testing.T) {
	members := newFleet(t, 3)
	rt := newTestRouter(t, members, nil)
	ids := createN(t, rt, 8)

	const preSteps, postSteps = 3, 3
	for i, id := range ids {
		for s := 0; s < preSteps; s++ {
			if _, err := rt.Step(bg, id, loc(i, s)); err != nil {
				t.Fatalf("pre step %s/%d: %v", id, s, err)
			}
		}
	}

	// Drain a backend that holds at least one session.
	var victim string
	for _, m := range members {
		page, err := m.srv.ListSessions(api.ListSessionsRequest{Limit: 100})
		if err != nil {
			t.Fatal(err)
		}
		if len(page.Sessions) > 0 {
			victim = m.name
			break
		}
	}
	rep, err := rt.Drain(victim)
	if err != nil {
		t.Fatalf("Drain(%s): %v", victim, err)
	}
	if rep.Moved == 0 || rep.Failed != 0 {
		t.Fatalf("drain report = %+v, want moves and no failures", rep)
	}
	for _, m := range members {
		if m.name != victim {
			continue
		}
		page, _ := m.srv.ListSessions(api.ListSessionsRequest{Limit: 100})
		if len(page.Sessions) != 0 {
			t.Fatalf("drained backend still holds %d sessions", len(page.Sessions))
		}
	}

	for i, id := range ids {
		for s := preSteps; s < preSteps+postSteps; s++ {
			if _, err := rt.Step(bg, id, loc(i, s)); err != nil {
				t.Fatalf("post step %s/%d: %v", id, s, err)
			}
		}
	}

	// Control: the same histories on one uninterrupted instance.
	control, err := server.New(testServerConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer control.Close()
	for i, id := range ids {
		seed := int64(1000 + i)
		if _, err := control.CreateSession(api.CreateSessionRequest{ID: id, Seed: &seed}); err != nil {
			t.Fatal(err)
		}
		for s := 0; s < preSteps+postSteps; s++ {
			if _, err := control.Step(bg, id, loc(i, s)); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, id := range ids {
		got, err := rt.ExportSession(bg, id)
		if err != nil {
			t.Fatalf("export %s via router: %v", id, err)
		}
		want, err := control.ExportSession(bg, id)
		if err != nil {
			t.Fatal(err)
		}
		if got.Fingerprint != want.Fingerprint || got.T != want.T {
			t.Fatalf("session %s diverged after migration: got fp=%x t=%d, control fp=%x t=%d",
				id, got.Fingerprint, got.T, want.Fingerprint, want.T)
		}
	}

	fs := rt.Stats().Fleet
	if fs.MigrationsCompleted != int64(rep.Moved) || fs.MigrationsFailed != 0 {
		t.Fatalf("fleet migration counters = %+v, want completed=%d", fs, rep.Moved)
	}
	if fs.Epoch == 0 {
		t.Fatal("ring epoch did not advance on drain")
	}

	// Undrain pulls the victim's minimal-movement share back.
	rep2, err := rt.Undrain(victim)
	if err != nil {
		t.Fatalf("Undrain: %v", err)
	}
	if rep2.Moved == 0 || rep2.Failed != 0 {
		t.Fatalf("undrain report = %+v, want moves back and no failures", rep2)
	}
	for _, id := range ids {
		if _, err := rt.GetSession(id); err != nil {
			t.Fatalf("session %s lost after undrain: %v", id, err)
		}
	}
}

// TestStepsParkDuringMigration: steps racing a drain must park on the
// per-session migration lock — zero errors, and a history bit-identical
// to an unmigrated control run.
func TestStepsParkDuringMigration(t *testing.T) {
	members := newFleet(t, 2)
	rt := newTestRouter(t, members, nil)
	ids := createN(t, rt, 4)

	const steps = 40
	var wg sync.WaitGroup
	errs := make([]error, len(ids))
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			for s := 0; s < steps; s++ {
				if _, err := rt.Step(bg, id, loc(i, s)); err != nil {
					errs[i] = fmt.Errorf("step %d: %w", s, err)
					return
				}
			}
		}(i, id)
	}
	// Drain whichever backend holds sessions first, mid-traffic.
	time.Sleep(5 * time.Millisecond)
	if _, err := rt.Drain(members[0].name); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("session %s failed mid-migration: %v", ids[i], err)
		}
	}

	control, err := server.New(testServerConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer control.Close()
	for i, id := range ids {
		seed := int64(1000 + i)
		if _, err := control.CreateSession(api.CreateSessionRequest{ID: id, Seed: &seed}); err != nil {
			t.Fatal(err)
		}
		for s := 0; s < steps; s++ {
			if _, err := control.Step(bg, id, loc(i, s)); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, id := range ids {
		got, err := rt.ExportSession(bg, id)
		if err != nil {
			t.Fatal(err)
		}
		want, err := control.ExportSession(bg, id)
		if err != nil {
			t.Fatal(err)
		}
		if got.Fingerprint != want.Fingerprint || got.T != want.T {
			t.Fatalf("session %s diverged (got fp=%x t=%d, control fp=%x t=%d)",
				id, got.Fingerprint, got.T, want.Fingerprint, want.T)
		}
	}
}

// flakyClient wraps a backend client with a switchable health outcome.
type flakyClient struct {
	api.Client
	down atomic.Bool
}

func (f *flakyClient) Health(ctx context.Context) error {
	if f.down.Load() {
		return fmt.Errorf("flaky: down")
	}
	return f.Client.Health(ctx)
}

func TestHealthEjectionAndReadmission(t *testing.T) {
	members := newFleet(t, 3)
	flaky := &flakyClient{Client: members[1].client}
	rt := newTestRouter(t, members, func(cfg *Config) {
		cfg.FailAfter = 3
		cfg.ReadmitAfter = 2
		for i := range cfg.Backends {
			if cfg.Backends[i].Name == members[1].name {
				cfg.Backends[i].Client = flaky
			}
		}
	})
	ids := createN(t, rt, 10)

	// One failed probe is hysteresis-absorbed.
	flaky.down.Store(true)
	rt.probeAll()
	if b := rt.backends[members[1].name]; !b.healthy.Load() {
		t.Fatal("single failed probe ejected the backend")
	}
	rt.probeAll()
	rt.probeAll()
	b := rt.backends[members[1].name]
	if b.healthy.Load() {
		t.Fatal("backend still healthy after FailAfter failed probes")
	}
	waitFor(t, "ejection from ring", func() bool { return !rt.ringPtr.Load().Has(members[1].name) })
	if rt.epoch.Load() == 0 {
		t.Fatal("epoch did not advance on ejection")
	}

	// Ejection moved no data, so sessions that live on the ejected
	// backend (which is actually still serving) are reached through the
	// previous-ring fallback.
	before := rt.misrouteRetries.Load()
	for i, id := range ids {
		if _, err := rt.Step(bg, id, loc(i, 0)); err != nil {
			t.Fatalf("step %s after ejection: %v", id, err)
		}
	}
	if rt.misrouteRetries.Load() == before {
		t.Fatal("no misroute retries counted — fallback path never used")
	}

	// Recovery: ReadmitAfter clean probes readmit and re-home.
	flaky.down.Store(false)
	rt.probeAll()
	if b.healthy.Load() {
		t.Fatal("single clean probe readmitted the backend")
	}
	rt.probeAll()
	if !b.healthy.Load() {
		t.Fatal("backend not healthy after ReadmitAfter clean probes")
	}
	waitFor(t, "readmission to ring", func() bool { return rt.ringPtr.Load().Has(members[1].name) })
	waitFor(t, "readmission rehome", func() bool {
		rt.rebalanceMu.Lock()
		defer rt.rebalanceMu.Unlock()
		// Under the lock the rehome pass has finished; verify every
		// session is on its current ring owner.
		for i, id := range ids {
			if _, err := rt.Step(bg, id, loc(i, 1)); err != nil {
				t.Fatalf("step %s after readmission: %v", id, err)
			}
		}
		return true
	})
	if got := rt.healthTransitions.Load(); got != 2 {
		t.Fatalf("health transitions = %d, want 2", got)
	}
}

// TestMisrouteFallbackDeterministic pins the fallback path: the current
// ring routes the session to a backend that has never seen it, the
// previous ring to the backend that owns it.
func TestMisrouteFallbackDeterministic(t *testing.T) {
	members := newFleet(t, 2)
	rt := newTestRouter(t, members, nil)

	// Find an id the full ring assigns to backend-0.
	full := rt.ringPtr.Load()
	var id string
	for i := 0; i < 1000; i++ {
		cand := fmt.Sprintf("mis-%03d", i)
		if owner, _ := full.Owner(cand); owner == members[0].name {
			id = cand
			break
		}
	}
	if id == "" {
		t.Fatal("no candidate id owned by backend-0")
	}
	// The session actually lives on backend-1 (created out-of-band, as
	// if a ring change moved ownership before its migration landed).
	seed := int64(7)
	if _, err := members[1].srv.CreateSession(api.CreateSessionRequest{ID: id, Seed: &seed}); err != nil {
		t.Fatal(err)
	}
	rt.prevPtr.Store(ring.New(64, members[1].name))

	resp, err := rt.Step(bg, id, 3)
	if err != nil || resp.T != 0 {
		t.Fatalf("misrouted step = %+v, %v; want fallback success", resp, err)
	}
	if got := rt.misrouteRetries.Load(); got != 1 {
		t.Fatalf("misroute retries = %d, want 1", got)
	}
	// Without a prev-ring location the miss is a genuine not_found.
	if _, err := rt.Step(bg, "never-created", 3); api.CodeOf(err) != api.CodeNotFound {
		t.Fatalf("unknown session err = %v, want not_found", err)
	}
}

// wrongBackendService returns CodeWrongBackend from every session call —
// the shape of a ring-aware backend rejecting a stale route.
type wrongBackendService struct{}

var errMoved = api.Errf(api.CodeWrongBackend, "session moved: re-resolve ownership")

func (wrongBackendService) CreateSession(api.CreateSessionRequest) (api.SessionInfo, error) {
	return api.SessionInfo{}, errMoved
}
func (wrongBackendService) GetSession(string) (api.SessionInfo, error) {
	return api.SessionInfo{}, errMoved
}
func (wrongBackendService) DeleteSession(string) error { return errMoved }
func (wrongBackendService) Step(context.Context, string, int) (api.StepResponse, error) {
	return api.StepResponse{}, errMoved
}
func (wrongBackendService) StepBatch(_ context.Context, steps []api.BatchStepItem) []api.StepResponse {
	out := make([]api.StepResponse, len(steps))
	for i, it := range steps {
		out[i] = api.FailedStep(it.SessionID, errMoved)
	}
	return out
}
func (wrongBackendService) ListSessions(api.ListSessionsRequest) (api.SessionPage, error) {
	return api.SessionPage{}, errMoved
}
func (wrongBackendService) ExportSession(context.Context, string) (api.SessionExport, error) {
	return api.SessionExport{}, errMoved
}
func (wrongBackendService) ImportSession(api.SessionExport) (api.SessionInfo, error) {
	return api.SessionInfo{}, errMoved
}
func (wrongBackendService) Stats() api.Stats   { return api.Stats{} }
func (wrongBackendService) Health() api.Health { return api.Health{Status: "ok"} }

// TestWrongBackendRoundTrip: the misroute code survives both transports
// (HTTP 421 envelope, RPC error byte) and both clients classify the
// reconstructed error as retryable-after-reroute.
func TestWrongBackendRoundTrip(t *testing.T) {
	mux := http.NewServeMux()
	server.RegisterAPIRoutes(mux, wrongBackendService{}, nil)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/sessions/x")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("raw status = %d, want 421", resp.StatusCode)
	}
	httpClient := server.NewClient(ts.URL, nil)
	_, err = httpClient.Step(bg, "x", 0)
	if api.CodeOf(err) != api.CodeWrongBackend || !api.RetryAfterReroute(err) {
		t.Fatalf("http client err = %v (code %s), want retryable wrong_backend", err, api.CodeOf(err))
	}

	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rpcSrv := rpc.NewServer(wrongBackendService{})
	go func() { _ = rpcSrv.Serve(lis) }()
	defer rpcSrv.Close()
	rpcClient, err := rpc.Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer rpcClient.Close()
	_, err = rpcClient.Step(bg, "x", 0)
	if api.CodeOf(err) != api.CodeWrongBackend || !api.RetryAfterReroute(err) {
		t.Fatalf("rpc client err = %v (code %s), want retryable wrong_backend", err, api.CodeOf(err))
	}
}

func TestDrainGuards(t *testing.T) {
	members := newFleet(t, 1)
	rt := newTestRouter(t, members, nil)
	if _, err := rt.Drain("backend-0"); api.CodeOf(err) != api.CodeFailedPrecondition {
		t.Fatalf("draining last backend: %v, want failed_precondition", err)
	}
	if _, err := rt.Drain("nope"); api.CodeOf(err) != api.CodeNotFound {
		t.Fatalf("draining unknown backend: %v, want not_found", err)
	}
	if _, err := rt.Undrain("nope"); api.CodeOf(err) != api.CodeNotFound {
		t.Fatalf("undraining unknown backend: %v, want not_found", err)
	}
}

// TestRouterMetricsSurface: the priste_router_* family renders on the
// handler's /metricsz and the fleet admin routes respond.
func TestRouterMetricsSurface(t *testing.T) {
	members := newFleet(t, 2)
	rt := newTestRouter(t, members, nil)
	createN(t, rt, 3)

	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		buf := make([]byte, 1<<20)
		n, _ := resp.Body.Read(buf)
		return resp.StatusCode, string(buf[:n])
	}
	code, body := get("/metricsz")
	if code != http.StatusOK {
		t.Fatalf("/metricsz status %d", code)
	}
	for _, want := range []string{
		"priste_router_routes_total", "priste_router_misroute_retries_total",
		"priste_router_health_transitions_total", "priste_router_backend_healthy",
		"priste_router_migrations_started_total", "priste_router_migrations_completed_total",
		"priste_router_migrations_failed_total", "priste_router_ring_epoch",
		"go_goroutines",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metricsz missing %s", want)
		}
	}
	if code, body = get("/v1/fleet"); code != http.StatusOK || !strings.Contains(body, members[0].name) {
		t.Fatalf("/v1/fleet = %d %q", code, body)
	}
	if code, body = get("/statsz"); code != http.StatusOK || !strings.Contains(body, `"fleet"`) {
		t.Fatalf("/statsz = %d, fleet section missing: %q", code, body)
	}
	if code, _ = get("/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz = %d", code)
	}
}
