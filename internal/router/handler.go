package router

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"priste/internal/api"
	"priste/internal/server"
)

// Handler returns the router's HTTP transport: the same /v1 session
// codec a pristed serves (so any priste client talks to the router
// unchanged), plus the fleet admin surface:
//
//	GET  /v1/fleet            fleet status (the /statsz fleet section)
//	POST /v1/fleet/rebalance  drain ({"backend":"name"}) or undrain
//	                          ({"backend":"name","undrain":true}) a
//	                          member and re-home its sessions
//	GET  /metricsz            priste_router_* metrics
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	server.RegisterAPIRoutes(mux, rt, func(total, _, _ time.Duration) {
		rt.metrics.observeStep(total)
	})
	mux.HandleFunc("GET /v1/fleet", rt.handleFleetStatus)
	mux.HandleFunc("POST /v1/fleet/rebalance", rt.handleRebalance)
	mux.Handle("GET /metricsz", rt.metrics.reg.Handler())
	return server.TraceHandler(mux, func(d time.Duration) {
		rt.metrics.requestSeconds.Observe(d)
	})
}

func (rt *Router) handleFleetStatus(w http.ResponseWriter, _ *http.Request) {
	server.WriteJSON(w, http.StatusOK, rt.fleetStats())
}

// rebalanceRequest is the body of POST /v1/fleet/rebalance.
type rebalanceRequest struct {
	Backend string `json:"backend"`
	Undrain bool   `json:"undrain,omitempty"`
}

func (rt *Router) handleRebalance(w http.ResponseWriter, r *http.Request) {
	var req rebalanceRequest
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		server.WriteError(w, fmt.Errorf("router: bad rebalance body: %w", err))
		return
	}
	if req.Backend == "" {
		server.WriteError(w, api.Errf(api.CodeInvalidArgument, "router: missing backend name"))
		return
	}
	var (
		rep RebalanceReport
		err error
	)
	if req.Undrain {
		rep, err = rt.Undrain(req.Backend)
	} else {
		rep, err = rt.Drain(req.Backend)
	}
	if err != nil {
		server.WriteError(w, err)
		return
	}
	server.WriteJSON(w, http.StatusOK, rep)
}
