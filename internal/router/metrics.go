package router

import (
	"time"

	"priste/internal/obs"
)

// routerMetrics is the router's /metricsz surface: the priste_router_*
// family, plus the shared Go-runtime gauges. Per-backend series are
// pre-registered at construction (the member set is fixed), so the hot
// path only bumps counters.
type routerMetrics struct {
	reg *obs.Registry

	routes          map[string]*obs.Counter
	transitions     map[string]*obs.Counter
	misrouteRetries *obs.Counter
	migStarted      *obs.Counter
	migCompleted    *obs.Counter
	migFailed       *obs.Counter
	requestSeconds  *obs.Histogram
	stepSeconds     *obs.Histogram
}

func newRouterMetrics(rt *Router) *routerMetrics {
	reg := obs.NewRegistry()
	m := &routerMetrics{
		reg:         reg,
		routes:      make(map[string]*obs.Counter, len(rt.order)),
		transitions: make(map[string]*obs.Counter, len(rt.order)),
	}
	for _, name := range rt.order {
		b := rt.backends[name]
		lbl := obs.Label{Key: "backend", Value: name}
		m.routes[name] = reg.Counter("priste_router_routes_total",
			"Requests routed to the backend.", lbl)
		m.transitions[name] = reg.Counter("priste_router_health_transitions_total",
			"Health state flips observed for the backend.", lbl)
		reg.GaugeFunc("priste_router_backend_healthy",
			"1 while the backend passes health probes.",
			func() float64 {
				if b.healthy.Load() {
					return 1
				}
				return 0
			}, lbl)
		reg.GaugeFunc("priste_router_backend_in_ring",
			"1 while the backend is in the routing ring.",
			func() float64 {
				if b.inRing.Load() {
					return 1
				}
				return 0
			}, lbl)
		reg.GaugeFunc("priste_router_backend_sessions",
			"Live sessions on the backend at the last reachable stats fan-out.",
			func() float64 { return float64(b.sessions.Load()) }, lbl)
	}
	m.misrouteRetries = reg.Counter("priste_router_misroute_retries_total",
		"Requests retried against the previous ring owner after a misroute.")
	m.migStarted = reg.Counter("priste_router_migrations_started_total",
		"Session migrations started.")
	m.migCompleted = reg.Counter("priste_router_migrations_completed_total",
		"Session migrations completed (fingerprint-verified, source tombstoned).")
	m.migFailed = reg.Counter("priste_router_migrations_failed_total",
		"Session migrations failed (source copy kept authoritative).")
	m.requestSeconds = reg.Histogram("priste_router_request_seconds",
		"End-to-end routed HTTP request latency.")
	m.stepSeconds = reg.Histogram("priste_router_step_seconds",
		"End-to-end routed step latency.")
	reg.GaugeFunc("priste_router_ring_epoch",
		"Ring epoch; increments on every membership change.",
		func() float64 { return float64(rt.epoch.Load()) })
	reg.GaugeFunc("priste_router_ring_members",
		"Backends currently in the routing ring.",
		func() float64 { return float64(rt.ringPtr.Load().Len()) })
	obs.RegisterRuntime(reg)
	return m
}

func (m *routerMetrics) observeRoute(backend string) {
	if c := m.routes[backend]; c != nil {
		c.Add(1)
	}
}

func (m *routerMetrics) observeRouteN(backend string, n int64) {
	if c := m.routes[backend]; c != nil {
		c.Add(n)
	}
}

func (m *routerMetrics) observeTransition(backend string, _ bool) {
	if c := m.transitions[backend]; c != nil {
		c.Add(1)
	}
}

func (m *routerMetrics) observeStep(total time.Duration) {
	m.stepSeconds.Observe(total)
}
