// Package router implements the fleet session router: an api.Service
// that owns no sessions itself but shards them across a fleet of
// pristed backends with a consistent-hash ring (internal/ring) and
// keeps placement live through failures and operator rebalances.
//
// Every session-scoped request resolves the session id on the current
// ring and is proxied to the owning backend over that backend's
// api.Client (HTTP or RPC — the router does not care). Fleet-scoped
// requests (ListSessions, Stats) fan out and merge. Backends are
// health-probed with ejection/readmission hysteresis; ring changes
// re-home only the sessions in the moved hash ranges through the
// export→import migration path, with a per-session migration lock that
// parks in-flight requests (rather than failing them) while a session
// is in transit, and a previous-ring fallback so requests racing a
// ring change are retried internally instead of surfacing not_found.
package router

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"priste/internal/api"
	"priste/internal/ring"
)

// Backend names one pristed instance and the client to reach it.
type Backend struct {
	// Name is the backend's stable identity on the ring. Placement is a
	// pure function of the name set, so names must be stable across
	// router restarts (use the backend's address).
	Name string
	// Client reaches the backend: server.NewClient for HTTP,
	// rpc.Dial for the binary protocol.
	Client api.Client
}

// Config parametrises a Router.
type Config struct {
	// Backends is the initial fleet. At least one is required.
	Backends []Backend
	// VirtualNodes per ring member (<= 0: ring.DefaultVirtualNodes).
	VirtualNodes int
	// ProbeInterval is the health-probe cadence (default 1s; negative
	// disables the probe loop — useful when embedding in tests).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one health probe (default 2s).
	ProbeTimeout time.Duration
	// FailAfter consecutive failed probes eject a backend (default 3).
	FailAfter int
	// ReadmitAfter consecutive successful probes readmit an ejected
	// backend (default 2).
	ReadmitAfter int
	// MigrationTimeout bounds one session migration end to end
	// (default 30s).
	MigrationTimeout time.Duration
	// CallTimeout bounds proxied calls that carry no caller context
	// (default 30s).
	CallTimeout time.Duration
	// Logger receives structured router logs (nil: discard).
	Logger *slog.Logger
}

func (c *Config) withDefaults() {
	if c.ProbeInterval == 0 {
		c.ProbeInterval = time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.FailAfter <= 0 {
		c.FailAfter = 3
	}
	if c.ReadmitAfter <= 0 {
		c.ReadmitAfter = 2
	}
	if c.MigrationTimeout <= 0 {
		c.MigrationTimeout = 30 * time.Second
	}
	if c.CallTimeout <= 0 {
		c.CallTimeout = 30 * time.Second
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.DiscardHandler)
	}
}

// backend is the router's per-member state. The hysteresis fields
// (consecFail/consecOK/lastProbeOK) belong to the probe loop alone.
type backend struct {
	name   string
	client api.Client

	healthy  atomic.Bool
	inRing   atomic.Bool
	draining atomic.Bool
	routes   atomic.Int64
	sessions atomic.Int64 // live count from the last reachable stats/health fan-out

	consecFail  int
	consecOK    int
	lastProbeOK bool
}

// sessionLock serialises a session's requests against its migrations:
// requests hold it shared for their full proxied call, a migration
// holds it exclusive — so new requests park (not fail) until the
// handoff finishes, and the migration waits for in-flight requests to
// drain before exporting.
type sessionLock struct {
	mu  sync.RWMutex
	ref int
}

// Router is the fleet router. It implements api.Service.
type Router struct {
	cfg      Config
	backends map[string]*backend
	order    []string // sorted backend names

	// ring is the current placement; prev the placement before the
	// latest ring change. Session requests the current owner cannot
	// find fall back to the prev owner — the window where a rebalance
	// has flipped the ring but a session's migration has not landed yet.
	ringPtr atomic.Pointer[ring.Ring]
	prevPtr atomic.Pointer[ring.Ring]
	epoch   atomic.Int64

	// rebalanceMu serialises ring mutations and the re-homing they
	// trigger (operator drains, ejections, readmissions).
	rebalanceMu sync.Mutex

	lockMu sync.Mutex
	locks  map[string]*sessionLock

	healthTransitions atomic.Int64
	migStarted        atomic.Int64
	migCompleted      atomic.Int64
	migFailed         atomic.Int64
	misrouteRetries   atomic.Int64

	metrics *routerMetrics
	logger  *slog.Logger
	start   time.Time

	wg       sync.WaitGroup
	closed   chan struct{}
	stopOnce sync.Once
}

var _ api.Service = (*Router)(nil)

// New builds a Router over cfg.Backends, with every backend initially
// healthy and on the ring, and starts the health-probe loop (unless
// cfg.ProbeInterval is negative). Call Shutdown to stop it.
func New(cfg Config) (*Router, error) {
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("router: no backends configured")
	}
	cfg.withDefaults()
	rt := &Router{
		cfg:      cfg,
		backends: make(map[string]*backend, len(cfg.Backends)),
		locks:    make(map[string]*sessionLock),
		logger:   cfg.Logger,
		start:    time.Now(),
		closed:   make(chan struct{}),
	}
	for _, b := range cfg.Backends {
		if b.Name == "" {
			return nil, fmt.Errorf("router: backend with empty name")
		}
		if b.Client == nil {
			return nil, fmt.Errorf("router: backend %q has nil client", b.Name)
		}
		if _, dup := rt.backends[b.Name]; dup {
			return nil, fmt.Errorf("router: duplicate backend name %q", b.Name)
		}
		m := &backend{name: b.Name, client: b.Client}
		m.healthy.Store(true)
		m.inRing.Store(true)
		m.lastProbeOK = true
		rt.backends[b.Name] = m
		rt.order = append(rt.order, b.Name)
	}
	sort.Strings(rt.order)
	rt.ringPtr.Store(ring.New(cfg.VirtualNodes, rt.order...))
	rt.metrics = newRouterMetrics(rt)
	if cfg.ProbeInterval > 0 {
		rt.wg.Add(1)
		go rt.probeLoop()
	}
	return rt, nil
}

// Shutdown stops the probe loop and waits for in-flight background
// rebalances to finish. Proxied requests are not interrupted.
func (rt *Router) Shutdown() {
	rt.stopOnce.Do(func() { close(rt.closed) })
	rt.wg.Wait()
}

// acquire returns the session's lock entry, pinning it in the table.
func (rt *Router) acquire(id string) *sessionLock {
	rt.lockMu.Lock()
	defer rt.lockMu.Unlock()
	l := rt.locks[id]
	if l == nil {
		l = &sessionLock{}
		rt.locks[id] = l
	}
	l.ref++
	return l
}

// release unpins the session's lock entry, dropping it when unused.
func (rt *Router) release(id string, l *sessionLock) {
	rt.lockMu.Lock()
	defer rt.lockMu.Unlock()
	l.ref--
	if l.ref == 0 {
		delete(rt.locks, id)
	}
}

// callCtx derives the context for a proxied call that has none.
func (rt *Router) callCtx() (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), rt.cfg.CallTimeout)
}

// withSession runs fn against the session's owning backend while
// holding the session's lock shared — a concurrent migration of the
// same session parks this request until the handoff completes.
func (rt *Router) withSession(id string, fn func(c api.Client, name string) error) error {
	l := rt.acquire(id)
	l.mu.RLock()
	defer func() {
		l.mu.RUnlock()
		rt.release(id, l)
	}()
	return rt.routeLocked(id, fn)
}

// routeLocked resolves the session's owner on the current ring and runs
// fn against it. A not_found or wrong_backend answer from the current
// owner while a previous ring placed the session elsewhere is treated
// as a misroute (the request raced a ring change whose migration has
// not landed, or raced it the other way): the call is retried once
// against the previous owner. Callers must hold the session lock.
func (rt *Router) routeLocked(id string, fn func(c api.Client, name string) error) error {
	r := rt.ringPtr.Load()
	owner, ok := r.Owner(id)
	if !ok {
		return api.Errf(api.CodeUnavailable, "router: no backends in ring")
	}
	b := rt.backends[owner]
	b.routes.Add(1)
	rt.metrics.observeRoute(owner)
	err := fn(b.client, owner)
	if err == nil || !(api.CodeOf(err) == api.CodeNotFound || api.RetryAfterReroute(err)) {
		return err
	}
	prev := rt.prevPtr.Load()
	if prev == nil {
		return err
	}
	prevOwner, ok := prev.Owner(id)
	if !ok || prevOwner == owner {
		return err
	}
	pb := rt.backends[prevOwner]
	if pb == nil {
		return err
	}
	rt.misrouteRetries.Add(1)
	rt.metrics.misrouteRetries.Add(1)
	pb.routes.Add(1)
	rt.metrics.observeRoute(prevOwner)
	return fn(pb.client, prevOwner)
}

// newSessionID mirrors the server's id generator: 128 random bits, hex.
func newSessionID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("router: crypto/rand unavailable: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}

// CreateSession places the session on its ring owner. An absent id is
// generated here (not by a backend) so placement and identity agree.
func (rt *Router) CreateSession(req api.CreateSessionRequest) (api.SessionInfo, error) {
	if err := req.Validate(); err != nil {
		return api.SessionInfo{}, err
	}
	if req.ID == "" {
		req.ID = newSessionID()
	}
	var info api.SessionInfo
	err := rt.withSession(req.ID, func(c api.Client, _ string) error {
		ctx, cancel := rt.callCtx()
		defer cancel()
		var err error
		info, err = c.CreateSession(ctx, req)
		return err
	})
	return info, err
}

// GetSession proxies to the session's owner.
func (rt *Router) GetSession(id string) (api.SessionInfo, error) {
	var info api.SessionInfo
	err := rt.withSession(id, func(c api.Client, _ string) error {
		ctx, cancel := rt.callCtx()
		defer cancel()
		var err error
		info, err = c.Session(ctx, id)
		return err
	})
	return info, err
}

// DeleteSession proxies to the session's owner.
func (rt *Router) DeleteSession(id string) error {
	return rt.withSession(id, func(c api.Client, _ string) error {
		ctx, cancel := rt.callCtx()
		defer cancel()
		return c.DeleteSession(ctx, id)
	})
}

// Step proxies one step to the session's owner, parking (not failing)
// while the session is mid-migration.
func (rt *Router) Step(ctx context.Context, id string, loc int) (api.StepResponse, error) {
	var resp api.StepResponse
	err := rt.withSession(id, func(c api.Client, _ string) error {
		var err error
		resp, err = c.Step(ctx, id, loc)
		return err
	})
	return resp, err
}

// StepBatch shards the batch by ring owner, preserving slice order in
// the response and per-session FIFO order within each backend's
// sub-batch (items of one session always share an owner, so their
// relative order survives the split). Per-item failures are reported
// in-band, as the engine does.
func (rt *Router) StepBatch(ctx context.Context, steps []api.BatchStepItem) []api.StepResponse {
	results := make([]api.StepResponse, len(steps))
	if len(steps) == 0 {
		return results
	}
	// One shared lock per distinct session, acquired in sorted order so
	// concurrent batches cannot deadlock against a migration's pending
	// write lock interleaving between two of our RLocks.
	ids := make([]string, 0, len(steps))
	seen := make(map[string]bool, len(steps))
	for _, it := range steps {
		if !seen[it.SessionID] {
			seen[it.SessionID] = true
			ids = append(ids, it.SessionID)
		}
	}
	sort.Strings(ids)
	held := make(map[string]*sessionLock, len(ids))
	for _, id := range ids {
		l := rt.acquire(id)
		l.mu.RLock()
		held[id] = l
	}
	defer func() {
		for _, id := range ids {
			held[id].mu.RUnlock()
			rt.release(id, held[id])
		}
	}()

	r := rt.ringPtr.Load()
	// Split the batch by owner, remembering original positions.
	type shard struct {
		items []api.BatchStepItem
		idx   []int
	}
	shards := make(map[string]*shard)
	for i, it := range steps {
		owner, ok := r.Owner(it.SessionID)
		if !ok {
			results[i] = api.FailedStep(it.SessionID,
				api.Errf(api.CodeUnavailable, "router: no backends in ring"))
			continue
		}
		s := shards[owner]
		if s == nil {
			s = &shard{}
			shards[owner] = s
		}
		s.items = append(s.items, it)
		s.idx = append(s.idx, i)
	}
	var wg sync.WaitGroup
	for owner, s := range shards {
		wg.Add(1)
		go func(owner string, s *shard) {
			defer wg.Done()
			b := rt.backends[owner]
			b.routes.Add(int64(len(s.items)))
			rt.metrics.observeRouteN(owner, int64(len(s.items)))
			rs, err := b.client.StepBatch(ctx, s.items)
			if err != nil || len(rs) != len(s.items) {
				if err == nil {
					err = api.Errf(api.CodeInternal, fmt.Sprintf(
						"router: backend %s returned %d results for %d items", owner, len(rs), len(s.items)))
				}
				for j, it := range s.items {
					results[s.idx[j]] = api.FailedStep(it.SessionID, err)
				}
				return
			}
			for j := range rs {
				results[s.idx[j]] = rs[j]
			}
			// Items the owner did not know fall back to the previous
			// ring's owner — same misroute contract as unary routing.
			prev := rt.prevPtr.Load()
			if prev == nil {
				return
			}
			for j := range rs {
				code := rs[j].Code
				if !(code == api.CodeNotFound || code == api.CodeWrongBackend) {
					continue
				}
				it := s.items[j]
				prevOwner, ok := prev.Owner(it.SessionID)
				if !ok || prevOwner == owner {
					continue
				}
				pb := rt.backends[prevOwner]
				if pb == nil {
					continue
				}
				rt.misrouteRetries.Add(1)
				rt.metrics.misrouteRetries.Add(1)
				pb.routes.Add(1)
				rt.metrics.observeRoute(prevOwner)
				resp, rerr := pb.client.Step(ctx, it.SessionID, it.Loc)
				if rerr != nil {
					resp = api.FailedStep(it.SessionID, rerr)
				}
				results[s.idx[j]] = resp
			}
		}(owner, s)
	}
	wg.Wait()
	return results
}

// ListSessions fans the page request out to every in-ring backend and
// merges the answers into one id-ordered page.
//
// Merged pagination: every backend is asked for the same cursor and
// limit. A backend that returned a full page with a next-cursor has
// only promised ids up to its last returned id (its "horizon") — ids
// beyond that may exist on it but were cut. The merged page therefore
// keeps only ids at or below the minimum horizon across truncated
// backends; everything kept is globally complete, so the merged
// next-cursor (the last kept id) never skips a session.
func (rt *Router) ListSessions(req api.ListSessionsRequest) (api.SessionPage, error) {
	req, err := req.Normalize()
	if err != nil {
		return api.SessionPage{}, err
	}
	members := rt.ringPtr.Load().Members()
	if len(members) == 0 {
		return api.SessionPage{}, api.Errf(api.CodeUnavailable, "router: no backends in ring")
	}
	type answer struct {
		page api.SessionPage
		err  error
	}
	answers := make([]answer, len(members))
	var wg sync.WaitGroup
	for i, name := range members {
		wg.Add(1)
		go func(i int, b *backend) {
			defer wg.Done()
			ctx, cancel := rt.callCtx()
			defer cancel()
			answers[i].page, answers[i].err = b.client.ListSessions(ctx, req)
		}(i, rt.backends[name])
	}
	wg.Wait()

	var merged []api.SessionInfo
	seen := make(map[string]bool)
	horizon := ""    // min last-id among truncated backends ("" = none truncated)
	anyMore := false // some backend has pages beyond this one
	for i, a := range answers {
		if a.err != nil {
			return api.SessionPage{}, api.Errf(api.CodeUnavailable,
				fmt.Sprintf("router: list on backend %s: %v", members[i], a.err))
		}
		for _, s := range a.page.Sessions {
			if !seen[s.ID] { // a session mid-migration can appear twice
				seen[s.ID] = true
				merged = append(merged, s)
			}
		}
		if a.page.NextCursor != "" {
			anyMore = true
			last := a.page.NextCursor
			if n := len(a.page.Sessions); n > 0 {
				last = a.page.Sessions[n-1].ID
			}
			if horizon == "" || last < horizon {
				horizon = last
			}
		}
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].ID < merged[j].ID })
	if horizon != "" {
		cut := sort.Search(len(merged), func(i int) bool { return merged[i].ID > horizon })
		merged = merged[:cut]
	}
	if len(merged) > req.Limit {
		merged = merged[:req.Limit]
		anyMore = true
	}
	page := api.SessionPage{Sessions: merged}
	if anyMore && len(merged) > 0 {
		page.NextCursor = merged[len(merged)-1].ID
	}
	return page, nil
}

// ExportSession proxies to the session's owner.
func (rt *Router) ExportSession(ctx context.Context, id string) (api.SessionExport, error) {
	var exp api.SessionExport
	err := rt.withSession(id, func(c api.Client, _ string) error {
		var err error
		exp, err = c.ExportSession(ctx, id)
		return err
	})
	return exp, err
}

// ImportSession places the imported session on its ring owner.
func (rt *Router) ImportSession(exp api.SessionExport) (api.SessionInfo, error) {
	if err := exp.Validate(); err != nil {
		return api.SessionInfo{}, err
	}
	var info api.SessionInfo
	err := rt.withSession(exp.ID, func(c api.Client, _ string) error {
		ctx, cancel := rt.callCtx()
		defer cancel()
		var err error
		info, err = c.ImportSession(ctx, exp)
		return err
	})
	return info, err
}

// Stats fans out to every backend (reachable or not in-ring alike),
// sums the session/step counters and attaches the fleet section.
func (rt *Router) Stats() api.Stats {
	type answer struct {
		stats api.Stats
		err   error
	}
	answers := make([]answer, len(rt.order))
	var wg sync.WaitGroup
	for i, name := range rt.order {
		wg.Add(1)
		go func(i int, b *backend) {
			defer wg.Done()
			ctx, cancel := rt.callCtx()
			defer cancel()
			answers[i].stats, answers[i].err = b.client.Stats(ctx)
		}(i, rt.backends[name])
	}
	wg.Wait()
	var out api.Stats
	for i, a := range answers {
		if a.err != nil {
			continue
		}
		b := rt.backends[rt.order[i]]
		b.sessions.Store(a.stats.Sessions.Live)
		out.Sessions.Live += a.stats.Sessions.Live
		out.Sessions.Created += a.stats.Sessions.Created
		out.Sessions.Evicted += a.stats.Sessions.Evicted
		out.Sessions.Imported += a.stats.Sessions.Imported
		out.Sessions.Exported += a.stats.Sessions.Exported
		out.Steps.Served += a.stats.Steps.Served
		out.Steps.Errors += a.stats.Steps.Errors
		out.Steps.Uniform += a.stats.Steps.Uniform
		out.Steps.QueueRejections += a.stats.Steps.QueueRejections
	}
	if out.Steps.Served > 0 {
		out.Steps.SuppressionRate = float64(out.Steps.Uniform) / float64(out.Steps.Served)
	}
	out.Fleet = rt.fleetStats()
	return out
}

// fleetStats builds the fleet section from the router's own state.
func (rt *Router) fleetStats() *api.FleetStats {
	r := rt.ringPtr.Load()
	fs := &api.FleetStats{
		Epoch:               rt.epoch.Load(),
		VirtualNodes:        r.VirtualNodes(),
		HealthTransitions:   rt.healthTransitions.Load(),
		MigrationsStarted:   rt.migStarted.Load(),
		MigrationsCompleted: rt.migCompleted.Load(),
		MigrationsFailed:    rt.migFailed.Load(),
		MisrouteRetries:     rt.misrouteRetries.Load(),
	}
	for _, name := range rt.order {
		b := rt.backends[name]
		fs.Members = append(fs.Members, api.FleetMemberStats{
			Name:     name,
			Healthy:  b.healthy.Load(),
			InRing:   b.inRing.Load(),
			Draining: b.draining.Load(),
			Sessions: b.sessions.Load(),
			Routes:   b.routes.Load(),
		})
	}
	return fs
}

// Health reports "ok" while at least one backend is in the ring.
// Sessions is the fleet-wide live count from the last stats fan-out.
func (rt *Router) Health() api.Health {
	inRing := 0
	var sessions int64
	for _, name := range rt.order {
		b := rt.backends[name]
		if b.inRing.Load() {
			inRing++
			sessions += b.sessions.Load()
		}
	}
	status := "ok"
	if inRing == 0 {
		status = "no_backends"
	}
	return api.Health{
		Status:        status,
		Sessions:      sessions,
		UptimeSeconds: time.Since(rt.start).Seconds(),
	}
}
