package qp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"priste/internal/mat"
)

// bruteMax approximates the true simplex maximum by enumerating all
// compositions of `steps` into n parts (a dense grid on the simplex).
func bruteMax(p Problem, steps int) float64 {
	n := len(p.A)
	pi := make(mat.Vector, n)
	best := math.Inf(-1)
	var rec func(i, left int)
	rec = func(i, left int) {
		if i == n-1 {
			pi[i] = float64(left) / float64(steps)
			if v := p.Eval(pi); v > best {
				best = v
			}
			return
		}
		for k := 0; k <= left; k++ {
			pi[i] = float64(k) / float64(steps)
			rec(i+1, left-k)
		}
	}
	rec(0, steps)
	return best
}

func solveOK(t *testing.T, p Problem, opt Options) Result {
	t.Helper()
	r, err := Solve(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestValidate(t *testing.T) {
	if err := (Problem{}).Validate(); err == nil {
		t.Error("empty problem accepted")
	}
	if err := (Problem{A: mat.Vector{1}, W: mat.Vector{1, 2}, Q: mat.Vector{1}}).Validate(); err == nil {
		t.Error("length mismatch accepted")
	}
	if err := (Problem{A: mat.Vector{-1}, W: mat.Vector{1}, Q: mat.Vector{1}}).Validate(); err == nil {
		t.Error("negative A accepted")
	}
	if err := (Problem{A: mat.Vector{1}, W: mat.Vector{math.NaN()}, Q: mat.Vector{1}}).Validate(); err == nil {
		t.Error("NaN W accepted")
	}
	if err := (Problem{A: mat.Vector{1}, W: mat.Vector{1}, Q: mat.Vector{1}}).Validate(); err != nil {
		t.Errorf("valid problem rejected: %v", err)
	}
}

func TestSolveAllNegativeIsSatisfied(t *testing.T) {
	// g = (πa)(πw) + qπ with w, q ≤ 0 and a ≥ 0: max is 0 at π = 0.
	p := Problem{
		A: mat.Vector{0.5, 0.3, 0.8},
		W: mat.Vector{-1, -2, -0.5},
		Q: mat.Vector{-0.1, 0, -0.3},
	}
	r := solveOK(t, p, Options{})
	if r.Verdict != Satisfied {
		t.Fatalf("verdict = %v, upper = %v", r.Verdict, r.Upper)
	}
	if r.Upper > 1e-9 {
		t.Fatalf("upper = %v", r.Upper)
	}
}

func TestSolvePositiveLinearIsViolated(t *testing.T) {
	p := Problem{
		A: mat.Vector{0.1, 0.1},
		W: mat.Vector{0, 0},
		Q: mat.Vector{1, 0},
	}
	r := solveOK(t, p, Options{})
	if r.Verdict != Violated {
		t.Fatalf("verdict = %v", r.Verdict)
	}
	if r.Lower < 1-1e-9 {
		t.Fatalf("lower = %v, want ≥ 1", r.Lower)
	}
	if p.Eval(r.BestPi) != r.Lower {
		t.Fatalf("BestPi does not reproduce Lower")
	}
}

func TestSolveQuadraticViolation(t *testing.T) {
	// (πa)(πw) with a = w = 1: value is identically 1 on the simplex.
	p := Problem{
		A: mat.Vector{1, 1},
		W: mat.Vector{1, 1},
		Q: mat.Vector{0, 0},
	}
	r := solveOK(t, p, Options{})
	if r.Verdict != Violated {
		t.Fatalf("verdict = %v", r.Verdict)
	}
	if math.Abs(r.Lower-1) > 1e-6 {
		t.Fatalf("max = %v, want 1", r.Lower)
	}
}

func TestSolveIndefiniteInterior(t *testing.T) {
	// Mixed-sign w: the max may be interior in the s dimension.
	p := Problem{
		A: mat.Vector{1, 0.5, 0.2},
		W: mat.Vector{2, -3, 1},
		Q: mat.Vector{-0.2, 0.4, -0.1},
	}
	r := solveOK(t, p, Options{MaxNodes: 20000})
	want := bruteMax(p, 60)
	if r.Upper < want-1e-6 {
		t.Fatalf("upper %v below brute-force max %v", r.Upper, want)
	}
	if r.Lower < want-0.02 {
		t.Fatalf("lower %v misses brute-force max %v", r.Lower, want)
	}
	if r.Verdict != Violated && want > 1e-6 {
		t.Fatalf("verdict = %v with positive max %v", r.Verdict, want)
	}
}

func TestSolveSatisfiedGapCloses(t *testing.T) {
	// A strictly-negative instance: the solver must close the gap and
	// certify satisfaction, not stop at Unknown.
	p := Problem{
		A: mat.Vector{1, 0.5, 0.2},
		W: mat.Vector{2, -3, 1},
		Q: mat.Vector{-3, -3, -3},
	}
	r := solveOK(t, p, Options{MaxNodes: 20000})
	if r.Verdict != Satisfied {
		t.Fatalf("verdict = %v bounds [%v,%v]", r.Verdict, r.Lower, r.Upper)
	}
	want := bruteMax(p, 60)
	if r.Upper < want-1e-6 {
		t.Fatalf("upper %v below brute max %v", r.Upper, want)
	}
}

func TestSolveBoundsSandwichBruteForceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(3)
		p := Problem{A: make(mat.Vector, n), W: make(mat.Vector, n), Q: make(mat.Vector, n)}
		for i := 0; i < n; i++ {
			p.A[i] = rng.Float64()
			p.W[i] = rng.NormFloat64()
			p.Q[i] = rng.NormFloat64() * 0.5
		}
		r, err := Solve(p, Options{MaxNodes: 5000})
		if err != nil {
			return false
		}
		grid := bruteMax(p, 30)
		// Certified upper bound must dominate the grid estimate; the lower
		// bound must be attainable (checked by re-evaluating BestPi).
		if r.Upper < grid-1e-7 {
			return false
		}
		if r.BestPi != nil && math.Abs(p.Eval(r.BestPi)-r.Lower) > 1e-9 {
			return false
		}
		return r.Lower <= r.Upper+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveDeadlineReturnsQuickly(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 200
	p := Problem{A: make(mat.Vector, n), W: make(mat.Vector, n), Q: make(mat.Vector, n)}
	for i := 0; i < n; i++ {
		p.A[i] = rng.Float64()
		p.W[i] = rng.NormFloat64()
		p.Q[i] = rng.NormFloat64()
	}
	start := time.Now()
	r := solveOK(t, p, Options{Deadline: time.Millisecond, MaxNodes: 1 << 30})
	if e := time.Since(start); e > 2*time.Second {
		t.Fatalf("solver ignored deadline, took %v", e)
	}
	if r.Lower > r.Upper {
		t.Fatalf("bounds inverted: [%v, %v]", r.Lower, r.Upper)
	}
}

func TestSolveZeroAIsLinear(t *testing.T) {
	p := Problem{
		A: mat.Vector{0, 0},
		W: mat.Vector{5, -5},
		Q: mat.Vector{-1, 2},
	}
	r := solveOK(t, p, Options{})
	if r.Verdict != Violated || math.Abs(r.Lower-2) > 1e-9 {
		t.Fatalf("lower = %v verdict %v, want 2 violated", r.Lower, r.Verdict)
	}
}

func TestSimplexLPBasic(t *testing.T) {
	c := mat.Vector{3, 2, -1}
	a := mat.Vector{0.2, 0.5, 0.9}
	// Unconstrained simplex optimum is the best vertex: e_0 with value 3,
	// feasible when its a (0.2) lies in the interval.
	v, pi, ok := simplexLP(c, a, 0.1, 0.9)
	if !ok || math.Abs(v-3) > 1e-12 {
		t.Fatalf("v = %v ok = %v", v, ok)
	}
	if pi[0] != 1 {
		t.Fatalf("pi = %v", pi)
	}
	// Force s ≥ 0.4: best is the mixture of vertices 0 and 1 on the hull
	// at s = 0.4 — value interpolates between (0.2,3) and (0.5,2).
	v, pi, ok = simplexLP(c, a, 0.4, 0.9)
	if !ok {
		t.Fatal("infeasible")
	}
	lam := (0.5 - 0.4) / (0.5 - 0.2)
	want := lam*3 + (1-lam)*2
	if math.Abs(v-want) > 1e-12 {
		t.Fatalf("v = %v want %v (pi=%v)", v, want, pi)
	}
	if math.Abs(pi.Dot(a)-0.4) > 1e-12 || math.Abs(pi.Sum()-1) > 1e-12 {
		t.Fatalf("pi infeasible: %v", pi)
	}
	// Interval outside [min a, max a] is infeasible.
	if _, _, ok = simplexLP(c, a, 1.5, 2); ok {
		t.Fatal("infeasible interval accepted")
	}
	if _, _, ok = simplexLP(c, a, -1, 0.1); ok {
		t.Fatal("interval below min a accepted")
	}
}

func TestSimplexLPEqualA(t *testing.T) {
	// All a equal: hull collapses to one point carrying the best c.
	c := mat.Vector{-1, 5, 2}
	a := mat.Vector{0.3, 0.3, 0.3}
	v, pi, ok := simplexLP(c, a, 0.3, 0.3)
	if !ok || v != 5 || pi[1] != 1 {
		t.Fatalf("v = %v pi = %v ok = %v", v, pi, ok)
	}
}

// Property: simplexLP result is feasible and dominates random feasible
// points on the simplex slice.
func TestSimplexLPOptimalityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		c := make(mat.Vector, n)
		a := make(mat.Vector, n)
		for i := 0; i < n; i++ {
			c[i] = rng.NormFloat64()
			a[i] = rng.Float64()
		}
		lo, hi := a.Min(), a.Max()
		sl := lo + rng.Float64()*(hi-lo)
		sh := sl + rng.Float64()*(hi-sl)
		v, pi, ok := simplexLP(c, a, sl, sh)
		if !ok {
			return false
		}
		s := pi.Dot(a)
		if s < sl-1e-9 || s > sh+1e-9 || math.Abs(pi.Sum()-1) > 1e-9 || pi.Min() < -1e-12 {
			return false
		}
		// Random simplex points inside the slice must not beat the LP.
		for trial := 0; trial < 300; trial++ {
			x := make(mat.Vector, n)
			for i := range x {
				x[i] = rng.ExpFloat64()
			}
			x.Normalize()
			xs := x.Dot(a)
			if xs < sl || xs > sh {
				continue
			}
			if c.Dot(x) > v+1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBestQuadOnInterval(t *testing.T) {
	// Concave with interior max at 0.5: -x² + x on [-1, 1].
	if x := bestQuadOnInterval(-1, 1, -1, 1); math.Abs(x-0.5) > 1e-12 {
		t.Fatalf("x = %v", x)
	}
	// Convex: best endpoint. x² + x on [-1, 1] → max at 1 (value 2).
	if x := bestQuadOnInterval(1, 1, -1, 1); x != 1 {
		t.Fatalf("x = %v", x)
	}
	// Decreasing linear on [-0.5, 1]: max at -0.5.
	if x := bestQuadOnInterval(0, -1, -0.5, 1); x != -0.5 {
		t.Fatalf("x = %v", x)
	}
	// No gain: returns 0.
	if x := bestQuadOnInterval(-1, 0, -0.5, 0.5); x != 0 {
		t.Fatalf("x = %v", x)
	}
}

func TestCheckReleaseValidation(t *testing.T) {
	ok3 := mat.Vector{0.1, 0.2, 0.3}
	if _, err := CheckRelease(ReleaseCheck{ATilde: ok3, BTilde: mat.Vector{1}, CTilde: ok3, Epsilon: 1}, ReleaseOptions{}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := CheckRelease(ReleaseCheck{ATilde: ok3, BTilde: ok3, CTilde: ok3, Epsilon: 0}, ReleaseOptions{}); err == nil {
		t.Error("zero epsilon accepted")
	}
	if _, err := CheckRelease(ReleaseCheck{ATilde: ok3, BTilde: ok3, CTilde: ok3, Epsilon: math.Inf(1)}, ReleaseOptions{}); err == nil {
		t.Error("infinite epsilon accepted")
	}
}

func TestCheckReleaseUninformativeObservationPasses(t *testing.T) {
	// b̃ = Pr(E|u0=i)·k, c̃ = k: observation independent of state ⇒ no
	// information disclosed ⇒ any ε certifiable.
	a := mat.Vector{0.3, 0.5, 0.2}
	k := 0.01
	b := a.Clone().Scale(k)
	c := mat.Vector{k, k, k}
	dec, err := CheckRelease(ReleaseCheck{ATilde: a, BTilde: b, CTilde: c, Epsilon: 0.1}, ReleaseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !dec.OK {
		t.Fatalf("uninformative release rejected: eq15=%+v eq16=%+v", dec.Eq15, dec.Eq16)
	}
}

func TestCheckReleaseRevealingObservationFails(t *testing.T) {
	// Observation perfectly correlated with the event: for π
	// concentrated near state 0 the ratio explodes, so a small ε must be
	// rejected via a Violated verdict.
	a := mat.Vector{0.9, 0.1}
	b := mat.Vector{0.9 * 0.99, 0.1 * 0.01} // Pr(E,o|u0): o strongly signals E
	c := mat.Vector{0.9*0.99 + 0.1*0.3, 0.1*0.01 + 0.9*0.001}
	_ = c
	// Construct c̃ as b̃ + small not-E mass so that Pr(o|¬E) is tiny.
	c2 := mat.Vector{b[0] + 0.001*(1-a[0]), b[1] + 0.001*(1-a[1])}
	dec, err := CheckRelease(ReleaseCheck{ATilde: a, BTilde: b, CTilde: c2, Epsilon: 0.5}, ReleaseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if dec.OK {
		t.Fatal("strongly revealing observation accepted")
	}
	if dec.Conservative {
		t.Fatal("expected a hard violation, not a budget timeout")
	}
}

func TestCheckReleaseZeroScaleTrivial(t *testing.T) {
	a := mat.Vector{0.5, 0.5}
	z := mat.Vector{0, 0}
	dec, err := CheckRelease(ReleaseCheck{ATilde: a, BTilde: z, CTilde: z, Epsilon: 1}, ReleaseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !dec.OK {
		t.Fatal("impossible observation should be trivially safe")
	}
}

func TestCheckReleaseScaleInvarianceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		a := make(mat.Vector, n)
		b := make(mat.Vector, n)
		c := make(mat.Vector, n)
		for i := 0; i < n; i++ {
			a[i] = rng.Float64()
			c[i] = rng.Float64()
			b[i] = c[i] * rng.Float64() * a[i] // joint ≤ marginal heuristic
		}
		chk := ReleaseCheck{ATilde: a, BTilde: b, CTilde: c, Epsilon: 0.5 + rng.Float64()}
		d1, err1 := CheckRelease(chk, ReleaseOptions{})
		scaled := ReleaseCheck{
			ATilde:  a,
			BTilde:  b.Clone().Scale(1e-80),
			CTilde:  c.Clone().Scale(1e-80),
			Epsilon: chk.Epsilon,
		}
		d2, err2 := CheckRelease(scaled, ReleaseOptions{})
		if err1 != nil || err2 != nil {
			return false
		}
		return d1.OK == d2.OK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestFixedPiLoss(t *testing.T) {
	a := mat.Vector{0.5, 0.1}
	b := mat.Vector{0.05, 0.02}
	c := mat.Vector{0.2, 0.3}
	pi := mat.Vector{0.5, 0.5}
	loss, err := FixedPiLoss(ReleaseCheck{ATilde: a, BTilde: b, CTilde: c, Epsilon: 1}, pi)
	if err != nil {
		t.Fatal(err)
	}
	pe := 0.3
	pj := 0.035
	pob := 0.25
	want := math.Abs(math.Log((pj / pe) / ((pob - pj) / (1 - pe))))
	if math.Abs(loss-want) > 1e-12 {
		t.Fatalf("loss = %v want %v", loss, want)
	}
}

func TestFixedPiLossErrors(t *testing.T) {
	chk := ReleaseCheck{
		ATilde: mat.Vector{1, 1}, // prior 1 under any distribution pi
		BTilde: mat.Vector{0.1, 0.1},
		CTilde: mat.Vector{0.2, 0.2},
	}
	if _, err := FixedPiLoss(chk, mat.Vector{0.5, 0.5}); err == nil {
		t.Error("degenerate prior accepted")
	}
	if _, err := FixedPiLoss(chk, mat.Vector{0.5}); err == nil {
		t.Error("length mismatch accepted")
	}
	chk2 := ReleaseCheck{ATilde: mat.Vector{0.5, 0.5}, BTilde: mat.Vector{0, 0}, CTilde: mat.Vector{0, 0}}
	if _, err := FixedPiLoss(chk2, mat.Vector{0.5, 0.5}); err == nil {
		t.Error("zero observation probability accepted")
	}
}

func TestVerdictString(t *testing.T) {
	if Satisfied.String() != "satisfied" || Violated.String() != "violated" || Unknown.String() != "unknown" {
		t.Error("verdict strings wrong")
	}
	if Verdict(9).String() == "" {
		t.Error("unknown verdict should still render")
	}
}
