package qp

import (
	"math/rand"
	"testing"

	"priste/internal/mat"
)

// benchProblem mimics the PriSTE condition structure: a ∈ [0,1]ⁿ event
// probabilities, w mixing positive joint terms against negative marginal
// terms, q small.
func benchProblem(n int, seed int64) Problem {
	rng := rand.New(rand.NewSource(seed))
	p := Problem{A: make(mat.Vector, n), W: make(mat.Vector, n), Q: make(mat.Vector, n)}
	for i := 0; i < n; i++ {
		p.A[i] = rng.Float64()
		c := rng.Float64()
		bjoint := c * rng.Float64() * p.A[i]
		p.W[i] = 0.6*bjoint - 1.6*c
		p.Q[i] = bjoint
	}
	return p
}

// BenchmarkSolve measures the certified condition check at the paper's
// map sizes; the release loop runs two of these per candidate.
func BenchmarkSolve(b *testing.B) {
	for _, n := range []int{100, 400} {
		name := "m100"
		if n == 400 {
			name = "m400"
		}
		b.Run(name, func(b *testing.B) {
			p := benchProblem(n, 1)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Solve(p, Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCheckRelease measures the full two-condition release check.
func BenchmarkCheckRelease(b *testing.B) {
	n := 100
	rng := rand.New(rand.NewSource(2))
	a := make(mat.Vector, n)
	c := make(mat.Vector, n)
	bt := make(mat.Vector, n)
	for i := 0; i < n; i++ {
		a[i] = rng.Float64()
		c[i] = rng.Float64()
		bt[i] = c[i] * a[i] * rng.Float64()
	}
	chk := ReleaseCheck{ATilde: a, BTilde: bt, CTilde: c, Epsilon: 0.5}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := CheckRelease(chk, ReleaseOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
