// Package qp decides the release conditions of Theorem IV.1. The paper
// delegates this to IBM CPLEX; this package is the from-scratch substitute.
//
// Both conditions (Eqs. 15 and 16) ask whether a quadratic function of the
// unknown initial probability π can be positive anywhere over the set of
// probability distributions. The PriSTE quadratic matrix is the rank-one
// product ã·wᵀ (projected to the first m coordinates), so the objective
// always has the form
//
//	g(π) = (π·a)(π·w) + q·π ,   a ≥ 0,  π ∈ Δ = {π ≥ 0, Σπᵢ = 1}.
//
// The paper's statement of the constraints lists only 0 ≤ πᵢ ≤ 1, but its
// derivation of Eqs. (15)/(16) from Definition II.4 uses π·1 = 1, and its
// claim that a fully-uninformative mechanism (α = 0) always satisfies the
// conditions holds only on the simplex — so Δ is the correct feasible set
// and the one implemented here.
//
// Solve performs branch-and-bound on the scalar s = π·a, which over Δ
// ranges in [min aᵢ, max aᵢ]. For an interval [sl, sh] every feasible π
// satisfies
//
//	g(π) ≤ max( (sl·w + q)·π , (sh·w + q)·π )
//
// and maximising a linear function c·π over {π ∈ Δ, sl ≤ π·a ≤ sh} is an
// exact O(n log n) problem: h(s) = max{c·π : π ∈ Δ, a·π = s} is the upper
// concave envelope of the points (aᵢ, cᵢ), so the node bound is the
// envelope's maximum over [sl, sh]. Upper bounds are therefore certified,
// which is what the paper's conservative release (§IV-C) needs: a location
// is only released when the solver is *sure* both conditions hold. General
// indefinite QP is NP-hard [Pardalos & Vavasis 1991]; the same time-budget/
// "not sure ⇒ don't release" escape hatch the paper uses with CPLEX applies
// here via Options.Deadline.
package qp

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
	"time"

	"priste/internal/mat"
)

// Problem is: maximize (π·A)(π·W) + Q·π subject to π in the probability
// simplex. A must be elementwise non-negative.
type Problem struct {
	A, W, Q mat.Vector
}

// Validate checks dimensions and the sign restriction on A.
func (p Problem) Validate() error {
	n := len(p.A)
	if n == 0 {
		return fmt.Errorf("qp: empty problem")
	}
	if len(p.W) != n || len(p.Q) != n {
		return fmt.Errorf("qp: length mismatch A=%d W=%d Q=%d", n, len(p.W), len(p.Q))
	}
	for i, v := range p.A {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("qp: A[%d] = %g must be finite and non-negative", i, v)
		}
	}
	for i := range p.W {
		if math.IsNaN(p.W[i]) || math.IsInf(p.W[i], 0) || math.IsNaN(p.Q[i]) || math.IsInf(p.Q[i], 0) {
			return fmt.Errorf("qp: W/Q contain non-finite values at %d", i)
		}
	}
	return nil
}

// Eval returns the objective value at π.
func (p Problem) Eval(pi mat.Vector) float64 {
	return pi.Dot(p.A)*pi.Dot(p.W) + pi.Dot(p.Q)
}

// Verdict classifies the outcome of a bound check.
type Verdict int

const (
	// Satisfied means the solver certified max g(π) ≤ Tol.
	Satisfied Verdict = iota
	// Violated means a π with g(π) > Tol was found.
	Violated
	// Unknown means the budget ran out with Tol between the bounds.
	Unknown
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case Satisfied:
		return "satisfied"
	case Violated:
		return "violated"
	case Unknown:
		return "unknown"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// Options tunes the solver.
type Options struct {
	// Tol is the positivity threshold: values ≤ Tol count as "not a
	// violation". Should be a small positive number scaled to the
	// problem's magnitude. Default 1e-9.
	Tol float64
	// MaxNodes caps branch-and-bound nodes. Default 20000.
	MaxNodes int
	// Deadline, if non-zero, aborts the search when exceeded, returning
	// Unknown (the paper's conservative-release time threshold).
	Deadline time.Duration
	// AscentPasses is the number of pairwise-exchange ascent sweeps used
	// to sharpen lower bounds at each node. Default 2.
	AscentPasses int
}

func (o Options) withDefaults() Options {
	if o.Tol <= 0 {
		o.Tol = 1e-9
	}
	if o.MaxNodes <= 0 {
		o.MaxNodes = 20000
	}
	if o.AscentPasses <= 0 {
		o.AscentPasses = 2
	}
	return o
}

// Result reports the solver's conclusion and certificates.
type Result struct {
	Verdict Verdict
	// Lower is the best objective value found (a certified lower bound on
	// the maximum); BestPi attains it.
	Lower  float64
	BestPi mat.Vector
	// Upper is a certified upper bound on the maximum.
	Upper float64
	// Nodes is the number of branch-and-bound nodes processed.
	Nodes int
	// Elapsed is the wall time spent.
	Elapsed time.Duration
}

type node struct {
	sl, sh float64
	ub     float64
}

type nodeHeap []node

func (h nodeHeap) Len() int            { return len(h) }
func (h nodeHeap) Less(i, j int) bool  { return h[i].ub > h[j].ub } // max-heap on UB
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(node)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Solve maximises the problem over the simplex and classifies the result
// against opt.Tol.
func Solve(p Problem, opt Options) (Result, error) {
	start := time.Now()
	opt = opt.withDefaults()
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	n := len(p.A)
	sMin, sMax := p.A.Min(), p.A.Max()

	ws := newWorkspace(p)

	best := Result{Lower: math.Inf(-1), Upper: math.Inf(1)}
	consider := func(pi mat.Vector) {
		if pi == nil {
			return
		}
		// The O(n²) pairwise ascent only pays off on candidates that are
		// already competitive; evaluate first and polish only those.
		v := p.Eval(pi)
		if v < best.Lower-0.1*math.Abs(best.Lower) {
			return
		}
		ws.ascent(pi, opt.AscentPasses)
		if v = p.Eval(pi); v > best.Lower {
			best.Lower = v
			best.BestPi = pi.Clone()
		}
	}

	// Seed with the best vertex (cheap: g(eᵢ) = aᵢwᵢ + qᵢ) and uniform.
	bi := 0
	bv := math.Inf(-1)
	for i := 0; i < n; i++ {
		if v := p.A[i]*p.W[i] + p.Q[i]; v > bv {
			bv, bi = v, i
		}
	}
	vert := mat.NewVector(n)
	vert[bi] = 1
	consider(vert)
	uni := mat.NewVector(n)
	for i := range uni {
		uni[i] = 1 / float64(n)
	}
	consider(uni)

	rootUB, rootPis := ws.nodeBound(sMin, sMax)
	for _, pi := range rootPis {
		consider(pi)
	}
	h := &nodeHeap{{sl: sMin, sh: sMax, ub: rootUB}}
	heap.Init(h)

	nodes := 0
	closedUB := math.Inf(-1) // max UB among nodes pruned without branching
	for h.Len() > 0 {
		if best.Lower > opt.Tol {
			break // violation certified
		}
		top := (*h)[0]
		if top.ub <= opt.Tol {
			break // satisfaction certified: no remaining node can exceed Tol
		}
		if top.ub-best.Lower <= opt.Tol {
			break // gap closed
		}
		if nodes >= opt.MaxNodes {
			break
		}
		if opt.Deadline > 0 && time.Since(start) > opt.Deadline {
			break
		}
		heap.Pop(h)
		nodes++
		mid := 0.5 * (top.sl + top.sh)
		for _, iv := range [][2]float64{{top.sl, mid}, {mid, top.sh}} {
			ub, pis := ws.nodeBound(iv[0], iv[1])
			for _, pi := range pis {
				consider(pi)
			}
			if ub > best.Lower || ub > opt.Tol {
				heap.Push(h, node{sl: iv[0], sh: iv[1], ub: ub})
			} else if ub > closedUB {
				// Pruned node: its UB still caps the maximum on its region.
				closedUB = ub
			}
		}
	}
	best.Upper = math.Max(best.Lower, closedUB)
	if h.Len() > 0 {
		best.Upper = math.Max(best.Upper, (*h)[0].ub)
	}

	best.Nodes = nodes
	best.Elapsed = time.Since(start)
	switch {
	case best.Lower > opt.Tol:
		best.Verdict = Violated
	case best.Upper <= opt.Tol:
		best.Verdict = Satisfied
	default:
		best.Verdict = Unknown
	}
	return best, nil
}

// workspace holds the sorted-hull state reused by every LP subproblem. The
// hull's x-coordinates are the entries of A, which never change across
// nodes, so the sort order is computed once; each node only rebuilds the
// O(n) monotone-chain scan with its own y-values.
type workspace struct {
	p     Problem
	n     int
	order []int // indices sorted by (A[i], then i) ascending
	c     mat.Vector
	hull  []hullPt
}

func newWorkspace(p Problem) *workspace {
	n := len(p.A)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool {
		ax, ay := p.A[order[x]], p.A[order[y]]
		if ax != ay {
			return ax < ay
		}
		return order[x] < order[y]
	})
	return &workspace{
		p: p, n: n, order: order,
		c:    make(mat.Vector, n),
		hull: make([]hullPt, 0, n),
	}
}

// nodeBound returns a certified upper bound for the node [sl,sh] and the
// candidate points produced by the two LP relaxations (for lower-bounding).
// An interval disjoint from [min a, max a] returns -Inf and no candidates.
func (w *workspace) nodeBound(sl, sh float64) (float64, []mat.Vector) {
	ub := math.Inf(-1)
	var cands []mat.Vector
	for _, s := range []float64{sl, sh} {
		for i := range w.c {
			w.c[i] = s*w.p.W[i] + w.p.Q[i]
		}
		val, pi, feasible := w.simplexLP(sl, sh)
		if !feasible {
			return math.Inf(-1), nil
		}
		if val > ub {
			ub = val
		}
		cands = append(cands, pi)
	}
	return ub, cands
}

// ascent performs pairwise-exchange sweeps on g over the simplex, improving
// pi in place. Transferring mass δ from coordinate i to j keeps π on the
// simplex, and g as a function of δ is an explicit quadratic maximised in
// closed form over the feasible transfer interval.
func (w *workspace) ascent(pi mat.Vector, passes int) {
	a, wv, q := w.p.A, w.p.W, w.p.Q
	n := w.n
	if n < 2 {
		return
	}
	s := pi.Dot(a)
	t := pi.Dot(wv)
	for pass := 0; pass < passes; pass++ {
		improved := false
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				da := a[j] - a[i]
				dw := wv[j] - wv[i]
				dq := q[j] - q[i]
				// δ > 0 moves mass from i to j: δ ∈ [-π_j, π_i].
				qa := da * dw
				qb := s*dw + t*da + dq
				lo, hi := -pi[j], pi[i]
				d := bestQuadOnInterval(qa, qb, lo, hi)
				if d == 0 {
					continue
				}
				gain := qa*d*d + qb*d
				if gain <= 1e-15*(1+math.Abs(t)*math.Abs(s)) {
					continue
				}
				pi[i] -= d
				pi[j] += d
				s += d * da
				t += d * dw
				improved = true
			}
		}
		if !improved {
			break
		}
	}
}

// bestQuadOnInterval maximises qa·x² + qb·x over [lo, hi] (lo ≤ 0 ≤ hi).
func bestQuadOnInterval(qa, qb, lo, hi float64) float64 {
	bx, bv := 0.0, 0.0
	try := func(x float64) {
		if v := qa*x*x + qb*x; v > bv {
			bx, bv = x, v
		}
	}
	try(lo)
	try(hi)
	if qa < 0 {
		if x := -qb / (2 * qa); x > lo && x < hi {
			try(x)
		}
	}
	return bx
}

// simplexLP is the standalone form used by tests; it computes the sort
// order per call. The solver's hot path uses workspace.simplexLP with the
// precomputed order instead.
func simplexLP(c, a mat.Vector, sl, sh float64) (float64, mat.Vector, bool) {
	order := make([]int, len(a))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool {
		ax, ay := a[order[x]], a[order[y]]
		if ax != ay {
			return ax < ay
		}
		return order[x] < order[y]
	})
	hull := buildHull(order, a, c, nil)
	return evalHull(hull, len(a), sl, sh)
}

// simplexLP maximises w.c·π subject to π ∈ Δ and sl ≤ a·π ≤ sh, with
// a ≥ 0. h(s) = max{c·π : π ∈ Δ, a·π = s} is the upper concave envelope of
// the point set {(aᵢ, cᵢ)}; the optimum over the interval is the
// envelope's peak clamped into [sl, sh]. It returns the optimal value, an
// optimal point (a vertex or a two-vertex mixture), and feasibility.
func (w *workspace) simplexLP(sl, sh float64) (float64, mat.Vector, bool) {
	w.hull = buildHull(w.order, w.p.A, w.c, w.hull[:0])
	return evalHull(w.hull, w.n, sl, sh)
}

func evalHull(hull []hullPt, n int, sl, sh float64) (float64, mat.Vector, bool) {
	aMin, aMax := hull[0].x, hull[len(hull)-1].x
	if sh < aMin-1e-15 || sl > aMax+1e-15 {
		return 0, nil, false
	}
	lo := math.Max(sl, aMin)
	hi := math.Min(sh, aMax)

	// The envelope is concave: its peak vertex is the global max; if the
	// peak lies outside [lo,hi], the max over the interval is at the
	// nearer endpoint.
	peak := 0
	for k := 1; k < len(hull); k++ {
		if hull[k].y > hull[peak].y {
			peak = k
		}
	}
	var val float64
	pi := make(mat.Vector, n)
	switch {
	case hull[peak].x >= lo && hull[peak].x <= hi:
		val = hull[peak].y
		pi[hull[peak].i] = 1
	case hull[peak].x < lo:
		val = hullInterp(hull, lo, pi)
	default:
		val = hullInterp(hull, hi, pi)
	}
	return val, pi, true
}

type hullPt struct {
	x, y float64
	i    int // original index
}

// buildHull returns the upper concave hull of {(a_i, c_i)} using a
// precomputed x-ascending index order, appending into dst.
func buildHull(order []int, a, c mat.Vector, dst []hullPt) []hullPt {
	hull := dst
	for k := 0; k < len(order); k++ {
		idx := order[k]
		// Collapse runs of equal x to their max y (the order is stable on
		// x, so a run is contiguous).
		x, y := a[idx], c[idx]
		for k+1 < len(order) && a[order[k+1]] == x {
			k++
			if c[order[k]] > y {
				y, idx = c[order[k]], order[k]
			}
		}
		p := hullPt{x: x, y: y, i: idx}
		for len(hull) >= 2 {
			p1, p2 := hull[len(hull)-2], hull[len(hull)-1]
			// Remove p2 if it is below segment p1-p.
			if cross(p1, p2, p) >= 0 {
				hull = hull[:len(hull)-1]
			} else {
				break
			}
		}
		hull = append(hull, p)
	}
	return hull
}

// cross is the z-component of (b-a)×(c-a); ≥ 0 means b is not strictly
// above the a-c line (so b is redundant for the upper hull).
func cross(a, b, c hullPt) float64 {
	return (b.x-a.x)*(c.y-a.y) - (c.x-a.x)*(b.y-a.y)
}

// hullInterp evaluates the envelope at x and writes the attaining mixture
// into pi (which must be zeroed by the caller). Returns the value.
func hullInterp(hull []hullPt, x float64, pi mat.Vector) float64 {
	if x <= hull[0].x {
		pi[hull[0].i] = 1
		return hull[0].y
	}
	last := hull[len(hull)-1]
	if x >= last.x {
		pi[last.i] = 1
		return last.y
	}
	k := sort.Search(len(hull), func(k int) bool { return hull[k].x >= x })
	p1, p2 := hull[k-1], hull[k]
	lam := (p2.x - x) / (p2.x - p1.x)
	pi[p1.i] = lam
	pi[p2.i] = 1 - lam
	return lam*p1.y + (1-lam)*p2.y
}
