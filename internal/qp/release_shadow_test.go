package qp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"priste/internal/mat"
)

const testEta = 16.0 / (1 << 24) // mirrors world.ShadowEta

func TestCheckReleaseShadowValidation(t *testing.T) {
	ok3 := mat.Vector{0.1, 0.2, 0.3}
	if _, _, err := CheckReleaseShadow(ReleaseCheck{ATilde: ok3, BTilde: mat.Vector{1}, CTilde: ok3, Epsilon: 1}, testEta, ReleaseOptions{}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, _, err := CheckReleaseShadow(ReleaseCheck{ATilde: ok3, BTilde: ok3, CTilde: ok3, Epsilon: 0}, testEta, ReleaseOptions{}); err == nil {
		t.Error("zero epsilon accepted")
	}
	if _, _, err := CheckReleaseShadow(ReleaseCheck{ATilde: ok3, BTilde: ok3, CTilde: ok3, Epsilon: 1}, 0, ReleaseOptions{}); err == nil {
		t.Error("zero eta accepted")
	}
	if _, _, err := CheckReleaseShadow(ReleaseCheck{ATilde: ok3, BTilde: ok3, CTilde: ok3, Epsilon: 1}, 0.01, ReleaseOptions{}); err == nil {
		t.Error("implausibly large eta accepted")
	}
}

func TestCheckReleaseShadowDecidesComfortableCases(t *testing.T) {
	// Uninformative observation: the exact optimum sits well below Tol on
	// both conditions, so the shadow margins must not get in the way.
	a := mat.Vector{0.3, 0.5, 0.2}
	b := a.Clone().Scale(0.01)
	c := mat.Vector{0.01, 0.01, 0.01}
	dec, decided, err := CheckReleaseShadow(ReleaseCheck{ATilde: a, BTilde: b, CTilde: c, Epsilon: 0.1}, testEta, ReleaseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !decided || !dec.OK {
		t.Fatalf("comfortable satisfied case not decided OK: decided=%v dec=%+v", decided, dec)
	}

	// Strongly revealing observation: a hard violation with a lower bound
	// far past Tol, so the shadow must certify the reject.
	a2 := mat.Vector{0.9, 0.1}
	b2 := mat.Vector{0.9 * 0.99, 0.1 * 0.01}
	c2 := mat.Vector{b2[0] + 0.001*(1-a2[0]), b2[1] + 0.001*(1-a2[1])}
	dec2, decided2, err := CheckReleaseShadow(ReleaseCheck{ATilde: a2, BTilde: b2, CTilde: c2, Epsilon: 0.5}, testEta, ReleaseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !decided2 {
		t.Fatalf("comfortable violation not decided: dec=%+v", dec2)
	}
	if dec2.OK || dec2.Conservative {
		t.Fatalf("violation misclassified: %+v", dec2)
	}
}

func TestCheckReleaseShadowZeroScaleDefers(t *testing.T) {
	a := mat.Vector{0.5, 0.5}
	z := mat.Vector{0, 0}
	_, decided, err := CheckReleaseShadow(ReleaseCheck{ATilde: a, BTilde: z, CTilde: z, Epsilon: 1}, testEta, ReleaseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if decided {
		t.Fatal("collapsed shadow vectors must defer to the exact path")
	}
}

// TestCheckReleaseShadowNeverContradictsExact is the soundness property
// the margins certify: feed the shadow checker vectors perturbed by up
// to eta (relative to the max) and rescaled by an arbitrary common
// factor; whenever it decides, the exact checker on the unperturbed
// vectors must reach the same OK/reject outcome.
func TestCheckReleaseShadowNeverContradictsExact(t *testing.T) {
	decidedRuns := 0
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		a := make(mat.Vector, n)
		b := make(mat.Vector, n)
		c := make(mat.Vector, n)
		for i := 0; i < n; i++ {
			a[i] = rng.Float64()
			c[i] = rng.Float64()
			b[i] = c[i] * rng.Float64() * a[i]
		}
		chk := ReleaseCheck{ATilde: a, BTilde: b, CTilde: c, Epsilon: 0.3 + rng.Float64()}
		exact, err := CheckRelease(chk, ReleaseOptions{})
		if err != nil {
			return false
		}
		// Worst-case shadow: every component off by ±eta·max, then a
		// common scale swing of 120 decades.
		mx := math.Max(b.AbsMax(), c.AbsMax())
		scale := math.Pow(10, -60+120*rng.Float64())
		sb := make(mat.Vector, n)
		sc := make(mat.Vector, n)
		for i := 0; i < n; i++ {
			sb[i] = (b[i] + (2*rng.Float64()-1)*testEta*mx) * scale
			sc[i] = (c[i] + (2*rng.Float64()-1)*testEta*mx) * scale
		}
		shadowChk := ReleaseCheck{ATilde: a, BTilde: sb, CTilde: sc, Epsilon: chk.Epsilon}
		dec, decided, err := CheckReleaseShadow(shadowChk, testEta, ReleaseOptions{})
		if err != nil {
			return false
		}
		if !decided {
			return true // fallback is always sound
		}
		decidedRuns++
		return dec.OK == exact.OK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
	if decidedRuns == 0 {
		t.Fatal("shadow checker never decided a single instance")
	}
}
