package qp

import (
	"fmt"
	"math"
	"time"

	"priste/internal/mat"
)

// ReleaseCheck bundles the two Theorem IV.1 conditions for one candidate
// perturbed location. With ã, b̃, c̃ the first-m projections of the
// vectors of Eqs. (17)–(20),
//
//	Eq. 15 ⇔ max_π (π·ã)(π·w₁) + π·b̃      ≤ 0, w₁ = (e^ε−1)·b̃ − e^ε·c̃
//	Eq. 16 ⇔ max_π (π·ã)(π·w₂) − e^ε·(π·b̃) ≤ 0, w₂ = (e^ε−1)·b̃ + c̃
//
// (the expansion uses π·1 = 1, and maximising over the box 0 ≤ π ≤ 1 is the
// paper's conservative relaxation of the set of genuine distributions).
type ReleaseCheck struct {
	// ATilde is ã: ãᵢ = Pr(EVENT | u₀ = sᵢ).
	ATilde mat.Vector
	// BTilde is b̃: b̃ᵢ ∝ Pr(EVENT, o₀..o_t | u₀ = sᵢ).
	BTilde mat.Vector
	// CTilde is c̃: c̃ᵢ ∝ Pr(o₀..o_t | u₀ = sᵢ). BTilde and CTilde must
	// share a scale; their common normalisation is irrelevant because both
	// conditions are homogeneous of degree one in (b̃, c̃).
	CTilde mat.Vector
	// Epsilon is the ε of ε-spatiotemporal event privacy.
	Epsilon float64
}

// ReleaseOptions tunes the two condition solves.
type ReleaseOptions struct {
	// Solver options applied to each condition. Tol is interpreted
	// relative to the scale of the normalised problem.
	Solver Options
	// Deadline is the total budget across both conditions (the paper's
	// conservative-release threshold); zero means unlimited.
	Deadline time.Duration
}

// ReleaseDecision is the outcome of checking both conditions.
type ReleaseDecision struct {
	OK bool // both conditions certified to hold
	// Eq15 and Eq16 are the individual solver results.
	Eq15, Eq16 Result
	// Conservative is true when OK is false only because a verdict was
	// Unknown (budget ran out), not because a violation was found.
	Conservative bool
}

// CheckRelease decides whether releasing the candidate observation
// preserves ε-spatiotemporal event privacy for every initial probability in
// the box. Following the paper's conservative release, OK is true only when
// both maxima are certified non-positive.
func CheckRelease(chk ReleaseCheck, opt ReleaseOptions) (ReleaseDecision, error) {
	n := len(chk.ATilde)
	if len(chk.BTilde) != n || len(chk.CTilde) != n {
		return ReleaseDecision{}, fmt.Errorf("qp: release check length mismatch a=%d b=%d c=%d",
			n, len(chk.BTilde), len(chk.CTilde))
	}
	if chk.Epsilon <= 0 || math.IsNaN(chk.Epsilon) || math.IsInf(chk.Epsilon, 0) {
		return ReleaseDecision{}, fmt.Errorf("qp: epsilon must be positive and finite, got %g", chk.Epsilon)
	}
	// Joint rescale of (b̃, c̃) for numerical health; the conditions are
	// invariant under this scaling.
	scale := math.Max(chk.BTilde.AbsMax(), chk.CTilde.AbsMax())
	if scale == 0 {
		// Observations impossible under every starting state: nothing is
		// disclosed, release trivially safe.
		return ReleaseDecision{OK: true,
			Eq15: Result{Verdict: Satisfied},
			Eq16: Result{Verdict: Satisfied}}, nil
	}
	w1, q1, w2, q2 := releaseConditions(chk, scale)

	so := chk.normalisedOptions(opt)
	dec := ReleaseDecision{}
	deadline := time.Now().Add(opt.Deadline)

	r15, err := Solve(Problem{A: chk.ATilde, W: w1, Q: q1}, so)
	if err != nil {
		return ReleaseDecision{}, fmt.Errorf("qp: Eq.15 solve: %w", err)
	}
	dec.Eq15 = r15
	if opt.Deadline > 0 {
		if rem := time.Until(deadline); rem <= 0 {
			so.Deadline = time.Nanosecond
		} else {
			so.Deadline = rem
		}
	}
	r16, err := Solve(Problem{A: chk.ATilde, W: w2, Q: q2}, so)
	if err != nil {
		return ReleaseDecision{}, fmt.Errorf("qp: Eq.16 solve: %w", err)
	}
	dec.Eq16 = r16

	dec.OK = r15.Verdict == Satisfied && r16.Verdict == Satisfied
	dec.Conservative = !dec.OK &&
		r15.Verdict != Violated && r16.Verdict != Violated
	return dec, nil
}

// releaseConditions builds the normalised linear data of the two
// Theorem IV.1 conditions: b̂ = b̃/scale, ĉ = c̃/scale, and
//
//	Eq. 15: w₁ = (e^ε−1)·b̂ − e^ε·ĉ, q₁ = b̂
//	Eq. 16: w₂ = (e^ε−1)·b̂ + ĉ,    q₂ = −e^ε·b̂
func releaseConditions(chk ReleaseCheck, scale float64) (w1, q1, w2, q2 mat.Vector) {
	n := len(chk.ATilde)
	inv := 1 / scale
	b := chk.BTilde.Clone().Scale(inv)
	c := chk.CTilde.Clone().Scale(inv)
	eEps := math.Exp(chk.Epsilon)
	w1 = make(mat.Vector, n)
	q1 = b
	w2 = make(mat.Vector, n)
	q2 = make(mat.Vector, n)
	for i := 0; i < n; i++ {
		w1[i] = (eEps-1)*b[i] - eEps*c[i]
		w2[i] = (eEps-1)*b[i] + c[i]
		q2[i] = -eEps * b[i]
	}
	return w1, q1, w2, q2
}

// CheckReleaseShadow is CheckRelease over *approximate* (b̃, c̃) — the
// float32 shadow check path — with certified error margins. chk's
// BTilde/CTilde may differ from the exact float64 vectors by a common
// positive scale (which cancels: both conditions are homogeneous in
// (b̃, c̃)) plus a per-component absolute error of at most eta relative
// to the vectors' maximum (world.ShadowEta for the engine's shadow
// pipeline). ATilde and Epsilon must be exact.
//
// The decision margin: after the joint rescale both |b̂ᵢ|, |ĉᵢ| ≤ 1, so
// the shadow-vs-exact perturbation of each normalised component is at
// most etaN = 2·eta (the normalisation scale is itself a shadow
// quantity). Over the simplex π·v ≤ max vᵢ for the linear parts and
// π·ã ≤ max ãᵢ for the quadratic factor, so the objective error is
// bounded by
//
//	Δ₁ = maxA·(2e^ε−1)·etaN + etaN        (Eq. 15)
//	Δ₂ = e^ε·(maxA + 1)·etaN              (Eq. 16)
//
// A condition is *decided satisfied* when the solver certifies
// Upper ≤ Tol − Δ, and *decided violated* when it finds
// Lower > Tol + Δ: in both cases the exact objective provably lands on
// the same side of Tol, so the decision matches what CheckRelease on
// the exact vectors would certify. decided is false when the margins
// cannot settle both conditions — the caller must recompute with the
// exact float64 path. Commit-side state is untouched either way, so
// release sequences stay bit-identical to the exact path.
func CheckReleaseShadow(chk ReleaseCheck, eta float64, opt ReleaseOptions) (ReleaseDecision, bool, error) {
	n := len(chk.ATilde)
	if len(chk.BTilde) != n || len(chk.CTilde) != n {
		return ReleaseDecision{}, false, fmt.Errorf("qp: shadow check length mismatch a=%d b=%d c=%d",
			n, len(chk.BTilde), len(chk.CTilde))
	}
	if chk.Epsilon <= 0 || math.IsNaN(chk.Epsilon) || math.IsInf(chk.Epsilon, 0) {
		return ReleaseDecision{}, false, fmt.Errorf("qp: epsilon must be positive and finite, got %g", chk.Epsilon)
	}
	if eta <= 0 || eta >= 1e-3 {
		return ReleaseDecision{}, false, fmt.Errorf("qp: implausible shadow eta %g", eta)
	}
	scale := math.Max(chk.BTilde.AbsMax(), chk.CTilde.AbsMax())
	if scale == 0 {
		// The shadow vectors collapsed; the exact ones may not have.
		// Only the exact path can certify the trivially-safe case.
		return ReleaseDecision{}, false, nil
	}
	w1, q1, w2, q2 := releaseConditions(chk, scale)

	maxA := chk.ATilde.AbsMax()
	eEps := math.Exp(chk.Epsilon)
	etaN := 2 * eta
	d1 := maxA*(2*eEps-1)*etaN + etaN
	d2 := eEps * (maxA + 1) * etaN

	so := chk.normalisedOptions(opt)
	deadline := time.Now().Add(opt.Deadline)
	dec := ReleaseDecision{}

	r15, err := Solve(Problem{A: chk.ATilde, W: w1, Q: q1}, so)
	if err != nil {
		return ReleaseDecision{}, false, fmt.Errorf("qp: shadow Eq.15 solve: %w", err)
	}
	dec.Eq15 = r15
	if r15.Verdict == Violated && r15.Lower > so.Tol+d1 {
		// Certified violation of Eq. 15: reject without solving Eq. 16,
		// exactly as the exact path's !OK outcome (not conservative).
		return dec, true, nil
	}
	sat15 := r15.Verdict == Satisfied && r15.Upper <= so.Tol-d1

	if opt.Deadline > 0 {
		if rem := time.Until(deadline); rem <= 0 {
			so.Deadline = time.Nanosecond
		} else {
			so.Deadline = rem
		}
	}
	r16, err := Solve(Problem{A: chk.ATilde, W: w2, Q: q2}, so)
	if err != nil {
		return ReleaseDecision{}, false, fmt.Errorf("qp: shadow Eq.16 solve: %w", err)
	}
	dec.Eq16 = r16
	if r16.Verdict == Violated && r16.Lower > so.Tol+d2 {
		return dec, true, nil
	}
	sat16 := r16.Verdict == Satisfied && r16.Upper <= so.Tol-d2

	if sat15 && sat16 {
		dec.OK = true
		return dec, true, nil
	}
	// Margins too tight to certify either way: ambiguous, recompute
	// exactly.
	return dec, false, nil
}

func (chk ReleaseCheck) normalisedOptions(opt ReleaseOptions) Options {
	so := opt.Solver
	if so.Tol <= 0 {
		so.Tol = 1e-9
	}
	if opt.Deadline > 0 && (so.Deadline == 0 || so.Deadline > opt.Deadline) {
		so.Deadline = opt.Deadline
	}
	return so
}

// FixedPiLoss returns the realised privacy loss for a *known* initial
// probability π: the larger of the two log-ratios
//
//	ln Pr(o|EVENT)/Pr(o|¬EVENT)  and  ln Pr(o|¬EVENT)/Pr(o|EVENT).
//
// It reports an error when the event has prior 0 or 1 under π (the
// conditional ratio is undefined) or the observations are impossible.
func FixedPiLoss(chk ReleaseCheck, pi mat.Vector) (float64, error) {
	n := len(chk.ATilde)
	if len(pi) != n {
		return 0, fmt.Errorf("qp: pi length %d want %d", len(pi), n)
	}
	pe := pi.Dot(chk.ATilde)
	pj := pi.Dot(chk.BTilde)  // ∝ Pr(EVENT, o)
	pob := pi.Dot(chk.CTilde) // ∝ Pr(o)
	// An (almost) certain or impossible event has no deniability to lose;
	// the conditional ratio is undefined. The tolerance absorbs the
	// floating-point residue of priors that are exactly 0 or 1.
	const degenerate = 1e-9
	if pe <= degenerate || 1-pe <= degenerate {
		return 0, fmt.Errorf("qp: event prior %g degenerate under pi", pe)
	}
	if pob <= 0 {
		return 0, fmt.Errorf("qp: observations have zero probability under pi")
	}
	condE := pj / pe
	condNE := (pob - pj) / (1 - pe)
	if condE <= 0 && condNE <= 0 {
		return 0, fmt.Errorf("qp: degenerate conditionals")
	}
	if condE <= 0 || condNE <= 0 {
		return math.Inf(1), nil
	}
	r := math.Log(condE / condNE)
	return math.Abs(r), nil
}
