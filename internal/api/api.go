// Package api is the transport-neutral core of the pristed service
// surface: the versioned request/response types, the canonical error
// codes, and the Service/Client interfaces every front-end shares.
// Transports — the HTTP/JSON handlers and typed client in
// internal/server, the binary RPC pair in internal/rpc, the pristectl
// CLI — are thin codecs over this package: they decode bytes into these
// types, call a Service, and encode the result (or the typed error)
// back out. Growing the API means growing this package; a transport
// only ever learns new encodings.
package api

import (
	"context"
	"fmt"
	"math"
	"time"
)

// V1 is the current API version. It prefixes every HTTP route ("/v1/...")
// and is the Version stamped into session exports.
const V1 = 1

// MaxSessionIDLen caps client-supplied session ids. The durable store
// names files by the hex of the id (double its length), so the cap
// keeps filenames under every mainstream filesystem's 255-byte
// NAME_MAX; it applies to in-memory deployments too so behaviour does
// not diverge by store.
const MaxSessionIDLen = 120

// List pagination bounds.
const (
	DefaultListLimit = 100
	MaxListLimit     = 1000
)

// CreateSessionRequest is the body of POST /v1/sessions. Zero-valued
// fields inherit the server defaults; a nil Seed draws a random one.
type CreateSessionRequest struct {
	// ID optionally fixes the session id (e.g. a user id); a live
	// duplicate is rejected with CodeAlreadyExists.
	ID string `json:"id,omitempty"`
	// Seed fixes the session RNG for reproducible releases.
	Seed      *int64   `json:"seed,omitempty"`
	Epsilon   float64  `json:"epsilon,omitempty"`
	Alpha     float64  `json:"alpha,omitempty"`
	Mechanism string   `json:"mechanism,omitempty"`
	Delta     *float64 `json:"delta,omitempty"`
	Events    []string `json:"events,omitempty"`
}

// Validate checks the transport-independent invariants; the service
// applies its own defaults and world-dependent validation on top.
func (r CreateSessionRequest) Validate() error {
	if len(r.ID) > MaxSessionIDLen {
		return Errf(CodeInvalidArgument, fmt.Sprintf("api: session id longer than %d bytes", MaxSessionIDLen))
	}
	if r.Epsilon < 0 || math.IsNaN(r.Epsilon) || math.IsInf(r.Epsilon, 0) {
		return Errf(CodeInvalidArgument, fmt.Sprintf("api: epsilon %g must be a finite non-negative number", r.Epsilon))
	}
	if r.Alpha < 0 || math.IsNaN(r.Alpha) || math.IsInf(r.Alpha, 0) {
		return Errf(CodeInvalidArgument, fmt.Sprintf("api: alpha %g must be a finite non-negative number", r.Alpha))
	}
	if r.Delta != nil && (*r.Delta < 0 || *r.Delta >= 1 || math.IsNaN(*r.Delta)) {
		return Errf(CodeInvalidArgument, fmt.Sprintf("api: delta %g outside [0,1)", *r.Delta))
	}
	return nil
}

// SessionInfo is the body of GET /v1/sessions/{id}, one entry of the
// session list, and the create/import response. T is the next timestamp
// to be released (steps served so far).
type SessionInfo struct {
	ID        string    `json:"id"`
	T         int       `json:"t"`
	Epsilon   float64   `json:"epsilon"`
	Alpha     float64   `json:"alpha"`
	Mechanism string    `json:"mechanism"`
	Events    []string  `json:"events"`
	Created   time.Time `json:"created"`
	LastUsed  time.Time `json:"last_used"`
	Queued    int       `json:"queued"`
}

// StepRequest is the body of POST /v1/sessions/{id}/step.
type StepRequest struct {
	// Loc is the user's true location (0-based row-major grid state).
	Loc int `json:"loc"`
}

// StepResponse mirrors core.StepResult: one certified release.
type StepResponse struct {
	// SessionID identifies the session in batch responses.
	SessionID string `json:"session_id,omitempty"`
	T         int    `json:"t"`
	// Obs is the released (perturbed) location.
	Obs int `json:"obs"`
	// Alpha is the final budget used; 0 for the uniform fallback.
	Alpha                  float64 `json:"alpha"`
	Attempts               int     `json:"attempts"`
	ConservativeRejections int     `json:"conservative_rejections"`
	Uniform                bool    `json:"uniform"`
	CheckMicros            float64 `json:"check_us"`
	// Error and Code report per-item failures in batch responses; both
	// are empty on success.
	Error string `json:"error,omitempty"`
	Code  Code   `json:"code,omitempty"`
}

// Err returns the item's inline failure as a typed error, or nil.
func (r StepResponse) Err() error {
	if r.Error == "" && r.Code == "" {
		return nil
	}
	return &Error{Code: r.Code, Message: r.Error}
}

// FailedStep renders an error as an inline batch item failure.
func FailedStep(sessionID string, err error) StepResponse {
	e := ErrorOf(err)
	return StepResponse{SessionID: sessionID, Error: e.Message, Code: e.Code}
}

// BatchStepItem is one entry of POST /v1/step.
type BatchStepItem struct {
	SessionID string `json:"session_id"`
	Loc       int    `json:"loc"`
}

// BatchStepRequest is the body of POST /v1/step: a multi-user ingest
// batch. Items for the same session are applied in slice order.
type BatchStepRequest struct {
	Steps []BatchStepItem `json:"steps"`
}

// BatchStepResponse is the body of the batch response; Results[i]
// corresponds to Steps[i].
type BatchStepResponse struct {
	Results []StepResponse `json:"results"`
}

// ListSessionsRequest is the query of GET /v1/sessions: a page of up to
// Limit sessions with ids lexicographically after Cursor.
type ListSessionsRequest struct {
	// Limit caps the page size; 0 means DefaultListLimit, and anything
	// above MaxListLimit is clamped to it.
	Limit int `json:"limit,omitempty"`
	// Cursor is the NextCursor of the previous page ("" for the first).
	Cursor string `json:"cursor,omitempty"`
}

// Normalize applies the pagination defaults and bounds.
func (r ListSessionsRequest) Normalize() (ListSessionsRequest, error) {
	if r.Limit < 0 {
		return r, Errf(CodeInvalidArgument, fmt.Sprintf("api: negative list limit %d", r.Limit))
	}
	if r.Limit == 0 {
		r.Limit = DefaultListLimit
	}
	if r.Limit > MaxListLimit {
		r.Limit = MaxListLimit
	}
	return r, nil
}

// SessionPage is one page of the session list, ordered by id. Pagination
// is a live iteration: sessions created or removed between pages may be
// skipped or repeated, exactly like any keyset cursor over churning data.
type SessionPage struct {
	Sessions []SessionInfo `json:"sessions"`
	// NextCursor, when set, fetches the next page; empty means this page
	// ends the listing.
	NextCursor string `json:"next_cursor,omitempty"`
}

// ReleaseTag is one committed release on the wire: math.Float64bits of
// the certified budget (0 for the uniform fallback) and the released
// observation. It mirrors core.ReleaseTag without importing the engine.
type ReleaseTag struct {
	AlphaBits uint64 `json:"alpha_bits"`
	Obs       int    `json:"obs"`
}

// SessionExport is a session's complete migratable state — the payload
// of GET /v1/sessions/{id}/export and POST /v1/sessions/import. It is
// exactly the durable store's model: the immutable session identity
// plus the committed release-tag history, its rolling fingerprint and
// the serialised session RNG. An importing instance replays the tags
// through its own compiled plan, verifying the world tag and the
// fingerprint chain, so a migrated session continues seed-for-seed
// identically to an unmigrated one.
type SessionExport struct {
	// Version is the export format version (V1).
	Version int `json:"version"`
	// World canonically identifies the world model the history was
	// certified against; the importing instance must run the same one.
	World string `json:"world"`
	ID    string `json:"id"`
	Seed  int64  `json:"seed"`

	Epsilon         float64  `json:"epsilon"`
	Alpha           float64  `json:"alpha"`
	Mechanism       string   `json:"mechanism"`
	Delta           float64  `json:"delta,omitempty"`
	Events          []string `json:"events"`
	CreatedUnixNano int64    `json:"created_unix_nano"`

	// T is the next timestamp to be released; equals len(Tags).
	T int `json:"t"`
	// Tags is the committed release history in timestamp order.
	Tags []ReleaseTag `json:"tags"`
	// Fingerprint is the rolling history fingerprint over Tags, verified
	// by replay on import.
	Fingerprint uint64 `json:"fingerprint"`
	// RNG is the marshaled session RNG state (base64 in JSON); the
	// imported session resumes the exact candidate draw sequence.
	RNG []byte `json:"rng,omitempty"`
}

// Validate checks the structural invariants of an export before the
// importing service replays it.
func (e SessionExport) Validate() error {
	if e.Version != V1 {
		return Errf(CodeInvalidArgument, fmt.Sprintf("api: unsupported export version %d (want %d)", e.Version, V1))
	}
	if e.ID == "" {
		return Errf(CodeInvalidArgument, "api: export carries no session id")
	}
	if len(e.ID) > MaxSessionIDLen {
		return Errf(CodeInvalidArgument, fmt.Sprintf("api: session id longer than %d bytes", MaxSessionIDLen))
	}
	if e.World == "" {
		return Errf(CodeInvalidArgument, "api: export carries no world tag")
	}
	if e.T != len(e.Tags) {
		return Errf(CodeInvalidArgument, fmt.Sprintf("api: export T=%d but %d tags", e.T, len(e.Tags)))
	}
	return nil
}

// Health is the liveness document of GET /healthz. Status is "ok" for a
// serving instance and "draining" (HTTP 503) once graceful shutdown has
// begun — load balancers stop routing while in-flight work flushes.
type Health struct {
	Status   string `json:"status"`
	Sessions int64  `json:"sessions"`
	// UptimeSeconds is the time since the server was constructed.
	UptimeSeconds float64 `json:"uptime_seconds,omitempty"`
	// Version is the build's module version (from debug.ReadBuildInfo;
	// "(devel)" for unstamped local builds) and GoVersion the toolchain
	// that built it.
	Version   string `json:"version,omitempty"`
	GoVersion string `json:"go_version,omitempty"`
}

// Service is the versioned, transport-neutral service surface. Every
// front-end — HTTP handlers, the binary RPC server, the CLI — drives
// exactly this interface; server.Server implements it. Methods that
// block on queued work (stepping, exporting) take a context so a
// departed caller can abandon the wait; the others complete inline.
// All errors are canonical (see ErrorOf / Code).
type Service interface {
	// CreateSession builds and registers a session, applying the
	// server's privacy defaults for absent fields.
	CreateSession(req CreateSessionRequest) (SessionInfo, error)
	// GetSession reports a session's public state.
	GetSession(id string) (SessionInfo, error)
	// DeleteSession removes and closes a session (and tombstones its
	// journal on durable deployments).
	DeleteSession(id string) error
	// Step releases one true location through a session and waits for
	// its certified release.
	Step(ctx context.Context, id string, loc int) (StepResponse, error)
	// StepBatch enqueues every item in slice order (per-session FIFO,
	// cross-session parallel) and collects the releases; per-item
	// failures are reported inline, never as a batch failure.
	StepBatch(ctx context.Context, steps []BatchStepItem) []StepResponse
	// ListSessions returns one page of live sessions ordered by id.
	ListSessions(req ListSessionsRequest) (SessionPage, error)
	// ExportSession captures a session's complete migratable state at a
	// consistent point in its step stream.
	ExportSession(ctx context.Context, id string) (SessionExport, error)
	// ImportSession registers a migrated session after verifying its
	// world tag and replaying its history (fingerprint-checked).
	ImportSession(exp SessionExport) (SessionInfo, error)
	// Stats returns the /statsz counter document.
	Stats() Stats
	// Health reports liveness.
	Health() Health
}

// AsyncStepper is an optional Service extension for transports that
// pipeline many steps per connection: StepAsync enqueues the step
// (preserving per-session FIFO order at the enqueue point) and returns
// a buffered completion channel instead of blocking, so one reader
// goroutine can keep enqueuing while earlier steps are still in flight.
// ctx is observability context — trace ID and ingress transport (see
// internal/obs) — consulted at enqueue time only; cancelling it does not
// cancel the step.
type AsyncStepper interface {
	StepAsync(ctx context.Context, id string, loc int) (<-chan StepOutcome, error)
}

// StepOutcome is one completed asynchronous step.
type StepOutcome struct {
	Resp StepResponse
	Err  error
}

// Client is the transport-neutral typed client interface: the HTTP
// client (server.Client) and the binary RPC client (rpc.Client)
// implement it identically, so callers — and the conformance tests —
// are written once against this interface and run against every
// transport.
type Client interface {
	CreateSession(ctx context.Context, req CreateSessionRequest) (SessionInfo, error)
	Session(ctx context.Context, id string) (SessionInfo, error)
	DeleteSession(ctx context.Context, id string) error
	Step(ctx context.Context, id string, loc int) (StepResponse, error)
	StepBatch(ctx context.Context, steps []BatchStepItem) ([]StepResponse, error)
	ListSessions(ctx context.Context, req ListSessionsRequest) (SessionPage, error)
	ExportSession(ctx context.Context, id string) (SessionExport, error)
	ImportSession(ctx context.Context, exp SessionExport) (SessionInfo, error)
	Stats(ctx context.Context) (Stats, error)
	Health(ctx context.Context) error
}
