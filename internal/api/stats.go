package api

import "priste/internal/store"

// Stats is the JSON document served at /statsz (and by the RPC stats
// call): service counters plus the plan-registry, certified-release
// cache, durability and per-transport sections.
type Stats struct {
	Sessions   SessionStats    `json:"sessions"`
	Steps      StepStats       `json:"steps"`
	Latency    LatencyStats    `json:"latency"`
	Plans      PlanStats       `json:"plans"`
	CertCache  CertCacheStats  `json:"cert_cache"`
	Store      StoreStats      `json:"store"`
	Transports TransportsStats `json:"transports"`
	Streams    StreamStats     `json:"streams"`
	Scheduler  SchedulerStats  `json:"scheduler"`
	Pool       PoolStats       `json:"pool"`
	Runtime    RuntimeStats    `json:"runtime"`
	// Fleet is the router's fleet section: present only on the /statsz
	// document of a pristerouter (internal/router), where Sessions and
	// Steps above are sums over the reachable backends. Plain pristed
	// instances leave it nil.
	Fleet *FleetStats `json:"fleet,omitempty"`
}

// FleetStats is the router's /statsz fleet section: the consistent-hash
// ring state, the per-backend membership/health/routing breakdown, and
// the rebalancing counters. Epoch increments on every ring change
// (ejection, readmission, operator drain); MisrouteRetries counts
// requests the router re-routed internally after racing a ring change
// (the CodeWrongBackend path).
type FleetStats struct {
	Epoch               int64              `json:"epoch"`
	VirtualNodes        int                `json:"virtual_nodes"`
	Members             []FleetMemberStats `json:"members"`
	HealthTransitions   int64              `json:"health_transitions"`
	MigrationsStarted   int64              `json:"migrations_started"`
	MigrationsCompleted int64              `json:"migrations_completed"`
	MigrationsFailed    int64              `json:"migrations_failed"`
	MisrouteRetries     int64              `json:"misroute_retries"`
}

// FleetMemberStats is one backend's row in the fleet section. Sessions
// is the backend's live-session count from its last reachable stats
// fan-out (0 when it has never been reachable); Routes counts requests
// this router sent it over its lifetime. A member can be healthy but
// out of the ring (operator-drained, or not yet readmitted) — InRing is
// what routing actually uses.
type FleetMemberStats struct {
	Name     string `json:"name"`
	Healthy  bool   `json:"healthy"`
	InRing   bool   `json:"in_ring"`
	Draining bool   `json:"draining"`
	Sessions int64  `json:"sessions"`
	Routes   int64  `json:"routes"`
}

// PoolStats is the /statsz kernel-worker-pool section (internal/par):
// the process-global pool the quantifier commits fan their tile-parallel
// operator products out on. Parallelism is the effective width
// (configured via -parallel, or GOMAXPROCS); Workers the helper
// goroutines spawned so far (parked when idle); Busy how many are
// executing tiles right now and Occupancy busy/workers; External the
// registered inter-session load (busy drain workers) sharing the CPU
// budget. ParallelDispatch counts kernels fanned out across the pool,
// SerialDispatch kernels kept on their serial path (below the flops
// cutoff, width 1, or budget already spent on sessions), and Steals the
// tiles executed by pool helpers rather than the submitting goroutine.
type PoolStats struct {
	Parallelism      int     `json:"parallelism"`
	Workers          int     `json:"workers"`
	Busy             int64   `json:"busy"`
	Occupancy        float64 `json:"occupancy"`
	External         int64   `json:"external"`
	ParallelDispatch int64   `json:"parallel_dispatch"`
	SerialDispatch   int64   `json:"serial_dispatch"`
	Steals           int64   `json:"steals"`
}

// StreamStats is the /statsz streaming section: RPC step streams, SSE
// release subscribers, and the streaming-window occupancy that the
// unary queue gauges do not cover. WindowOccupancy is the number of
// streamed steps currently in flight (submitted, not yet acked) across
// all streams; PerShardWindow breaks it down by session-manager shard
// so hot shards are visible next to their queue gauges.
type StreamStats struct {
	RPCOpened       int64   `json:"rpc_opened"`
	RPCActive       int64   `json:"rpc_active"`
	StepsStreamed   int64   `json:"steps_streamed"`
	AckBatches      int64   `json:"ack_batches"`
	SSESubscribers  int64   `json:"sse_subscribers"`
	SSEDelivered    int64   `json:"sse_delivered"`
	SSEDropped      int64   `json:"sse_dropped"`
	WindowOccupancy int64   `json:"window_occupancy"`
	PerShardWindow  []int64 `json:"per_shard_window"`
}

// SchedulerStats is the /statsz worker-pool scheduling section.
// AffinityPicks counts dequeues that kept a worker on its previous
// session's plan (warm plan + cert-cache), FIFOPicks arrival-order
// dequeues, and Requeues sessions parked back on the run queue after
// hitting the per-visit drain batch (the fairness cap).
type SchedulerStats struct {
	AffinityPicks int64 `json:"affinity_picks"`
	FIFOPicks     int64 `json:"fifo_picks"`
	Requeues      int64 `json:"requeues"`
}

// RuntimeStats is the /statsz Go-runtime section (the same numbers the
// go_* gauges expose at /metricsz).
type RuntimeStats struct {
	Goroutines     int     `json:"goroutines"`
	HeapAllocBytes uint64  `json:"heap_alloc_bytes"`
	HeapObjects    uint64  `json:"heap_objects"`
	GCCycles       uint32  `json:"gc_cycles"`
	GCPauseMicros  float64 `json:"gc_pause_us"`
	UptimeSeconds  float64 `json:"uptime_seconds"`
}

// SessionStats counts session lifecycle events.
type SessionStats struct {
	Live     int64 `json:"live"`
	Created  int64 `json:"created"`
	Evicted  int64 `json:"evicted"`
	Imported int64 `json:"imported"`
	Exported int64 `json:"exported"`
}

// StepStats counts served steps. SuppressionRate is the fraction of
// released timestamps that fell back to the uniform (zero-information)
// release.
type StepStats struct {
	Served          int64   `json:"served"`
	Errors          int64   `json:"errors"`
	Uniform         int64   `json:"uniform"`
	SuppressionRate float64 `json:"suppression_rate"`
	QueueRejections int64   `json:"queue_rejections"`
}

// LatencyStats summarises engine commit latency (the worker-pool
// Framework.Step call, all transports merged). The quantiles come from
// the lifetime latency histogram — log-spaced buckets with ≤12.5%
// relative quantization error — and Samples counts the observations
// backing them (equals Steps.Served).
type LatencyStats struct {
	P50Micros float64 `json:"p50_us"`
	P99Micros float64 `json:"p99_us"`
	Samples   int64   `json:"samples"`
}

// PlanStats is the /statsz plan-registry section.
type PlanStats struct {
	// Live is the number of retained compiled plans.
	Live int64 `json:"live"`
	// Compiled counts plan compilations (cache misses at the plan level).
	Compiled int64 `json:"compiled"`
	// SharedHits counts session creations served by an existing plan.
	SharedHits int64 `json:"shared_hits"`
	// SparseKernels and DenseKernels count the compiled transition
	// kernels across retained plans by path (see world.KernelStats);
	// KernelDensity is their mean per-kernel density. They report which
	// path the release hot loop actually runs on.
	SparseKernels int64   `json:"sparse_kernels"`
	DenseKernels  int64   `json:"dense_kernels"`
	KernelDensity float64 `json:"kernel_density"`
	// BlockedKernels and BandedKernels count operator products the
	// adaptive dense dispatch executed through the blocked
	// register-tiled and banded kernels across retained plans (dispatch
	// events, not compiled kernels).
	BlockedKernels int64 `json:"blocked_kernels"`
	BandedKernels  int64 `json:"banded_kernels"`
	// ShadowChecks counts candidate checks attempted through the
	// float32 shadow path; ShadowFallbacks the subset whose qp margins
	// could not decide and were recomputed in exact float64. Zero when
	// the shadow path is disabled.
	ShadowChecks    int64 `json:"shadow_checks"`
	ShadowFallbacks int64 `json:"shadow_fallbacks"`
}

// CertCacheStats is the /statsz certified-release cache section. HitRate
// is hits/(hits+misses) over the cache lifetime; all-zero with Enabled
// false when the cache is disabled.
type CertCacheStats struct {
	Enabled   bool    `json:"enabled"`
	Hits      int64   `json:"hits"`
	Misses    int64   `json:"misses"`
	Evictions int64   `json:"evictions"`
	Entries   int64   `json:"entries"`
	HitRate   float64 `json:"hit_rate"`
}

// StoreStats is the /statsz durability section: the store's own
// counters (appends, fsyncs, snapshots, ...) plus the serving layer's
// view of it — append failures, startup session replays and their total
// latency, and warm-loaded certified-release cache entries.
type StoreStats struct {
	store.Stats
	// AppendErrors counts failed write-ahead journal appends (acknowledged
	// steps whose record was lost); SnapshotErrors failed compactions
	// (self-healing at the next cadence); TombstoneErrors failed
	// delete/evict tombstones.
	AppendErrors    int64   `json:"append_errors"`
	SnapshotErrors  int64   `json:"snapshot_errors"`
	TombstoneErrors int64   `json:"tombstone_errors"`
	Replayed        int64   `json:"replayed"`
	ReplayFailures  int64   `json:"replay_failures"`
	ReplayMicros    float64 `json:"replay_us"`
	WarmLoaded      int64   `json:"warm_loaded"`
	// WarmLoadFailed is 1 when the persisted cert-cache existed but
	// could not be read at startup (the server started cold).
	WarmLoadFailed int64 `json:"warm_load_failed"`
}

// TransportsStats breaks request counts, latency and the per-step stage
// timing down by ingress transport. Local covers steps driven through
// the Server's Go API directly (embedding library callers, tests) —
// engine-side stages are attributed there when no transport tagged the
// request context.
type TransportsStats struct {
	HTTP  TransportStats `json:"http"`
	RPC   TransportStats `json:"rpc"`
	Local TransportStats `json:"local"`
}

// TransportStats is one transport's /statsz section. Requests and the
// request quantiles cover every request served on the transport (steps,
// control calls, health probes). Steps counts successfully served step
// requests, StepMeanMicros/StepP99Micros their end-to-end served
// latency (HTTP: handler entry to response written; RPC: frame decoded
// to response frame written), and Stages breaks that latency into the
// named pipeline stages — the per-stage means sum to approximately the
// end-to-end step mean. Quantiles come from lifetime log-spaced-bucket
// histograms (≤12.5% relative error).
type TransportStats struct {
	Requests  int64   `json:"requests"`
	P50Micros float64 `json:"p50_us"`
	P99Micros float64 `json:"p99_us"`

	Steps          int64                 `json:"steps,omitempty"`
	StepMeanMicros float64               `json:"step_mean_us,omitempty"`
	StepP99Micros  float64               `json:"step_p99_us,omitempty"`
	Stages         map[string]StageStats `json:"stages,omitempty"`
}

// StageStats is one pipeline stage's timing on one transport. Stage
// names and semantics:
//
//	decode      parse the step request (JSON body / binary frame)
//	queue_wait  enqueue to worker pickup on the session FIFO
//	commit_hit  engine commit, every release-condition check served
//	            from the certified-release cache
//	commit_miss engine commit with at least one cache miss (or no cache)
//	wal_append  write-ahead journaling of the committed release
//	encode      render + write the response (JSON / binary frame)
//
// WAL fsync time is not per-transport (the sync batches appends from
// every transport); it is reported in StoreStats.FsyncMicros and the
// priste_wal_fsync_seconds histogram.
type StageStats struct {
	Count      int64   `json:"count"`
	MeanMicros float64 `json:"mean_us"`
	P99Micros  float64 `json:"p99_us"`
}
