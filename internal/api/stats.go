package api

import "priste/internal/store"

// Stats is the JSON document served at /statsz (and by the RPC stats
// call): service counters plus the plan-registry, certified-release
// cache, durability and per-transport sections.
type Stats struct {
	Sessions   SessionStats    `json:"sessions"`
	Steps      StepStats       `json:"steps"`
	Latency    LatencyStats    `json:"latency"`
	Plans      PlanStats       `json:"plans"`
	CertCache  CertCacheStats  `json:"cert_cache"`
	Store      StoreStats      `json:"store"`
	Transports TransportsStats `json:"transports"`
}

// SessionStats counts session lifecycle events.
type SessionStats struct {
	Live     int64 `json:"live"`
	Created  int64 `json:"created"`
	Evicted  int64 `json:"evicted"`
	Imported int64 `json:"imported"`
	Exported int64 `json:"exported"`
}

// StepStats counts served steps. SuppressionRate is the fraction of
// released timestamps that fell back to the uniform (zero-information)
// release.
type StepStats struct {
	Served          int64   `json:"served"`
	Errors          int64   `json:"errors"`
	Uniform         int64   `json:"uniform"`
	SuppressionRate float64 `json:"suppression_rate"`
	QueueRejections int64   `json:"queue_rejections"`
}

// LatencyStats summarises recent step latency. Samples counts the
// observations backing the quantiles (the retained window, not the
// lifetime step total — that is Steps.Served).
type LatencyStats struct {
	P50Micros float64 `json:"p50_us"`
	P99Micros float64 `json:"p99_us"`
	Samples   int64   `json:"samples"`
}

// PlanStats is the /statsz plan-registry section.
type PlanStats struct {
	// Live is the number of retained compiled plans.
	Live int64 `json:"live"`
	// Compiled counts plan compilations (cache misses at the plan level).
	Compiled int64 `json:"compiled"`
	// SharedHits counts session creations served by an existing plan.
	SharedHits int64 `json:"shared_hits"`
	// SparseKernels and DenseKernels count the compiled transition
	// kernels across retained plans by path (see world.KernelStats);
	// KernelDensity is their mean per-kernel density. They report which
	// path the release hot loop actually runs on.
	SparseKernels int64   `json:"sparse_kernels"`
	DenseKernels  int64   `json:"dense_kernels"`
	KernelDensity float64 `json:"kernel_density"`
}

// CertCacheStats is the /statsz certified-release cache section. HitRate
// is hits/(hits+misses) over the cache lifetime; all-zero with Enabled
// false when the cache is disabled.
type CertCacheStats struct {
	Enabled   bool    `json:"enabled"`
	Hits      int64   `json:"hits"`
	Misses    int64   `json:"misses"`
	Evictions int64   `json:"evictions"`
	Entries   int64   `json:"entries"`
	HitRate   float64 `json:"hit_rate"`
}

// StoreStats is the /statsz durability section: the store's own
// counters (appends, fsyncs, snapshots, ...) plus the serving layer's
// view of it — append failures, startup session replays and their total
// latency, and warm-loaded certified-release cache entries.
type StoreStats struct {
	store.Stats
	// AppendErrors counts failed write-ahead journal appends (acknowledged
	// steps whose record was lost); SnapshotErrors failed compactions
	// (self-healing at the next cadence); TombstoneErrors failed
	// delete/evict tombstones.
	AppendErrors    int64   `json:"append_errors"`
	SnapshotErrors  int64   `json:"snapshot_errors"`
	TombstoneErrors int64   `json:"tombstone_errors"`
	Replayed        int64   `json:"replayed"`
	ReplayFailures  int64   `json:"replay_failures"`
	ReplayMicros    float64 `json:"replay_us"`
	WarmLoaded      int64   `json:"warm_loaded"`
	// WarmLoadFailed is 1 when the persisted cert-cache existed but
	// could not be read at startup (the server started cold).
	WarmLoadFailed int64 `json:"warm_load_failed"`
}

// TransportsStats breaks request counts and latency down by transport.
type TransportsStats struct {
	HTTP TransportStats `json:"http"`
	RPC  TransportStats `json:"rpc"`
}

// TransportStats is one transport's /statsz section: every request
// served on the transport (steps, control calls, health probes) with
// p50/p99 over the retained latency window.
type TransportStats struct {
	Requests  int64   `json:"requests"`
	P50Micros float64 `json:"p50_us"`
	P99Micros float64 `json:"p99_us"`
}
