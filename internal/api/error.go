package api

import (
	"context"
	"errors"
	"net/http"
)

// Code is the canonical, transport-neutral error code of the versioned
// API. Every service error maps onto exactly one code, and every
// transport renders the code its own way — an HTTP status, an RPC error
// byte — so the same failure is the same typed error no matter how the
// bytes arrived.
type Code string

const (
	// CodeInvalidArgument: the request was malformed or semantically
	// invalid (bad event spec, unknown mechanism, out-of-range location).
	CodeInvalidArgument Code = "invalid_argument"
	// CodeNotFound: the referenced session does not exist.
	CodeNotFound Code = "not_found"
	// CodeAlreadyExists: a create or import collided with a live session
	// or a surviving journal under the same id.
	CodeAlreadyExists Code = "already_exists"
	// CodeSessionClosed: the session was deleted or evicted while the
	// request was pending.
	CodeSessionClosed Code = "session_closed"
	// CodeResourceExhausted: backpressure — the session's pending-step
	// queue is at capacity.
	CodeResourceExhausted Code = "resource_exhausted"
	// CodeFailedPrecondition: the request is well-formed but the state it
	// carries is unusable here (import under a different world tag, or a
	// history whose fingerprint does not verify).
	CodeFailedPrecondition Code = "failed_precondition"
	// CodeUnavailable: the server is draining for shutdown.
	CodeUnavailable Code = "unavailable"
	// CodeDeadlineExceeded: the caller's context expired before the
	// request completed.
	CodeDeadlineExceeded Code = "deadline_exceeded"
	// CodeInternal: an unexpected server-side failure.
	CodeInternal Code = "internal"
	// CodeWrongBackend: the request reached a backend that does not own
	// the session — the caller raced a fleet ring change (a rebalance,
	// ejection or readmission moved the session's hash range). The error
	// is retryable after re-resolving ownership: the session still
	// exists, just somewhere else. The fleet router retries these
	// internally (see internal/router); it renders as HTTP 421
	// Misdirected Request.
	CodeWrongBackend Code = "wrong_backend"
)

// codes lists every canonical code with its HTTP status and RPC wire
// byte. Wire bytes are part of the RPC protocol: never renumber, only
// append.
var codes = []struct {
	code   Code
	status int
	wire   byte
}{
	{CodeInvalidArgument, http.StatusBadRequest, 1},
	{CodeNotFound, http.StatusNotFound, 2},
	{CodeAlreadyExists, http.StatusConflict, 3},
	{CodeSessionClosed, http.StatusGone, 4},
	{CodeResourceExhausted, http.StatusTooManyRequests, 5},
	{CodeFailedPrecondition, http.StatusPreconditionFailed, 6},
	{CodeUnavailable, http.StatusServiceUnavailable, 7},
	{CodeDeadlineExceeded, http.StatusGatewayTimeout, 8},
	{CodeInternal, http.StatusInternalServerError, 9},
	{CodeWrongBackend, http.StatusMisdirectedRequest, 10},
}

// Valid reports whether c is a canonical code.
func (c Code) Valid() bool {
	for _, e := range codes {
		if e.code == c {
			return true
		}
	}
	return false
}

// HTTPStatus renders the code as an HTTP status; CodeInternal's 500 is
// the fallback for unknown codes.
func (c Code) HTTPStatus() int {
	for _, e := range codes {
		if e.code == c {
			return e.status
		}
	}
	return http.StatusInternalServerError
}

// Wire renders the code as its RPC error byte.
func (c Code) Wire() byte {
	for _, e := range codes {
		if e.code == c {
			return e.wire
		}
	}
	return CodeInternal.Wire()
}

// CodeFromHTTPStatus maps an HTTP status back onto the canonical code
// (CodeInternal for statuses no code produces) — the HTTP client's
// fallback when a response carries no code field.
func CodeFromHTTPStatus(status int) Code {
	for _, e := range codes {
		if e.status == status {
			return e.code
		}
	}
	return CodeInternal
}

// CodeFromWire maps an RPC error byte back onto the canonical code.
func CodeFromWire(b byte) Code {
	for _, e := range codes {
		if e.wire == b {
			return e.code
		}
	}
	return CodeInternal
}

// Error is the typed API error every transport round-trips: the service
// returns *Error values (or errors wrapping them), transports encode
// the code + message, and clients rebuild an identical *Error — so
// errors.Is against a service sentinel holds on both sides of the wire.
type Error struct {
	Code    Code   `json:"code"`
	Message string `json:"message"`
}

func (e *Error) Error() string { return e.Message }

// Is matches any *Error carrying the same code, which makes a
// client-side reconstruction of a sentinel equal to the sentinel.
func (e *Error) Is(target error) bool {
	t, ok := target.(*Error)
	return ok && t.Code == e.Code
}

// Errf returns a new typed error.
func Errf(code Code, msg string) *Error { return &Error{Code: code, Message: msg} }

// ErrorOf coerces any error onto the canonical model: a wrapped *Error
// keeps its code (and the outer message), context expiry maps to
// CodeDeadlineExceeded, and everything else — request decoding,
// validation, engine errors — defaults to CodeInvalidArgument, the
// historical catch-all of the HTTP layer. Returns nil for nil.
func ErrorOf(err error) *Error {
	if err == nil {
		return nil
	}
	var e *Error
	if errors.As(err, &e) {
		if msg := err.Error(); msg != e.Message {
			return &Error{Code: e.Code, Message: msg}
		}
		return e
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return &Error{Code: CodeDeadlineExceeded, Message: err.Error()}
	}
	return &Error{Code: CodeInvalidArgument, Message: err.Error()}
}

// CodeOf returns the canonical code of any error (CodeInvalidArgument
// for untyped errors, "" for nil) — the assertion helpers tests and
// callers branch on.
func CodeOf(err error) Code {
	if err == nil {
		return ""
	}
	return ErrorOf(err).Code
}

// RetryAfterReroute reports whether err is a misroute — a typed
// CodeWrongBackend error, as both transports' clients reconstruct from
// HTTP 421 / RPC error byte 10 — meaning the session exists but lives
// on a different backend than the one addressed. Callers holding a ring
// (the fleet router, a ring-aware client) should re-resolve the
// session's owner and retry; callers without one should treat it as
// retryable against the router, which re-resolves internally.
func RetryAfterReroute(err error) bool {
	return CodeOf(err) == CodeWrongBackend
}
