package api

import "context"

// Streaming step pipeline.
//
// A StepStream is a windowed, order-preserving pipe into one session:
// the client fire-and-forgets true locations with Send and consumes
// certified releases with Recv, at most `window` steps in flight
// between the two. When the window is exhausted Send blocks
// (backpressure) until a release is consumed — a streaming client is
// never answered with a per-call 429. Releases arrive in exactly the
// order the locations were sent; a stream is the session's FIFO queue
// made visible end to end.
//
// Both transports satisfy the interface: the RPC client multiplexes
// stream frames over its persistent connection, the HTTP client
// pipelines windowed micro-batches through POST
// /v1/sessions/{id}/stream. Push-style observation (releases without
// driving steps) is the SSE endpoint GET /v1/sessions/{id}/stream.

const (
	// DefaultStreamWindow is the in-flight step window used when a
	// client passes window <= 0.
	DefaultStreamWindow = 64
	// MaxStreamWindow bounds the client-advertised window; servers
	// reject larger advertisements rather than silently clamping,
	// since the client relies on its window for flow control.
	MaxStreamWindow = 4096
	// MaxStreamBatch bounds the locs accepted by one windowed
	// micro-batch request on the HTTP stream ingest path.
	MaxStreamBatch = MaxStreamWindow
)

// StepStream pumps steps into one session and yields its certified
// releases in FIFO order. Send and Recv may be called concurrently
// (one goroutine each); neither is safe for concurrent use with
// itself.
type StepStream interface {
	// Send submits the next true location. It blocks while the
	// stream window is full and returns the stream's terminal error
	// once the stream is dead.
	Send(loc int) error
	// Recv returns the next certified release in step order. After
	// CloseSend it returns io.EOF once every pending release has
	// been consumed; otherwise a terminal *Error ends the stream.
	Recv() (StepResponse, error)
	// CloseSend ends the input side. Releases for already-sent
	// steps still arrive; Recv drains them and then returns io.EOF.
	CloseSend() error
	// Close aborts the stream and releases its resources. Safe to
	// call at any time, including after CloseSend.
	Close() error
}

// StreamClient is the optional Client extension for streaming ingest.
// Both shipped clients implement it.
type StreamClient interface {
	StreamSteps(ctx context.Context, sessionID string, window int) (StepStream, error)
}

// StreamStepRequest is the body of POST /v1/sessions/{id}/stream: one
// windowed micro-batch of true locations, applied in order.
type StreamStepRequest struct {
	Locs []int `json:"locs"`
}

// StreamStepResponse answers a windowed micro-batch. Results holds
// the certified releases, in order, for the locs that committed. If
// the batch died early, Code/Error report the terminal failure and
// Results covers only the prefix that committed before it.
type StreamStepResponse struct {
	Results []StepResponse `json:"results"`
	Code    Code           `json:"code,omitempty"`
	Error   string         `json:"error,omitempty"`
}

// Err returns the terminal failure carried by the response, if any.
func (r *StreamStepResponse) Err() error {
	if r.Code == "" && r.Error == "" {
		return nil
	}
	code := r.Code
	if code == "" {
		code = CodeInternal
	}
	return &Error{Code: code, Message: r.Error}
}
