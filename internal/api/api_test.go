package api

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"testing"
)

// TestCodeMappingsRoundTrip: every canonical code survives both wire
// renderings — HTTP status and RPC byte — and the renderings are
// injective, so a transport can never conflate two codes.
func TestCodeMappingsRoundTrip(t *testing.T) {
	all := []Code{
		CodeInvalidArgument, CodeNotFound, CodeAlreadyExists,
		CodeSessionClosed, CodeResourceExhausted, CodeFailedPrecondition,
		CodeUnavailable, CodeDeadlineExceeded, CodeInternal,
		CodeWrongBackend,
	}
	seenStatus := map[int]Code{}
	seenWire := map[byte]Code{}
	for _, c := range all {
		if !c.Valid() {
			t.Errorf("%s not Valid", c)
		}
		st := c.HTTPStatus()
		if prev, dup := seenStatus[st]; dup {
			t.Errorf("%s and %s share HTTP status %d", prev, c, st)
		}
		seenStatus[st] = c
		if got := CodeFromHTTPStatus(st); got != c {
			t.Errorf("CodeFromHTTPStatus(%d) = %s, want %s", st, got, c)
		}
		w := c.Wire()
		if prev, dup := seenWire[w]; dup {
			t.Errorf("%s and %s share wire byte %d", prev, c, w)
		}
		seenWire[w] = c
		if got := CodeFromWire(w); got != c {
			t.Errorf("CodeFromWire(%d) = %s, want %s", w, got, c)
		}
	}
	if Code("bogus").Valid() {
		t.Error("bogus code reported valid")
	}
	if got := Code("bogus").HTTPStatus(); got != http.StatusInternalServerError {
		t.Errorf("unknown code status = %d, want 500", got)
	}
	if got := CodeFromHTTPStatus(http.StatusTeapot); got != CodeInternal {
		t.Errorf("unmapped status = %s, want internal", got)
	}
	if got := CodeFromWire(0xFF); got != CodeInternal {
		t.Errorf("unmapped wire byte = %s, want internal", got)
	}
	// The misroute code renders as 421 Misdirected Request on HTTP and
	// byte 10 on the RPC wire, and is the one code callers retry after
	// re-resolving ownership.
	if got := CodeWrongBackend.HTTPStatus(); got != http.StatusMisdirectedRequest {
		t.Errorf("wrong_backend status = %d, want 421", got)
	}
	if got := CodeWrongBackend.Wire(); got != 10 {
		t.Errorf("wrong_backend wire byte = %d, want 10", got)
	}
	if !RetryAfterReroute(Errf(CodeWrongBackend, "moved")) {
		t.Error("wrong_backend not classified retryable-after-reroute")
	}
	if RetryAfterReroute(Errf(CodeNotFound, "gone")) || RetryAfterReroute(nil) {
		t.Error("non-misroute classified retryable-after-reroute")
	}
}

// TestErrorOf covers the canonicalisation rules: typed errors keep
// their code through wrapping, context expiry becomes deadline_exceeded
// and untyped errors default to invalid_argument.
func TestErrorOf(t *testing.T) {
	if ErrorOf(nil) != nil {
		t.Error("ErrorOf(nil) != nil")
	}
	sentinel := Errf(CodeNotFound, "nope")
	if e := ErrorOf(sentinel); e != sentinel {
		t.Errorf("unwrapped sentinel re-allocated: %+v", e)
	}
	wrapped := fmt.Errorf("outer context: %w", sentinel)
	e := ErrorOf(wrapped)
	if e.Code != CodeNotFound || !strings.Contains(e.Message, "outer context") {
		t.Errorf("wrapped = %+v", e)
	}
	if !errors.Is(wrapped, sentinel) || !errors.Is(e, sentinel) {
		t.Error("errors.Is lost through wrapping/canonicalisation")
	}
	if got := CodeOf(context.DeadlineExceeded); got != CodeDeadlineExceeded {
		t.Errorf("deadline code = %s", got)
	}
	if got := CodeOf(errors.New("plain")); got != CodeInvalidArgument {
		t.Errorf("untyped code = %s", got)
	}
	if got := CodeOf(nil); got != "" {
		t.Errorf("nil code = %q", got)
	}
	// Same-code client reconstructions match server sentinels.
	if !errors.Is(&Error{Code: CodeNotFound, Message: "other text"}, sentinel) {
		t.Error("same-code errors do not match")
	}
	if errors.Is(&Error{Code: CodeInternal}, sentinel) {
		t.Error("cross-code errors match")
	}
}

func TestCreateSessionRequestValidate(t *testing.T) {
	ok := CreateSessionRequest{ID: "u", Epsilon: 0.5, Alpha: 1}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}
	neg := -0.1
	for name, req := range map[string]CreateSessionRequest{
		"long id":       {ID: strings.Repeat("x", MaxSessionIDLen+1)},
		"neg epsilon":   {Epsilon: -1},
		"neg alpha":     {Alpha: -1},
		"neg delta":     {Delta: &neg},
		"delta too big": {Delta: ptr(1.0)},
	} {
		if err := req.Validate(); CodeOf(err) != CodeInvalidArgument {
			t.Errorf("%s: err = %v, want invalid_argument", name, err)
		}
	}
}

func ptr(f float64) *float64 { return &f }

func TestListNormalize(t *testing.T) {
	r, err := ListSessionsRequest{}.Normalize()
	if err != nil || r.Limit != DefaultListLimit {
		t.Fatalf("defaulted = %+v, %v", r, err)
	}
	r, err = ListSessionsRequest{Limit: MaxListLimit + 5}.Normalize()
	if err != nil || r.Limit != MaxListLimit {
		t.Fatalf("clamped = %+v, %v", r, err)
	}
	if _, err := (ListSessionsRequest{Limit: -1}).Normalize(); CodeOf(err) != CodeInvalidArgument {
		t.Fatalf("negative limit: %v", err)
	}
}

func TestSessionExportValidate(t *testing.T) {
	// Validate gates every import — including every migration the fleet
	// router performs — so the edge cases matter beyond the happy path.
	ok := SessionExport{Version: V1, World: "w", ID: "u", T: 1, Tags: []ReleaseTag{{Obs: 3}}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid export rejected: %v", err)
	}
	// Boundary acceptances: an id exactly at the cap, and a fresh
	// zero-step session (T=0, no tags).
	atCap := SessionExport{Version: V1, World: "w", ID: strings.Repeat("x", MaxSessionIDLen)}
	if err := atCap.Validate(); err != nil {
		t.Fatalf("id at MaxSessionIDLen rejected: %v", err)
	}
	fresh := SessionExport{Version: V1, World: "w", ID: "u"}
	if err := fresh.Validate(); err != nil {
		t.Fatalf("zero-step export rejected: %v", err)
	}
	for name, exp := range map[string]SessionExport{
		"bad version":    {Version: 2, World: "w", ID: "u"},
		"zero version":   {World: "w", ID: "u"},
		"no id":          {Version: V1, World: "w"},
		"oversized id":   {Version: V1, World: "w", ID: strings.Repeat("x", MaxSessionIDLen+1)},
		"no world":       {Version: V1, ID: "u"},
		"tag mismatch":   {Version: V1, World: "w", ID: "u", T: 2, Tags: []ReleaseTag{{}}},
		"tags without t": {Version: V1, World: "w", ID: "u", T: 0, Tags: []ReleaseTag{{Obs: 1}}},
		"t without tags": {Version: V1, World: "w", ID: "u", T: 3},
		"negative t":     {Version: V1, World: "w", ID: "u", T: -1},
	} {
		if err := exp.Validate(); CodeOf(err) != CodeInvalidArgument {
			t.Errorf("%s: err = %v, want invalid_argument", name, err)
		}
	}
}
