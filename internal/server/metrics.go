package server

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"priste/internal/api"
	"priste/internal/core"
)

// latencyWindow is the number of recent latencies retained per window
// for the p50/p99 estimates.
const latencyWindow = 2048

// latWindow is a fixed-size sliding window of recent latencies backing
// the /statsz quantile estimates; one instance serves step latency,
// further instances serve the per-transport sections.
type latWindow struct {
	mu  sync.Mutex
	buf [latencyWindow]int64 // nanoseconds, ring
	n   int64                // total observed
}

func (l *latWindow) observe(d time.Duration) {
	l.mu.Lock()
	l.buf[l.n%latencyWindow] = int64(d)
	l.n++
	l.mu.Unlock()
}

// quantiles returns the p50 and p99 of the retained window and the
// number of samples actually backing them (at most latencyWindow).
func (l *latWindow) quantiles() (p50, p99 time.Duration, samples int64) {
	l.mu.Lock()
	k := l.n
	if k > latencyWindow {
		k = latencyWindow
	}
	tmp := make([]int64, k)
	copy(tmp, l.buf[:k])
	l.mu.Unlock()
	if k == 0 {
		return 0, 0, 0
	}
	sort.Slice(tmp, func(i, j int) bool { return tmp[i] < tmp[j] })
	at := func(q float64) time.Duration {
		i := int(q * float64(k-1))
		return time.Duration(tmp[i])
	}
	return at(0.50), at(0.99), k
}

// Transports served by one Server; indexes into Metrics.transports.
const (
	transportHTTP = iota
	transportRPC
	numTransports
)

// transportMetrics is one transport's request counter and latency
// window.
type transportMetrics struct {
	requests atomic.Int64
	lat      latWindow
}

// Metrics holds the service counters behind /statsz: expvar-style atomic
// counters plus sliding windows of recent latencies for quantiles.
type Metrics struct {
	sessionsLive     atomic.Int64
	sessionsCreated  atomic.Int64
	sessionsEvicted  atomic.Int64
	sessionsImported atomic.Int64
	sessionsExported atomic.Int64

	stepsServed     atomic.Int64
	stepErrors      atomic.Int64
	uniformReleases atomic.Int64
	queueRejections atomic.Int64

	storeAppendErrors    atomic.Int64
	storeSnapshotErrors  atomic.Int64
	storeTombstoneErrors atomic.Int64
	storeReplayed        atomic.Int64
	storeReplayFailures  atomic.Int64
	storeReplayNanos     atomic.Int64
	storeWarmLoadFailed  atomic.Int64

	lat        latWindow
	transports [numTransports]transportMetrics
}

func (m *Metrics) observeStep(d time.Duration, res core.StepResult, err error) {
	if err != nil {
		m.stepErrors.Add(1)
		return
	}
	m.stepsServed.Add(1)
	if res.Uniform {
		m.uniformReleases.Add(1)
	}
	m.lat.observe(d)
}

// observeTransport records one request served on a transport (any
// request: steps, control calls, health probes).
func (m *Metrics) observeTransport(transport int, d time.Duration) {
	t := &m.transports[transport]
	t.requests.Add(1)
	t.lat.observe(d)
}

func (m *Metrics) transportStats(transport int) api.TransportStats {
	t := &m.transports[transport]
	p50, p99, _ := t.lat.quantiles()
	return api.TransportStats{
		Requests:  t.requests.Load(),
		P50Micros: float64(p50) / 1e3,
		P99Micros: float64(p99) / 1e3,
	}
}

// Snapshot returns a consistent-enough view of the counters.
func (m *Metrics) Snapshot() api.Stats {
	p50, p99, samples := m.lat.quantiles()
	served := m.stepsServed.Load()
	uniform := m.uniformReleases.Load()
	var rate float64
	if served > 0 {
		rate = float64(uniform) / float64(served)
	}
	return api.Stats{
		Sessions: api.SessionStats{
			Live:     m.sessionsLive.Load(),
			Created:  m.sessionsCreated.Load(),
			Evicted:  m.sessionsEvicted.Load(),
			Imported: m.sessionsImported.Load(),
			Exported: m.sessionsExported.Load(),
		},
		Steps: api.StepStats{
			Served:          served,
			Errors:          m.stepErrors.Load(),
			Uniform:         uniform,
			SuppressionRate: rate,
			QueueRejections: m.queueRejections.Load(),
		},
		Latency: api.LatencyStats{
			P50Micros: float64(p50) / 1e3,
			P99Micros: float64(p99) / 1e3,
			Samples:   samples,
		},
		Transports: api.TransportsStats{
			HTTP: m.transportStats(transportHTTP),
			RPC:  m.transportStats(transportRPC),
		},
	}
}
