package server

import (
	"net/http"
	"runtime"
	"time"

	"priste/internal/api"
	"priste/internal/core"
	"priste/internal/obs"
)

// Transports served by one Server; indexes into Metrics.transports.
// Local is the implicit transport of steps driven through the Go API
// directly (embedding callers, tests): pool-side stages always have a
// transport to land on even when no ingress codec tagged the context.
const (
	transportHTTP = iota
	transportRPC
	transportLocal
	numTransports
)

// transportNames are the obs context tags and the metric label values.
var transportNames = [numTransports]string{"http", "rpc", "local"}

// transportIndex maps an obs transport tag onto its metrics slot;
// unknown or absent tags land on local.
func transportIndex(name string) int {
	switch name {
	case transportNames[transportHTTP]:
		return transportHTTP
	case transportNames[transportRPC]:
		return transportRPC
	default:
		return transportLocal
	}
}

// Step pipeline stages; see api.StageStats for the semantics of each.
// The per-stage means of a served step sum to approximately its
// end-to-end served latency — the decomposition that names where the
// serving overhead over the raw engine rate goes.
const (
	stageDecode = iota
	stageQueueWait
	stageCommitHit
	stageCommitMiss
	stageWalAppend
	stageEncode
	numStages
)

var stageNames = [numStages]string{"decode", "queue_wait", "commit_hit", "commit_miss", "wal_append", "encode"}

// transportMetrics is one transport's request and step instrumentation.
// Request/step counts are the histograms' counts — no separate counters
// on the hot path.
type transportMetrics struct {
	// reqLat covers every request served on the transport (steps,
	// control calls, health probes).
	reqLat *obs.Histogram
	// stepLat is the end-to-end served latency of successful step
	// requests (HTTP: handler entry to response written; RPC: frame
	// decoded to response frame written).
	stepLat *obs.Histogram
	stages  [numStages]*obs.Histogram
}

// Metrics is the service instrumentation: atomic counters/gauges plus
// lock-free log-spaced-bucket latency histograms, all registered in an
// obs.Registry so one structure backs both the /statsz JSON document
// and the Prometheus-text /metricsz exposition.
type Metrics struct {
	reg *obs.Registry

	sessionsLive     *obs.Gauge
	sessionsCreated  *obs.Counter
	sessionsEvicted  *obs.Counter
	sessionsImported *obs.Counter
	sessionsExported *obs.Counter

	stepsServed     *obs.Counter
	stepErrors      *obs.Counter
	uniformReleases *obs.Counter
	queueRejections *obs.Counter

	storeAppendErrors    *obs.Counter
	storeSnapshotErrors  *obs.Counter
	storeTombstoneErrors *obs.Counter
	storeReplayed        *obs.Counter
	storeReplayFailures  *obs.Counter
	storeReplayNanos     *obs.Counter
	storeWarmLoadFailed  *obs.Counter

	// walFsync times WAL append fsyncs. It is not per-transport: one
	// sync persists appends from every transport, so attribution would
	// be arbitrary.
	walFsync   *obs.Histogram
	transports [numTransports]transportMetrics

	// Streaming pipeline (RPC step streams + SSE release streams).
	streamsOpened  *obs.Counter
	streamsActive  *obs.Gauge
	streamSteps    *obs.Counter
	streamAcks     *obs.Counter
	sseSubscribers *obs.Gauge
	sseDelivered   *obs.Counter
	sseDropped     *obs.Counter

	// Batch-aware scheduler.
	schedAffinity *obs.Counter
	schedFIFO     *obs.Counter
	schedRequeues *obs.Counter
}

func newMetrics() *Metrics {
	reg := obs.NewRegistry()
	m := &Metrics{reg: reg}
	m.sessionsLive = reg.Gauge("priste_sessions_live", "Live sessions.")
	m.sessionsCreated = reg.Counter("priste_sessions_created_total", "Sessions created.")
	m.sessionsEvicted = reg.Counter("priste_sessions_evicted_total", "Sessions evicted (LRU or idle TTL).")
	m.sessionsImported = reg.Counter("priste_sessions_imported_total", "Sessions imported from another instance.")
	m.sessionsExported = reg.Counter("priste_sessions_exported_total", "Sessions exported for migration.")

	m.stepsServed = reg.Counter("priste_steps_served_total", "Steps committed by the engine.")
	m.stepErrors = reg.Counter("priste_step_errors_total", "Steps failed in the engine.")
	m.uniformReleases = reg.Counter("priste_uniform_releases_total", "Steps that fell back to the uniform (zero-information) release.")
	m.queueRejections = reg.Counter("priste_queue_rejections_total", "Steps rejected by per-session queue backpressure.")

	m.storeAppendErrors = reg.Counter("priste_store_append_errors_total", "Failed write-ahead journal appends.")
	m.storeSnapshotErrors = reg.Counter("priste_store_snapshot_errors_total", "Failed snapshot compactions.")
	m.storeTombstoneErrors = reg.Counter("priste_store_tombstone_errors_total", "Failed delete/evict tombstones.")
	m.storeReplayed = reg.Counter("priste_store_sessions_replayed_total", "Sessions rehydrated from the journal at startup.")
	m.storeReplayFailures = reg.Counter("priste_store_replay_failures_total", "Persisted sessions that failed replay and were skipped.")
	m.storeReplayNanos = &obs.Counter{} // internal: total replay time, reported via /statsz only
	m.storeWarmLoadFailed = reg.Counter("priste_store_warm_load_failures_total", "Persisted cert-cache files that could not be read at startup.")

	m.streamsOpened = reg.Counter("priste_stream_opened_total", "RPC step streams opened.")
	m.streamsActive = reg.Gauge("priste_stream_active", "RPC step streams currently open.")
	m.streamSteps = reg.Counter("priste_stream_steps_total", "Steps submitted through step streams.")
	m.streamAcks = reg.Counter("priste_stream_ack_batches_total", "Ack batches flushed on step streams.")
	m.sseSubscribers = reg.Gauge("priste_sse_subscribers", "Live SSE release-stream subscribers.")
	m.sseDelivered = reg.Counter("priste_sse_delivered_total", "Releases delivered to SSE subscribers.")
	m.sseDropped = reg.Counter("priste_sse_dropped_total", "SSE subscribers dropped for lagging behind the commit stream.")

	m.schedAffinity = reg.Counter("priste_sched_affinity_picks_total", "Run-queue dequeues that kept a worker on its previous plan.")
	m.schedFIFO = reg.Counter("priste_sched_fifo_picks_total", "Run-queue dequeues in arrival order.")
	m.schedRequeues = reg.Counter("priste_sched_requeues_total", "Sessions parked back on the run queue by the drain-batch fairness cap.")

	m.walFsync = reg.Histogram("priste_wal_fsync_seconds", "WAL append fsync latency (all transports batched).")
	for i := range m.transports {
		label := obs.Label{Key: "transport", Value: transportNames[i]}
		t := &m.transports[i]
		t.reqLat = reg.Histogram("priste_request_seconds", "Request latency, any request served on the transport.", label)
		t.stepLat = reg.Histogram("priste_step_served_seconds", "End-to-end served latency of successful step requests.", label)
		for st := range t.stages {
			t.stages[st] = reg.Histogram("priste_step_stage_seconds", "Per-stage step latency; stages sum to ~ priste_step_served_seconds.",
				label, obs.Label{Key: "stage", Value: stageNames[st]})
		}
	}
	obs.RegisterRuntime(reg)
	return m
}

// Registry returns the metric registry backing /metricsz; the server
// registers its external sections (plans, cert cache, store) on it.
func (m *Metrics) Registry() *obs.Registry { return m.reg }

// Handler returns the Prometheus-text /metricsz endpoint.
func (m *Metrics) Handler() http.Handler { return m.reg.Handler() }

// observeStep records the pool-side outcome of one step: queue wait,
// engine commit (split by certified-release cache hit/miss) and WAL
// append time (wal < 0 when the deployment is not durable).
func (m *Metrics) observeStep(transport int, wait, commit, wal time.Duration, res core.StepResult, err error) {
	if err != nil {
		m.stepErrors.Add(1)
		return
	}
	m.stepsServed.Add(1)
	if res.Uniform {
		m.uniformReleases.Add(1)
	}
	t := &m.transports[transport]
	t.stages[stageQueueWait].Observe(wait)
	if res.CertCacheMisses == 0 && res.CertCacheHits > 0 {
		t.stages[stageCommitHit].Observe(commit)
	} else {
		t.stages[stageCommitMiss].Observe(commit)
	}
	if wal >= 0 {
		t.stages[stageWalAppend].Observe(wal)
	}
}

// observeServedStep records one successfully served step request at the
// transport codec: its end-to-end latency plus the decode and encode
// stages. The pool-side stages of the same step arrive via observeStep.
func (m *Metrics) observeServedStep(transport int, total, decode, encode time.Duration) {
	t := &m.transports[transport]
	t.stepLat.Observe(total)
	t.stages[stageDecode].Observe(decode)
	t.stages[stageEncode].Observe(encode)
}

// observeTransport records one request served on a transport (any
// request: steps, control calls, health probes).
func (m *Metrics) observeTransport(transport int, d time.Duration) {
	m.transports[transport].reqLat.Observe(d)
}

func (m *Metrics) transportStats(transport int) api.TransportStats {
	t := &m.transports[transport]
	ts := api.TransportStats{
		Requests:  t.reqLat.Count(),
		P50Micros: float64(t.reqLat.Quantile(0.50)) / 1e3,
		P99Micros: float64(t.reqLat.Quantile(0.99)) / 1e3,
		Steps:     t.stepLat.Count(),
	}
	if ts.Steps > 0 {
		ts.StepMeanMicros = t.stepLat.Mean() / 1e3
		ts.StepP99Micros = float64(t.stepLat.Quantile(0.99)) / 1e3
	}
	stages := make(map[string]api.StageStats, numStages)
	for i, h := range t.stages {
		n := h.Count()
		if n == 0 {
			continue
		}
		stages[stageNames[i]] = api.StageStats{
			Count:      n,
			MeanMicros: h.Mean() / 1e3,
			P99Micros:  float64(h.Quantile(0.99)) / 1e3,
		}
	}
	if len(stages) > 0 {
		ts.Stages = stages
	}
	return ts
}

// commitLatency merges the per-transport commit histograms (hit and
// miss) into one engine-commit latency view. Merging is exact: all the
// histograms share one bucket geometry.
func (m *Metrics) commitLatency() *obs.Histogram {
	var h obs.Histogram
	for i := range m.transports {
		h.Merge(m.transports[i].stages[stageCommitHit])
		h.Merge(m.transports[i].stages[stageCommitMiss])
	}
	return &h
}

// Snapshot returns a consistent-enough view of the counters.
func (m *Metrics) Snapshot() api.Stats {
	lat := m.commitLatency()
	served := m.stepsServed.Load()
	uniform := m.uniformReleases.Load()
	var rate float64
	if served > 0 {
		rate = float64(uniform) / float64(served)
	}
	var mem runtime.MemStats
	runtime.ReadMemStats(&mem)
	return api.Stats{
		Sessions: api.SessionStats{
			Live:     m.sessionsLive.Load(),
			Created:  m.sessionsCreated.Load(),
			Evicted:  m.sessionsEvicted.Load(),
			Imported: m.sessionsImported.Load(),
			Exported: m.sessionsExported.Load(),
		},
		Steps: api.StepStats{
			Served:          served,
			Errors:          m.stepErrors.Load(),
			Uniform:         uniform,
			SuppressionRate: rate,
			QueueRejections: m.queueRejections.Load(),
		},
		Latency: api.LatencyStats{
			P50Micros: float64(lat.Quantile(0.50)) / 1e3,
			P99Micros: float64(lat.Quantile(0.99)) / 1e3,
			Samples:   lat.Count(),
		},
		Transports: api.TransportsStats{
			HTTP:  m.transportStats(transportHTTP),
			RPC:   m.transportStats(transportRPC),
			Local: m.transportStats(transportLocal),
		},
		Streams: api.StreamStats{
			RPCOpened:      m.streamsOpened.Load(),
			RPCActive:      m.streamsActive.Load(),
			StepsStreamed:  m.streamSteps.Load(),
			AckBatches:     m.streamAcks.Load(),
			SSESubscribers: m.sseSubscribers.Load(),
			SSEDelivered:   m.sseDelivered.Load(),
			SSEDropped:     m.sseDropped.Load(),
		},
		Scheduler: api.SchedulerStats{
			AffinityPicks: m.schedAffinity.Load(),
			FIFOPicks:     m.schedFIFO.Load(),
			Requeues:      m.schedRequeues.Load(),
		},
		Runtime: api.RuntimeStats{
			Goroutines:     runtime.NumGoroutine(),
			HeapAllocBytes: mem.HeapAlloc,
			HeapObjects:    mem.HeapObjects,
			GCCycles:       mem.NumGC,
			GCPauseMicros:  float64(mem.PauseTotalNs) / 1e3,
		},
	}
}
