package server

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"priste/internal/core"
	"priste/internal/store"
)

// latencyWindow is the number of recent step latencies retained for the
// p50/p99 estimates.
const latencyWindow = 2048

// Metrics holds the service counters behind /statsz: expvar-style atomic
// counters plus a sliding window of step latencies for quantiles.
type Metrics struct {
	sessionsLive    atomic.Int64
	sessionsCreated atomic.Int64
	sessionsEvicted atomic.Int64

	stepsServed     atomic.Int64
	stepErrors      atomic.Int64
	uniformReleases atomic.Int64
	queueRejections atomic.Int64

	storeAppendErrors    atomic.Int64
	storeSnapshotErrors  atomic.Int64
	storeTombstoneErrors atomic.Int64
	storeReplayed        atomic.Int64
	storeReplayFailures  atomic.Int64
	storeReplayNanos     atomic.Int64
	storeWarmLoadFailed  atomic.Int64

	lat struct {
		mu  sync.Mutex
		buf [latencyWindow]int64 // nanoseconds, ring
		n   int64                // total observed
	}
}

func (m *Metrics) observeStep(d time.Duration, res core.StepResult, err error) {
	if err != nil {
		m.stepErrors.Add(1)
		return
	}
	m.stepsServed.Add(1)
	if res.Uniform {
		m.uniformReleases.Add(1)
	}
	m.lat.mu.Lock()
	m.lat.buf[m.lat.n%latencyWindow] = int64(d)
	m.lat.n++
	m.lat.mu.Unlock()
}

// quantiles returns the p50 and p99 of the retained latency window and
// the number of samples actually backing them (at most latencyWindow).
func (m *Metrics) quantiles() (p50, p99 time.Duration, samples int64) {
	m.lat.mu.Lock()
	k := m.lat.n
	if k > latencyWindow {
		k = latencyWindow
	}
	tmp := make([]int64, k)
	copy(tmp, m.lat.buf[:k])
	m.lat.mu.Unlock()
	if k == 0 {
		return 0, 0, 0
	}
	sort.Slice(tmp, func(i, j int) bool { return tmp[i] < tmp[j] })
	at := func(q float64) time.Duration {
		i := int(q * float64(k-1))
		return time.Duration(tmp[i])
	}
	return at(0.50), at(0.99), k
}

// Stats is the JSON document served at /statsz.
type Stats struct {
	Sessions  SessionStats   `json:"sessions"`
	Steps     StepStats      `json:"steps"`
	Latency   LatencyStats   `json:"latency"`
	Plans     PlanStats      `json:"plans"`
	CertCache CertCacheStats `json:"cert_cache"`
	Store     StoreStats     `json:"store"`
}

// StoreStats is the /statsz durability section: the store's own
// counters (appends, fsyncs, snapshots, ...) plus the serving layer's
// view of it — append failures, startup session replays and their total
// latency, and warm-loaded certified-release cache entries.
type StoreStats struct {
	store.Stats
	// AppendErrors counts failed write-ahead journal appends (acknowledged
	// steps whose record was lost); SnapshotErrors failed compactions
	// (self-healing at the next cadence); TombstoneErrors failed
	// delete/evict tombstones.
	AppendErrors    int64   `json:"append_errors"`
	SnapshotErrors  int64   `json:"snapshot_errors"`
	TombstoneErrors int64   `json:"tombstone_errors"`
	Replayed        int64   `json:"replayed"`
	ReplayFailures  int64   `json:"replay_failures"`
	ReplayMicros    float64 `json:"replay_us"`
	WarmLoaded      int64   `json:"warm_loaded"`
	// WarmLoadFailed is 1 when the persisted cert-cache existed but
	// could not be read at startup (the server started cold).
	WarmLoadFailed int64 `json:"warm_load_failed"`
}

// CertCacheStats is the /statsz certified-release cache section. HitRate
// is hits/(hits+misses) over the cache lifetime; all-zero with Enabled
// false when the cache is disabled.
type CertCacheStats struct {
	Enabled   bool    `json:"enabled"`
	Hits      int64   `json:"hits"`
	Misses    int64   `json:"misses"`
	Evictions int64   `json:"evictions"`
	Entries   int64   `json:"entries"`
	HitRate   float64 `json:"hit_rate"`
}

// SessionStats counts session lifecycle events.
type SessionStats struct {
	Live    int64 `json:"live"`
	Created int64 `json:"created"`
	Evicted int64 `json:"evicted"`
}

// StepStats counts served steps. SuppressionRate is the fraction of
// released timestamps that fell back to the uniform (zero-information)
// release.
type StepStats struct {
	Served          int64   `json:"served"`
	Errors          int64   `json:"errors"`
	Uniform         int64   `json:"uniform"`
	SuppressionRate float64 `json:"suppression_rate"`
	QueueRejections int64   `json:"queue_rejections"`
}

// LatencyStats summarises recent step latency. Samples counts the
// observations backing the quantiles (the retained window, not the
// lifetime step total — that is Steps.Served).
type LatencyStats struct {
	P50Micros float64 `json:"p50_us"`
	P99Micros float64 `json:"p99_us"`
	Samples   int64   `json:"samples"`
}

// Snapshot returns a consistent-enough view of the counters.
func (m *Metrics) Snapshot() Stats {
	p50, p99, samples := m.quantiles()
	served := m.stepsServed.Load()
	uniform := m.uniformReleases.Load()
	var rate float64
	if served > 0 {
		rate = float64(uniform) / float64(served)
	}
	return Stats{
		Sessions: SessionStats{
			Live:    m.sessionsLive.Load(),
			Created: m.sessionsCreated.Load(),
			Evicted: m.sessionsEvicted.Load(),
		},
		Steps: StepStats{
			Served:          served,
			Errors:          m.stepErrors.Load(),
			Uniform:         uniform,
			SuppressionRate: rate,
			QueueRejections: m.queueRejections.Load(),
		},
		Latency: LatencyStats{
			P50Micros: float64(p50) / 1e3,
			P99Micros: float64(p99) / 1e3,
			Samples:   samples,
		},
	}
}
