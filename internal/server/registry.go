package server

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"priste/internal/certcache"
	"priste/internal/core"
	"priste/internal/event"
	"priste/internal/grid"
)

// maxPlans bounds the registry. A deployment normally sees a handful of
// distinct parameter combinations; past the bound (e.g. a client
// sweeping ε values) plans are still built but no longer retained, so an
// adversarial parameter stream cannot pin unbounded compiled models.
const maxPlans = 1024

// planKey canonically identifies the engine parameters that determine a
// compiled plan. Sessions differing only in seed (or session id) map to
// the same key and share one plan — one set of compiled world models, one
// emission table, one certified-release cache id. Epsilon, alpha,
// mechanism, delta (δ mechanism only) and the protected-event set all
// change release semantics and therefore the key.
type planKey struct {
	epsilon   float64
	alpha     float64
	mechanism string
	delta     float64
	events    string
}

// canonicalEvents renders a parsed event set into a canonical,
// order-insensitive string: two spec lists describing the same events
// (e.g. reordered) share a plan. The rendering walks the event's window
// masks, so it identifies events by semantics, not by spelling.
func canonicalEvents(events []event.Event) string {
	parts := make([]string, len(events))
	for i, ev := range events {
		parts[i] = canonicalEvent(ev)
	}
	sort.Strings(parts)
	return strings.Join(parts, "\n")
}

func canonicalEvent(ev event.Event) string {
	start, end := ev.Window()
	var b strings.Builder
	fmt.Fprintf(&b, "sticky=%v;w=%d-%d", ev.Sticky(), start, end)
	// Run-length compress by region identity: PRESENCE events return one
	// region for the whole window, so the rendering stays O(region), not
	// O(window·region).
	var prev *grid.Region
	for t := start; t <= end; t++ {
		r := ev.RegionAt(t)
		if r == prev {
			continue
		}
		prev = r
		fmt.Fprintf(&b, ";@%d:", t)
		for s, v := range r.Mask() {
			if v != 0 {
				fmt.Fprintf(&b, "%d,", s)
			}
		}
	}
	return b.String()
}

// PlanRegistry deduplicates compiled core.Plans across sessions: the
// thousands of sessions created with identical grid/chain/events/ε share
// one immutable plan (and, for history-independent mechanisms, one
// certified-release cache) instead of each recompiling the world models
// and re-certifying releases sibling sessions already paid for.
type PlanRegistry struct {
	mu    sync.Mutex
	plans map[planKey]*planEntry
	cache *certcache.Cache // shared across plans; nil disables

	compiled atomic.Int64 // plans built (including unretained overflow)
	shared   atomic.Int64 // lookups served by an already-compiled plan
}

// planEntry is one registered key. once serialises compilation per key —
// racing creates of the same key wait for one build — without holding the
// registry lock across the O(horizon·m²) compile, so creates for other
// (especially already-compiled) keys are never stalled behind a cold one.
type planEntry struct {
	once sync.Once
	plan *core.Plan
	err  error
}

func newPlanRegistry(cache *certcache.Cache) *PlanRegistry {
	return &PlanRegistry{
		plans: make(map[planKey]*planEntry),
		cache: cache,
	}
}

// lookup returns the shared plan for key, compiling and registering it
// with build on first use. Past maxPlans the plan is compiled unretained
// and without the shared cache: a never-reused plan id must not fill the
// cache's LRU with entries no future session can hit.
func (r *PlanRegistry) lookup(key planKey, build func() (*core.Plan, error)) (*core.Plan, error) {
	r.mu.Lock()
	e, found := r.plans[key]
	retained := found
	if !found && len(r.plans) < maxPlans {
		e = &planEntry{}
		r.plans[key] = e
		retained = true
	}
	r.mu.Unlock()

	if !retained {
		p, err := build()
		if err == nil {
			r.compiled.Add(1)
		}
		return p, err
	}
	if found {
		r.shared.Add(1)
	}
	e.once.Do(func() {
		e.plan, e.err = build()
		if e.err != nil {
			return
		}
		r.compiled.Add(1)
		if r.cache != nil {
			e.plan.EnableCache(r.cache)
		}
	})
	if e.err != nil {
		// Builds fail deterministically from the key's parameters, but a
		// dead entry must not occupy a registry slot.
		r.mu.Lock()
		if r.plans[key] == e {
			delete(r.plans, key)
		}
		r.mu.Unlock()
		return nil, e.err
	}
	return e.plan, nil
}

// Len returns the number of retained plans.
func (r *PlanRegistry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.plans)
}

// Cache returns the shared certified-release cache, or nil when disabled.
func (r *PlanRegistry) Cache() *certcache.Cache { return r.cache }

// PlanStats is the /statsz plan-registry section.
type PlanStats struct {
	// Live is the number of retained compiled plans.
	Live int64 `json:"live"`
	// Compiled counts plan compilations (cache misses at the plan level).
	Compiled int64 `json:"compiled"`
	// SharedHits counts session creations served by an existing plan.
	SharedHits int64 `json:"shared_hits"`
}

// Stats returns the registry counters.
func (r *PlanRegistry) Stats() PlanStats {
	return PlanStats{
		Live:       int64(r.Len()),
		Compiled:   r.compiled.Load(),
		SharedHits: r.shared.Load(),
	}
}
