package server

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"priste/internal/api"
	"priste/internal/certcache"
	"priste/internal/core"
	"priste/internal/event"
	"priste/internal/grid"
	"priste/internal/qp"
	"priste/internal/store"
	"priste/internal/world"
)

// maxPlans bounds the registry. A deployment normally sees a handful of
// distinct parameter combinations; past the bound (e.g. a client
// sweeping ε values) plans are still built but no longer retained, so an
// adversarial parameter stream cannot pin unbounded compiled models.
const maxPlans = 1024

// planKey canonically identifies the engine parameters that determine a
// compiled plan. Sessions differing only in seed (or session id) map to
// the same key and share one plan — one set of compiled world models, one
// emission table, one certified-release cache id. Epsilon, alpha,
// mechanism, delta (δ mechanism only) and the protected-event set all
// change release semantics and therefore the key.
type planKey struct {
	epsilon   float64
	alpha     float64
	mechanism string
	delta     float64
	events    string
}

// String renders the key canonically. Unlike core.Plan ids — which are
// process-unique counters — the rendering is stable across restarts;
// prefixed with the registry's world tag (keyString) it keys persisted
// certified-release cache entries.
func (k planKey) String() string {
	return fmt.Sprintf("eps=%g;alpha=%g;mech=%s;delta=%g;events=%s",
		k.epsilon, k.alpha, k.mechanism, k.delta, k.events)
}

// canonicalEvents renders a parsed event set into a canonical,
// order-insensitive string: two spec lists describing the same events
// (e.g. reordered) share a plan. The rendering walks the event's window
// masks, so it identifies events by semantics, not by spelling.
func canonicalEvents(events []event.Event) string {
	parts := make([]string, len(events))
	for i, ev := range events {
		parts[i] = canonicalEvent(ev)
	}
	sort.Strings(parts)
	return strings.Join(parts, "\n")
}

func canonicalEvent(ev event.Event) string {
	start, end := ev.Window()
	var b strings.Builder
	fmt.Fprintf(&b, "sticky=%v;w=%d-%d", ev.Sticky(), start, end)
	// Run-length compress by region identity: PRESENCE events return one
	// region for the whole window, so the rendering stays O(region), not
	// O(window·region).
	var prev *grid.Region
	for t := start; t <= end; t++ {
		r := ev.RegionAt(t)
		if r == prev {
			continue
		}
		prev = r
		fmt.Fprintf(&b, ";@%d:", t)
		for s, v := range r.Mask() {
			if v != 0 {
				fmt.Fprintf(&b, "%d,", s)
			}
		}
	}
	return b.String()
}

// PlanRegistry deduplicates compiled core.Plans across sessions: the
// thousands of sessions created with identical grid/chain/events/ε share
// one immutable plan (and, for history-independent mechanisms, one
// certified-release cache) instead of each recompiling the world models
// and re-certifying releases sibling sessions already paid for.
type PlanRegistry struct {
	mu    sync.Mutex
	plans map[planKey]*planEntry
	cache *certcache.Cache // shared across plans; nil disables

	// world is the canonical world-model tag prefixed to persisted cache
	// keys (see newPlanRegistry).
	world string

	// warm holds persisted certified-release cache entries, keyed by the
	// canonical (world + plan key) string, waiting for their plan to be
	// compiled: plan ids are process-unique, so entries can only enter
	// the cache once the restarted process has minted the key's new id.
	warm map[string][]store.CacheEntry

	compiled   atomic.Int64 // plans built (including unretained overflow)
	shared     atomic.Int64 // lookups served by an already-compiled plan
	warmLoaded atomic.Int64 // persisted cache entries injected
}

// planEntry is one registered key. once serialises compilation per key —
// racing creates of the same key wait for one build — without holding the
// registry lock across the O(horizon·m²) compile, so creates for other
// (especially already-compiled) keys are never stalled behind a cold one.
type planEntry struct {
	once sync.Once
	plan *core.Plan
	err  error
}

// newPlanRegistry builds a registry. world canonically identifies the
// server's world model (grid dimensions, cell size, mobility sigma) —
// certified verdicts are only valid for the world they were computed
// against, so it prefixes every persisted cache key.
func newPlanRegistry(cache *certcache.Cache, world string) *PlanRegistry {
	return &PlanRegistry{
		plans: make(map[planKey]*planEntry),
		cache: cache,
		world: world,
	}
}

// keyString renders a plan's restart-stable persisted identity: the
// world tag plus the canonical plan parameters.
func (r *PlanRegistry) keyString(k planKey) string {
	return r.world + ";" + k.String()
}

// lookup returns the shared plan for key, compiling and registering it
// with build on first use. Past maxPlans the plan is compiled unretained
// and without the shared cache: a never-reused plan id must not fill the
// cache's LRU with entries no future session can hit.
func (r *PlanRegistry) lookup(key planKey, build func() (*core.Plan, error)) (*core.Plan, error) {
	r.mu.Lock()
	e, found := r.plans[key]
	retained := found
	if !found && len(r.plans) < maxPlans {
		e = &planEntry{}
		r.plans[key] = e
		retained = true
	}
	r.mu.Unlock()

	if !retained {
		p, err := build()
		if err == nil {
			r.compiled.Add(1)
		}
		return p, err
	}
	if found {
		r.shared.Add(1)
	}
	e.once.Do(func() {
		p, err := build()
		// Publish under the registry lock: exportCache iterates entries
		// under r.mu and reads e.plan, so the once alone is not a
		// happens-before edge for it.
		r.mu.Lock()
		e.plan, e.err = p, err
		r.mu.Unlock()
		if err != nil {
			return
		}
		r.compiled.Add(1)
		if r.cache != nil {
			p.EnableCache(r.cache)
			r.injectWarm(key, p)
		}
	})
	if e.err != nil {
		// Builds fail deterministically from the key's parameters, but a
		// dead entry must not occupy a registry slot.
		r.mu.Lock()
		if r.plans[key] == e {
			delete(r.plans, key)
		}
		r.mu.Unlock()
		return nil, e.err
	}
	return e.plan, nil
}

// Len returns the number of retained plans.
func (r *PlanRegistry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.plans)
}

// Cache returns the shared certified-release cache, or nil when disabled.
func (r *PlanRegistry) Cache() *certcache.Cache { return r.cache }

// setWarm parks persisted cache entries until their plans compile.
// Called once at startup, before any session is created.
func (r *PlanRegistry) setWarm(entries []store.CacheEntry) {
	if len(entries) == 0 || r.cache == nil {
		return
	}
	warm := make(map[string][]store.CacheEntry)
	for _, e := range entries {
		warm[e.PlanKey] = append(warm[e.PlanKey], e)
	}
	r.mu.Lock()
	r.warm = warm
	r.mu.Unlock()
}

// injectWarm moves the key's parked entries into the live cache under
// the freshly-minted plan id. Only history-independent plans carry a
// cache; entries for a plan that compiled stateful are dropped.
func (r *PlanRegistry) injectWarm(key planKey, plan *core.Plan) {
	ks := r.keyString(key)
	r.mu.Lock()
	entries := r.warm[ks]
	delete(r.warm, ks)
	r.mu.Unlock()
	if len(entries) == 0 || plan.Cache() == nil {
		return
	}
	verdict := func(ok bool) qp.Result {
		if ok {
			return qp.Result{Verdict: qp.Satisfied}
		}
		return qp.Result{Verdict: qp.Violated}
	}
	for _, e := range entries {
		k := certcache.Key{
			Plan:      plan.ID(),
			Event:     e.Event,
			T:         e.T,
			History:   e.History,
			AlphaBits: e.AlphaBits,
			Obs:       e.Obs,
		}
		r.cache.Put(k, qp.ReleaseDecision{
			OK:   e.Eq15OK && e.Eq16OK,
			Eq15: verdict(e.Eq15OK),
			Eq16: verdict(e.Eq16OK),
		})
		r.warmLoaded.Add(1)
	}
}

// exportCache renders the live cache as persistable entries: each cached
// decision whose plan id is still registered is keyed by the canonical
// plan-key string (stable across restarts). Solver diagnostics are
// dropped; only verdicts survive.
func (r *PlanRegistry) exportCache() []store.CacheEntry {
	if r.cache == nil {
		return nil
	}
	byID := make(map[uint64]string)
	r.mu.Lock()
	for key, e := range r.plans {
		if e.plan != nil {
			byID[e.plan.ID()] = r.keyString(key)
		}
	}
	// Persisted entries still parked (their plan never recompiled this
	// life) carry over verbatim — a restart must not erode warmth for
	// plans it happened not to touch.
	var out []store.CacheEntry
	for _, parked := range r.warm {
		out = append(out, parked...)
	}
	r.mu.Unlock()
	r.cache.Range(func(k certcache.Key, dec qp.ReleaseDecision) bool {
		ks, ok := byID[k.Plan]
		if !ok {
			return true // unretained overflow plan: no stable identity
		}
		out = append(out, store.CacheEntry{
			PlanKey:   ks,
			Event:     k.Event,
			T:         k.T,
			History:   k.History,
			AlphaBits: k.AlphaBits,
			Obs:       k.Obs,
			Eq15OK:    dec.Eq15.Verdict == qp.Satisfied,
			Eq16OK:    dec.Eq16.Verdict == qp.Satisfied,
		})
		return true
	})
	return out
}

// Stats returns the registry counters (the /statsz plans section).
func (r *PlanRegistry) Stats() api.PlanStats {
	var ks world.KernelStats
	var shChecks, shFallbacks int64
	r.mu.Lock()
	live := len(r.plans)
	for _, e := range r.plans {
		if e.plan != nil {
			ks = ks.Add(e.plan.KernelStats())
			c, fb := e.plan.ShadowStats()
			shChecks += c
			shFallbacks += fb
		}
	}
	r.mu.Unlock()
	return api.PlanStats{
		Live:            int64(live),
		Compiled:        r.compiled.Load(),
		SharedHits:      r.shared.Load(),
		SparseKernels:   int64(ks.Sparse),
		DenseKernels:    int64(ks.Dense),
		KernelDensity:   ks.Density,
		BlockedKernels:  ks.Blocked,
		BandedKernels:   ks.Banded,
		ShadowChecks:    shChecks,
		ShadowFallbacks: shFallbacks,
	}
}

// WarmLoaded returns the number of persisted certified-release cache
// entries injected into the live cache so far.
func (r *PlanRegistry) WarmLoaded() int64 { return r.warmLoaded.Load() }
