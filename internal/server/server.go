// Package server implements the pristed serving subsystem: a long-lived
// concurrent multi-user release service layered over the core PriSTE
// engine. Each user owns a Session — a core.Framework with its own RNG,
// mechanism and event set — managed by a sharded SessionManager with
// idle-TTL and LRU eviction. Step calls are executed by a worker pool
// that keeps every session single-writer with per-session FIFO ordering
// and bounded-queue backpressure, and the whole thing is exposed as an
// HTTP/JSON API (see Handler) with a typed Client.
package server

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"priste/internal/certcache"
	"priste/internal/core"
	"priste/internal/eventspec"
	"priste/internal/grid"
	"priste/internal/lppm"
	"priste/internal/markov"
	"priste/internal/mat"
	"priste/internal/world"
)

// Server is one pristed instance: the shared world model (grid, mobility
// chain), the plan registry deduplicating compiled engines across
// sessions, the session registry, the step worker pool, and the service
// counters. Create with New, expose with Handler, release with Close.
type Server struct {
	cfg      Config
	g        *grid.Grid
	chain    *markov.Chain
	tp       world.TransitionProvider
	pi       mat.Vector
	mgr      *Manager
	registry *PlanRegistry
	pool     *pool
	metrics  *Metrics

	janitorQuit chan struct{}
	janitorWG   sync.WaitGroup

	closeOnce sync.Once
}

// New builds a server: validates the config, precomputes the shared world
// model, and starts the worker pool and the idle-session janitor.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	g, err := grid.New(cfg.GridW, cfg.GridH, cfg.Cell)
	if err != nil {
		return nil, fmt.Errorf("server: grid: %w", err)
	}
	chain, err := markov.GaussianChain(g, cfg.Sigma)
	if err != nil {
		return nil, fmt.Errorf("server: mobility chain: %w", err)
	}
	// Fail fast on an unparsable default event set.
	if _, err := eventspec.ParseAll(cfg.Events, g.States(), 0); err != nil {
		return nil, err
	}
	metrics := &Metrics{}
	workers := cfg.Workers
	if workers < 0 {
		workers = 0
	}
	var cache *certcache.Cache
	if cfg.CertCacheSize > 0 {
		cache = certcache.New(cfg.CertCacheSize)
	}
	s := &Server{
		cfg:         cfg,
		g:           g,
		chain:       chain,
		tp:          world.NewHomogeneous(chain),
		pi:          markov.Uniform(g.States()),
		mgr:         newManager(cfg.MaxSessions, cfg.SessionTTL, metrics),
		registry:    newPlanRegistry(cache),
		pool:        newPool(workers, cfg.MaxSessions, metrics),
		metrics:     metrics,
		janitorQuit: make(chan struct{}),
	}
	if cfg.SessionTTL > 0 {
		s.janitorWG.Add(1)
		go s.janitor()
	}
	return s, nil
}

// janitor periodically evicts idle sessions.
func (s *Server) janitor() {
	defer s.janitorWG.Done()
	interval := s.cfg.SessionTTL / 4
	if interval < time.Second {
		interval = time.Second
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case now := <-tick.C:
			s.mgr.sweep(now)
		case <-s.janitorQuit:
			return
		}
	}
}

// Config returns the effective (defaulted) configuration.
func (s *Server) Config() Config { return s.cfg }

// Metrics returns the live service counters.
func (s *Server) Metrics() *Metrics { return s.metrics }

// Sessions returns the session registry.
func (s *Server) Sessions() *Manager { return s.mgr }

// Plans returns the plan registry.
func (s *Server) Plans() *PlanRegistry { return s.registry }

// Stats returns the full /statsz document: service counters plus the
// plan-registry and certified-release cache sections.
func (s *Server) Stats() Stats {
	st := s.metrics.Snapshot()
	st.Plans = s.registry.Stats()
	if c := s.registry.Cache(); c != nil {
		cs := c.Stats()
		st.CertCache = CertCacheStats{
			Enabled:   true,
			Hits:      cs.Hits,
			Misses:    cs.Misses,
			Evictions: cs.Evictions,
			Entries:   cs.Entries,
		}
		if total := cs.Hits + cs.Misses; total > 0 {
			st.CertCache.HitRate = float64(cs.Hits) / float64(total)
		}
	}
	return st
}

// Close stops the janitor, closes every session (failing pending steps
// with ErrSessionClosed) and stops the worker pool. Safe to call more
// than once.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		close(s.janitorQuit)
		s.janitorWG.Wait()
		s.mgr.CloseAll()
		s.pool.stop()
	})
}

// CreateSession builds and registers a session from a creation request,
// applying the server's privacy defaults for absent fields. The compiled
// engine is shared: sessions whose canonical parameters (ε, α, mechanism,
// δ, protected events) match an existing plan reuse it — only the RNG,
// quantifier state and (for δ) mechanism state are per-session. At
// capacity the least recently used session is evicted to make room.
func (s *Server) CreateSession(req CreateSessionRequest) (*Session, error) {
	m := s.g.States()
	eps := req.Epsilon
	if eps == 0 {
		eps = s.cfg.Epsilon
	}
	alpha := req.Alpha
	if alpha == 0 {
		alpha = s.cfg.Alpha
	}
	mechName := req.Mechanism
	if mechName == "" {
		mechName = s.cfg.Mechanism
	}
	specs := req.Events
	if len(specs) == 0 {
		specs = s.cfg.Events
	}
	events, err := eventspec.ParseAll(specs, m, 0)
	if err != nil {
		return nil, err
	}

	delta := 0.0
	var mf core.MechanismFactory
	switch mechName {
	case MechanismLaplace:
		mf = func() (lppm.Perturber, error) { return lppm.NewPlanarLaplace(s.g), nil }
	case MechanismDelta:
		delta = s.cfg.Delta
		if req.Delta != nil {
			delta = *req.Delta
		}
		d := delta
		mf = func() (lppm.Perturber, error) { return lppm.NewDeltaLocationSet(s.g, s.chain, s.pi, d) }
	default:
		return nil, fmt.Errorf("server: unknown mechanism %q (want %q or %q)", mechName, MechanismLaplace, MechanismDelta)
	}

	key := planKey{
		epsilon:   eps,
		alpha:     alpha,
		mechanism: mechName,
		delta:     delta,
		events:    canonicalEvents(events),
	}
	plan, err := s.registry.lookup(key, func() (*core.Plan, error) {
		coreCfg := core.DefaultConfig(eps, alpha)
		coreCfg.QPTimeout = s.cfg.QPTimeout
		return core.NewPlan(mf, s.tp, events, coreCfg)
	})
	if err != nil {
		return nil, err
	}

	var seed int64
	if req.Seed != nil {
		seed = *req.Seed
	} else {
		seed = randomSeed()
	}
	fw, err := plan.NewSession(rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, err
	}

	id := req.ID
	if id == "" {
		id = newSessionID()
	}
	now := time.Now()
	sess := &Session{
		id:        id,
		created:   now,
		fw:        fw,
		epsilon:   eps,
		alpha:     alpha,
		mechanism: mechName,
		events:    specs,
	}
	sess.touch(now)
	if err := s.mgr.Put(sess); err != nil {
		return nil, err
	}
	return sess, nil
}

// Step enqueues one step on a session and waits for its certified
// release. FIFO order among concurrent Step calls on the same session is
// the order their enqueues linearise in; the HTTP layer and the batch
// endpoint preserve their own arrival order.
func (s *Server) Step(id string, loc int) (core.StepResult, error) {
	done, err := s.stepAsync(id, loc)
	if err != nil {
		return core.StepResult{}, err
	}
	out := <-done
	return out.res, out.err
}

// stepAsync enqueues one step and returns the completion channel.
func (s *Server) stepAsync(id string, loc int) (chan stepOutcome, error) {
	sess, ok := s.mgr.Get(id)
	if !ok {
		return nil, ErrNotFound
	}
	j := stepJob{loc: loc, done: make(chan stepOutcome, 1)}
	wake, err := sess.enqueue(j, s.cfg.QueueDepth)
	if err != nil {
		if err == ErrQueueFull {
			s.metrics.queueRejections.Add(1)
		}
		return nil, err
	}
	sess.touch(time.Now())
	if wake {
		s.pool.schedule(sess)
	}
	return j.done, nil
}

// DeleteSession removes and closes a session.
func (s *Server) DeleteSession(id string) bool { return s.mgr.Remove(id) }

// SessionInfo reports a session's public state.
func (s *Server) SessionInfo(id string) (SessionInfo, error) {
	sess, ok := s.mgr.Get(id)
	if !ok {
		return SessionInfo{}, ErrNotFound
	}
	return sessionInfo(sess), nil
}

func sessionInfo(s *Session) SessionInfo {
	return SessionInfo{
		ID:        s.id,
		T:         int(s.steps.Load()),
		Epsilon:   s.epsilon,
		Alpha:     s.alpha,
		Mechanism: s.mechanism,
		Events:    s.events,
		Created:   s.created,
		LastUsed:  time.Unix(0, s.lastUsed.Load()),
		Queued:    s.queued(),
	}
}
