// Package server implements the pristed serving subsystem: a long-lived
// concurrent multi-user release service layered over the core PriSTE
// engine. Each user owns a Session — a core.Framework with its own RNG,
// mechanism and event set — managed by a sharded SessionManager with
// idle-TTL and LRU eviction. Step calls are executed by a worker pool
// that keeps every session single-writer with per-session FIFO ordering
// and bounded-queue backpressure, and the whole thing is exposed as an
// HTTP/JSON API (see Handler) with a typed Client.
package server

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"priste/internal/api"
	"priste/internal/certcache"
	"priste/internal/core"
	"priste/internal/event"
	"priste/internal/eventspec"
	"priste/internal/grid"
	"priste/internal/lppm"
	"priste/internal/markov"
	"priste/internal/mat"
	"priste/internal/obs"
	"priste/internal/par"
	"priste/internal/store"
	"priste/internal/world"
)

// Server is the canonical implementation of the transport-neutral
// service surface: the HTTP handlers (Handler), the binary RPC server
// (internal/rpc) and the pristectl CLI are all thin codecs over these
// methods.
var (
	_ api.Service      = (*Server)(nil)
	_ api.AsyncStepper = (*Server)(nil)
)

// Server is one pristed instance: the shared world model (grid, mobility
// chain), the plan registry deduplicating compiled engines across
// sessions, the session registry, the step worker pool, and the service
// counters. Create with New, expose with Handler, release with Close.
type Server struct {
	cfg      Config
	g        *grid.Grid
	chain    *markov.Chain
	tp       world.TransitionProvider
	pi       mat.Vector
	mgr      *Manager
	registry *PlanRegistry
	pool     *pool
	hub      *streamHub
	metrics  *Metrics
	logger   *slog.Logger
	// start anchors the uptime reported by Health and Stats.
	start time.Time

	// streamWindows tracks in-flight (submitted, not yet acknowledged)
	// streamed steps per session shard — the RPC stream window occupancy
	// surfaced in /statsz. Sharded with the session registry so the
	// per-shard breakdown lines up with where the sessions live.
	streamWindows [numShards]atomic.Int64

	// worldTag canonically identifies the world model; it scopes every
	// persisted identity (session journals, warm cache keys) so state
	// certified against one world is never replayed into another.
	worldTag string

	// durable is false for the Null store; it gates the per-step
	// persistence work so in-memory deployments pay nothing.
	durable bool
	// createMu serialises the journal+register tail of CreateSession so
	// orphan-journal reclamation (an id journaled but no longer live,
	// e.g. evicted during an over-capacity rehydrate) cannot race a
	// concurrent create of the same id. Plan compilation stays outside
	// the lock.
	createMu sync.Mutex
	// saveCacheMu serialises warm-cache persistence: the periodic
	// cacheSaver tick and the final Shutdown save must not write the
	// same file concurrently. lastCacheSig (guarded by it) is the cache
	// counter signature at the last successful save; unchanged → skip.
	saveCacheMu  sync.Mutex
	lastCacheSig [4]int64
	// draining is set by Shutdown: new sessions and steps are rejected
	// with ErrDraining while pending work completes and state flushes.
	draining atomic.Bool

	janitorQuit chan struct{}
	janitorWG   sync.WaitGroup
	stopBgOnce  sync.Once

	closeOnce sync.Once
}

// New builds a server: validates the config, precomputes the shared world
// model, and starts the worker pool and the idle-session janitor.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	g, err := grid.New(cfg.GridW, cfg.GridH, cfg.Cell)
	if err != nil {
		return nil, fmt.Errorf("server: grid: %w", err)
	}
	chain, err := markov.GaussianChain(g, cfg.Sigma)
	if err != nil {
		return nil, fmt.Errorf("server: mobility chain: %w", err)
	}
	if cfg.SparseCutoff > 0 {
		chain, err = chain.Sparsified(cfg.SparseCutoff)
		if err != nil {
			return nil, fmt.Errorf("server: sparsify mobility chain: %w", err)
		}
	}
	// Fail fast on an unparsable default event set.
	if _, err := eventspec.ParseAll(cfg.Events, g.States(), 0); err != nil {
		return nil, err
	}
	metrics := newMetrics()
	workers := cfg.Workers
	if workers < 0 {
		workers = 0
	}
	if cfg.Parallelism > 0 {
		// The kernel pool is process-global (shared with any other
		// server in the process); 0 leaves it tracking GOMAXPROCS.
		par.Default().SetParallelism(cfg.Parallelism)
	}
	var cache *certcache.Cache
	if cfg.CertCacheSize > 0 {
		cache = certcache.New(cfg.CertCacheSize)
	}
	_, isNull := cfg.Store.(store.Null)
	// The sparse cutoff changes the transition probabilities, so it is
	// part of the world identity; cutoff 0 keeps the pre-cutoff tag so
	// existing journals stay replayable. The kernel mode is NOT part of
	// the tag: dense and sparse kernels over the same chain are
	// bit-equivalent, so journals move freely between them.
	worldTag := fmt.Sprintf("grid=%dx%d;cell=%g;sigma=%g", cfg.GridW, cfg.GridH, cfg.Cell, cfg.Sigma)
	if cfg.SparseCutoff > 0 {
		worldTag += fmt.Sprintf(";cutoff=%g", cfg.SparseCutoff)
	}
	s := &Server{
		cfg:         cfg,
		g:           g,
		chain:       chain,
		tp:          world.NewHomogeneous(chain),
		pi:          markov.Uniform(g.States()),
		mgr:         newManager(cfg.MaxSessions, cfg.SessionTTL, metrics),
		registry:    newPlanRegistry(cache, worldTag),
		pool:        newPool(workers, cfg.SchedAffinity, cfg.DrainBatch, metrics, cfg.Logger, cfg.SlowStep),
		hub:         newStreamHub(cfg.StreamBuffer, metrics),
		metrics:     metrics,
		logger:      cfg.Logger,
		start:       time.Now(),
		worldTag:    worldTag,
		durable:     !isNull,
		janitorQuit: make(chan struct{}),
	}
	// Every committed release fans out to the session's push subscribers
	// (the SSE release stream) regardless of which transport submitted
	// the step. The worker publishes after acknowledgement, still inside
	// the session's single-writer context, so per-session publish order
	// is exactly commit order.
	s.pool.onRelease = func(sess *Session, res core.StepResult) {
		s.hub.publish(sess.id, toStepResponse("", res))
	}
	// Any registry exit — delete, eviction, TTL sweep, shutdown —
	// terminates the session's release subscribers.
	s.mgr.onClosed = s.hub.closeSession
	s.registerExternalMetrics()
	if s.durable {
		s.pool.onStep = s.persistStep
		s.pool.onSnap = s.snapshotSession
		// Optional store capabilities: the FileStore times its WAL
		// append fsyncs into the wal_fsync histogram and logs its
		// load-time anomalies structurally.
		if so, ok := cfg.Store.(interface{ SetSyncObserver(func(time.Duration)) }); ok {
			so.SetSyncObserver(metrics.walFsync.Observe)
		}
		if sl, ok := cfg.Store.(interface{ SetLogger(*slog.Logger) }); ok {
			sl.SetLogger(cfg.Logger)
		}
		if entries, err := cfg.Store.LoadCache(); err == nil {
			s.registry.setWarm(entries)
		} else {
			s.metrics.storeWarmLoadFailed.Add(1)
			s.logger.Warn("server: warm cert-cache load failed; starting cold", "err", err)
		}
		if err := s.rehydrate(); err != nil {
			s.pool.stop()
			return nil, err
		}
		// Tombstone sessions removed by delete/evict/TTL. Installed only
		// after rehydration: a restart with more persisted sessions than
		// MaxSessions evicts the overflow from memory but must not
		// destroy its journals — the data outlives the capacity squeeze.
		// CloseAll (shutdown) also bypasses the hook. The liveness check
		// under createMu closes the remove/re-create race: if the id went
		// live again, its journal belongs to the new session (the
		// re-create already reclaimed the old one) and must survive.
		// Callers therefore must never hold createMu across a Manager
		// eviction or Remove.
		s.mgr.onRemove = func(id string) {
			s.createMu.Lock()
			defer s.createMu.Unlock()
			if _, ok := s.mgr.Get(id); ok {
				return
			}
			if err := cfg.Store.DeleteSession(id); err != nil {
				s.metrics.storeTombstoneErrors.Add(1)
			}
		}
		// Persist the certified-release cache periodically so a crash
		// loses at most one interval of warmth (Shutdown writes the final
		// copy).
		s.janitorWG.Add(1)
		go s.cacheSaver()
	}
	if cfg.SessionTTL > 0 {
		s.janitorWG.Add(1)
		go s.janitor()
	}
	return s, nil
}

// registerExternalMetrics bridges state owned outside Metrics — the
// plan registry, the certified-release cache and the durability store —
// into the /metricsz registry as scrape-time functions.
func (s *Server) registerExternalMetrics() {
	reg := s.metrics.Registry()
	reg.GaugeFunc("priste_plans_live", "Retained compiled plans.",
		func() float64 { return float64(s.registry.Stats().Live) })
	reg.CounterFunc("priste_plans_compiled_total", "Plan compilations (plan-level cache misses).",
		func() float64 { return float64(s.registry.Stats().Compiled) })
	if c := s.registry.Cache(); c != nil {
		reg.CounterFunc("priste_cert_cache_hits_total", "Certified-release cache hits.",
			func() float64 { return float64(c.Stats().Hits) })
		reg.CounterFunc("priste_cert_cache_misses_total", "Certified-release cache misses.",
			func() float64 { return float64(c.Stats().Misses) })
		reg.GaugeFunc("priste_cert_cache_entries", "Certified-release cache entries.",
			func() float64 { return float64(c.Stats().Entries) })
	}
	if s.durable {
		reg.CounterFunc("priste_store_appends_total", "WAL step records journaled.",
			func() float64 { return float64(s.cfg.Store.Stats().Appends) })
		reg.CounterFunc("priste_store_fsyncs_total", "Explicit data syncs (0 without -fsync).",
			func() float64 { return float64(s.cfg.Store.Stats().Fsyncs) })
		reg.CounterFunc("priste_store_snapshots_total", "Snapshot compactions.",
			func() float64 { return float64(s.cfg.Store.Stats().Snapshots) })
	}
	// Kernel worker pool (process-global, see internal/par).
	reg.GaugeFunc("priste_pool_parallelism", "Effective kernel-pool width (configured or GOMAXPROCS).",
		func() float64 { return float64(par.Default().Stats().Parallelism) })
	reg.GaugeFunc("priste_pool_busy_workers", "Pool helpers currently executing kernel tiles.",
		func() float64 { return float64(par.Default().Stats().Busy) })
	reg.CounterFunc("priste_pool_parallel_dispatch_total", "Kernels dispatched across the pool.",
		func() float64 { return float64(par.Default().Stats().ParallelDispatch) })
	reg.CounterFunc("priste_pool_serial_dispatch_total", "Kernels kept on their serial path (below cutoff or budget spent).",
		func() float64 { return float64(par.Default().Stats().SerialDispatch) })
	reg.CounterFunc("priste_pool_steals_total", "Kernel tiles executed by pool helpers rather than the submitter.",
		func() float64 { return float64(par.Default().Stats().Steals) })
}

// cacheSaveInterval paces the periodic warm-cache persistence.
const cacheSaveInterval = time.Minute

// cacheSaver periodically persists the certified-release cache.
func (s *Server) cacheSaver() {
	defer s.janitorWG.Done()
	tick := time.NewTicker(cacheSaveInterval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			s.saveCache()
		case <-s.janitorQuit:
			return
		}
	}
}

// saveCache persists the certified-release cache when it has content
// and has changed since the last save: an idle deployment must not
// rewrite and fsync a multi-MB file every tick for zero new
// information. Misses approximate insertions (every insert follows a
// miss) and evictions/entries catch churn.
func (s *Server) saveCache() {
	s.saveCacheMu.Lock()
	defer s.saveCacheMu.Unlock()
	var sig [4]int64
	if c := s.registry.Cache(); c != nil {
		cs := c.Stats()
		sig = [4]int64{cs.Misses, cs.Evictions, cs.Entries, s.registry.WarmLoaded()}
	}
	if sig == s.lastCacheSig {
		return
	}
	if entries := s.registry.exportCache(); len(entries) > 0 {
		if s.cfg.Store.SaveCache(entries) == nil {
			s.lastCacheSig = sig
		}
	}
}

// rehydrate rebuilds every surviving journaled session: the plan is
// recompiled (or shared) from the persisted metadata and the committed
// release-tag history is replayed through it, verifying the rolling
// history fingerprint; the session RNG resumes from the persisted PCG
// state. A session that fails replay is counted and skipped with its
// journal preserved — it must not wedge startup, and the next restart
// (e.g. under the original world model) may still recover it.
func (s *Server) rehydrate() error {
	states, err := s.cfg.Store.LoadSessions()
	if err != nil {
		return fmt.Errorf("server: load sessions: %w", err)
	}
	for _, st := range states {
		start := time.Now()
		sess, err := s.restoreSession(st)
		if err != nil {
			// Keep the journal: a replay failure may be an operator
			// mistake (e.g. restarting under a different world model)
			// that the next restart can still recover from. The id stays
			// reclaimable through the orphan path in register.
			s.metrics.storeReplayFailures.Add(1)
			s.logger.Warn("server: session replay failed; journal preserved",
				"session", st.Meta.ID, "steps", len(st.Tags), "err", err)
			continue
		}
		if err := s.mgr.Put(sess); err != nil {
			// Duplicate persisted id: keep the first.
			s.metrics.storeReplayFailures.Add(1)
			s.logger.Warn("server: duplicate persisted session id; keeping the first",
				"session", st.Meta.ID, "err", err)
			continue
		}
		s.mgr.enforceCap()
		s.metrics.storeReplayed.Add(1)
		s.metrics.storeReplayNanos.Add(int64(time.Since(start)))
	}
	return nil
}

func (s *Server) restoreSession(st store.SessionState) (*Session, error) {
	if st.Meta.World != s.worldTag {
		return nil, fmt.Errorf("server: session %q was journaled for world %q, this server runs %q",
			st.Meta.ID, st.Meta.World, s.worldTag)
	}
	events, err := eventspec.ParseAll(st.Meta.Events, s.g.States(), 0)
	if err != nil {
		return nil, err
	}
	plan, err := s.buildPlan(st.Meta.Epsilon, st.Meta.Alpha, st.Meta.Mechanism, st.Meta.Delta, events)
	if err != nil {
		return nil, err
	}
	snap := core.Snapshot{
		T:           len(st.Tags),
		Tags:        make([]core.ReleaseTag, len(st.Tags)),
		Fingerprint: st.Fingerprint,
		RNG:         st.RNG,
	}
	for i, tag := range st.Tags {
		snap.Tags[i] = core.ReleaseTag{AlphaBits: tag.AlphaBits, Obs: tag.Obs}
	}
	// With no persisted RNG state (a session that never stepped), the
	// seed-fresh RNG below is exactly the original starting state.
	fw, err := plan.Restore(snap, core.NewSessionRNG(st.Meta.Seed))
	if err != nil {
		return nil, err
	}
	now := time.Now()
	sess := &Session{
		id:        st.Meta.ID,
		created:   time.Unix(0, st.Meta.CreatedUnixNano),
		fw:        fw,
		epsilon:   st.Meta.Epsilon,
		alpha:     st.Meta.Alpha,
		mechanism: st.Meta.Mechanism,
		delta:     st.Meta.Delta,
		events:    st.Meta.Events,
		seed:      st.Meta.Seed,
		storeGen:  st.Gen,
	}
	sess.steps.Store(int64(fw.T()))
	sess.touch(now)
	return sess, nil
}

// persistStep journals one committed release write-ahead of its
// acknowledgement: the WAL record carries the release tag, the rolling
// fingerprint after it, and the post-step RNG state. Every
// SnapshotEvery-th step the WAL is compacted into a snapshot. Runs on
// the worker holding the session's scheduled token. An append failure
// degrades durability, not serving: the step stands, the failure is
// counted, and recovery keeps the longest consistent journal prefix.
func (s *Server) persistStep(sess *Session, res core.StepResult) {
	rng, err := sess.fw.RNGState()
	if err != nil {
		s.metrics.storeAppendErrors.Add(1)
		return
	}
	rec := store.StepRecord{
		T:           res.T,
		Tag:         store.Tag{AlphaBits: math.Float64bits(res.Alpha), Obs: res.Obs},
		Fingerprint: sess.fw.Fingerprint(),
		RNG:         rng,
	}
	if err := s.cfg.Store.AppendStep(sess.id, sess.storeGen, rec); err != nil {
		s.metrics.storeAppendErrors.Add(1)
		return
	}
	// Compaction is deferred until after this step's acknowledgement
	// (pool.onSnap): the WAL already covers everything, so the snapshot
	// must not sit on the ack path.
	if every := s.cfg.SnapshotEvery; every > 0 && sess.steps.Load()%int64(every) == 0 {
		sess.needSnap = true
	}
}

// snapshotSession compacts a session's WAL into a snapshot. The caller
// must own the session's single-writer context (its scheduled token, or
// a drained server).
func (s *Server) snapshotSession(sess *Session) {
	snap, err := sess.fw.Snapshot()
	if err != nil {
		s.metrics.storeSnapshotErrors.Add(1)
		return
	}
	state := store.SessionState{
		Meta:        sess.meta(s.worldTag),
		Tags:        make([]store.Tag, len(snap.Tags)),
		Fingerprint: snap.Fingerprint,
		RNG:         snap.RNG,
	}
	for i, tag := range snap.Tags {
		state.Tags[i] = store.Tag{AlphaBits: tag.AlphaBits, Obs: tag.Obs}
	}
	if err := s.cfg.Store.WriteSnapshot(state, sess.storeGen); err != nil {
		s.metrics.storeSnapshotErrors.Add(1)
	}
}

// janitor periodically evicts idle sessions.
func (s *Server) janitor() {
	defer s.janitorWG.Done()
	interval := s.cfg.SessionTTL / 4
	if interval < time.Second {
		interval = time.Second
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case now := <-tick.C:
			s.mgr.sweep(now)
		case <-s.janitorQuit:
			return
		}
	}
}

// Config returns the effective (defaulted) configuration.
func (s *Server) Config() Config { return s.cfg }

// Metrics returns the live service counters.
func (s *Server) Metrics() *Metrics { return s.metrics }

// Sessions returns the session registry.
func (s *Server) Sessions() *Manager { return s.mgr }

// Plans returns the plan registry.
func (s *Server) Plans() *PlanRegistry { return s.registry }

// Stats implements api.Service: the full /statsz document — service
// counters plus the plan-registry, certified-release cache, durability
// and per-transport sections.
func (s *Server) Stats() api.Stats {
	st := s.metrics.Snapshot()
	st.Runtime.UptimeSeconds = time.Since(s.start).Seconds()
	st.Plans = s.registry.Stats()
	if c := s.registry.Cache(); c != nil {
		cs := c.Stats()
		st.CertCache = api.CertCacheStats{
			Enabled:   true,
			Hits:      cs.Hits,
			Misses:    cs.Misses,
			Evictions: cs.Evictions,
			Entries:   cs.Entries,
		}
		if total := cs.Hits + cs.Misses; total > 0 {
			st.CertCache.HitRate = float64(cs.Hits) / float64(total)
		}
	}
	st.Streams.PerShardWindow = make([]int64, numShards)
	for i := range s.streamWindows {
		n := s.streamWindows[i].Load()
		st.Streams.PerShardWindow[i] = n
		st.Streams.WindowOccupancy += n
	}
	ps := par.Default().Stats()
	st.Pool = api.PoolStats{
		Parallelism:      ps.Parallelism,
		Workers:          ps.Workers,
		Busy:             ps.Busy,
		External:         ps.External,
		ParallelDispatch: ps.ParallelDispatch,
		SerialDispatch:   ps.SerialDispatch,
		Steals:           ps.Steals,
	}
	if ps.Workers > 0 {
		st.Pool.Occupancy = float64(ps.Busy) / float64(ps.Workers)
	}
	st.Store = api.StoreStats{
		Stats:           s.cfg.Store.Stats(),
		AppendErrors:    s.metrics.storeAppendErrors.Load(),
		SnapshotErrors:  s.metrics.storeSnapshotErrors.Load(),
		TombstoneErrors: s.metrics.storeTombstoneErrors.Load(),
		Replayed:        s.metrics.storeReplayed.Load(),
		ReplayFailures:  s.metrics.storeReplayFailures.Load(),
		ReplayMicros:    float64(s.metrics.storeReplayNanos.Load()) / 1e3,
		WarmLoaded:      s.registry.WarmLoaded(),
		WarmLoadFailed:  s.metrics.storeWarmLoadFailed.Load(),
	}
	return st
}

// Close stops the janitor, closes every session (failing pending steps
// with ErrSessionClosed), stops the worker pool and closes the store.
// Safe to call more than once. Pending steps die unflushed — for a clean
// drain-and-flush stop, use Shutdown.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		s.stopBackground()
		s.mgr.CloseAll()
		s.pool.stop()
		_ = s.cfg.Store.Close()
	})
}

// stopBackground stops the janitor and cache-saver goroutines; it is
// idempotent and called by both Close and (earlier) Shutdown — a TTL
// sweep firing mid-shutdown would tombstone journals that graceful
// shutdown promises survive.
func (s *Server) stopBackground() {
	s.stopBgOnce.Do(func() {
		close(s.janitorQuit)
		s.janitorWG.Wait()
	})
}

// Shutdown gracefully stops the server: it stops accepting new sessions
// and steps (ErrDraining, HTTP 503), waits for every session's pending
// queue to drain (bounded by ctx), compacts each drained session into a
// final snapshot, persists the certified-release cache, and only then
// closes the sessions, pool and store. Steps accepted before Shutdown
// are served and journaled, not failed. Returns ctx.Err() when the
// deadline cut the drain short; the WAL still covers whatever the
// snapshots missed.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	// No TTL sweep may run once the drain starts: an eviction here would
	// tombstone a journal this shutdown exists to preserve.
	s.stopBackground()
	err := s.awaitDrain(ctx)
	// Stop the workers before flushing: a step that slipped past the
	// draining check concurrently with the drain must not mutate a
	// framework while its final snapshot is being written. Jobs it
	// enqueued are failed by CloseAll below.
	s.pool.stop()
	if s.durable {
		s.mgr.forEach(s.snapshotSession)
		s.saveCache()
	}
	s.Close()
	return err
}

// awaitDrain blocks until no session has pending or in-flight steps, or
// ctx expires.
func (s *Server) awaitDrain(ctx context.Context) error {
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for {
		busy := false
		s.mgr.forEach(func(sess *Session) {
			if !sess.idle() {
				busy = true
			}
		})
		if !busy {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}

// CreateSession implements api.Service: it builds and registers a
// session from a creation request, applying the server's privacy
// defaults for absent fields. The compiled engine is shared: sessions
// whose canonical parameters (ε, α, mechanism, δ, protected events)
// match an existing plan reuse it — only the RNG, quantifier state and
// (for δ) mechanism state are per-session. At capacity the least
// recently used session is evicted to make room.
func (s *Server) CreateSession(req api.CreateSessionRequest) (api.SessionInfo, error) {
	sess, err := s.createSession(req)
	if err != nil {
		return api.SessionInfo{}, err
	}
	return sessionInfo(sess), nil
}

func (s *Server) createSession(req api.CreateSessionRequest) (*Session, error) {
	if s.draining.Load() {
		return nil, ErrDraining
	}
	if err := req.Validate(); err != nil {
		return nil, err
	}
	eps := req.Epsilon
	if eps == 0 {
		eps = s.cfg.Epsilon
	}
	alpha := req.Alpha
	if alpha == 0 {
		alpha = s.cfg.Alpha
	}
	mechName := req.Mechanism
	if mechName == "" {
		mechName = s.cfg.Mechanism
	}
	specs := req.Events
	if len(specs) == 0 {
		specs = s.cfg.Events
	}
	events, err := eventspec.ParseAll(specs, s.g.States(), 0)
	if err != nil {
		return nil, err
	}
	delta := 0.0
	if mechName == MechanismDelta {
		delta = s.cfg.Delta
		if req.Delta != nil {
			delta = *req.Delta
		}
	}
	plan, err := s.buildPlan(eps, alpha, mechName, delta, events)
	if err != nil {
		return nil, err
	}

	var seed int64
	if req.Seed != nil {
		seed = *req.Seed
	} else {
		seed = randomSeed()
	}
	fw, err := plan.NewSession(core.NewSessionRNG(seed))
	if err != nil {
		return nil, err
	}

	id := req.ID
	if id == "" {
		id = newSessionID()
	}
	now := time.Now()
	sess := &Session{
		id:        id,
		created:   now,
		fw:        fw,
		epsilon:   eps,
		alpha:     alpha,
		mechanism: mechName,
		delta:     delta,
		events:    specs,
		seed:      seed,
	}
	sess.touch(now)
	if err := s.register(sess, nil); err != nil {
		return nil, err
	}
	// Capacity eviction runs outside createMu: its Remove path fires the
	// onRemove tombstone hook, which itself takes createMu.
	s.mgr.enforceCap()
	return sess, nil
}

// register journals (durable stores) and registers a new session; a
// non-nil imported state journals the migrated history atomically
// (store.ImportSession) instead of opening an empty WAL. Journal before
// registering: once the session is steppable, a concurrent step
// (clients may know the id ahead of the create response) must find its
// WAL open, or the acknowledged step would be lost and leave a gap that
// truncates replay. createMu serialises this tail, which makes the
// not-live-but-journaled check race-free: an id whose journal survives
// without a live session (evicted during an over-capacity rehydrate, or
// refused replay) is reported ErrSessionExists — its certified history
// must never be silently truncated by a create; the owner reclaims it
// with an explicit DELETE first.
func (s *Server) register(sess *Session, imported *store.SessionState) error {
	if !s.durable {
		return s.mgr.Put(sess)
	}
	s.createMu.Lock()
	defer s.createMu.Unlock()
	if _, ok := s.mgr.Get(sess.id); ok {
		return ErrSessionExists
	}
	var gen uint64
	var err error
	if imported != nil {
		gen, err = s.cfg.Store.ImportSession(*imported)
	} else {
		gen, err = s.cfg.Store.CreateSession(sess.meta(s.worldTag))
	}
	if err != nil {
		if errors.Is(err, store.ErrAlreadyJournaled) {
			return fmt.Errorf("%w (its journal survives; DELETE it to start over)", ErrSessionExists)
		}
		return fmt.Errorf("server: journal session: %w", err)
	}
	sess.storeGen = gen
	if err := s.mgr.Put(sess); err != nil {
		_ = s.cfg.Store.DeleteSession(sess.id)
		return err
	}
	return nil
}

// buildPlan returns the shared compiled plan for the canonical engine
// parameters, compiling it on first use. delta is only meaningful for
// MechanismDelta and must be 0 otherwise.
func (s *Server) buildPlan(eps, alpha float64, mechName string, delta float64, events []event.Event) (*core.Plan, error) {
	var mf core.MechanismFactory
	switch mechName {
	case MechanismLaplace:
		mf = func() (lppm.Perturber, error) { return lppm.NewPlanarLaplace(s.g), nil }
	case MechanismDelta:
		mf = func() (lppm.Perturber, error) { return lppm.NewDeltaLocationSet(s.g, s.chain, s.pi, delta) }
	default:
		return nil, fmt.Errorf("server: unknown mechanism %q (want %q or %q)", mechName, MechanismLaplace, MechanismDelta)
	}
	key := planKey{
		epsilon:   eps,
		alpha:     alpha,
		mechanism: mechName,
		delta:     delta,
		events:    canonicalEvents(events),
	}
	return s.registry.lookup(key, func() (*core.Plan, error) {
		coreCfg := core.DefaultConfig(eps, alpha)
		coreCfg.QPTimeout = s.cfg.QPTimeout
		// Validated in New; the zero mode (auto) is the error fallback.
		coreCfg.Kernel, _ = s.cfg.kernelMode()
		coreCfg.Shadow = s.cfg.Shadow
		return core.NewPlan(mf, s.tp, events, coreCfg)
	})
}

// toStepResponse renders a completed step outcome as the wire type.
func toStepResponse(id string, res core.StepResult) api.StepResponse {
	return api.StepResponse{
		SessionID:              id,
		T:                      res.T,
		Obs:                    res.Obs,
		Alpha:                  res.Alpha,
		Attempts:               res.Attempts,
		ConservativeRejections: res.ConservativeRejections,
		Uniform:                res.Uniform,
		CheckMicros:            float64(res.CheckTime) / 1e3,
	}
}

// Step implements api.Service: it enqueues one step on a session and
// waits for its certified release (or ctx expiry — the step itself
// still completes and is journaled). FIFO order among concurrent Step
// calls on the same session is the order their enqueues linearise in;
// the transports and the batch endpoint preserve their own arrival
// order.
func (s *Server) Step(ctx context.Context, id string, loc int) (api.StepResponse, error) {
	done, err := s.stepAsync(ctx, id, loc)
	if err != nil {
		return api.StepResponse{}, err
	}
	select {
	case out := <-done:
		if out.err != nil {
			return api.StepResponse{}, out.err
		}
		return toStepResponse("", out.res), nil
	case <-ctx.Done():
		return api.StepResponse{}, ctx.Err()
	}
}

// StepAsync implements api.AsyncStepper for pipelining transports: the
// step is enqueued before StepAsync returns (fixing its FIFO position)
// and the buffered channel delivers the wire-typed outcome straight
// from the worker — no forwarding goroutine on the hot path. ctx
// carries the observability tags (transport, trace ID) and is consulted
// only at enqueue time.
func (s *Server) StepAsync(ctx context.Context, id string, loc int) (<-chan api.StepOutcome, error) {
	j := stepJob{loc: loc, apiDone: make(chan api.StepOutcome, 1)}
	if err := s.enqueueStep(ctx, id, j); err != nil {
		return nil, err
	}
	return j.apiDone, nil
}

// stepWindowed serves one streamed micro-batch on a session: every loc
// is enqueued in order, with pump-style backpressure — a full queue
// settles this batch's own head-of-line release (freeing its queue
// slot) instead of surfacing a 429 — and the certified releases are
// collected in commit order. On a terminal error the releases committed
// before it are returned alongside it and the remaining locs are never
// submitted, so the caller can report exactly how far the stream got.
func (s *Server) stepWindowed(ctx context.Context, id string, locs []int) ([]api.StepResponse, error) {
	results := make([]api.StepResponse, 0, len(locs))
	var pending []<-chan api.StepOutcome
	settle := func(ch <-chan api.StepOutcome) error {
		select {
		case out := <-ch:
			if out.Err != nil {
				return out.Err
			}
			results = append(results, out.Resp)
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	for _, loc := range locs {
		for {
			ch, err := s.StepAsync(ctx, id, loc)
			if err == nil {
				pending = append(pending, ch)
				break
			}
			if api.CodeOf(err) != api.CodeResourceExhausted {
				return results, err
			}
			if len(pending) > 0 {
				if err := settle(pending[0]); err != nil {
					return results, err
				}
				pending = pending[1:]
				continue
			}
			// Queue full with nothing of ours in flight: another writer
			// owns the slots. Yield briefly rather than spin.
			select {
			case <-ctx.Done():
				return results, ctx.Err()
			case <-time.After(200 * time.Microsecond):
			}
		}
	}
	for len(pending) > 0 {
		if err := settle(pending[0]); err != nil {
			return results, err
		}
		pending = pending[1:]
	}
	return results, nil
}

// StepBatch implements api.Service: every item is enqueued in slice
// order (so items for the same session preserve their relative order
// and different sessions step in parallel), then the certified releases
// are collected. Per-item failures are reported inline; the batch
// itself never fails.
func (s *Server) StepBatch(ctx context.Context, steps []api.BatchStepItem) []api.StepResponse {
	dones := make([]chan stepOutcome, len(steps))
	results := make([]api.StepResponse, len(steps))
	for i, item := range steps {
		done, err := s.stepAsync(ctx, item.SessionID, item.Loc)
		if err != nil {
			results[i] = api.FailedStep(item.SessionID, err)
			continue
		}
		dones[i] = done
	}
	for i, done := range dones {
		if done == nil {
			continue
		}
		select {
		case out := <-done:
			if out.err != nil {
				results[i] = api.FailedStep(steps[i].SessionID, out.err)
			} else {
				results[i] = toStepResponse(steps[i].SessionID, out.res)
			}
		case <-ctx.Done():
			results[i] = api.FailedStep(steps[i].SessionID, ctx.Err())
		}
	}
	return results
}

// stepAsync enqueues one step and returns the completion channel.
func (s *Server) stepAsync(ctx context.Context, id string, loc int) (chan stepOutcome, error) {
	j := stepJob{loc: loc, done: make(chan stepOutcome, 1)}
	if err := s.enqueueStep(ctx, id, j); err != nil {
		return nil, err
	}
	return j.done, nil
}

// enqueueStep places a job on the session's FIFO queue and wakes the
// pool, rejecting drains, unknown ids and full queues. The job's
// observability context — ingress transport, trace ID, enqueue instant
// — is stamped here from ctx (see obs.WithTransport/WithTrace).
func (s *Server) enqueueStep(ctx context.Context, id string, j stepJob) error {
	if s.draining.Load() {
		return ErrDraining
	}
	sess, ok := s.mgr.Get(id)
	if !ok {
		return ErrNotFound
	}
	j.transport = transportIndex(obs.TransportFrom(ctx))
	j.trace = obs.TraceFrom(ctx)
	j.enqueued = time.Now()
	wake, err := sess.enqueue(j, s.cfg.QueueDepth)
	if err != nil {
		if err == ErrQueueFull {
			s.metrics.queueRejections.Add(1)
		}
		return err
	}
	sess.touch(time.Now())
	if wake {
		s.pool.schedule(sess)
	}
	return nil
}

// DeleteSession implements api.Service: it removes and closes a
// session. A session that is journaled but no longer live (evicted
// during an over-capacity rehydrate) is tombstoned in the store so its
// id and disk space are reclaimed. ErrNotFound when neither exists.
func (s *Server) DeleteSession(id string) error {
	for {
		// Remove fires the onRemove hook, which takes createMu itself —
		// so it must be called lock-free here.
		if s.mgr.Remove(id) {
			return nil
		}
		if !s.durable {
			return ErrNotFound
		}
		// createMu rules out a create of the same id sitting between its
		// journal and its registration — without it the store-only
		// tombstone below could unlink the WAL of a session about to go
		// live. If the id went live meanwhile, loop back to the hook
		// path.
		s.createMu.Lock()
		if _, ok := s.mgr.Get(id); ok {
			s.createMu.Unlock()
			continue
		}
		err := s.cfg.Store.DeleteSession(id)
		s.createMu.Unlock()
		if err != nil {
			return ErrNotFound
		}
		return nil
	}
}

// GetSession implements api.Service: a session's public state.
func (s *Server) GetSession(id string) (api.SessionInfo, error) {
	sess, ok := s.mgr.Get(id)
	if !ok {
		return api.SessionInfo{}, ErrNotFound
	}
	return sessionInfo(sess), nil
}

// ListSessions implements api.Service: one page of live sessions in id
// order, keyset-paginated by the previous page's NextCursor. The page
// is a live iteration over a churning registry — exact for any fixed
// moment, approximate across pages, like any keyset cursor.
func (s *Server) ListSessions(req api.ListSessionsRequest) (api.SessionPage, error) {
	req, err := req.Normalize()
	if err != nil {
		return api.SessionPage{}, err
	}
	var matched []*Session
	s.mgr.forEach(func(sess *Session) {
		if sess.id > req.Cursor {
			matched = append(matched, sess)
		}
	})
	sort.Slice(matched, func(i, j int) bool { return matched[i].id < matched[j].id })
	page := api.SessionPage{}
	more := len(matched) > req.Limit
	if more {
		matched = matched[:req.Limit]
	}
	page.Sessions = make([]api.SessionInfo, len(matched))
	for i, sess := range matched {
		page.Sessions[i] = sessionInfo(sess)
	}
	if more {
		page.NextCursor = matched[len(matched)-1].id
	}
	return page, nil
}

// Health implements api.Service. Status is "ok", or "draining" once
// Shutdown has started (the HTTP codec maps that to 503 so load
// balancers drop the instance from rotation before the listener dies).
func (s *Server) Health() api.Health {
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	return api.Health{
		Status:        status,
		Sessions:      s.metrics.sessionsLive.Load(),
		UptimeSeconds: time.Since(s.start).Seconds(),
		Version:       buildVersion(),
		GoVersion:     runtime.Version(),
	}
}

// buildVersion reports the main module's version as stamped by the Go
// toolchain ("(devel)" for plain source builds).
func buildVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		return bi.Main.Version
	}
	return "unknown"
}

func sessionInfo(s *Session) api.SessionInfo {
	return api.SessionInfo{
		ID:        s.id,
		T:         int(s.steps.Load()),
		Epsilon:   s.epsilon,
		Alpha:     s.alpha,
		Mechanism: s.mechanism,
		Events:    s.events,
		Created:   s.created,
		LastUsed:  time.Unix(0, s.lastUsed.Load()),
		Queued:    s.queued(),
	}
}

// ObserveRPC records one served RPC request in the per-transport
// /statsz section; cmd/pristed (and the tests) wire it into the RPC
// server's observer hook.
func (s *Server) ObserveRPC(d time.Duration) {
	s.metrics.observeTransport(transportRPC, d)
}

// ObserveRPCStep records one successfully served RPC step request —
// its end-to-end latency plus the frame decode and encode stages; the
// RPC server's ObserveStep hook feeds it.
func (s *Server) ObserveRPCStep(total, decode, encode time.Duration) {
	s.metrics.observeServedStep(transportRPC, total, decode, encode)
}

// ObserveStreamOpen records an RPC step stream opening on a session;
// the RPC server's OnStreamOpen hook feeds it.
func (s *Server) ObserveStreamOpen(id string) {
	s.metrics.streamsOpened.Add(1)
	s.metrics.streamsActive.Add(1)
}

// ObserveStreamClose records an RPC step stream ending (gracefully or
// not); the RPC server's OnStreamClose hook feeds it.
func (s *Server) ObserveStreamClose(id string) {
	s.metrics.streamsActive.Add(-1)
}

// ObserveStreamWindow adjusts the in-flight streamed-step count for a
// session's shard: +1 when the stream pump submits a step, -1 when its
// release (or failure) is settled into an ack batch. The RPC server's
// ObserveStreamWindow hook feeds it; /statsz reports the occupancy.
func (s *Server) ObserveStreamWindow(id string, delta int) {
	s.streamWindows[shardIndex(id)].Add(int64(delta))
}

// ObserveStreamAcks records one flushed ack batch carrying n streamed
// step releases; the RPC server's ObserveStreamAcks hook feeds it.
func (s *Server) ObserveStreamAcks(n int) {
	s.metrics.streamSteps.Add(int64(n))
	s.metrics.streamAcks.Add(1)
}

// MetricsHandler returns the Prometheus-text /metricsz endpoint.
func (s *Server) MetricsHandler() http.Handler {
	return s.metrics.Handler()
}

// ExportSession implements api.Service: it captures a session's
// complete migratable state — identity, committed release-tag history,
// rolling fingerprint, RNG state — at a consistent point in its step
// stream. The snapshot request rides the session's single-writer FIFO
// queue, so it linearises with concurrent steps; ctx bounds the wait.
// The session keeps serving afterwards: migration is export, DELETE on
// the source, import on the target.
func (s *Server) ExportSession(ctx context.Context, id string) (api.SessionExport, error) {
	if s.draining.Load() {
		return api.SessionExport{}, ErrDraining
	}
	sess, ok := s.mgr.Get(id)
	if !ok {
		return api.SessionExport{}, ErrNotFound
	}
	j := stepJob{export: true, done: make(chan stepOutcome, 1)}
	wake, err := sess.enqueue(j, s.cfg.QueueDepth)
	if err != nil {
		if err == ErrQueueFull {
			s.metrics.queueRejections.Add(1)
		}
		return api.SessionExport{}, err
	}
	if wake {
		s.pool.schedule(sess)
	}
	var out stepOutcome
	select {
	case out = <-j.done:
	case <-ctx.Done():
		return api.SessionExport{}, ctx.Err()
	}
	if out.err != nil {
		return api.SessionExport{}, out.err
	}
	exp := api.SessionExport{
		Version:         api.V1,
		World:           s.worldTag,
		ID:              sess.id,
		Seed:            sess.seed,
		Epsilon:         sess.epsilon,
		Alpha:           sess.alpha,
		Mechanism:       sess.mechanism,
		Delta:           sess.delta,
		Events:          sess.events,
		CreatedUnixNano: sess.created.UnixNano(),
		T:               out.snap.T,
		Tags:            make([]api.ReleaseTag, len(out.snap.Tags)),
		Fingerprint:     out.snap.Fingerprint,
		RNG:             out.snap.RNG,
	}
	for i, tag := range out.snap.Tags {
		exp.Tags[i] = api.ReleaseTag{AlphaBits: tag.AlphaBits, Obs: tag.Obs}
	}
	s.metrics.sessionsExported.Add(1)
	return exp, nil
}

// ImportSession implements api.Service: it registers a migrated session
// from another instance's export. The world tag must match this
// server's (ErrWorldMismatch otherwise), the release-tag history is
// replayed through the shared compiled plan with the rolling
// fingerprint verified end-to-end, and on durable deployments the full
// history is journaled atomically (snapshot + fresh WAL, a new journal
// generation) before the session goes live — a crash straight after the
// import recovers the complete migrated state.
func (s *Server) ImportSession(exp api.SessionExport) (api.SessionInfo, error) {
	if s.draining.Load() {
		return api.SessionInfo{}, ErrDraining
	}
	if err := exp.Validate(); err != nil {
		return api.SessionInfo{}, err
	}
	if exp.World != s.worldTag {
		return api.SessionInfo{}, fmt.Errorf("%w: export is for world %q, this server runs %q",
			ErrWorldMismatch, exp.World, s.worldTag)
	}
	events, err := eventspec.ParseAll(exp.Events, s.g.States(), 0)
	if err != nil {
		return api.SessionInfo{}, err
	}
	plan, err := s.buildPlan(exp.Epsilon, exp.Alpha, exp.Mechanism, exp.Delta, events)
	if err != nil {
		return api.SessionInfo{}, err
	}
	snap := core.Snapshot{
		T:           exp.T,
		Tags:        make([]core.ReleaseTag, len(exp.Tags)),
		Fingerprint: exp.Fingerprint,
		RNG:         exp.RNG,
	}
	for i, tag := range exp.Tags {
		snap.Tags[i] = core.ReleaseTag{AlphaBits: tag.AlphaBits, Obs: tag.Obs}
	}
	fw, err := plan.Restore(snap, core.NewSessionRNG(exp.Seed))
	if err != nil {
		if errors.Is(err, core.ErrFingerprintMismatch) {
			return api.SessionInfo{}, fmt.Errorf("%w: %v", ErrWorldMismatch, err)
		}
		return api.SessionInfo{}, err
	}
	now := time.Now()
	sess := &Session{
		id:        exp.ID,
		created:   time.Unix(0, exp.CreatedUnixNano),
		fw:        fw,
		epsilon:   exp.Epsilon,
		alpha:     exp.Alpha,
		mechanism: exp.Mechanism,
		delta:     exp.Delta,
		events:    exp.Events,
		seed:      exp.Seed,
	}
	sess.steps.Store(int64(fw.T()))
	sess.touch(now)
	var imported *store.SessionState
	if s.durable {
		state := store.SessionState{
			Meta:        sess.meta(s.worldTag),
			Tags:        make([]store.Tag, len(exp.Tags)),
			Fingerprint: exp.Fingerprint,
			RNG:         exp.RNG,
		}
		for i, tag := range exp.Tags {
			state.Tags[i] = store.Tag{AlphaBits: tag.AlphaBits, Obs: tag.Obs}
		}
		imported = &state
	}
	if err := s.register(sess, imported); err != nil {
		return api.SessionInfo{}, err
	}
	s.mgr.enforceCap()
	s.metrics.sessionsImported.Add(1)
	return sessionInfo(sess), nil
}
