package server

import (
	"math/rand/v2"
	"sync"
	"time"
)

// numShards stripes the session map's mutexes so session lookup and
// creation from many connections do not serialise on one lock.
const numShards = 32

// Eviction tuning. Up to evictExactThreshold live sessions the evictor
// scans the whole registry for the true LRU (cheap, and what small
// deployments and tests expect); beyond it, eviction samples
// evictSampleSize random entries and evicts the oldest of the sample —
// the Redis-style approximation that keeps Put O(sample) instead of
// O(live sessions) under sustained over-capacity churn.
const (
	evictExactThreshold = 128
	evictSampleSize     = 16
)

type shard struct {
	mu       sync.RWMutex
	sessions map[string]*Session
}

// Manager is the sharded registry of live sessions with idle-TTL and
// max-sessions LRU eviction. Eviction closes the session, failing its
// pending steps with ErrSessionClosed.
type Manager struct {
	shards  [numShards]shard
	max     int
	ttl     time.Duration
	metrics *Metrics

	// onRemove, when set, runs after a session is removed by an explicit
	// delete, TTL sweep or capacity eviction — the durability layer's
	// tombstone hook. CloseAll (shutdown) deliberately does not call it:
	// sessions closed by shutdown must survive the restart.
	onRemove func(id string)
	// onClosed, when set, runs after a session leaves the registry for
	// any reason, shutdown included — the streaming layer's hook for
	// terminating the session's release subscribers. Unlike onRemove it
	// carries no durability semantics.
	onClosed func(id string)
}

func newManager(max int, ttl time.Duration, metrics *Metrics) *Manager {
	m := &Manager{max: max, ttl: ttl, metrics: metrics}
	for i := range m.shards {
		m.shards[i].sessions = make(map[string]*Session)
	}
	return m
}

// shardIndex maps a session id onto its shard slot. Inline FNV-1a: a
// hash.Hash32 allocation per lookup is measurable on the step path.
func shardIndex(id string) int {
	h := uint32(2166136261)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= 16777619
	}
	return int(h % numShards)
}

func (m *Manager) shardFor(id string) *shard {
	return &m.shards[shardIndex(id)]
}

// Get returns the live session with the given id.
func (m *Manager) Get(id string) (*Session, bool) {
	sh := m.shardFor(id)
	sh.mu.RLock()
	s, ok := sh.sessions[id]
	sh.mu.RUnlock()
	return s, ok
}

// Put registers a new session; it fails with ErrSessionExists when the
// id is already live. Registration alone may leave the registry past
// capacity — callers follow up with enforceCap once they hold no locks
// the eviction path (Remove → onRemove) might need.
func (m *Manager) Put(s *Session) error {
	sh := m.shardFor(s.id)
	sh.mu.Lock()
	if _, ok := sh.sessions[s.id]; ok {
		sh.mu.Unlock()
		return ErrSessionExists
	}
	sh.sessions[s.id] = s
	sh.mu.Unlock()
	m.metrics.sessionsLive.Add(1)
	m.metrics.sessionsCreated.Add(1)
	return nil
}

// enforceCap evicts (approximately) least-recently-used sessions until
// the registry is back at capacity. Registering before evicting means a
// rejected duplicate never evicts an unrelated session, and racing
// creates each pay for their own eviction instead of overshooting the
// cap.
func (m *Manager) enforceCap() {
	for m.metrics.sessionsLive.Load() > int64(m.max) {
		if !m.evictLRU() {
			break
		}
	}
}

// Remove unregisters and closes the session with the given id.
func (m *Manager) Remove(id string) bool {
	sh := m.shardFor(id)
	sh.mu.Lock()
	s, ok := sh.sessions[id]
	if ok {
		delete(sh.sessions, id)
	}
	sh.mu.Unlock()
	if !ok {
		return false
	}
	m.metrics.sessionsLive.Add(-1)
	s.close()
	if m.onRemove != nil {
		m.onRemove(id)
	}
	if m.onClosed != nil {
		m.onClosed(id)
	}
	return true
}

// evictLRU removes and closes one session chosen as (approximately) the
// least recently used: an exact full scan below evictExactThreshold live
// sessions, the oldest of evictSampleSize random entries above it.
// Returns false when no session was live.
func (m *Manager) evictLRU() bool {
	if m.metrics.sessionsLive.Load() <= evictExactThreshold {
		return m.evictVictim(m.oldestExact())
	}
	if v := m.oldestSampled(); v != nil {
		return m.evictVictim(v)
	}
	// The sample raced a burst of removals and saw nothing: fall back to
	// the exact scan, which also settles the "registry truly empty" case.
	return m.evictVictim(m.oldestExact())
}

func (m *Manager) evictVictim(victim *Session) bool {
	if victim == nil {
		return false
	}
	if m.Remove(victim.id) {
		m.metrics.sessionsEvicted.Add(1)
		return true
	}
	// Lost a race with Remove; report progress so Put re-checks capacity.
	return true
}

// oldestExact scans every shard for the oldest lastUsed timestamp.
func (m *Manager) oldestExact() *Session {
	var victim *Session
	var oldest int64
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.RLock()
		for _, s := range sh.sessions {
			if t := s.lastUsed.Load(); victim == nil || t < oldest {
				victim, oldest = s, t
			}
		}
		sh.mu.RUnlock()
	}
	return victim
}

// oldestSampled inspects up to evictSampleSize sessions — Go's
// randomised map iteration over shards starting at a random index — and
// returns the oldest seen. With a sample of 16 the evicted session is in
// the oldest ~18% of the registry with >95% probability, which is enough
// to keep churn from recycling hot sessions, at O(1) cost per eviction.
func (m *Manager) oldestSampled() *Session {
	var victim *Session
	var oldest int64
	start := int(rand.Uint64N(numShards))
	sampled := 0
	for i := 0; i < numShards && sampled < evictSampleSize; i++ {
		sh := &m.shards[(start+i)%numShards]
		sh.mu.RLock()
		for _, s := range sh.sessions {
			if t := s.lastUsed.Load(); victim == nil || t < oldest {
				victim, oldest = s, t
			}
			sampled++
			if sampled >= evictSampleSize {
				break
			}
		}
		sh.mu.RUnlock()
	}
	return victim
}

// sweep evicts every session idle since before the TTL cutoff and
// returns how many it removed. No-op when idle eviction is disabled.
func (m *Manager) sweep(now time.Time) int {
	if m.ttl <= 0 {
		return 0
	}
	cutoff := now.Add(-m.ttl).UnixNano()
	var victims []string
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.RLock()
		for id, s := range sh.sessions {
			if s.lastUsed.Load() < cutoff {
				victims = append(victims, id)
			}
		}
		sh.mu.RUnlock()
	}
	evicted := 0
	for _, id := range victims {
		if m.Remove(id) {
			m.metrics.sessionsEvicted.Add(1)
			evicted++
		}
	}
	return evicted
}

// forEach calls f on every live session. f must not call back into the
// Manager for the same shard (it runs under the shard read lock).
func (m *Manager) forEach(f func(*Session)) {
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.RLock()
		for _, s := range sh.sessions {
			f(s)
		}
		sh.mu.RUnlock()
	}
}

// CloseAll removes and closes every live session (shutdown path). It
// deliberately skips the onRemove tombstone hook: shutdown must leave
// journaled sessions recoverable.
func (m *Manager) CloseAll() {
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		sessions := sh.sessions
		sh.sessions = make(map[string]*Session)
		sh.mu.Unlock()
		for _, s := range sessions {
			m.metrics.sessionsLive.Add(-1)
			s.close()
			if m.onClosed != nil {
				m.onClosed(s.id)
			}
		}
	}
}

// Len returns the number of live sessions.
func (m *Manager) Len() int {
	n := 0
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.RLock()
		n += len(sh.sessions)
		sh.mu.RUnlock()
	}
	return n
}
