package server

import (
	"sync"
	"time"
)

// numShards stripes the session map's mutexes so session lookup and
// creation from many connections do not serialise on one lock.
const numShards = 32

type shard struct {
	mu       sync.RWMutex
	sessions map[string]*Session
}

// Manager is the sharded registry of live sessions with idle-TTL and
// max-sessions LRU eviction. Eviction closes the session, failing its
// pending steps with ErrSessionClosed.
type Manager struct {
	shards  [numShards]shard
	max     int
	ttl     time.Duration
	metrics *Metrics
}

func newManager(max int, ttl time.Duration, metrics *Metrics) *Manager {
	m := &Manager{max: max, ttl: ttl, metrics: metrics}
	for i := range m.shards {
		m.shards[i].sessions = make(map[string]*Session)
	}
	return m
}

func (m *Manager) shardFor(id string) *shard {
	// Inline FNV-1a: a hash.Hash32 allocation per lookup is measurable
	// on the step path.
	h := uint32(2166136261)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= 16777619
	}
	return &m.shards[h%numShards]
}

// Get returns the live session with the given id.
func (m *Manager) Get(id string) (*Session, bool) {
	sh := m.shardFor(id)
	sh.mu.RLock()
	s, ok := sh.sessions[id]
	sh.mu.RUnlock()
	return s, ok
}

// Put registers a new session; when that pushes the registry past
// capacity, least-recently-used sessions are evicted to restore the cap.
// Fails with ErrSessionExists when the id is already live. Inserting
// before evicting means a rejected duplicate never evicts an unrelated
// session, and racing creates each pay for their own eviction instead of
// overshooting the cap.
func (m *Manager) Put(s *Session) error {
	sh := m.shardFor(s.id)
	sh.mu.Lock()
	if _, ok := sh.sessions[s.id]; ok {
		sh.mu.Unlock()
		return ErrSessionExists
	}
	sh.sessions[s.id] = s
	sh.mu.Unlock()
	m.metrics.sessionsLive.Add(1)
	m.metrics.sessionsCreated.Add(1)
	for m.metrics.sessionsLive.Load() > int64(m.max) {
		if !m.evictLRU() {
			break
		}
	}
	return nil
}

// Remove unregisters and closes the session with the given id.
func (m *Manager) Remove(id string) bool {
	sh := m.shardFor(id)
	sh.mu.Lock()
	s, ok := sh.sessions[id]
	if ok {
		delete(sh.sessions, id)
	}
	sh.mu.Unlock()
	if !ok {
		return false
	}
	m.metrics.sessionsLive.Add(-1)
	s.close()
	return true
}

// evictLRU removes and closes the session with the oldest lastUsed
// timestamp. The scan is O(live sessions); at the DefaultMaxSessions
// scale this is cheap relative to one certified Step. Returns false when
// no session was live.
func (m *Manager) evictLRU() bool {
	var victim *Session
	var oldest int64
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.RLock()
		for _, s := range sh.sessions {
			if t := s.lastUsed.Load(); victim == nil || t < oldest {
				victim, oldest = s, t
			}
		}
		sh.mu.RUnlock()
	}
	if victim == nil {
		return false
	}
	if m.Remove(victim.id) {
		m.metrics.sessionsEvicted.Add(1)
		return true
	}
	// Lost a race with Remove; report progress so Put re-checks capacity.
	return true
}

// sweep evicts every session idle since before the TTL cutoff and
// returns how many it removed. No-op when idle eviction is disabled.
func (m *Manager) sweep(now time.Time) int {
	if m.ttl <= 0 {
		return 0
	}
	cutoff := now.Add(-m.ttl).UnixNano()
	var victims []string
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.RLock()
		for id, s := range sh.sessions {
			if s.lastUsed.Load() < cutoff {
				victims = append(victims, id)
			}
		}
		sh.mu.RUnlock()
	}
	evicted := 0
	for _, id := range victims {
		if m.Remove(id) {
			m.metrics.sessionsEvicted.Add(1)
			evicted++
		}
	}
	return evicted
}

// CloseAll removes and closes every live session (shutdown path).
func (m *Manager) CloseAll() {
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		sessions := sh.sessions
		sh.sessions = make(map[string]*Session)
		sh.mu.Unlock()
		for _, s := range sessions {
			m.metrics.sessionsLive.Add(-1)
			s.close()
		}
	}
}

// Len returns the number of live sessions.
func (m *Manager) Len() int {
	n := 0
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.RLock()
		n += len(sh.sessions)
		sh.mu.RUnlock()
	}
	return n
}
