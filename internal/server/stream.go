package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"priste/internal/api"
)

// streamHub is the session-scoped release-subscriber registry shared by
// every push surface: the worker pool publishes each committed release
// into it (pool.onRelease) and the SSE endpoint subscribes through it,
// so a subscriber sees a session's releases in commit order regardless
// of which transport — unary HTTP, batch, RPC stream — submitted the
// steps. Sharded with the session registry so publishes from many
// sessions do not serialise on one lock.
type streamHub struct {
	shards  [numShards]hubShard
	buffer  int
	metrics *Metrics
}

type hubShard struct {
	mu   sync.Mutex
	subs map[string][]*releaseSub
}

// releaseSub is one subscriber's view of a session's release stream: a
// buffered channel of committed releases, closed (with reason recording
// why) when the session ends or the subscriber lags the commit stream by
// more than the buffer depth.
type releaseSub struct {
	ch chan api.StepResponse

	// reason is set exactly once, before ch is closed; readers consult
	// it only after ch is drained, so the close is the publication
	// barrier and no extra lock is needed on the read side.
	reason error
}

// errStreamLagged disconnects a subscriber that fell further behind the
// commit stream than its buffer: the commit path must never block on a
// slow reader.
var errStreamLagged = api.Errf(api.CodeResourceExhausted, "server: release subscriber lagged behind the commit stream")

func newStreamHub(buffer int, metrics *Metrics) *streamHub {
	h := &streamHub{buffer: buffer, metrics: metrics}
	for i := range h.shards {
		h.shards[i].subs = make(map[string][]*releaseSub)
	}
	return h
}

// subscribe registers a new release subscriber on a session. The caller
// must verify the session is live *after* subscribing (and unsubscribe
// if it is not): closeSession only terminates subscribers it can see,
// so the re-check closes the race with a concurrent delete.
func (h *streamHub) subscribe(id string) *releaseSub {
	sub := &releaseSub{ch: make(chan api.StepResponse, h.buffer)}
	sh := &h.shards[shardIndex(id)]
	sh.mu.Lock()
	sh.subs[id] = append(sh.subs[id], sub)
	sh.mu.Unlock()
	h.metrics.sseSubscribers.Add(1)
	return sub
}

// unsubscribe removes a subscriber (reader gone). Idempotent with a
// concurrent terminate: only the party that actually unlinks the
// subscriber adjusts the gauge and closes the channel.
func (h *streamHub) unsubscribe(id string, sub *releaseSub) {
	sh := &h.shards[shardIndex(id)]
	sh.mu.Lock()
	removed := false
	list := sh.subs[id]
	for i, s := range list {
		if s == sub {
			list = append(list[:i], list[i+1:]...)
			removed = true
			break
		}
	}
	if len(list) == 0 {
		delete(sh.subs, id)
	} else {
		sh.subs[id] = list
	}
	sh.mu.Unlock()
	if removed {
		h.metrics.sseSubscribers.Add(-1)
	}
}

// publish fans one committed release out to the session's subscribers.
// It runs on the worker holding the session's scheduled token (after the
// step's acknowledgement), so per-session publish order is commit order.
// The send never blocks: a subscriber whose buffer is full is terminated
// with errStreamLagged instead of backpressuring the commit path.
func (h *streamHub) publish(id string, resp api.StepResponse) {
	sh := &h.shards[shardIndex(id)]
	sh.mu.Lock()
	list := sh.subs[id]
	if len(list) == 0 {
		sh.mu.Unlock()
		return
	}
	var lagged []*releaseSub
	kept := list[:0]
	for _, sub := range list {
		select {
		case sub.ch <- resp:
			kept = append(kept, sub)
		default:
			lagged = append(lagged, sub)
		}
	}
	if len(kept) == 0 {
		delete(sh.subs, id)
	} else {
		sh.subs[id] = kept
	}
	sh.mu.Unlock()
	h.metrics.sseDelivered.Add(int64(len(kept)))
	for _, sub := range lagged {
		sub.reason = errStreamLagged
		close(sub.ch)
		h.metrics.sseDropped.Add(1)
		h.metrics.sseSubscribers.Add(-1)
	}
}

// closeSession terminates every subscriber of a session that left the
// registry (delete, eviction, TTL sweep, shutdown); wired to
// Manager.onClosed.
func (h *streamHub) closeSession(id string) {
	sh := &h.shards[shardIndex(id)]
	sh.mu.Lock()
	list := sh.subs[id]
	delete(sh.subs, id)
	sh.mu.Unlock()
	for _, sub := range list {
		sub.reason = ErrSessionClosed
		close(sub.ch)
		h.metrics.sseSubscribers.Add(-1)
	}
}

// sseHello is the payload of the stream's opening event: the session id
// and the timestamp the release stream resumes from.
type sseHello struct {
	ID string `json:"id"`
	T  int    `json:"t"`
}

// sseEnd is the payload of the stream's terminal event.
type sseEnd struct {
	Code  api.Code `json:"code"`
	Error string   `json:"error"`
}

// handleSessionStream serves GET /v1/sessions/{id}/stream: a
// Server-Sent-Events push stream of the session's certified releases as
// they commit. The stream opens with an `event: hello` carrying the
// session's next timestamp, delivers each release as an `event: release`
// whose data is the StepResponse JSON (`id:` is the release timestamp),
// and closes with an `event: end` naming the canonical error code —
// session_closed when the session is deleted or evicted,
// resource_exhausted when the subscriber lagged the commit stream by
// more than the configured buffer.
func (s *Server) handleSessionStream(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, ErrDraining)
		return
	}
	id := r.PathValue("id")
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, api.Errf(api.CodeInternal, "server: connection does not support streaming"))
		return
	}
	if _, ok := s.mgr.Get(id); !ok {
		writeError(w, ErrNotFound)
		return
	}
	sub := s.hub.subscribe(id)
	// Re-check liveness after subscribing: a delete between the check
	// above and the subscribe has already run closeSession and cannot
	// see this subscriber.
	sess, ok := s.mgr.Get(id)
	if !ok {
		s.hub.unsubscribe(id, sub)
		writeError(w, ErrNotFound)
		return
	}
	defer s.hub.unsubscribe(id, sub)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	writeSSE(w, "", "hello", sseHello{ID: id, T: int(sess.steps.Load())})
	flusher.Flush()

	for {
		select {
		case resp, ok := <-sub.ch:
			if !ok {
				e := api.ErrorOf(sub.reason)
				writeSSE(w, "", "end", sseEnd{Code: e.Code, Error: e.Message})
				flusher.Flush()
				return
			}
			writeSSE(w, fmt.Sprintf("%d", resp.T), "release", resp)
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// writeSSE renders one Server-Sent-Events frame: optional id line,
// event name, and the JSON-encoded data payload.
func writeSSE(w http.ResponseWriter, id, event string, data any) {
	if id != "" {
		fmt.Fprintf(w, "id: %s\n", id)
	}
	b, err := json.Marshal(data)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, b)
}

// handleStreamStep serves POST /v1/sessions/{id}/stream: one windowed
// micro-batch of the HTTP step stream. Unlike the batch endpoint it is
// session-scoped and never surfaces per-item 429s — a full queue is
// absorbed by settling the batch's own head-of-line release — so a
// client pipelining micro-batches gets strict FIFO submission with
// backpressure instead of drops. Releases committed before a terminal
// error are returned alongside it.
func (s *Server) handleStreamStep(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var req api.StreamStepRequest
	if err := decodeJSON(r, &req, maxBodyBytes); err != nil {
		writeError(w, err)
		return
	}
	if len(req.Locs) > api.MaxStreamBatch {
		writeError(w, api.Errf(api.CodeInvalidArgument,
			fmt.Sprintf("server: stream batch of %d exceeds the %d cap", len(req.Locs), api.MaxStreamBatch)))
		return
	}
	results, err := s.stepWindowed(r.Context(), id, req.Locs)
	if err != nil && len(results) == 0 {
		if r.Context().Err() != nil {
			return
		}
		writeError(w, err)
		return
	}
	s.metrics.streamSteps.Add(int64(len(results)))
	resp := api.StreamStepResponse{Results: results}
	if err != nil {
		e := api.ErrorOf(err)
		resp.Code, resp.Error = e.Code, e.Message
	}
	writeJSON(w, http.StatusOK, resp)
}
