package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
)

// Client is a typed client for the pristed HTTP/JSON API.
type Client struct {
	base string
	http *http.Client
}

// NewClient returns a client for the pristed instance at baseURL (e.g.
// "http://localhost:8377"). httpClient nil uses http.DefaultClient.
func NewClient(baseURL string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: baseURL, http: httpClient}
}

// APIError is a non-2xx response decoded from the error envelope.
type APIError struct {
	Status  int
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("server: HTTP %d: %s", e.Status, e.Message)
}

// do issues one JSON round-trip; out nil discards the body.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var eb errorBody
		msg := resp.Status
		if json.NewDecoder(resp.Body).Decode(&eb) == nil && eb.Error != "" {
			msg = eb.Error
		}
		return &APIError{Status: resp.StatusCode, Message: msg}
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// CreateSession creates a session and returns its initial state.
func (c *Client) CreateSession(ctx context.Context, req CreateSessionRequest) (SessionInfo, error) {
	var info SessionInfo
	err := c.do(ctx, http.MethodPost, "/v1/sessions", req, &info)
	return info, err
}

// Session returns a session's current state.
func (c *Client) Session(ctx context.Context, id string) (SessionInfo, error) {
	var info SessionInfo
	err := c.do(ctx, http.MethodGet, "/v1/sessions/"+url.PathEscape(id), nil, &info)
	return info, err
}

// DeleteSession closes a session.
func (c *Client) DeleteSession(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/sessions/"+url.PathEscape(id), nil, nil)
}

// Step releases one true location through a session.
func (c *Client) Step(ctx context.Context, id string, loc int) (StepResponse, error) {
	var out StepResponse
	err := c.do(ctx, http.MethodPost, "/v1/sessions/"+url.PathEscape(id)+"/step", StepRequest{Loc: loc}, &out)
	return out, err
}

// StepBatch releases locations for many users at once; Results[i]
// corresponds to steps[i], with per-item errors reported inline.
func (c *Client) StepBatch(ctx context.Context, steps []BatchStepItem) ([]StepResponse, error) {
	var out BatchStepResponse
	err := c.do(ctx, http.MethodPost, "/v1/step", BatchStepRequest{Steps: steps}, &out)
	return out.Results, err
}

// Stats returns the service counters.
func (c *Client) Stats(ctx context.Context) (Stats, error) {
	var st Stats
	err := c.do(ctx, http.MethodGet, "/statsz", nil, &st)
	return st, err
}

// Health reports server liveness.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}
