package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/url"
	"strconv"

	"priste/internal/api"
	"priste/internal/obs"
)

// Client is the typed HTTP/JSON client for the pristed API: a thin
// codec over the shared api wire types. It implements api.Client, the
// transport-neutral client interface the binary RPC client satisfies
// too, so callers can swap transports without touching call sites.
type Client struct {
	base string
	http *http.Client
}

var _ api.Client = (*Client)(nil)

// NewClient returns a client for the pristed instance at baseURL (e.g.
// "http://localhost:8377"). httpClient nil uses http.DefaultClient.
func NewClient(baseURL string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: baseURL, http: httpClient}
}

// do issues one JSON round-trip; out nil discards the body. Non-2xx
// responses decode the error envelope into a typed *api.Error carrying
// the canonical code (reconstructed from the status line when the
// envelope has none), so errors.Is against the service sentinels holds
// client-side.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if trace := obs.TraceFrom(ctx); trace != 0 {
		// A trace on ctx (obs.WithTrace) propagates to the server, whose
		// slow-step logs then carry the same ID as this caller's records.
		req.Header.Set(obs.TraceHeader, obs.FormatTrace(trace))
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	// Drain before close on every path (decode errors, error envelopes,
	// discarded bodies): a body with unread bytes poisons the keep-alive
	// connection, forcing a fresh TCP+TLS handshake per call exactly when
	// the caller is busiest.
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode >= 300 {
		var eb errorBody
		msg := resp.Status
		if json.NewDecoder(resp.Body).Decode(&eb) == nil && eb.Error != "" {
			msg = eb.Error
		}
		code := eb.Code
		if !code.Valid() {
			code = api.CodeFromHTTPStatus(resp.StatusCode)
		}
		return &api.Error{Code: code, Message: msg}
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// CreateSession creates a session and returns its initial state.
func (c *Client) CreateSession(ctx context.Context, req api.CreateSessionRequest) (api.SessionInfo, error) {
	var info api.SessionInfo
	err := c.do(ctx, http.MethodPost, "/v1/sessions", req, &info)
	return info, err
}

// Session returns a session's current state.
func (c *Client) Session(ctx context.Context, id string) (api.SessionInfo, error) {
	var info api.SessionInfo
	err := c.do(ctx, http.MethodGet, "/v1/sessions/"+url.PathEscape(id), nil, &info)
	return info, err
}

// DeleteSession closes a session.
func (c *Client) DeleteSession(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/sessions/"+url.PathEscape(id), nil, nil)
}

// Step releases one true location through a session.
func (c *Client) Step(ctx context.Context, id string, loc int) (api.StepResponse, error) {
	var out api.StepResponse
	err := c.do(ctx, http.MethodPost, "/v1/sessions/"+url.PathEscape(id)+"/step", api.StepRequest{Loc: loc}, &out)
	return out, err
}

// StepBatch releases locations for many users at once; Results[i]
// corresponds to steps[i], with per-item errors reported inline.
func (c *Client) StepBatch(ctx context.Context, steps []api.BatchStepItem) ([]api.StepResponse, error) {
	var out api.BatchStepResponse
	err := c.do(ctx, http.MethodPost, "/v1/step", api.BatchStepRequest{Steps: steps}, &out)
	return out.Results, err
}

// ListSessions fetches one page of the session list.
func (c *Client) ListSessions(ctx context.Context, req api.ListSessionsRequest) (api.SessionPage, error) {
	q := url.Values{}
	if req.Limit != 0 {
		q.Set("limit", strconv.Itoa(req.Limit))
	}
	if req.Cursor != "" {
		q.Set("cursor", req.Cursor)
	}
	path := "/v1/sessions"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var page api.SessionPage
	err := c.do(ctx, http.MethodGet, path, nil, &page)
	return page, err
}

// ExportSession fetches a session's complete migratable state.
func (c *Client) ExportSession(ctx context.Context, id string) (api.SessionExport, error) {
	var exp api.SessionExport
	err := c.do(ctx, http.MethodGet, "/v1/sessions/"+url.PathEscape(id)+"/export", nil, &exp)
	return exp, err
}

// ImportSession registers an exported session on this instance.
func (c *Client) ImportSession(ctx context.Context, exp api.SessionExport) (api.SessionInfo, error) {
	var info api.SessionInfo
	err := c.do(ctx, http.MethodPost, "/v1/sessions/import", exp, &info)
	return info, err
}

// Stats returns the service counters.
func (c *Client) Stats(ctx context.Context) (api.Stats, error) {
	var st api.Stats
	err := c.do(ctx, http.MethodGet, "/statsz", nil, &st)
	return st, err
}

// Health reports server liveness.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}
