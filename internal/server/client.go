package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync"

	"priste/internal/api"
	"priste/internal/obs"
)

// Client is the typed HTTP/JSON client for the pristed API: a thin
// codec over the shared api wire types. It implements api.Client, the
// transport-neutral client interface the binary RPC client satisfies
// too, so callers can swap transports without touching call sites.
type Client struct {
	base string
	http *http.Client
}

var (
	_ api.Client       = (*Client)(nil)
	_ api.StreamClient = (*Client)(nil)
)

// defaultHTTPClient backs NewClient when the caller passes no client.
// Two departures from http.DefaultTransport matter on the step path:
// MaxIdleConnsPerHost is raised from 2 to 256 so a concurrent step
// pipeline reuses that many keep-alive connections instead of closing
// and re-handshaking all but two of them after every burst, and
// compression is disabled — step bodies are ~200-byte JSON documents,
// where gzip costs CPU on both ends and saves nothing.
var defaultHTTPClient = &http.Client{Transport: defaultTransport()}

func defaultTransport() http.RoundTripper {
	t, ok := http.DefaultTransport.(*http.Transport)
	if !ok {
		return http.DefaultTransport
	}
	t = t.Clone()
	t.MaxIdleConns = 0 // no global idle cap; per-host below governs
	t.MaxIdleConnsPerHost = 256
	t.DisableCompression = true
	return t
}

// NewClient returns a client for the pristed instance at baseURL (e.g.
// "http://localhost:8377"). httpClient nil uses a shared client tuned
// for the step path (see defaultHTTPClient); pass your own to override
// timeouts, TLS or proxying.
func NewClient(baseURL string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = defaultHTTPClient
	}
	return &Client{base: baseURL, http: httpClient}
}

// do issues one JSON round-trip; out nil discards the body. Non-2xx
// responses decode the error envelope into a typed *api.Error carrying
// the canonical code (reconstructed from the status line when the
// envelope has none), so errors.Is against the service sentinels holds
// client-side.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if trace := obs.TraceFrom(ctx); trace != 0 {
		// A trace on ctx (obs.WithTrace) propagates to the server, whose
		// slow-step logs then carry the same ID as this caller's records.
		req.Header.Set(obs.TraceHeader, obs.FormatTrace(trace))
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	// Drain before close on every path (decode errors, error envelopes,
	// discarded bodies): a body with unread bytes poisons the keep-alive
	// connection, forcing a fresh TCP+TLS handshake per call exactly when
	// the caller is busiest.
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode >= 300 {
		var eb errorBody
		msg := resp.Status
		if json.NewDecoder(resp.Body).Decode(&eb) == nil && eb.Error != "" {
			msg = eb.Error
		}
		code := eb.Code
		if !code.Valid() {
			code = api.CodeFromHTTPStatus(resp.StatusCode)
		}
		return &api.Error{Code: code, Message: msg}
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// CreateSession creates a session and returns its initial state.
func (c *Client) CreateSession(ctx context.Context, req api.CreateSessionRequest) (api.SessionInfo, error) {
	var info api.SessionInfo
	err := c.do(ctx, http.MethodPost, "/v1/sessions", req, &info)
	return info, err
}

// Session returns a session's current state.
func (c *Client) Session(ctx context.Context, id string) (api.SessionInfo, error) {
	var info api.SessionInfo
	err := c.do(ctx, http.MethodGet, "/v1/sessions/"+url.PathEscape(id), nil, &info)
	return info, err
}

// DeleteSession closes a session.
func (c *Client) DeleteSession(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/sessions/"+url.PathEscape(id), nil, nil)
}

// Step releases one true location through a session.
func (c *Client) Step(ctx context.Context, id string, loc int) (api.StepResponse, error) {
	var out api.StepResponse
	err := c.do(ctx, http.MethodPost, "/v1/sessions/"+url.PathEscape(id)+"/step", api.StepRequest{Loc: loc}, &out)
	return out, err
}

// StepBatch releases locations for many users at once; Results[i]
// corresponds to steps[i], with per-item errors reported inline.
func (c *Client) StepBatch(ctx context.Context, steps []api.BatchStepItem) ([]api.StepResponse, error) {
	var out api.BatchStepResponse
	err := c.do(ctx, http.MethodPost, "/v1/step", api.BatchStepRequest{Steps: steps}, &out)
	return out.Results, err
}

// ListSessions fetches one page of the session list.
func (c *Client) ListSessions(ctx context.Context, req api.ListSessionsRequest) (api.SessionPage, error) {
	q := url.Values{}
	if req.Limit != 0 {
		q.Set("limit", strconv.Itoa(req.Limit))
	}
	if req.Cursor != "" {
		q.Set("cursor", req.Cursor)
	}
	path := "/v1/sessions"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var page api.SessionPage
	err := c.do(ctx, http.MethodGet, path, nil, &page)
	return page, err
}

// ExportSession fetches a session's complete migratable state.
func (c *Client) ExportSession(ctx context.Context, id string) (api.SessionExport, error) {
	var exp api.SessionExport
	err := c.do(ctx, http.MethodGet, "/v1/sessions/"+url.PathEscape(id)+"/export", nil, &exp)
	return exp, err
}

// ImportSession registers an exported session on this instance.
func (c *Client) ImportSession(ctx context.Context, exp api.SessionExport) (api.SessionInfo, error) {
	var info api.SessionInfo
	err := c.do(ctx, http.MethodPost, "/v1/sessions/import", exp, &info)
	return info, err
}

// StreamSteps implements api.StreamClient over HTTP: the returned
// stream pipelines windowed micro-batches through POST
// /v1/sessions/{id}/stream. The window caps in-flight (sent, not yet
// consumed) steps exactly like the RPC stream — Send blocks when it is
// exhausted — and each micro-batch carries whatever Send has queued at
// the moment the previous round-trip completes, so throughput adapts
// to the caller's production rate without a fixed batch delay.
func (c *Client) StreamSteps(ctx context.Context, id string, window int) (api.StepStream, error) {
	if window <= 0 {
		window = api.DefaultStreamWindow
	}
	if window > api.MaxStreamWindow {
		window = api.MaxStreamWindow
	}
	// Probe the session first so an unknown id fails the open, not the
	// first Send — matching the RPC stream's open handshake.
	if _, err := c.Session(ctx, id); err != nil {
		return nil, err
	}
	st := &httpStream{
		c:      c,
		ctx:    ctx,
		id:     id,
		window: window,
		tokens: make(chan struct{}, window),
		locs:   make(chan int, window),
		recv:   make(chan api.StepResponse, window+2),
		done:   make(chan struct{}),
	}
	for i := 0; i < window; i++ {
		st.tokens <- struct{}{}
	}
	go st.pump()
	return st, nil
}

// httpStream is the HTTP api.StepStream: a pump goroutine turns the
// queued locations into windowed micro-batch requests and fans the
// returned releases into recv. The token bucket mirrors the RPC
// stream's: Send takes a token, Recv returns it on consumption, so at
// most `window` steps are in flight end to end.
type httpStream struct {
	c      *Client
	ctx    context.Context
	id     string
	window int

	tokens chan struct{}
	locs   chan int
	recv   chan api.StepResponse
	done   chan struct{}

	mu         sync.Mutex
	termErr    error
	sendClosed bool
}

// pump drives the micro-batch pipeline: block for one location, drain
// whatever else Send has queued (up to the window), round-trip the
// batch, deliver its releases, repeat until the input side closes or a
// terminal error ends the stream.
func (st *httpStream) pump() {
	for {
		var batch []int
		select {
		case loc, ok := <-st.locs:
			if !ok {
				st.terminate(io.EOF)
				return
			}
			batch = append(batch, loc)
		case <-st.done:
			return
		case <-st.ctx.Done():
			st.terminate(st.ctx.Err())
			return
		}
		closed := false
	fill:
		for len(batch) < st.window {
			select {
			case loc, ok := <-st.locs:
				if !ok {
					closed = true
					break fill
				}
				batch = append(batch, loc)
			default:
				break fill
			}
		}
		var out api.StreamStepResponse
		err := st.c.do(st.ctx, http.MethodPost,
			"/v1/sessions/"+url.PathEscape(st.id)+"/stream", api.StreamStepRequest{Locs: batch}, &out)
		if err != nil {
			st.terminate(err)
			return
		}
		for _, r := range out.Results {
			select {
			case st.recv <- r:
			case <-st.done:
				return
			}
		}
		if berr := out.Err(); berr != nil {
			st.terminate(berr)
			return
		}
		if closed {
			st.terminate(io.EOF)
			return
		}
	}
}

// terminate records the stream's terminal state; the first caller wins.
func (st *httpStream) terminate(err error) {
	st.mu.Lock()
	if st.termErr == nil {
		st.termErr = err
		close(st.done)
	}
	st.mu.Unlock()
}

// terminal returns the recorded terminal error.
func (st *httpStream) terminal() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.termErr != nil {
		return st.termErr
	}
	return api.Errf(api.CodeUnavailable, "server: stream closed")
}

// Send implements api.StepStream.
func (st *httpStream) Send(loc int) error {
	st.mu.Lock()
	if st.sendClosed {
		st.mu.Unlock()
		return api.Errf(api.CodeInvalidArgument, "server: send on closed stream")
	}
	if st.termErr != nil {
		err := st.termErr
		st.mu.Unlock()
		return err
	}
	st.mu.Unlock()
	select {
	case <-st.tokens:
	case <-st.done:
		return st.terminal()
	case <-st.ctx.Done():
		return st.ctx.Err()
	}
	select {
	case st.locs <- loc:
		return nil
	case <-st.done:
		return st.terminal()
	case <-st.ctx.Done():
		return st.ctx.Err()
	}
}

// Recv implements api.StepStream. Buffered releases outrank the
// terminal state so a graceful close always drains cleanly.
func (st *httpStream) Recv() (api.StepResponse, error) {
	select {
	case r := <-st.recv:
		st.releaseToken()
		return r, nil
	default:
	}
	select {
	case r := <-st.recv:
		st.releaseToken()
		return r, nil
	case <-st.done:
		select {
		case r := <-st.recv:
			st.releaseToken()
			return r, nil
		default:
		}
		return api.StepResponse{}, st.terminal()
	case <-st.ctx.Done():
		return api.StepResponse{}, st.ctx.Err()
	}
}

func (st *httpStream) releaseToken() {
	select {
	case st.tokens <- struct{}{}:
	default:
	}
}

// CloseSend implements api.StepStream: it ends the input side; the pump
// flushes what was already sent, and Recv drains to io.EOF.
func (st *httpStream) CloseSend() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.sendClosed {
		return nil
	}
	st.sendClosed = true
	close(st.locs)
	return nil
}

// Close implements api.StepStream: it aborts the stream. It does not
// close the locs channel — CloseSend owns that, and Close may race a
// concurrent Send — it just marks the stream terminal, which stops the
// pump and unblocks both sides.
func (st *httpStream) Close() error {
	st.terminate(api.Errf(api.CodeUnavailable, "server: stream closed"))
	return nil
}

// Stats returns the service counters.
func (c *Client) Stats(ctx context.Context) (api.Stats, error) {
	var st api.Stats
	err := c.do(ctx, http.MethodGet, "/statsz", nil, &st)
	return st, err
}

// Health reports server liveness.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}
