package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"priste/internal/api"
)

// streamClient asserts the transport's client implements the streaming
// extension and opens a stream.
func openStream(t *testing.T, client api.Client, id string, window int) api.StepStream {
	t.Helper()
	sc, ok := client.(api.StreamClient)
	if !ok {
		t.Fatalf("%T does not implement api.StreamClient", client)
	}
	st, err := sc.StreamSteps(context.Background(), id, window)
	if err != nil {
		t.Fatalf("StreamSteps: %v", err)
	}
	t.Cleanup(func() { _ = st.Close() })
	return st
}

// TestStreamFIFOAndBackpressure is the core stream conformance test on
// both transports: a window far larger than the session queue pumps
// more steps than the queue can hold, and every release must still
// arrive — in exact FIFO order, with no 429 surfacing — because window
// exhaustion and queue pressure both resolve as backpressure, not drops.
func TestStreamFIFOAndBackpressure(t *testing.T) {
	mkcfg := func(t *testing.T) Config {
		cfg := testConfig()
		cfg.QueueDepth = 2 // force the server-side pump into its backpressure path
		return cfg
	}
	forEachTransport(t, mkcfg, func(t *testing.T, srv *Server, client api.Client) {
		ctx := context.Background()
		if _, err := client.CreateSession(ctx, CreateSessionRequest{ID: "s"}); err != nil {
			t.Fatal(err)
		}
		const n = 40
		st := openStream(t, client, "s", 16)
		sendErr := make(chan error, 1)
		go func() {
			for i := 0; i < n; i++ {
				if err := st.Send(i % 36); err != nil {
					sendErr <- err
					return
				}
			}
			sendErr <- st.CloseSend()
		}()
		for i := 0; i < n; i++ {
			resp, err := st.Recv()
			if err != nil {
				t.Fatalf("Recv %d: %v", i, err)
			}
			if resp.T != i {
				t.Fatalf("release %d has T=%d; stream broke FIFO order", i, resp.T)
			}
		}
		if _, err := st.Recv(); !errors.Is(err, io.EOF) {
			t.Fatalf("Recv after drain = %v, want io.EOF", err)
		}
		if err := <-sendErr; err != nil {
			t.Fatalf("send side: %v", err)
		}
	})
}

// TestStreamUnknownSession: opening a stream on an id that does not
// exist fails the open, not the first Send, on both transports.
func TestStreamUnknownSession(t *testing.T) {
	forEachTransport(t, plainConfig, func(t *testing.T, srv *Server, client api.Client) {
		sc := client.(api.StreamClient)
		_, err := sc.StreamSteps(context.Background(), "ghost", 0)
		wantCode(t, err, api.CodeNotFound, "stream open on unknown session")
	})
}

// TestStreamMidStreamDelete: deleting the session under a live stream
// must end the stream with a clean terminal error (session_closed or
// not_found depending on where the next step catches the removal),
// never a hang or a silent drop.
func TestStreamMidStreamDelete(t *testing.T) {
	forEachTransport(t, plainConfig, func(t *testing.T, srv *Server, client api.Client) {
		ctx := context.Background()
		if _, err := client.CreateSession(ctx, CreateSessionRequest{ID: "doomed"}); err != nil {
			t.Fatal(err)
		}
		st := openStream(t, client, "doomed", 8)
		for i := 0; i < 3; i++ {
			if err := st.Send(i); err != nil {
				t.Fatalf("Send %d: %v", i, err)
			}
		}
		for i := 0; i < 3; i++ {
			if _, err := st.Recv(); err != nil {
				t.Fatalf("Recv %d: %v", i, err)
			}
		}
		if err := client.DeleteSession(ctx, "doomed"); err != nil {
			t.Fatal(err)
		}
		// The terminal error may surface on a Send (stream already dead)
		// or only once the window blocks and the death unblocks it; with
		// nobody consuming releases, a window of 8 guarantees the loop
		// cannot run past iteration 9 without hitting either.
		var last error
		for i := 0; i < 20 && last == nil; i++ {
			last = st.Send(0)
		}
		if last == nil {
			_, last = st.Recv()
		}
		if last == nil {
			t.Fatal("stream never reported a terminal error after the session was deleted")
		}
		var apiErr *api.Error
		if !errors.As(last, &apiErr) {
			t.Fatalf("terminal error %v is not a typed *api.Error", last)
		}
		if apiErr.Code != api.CodeSessionClosed && apiErr.Code != api.CodeNotFound {
			t.Fatalf("terminal code = %s, want session_closed or not_found", apiErr.Code)
		}
	})
}

// TestStreamUnaryEquivalence is the PR's determinism acceptance test:
// a session fed through the stream must produce bit-identical releases
// — and an identical exported fingerprint — to a same-seed session fed
// step by step through the unary endpoint. Streaming changes the
// transport, never the certified output.
func TestStreamUnaryEquivalence(t *testing.T) {
	forEachTransport(t, plainConfig, func(t *testing.T, srv *Server, client api.Client) {
		ctx := context.Background()
		seed := int64(42)
		const n = 40
		locs := make([]int, n)
		for i := range locs {
			locs[i] = (i * 7) % 36
		}

		if _, err := client.CreateSession(ctx, CreateSessionRequest{ID: "unary", Seed: &seed}); err != nil {
			t.Fatal(err)
		}
		unary := make([]api.StepResponse, n)
		for i, loc := range locs {
			resp, err := client.Step(ctx, "unary", loc)
			if err != nil {
				t.Fatalf("unary step %d: %v", i, err)
			}
			unary[i] = resp
		}

		if _, err := client.CreateSession(ctx, CreateSessionRequest{ID: "streamed", Seed: &seed}); err != nil {
			t.Fatal(err)
		}
		st := openStream(t, client, "streamed", 8)
		sendErr := make(chan error, 1)
		go func() {
			for _, loc := range locs {
				if err := st.Send(loc); err != nil {
					sendErr <- err
					return
				}
			}
			sendErr <- st.CloseSend()
		}()
		streamed := make([]api.StepResponse, 0, n)
		for {
			resp, err := st.Recv()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				t.Fatalf("streamed Recv: %v", err)
			}
			streamed = append(streamed, resp)
		}
		if err := <-sendErr; err != nil {
			t.Fatalf("streamed send: %v", err)
		}
		if len(streamed) != n {
			t.Fatalf("streamed %d releases, want %d", len(streamed), n)
		}
		// CheckMicros is a wall-clock measurement (and the second session
		// runs against a warm certified-release cache); everything else
		// must match bit for bit.
		for i := range unary {
			unary[i].CheckMicros = 0
			streamed[i].CheckMicros = 0
		}
		if !reflect.DeepEqual(unary, streamed) {
			t.Fatalf("streamed releases differ from unary releases:\nunary:    %+v\nstreamed: %+v", unary[:3], streamed[:3])
		}

		expU, err := client.ExportSession(ctx, "unary")
		if err != nil {
			t.Fatal(err)
		}
		expS, err := client.ExportSession(ctx, "streamed")
		if err != nil {
			t.Fatal(err)
		}
		if expU.Fingerprint != expS.Fingerprint {
			t.Fatalf("fingerprints diverge: unary %x, streamed %x", expU.Fingerprint, expS.Fingerprint)
		}
		if !reflect.DeepEqual(expU.Tags, expS.Tags) {
			t.Fatal("release-tag histories diverge between unary and streamed ingest")
		}
	})
}

// TestSSEStream drives the push surface end to end over HTTP: steps
// submitted through the unary endpoint must appear, in commit order, on
// a concurrently attached SSE subscriber, and deleting the session must
// close the stream with a session_closed end event.
func TestSSEStream(t *testing.T) {
	srv := newTestServer(t, testConfig())
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	ctx := context.Background()
	client := NewClient(ts.URL, nil)
	seed := int64(5)
	if _, err := client.CreateSession(ctx, CreateSessionRequest{ID: "watched", Seed: &seed}); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/v1/sessions/watched/stream")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("SSE status = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}

	type event struct {
		name string
		data string
	}
	events := make(chan event, 32)
	go func() {
		defer close(events)
		sc := bufio.NewScanner(resp.Body)
		var name, data string
		for sc.Scan() {
			line := sc.Text()
			if line == "" {
				if name != "" {
					events <- event{name, data}
				}
				name, data = "", ""
				continue
			}
			if strings.HasPrefix(line, "event: ") {
				name = strings.TrimPrefix(line, "event: ")
			} else if strings.HasPrefix(line, "data: ") {
				data = strings.TrimPrefix(line, "data: ")
			}
		}
	}()
	next := func(want string) event {
		t.Helper()
		select {
		case ev, ok := <-events:
			if !ok {
				t.Fatalf("SSE stream closed while waiting for %q", want)
			}
			if ev.name != want {
				t.Fatalf("event = %q (%s), want %q", ev.name, ev.data, want)
			}
			return ev
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out waiting for %q event", want)
			return event{}
		}
	}

	hello := next("hello")
	var h sseHello
	if err := json.Unmarshal([]byte(hello.data), &h); err != nil || h.ID != "watched" || h.T != 0 {
		t.Fatalf("hello = %s (err %v), want id=watched t=0", hello.data, err)
	}

	const n = 5
	for i := 0; i < n; i++ {
		if _, err := client.Step(ctx, "watched", i); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	for i := 0; i < n; i++ {
		ev := next("release")
		var r api.StepResponse
		if err := json.Unmarshal([]byte(ev.data), &r); err != nil {
			t.Fatalf("release %d: bad payload %s: %v", i, ev.data, err)
		}
		if r.T != i {
			t.Fatalf("release %d arrived with T=%d; SSE broke commit order", i, r.T)
		}
	}

	if err := client.DeleteSession(ctx, "watched"); err != nil {
		t.Fatal(err)
	}
	end := next("end")
	var e sseEnd
	if err := json.Unmarshal([]byte(end.data), &e); err != nil || e.Code != api.CodeSessionClosed {
		t.Fatalf("end = %s (err %v), want code session_closed", end.data, err)
	}
}

// TestStreamHubLaggard: a subscriber that stops consuming is
// disconnected with resource_exhausted once it falls a full buffer
// behind — the commit path must never block on a slow reader.
func TestStreamHubLaggard(t *testing.T) {
	m := newMetrics()
	hub := newStreamHub(2, m)
	sub := hub.subscribe("s")
	for i := 0; i < 3; i++ {
		hub.publish("s", api.StepResponse{T: i})
	}
	// Buffer holds 2; the third publish must have dropped the subscriber.
	for i := 0; i < 2; i++ {
		if r, ok := <-sub.ch; !ok || r.T != i {
			t.Fatalf("buffered release %d: got (%+v, %v)", i, r, ok)
		}
	}
	if _, ok := <-sub.ch; ok {
		t.Fatal("subscriber channel still open after lagging past its buffer")
	}
	wantCode(t, sub.reason, api.CodeResourceExhausted, "laggard termination")
	if got := m.sseDropped.Load(); got != 1 {
		t.Fatalf("sseDropped = %d, want 1", got)
	}
	if got := m.sseSubscribers.Load(); got != 0 {
		t.Fatalf("sseSubscribers gauge = %d, want 0", got)
	}
}

// TestStreamWindowOccupancyStats: with no workers draining the queue,
// streamed steps pile up in flight and /statsz must report them in the
// per-shard window occupancy — and report zero again once the stream
// dies with the server's session close.
func TestStreamWindowOccupancyStats(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = -1 // no drain: submitted steps stay in flight
	srv := newTestServer(t, cfg)
	_, client := serveRPC(t, srv)
	ctx := context.Background()
	if _, err := client.CreateSession(ctx, CreateSessionRequest{ID: "windowed"}); err != nil {
		t.Fatal(err)
	}
	st := openStream(t, client, "windowed", 4)
	for i := 0; i < 4; i++ {
		if err := st.Send(i); err != nil {
			t.Fatalf("Send %d: %v", i, err)
		}
	}
	waitFor(t, func() bool { return srv.Stats().Streams.WindowOccupancy == 4 })
	stats := srv.Stats().Streams
	sum := int64(0)
	for _, n := range stats.PerShardWindow {
		sum += n
	}
	if sum != stats.WindowOccupancy {
		t.Fatalf("per-shard windows sum to %d, total reports %d", sum, stats.WindowOccupancy)
	}
	if stats.RPCOpened < 1 || stats.RPCActive < 1 {
		t.Fatalf("stream gauges = opened %d active %d, want >= 1", stats.RPCOpened, stats.RPCActive)
	}
}

// TestSchedulerBatchAware: with a drain batch of 1 every visit with
// work left re-queues the session (fairness), and a one-worker pool
// serving two same-plan sessions takes the plan-affinity dequeue path.
func TestSchedulerBatchAware(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = 1
	cfg.DrainBatch = 1
	srv := newTestServer(t, cfg)
	ctx := context.Background()
	for _, id := range []string{"a", "b"} {
		if _, err := srv.CreateSession(CreateSessionRequest{ID: id}); err != nil {
			t.Fatal(err)
		}
	}
	var items []api.BatchStepItem
	for i := 0; i < 6; i++ {
		items = append(items, api.BatchStepItem{SessionID: "a", Loc: i % 36})
		items = append(items, api.BatchStepItem{SessionID: "b", Loc: i % 36})
	}
	for _, res := range srv.StepBatch(ctx, items) {
		if res.Error != "" {
			t.Fatalf("batch step failed: %s", res.Error)
		}
	}
	sched := srv.Stats().Scheduler
	if sched.Requeues == 0 {
		t.Fatalf("drain-batch cap of 1 over 12 queued steps produced no requeues: %+v", sched)
	}
	if sched.AffinityPicks == 0 {
		t.Fatalf("two same-plan sessions on one worker produced no affinity picks: %+v", sched)
	}
	if sched.FIFOPicks == 0 {
		t.Fatalf("scheduler reported no FIFO picks at all: %+v", sched)
	}
}
