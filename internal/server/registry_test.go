package server

import (
	"sync"
	"testing"
)

func registryTestServer(t *testing.T, certCache int) *Server {
	t.Helper()
	cfg := DefaultConfig()
	cfg.GridW, cfg.GridH = 4, 4
	cfg.Events = []string{"0-3@2-4"}
	cfg.QPTimeout = 0
	cfg.Workers = defaultTestWorkers
	cfg.CertCacheSize = certCache
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// defaultTestWorkers: most registry tests never step, so skip the pool.
const defaultTestWorkers = -1

func seedReq(seed int64, mutate func(*CreateSessionRequest)) CreateSessionRequest {
	req := CreateSessionRequest{Seed: &seed}
	if mutate != nil {
		mutate(&req)
	}
	return req
}

// TestPlanRegistryCanonicalisation: sessions differing only in seed (or
// event-spec order) share one compiled plan; sessions differing in ε, α,
// events, mechanism, or δ get their own.
func TestPlanRegistryCanonicalisation(t *testing.T) {
	s := registryTestServer(t, -1)
	mustCreate := func(req CreateSessionRequest) {
		t.Helper()
		if _, err := s.CreateSession(req); err != nil {
			t.Fatal(err)
		}
	}

	// Seeds 1..4, identical parameters: one plan.
	for seed := int64(1); seed <= 4; seed++ {
		mustCreate(seedReq(seed, nil))
	}
	if got := s.Plans().Len(); got != 1 {
		t.Fatalf("%d plans after seed-only variation, want 1", got)
	}

	// Same events spelled in a different order: still the same plan.
	mustCreate(seedReq(10, func(r *CreateSessionRequest) {
		r.Events = []string{"4-7@1-2", "0-3@2-4"}
	}))
	mustCreate(seedReq(11, func(r *CreateSessionRequest) {
		r.Events = []string{"0-3@2-4", "4-7@1-2"}
	}))
	if got := s.Plans().Len(); got != 2 {
		t.Fatalf("%d plans after reordered events, want 2 (order must not matter)", got)
	}

	// Each semantic difference mints a new plan.
	for i, mutate := range []func(*CreateSessionRequest){
		func(r *CreateSessionRequest) { r.Epsilon = 0.9 },
		func(r *CreateSessionRequest) { r.Alpha = 2.0 },
		func(r *CreateSessionRequest) { r.Events = []string{"0-3@1-3"} },
		func(r *CreateSessionRequest) { r.Mechanism = MechanismDelta },
		func(r *CreateSessionRequest) {
			r.Mechanism = MechanismDelta
			d := 0.2
			r.Delta = &d
		},
	} {
		mustCreate(seedReq(int64(100+i), mutate))
		if got, want := s.Plans().Len(), 3+i; got != want {
			t.Fatalf("variant %d: %d plans, want %d", i, got, want)
		}
	}

	// Repeating the delta variant shares its existing plan.
	mustCreate(seedReq(200, func(r *CreateSessionRequest) { r.Mechanism = MechanismDelta }))
	if got := s.Plans().Len(); got != 7 {
		t.Fatalf("%d plans after repeating a variant, want 7", got)
	}
	st := s.Plans().Stats()
	if st.Compiled != 7 || st.SharedHits == 0 {
		t.Fatalf("registry stats %+v", st)
	}
}

// TestPlanRegistryConcurrentCreate: racing creates of one parameter set
// must converge on a single plan.
func TestPlanRegistryConcurrentCreate(t *testing.T) {
	s := registryTestServer(t, -1)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int64) {
			defer wg.Done()
			if _, err := s.CreateSession(seedReq(g, nil)); err != nil {
				t.Error(err)
			}
		}(int64(g))
	}
	wg.Wait()
	if got := s.Plans().Len(); got != 1 {
		t.Fatalf("%d plans after concurrent identical creates, want 1", got)
	}
}

// TestSharedPlanConcurrentSteps drives many sessions of one shared plan
// (and one shared certified-release cache) concurrently through the full
// worker-pool path; under -race this exercises the shared emission table,
// plan structures and cache. Cache stats must show up in /statsz terms.
func TestSharedPlanConcurrentSteps(t *testing.T) {
	cfg := DefaultConfig()
	cfg.GridW, cfg.GridH = 4, 4
	cfg.Events = []string{"0-3@1-2"}
	cfg.QPTimeout = 0
	cfg.Workers = 4
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const sessions = 12
	ids := make([]string, sessions)
	for i := range ids {
		seed := int64(i + 1)
		sess, err := s.CreateSession(CreateSessionRequest{Seed: &seed})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = sess.ID
	}
	if got := s.Plans().Len(); got != 1 {
		t.Fatalf("%d plans, want 1", got)
	}
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			for step := 0; step < 4; step++ {
				if _, err := s.Step(bg, id, (i+step)%16); err != nil {
					t.Errorf("session %d step %d: %v", i, step, err)
					return
				}
			}
		}(i, id)
	}
	wg.Wait()

	stats := s.Stats()
	if !stats.CertCache.Enabled {
		t.Fatal("cert cache disabled under default config")
	}
	if stats.CertCache.Hits == 0 {
		t.Fatalf("no cache hits across %d sibling sessions: %+v", sessions, stats.CertCache)
	}
	if stats.Plans.Live != 1 {
		t.Fatalf("plan stats %+v", stats.Plans)
	}
}
