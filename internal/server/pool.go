package server

import (
	"log/slog"
	"sync"
	"time"

	"priste/internal/api"
	"priste/internal/core"
	"priste/internal/obs"
)

// pool is the step execution layer: a fixed set of workers pulling
// runnable sessions off a shared run queue. A session enters the run
// queue at most once (guarded by its scheduled token), and the worker
// that pops it drains its FIFO queue to empty before releasing the
// token — so steps from many users run concurrently while each session
// stays single-writer with per-session FIFO ordering.
type pool struct {
	runq     chan *Session
	quit     chan struct{}
	wg       sync.WaitGroup
	stopOnce sync.Once
	metrics  *Metrics

	// logger and slowStep drive the slow-step warning: a step whose
	// pool-side time (queue wait + commit + WAL append) reaches slowStep
	// is logged with its trace ID and stage breakdown. slowStep <= 0
	// disables the check.
	logger   *slog.Logger
	slowStep time.Duration

	// onStep, when set, runs after every successfully committed step,
	// before the result is acknowledged to the caller — the write-ahead
	// point where the durability layer journals the release. It runs on
	// the worker holding the session's scheduled token, so it may touch
	// the session's framework.
	onStep func(s *Session, res core.StepResult)
	// onSnap, when set, runs after a step's acknowledgement when onStep
	// flagged the session (Session.needSnap) — snapshot compaction is
	// pure optimisation over an already-journaled WAL, so it must not
	// sit on the ack path. Same single-writer context as onStep.
	onSnap func(s *Session)
}

func newPool(workers, maxSessions int, metrics *Metrics, logger *slog.Logger, slowStep time.Duration) *pool {
	p := &pool{
		// A session holds at most one run-queue slot; headroom covers
		// sessions evicted while scheduled.
		runq:     make(chan *Session, 2*maxSessions+16),
		quit:     make(chan struct{}),
		metrics:  metrics,
		logger:   logger,
		slowStep: slowStep,
	}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

// schedule hands a session holding the scheduled token to a worker.
func (p *pool) schedule(s *Session) {
	select {
	case p.runq <- s:
	case <-p.quit:
		// Shutdown: the server closes every session before stopping the
		// pool, which fails all pending jobs.
		s.close()
	}
}

func (p *pool) worker() {
	defer p.wg.Done()
	for {
		select {
		case s := <-p.runq:
			p.drain(s)
		case <-p.quit:
			return
		}
	}
}

// drain runs the session's pending jobs in FIFO order until the queue
// empties, then releases the scheduled token.
func (p *pool) drain(s *Session) {
	for {
		j, ok := s.pop()
		if !ok {
			return
		}
		if j.export {
			// Export: a consistent point-in-time snapshot, positioned in
			// the step stream exactly where the job sat in the FIFO. Not a
			// step — no metrics, no journaling, no LRU touch.
			snap, err := s.fw.Snapshot()
			j.done <- stepOutcome{snap: snap, err: err}
			continue
		}
		start := time.Now()
		wait := start.Sub(j.enqueued)
		res, err := s.fw.Step(j.loc)
		commit := time.Since(start)
		wal := time.Duration(-1) // -1: no durability layer ran
		if err == nil {
			s.steps.Add(1)
			if p.onStep != nil {
				ws := time.Now()
				p.onStep(s, res)
				wal = time.Since(ws)
			}
		}
		s.touch(time.Now())
		p.metrics.observeStep(j.transport, wait, commit, wal, res, err)
		switch {
		case err != nil:
			j.fail(err)
		case j.apiDone != nil:
			j.apiDone <- api.StepOutcome{Resp: toStepResponse("", res)}
		default:
			j.done <- stepOutcome{res: res}
		}
		if p.slowStep > 0 && err == nil {
			total := wait + commit
			if wal > 0 {
				total += wal
			}
			if total >= p.slowStep {
				p.logger.Warn("server: slow step",
					"trace", obs.FormatTrace(j.trace),
					"session", s.id,
					"transport", transportNames[j.transport],
					"t", res.T,
					"queue_wait_us", float64(wait)/1e3,
					"commit_us", float64(commit)/1e3,
					"wal_append_us", float64(max(wal, 0))/1e3,
					"cache_hits", res.CertCacheHits,
					"cache_misses", res.CertCacheMisses,
					"uniform", res.Uniform)
			}
		}
		if s.needSnap {
			s.needSnap = false
			if p.onSnap != nil {
				p.onSnap(s)
			}
		}
	}
}

// stop shuts the workers down and waits for them; once it returns no
// worker touches any session's framework. Jobs still queued are failed
// by the session close that must follow (Close/CloseAll), and late
// schedule() calls fail their jobs via the quit path. Idempotent.
func (p *pool) stop() {
	p.stopOnce.Do(func() {
		close(p.quit)
		p.wg.Wait()
	})
}
