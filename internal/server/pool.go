package server

import (
	"log/slog"
	"sync"
	"time"

	"priste/internal/api"
	"priste/internal/core"
	"priste/internal/obs"
	"priste/internal/par"
)

// pool is the step execution layer: a fixed set of workers pulling
// runnable sessions off a shared run queue. A session enters the run
// queue at most once (guarded by its scheduled token) and stays
// single-writer with per-session FIFO ordering while steps from many
// users run concurrently.
//
// Scheduling is batch-aware along two axes. Plan affinity: after
// finishing a session, a worker prefers up to `affinity` consecutive
// queued sessions sharing the same compiled plan, so back-to-back
// commits hit a warm plan and certified-release cache instead of
// ping-ponging between worlds; the run queue keeps a per-plan index
// next to the arrival-order list to make that dequeue O(1). Fairness:
// one visit commits at most `drainBatch` steps before the session is
// parked back at the tail of the arrival order, so a firehose stream
// (the PR 7 streaming ingest) cannot starve interactive sessions.
type pool struct {
	mu      sync.Mutex
	cond    *sync.Cond
	fifo    []*Session                // arrival order
	byPlan  map[*core.Plan][]*Session // per-plan index of the same entries
	queued  map[*Session]struct{}     // membership truth; lists are skimmed lazily
	stopped bool

	affinity   int // max consecutive same-plan picks; <= 0 disables
	drainBatch int // max steps per session visit; <= 0 unbounded

	wg       sync.WaitGroup
	stopOnce sync.Once
	metrics  *Metrics

	// logger and slowStep drive the slow-step warning: a step whose
	// pool-side time (queue wait + commit + WAL append) reaches slowStep
	// is logged with its trace ID and stage breakdown. slowStep <= 0
	// disables the check.
	logger   *slog.Logger
	slowStep time.Duration

	// onStep, when set, runs after every successfully committed step,
	// before the result is acknowledged to the caller — the write-ahead
	// point where the durability layer journals the release. It runs on
	// the worker holding the session's scheduled token, so it may touch
	// the session's framework.
	onStep func(s *Session, res core.StepResult)
	// onSnap, when set, runs after a step's acknowledgement when onStep
	// flagged the session (Session.needSnap) — snapshot compaction is
	// pure optimisation over an already-journaled WAL, so it must not
	// sit on the ack path. Same single-writer context as onStep.
	onSnap func(s *Session)
	// onRelease, when set, runs after a committed step has been
	// acknowledged — the release-stream publish point. Same
	// single-writer context as onStep, so per-session publish order is
	// commit order.
	onRelease func(s *Session, res core.StepResult)
}

func newPool(workers, affinity, drainBatch int, metrics *Metrics, logger *slog.Logger, slowStep time.Duration) *pool {
	p := &pool{
		byPlan:     make(map[*core.Plan][]*Session),
		queued:     make(map[*Session]struct{}),
		affinity:   affinity,
		drainBatch: drainBatch,
		metrics:    metrics,
		logger:     logger,
		slowStep:   slowStep,
	}
	p.cond = sync.NewCond(&p.mu)
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

// schedule hands a session holding the scheduled token to a worker.
func (p *pool) schedule(s *Session) {
	p.mu.Lock()
	if p.stopped {
		p.mu.Unlock()
		// Shutdown: the server closes every session before stopping the
		// pool, which fails all pending jobs.
		s.close()
		return
	}
	if _, ok := p.queued[s]; ok {
		p.mu.Unlock()
		return
	}
	p.queued[s] = struct{}{}
	p.fifo = append(p.fifo, s)
	if p.affinity > 0 {
		// Reading the plan pointer is safe off the worker: fw is set
		// once at construction and Plan() returns immutable state.
		plan := s.fw.Plan()
		list := p.byPlan[plan]
		// Skim entries already consumed through the arrival-order list
		// so an active plan's index stays tight.
		for len(list) > 0 {
			if _, live := p.queued[list[0]]; live {
				break
			}
			list = list[1:]
		}
		p.byPlan[plan] = append(list, s)
	}
	p.cond.Signal()
	p.mu.Unlock()
}

// next blocks until a runnable session is available and dequeues it:
// by plan affinity while the worker's current run has picks left,
// arrival order otherwise. ok false means the pool stopped.
func (p *pool) next(prevPlan *core.Plan, run int) (s *Session, viaAffinity, ok bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if p.stopped {
			return nil, false, false
		}
		if prevPlan != nil && p.affinity > 0 && run < p.affinity {
			if s := p.popPlanLocked(prevPlan); s != nil {
				p.metrics.schedAffinity.Add(1)
				return s, true, true
			}
		}
		if s := p.popFIFOLocked(); s != nil {
			p.metrics.schedFIFO.Add(1)
			return s, false, true
		}
		p.cond.Wait()
	}
}

// popFIFOLocked dequeues the oldest still-queued session, skipping
// entries already consumed through the per-plan index.
func (p *pool) popFIFOLocked() *Session {
	for len(p.fifo) > 0 {
		s := p.fifo[0]
		p.fifo = p.fifo[1:]
		if _, live := p.queued[s]; live {
			delete(p.queued, s)
			return s
		}
	}
	p.fifo = nil
	return nil
}

// popPlanLocked dequeues the oldest still-queued session of plan,
// skipping entries already consumed through the arrival-order list.
func (p *pool) popPlanLocked(plan *core.Plan) *Session {
	list := p.byPlan[plan]
	for len(list) > 0 {
		s := list[0]
		list = list[1:]
		if _, live := p.queued[s]; live {
			delete(p.queued, s)
			if len(list) == 0 {
				delete(p.byPlan, plan)
			} else {
				p.byPlan[plan] = list
			}
			return s
		}
	}
	delete(p.byPlan, plan)
	return nil
}

func (p *pool) worker() {
	defer p.wg.Done()
	var prevPlan *core.Plan
	run := 0
	for {
		s, viaAffinity, ok := p.next(prevPlan, run)
		if !ok {
			return
		}
		if viaAffinity {
			run++
		} else {
			prevPlan = s.fw.Plan()
			run = 1
		}
		if p.drain(s) {
			p.metrics.schedRequeues.Add(1)
			p.schedule(s)
		}
	}
}

// drain runs the session's pending jobs in FIFO order until the queue
// empties — releasing the scheduled token — or the drain-batch cap is
// hit, in which case the session keeps its token and drain returns
// true so the worker re-queues it behind its peers.
//
// A visit registers itself with the kernel worker pool for its duration:
// inter-session parallelism (busy drain workers) and intra-op tile
// parallelism share one CPU budget, so while enough visits run
// concurrently to cover the pool width, each session's kernels stay
// serial instead of oversubscribing the cores; a lone active session
// fans its products out across the idle budget.
func (p *pool) drain(s *Session) (requeue bool) {
	par.Default().AddExternal(1)
	defer par.Default().AddExternal(-1)
	steps := 0
	for {
		if p.drainBatch > 0 && steps >= p.drainBatch {
			return s.park()
		}
		j, ok := s.pop()
		if !ok {
			return false
		}
		steps++
		if j.export {
			// Export: a consistent point-in-time snapshot, positioned in
			// the step stream exactly where the job sat in the FIFO. Not a
			// step — no metrics, no journaling, no LRU touch.
			snap, err := s.fw.Snapshot()
			j.done <- stepOutcome{snap: snap, err: err}
			continue
		}
		start := time.Now()
		wait := start.Sub(j.enqueued)
		res, err := s.fw.Step(j.loc)
		commit := time.Since(start)
		wal := time.Duration(-1) // -1: no durability layer ran
		if err == nil {
			s.steps.Add(1)
			if p.onStep != nil {
				ws := time.Now()
				p.onStep(s, res)
				wal = time.Since(ws)
			}
		}
		s.touch(time.Now())
		p.metrics.observeStep(j.transport, wait, commit, wal, res, err)
		switch {
		case err != nil:
			j.fail(err)
		case j.apiDone != nil:
			j.apiDone <- api.StepOutcome{Resp: toStepResponse("", res)}
		default:
			j.done <- stepOutcome{res: res}
		}
		if err == nil && p.onRelease != nil {
			p.onRelease(s, res)
		}
		if p.slowStep > 0 && err == nil {
			total := wait + commit
			if wal > 0 {
				total += wal
			}
			if total >= p.slowStep {
				p.logger.Warn("server: slow step",
					"trace", obs.FormatTrace(j.trace),
					"session", s.id,
					"transport", transportNames[j.transport],
					"t", res.T,
					"queue_wait_us", float64(wait)/1e3,
					"commit_us", float64(commit)/1e3,
					"wal_append_us", float64(max(wal, 0))/1e3,
					"cache_hits", res.CertCacheHits,
					"cache_misses", res.CertCacheMisses,
					"uniform", res.Uniform)
			}
		}
		if s.needSnap {
			s.needSnap = false
			if p.onSnap != nil {
				p.onSnap(s)
			}
		}
	}
}

// stop shuts the workers down and waits for them; once it returns no
// worker touches any session's framework. Jobs still queued are failed
// by the session close that must follow (Close/CloseAll), and late
// schedule() calls fail their jobs via the stopped path. Idempotent.
func (p *pool) stop() {
	p.stopOnce.Do(func() {
		p.mu.Lock()
		p.stopped = true
		p.cond.Broadcast()
		p.mu.Unlock()
		p.wg.Wait()
	})
}
