package server

import (
	"sync"
	"time"
)

// pool is the step execution layer: a fixed set of workers pulling
// runnable sessions off a shared run queue. A session enters the run
// queue at most once (guarded by its scheduled token), and the worker
// that pops it drains its FIFO queue to empty before releasing the
// token — so steps from many users run concurrently while each session
// stays single-writer with per-session FIFO ordering.
type pool struct {
	runq    chan *Session
	quit    chan struct{}
	wg      sync.WaitGroup
	metrics *Metrics
}

func newPool(workers, maxSessions int, metrics *Metrics) *pool {
	p := &pool{
		// A session holds at most one run-queue slot; headroom covers
		// sessions evicted while scheduled.
		runq:    make(chan *Session, 2*maxSessions+16),
		quit:    make(chan struct{}),
		metrics: metrics,
	}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

// schedule hands a session holding the scheduled token to a worker.
func (p *pool) schedule(s *Session) {
	select {
	case p.runq <- s:
	case <-p.quit:
		// Shutdown: the server closes every session before stopping the
		// pool, which fails all pending jobs.
		s.close()
	}
}

func (p *pool) worker() {
	defer p.wg.Done()
	for {
		select {
		case s := <-p.runq:
			p.drain(s)
		case <-p.quit:
			return
		}
	}
}

// drain runs the session's pending steps in FIFO order until the queue
// empties, then releases the scheduled token.
func (p *pool) drain(s *Session) {
	for {
		j, ok := s.pop()
		if !ok {
			return
		}
		start := time.Now()
		res, err := s.fw.Step(j.loc)
		if err == nil {
			s.steps.Add(1)
		}
		s.touch(time.Now())
		p.metrics.observeStep(time.Since(start), res, err)
		j.done <- stepOutcome{res: res, err: err}
	}
}

// stop shuts the workers down. The caller must have closed every session
// first so no pending job is left unanswered.
func (p *pool) stop() {
	close(p.quit)
	p.wg.Wait()
}
