package server

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"priste/internal/store"
)

// durableConfig is testConfig over a file store in dir. SnapshotEvery 4
// exercises mid-run WAL compaction.
func durableConfig(t *testing.T, dir string) Config {
	t.Helper()
	st, err := store.Open(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.Store = st
	cfg.SnapshotEvery = 4
	return cfg
}

type restartUser struct {
	id    string
	seed  int64
	mech  string
	delta float64
}

var restartUsers = []restartUser{
	{id: "alice", seed: 11, mech: MechanismLaplace},
	{id: "bob", seed: 22, mech: MechanismLaplace},
	{id: "carol", seed: 33, mech: MechanismDelta, delta: 0.05},
}

func createRestartUser(t *testing.T, srv *Server, u restartUser) {
	t.Helper()
	req := CreateSessionRequest{ID: u.id, Seed: &u.seed, Mechanism: u.mech}
	if u.mech == MechanismDelta {
		d := u.delta
		req.Delta = &d
	}
	if _, err := srv.CreateSession(req); err != nil {
		t.Fatalf("create %s: %v", u.id, err)
	}
}

// stepAll steps every user once per timestamp in [from, to) and returns
// the results keyed by user then timestamp offset.
func stepAll(t *testing.T, srv *Server, from, to int) map[string][]StepResponse {
	t.Helper()
	m := srv.Config().GridW * srv.Config().GridH
	out := make(map[string][]StepResponse)
	for k := from; k < to; k++ {
		for ui, u := range restartUsers {
			loc := (k*7 + ui*3) % m // deterministic trajectory per user
			res, err := srv.Step(bg, u.id, loc)
			if err != nil {
				t.Fatalf("%s step %d: %v", u.id, k, err)
			}
			out[u.id] = append(out[u.id], res)
		}
	}
	return out
}

func sameSteps(t *testing.T, label string, got, want []StepResponse) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d steps, want %d", label, len(got), len(want))
	}
	for k := range want {
		g, w := got[k], want[k]
		if g.T != w.T || g.Obs != w.Obs || g.Alpha != w.Alpha ||
			g.Attempts != w.Attempts || g.Uniform != w.Uniform {
			t.Errorf("%s step %d: got %+v, want %+v", label, k, g, w)
		}
	}
}

// TestRestartEquivalence is the acceptance check: sessions stepped N
// times, snapshotted and shut down, then rehydrated by a fresh server
// over the same store, must release the next M steps seed-for-seed
// identically to an uninterrupted run — for both the shared-plan planar
// Laplace sessions and the stateful δ-location-set one.
func TestRestartEquivalence(t *testing.T) {
	const pre, post = 6, 6

	// Uninterrupted reference over an in-memory server.
	ref := newTestServer(t, testConfig())
	for _, u := range restartUsers {
		createRestartUser(t, ref, u)
	}
	want := stepAll(t, ref, 0, pre)
	for id, more := range stepAll(t, ref, pre, pre+post) {
		want[id] = append(want[id], more...)
	}

	// Durable run, interrupted by a graceful shutdown after pre steps.
	dir := t.TempDir()
	srvA, err := New(durableConfig(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range restartUsers {
		createRestartUser(t, srvA, u)
	}
	gotPre := stepAll(t, srvA, 0, pre)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srvA.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	// Restart: a fresh server over the same directory rehydrates all
	// three sessions and continues them.
	srvB := newTestServer(t, durableConfig(t, dir))
	st := srvB.Stats()
	if st.Store.Replayed != int64(len(restartUsers)) || st.Store.ReplayFailures != 0 {
		t.Fatalf("replayed = %d (failures %d), want %d", st.Store.Replayed, st.Store.ReplayFailures, len(restartUsers))
	}
	for _, u := range restartUsers {
		info, err := srvB.GetSession(u.id)
		if err != nil {
			t.Fatalf("rehydrated %s: %v", u.id, err)
		}
		if info.T != pre {
			t.Fatalf("rehydrated %s at T=%d, want %d", u.id, info.T, pre)
		}
		if info.Mechanism != u.mech {
			t.Fatalf("rehydrated %s mechanism %q, want %q", u.id, info.Mechanism, u.mech)
		}
	}
	gotPost := stepAll(t, srvB, pre, pre+post)
	for _, u := range restartUsers {
		sameSteps(t, u.id+" (pre)", gotPre[u.id], want[u.id][:pre])
		sameSteps(t, u.id+" (post-restart)", gotPost[u.id], want[u.id][pre:])
	}
}

// TestCrashRecovery checks WAL-only rehydration: the first server is
// abandoned without Shutdown (no final snapshot, no cache save — the
// in-process equivalent of a crash; the CI smoke test covers a real
// kill -9), so recovery replays the write-ahead log alone.
func TestCrashRecovery(t *testing.T) {
	const pre, post = 5, 5
	ref := newTestServer(t, testConfig())
	for _, u := range restartUsers {
		createRestartUser(t, ref, u)
	}
	want := stepAll(t, ref, 0, pre)
	for id, more := range stepAll(t, ref, pre, pre+post) {
		want[id] = append(want[id], more...)
	}

	dir := t.TempDir()
	cfgA := durableConfig(t, dir)
	cfgA.SnapshotEvery = -1 // never snapshot: recovery is pure WAL replay
	srvA, err := New(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range restartUsers {
		createRestartUser(t, srvA, u)
	}
	stepAll(t, srvA, 0, pre)
	// "Crash": close the raw store files without flushing any session
	// state, then abandon the server.
	srvA.Close()

	srvB := newTestServer(t, durableConfig(t, dir))
	if st := srvB.Stats(); st.Store.Replayed != int64(len(restartUsers)) {
		t.Fatalf("replayed = %d, want %d", st.Store.Replayed, len(restartUsers))
	}
	gotPost := stepAll(t, srvB, pre, pre+post)
	for _, u := range restartUsers {
		sameSteps(t, u.id+" (post-crash)", gotPost[u.id], want[u.id][pre:])
	}
}

// TestTombstonedSessionsStayDead: explicitly deleted sessions must not
// be rehydrated, while their peers are.
func TestTombstonedSessionsStayDead(t *testing.T) {
	dir := t.TempDir()
	srvA, err := New(durableConfig(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range restartUsers {
		createRestartUser(t, srvA, u)
	}
	stepAll(t, srvA, 0, 3)
	if err := srvA.DeleteSession("bob"); err != nil {
		t.Fatalf("delete bob: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srvA.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	srvB := newTestServer(t, durableConfig(t, dir))
	if _, err := srvB.GetSession("bob"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted session resurrected: %v", err)
	}
	for _, id := range []string{"alice", "carol"} {
		if info, err := srvB.GetSession(id); err != nil || info.T != 3 {
			t.Fatalf("%s: %+v, %v; want T=3", id, info, err)
		}
	}
}

// TestWarmCacheRestart: the certified-release cache saved at shutdown is
// injected into the restarted server's cache when the matching plan
// compiles, surfacing as warm_loaded in /statsz.
func TestWarmCacheRestart(t *testing.T) {
	dir := t.TempDir()
	srvA, err := New(durableConfig(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	seed := int64(5)
	if _, err := srvA.CreateSession(CreateSessionRequest{ID: "u", Seed: &seed}); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 6; k++ {
		if _, err := srvA.Step(bg, "u", k%36); err != nil {
			t.Fatal(err)
		}
	}
	if n := srvA.Plans().Cache().Len(); n == 0 {
		t.Fatal("no certified decisions cached — test premise broken")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srvA.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	// Rehydration recompiles the plan, which pulls the persisted entries
	// into the fresh cache.
	srvB := newTestServer(t, durableConfig(t, dir))
	st := srvB.Stats()
	if st.Store.WarmLoaded == 0 {
		t.Fatalf("warm_loaded = 0 after restart; stats = %+v", st.Store)
	}
	if got := srvB.Plans().Cache().Len(); got == 0 {
		t.Fatal("restarted cache is cold")
	}
	// Warm verdicts must not change behaviour: the restarted session's
	// next steps still match a cold uninterrupted run.
	ref := newTestServer(t, testConfig())
	if _, err := ref.CreateSession(CreateSessionRequest{ID: "u", Seed: &seed}); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 6; k++ {
		if _, err := ref.Step(bg, "u", k%36); err != nil {
			t.Fatal(err)
		}
	}
	for k := 6; k < 10; k++ {
		got, err := srvB.Step(bg, "u", k%36)
		if err != nil {
			t.Fatal(err)
		}
		wantRes, err := ref.Step(bg, "u", k%36)
		if err != nil {
			t.Fatal(err)
		}
		if got.Obs != wantRes.Obs || got.Alpha != wantRes.Alpha || got.Attempts != wantRes.Attempts {
			t.Fatalf("warm step %d: got %+v, want %+v", k, got, wantRes)
		}
	}
}

// TestWorldMismatchRefusesReplay: sessions journaled under one world
// model must not replay into a server running a different one — the
// certified verdicts would be meaningless — and the journals must
// survive for a restart under the original world.
func TestWorldMismatchRefusesReplay(t *testing.T) {
	dir := t.TempDir()
	srvA, err := New(durableConfig(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	seed := int64(4)
	if _, err := srvA.CreateSession(CreateSessionRequest{ID: "u", Seed: &seed}); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 3; k++ {
		if _, err := srvA.Step(bg, "u", k); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srvA.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	// Same store, different mobility model: replay must be refused.
	cfgB := durableConfig(t, dir)
	cfgB.Sigma = 2.5
	srvB, err := New(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	st := srvB.Stats()
	if st.Store.Replayed != 0 || st.Store.ReplayFailures != 1 {
		t.Fatalf("cross-world replay: %+v, want 0 replayed / 1 failure", st.Store)
	}
	if st.Store.WarmLoaded != 0 {
		t.Fatal("cross-world warm cache entries injected")
	}
	srvB.Close()

	// The journal survived the mismatch: the original world recovers it.
	srvC := newTestServer(t, durableConfig(t, dir))
	if info, err := srvC.GetSession("u"); err != nil || info.T != 3 {
		t.Fatalf("after returning to the original world: %+v, %v; want T=3", info, err)
	}
}

// TestDuplicateCreateKeepsJournal: a duplicate create against a durable
// server must be rejected without touching the live session's WAL.
func TestDuplicateCreateKeepsJournal(t *testing.T) {
	dir := t.TempDir()
	srvA, err := New(durableConfig(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	seed := int64(9)
	if _, err := srvA.CreateSession(CreateSessionRequest{ID: "u", Seed: &seed}); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 3; k++ {
		if _, err := srvA.Step(bg, "u", k); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := srvA.CreateSession(CreateSessionRequest{ID: "u"}); !errors.Is(err, ErrSessionExists) {
		t.Fatalf("duplicate create: %v, want ErrSessionExists", err)
	}
	// The journal survived the rejected duplicate: the session still
	// steps and restarts at T=4.
	if _, err := srvA.Step(bg, "u", 3); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srvA.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	srvB := newTestServer(t, durableConfig(t, dir))
	if info, err := srvB.GetSession("u"); err != nil || info.T != 4 {
		t.Fatalf("after restart: %+v, %v; want T=4", info, err)
	}
}

// TestRehydrateOverCapacityKeepsJournals: restarting with a smaller
// session cap evicts the overflow from memory but must not tombstone
// its journals — a later restart at full capacity recovers everything.
func TestRehydrateOverCapacityKeepsJournals(t *testing.T) {
	const total = 6
	dir := t.TempDir()
	srvA, err := New(durableConfig(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < total; i++ {
		seed := int64(i + 1)
		id := fmt.Sprintf("u%d", i)
		if _, err := srvA.CreateSession(CreateSessionRequest{ID: id, Seed: &seed}); err != nil {
			t.Fatal(err)
		}
		if _, err := srvA.Step(bg, id, i); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srvA.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	// Squeezed restart: only 2 sessions fit in memory.
	cfgB := durableConfig(t, dir)
	cfgB.MaxSessions = 2
	srvB, err := New(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	if n := srvB.Sessions().Len(); n != 2 {
		t.Fatalf("squeezed server holds %d sessions, want 2", n)
	}
	if tombs := srvB.Stats().Store.Tombstones; tombs != 0 {
		t.Fatalf("startup eviction tombstoned %d journals", tombs)
	}
	// Orphans — journaled but evicted from memory — must not wedge their
	// ids, and their history must never be silently truncated: a direct
	// re-create is refused (the journal survives), while an explicit
	// DELETE reclaims the id for a fresh start.
	var orphans []string
	for i := 0; i < total; i++ {
		id := fmt.Sprintf("u%d", i)
		if _, err := srvB.GetSession(id); errors.Is(err, ErrNotFound) {
			orphans = append(orphans, id)
		}
	}
	if len(orphans) != total-2 {
		t.Fatalf("%d orphans, want %d", len(orphans), total-2)
	}
	if err := srvB.DeleteSession(orphans[0]); err != nil {
		t.Fatalf("delete of orphan %s failed: %v", orphans[0], err)
	}
	seed := int64(99)
	if _, err := srvB.CreateSession(CreateSessionRequest{ID: orphans[1], Seed: &seed}); !errors.Is(err, ErrSessionExists) {
		t.Fatalf("re-create over a surviving journal: %v, want ErrSessionExists", err)
	}
	if err := srvB.DeleteSession(orphans[1]); err != nil {
		t.Fatalf("delete of orphan %s failed: %v", orphans[1], err)
	}
	if _, err := srvB.CreateSession(CreateSessionRequest{ID: orphans[1], Seed: &seed}); err != nil {
		t.Fatalf("re-create after explicit delete: %v", err)
	}
	if _, err := srvB.Step(bg, orphans[1], 0); err != nil {
		t.Fatal(err)
	}
	srvB.Close()

	// Full-capacity restart: the deleted orphan is gone; the re-create
	// pushed the squeezed server past capacity again, so one live victim
	// was evicted and (correctly) tombstoned — leaving total-2 journals:
	// the re-created orphan at T=1, the untouched orphans, and the
	// surviving live session.
	srvC := newTestServer(t, durableConfig(t, dir))
	if st := srvC.Stats(); st.Store.Replayed != total-2 {
		t.Fatalf("replayed = %d after capacity squeeze, want %d", st.Store.Replayed, total-2)
	}
	if _, err := srvC.GetSession(orphans[0]); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted orphan resurrected: %v", err)
	}
	if info, err := srvC.GetSession(orphans[1]); err != nil || info.T != 1 {
		t.Fatalf("re-created orphan: %+v, %v; want T=1", info, err)
	}
}

// TestWarmEntriesSurviveUntouchedRestart: persisted cache entries for a
// plan that a whole server life never recompiles must carry over to the
// next save instead of eroding away.
func TestWarmEntriesSurviveUntouchedRestart(t *testing.T) {
	dir := t.TempDir()
	srvA, err := New(durableConfig(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	seed := int64(3)
	// Two distinct plans: the default-ε session survives; the ε=0.9
	// session is deleted so its plan never recompiles in life B.
	if _, err := srvA.CreateSession(CreateSessionRequest{ID: "keep", Seed: &seed}); err != nil {
		t.Fatal(err)
	}
	if _, err := srvA.CreateSession(CreateSessionRequest{ID: "drop", Seed: &seed, Epsilon: 0.9}); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 5; k++ {
		if _, err := srvA.Step(bg, "keep", k); err != nil {
			t.Fatal(err)
		}
		if _, err := srvA.Step(bg, "drop", k); err != nil {
			t.Fatal(err)
		}
	}
	_ = srvA.DeleteSession("drop")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srvA.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	// Life B rehydrates only "keep": the ε=0.9 entries stay parked and
	// must survive B's own shutdown save.
	srvB, err := New(durableConfig(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := srvB.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	// Life C: compiling the ε=0.9 plan must inject the carried entries.
	srvC := newTestServer(t, durableConfig(t, dir))
	base := srvC.Plans().WarmLoaded()
	if _, err := srvC.CreateSession(CreateSessionRequest{ID: "fresh", Epsilon: 0.9}); err != nil {
		t.Fatal(err)
	}
	if got := srvC.Plans().WarmLoaded(); got <= base {
		t.Fatalf("warm entries for the untouched plan eroded: warm_loaded %d -> %d", base, got)
	}
}

// TestGracefulShutdownDrains: steps accepted before Shutdown complete
// successfully (not ErrSessionClosed), while requests arriving during
// the drain are rejected with ErrDraining.
func TestGracefulShutdownDrains(t *testing.T) {
	const pending = 10
	dir := t.TempDir()
	cfg := durableConfig(t, dir)
	cfg.Workers = 1 // serialise so the queue stays busy during Shutdown
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seed := int64(1)
	if _, err := srv.CreateSession(CreateSessionRequest{ID: "u", Seed: &seed}); err != nil {
		t.Fatal(err)
	}
	dones := make([]chan stepOutcome, pending)
	for i := range dones {
		done, err := srv.stepAsync(context.Background(), "u", i%36)
		if err != nil {
			t.Fatalf("enqueue %d: %v", i, err)
		}
		dones[i] = done
	}
	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()
	for i, done := range dones {
		out := <-done
		if out.err != nil {
			t.Fatalf("pending step %d died during graceful shutdown: %v", i, out.err)
		}
		if out.res.T != i {
			t.Fatalf("step %d served T=%d", i, out.res.T)
		}
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if _, err := srv.stepAsync(context.Background(), "u", 0); !errors.Is(err, ErrDraining) {
		t.Fatalf("step after shutdown: %v, want ErrDraining", err)
	}
	if _, err := srv.CreateSession(CreateSessionRequest{ID: "v"}); !errors.Is(err, ErrDraining) {
		t.Fatalf("create after shutdown: %v, want ErrDraining", err)
	}

	// All 10 steps were journaled: a restart resumes at T=10.
	srvB := newTestServer(t, durableConfig(t, dir))
	info, err := srvB.GetSession("u")
	if err != nil || info.T != pending {
		t.Fatalf("after drain+restart: %+v, %v; want T=%d", info, err, pending)
	}
}

// TestDurableImportSurvivesRestart: a session imported into a durable
// server is journaled atomically (snapshot + fresh WAL under a new
// generation), so a restart straight after the import — and further
// steps before and after it — recover the full migrated history and
// continue seed-for-seed identically to an unmigrated run.
func TestDurableImportSurvivesRestart(t *testing.T) {
	const pre, post = 5, 4
	seed := int64(23)
	traj := func(k int) int { return (k * 5) % 36 }

	// Unmigrated reference.
	ref := newTestServer(t, testConfig())
	if _, err := ref.CreateSession(CreateSessionRequest{ID: "mig", Seed: &seed}); err != nil {
		t.Fatal(err)
	}
	var want []StepResponse
	for k := 0; k < pre+post; k++ {
		res, err := ref.Step(bg, "mig", traj(k))
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, res)
	}

	// Source instance: in-memory is fine, the export carries everything.
	srvA := newTestServer(t, testConfig())
	if _, err := srvA.CreateSession(CreateSessionRequest{ID: "mig", Seed: &seed}); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < pre; k++ {
		if _, err := srvA.Step(bg, "mig", traj(k)); err != nil {
			t.Fatal(err)
		}
	}
	exp, err := srvA.ExportSession(context.Background(), "mig")
	if err != nil {
		t.Fatal(err)
	}

	// Durable target: import, step once, then crash (no graceful
	// shutdown) — recovery must see the imported history plus the step.
	dir := t.TempDir()
	srvB, err := New(durableConfig(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	info, err := srvB.ImportSession(exp)
	if err != nil {
		t.Fatalf("import: %v", err)
	}
	if info.T != pre {
		t.Fatalf("imported at T=%d, want %d", info.T, pre)
	}
	got, err := srvB.Step(bg, "mig", traj(pre))
	if err != nil {
		t.Fatal(err)
	}
	w := want[pre]
	if got.Obs != w.Obs || got.Alpha != w.Alpha {
		t.Fatalf("first post-import step diverged: %+v vs %+v", got, w)
	}
	srvB.Close() // crash-style: WAL replay only

	srvC := newTestServer(t, durableConfig(t, dir))
	if st := srvC.Stats(); st.Store.Replayed != 1 || st.Store.ReplayFailures != 0 {
		t.Fatalf("restart after import: %+v", st.Store)
	}
	for k := pre + 1; k < pre+post; k++ {
		got, err := srvC.Step(bg, "mig", traj(k))
		if err != nil {
			t.Fatal(err)
		}
		w := want[k]
		if got.T != w.T || got.Obs != w.Obs || got.Alpha != w.Alpha ||
			got.Attempts != w.Attempts || got.Uniform != w.Uniform {
			t.Fatalf("post-restart step %d: got %+v, want %+v", k, got, w)
		}
	}
}
