package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"priste/internal/api"
	"priste/internal/obs"
)

// syncBuffer is a goroutine-safe log sink: pool workers emit slow-step
// warnings concurrently with the test's assertions.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestTraceRoundTrip: a client-supplied trace ID must survive the whole
// pipeline — client context, transport encoding (HTTP header / RPC
// frame field), enqueue, worker — and come out in the server's
// slow-step log line with the right transport attribution. SlowStep of
// 1ns makes every step "slow", turning the log into the test probe.
func TestTraceRoundTrip(t *testing.T) {
	var logBuf syncBuffer
	mkcfg := func(t *testing.T) Config {
		cfg := testConfig()
		cfg.SlowStep = time.Nanosecond
		level, err := obs.ParseLevel("warn")
		if err != nil {
			t.Fatal(err)
		}
		cfg.Logger = obs.NewLogger(&logBuf, obs.LogJSON, level)
		return cfg
	}
	forEachTransport(t, mkcfg, func(t *testing.T, srv *Server, client api.Client) {
		trace := obs.NewTraceID()
		ctx := obs.WithTrace(context.Background(), trace)
		if _, err := client.CreateSession(ctx, CreateSessionRequest{ID: "traced"}); err != nil {
			t.Fatal(err)
		}
		if _, err := client.Step(ctx, "traced", 3); err != nil {
			t.Fatal(err)
		}
		want := obs.FormatTrace(trace)
		// The slow-step warning is written after the step's response is
		// delivered, so poll for it.
		waitFor(t, func() bool { return strings.Contains(logBuf.String(), want) })
		// The line carrying our trace must attribute the step to the
		// transport under test (the subtest name).
		transport := t.Name()[strings.LastIndexByte(t.Name(), '/')+1:]
		for _, line := range strings.Split(logBuf.String(), "\n") {
			if !strings.Contains(line, want) {
				continue
			}
			var entry map[string]any
			if err := json.Unmarshal([]byte(line), &entry); err != nil {
				t.Fatalf("slow-step line is not JSON: %q: %v", line, err)
			}
			if entry["transport"] != transport {
				t.Fatalf("slow-step transport = %v, want %q (line %q)", entry["transport"], transport, line)
			}
			if entry["session"] != "traced" {
				t.Fatalf("slow-step session = %v (line %q)", entry["session"], line)
			}
			return
		}
		t.Fatalf("no slow-step line carries trace %s:\n%s", want, logBuf.String())
	})
}

// TestHTTPTraceHeader: the HTTP transport echoes the effective trace —
// the client's when supplied and well-formed, a server-generated one
// otherwise.
func TestHTTPTraceHeader(t *testing.T) {
	srv := newTestServer(t, testConfig())
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	req.Header.Set(obs.TraceHeader, "00000000deadbeef")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get(obs.TraceHeader); got != "00000000deadbeef" {
		t.Fatalf("trace echo = %q, want the supplied ID", got)
	}

	// Absent or malformed → a fresh, well-formed, nonzero ID.
	for _, supplied := range []string{"", "not-hex!"} {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
		if supplied != "" {
			req.Header.Set(obs.TraceHeader, supplied)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		got := resp.Header.Get(obs.TraceHeader)
		if obs.ParseTrace(got) == 0 {
			t.Fatalf("supplied %q: response trace %q is not a valid generated ID", supplied, got)
		}
	}
}

// TestHealthzDraining: /healthz flips to 503 + "draining" once graceful
// shutdown starts, and reports uptime and build info while healthy.
func TestHealthzDraining(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = -1 // no pool: nothing to drain, Shutdown won't block
	srv := newTestServer(t, cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	get := func() (int, api.Health) {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var h api.Health
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, h
	}

	code, h := get()
	if code != http.StatusOK || h.Status != "ok" {
		t.Fatalf("healthy probe = %d %q", code, h.Status)
	}
	if h.UptimeSeconds < 0 || h.Version == "" || h.GoVersion == "" {
		t.Fatalf("health missing build info: %+v", h)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	code, h = get()
	if code != http.StatusServiceUnavailable || h.Status != "draining" {
		t.Fatalf("draining probe = %d %q, want 503 draining", code, h.Status)
	}
}

// TestMetricsEndpoint drives real steps over HTTP and asserts the
// Prometheus exposition carries the series the README documents, with
// counts that match the work done.
func TestMetricsEndpoint(t *testing.T) {
	srv := newTestServer(t, testConfig())
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	client := NewClient(ts.URL, nil)

	ctx := context.Background()
	if _, err := client.CreateSession(ctx, CreateSessionRequest{ID: "m"}); err != nil {
		t.Fatal(err)
	}
	const steps = 5
	for i := 0; i < steps; i++ {
		if _, err := client.Step(ctx, "m", i); err != nil {
			t.Fatal(err)
		}
	}

	resp, err := http.Get(ts.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)

	for _, want := range []string{
		"priste_steps_served_total 5",
		"priste_sessions_live 1",
		"priste_sessions_created_total 1",
		`priste_step_served_seconds_count{transport="http"} 5`,
		`priste_step_stage_seconds_count{stage="decode",transport="http"} 5`,
		`priste_step_stage_seconds_count{stage="queue_wait",transport="http"} 5`,
		`priste_step_stage_seconds_count{stage="encode",transport="http"} 5`,
		"# TYPE priste_step_stage_seconds histogram",
		"# TYPE priste_steps_served_total counter",
		"priste_plans_live 1",
		"priste_cert_cache_hits_total",
		"go_goroutines",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// Every step ran the engine exactly once: the per-transport commit
	// histograms (hit + miss) must count 5 total.
	hitMiss := 0
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, `priste_step_stage_seconds_count{stage="commit_`) && strings.Contains(line, `transport="http"`) {
			v, err := strconv.ParseFloat(line[strings.LastIndexByte(line, ' ')+1:], 64)
			if err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			hitMiss += int(v)
		}
	}
	if hitMiss != steps {
		t.Errorf("commit hit+miss count = %d, want %d\n%s", hitMiss, steps, body)
	}
}
