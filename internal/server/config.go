package server

import (
	"fmt"
	"log/slog"
	"math"
	"runtime"
	"time"

	"priste/internal/store"
	"priste/internal/world"
)

// Default service limits.
const (
	DefaultMaxSessions = 4096
	DefaultSessionTTL  = 15 * time.Minute
	DefaultQueueDepth  = 64
	// DefaultCertCacheSize bounds the shared certified-release cache
	// (entries across all shards).
	DefaultCertCacheSize = 1 << 16
	// DefaultSnapshotEvery is the snapshot cadence: a session's WAL is
	// compacted into a snapshot every this many committed steps.
	DefaultSnapshotEvery = 256
	// DefaultSlowStep is the served-step duration at which the worker
	// pool logs a slow-step warning with the step's stage breakdown.
	DefaultSlowStep = 500 * time.Millisecond
	// DefaultSchedAffinity is the scheduler's plan-affinity run length:
	// after draining a session, a worker serves up to this many more
	// queued sessions sharing the same plan (warm plan + cert cache)
	// before falling back to arrival order.
	DefaultSchedAffinity = 8
	// DefaultDrainBatch caps the steps one worker visit commits for a
	// single session before the session is parked back at the tail of
	// the run queue — the fairness bound that keeps one firehose stream
	// from starving other sessions.
	DefaultDrainBatch = 64
	// DefaultStreamBuffer is the per-subscriber release buffer of the
	// SSE stream; a subscriber that falls this many releases behind is
	// dropped rather than allowed to backpressure the commit path.
	DefaultStreamBuffer = 256
)

// Config describes one pristed deployment: the shared world model every
// session lives in (map, mobility), the per-session privacy defaults
// (mechanism, budget, protected events), and the service limits (session
// cap, idle TTL, worker pool, queue depth). Sessions may override the
// privacy defaults at creation time; the world model is fixed for the
// lifetime of the server.
type Config struct {
	// GridW, GridH are the map dimensions; Cell is the cell edge length
	// in user units (e.g. km).
	GridW, GridH int
	Cell         float64
	// Sigma is the Gaussian scale of the synthetic mobility model shared
	// by all sessions (§V-A).
	Sigma float64

	// Epsilon and Alpha are the default ε-spatiotemporal event privacy
	// level and initial LPPM budget for new sessions.
	Epsilon float64
	Alpha   float64
	// Mechanism is the default LPPM: MechanismLaplace or MechanismDelta.
	Mechanism string
	// Delta is the δ-location-set parameter used when Mechanism is
	// MechanismDelta.
	Delta float64
	// Events are the default protected-event specs ("LO-HI@START-END",
	// see internal/eventspec) for sessions that do not supply their own.
	Events []string
	// QPTimeout is the conservative-release threshold passed to the core
	// release loop; zero means no limit (fully deterministic stepping).
	QPTimeout time.Duration

	// SparseCutoff, when positive, drops mobility-chain transition
	// probabilities below cutoff×(row maximum) and renormalises each row
	// at startup (markov.Chain.Sparsified). The Gaussian kernel is
	// mathematically dense, so without a cutoff the quantifier runs on
	// the dense kernels; a small cutoff (e.g. 1e-4) makes the chain
	// structurally sparse and the release loop O(m·nnz) instead of
	// O(m³) per commit. Changing the cutoff changes the world model:
	// persisted sessions are scoped to it (see worldTag).
	SparseCutoff float64
	// Kernel selects the transition-kernel compilation mode:
	// KernelAuto (default, empty string), KernelDense, KernelSparse or
	// KernelOracle (the naive reference kernels, for regression
	// comparison). All modes are bit-for-bit equivalent; forcing one is
	// a performance/regression knob, not a semantic one — which is why,
	// like Kernel, it does not enter the plan-registry key.
	Kernel string
	// Shadow enables the float32 shadow check path on every compiled
	// plan (core.Config.Shadow): candidate checks run against float32
	// operator copies and are decided directly when the qp margin
	// exceeds the certified error bound, falling back to the exact
	// float64 check otherwise. Released sequences are identical with
	// and without it, so it is not part of the plan key either.
	Shadow bool

	// Parallelism fixes the width of the process-global kernel worker
	// pool the quantifier commits fan their tile-parallel products out
	// on (`pristed -parallel`). 0 = auto: the pool tracks GOMAXPROCS.
	// Parallel and serial kernels are bit-identical, so this never
	// changes releases, fingerprints or replay — it only decides how
	// many cores one commit may occupy when the drain workers leave
	// budget free (see /statsz "pool").
	Parallelism int

	// MaxSessions caps live sessions; creating one more evicts the least
	// recently used session. Default DefaultMaxSessions.
	MaxSessions int
	// SessionTTL evicts sessions idle for longer than this. Zero uses
	// DefaultSessionTTL; negative disables idle eviction.
	SessionTTL time.Duration
	// Workers sizes the step worker pool. Zero uses GOMAXPROCS; negative
	// starts no workers (test hook: enqueued steps are never drained).
	Workers int
	// QueueDepth bounds each session's pending-step queue; an enqueue on
	// a full queue fails with ErrQueueFull (HTTP 429). Default
	// DefaultQueueDepth.
	QueueDepth int
	// CertCacheSize bounds the certified-release cache shared by every
	// session whose mechanism is history-independent (entries). Zero uses
	// DefaultCertCacheSize; negative disables the cache (every release
	// condition is re-solved).
	CertCacheSize int
	// SchedAffinity is the scheduler's plan-affinity run length: how
	// many consecutive same-plan sessions a worker may pick off the run
	// queue before reverting to arrival order. Zero uses
	// DefaultSchedAffinity; negative disables affinity scheduling
	// (pure FIFO).
	SchedAffinity int
	// DrainBatch caps the steps one worker visit commits for a single
	// session before parking it back at the run-queue tail. Zero uses
	// DefaultDrainBatch; negative removes the cap (a visit drains the
	// session's queue to empty, the pre-PR7 behaviour).
	DrainBatch int
	// StreamBuffer is the per-subscriber buffered-release depth of the
	// SSE release stream; a subscriber that lags this far behind the
	// commit stream is disconnected. Zero uses DefaultStreamBuffer.
	StreamBuffer int

	// Store is the session durability backend: committed releases are
	// journaled to a per-session WAL write-ahead of the step response,
	// periodically compacted into snapshots, and surviving sessions are
	// rehydrated on startup. Nil runs in-memory only (store.Null).
	Store store.Store
	// SnapshotEvery compacts a session's WAL into a snapshot every this
	// many committed steps. Zero uses DefaultSnapshotEvery; negative
	// disables periodic snapshots (the WAL still makes sessions
	// recoverable — replay just reads a longer log).
	SnapshotEvery int

	// Logger receives the server's structured logs: replay failures,
	// WAL append/snapshot errors, slow steps. Nil discards them (the
	// library default; cmd/pristed always installs one).
	Logger *slog.Logger
	// SlowStep is the pool-side step duration (queue wait + commit +
	// WAL append) at or above which a warning with the step's trace ID
	// and stage breakdown is logged. Zero uses DefaultSlowStep;
	// negative disables slow-step logging.
	SlowStep time.Duration
}

// Mechanism names accepted by Config and session-creation requests.
const (
	MechanismLaplace = "laplace"
	MechanismDelta   = "delta"
)

// Kernel modes accepted by Config.Kernel.
const (
	KernelAuto   = "auto"
	KernelDense  = "dense"
	KernelSparse = "sparse"
	KernelOracle = "oracle"
)

// kernelMode maps the config string onto the world compilation mode.
func (c Config) kernelMode() (world.KernelMode, error) {
	switch c.Kernel {
	case "", KernelAuto:
		return world.KernelAuto, nil
	case KernelDense:
		return world.KernelDense, nil
	case KernelSparse:
		return world.KernelSparse, nil
	case KernelOracle:
		return world.KernelOracle, nil
	default:
		return 0, fmt.Errorf("server: unknown kernel mode %q (want %q, %q, %q or %q)",
			c.Kernel, KernelAuto, KernelDense, KernelSparse, KernelOracle)
	}
}

// DefaultConfig returns a small default deployment: 10×10 km map,
// unit-scale Gaussian mobility, geo-indistinguishability at ε=0.5, α=1,
// protecting PRESENCE over states 0..9 during timestamps 3..7.
func DefaultConfig() Config {
	return Config{
		GridW:     10,
		GridH:     10,
		Cell:      1.0,
		Sigma:     1.0,
		Epsilon:   0.5,
		Alpha:     1.0,
		Mechanism: MechanismLaplace,
		Delta:     0.05,
		Events:    []string{"0-9@3-7"},
		QPTimeout: time.Second,
	}
}

func (c Config) withDefaults() Config {
	if c.MaxSessions <= 0 {
		c.MaxSessions = DefaultMaxSessions
	}
	if c.SessionTTL == 0 {
		c.SessionTTL = DefaultSessionTTL
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = DefaultQueueDepth
	}
	if c.CertCacheSize == 0 {
		c.CertCacheSize = DefaultCertCacheSize
	}
	if c.Mechanism == "" {
		c.Mechanism = MechanismLaplace
	}
	if c.Store == nil {
		c.Store = store.Null{}
	}
	if c.SnapshotEvery == 0 {
		c.SnapshotEvery = DefaultSnapshotEvery
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.DiscardHandler)
	}
	if c.SlowStep == 0 {
		c.SlowStep = DefaultSlowStep
	}
	if c.SchedAffinity == 0 {
		c.SchedAffinity = DefaultSchedAffinity
	}
	if c.DrainBatch == 0 {
		c.DrainBatch = DefaultDrainBatch
	}
	if c.StreamBuffer <= 0 {
		c.StreamBuffer = DefaultStreamBuffer
	}
	return c
}

func (c Config) validate() error {
	if c.GridW <= 0 || c.GridH <= 0 {
		return fmt.Errorf("server: grid %dx%d must be positive", c.GridW, c.GridH)
	}
	if c.Cell <= 0 || math.IsNaN(c.Cell) {
		return fmt.Errorf("server: cell size must be positive, got %g", c.Cell)
	}
	if c.Sigma <= 0 || math.IsNaN(c.Sigma) {
		return fmt.Errorf("server: sigma must be positive, got %g", c.Sigma)
	}
	if c.Epsilon <= 0 || math.IsNaN(c.Epsilon) || math.IsInf(c.Epsilon, 0) {
		return fmt.Errorf("server: epsilon must be positive and finite, got %g", c.Epsilon)
	}
	if c.Alpha <= 0 || math.IsNaN(c.Alpha) || math.IsInf(c.Alpha, 0) {
		return fmt.Errorf("server: alpha must be positive and finite, got %g", c.Alpha)
	}
	switch c.Mechanism {
	case MechanismLaplace:
	case MechanismDelta:
		if c.Delta < 0 || c.Delta >= 1 || math.IsNaN(c.Delta) {
			return fmt.Errorf("server: delta must lie in [0,1), got %g", c.Delta)
		}
	default:
		return fmt.Errorf("server: unknown mechanism %q (want %q or %q)", c.Mechanism, MechanismLaplace, MechanismDelta)
	}
	if c.SparseCutoff < 0 || c.SparseCutoff >= 1 || math.IsNaN(c.SparseCutoff) {
		return fmt.Errorf("server: sparse cutoff %g outside [0,1)", c.SparseCutoff)
	}
	if _, err := c.kernelMode(); err != nil {
		return err
	}
	if c.Parallelism < 0 {
		return fmt.Errorf("server: parallelism must be >= 0, got %d", c.Parallelism)
	}
	if len(c.Events) == 0 {
		return fmt.Errorf("server: at least one default event spec is required")
	}
	return nil
}
