package server

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// newClientHarness spins up a server behind httptest and returns a typed
// client against it.
func newClientHarness(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	srv := newTestServer(t, cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, NewClient(ts.URL, nil)
}

func wantStatus(t *testing.T, err error, status int, label string) {
	t.Helper()
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("%s: err = %v, want APIError %d", label, err, status)
	}
	if apiErr.Status != status {
		t.Fatalf("%s: status = %d (%s), want %d", label, apiErr.Status, apiErr.Message, status)
	}
	if apiErr.Message == "" {
		t.Fatalf("%s: error envelope carried no message", label)
	}
}

// TestClientErrorMapping covers the client-visible mapping of every
// session-layer sentinel: 404 unknown, 409 duplicate, 410 closed
// mid-flight, 429 backpressure.
func TestClientErrorMapping(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = -1 // nothing drains: queues fill and steps hang
	cfg.QueueDepth = 1
	srv, client := newClientHarness(t, cfg)
	ctx := context.Background()

	// 404: step, get and delete against an unknown id.
	_, err := client.Step(ctx, "ghost", 0)
	wantStatus(t, err, http.StatusNotFound, "step unknown")
	_, err = client.Session(ctx, "ghost")
	wantStatus(t, err, http.StatusNotFound, "get unknown")
	err = client.DeleteSession(ctx, "ghost")
	wantStatus(t, err, http.StatusNotFound, "delete unknown")

	// 409: duplicate explicit id.
	if _, err := client.CreateSession(ctx, CreateSessionRequest{ID: "u"}); err != nil {
		t.Fatal(err)
	}
	_, err = client.CreateSession(ctx, CreateSessionRequest{ID: "u"})
	wantStatus(t, err, http.StatusConflict, "duplicate create")

	// Fill the queue: the step hangs (no workers) and holds the only slot.
	stepErr := make(chan error, 1)
	go func() {
		_, err := client.Step(ctx, "u", 0)
		stepErr <- err
	}()
	sess, _ := srv.mgr.Get("u")
	waitFor(t, func() bool { return sess.queued() == 1 })

	// 429: the queue is at capacity.
	_, err = client.Step(ctx, "u", 0)
	wantStatus(t, err, http.StatusTooManyRequests, "step on full queue")

	// 410: deleting the session fails the pending step with Gone.
	if err := client.DeleteSession(ctx, "u"); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-stepErr:
		wantStatus(t, err, http.StatusGone, "pending step after delete")
	case <-time.After(5 * time.Second):
		t.Fatal("pending step never resolved after delete")
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestClientBatchStepping drives the batch endpoint through the typed
// client: per-session FIFO order, inline per-item failures, and
// agreement with the single-step endpoint.
func TestClientBatchStepping(t *testing.T) {
	cfg := testConfig()
	_, client := newClientHarness(t, cfg)
	ctx := context.Background()

	seedA, seedB := int64(7), int64(8)
	if _, err := client.CreateSession(ctx, CreateSessionRequest{ID: "a", Seed: &seedA}); err != nil {
		t.Fatal(err)
	}
	if _, err := client.CreateSession(ctx, CreateSessionRequest{ID: "b", Seed: &seedB}); err != nil {
		t.Fatal(err)
	}

	// Two steps per session in one batch, plus a poisoned item.
	results, err := client.StepBatch(ctx, []BatchStepItem{
		{SessionID: "a", Loc: 1},
		{SessionID: "b", Loc: 2},
		{SessionID: "ghost", Loc: 3},
		{SessionID: "a", Loc: 4},
		{SessionID: "b", Loc: 5},
	})
	if err != nil {
		t.Fatalf("StepBatch: %v", err)
	}
	if len(results) != 5 {
		t.Fatalf("%d results, want 5", len(results))
	}
	if results[2].Code != http.StatusNotFound || results[2].Error == "" {
		t.Fatalf("poisoned item = %+v, want inline 404", results[2])
	}
	// FIFO per session: a gets T 0,1; b gets T 0,1; ids echo back.
	for _, check := range []struct {
		idx  int
		id   string
		want int
	}{{0, "a", 0}, {1, "b", 0}, {3, "a", 1}, {4, "b", 1}} {
		r := results[check.idx]
		if r.Error != "" || r.SessionID != check.id || r.T != check.want {
			t.Fatalf("item %d = %+v, want session %s T=%d", check.idx, r, check.id, check.want)
		}
	}

	// The batch advanced both sessions: the next single step is T=2.
	res, err := client.Step(ctx, "a", 0)
	if err != nil || res.T != 2 {
		t.Fatalf("single step after batch = %+v, %v; want T=2", res, err)
	}

	// Session info and stats agree through the client.
	info, err := client.Session(ctx, "a")
	if err != nil || info.T != 3 {
		t.Fatalf("session info = %+v, %v; want T=3", info, err)
	}
	st, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Steps.Served != 5 || st.Sessions.Live != 2 {
		t.Fatalf("stats = %+v, want 5 served / 2 live", st.Steps)
	}
	if st.Store.Enabled {
		t.Fatal("Null-store server reports store enabled")
	}
}

// TestClientDrainingStatus: a draining server surfaces 503 through the
// client for both creates and steps.
func TestClientDrainingStatus(t *testing.T) {
	srv, client := newClientHarness(t, testConfig())
	ctx := context.Background()
	if _, err := client.CreateSession(ctx, CreateSessionRequest{ID: "u"}); err != nil {
		t.Fatal(err)
	}
	sctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatal(err)
	}
	_, err := client.CreateSession(ctx, CreateSessionRequest{ID: "v"})
	wantStatus(t, err, http.StatusServiceUnavailable, "create while draining")
	_, err = client.Step(ctx, "u", 0)
	wantStatus(t, err, http.StatusServiceUnavailable, "step while draining")
}
