package server

import (
	"context"
	"errors"
	"net"
	"net/http/httptest"
	"testing"
	"time"

	"priste/internal/api"
	"priste/internal/rpc"
)

// forEachTransport runs fn once per transport, each time against a
// fresh server of its own — the conformance harness behind the client
// suite: every test written against api.Client runs identically over
// HTTP/JSON and over the binary RPC protocol.
func forEachTransport(t *testing.T, mkcfg func(t *testing.T) Config, fn func(t *testing.T, srv *Server, client api.Client)) {
	t.Helper()
	t.Run("http", func(t *testing.T) {
		srv := newTestServer(t, mkcfg(t))
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		fn(t, srv, NewClient(ts.URL, nil))
	})
	t.Run("rpc", func(t *testing.T) {
		srv := newTestServer(t, mkcfg(t))
		_, client := serveRPC(t, srv)
		fn(t, srv, client)
	})
}

// serveRPC starts an RPC listener over srv and returns the server and a
// connected client.
func serveRPC(t *testing.T, srv *Server) (*rpc.Server, *rpc.Client) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rpcSrv := rpc.NewServer(srv)
	rpcSrv.Observe = srv.ObserveRPC
	rpcSrv.ObserveStep = srv.ObserveRPCStep
	rpcSrv.OnStreamOpen = srv.ObserveStreamOpen
	rpcSrv.OnStreamClose = srv.ObserveStreamClose
	rpcSrv.ObserveStreamWindow = srv.ObserveStreamWindow
	rpcSrv.ObserveStreamAcks = srv.ObserveStreamAcks
	go func() { _ = rpcSrv.Serve(lis) }()
	t.Cleanup(func() { rpcSrv.Close() })
	client, err := rpc.Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return rpcSrv, client
}

func plainConfig(t *testing.T) Config { return testConfig() }

func wantCode(t *testing.T, err error, code api.Code, label string) {
	t.Helper()
	var apiErr *api.Error
	if !errors.As(err, &apiErr) {
		t.Fatalf("%s: err = %v, want *api.Error %s", label, err, code)
	}
	if apiErr.Code != code {
		t.Fatalf("%s: code = %s (%s), want %s", label, apiErr.Code, apiErr.Message, code)
	}
	if apiErr.Message == "" {
		t.Fatalf("%s: error carried no message", label)
	}
}

// TestErrorCodeRoundTrip is the error-mapping conformance table: every
// canonical failure of the session layer must round-trip through both
// transports to the same typed client error — same code, same sentinel
// under errors.Is, same HTTP status for the code (404/409/410/429/503,
// plus 412 for cross-world imports).
func TestErrorCodeRoundTrip(t *testing.T) {
	cases := []struct {
		name       string
		code       api.Code
		httpStatus int
		sentinel   error
		// trigger provokes the failure and returns the client error.
		trigger func(t *testing.T, srv *Server, client api.Client) error
	}{
		{
			name: "unknown session", code: api.CodeNotFound, httpStatus: 404, sentinel: ErrNotFound,
			trigger: func(t *testing.T, srv *Server, client api.Client) error {
				_, err := client.Step(context.Background(), "ghost", 0)
				return err
			},
		},
		{
			name: "duplicate create", code: api.CodeAlreadyExists, httpStatus: 409, sentinel: ErrSessionExists,
			trigger: func(t *testing.T, srv *Server, client api.Client) error {
				ctx := context.Background()
				if _, err := client.CreateSession(ctx, CreateSessionRequest{ID: "dup"}); err != nil {
					t.Fatal(err)
				}
				_, err := client.CreateSession(ctx, CreateSessionRequest{ID: "dup"})
				return err
			},
		},
		{
			name: "deleted mid-flight", code: api.CodeSessionClosed, httpStatus: 410, sentinel: ErrSessionClosed,
			trigger: func(t *testing.T, srv *Server, client api.Client) error {
				ctx := context.Background()
				if _, err := client.CreateSession(ctx, CreateSessionRequest{ID: "gone"}); err != nil {
					t.Fatal(err)
				}
				// No workers drain the queue, so the step hangs until the
				// delete fails it.
				stepErr := make(chan error, 1)
				go func() {
					_, err := client.Step(ctx, "gone", 0)
					stepErr <- err
				}()
				sess, _ := srv.mgr.Get("gone")
				waitFor(t, func() bool { return sess.queued() == 1 })
				if err := client.DeleteSession(ctx, "gone"); err != nil {
					t.Fatal(err)
				}
				select {
				case err := <-stepErr:
					return err
				case <-time.After(5 * time.Second):
					t.Fatal("pending step never resolved after delete")
					return nil
				}
			},
		},
		{
			name: "queue full", code: api.CodeResourceExhausted, httpStatus: 429, sentinel: ErrQueueFull,
			trigger: func(t *testing.T, srv *Server, client api.Client) error {
				ctx := context.Background()
				if _, err := client.CreateSession(ctx, CreateSessionRequest{ID: "busy"}); err != nil {
					t.Fatal(err)
				}
				// Fill the 1-deep queue with a hanging step, then overflow.
				go func() { _, _ = client.Step(ctx, "busy", 0) }()
				sess, _ := srv.mgr.Get("busy")
				waitFor(t, func() bool { return sess.queued() == 1 })
				_, err := client.Step(ctx, "busy", 0)
				// Release the hanging step (nothing ever drains it) so the
				// harness can close its transport.
				if derr := client.DeleteSession(ctx, "busy"); derr != nil {
					t.Fatal(derr)
				}
				return err
			},
		},
		{
			name: "cross-world import", code: api.CodeFailedPrecondition, httpStatus: 412, sentinel: ErrWorldMismatch,
			trigger: func(t *testing.T, srv *Server, client api.Client) error {
				_, err := client.ImportSession(context.Background(), api.SessionExport{
					Version: api.V1, ID: "alien", World: "grid=99x99;cell=1;sigma=1",
					Events: []string{"0-5@2-4"},
				})
				return err
			},
		},
		{
			name: "draining", code: api.CodeUnavailable, httpStatus: 503, sentinel: ErrDraining,
			trigger: func(t *testing.T, srv *Server, client api.Client) error {
				sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				defer cancel()
				if err := srv.Shutdown(sctx); err != nil {
					t.Fatal(err)
				}
				_, err := client.CreateSession(context.Background(), CreateSessionRequest{ID: "late"})
				return err
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			forEachTransport(t, func(t *testing.T) Config {
				cfg := testConfig()
				cfg.Workers = -1 // nothing drains: queues fill and steps hang
				cfg.QueueDepth = 1
				return cfg
			}, func(t *testing.T, srv *Server, client api.Client) {
				err := tc.trigger(t, srv, client)
				wantCode(t, err, tc.code, tc.name)
				if !errors.Is(err, tc.sentinel) {
					t.Fatalf("%s: %v does not match sentinel %v", tc.name, err, tc.sentinel)
				}
				if got := tc.code.HTTPStatus(); got != tc.httpStatus {
					t.Fatalf("%s: code %s maps to HTTP %d, want %d", tc.name, tc.code, got, tc.httpStatus)
				}
			})
		})
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestClientBatchStepping drives the batch path through the typed
// client on both transports: per-session FIFO order, inline per-item
// failures, and agreement with the single-step endpoint. (Over RPC the
// batch is pipelined step frames on one connection; semantics must be
// identical to the HTTP batch endpoint.)
func TestClientBatchStepping(t *testing.T) {
	forEachTransport(t, plainConfig, func(t *testing.T, srv *Server, client api.Client) {
		ctx := context.Background()
		seedA, seedB := int64(7), int64(8)
		if _, err := client.CreateSession(ctx, CreateSessionRequest{ID: "a", Seed: &seedA}); err != nil {
			t.Fatal(err)
		}
		if _, err := client.CreateSession(ctx, CreateSessionRequest{ID: "b", Seed: &seedB}); err != nil {
			t.Fatal(err)
		}

		// Two steps per session in one batch, plus a poisoned item.
		results, err := client.StepBatch(ctx, []BatchStepItem{
			{SessionID: "a", Loc: 1},
			{SessionID: "b", Loc: 2},
			{SessionID: "ghost", Loc: 3},
			{SessionID: "a", Loc: 4},
			{SessionID: "b", Loc: 5},
		})
		if err != nil {
			t.Fatalf("StepBatch: %v", err)
		}
		if len(results) != 5 {
			t.Fatalf("%d results, want 5", len(results))
		}
		if results[2].Code != api.CodeNotFound || results[2].Error == "" {
			t.Fatalf("poisoned item = %+v, want inline not_found", results[2])
		}
		// FIFO per session: a gets T 0,1; b gets T 0,1; ids echo back.
		for _, check := range []struct {
			idx  int
			id   string
			want int
		}{{0, "a", 0}, {1, "b", 0}, {3, "a", 1}, {4, "b", 1}} {
			r := results[check.idx]
			if r.Error != "" || r.SessionID != check.id || r.T != check.want {
				t.Fatalf("item %d = %+v, want session %s T=%d", check.idx, r, check.id, check.want)
			}
		}

		// The batch advanced both sessions: the next single step is T=2.
		res, err := client.Step(ctx, "a", 0)
		if err != nil || res.T != 2 {
			t.Fatalf("single step after batch = %+v, %v; want T=2", res, err)
		}

		// Session info and stats agree through the client.
		info, err := client.Session(ctx, "a")
		if err != nil || info.T != 3 {
			t.Fatalf("session info = %+v, %v; want T=3", info, err)
		}
		st, err := client.Stats(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if st.Steps.Served != 5 || st.Sessions.Live != 2 {
			t.Fatalf("stats = %+v, want 5 served / 2 live", st.Steps)
		}
		if st.Store.Enabled {
			t.Fatal("Null-store server reports store enabled")
		}
		if err := client.Health(ctx); err != nil {
			t.Fatalf("health: %v", err)
		}
	})
}

// TestClientDrainingStatus: a draining server surfaces unavailable
// through the client for both creates and steps, on both transports.
func TestClientDrainingStatus(t *testing.T) {
	forEachTransport(t, plainConfig, func(t *testing.T, srv *Server, client api.Client) {
		ctx := context.Background()
		if _, err := client.CreateSession(ctx, CreateSessionRequest{ID: "u"}); err != nil {
			t.Fatal(err)
		}
		sctx, cancel := context.WithTimeout(ctx, 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			t.Fatal(err)
		}
		_, err := client.CreateSession(ctx, CreateSessionRequest{ID: "v"})
		wantCode(t, err, api.CodeUnavailable, "create while draining")
		if !errors.Is(err, ErrDraining) {
			t.Fatalf("create while draining: %v, want ErrDraining", err)
		}
		_, err = client.Step(ctx, "u", 0)
		wantCode(t, err, api.CodeUnavailable, "step while draining")
	})
}

// TestClientListSessions pages through the registry with limit/cursor
// on both transports: id order, no duplicates, no gaps, clean final
// page.
func TestClientListSessions(t *testing.T) {
	forEachTransport(t, plainConfig, func(t *testing.T, srv *Server, client api.Client) {
		ctx := context.Background()
		want := []string{"u0", "u1", "u2", "u3", "u4", "u5", "u6"}
		for _, id := range want {
			if _, err := client.CreateSession(ctx, CreateSessionRequest{ID: id}); err != nil {
				t.Fatal(err)
			}
		}
		var got []string
		cursor := ""
		pages := 0
		for {
			page, err := client.ListSessions(ctx, api.ListSessionsRequest{Limit: 3, Cursor: cursor})
			if err != nil {
				t.Fatalf("list page %d: %v", pages, err)
			}
			pages++
			for _, info := range page.Sessions {
				got = append(got, info.ID)
			}
			if page.NextCursor == "" {
				break
			}
			cursor = page.NextCursor
			if pages > 10 {
				t.Fatal("cursor never terminated")
			}
		}
		if len(got) != len(want) {
			t.Fatalf("listed %d sessions %v, want %d", len(got), got, len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("listing %v out of order, want %v", got, want)
			}
		}
		if pages != 3 {
			t.Fatalf("%d pages for 7 sessions at limit 3, want 3", pages)
		}
		// Bad limits are invalid_argument.
		if _, err := client.ListSessions(ctx, api.ListSessionsRequest{Limit: -1}); api.CodeOf(err) != api.CodeInvalidArgument {
			t.Fatalf("negative limit: %v", err)
		}
	})
}

// TestClientMigration is the acceptance check for session migration: a
// mid-history session exported from one pristed instance and imported
// into a fresh one must continue its release sequence seed-for-seed
// identically to an unmigrated run — on both transports.
func TestClientMigration(t *testing.T) {
	const pre, post = 5, 5
	seed := int64(41)
	traj := func(k int) int { return (k * 11) % 36 }

	// Unmigrated reference run.
	ref := newTestServer(t, testConfig())
	if _, err := ref.CreateSession(CreateSessionRequest{ID: "mig", Seed: &seed}); err != nil {
		t.Fatal(err)
	}
	var want []StepResponse
	for k := 0; k < pre+post; k++ {
		res, err := ref.Step(bg, "mig", traj(k))
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, res)
	}

	forEachTransport(t, plainConfig, func(t *testing.T, srvA *Server, clientA api.Client) {
		ctx := context.Background()
		if _, err := clientA.CreateSession(ctx, CreateSessionRequest{ID: "mig", Seed: &seed}); err != nil {
			t.Fatal(err)
		}
		for k := 0; k < pre; k++ {
			res, err := clientA.Step(ctx, "mig", traj(k))
			if err != nil {
				t.Fatal(err)
			}
			if res.Obs != want[k].Obs || res.Alpha != want[k].Alpha {
				t.Fatalf("pre-migration step %d diverged: %+v vs %+v", k, res, want[k])
			}
		}

		exp, err := clientA.ExportSession(ctx, "mig")
		if err != nil {
			t.Fatalf("export: %v", err)
		}
		if exp.T != pre || len(exp.Tags) != pre || exp.Version != api.V1 || exp.Seed != seed {
			t.Fatalf("export = T%d/%d tags/v%d", exp.T, len(exp.Tags), exp.Version)
		}
		// Migration: delete on the source, import on the target.
		if err := clientA.DeleteSession(ctx, "mig"); err != nil {
			t.Fatal(err)
		}

		srvB := newTestServer(t, testConfig())
		tsB := httptest.NewServer(srvB.Handler())
		t.Cleanup(tsB.Close)
		clientB := NewClient(tsB.URL, nil)
		info, err := clientB.ImportSession(ctx, exp)
		if err != nil {
			t.Fatalf("import: %v", err)
		}
		if info.T != pre || info.ID != "mig" {
			t.Fatalf("imported info = %+v, want T=%d", info, pre)
		}
		// A second import of the same id must conflict.
		if _, err := clientB.ImportSession(ctx, exp); !errors.Is(err, ErrSessionExists) {
			t.Fatalf("re-import: %v, want ErrSessionExists", err)
		}
		// The continued sequence is seed-for-seed the unmigrated run's.
		for k := pre; k < pre+post; k++ {
			res, err := clientB.Step(ctx, "mig", traj(k))
			if err != nil {
				t.Fatal(err)
			}
			w := want[k]
			if res.T != w.T || res.Obs != w.Obs || res.Alpha != w.Alpha ||
				res.Attempts != w.Attempts || res.Uniform != w.Uniform {
				t.Fatalf("post-migration step %d: got %+v, want %+v", k, res, w)
			}
		}
		// A tampered history must be refused by the fingerprint chain.
		bad := exp
		bad.ID = "tampered"
		bad.Tags = append([]api.ReleaseTag(nil), exp.Tags...)
		bad.Tags[0].Obs = (bad.Tags[0].Obs + 1) % 36
		if _, err := clientB.ImportSession(ctx, bad); api.CodeOf(err) != api.CodeFailedPrecondition {
			t.Fatalf("tampered import: %v, want failed_precondition", err)
		}
	})
}

// TestTransportStats: requests served over each transport land in their
// own /statsz section.
func TestTransportStats(t *testing.T) {
	srv := newTestServer(t, testConfig())
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	httpClient := NewClient(ts.URL, nil)
	_, rpcClient := serveRPC(t, srv)
	ctx := context.Background()

	if _, err := httpClient.CreateSession(ctx, CreateSessionRequest{ID: "u"}); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 3; k++ {
		if _, err := rpcClient.Step(ctx, "u", k); err != nil {
			t.Fatalf("rpc step %d: %v", k, err)
		}
	}
	st, err := rpcClient.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Transports.HTTP.Requests != 1 {
		t.Fatalf("http requests = %d, want 1", st.Transports.HTTP.Requests)
	}
	// 3 steps + the stats call itself.
	if st.Transports.RPC.Requests < 3 {
		t.Fatalf("rpc requests = %d, want >= 3", st.Transports.RPC.Requests)
	}
	if st.Transports.RPC.P99Micros < st.Transports.RPC.P50Micros {
		t.Fatalf("rpc latency quantiles inverted: %+v", st.Transports.RPC)
	}
}
