package server

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"sync"
	"sync/atomic"
	"time"

	"priste/internal/api"
	"priste/internal/core"
	"priste/internal/store"
)

// Sentinel errors surfaced by the session layer. They are typed
// api.Errors, so every transport renders them canonically (HTTP status,
// RPC error byte) and a client-side reconstruction matches them under
// errors.Is.
var (
	// ErrQueueFull reports backpressure: the session's pending-step queue
	// is at capacity (HTTP 429).
	ErrQueueFull = api.Errf(api.CodeResourceExhausted, "server: session step queue full")
	// ErrSessionClosed reports a step enqueued on (or pending in) a
	// session that was deleted or evicted (HTTP 410).
	ErrSessionClosed = api.Errf(api.CodeSessionClosed, "server: session closed")
	// ErrSessionExists reports a create with an already-live explicit id
	// (HTTP 409).
	ErrSessionExists = api.Errf(api.CodeAlreadyExists, "server: session id already exists")
	// ErrNotFound reports an unknown session id (HTTP 404).
	ErrNotFound = api.Errf(api.CodeNotFound, "server: session not found")
	// ErrDraining reports a request rejected because the server is in
	// graceful shutdown: no new sessions or steps are accepted while
	// pending work drains and state is flushed (HTTP 503).
	ErrDraining = api.Errf(api.CodeUnavailable, "server: draining for shutdown")
	// ErrWorldMismatch reports an import whose history was certified
	// against a different world model (HTTP 412).
	ErrWorldMismatch = api.Errf(api.CodeFailedPrecondition, "server: session was certified against a different world model")
)

// stepJob is one pending queue entry — a Step call, or (export true) a
// request for a consistent point-in-time snapshot that rides the same
// single-writer FIFO so it never races a step on the framework. Exactly
// one of done/apiDone is set, both buffered (cap 1) so the worker never
// blocks on a slow or departed client: done delivers the raw engine
// outcome (Step, StepBatch, export), apiDone delivers the wire-typed
// outcome directly — the StepAsync fast path, which saves a forwarding
// goroutine and channel per step on the pipelining RPC transport.
type stepJob struct {
	loc     int
	export  bool
	done    chan stepOutcome
	apiDone chan api.StepOutcome

	// Observability context, stamped at enqueue time: the ingress
	// transport (metrics attribution for the pool-side stages), the
	// request's trace ID (slow-step logs), and the enqueue instant
	// (the queue_wait stage).
	transport int
	trace     uint64
	enqueued  time.Time
}

// fail delivers err on whichever completion channel the job carries.
func (j stepJob) fail(err error) {
	if j.apiDone != nil {
		j.apiDone <- api.StepOutcome{Err: err}
		return
	}
	j.done <- stepOutcome{err: err}
}

type stepOutcome struct {
	res  core.StepResult
	snap core.Snapshot
	err  error
}

// Session is one user's live privacy session: a core.Framework with its
// own RNG, mechanism and event set, plus a bounded FIFO queue of pending
// steps. The framework is single-writer: only the worker currently
// holding the session's scheduled token touches fw, so per-session step
// order is exactly enqueue order while different sessions step in
// parallel.
type Session struct {
	id      string
	created time.Time

	// lastUsed is unix nanoseconds of the latest enqueue or completed
	// step; the TTL sweeper and LRU evictor read it without locking.
	lastUsed atomic.Int64
	// steps counts completed Step calls; equals the framework's next
	// timestamp and is safe to read outside the worker.
	steps atomic.Int64

	mu        sync.Mutex
	queue     []stepJob
	scheduled bool
	closed    bool

	// Single-writer state: guarded by the scheduled token, not mu.
	fw *core.Framework

	// Immutable session metadata for GET /v1/sessions/{id} and the
	// durability journal.
	epsilon   float64
	alpha     float64
	mechanism string
	delta     float64
	events    []string
	seed      int64

	// storeGen is the durability journal's generation token for this
	// incarnation of the id (see store.Store.CreateSession). Set once
	// before the session becomes steppable.
	storeGen uint64
	// needSnap asks the worker to compact the WAL into a snapshot after
	// acknowledging the current step. Owned by the scheduled-token
	// holder; no locking.
	needSnap bool
}

// maxSessionIDLen caps client-supplied session ids (see
// api.MaxSessionIDLen for the rationale).
const maxSessionIDLen = api.MaxSessionIDLen

// newSessionID returns a 128-bit random hex id.
func newSessionID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("server: crypto/rand unavailable: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}

// randomSeed draws a non-negative session RNG seed from crypto/rand.
func randomSeed() int64 {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("server: crypto/rand unavailable: " + err.Error())
	}
	return int64(binary.LittleEndian.Uint64(b[:]) >> 1)
}

func (s *Session) touch(now time.Time) { s.lastUsed.Store(now.UnixNano()) }

// enqueue appends one step to the session's FIFO queue and hands the
// session to the pool if it is not already scheduled. maxQueue bounds the
// pending queue (backpressure).
func (s *Session) enqueue(j stepJob, maxQueue int) (wake bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false, ErrSessionClosed
	}
	if len(s.queue) >= maxQueue {
		return false, ErrQueueFull
	}
	s.queue = append(s.queue, j)
	if !s.scheduled {
		s.scheduled = true
		return true, nil
	}
	return false, nil
}

// pop removes the head of the queue, or clears the scheduled token when
// the queue is drained. Called only by the worker holding the token.
func (s *Session) pop() (stepJob, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.queue) == 0 || s.closed {
		s.scheduled = false
		return stepJob{}, false
	}
	j := s.queue[0]
	s.queue = s.queue[1:]
	return j, true
}

// park decides the session's fate when a worker hits the drain-batch
// fairness cap: with work still queued the session keeps its scheduled
// token and reports true (the caller re-queues it); otherwise the token
// is released exactly as pop's empty case would have. Called only by
// the worker holding the token.
func (s *Session) park() (requeue bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.queue) == 0 || s.closed {
		s.scheduled = false
		return false
	}
	return true
}

// close marks the session dead and fails every pending job. Queue
// ownership is serialised by mu, so each job receives exactly one
// outcome: either here or from the worker that popped it earlier.
func (s *Session) close() {
	s.mu.Lock()
	s.closed = true
	pending := s.queue
	s.queue = nil
	s.mu.Unlock()
	for _, j := range pending {
		j.fail(ErrSessionClosed)
	}
}

// queued returns the number of pending steps.
func (s *Session) queued() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

// idle reports whether the session has no pending steps and no worker
// holding its scheduled token — i.e. nothing is touching fw, so the
// shutdown path may snapshot it.
func (s *Session) idle() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue) == 0 && !s.scheduled
}

// meta renders the session's immutable identity for the durability
// journal; world tags the server's world model (see store.SessionMeta).
func (s *Session) meta(world string) store.SessionMeta {
	return store.SessionMeta{
		ID:              s.id,
		World:           world,
		Seed:            s.seed,
		Epsilon:         s.epsilon,
		Alpha:           s.alpha,
		Mechanism:       s.mechanism,
		Delta:           s.delta,
		Events:          s.events,
		CreatedUnixNano: s.created.UnixNano(),
	}
}
