package server

import (
	"context"
	"testing"
	"time"
)

// sparseTestConfig is testConfig over a sparsified mobility chain: the
// cutoff drops the Gaussian kernel's negligible tails so the transition
// matrix is structurally sparse, and the kernel mode picks the path.
func sparseTestConfig(kernel string) Config {
	cfg := testConfig()
	cfg.SparseCutoff = 1e-3
	cfg.Kernel = kernel
	return cfg
}

// TestServerKernelEquivalence runs the same seeded sessions against a
// forced-dense and a forced-sparse server over the identical (sparsified)
// world and requires identical releases, identical session fingerprints
// and identical serving counters — only the /statsz kernel counters may
// differ, and they must report the path each server actually compiled.
func TestServerKernelEquivalence(t *testing.T) {
	const steps = 10
	servers := map[string]*Server{
		KernelDense:  newTestServer(t, sparseTestConfig(KernelDense)),
		KernelSparse: newTestServer(t, sparseTestConfig(KernelSparse)),
	}
	results := make(map[string]map[string][]StepResponseLite)
	for mode, srv := range servers {
		for _, u := range restartUsers {
			createRestartUser(t, srv, u)
		}
		out := make(map[string][]StepResponseLite)
		m := srv.Config().GridW * srv.Config().GridH
		for k := 0; k < steps; k++ {
			for ui, u := range restartUsers {
				res, err := srv.Step(bg, u.id, (k*7+ui*3)%m)
				if err != nil {
					t.Fatalf("%s %s step %d: %v", mode, u.id, k, err)
				}
				out[u.id] = append(out[u.id], StepResponseLite{
					T: res.T, Obs: res.Obs, Alpha: res.Alpha,
					Attempts: res.Attempts, Uniform: res.Uniform,
				})
			}
		}
		results[mode] = out
	}
	for _, u := range restartUsers {
		d, s := results[KernelDense][u.id], results[KernelSparse][u.id]
		for k := range d {
			if d[k] != s[k] {
				t.Fatalf("%s step %d: dense %+v, sparse %+v", u.id, k, d[k], s[k])
			}
		}
		// The quantifier operator state must agree exactly too: the
		// rolling fingerprints are over identical tag sequences, and the
		// sessions sit at the same timestamp.
		sd, _ := servers[KernelDense].mgr.Get(u.id)
		ss, _ := servers[KernelSparse].mgr.Get(u.id)
		if sd.fw.Fingerprint() != ss.fw.Fingerprint() {
			t.Fatalf("%s: fingerprint %#x vs %#x", u.id, sd.fw.Fingerprint(), ss.fw.Fingerprint())
		}
	}

	std := servers[KernelDense].Stats()
	sts := servers[KernelSparse].Stats()
	if std.Steps != sts.Steps {
		t.Fatalf("step counters diverged: dense %+v, sparse %+v", std.Steps, sts.Steps)
	}
	if std.Plans.DenseKernels == 0 || std.Plans.SparseKernels != 0 {
		t.Fatalf("dense server kernels %+v", std.Plans)
	}
	if sts.Plans.SparseKernels == 0 || sts.Plans.DenseKernels != 0 {
		t.Fatalf("sparse server kernels %+v", sts.Plans)
	}
	if sts.Plans.KernelDensity <= 0 || sts.Plans.KernelDensity >= 1 {
		t.Fatalf("sparse kernel density %v", sts.Plans.KernelDensity)
	}
}

// StepResponseLite is the comparable subset of a step result.
type StepResponseLite struct {
	T        int
	Obs      int
	Alpha    float64
	Attempts int
	Uniform  bool
}

// TestRestartEquivalenceSparsePath is TestRestartEquivalence on the
// sparse kernels: a sparsified world served with CSR kernels, shut down
// and rehydrated, must continue seed-for-seed identically to an
// uninterrupted run. Durable replay and the sparse hot path compose.
func TestRestartEquivalenceSparsePath(t *testing.T) {
	const pre, post = 6, 6
	sparse := func(cfg Config) Config {
		cfg.SparseCutoff = 1e-3
		cfg.Kernel = KernelSparse
		return cfg
	}

	ref := newTestServer(t, sparse(testConfig()))
	for _, u := range restartUsers {
		createRestartUser(t, ref, u)
	}
	want := stepAll(t, ref, 0, pre)
	for id, more := range stepAll(t, ref, pre, pre+post) {
		want[id] = append(want[id], more...)
	}

	dir := t.TempDir()
	srvA, err := New(sparse(durableConfig(t, dir)))
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range restartUsers {
		createRestartUser(t, srvA, u)
	}
	gotPre := stepAll(t, srvA, 0, pre)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srvA.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	srvB := newTestServer(t, sparse(durableConfig(t, dir)))
	if st := srvB.Stats(); st.Store.Replayed != int64(len(restartUsers)) || st.Store.ReplayFailures != 0 {
		t.Fatalf("replayed = %d (failures %d)", st.Store.Replayed, st.Store.ReplayFailures)
	}
	gotPost := stepAll(t, srvB, pre, pre+post)
	for _, u := range restartUsers {
		sameSteps(t, u.id+" (pre)", gotPre[u.id], want[u.id][:pre])
		sameSteps(t, u.id+" (post-restart)", gotPost[u.id], want[u.id][pre:])
	}
}

// TestSparseCutoffScopesWorldTag: a journal written under one cutoff
// must not replay into a server running another — the sparsified chain
// is a different world model.
func TestSparseCutoffScopesWorldTag(t *testing.T) {
	dir := t.TempDir()
	srvA, err := New(sparseTestConfig(KernelAuto).withStore(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	seed := int64(4)
	if _, err := srvA.CreateSession(CreateSessionRequest{ID: "u", Seed: &seed}); err != nil {
		t.Fatal(err)
	}
	if _, err := srvA.Step(bg, "u", 1); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srvA.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	// Same store, no cutoff: the exact Gaussian world must refuse it.
	srvB := newTestServer(t, durableConfig(t, dir))
	if st := srvB.Stats(); st.Store.Replayed != 0 || st.Store.ReplayFailures != 1 {
		t.Fatalf("cross-cutoff replay: %+v, want 0 replayed / 1 failure", st.Store)
	}
}

func TestKernelConfigValidation(t *testing.T) {
	for _, mutate := range []func(*Config){
		func(c *Config) { c.Kernel = "csr" },
		func(c *Config) { c.SparseCutoff = 1 },
		func(c *Config) { c.SparseCutoff = -0.1 },
	} {
		cfg := testConfig()
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

// withStore attaches a fresh file store in dir to the config.
func (c Config) withStore(t *testing.T, dir string) Config {
	t.Helper()
	d := durableConfig(t, dir)
	c.Store = d.Store
	c.SnapshotEvery = d.SnapshotEvery
	return c
}
