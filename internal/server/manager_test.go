package server

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// bg is the context of test calls with no cancellation story.
var bg = context.Background()

// testConfig is a small deterministic deployment: 6×6 map, no QP
// deadline (so identical seeds give identical releases), short queues.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.GridW, cfg.GridH = 6, 6
	cfg.Events = []string{"0-5@2-4"}
	cfg.QPTimeout = 0
	cfg.SessionTTL = -1 // no janitor; tests sweep by hand
	return cfg
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(srv.Close)
	return srv
}

func TestSessionLifecycle(t *testing.T) {
	srv := newTestServer(t, testConfig())
	seed := int64(7)
	sess, err := srv.CreateSession(CreateSessionRequest{ID: "alice", Seed: &seed})
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	if sess.ID != "alice" {
		t.Fatalf("id = %q, want alice", sess.ID)
	}
	if _, err := srv.CreateSession(CreateSessionRequest{ID: "alice"}); !errors.Is(err, ErrSessionExists) {
		t.Fatalf("duplicate create: err = %v, want ErrSessionExists", err)
	}
	res, err := srv.Step(bg, "alice", 3)
	if err != nil {
		t.Fatalf("Step: %v", err)
	}
	if res.T != 0 {
		t.Fatalf("first step T = %d, want 0", res.T)
	}
	info, err := srv.GetSession("alice")
	if err != nil || info.T != 1 {
		t.Fatalf("SessionInfo = %+v, %v; want T=1", info, err)
	}
	if err := srv.DeleteSession("alice"); err != nil {
		t.Fatalf("DeleteSession: %v", err)
	}
	if _, err := srv.Step(bg, "alice", 3); !errors.Is(err, ErrNotFound) {
		t.Fatalf("step after delete: err = %v, want ErrNotFound", err)
	}
	if _, err := srv.Step(bg, "ghost", 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown session: err = %v, want ErrNotFound", err)
	}
}

func TestStepValidation(t *testing.T) {
	srv := newTestServer(t, testConfig())
	if _, err := srv.CreateSession(CreateSessionRequest{ID: "u"}); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Step(bg, "u", 99); err == nil {
		t.Fatal("loc 99 on a 36-state map should fail")
	}
	// The session survives a bad step.
	if _, err := srv.Step(bg, "u", 0); err != nil {
		t.Fatalf("step after bad loc: %v", err)
	}
}

func TestTTLEviction(t *testing.T) {
	// Drive the manager's sweep directly with a hand-held clock; the
	// server's janitor just calls sweep(time.Now()) on a ticker.
	ttl := time.Minute
	metrics := newMetrics()
	mgr := newManager(10, ttl, metrics)
	now := time.Now()
	for _, id := range []string{"a", "b"} {
		s := &Session{id: id, created: now}
		s.touch(now)
		if err := mgr.Put(s); err != nil {
			t.Fatal(err)
		}
	}
	if n := mgr.sweep(now); n != 0 {
		t.Fatalf("fresh sessions swept: %d", n)
	}
	// Keep "b" fresh past the cutoff; "a" expires.
	future := now.Add(ttl + time.Second)
	if s, ok := mgr.Get("b"); ok {
		s.touch(future)
	}
	if n := mgr.sweep(future); n != 1 {
		t.Fatalf("swept %d sessions, want 1", n)
	}
	if _, ok := mgr.Get("a"); ok {
		t.Fatal("idle session a still live")
	}
	if _, ok := mgr.Get("b"); !ok {
		t.Fatal("fresh session b evicted")
	}
	st := metrics.Snapshot()
	if st.Sessions.Evicted != 1 || st.Sessions.Live != 1 {
		t.Fatalf("stats = %+v, want 1 evicted, 1 live", st.Sessions)
	}
}

func TestLRUEviction(t *testing.T) {
	cfg := testConfig()
	cfg.MaxSessions = 3
	srv := newTestServer(t, cfg)
	base := time.Now()
	// Backdate the first three so u1 is the least recently used and the
	// new session (stamped with the real clock) is the freshest.
	offsets := map[string]time.Duration{"u0": -2 * time.Minute, "u1": -3 * time.Minute, "u2": -time.Minute}
	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("u%d", i)
		if _, err := srv.CreateSession(CreateSessionRequest{ID: id}); err != nil {
			t.Fatal(err)
		}
		s, _ := srv.mgr.Get(id)
		s.touch(base.Add(offsets[id]))
	}
	if _, err := srv.CreateSession(CreateSessionRequest{ID: "u3"}); err != nil {
		t.Fatal(err)
	}
	if srv.mgr.Len() != 3 {
		t.Fatalf("live = %d, want 3", srv.mgr.Len())
	}
	if _, ok := srv.mgr.Get("u1"); ok {
		t.Fatal("LRU session u1 still live")
	}
	for _, id := range []string{"u0", "u2", "u3"} {
		if _, ok := srv.mgr.Get(id); !ok {
			t.Fatalf("session %s evicted, want u1", id)
		}
	}
	if ev := srv.metrics.sessionsEvicted.Load(); ev != 1 {
		t.Fatalf("evicted = %d, want 1", ev)
	}
}

// TestDuplicateCreateAtCapacity checks a rejected duplicate id never
// evicts an unrelated live session.
func TestDuplicateCreateAtCapacity(t *testing.T) {
	cfg := testConfig()
	cfg.MaxSessions = 2
	srv := newTestServer(t, cfg)
	for _, id := range []string{"a", "b"} {
		if _, err := srv.CreateSession(CreateSessionRequest{ID: id}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := srv.CreateSession(CreateSessionRequest{ID: "a"}); !errors.Is(err, ErrSessionExists) {
		t.Fatalf("duplicate create: %v, want ErrSessionExists", err)
	}
	if srv.mgr.Len() != 2 {
		t.Fatalf("live = %d after rejected create, want 2", srv.mgr.Len())
	}
	if ev := srv.metrics.sessionsEvicted.Load(); ev != 0 {
		t.Fatalf("evicted = %d after rejected create, want 0", ev)
	}
}

func TestQueueBackpressure(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = -1 // nothing drains: queues only fill
	cfg.QueueDepth = 2
	srv := newTestServer(t, cfg)
	if _, err := srv.CreateSession(CreateSessionRequest{ID: "u"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := srv.stepAsync(context.Background(), "u", 0); err != nil {
			t.Fatalf("enqueue %d: %v", i, err)
		}
	}
	if _, err := srv.stepAsync(context.Background(), "u", 0); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("enqueue on full queue: err = %v, want ErrQueueFull", err)
	}
	if n := srv.metrics.Snapshot().Steps.QueueRejections; n != 1 {
		t.Fatalf("queue_rejections = %d, want 1", n)
	}
	// Closing the session fails the pending steps.
	sess, _ := srv.mgr.Get("u")
	_ = srv.DeleteSession("u")
	if sess.queued() != 0 {
		t.Fatalf("queued = %d after close, want 0", sess.queued())
	}
}

// TestSampledEviction drives the manager far past evictExactThreshold:
// every over-capacity Put must evict exactly one session, the freshest
// session must never be the victim (a 16-entry sample always contains
// something older), and the registry must hold the cap afterwards.
func TestSampledEviction(t *testing.T) {
	const max = evictExactThreshold + 22
	const total = 2 * max
	metrics := newMetrics()
	mgr := newManager(max, time.Minute, metrics)
	base := time.Now()
	var last string
	for i := 0; i < total; i++ {
		id := fmt.Sprintf("s%04d", i)
		s := &Session{id: id, created: base}
		s.touch(base.Add(time.Duration(i) * time.Second)) // strictly increasing
		if err := mgr.Put(s); err != nil {
			t.Fatalf("Put %s: %v", id, err)
		}
		mgr.enforceCap()
		last = id
		if n := mgr.Len(); n > max {
			t.Fatalf("after %d puts: live = %d > max %d", i+1, n, max)
		}
	}
	if mgr.Len() != max {
		t.Fatalf("live = %d, want %d", mgr.Len(), max)
	}
	if ev := metrics.sessionsEvicted.Load(); ev != total-max {
		t.Fatalf("evicted = %d, want %d", ev, total-max)
	}
	if _, ok := mgr.Get(last); !ok {
		t.Fatal("freshest session was evicted by sampling")
	}
}

// TestTombstoneHookFiresOnRemoveNotCloseAll: delete/evict must invoke
// the durability tombstone hook; shutdown (CloseAll) must not, so
// journaled sessions survive a restart.
func TestTombstoneHookFiresOnRemoveNotCloseAll(t *testing.T) {
	metrics := newMetrics()
	mgr := newManager(2, time.Minute, metrics)
	tombs := make(map[string]int)
	mgr.onRemove = func(id string) { tombs[id]++ }
	now := time.Now()
	for _, id := range []string{"a", "b"} {
		s := &Session{id: id, created: now}
		s.touch(now)
		if err := mgr.Put(s); err != nil {
			t.Fatal(err)
		}
	}
	mgr.Remove("a")
	// "c" pushes past capacity: the LRU ("b") is evicted via Remove.
	s := &Session{id: "c", created: now}
	s.touch(now.Add(time.Minute))
	if err := mgr.Put(s); err != nil {
		t.Fatal(err)
	}
	mgr.enforceCap()
	d := &Session{id: "d", created: now}
	d.touch(now.Add(2 * time.Minute))
	if err := mgr.Put(d); err != nil {
		t.Fatal(err)
	}
	mgr.enforceCap()
	if tombs["a"] != 1 || tombs["b"] != 1 {
		t.Fatalf("tombstones = %v, want a and b exactly once", tombs)
	}
	mgr.CloseAll()
	if tombs["c"] != 0 || tombs["d"] != 0 {
		t.Fatalf("CloseAll tombstoned surviving sessions: %v", tombs)
	}
}

// BenchmarkPutChurnOverCapacity measures Put while the registry sits at
// capacity, so every insert pays one eviction — the path sampled
// eviction takes from O(live) to O(sample).
func BenchmarkPutChurnOverCapacity(b *testing.B) {
	for _, max := range []int{512, 4096} {
		b.Run(fmt.Sprintf("max=%d", max), func(b *testing.B) {
			metrics := newMetrics()
			mgr := newManager(max, time.Minute, metrics)
			base := time.Now()
			for i := 0; i < max; i++ {
				s := &Session{id: fmt.Sprintf("fill%06d", i), created: base}
				s.touch(base.Add(time.Duration(i)))
				if err := mgr.Put(s); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s := &Session{id: fmt.Sprintf("churn%09d", i), created: base}
				s.touch(base.Add(time.Duration(max + i)))
				if err := mgr.Put(s); err != nil {
					b.Fatal(err)
				}
				mgr.enforceCap()
			}
		})
	}
}

func TestPendingStepsFailOnClose(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = -1
	srv := newTestServer(t, cfg)
	if _, err := srv.CreateSession(CreateSessionRequest{ID: "u"}); err != nil {
		t.Fatal(err)
	}
	done, err := srv.stepAsync(context.Background(), "u", 0)
	if err != nil {
		t.Fatal(err)
	}
	_ = srv.DeleteSession("u")
	select {
	case out := <-done:
		if !errors.Is(out.err, ErrSessionClosed) {
			t.Fatalf("pending step: err = %v, want ErrSessionClosed", out.err)
		}
	case <-time.After(time.Second):
		t.Fatal("pending step never failed after close")
	}
}
