package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"
)

// CreateSessionRequest is the body of POST /v1/sessions. Zero-valued
// fields inherit the server defaults; a nil Seed draws a random one.
type CreateSessionRequest struct {
	// ID optionally fixes the session id (e.g. a user id); a live
	// duplicate is rejected with 409.
	ID string `json:"id,omitempty"`
	// Seed fixes the session RNG for reproducible releases.
	Seed      *int64   `json:"seed,omitempty"`
	Epsilon   float64  `json:"epsilon,omitempty"`
	Alpha     float64  `json:"alpha,omitempty"`
	Mechanism string   `json:"mechanism,omitempty"`
	Delta     *float64 `json:"delta,omitempty"`
	Events    []string `json:"events,omitempty"`
}

// SessionInfo is the body of GET /v1/sessions/{id} and the create
// response. T is the next timestamp to be released (steps served so far).
type SessionInfo struct {
	ID        string    `json:"id"`
	T         int       `json:"t"`
	Epsilon   float64   `json:"epsilon"`
	Alpha     float64   `json:"alpha"`
	Mechanism string    `json:"mechanism"`
	Events    []string  `json:"events"`
	Created   time.Time `json:"created"`
	LastUsed  time.Time `json:"last_used"`
	Queued    int       `json:"queued"`
}

// StepRequest is the body of POST /v1/sessions/{id}/step.
type StepRequest struct {
	// Loc is the user's true location (0-based row-major grid state).
	Loc int `json:"loc"`
}

// StepResponse mirrors core.StepResult: one certified release.
type StepResponse struct {
	// SessionID identifies the session in batch responses.
	SessionID string `json:"session_id,omitempty"`
	T         int    `json:"t"`
	// Obs is the released (perturbed) location.
	Obs int `json:"obs"`
	// Alpha is the final budget used; 0 for the uniform fallback.
	Alpha                  float64 `json:"alpha"`
	Attempts               int     `json:"attempts"`
	ConservativeRejections int     `json:"conservative_rejections"`
	Uniform                bool    `json:"uniform"`
	CheckMicros            float64 `json:"check_us"`
	// Error and Code report per-item failures in batch responses; both
	// are empty on success.
	Error string `json:"error,omitempty"`
	Code  int    `json:"code,omitempty"`
}

// BatchStepItem is one entry of POST /v1/step.
type BatchStepItem struct {
	SessionID string `json:"session_id"`
	Loc       int    `json:"loc"`
}

// BatchStepRequest is the body of POST /v1/step: a multi-user ingest
// batch. Items for the same session are applied in slice order.
type BatchStepRequest struct {
	Steps []BatchStepItem `json:"steps"`
}

// BatchStepResponse is the body of the batch response; Results[i]
// corresponds to Steps[i].
type BatchStepResponse struct {
	Results []StepResponse `json:"results"`
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

// httpStatus maps session-layer errors onto HTTP status codes.
func httpStatus(err error) int {
	switch {
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrSessionClosed):
		return http.StatusGone
	case errors.Is(err, ErrSessionExists):
		return http.StatusConflict
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

// Handler returns the HTTP/JSON API:
//
//	POST   /v1/sessions           create a session
//	GET    /v1/sessions/{id}      session state
//	DELETE /v1/sessions/{id}      close a session
//	POST   /v1/sessions/{id}/step release one location
//	POST   /v1/step               batch multi-user ingest
//	GET    /healthz               liveness
//	GET    /statsz                service counters
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", s.handleCreate)
	mux.HandleFunc("GET /v1/sessions/{id}", s.handleGet)
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleDelete)
	mux.HandleFunc("POST /v1/sessions/{id}/step", s.handleStep)
	mux.HandleFunc("POST /v1/step", s.handleBatch)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /statsz", s.handleStats)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	writeJSON(w, httpStatus(err), errorBody{Error: err.Error()})
}

func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("server: bad request body: %w", err)
	}
	return nil
}

func stepResponse(id string, res stepOutcome) StepResponse {
	if res.err != nil {
		return StepResponse{
			SessionID: id,
			Error:     res.err.Error(),
			Code:      httpStatus(res.err),
		}
	}
	return StepResponse{
		SessionID:              id,
		T:                      res.res.T,
		Obs:                    res.res.Obs,
		Alpha:                  res.res.Alpha,
		Attempts:               res.res.Attempts,
		ConservativeRejections: res.res.ConservativeRejections,
		Uniform:                res.res.Uniform,
		CheckMicros:            float64(res.res.CheckTime) / 1e3,
	}
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req CreateSessionRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, err)
		return
	}
	sess, err := s.CreateSession(req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, sessionInfo(sess))
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	info, err := s.SessionInfo(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if !s.DeleteSession(r.PathValue("id")) {
		writeError(w, ErrNotFound)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleStep(w http.ResponseWriter, r *http.Request) {
	var req StepRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, err)
		return
	}
	id := r.PathValue("id")
	done, err := s.stepAsync(id, req.Loc)
	if err != nil {
		writeError(w, err)
		return
	}
	select {
	case out := <-done:
		if out.err != nil {
			writeError(w, out.err)
			return
		}
		writeJSON(w, http.StatusOK, stepResponse("", out))
	case <-r.Context().Done():
		// Client gone; the worker completes into the buffered channel.
	}
}

// handleBatch serves POST /v1/step: every item is enqueued in slice
// order (so items for the same session preserve their relative order and
// different sessions step in parallel), then the handler collects the
// certified releases. Per-item failures are reported inline; the batch
// itself is always 200.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchStepRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, err)
		return
	}
	dones := make([]chan stepOutcome, len(req.Steps))
	results := make([]StepResponse, len(req.Steps))
	for i, item := range req.Steps {
		done, err := s.stepAsync(item.SessionID, item.Loc)
		if err != nil {
			results[i] = stepResponse(item.SessionID, stepOutcome{err: err})
			continue
		}
		dones[i] = done
	}
	for i, done := range dones {
		if done == nil {
			continue
		}
		out := <-done
		results[i] = stepResponse(req.Steps[i].SessionID, out)
	}
	writeJSON(w, http.StatusOK, BatchStepResponse{Results: results})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"sessions": s.metrics.sessionsLive.Load(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}
