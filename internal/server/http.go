package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"priste/internal/api"
	"priste/internal/obs"
)

// Wire types and error codes live in the transport-neutral api package;
// the aliases keep the historical server-qualified names working.
type (
	// CreateSessionRequest is the body of POST /v1/sessions.
	CreateSessionRequest = api.CreateSessionRequest
	// SessionInfo is a session's public state.
	SessionInfo = api.SessionInfo
	// StepRequest is the body of POST /v1/sessions/{id}/step.
	StepRequest = api.StepRequest
	// StepResponse is one certified release.
	StepResponse = api.StepResponse
	// BatchStepItem is one entry of POST /v1/step.
	BatchStepItem = api.BatchStepItem
	// BatchStepRequest is the body of POST /v1/step.
	BatchStepRequest = api.BatchStepRequest
	// BatchStepResponse is the body of the batch response.
	BatchStepResponse = api.BatchStepResponse
	// SessionExport is a session's complete migratable state.
	SessionExport = api.SessionExport
	// SessionPage is one page of GET /v1/sessions.
	SessionPage = api.SessionPage
	// Stats is the /statsz document.
	Stats = api.Stats
	// StoreStats is the /statsz durability section.
	StoreStats = api.StoreStats
	// CertCacheStats is the /statsz certified-release cache section.
	CertCacheStats = api.CertCacheStats
	// PlanStats is the /statsz plan-registry section.
	PlanStats = api.PlanStats
)

// errorBody is the JSON error envelope: the canonical code plus a
// human-readable message.
type errorBody struct {
	Error string   `json:"error"`
	Code  api.Code `json:"code,omitempty"`
}

// maxBodyBytes bounds ordinary request bodies; imports carry a whole
// release history, so they get a larger cap of their own.
const (
	maxBodyBytes       = 1 << 20
	maxImportBodyBytes = 64 << 20
)

// Handler returns the HTTP/JSON transport: a thin codec over the
// api.Service the server implements.
//
//	POST   /v1/sessions             create a session
//	GET    /v1/sessions             list sessions (limit/cursor pagination)
//	GET    /v1/sessions/{id}        session state
//	DELETE /v1/sessions/{id}        close a session
//	POST   /v1/sessions/{id}/step   release one location
//	POST   /v1/sessions/{id}/stream windowed micro-batch stream ingest
//	GET    /v1/sessions/{id}/stream SSE push stream of certified releases
//	GET    /v1/sessions/{id}/export export a session for migration
//	POST   /v1/sessions/import      import a migrated session
//	POST   /v1/step                 batch multi-user ingest
//	GET    /healthz                 liveness (503 while draining)
//	GET    /statsz                  service counters
//	GET    /metricsz                Prometheus-text metrics
//
// Every request is traced: a client-supplied X-Priste-Trace header
// (16 hex digits, see obs.TraceHeader) is propagated through the step
// pipeline into the slow-step logs, a missing or malformed one is
// replaced by a server-generated ID, and the effective trace is echoed
// on the response — so every response names the ID to grep the server
// logs for.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	RegisterAPIRoutes(mux, s, func(total, decode, encode time.Duration) {
		s.metrics.observeServedStep(transportHTTP, total, decode, encode)
	})
	mux.HandleFunc("POST /v1/sessions/{id}/stream", s.handleStreamStep)
	mux.HandleFunc("GET /v1/sessions/{id}/stream", s.handleSessionStream)
	mux.Handle("GET /metricsz", s.metrics.Handler())
	return TraceHandler(mux, func(d time.Duration) {
		s.metrics.observeTransport(transportHTTP, d)
	})
}

// TraceHandler wraps h in the transport middleware every priste HTTP
// listener shares: it adopts a well-formed client X-Priste-Trace header
// (minting a fresh trace ID otherwise), echoes the effective ID on the
// response, tags the request context with trace + transport for the
// structured logs, and reports each request's wall time to observe
// (which may be nil).
func TraceHandler(h http.Handler, observe func(time.Duration)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		trace := obs.ParseTrace(r.Header.Get(obs.TraceHeader))
		if trace == 0 {
			trace = obs.NewTraceID()
		}
		w.Header().Set(obs.TraceHeader, obs.FormatTrace(trace))
		ctx := obs.WithTrace(obs.WithTransport(r.Context(), "http"), trace)
		h.ServeHTTP(w, r.WithContext(ctx))
		if observe != nil {
			observe(time.Since(start))
		}
	})
}

// RegisterAPIRoutes installs the HTTP/JSON codec for the non-streaming
// api.Service surface on mux — the same routes, bodies and error
// envelope whether svc is the in-process engine (*Server) or the fleet
// router. observeStep, if non-nil, receives the total/decode/encode
// wall times of each successfully served step request.
//
// Routes registered: the /v1/sessions CRUD + step + export/import set,
// /v1/step batch ingest, /healthz and /statsz. Streaming routes and
// /metricsz stay with the caller: they depend on capabilities beyond
// api.Service.
func RegisterAPIRoutes(mux *http.ServeMux, svc api.Service, observeStep func(total, decode, encode time.Duration)) {
	c := &apiCodec{svc: svc, observeStep: observeStep}
	mux.HandleFunc("POST /v1/sessions", c.handleCreate)
	mux.HandleFunc("GET /v1/sessions", c.handleList)
	mux.HandleFunc("GET /v1/sessions/{id}", c.handleGet)
	mux.HandleFunc("DELETE /v1/sessions/{id}", c.handleDelete)
	mux.HandleFunc("POST /v1/sessions/{id}/step", c.handleStep)
	mux.HandleFunc("GET /v1/sessions/{id}/export", c.handleExport)
	mux.HandleFunc("POST /v1/sessions/import", c.handleImport)
	mux.HandleFunc("POST /v1/step", c.handleBatch)
	mux.HandleFunc("GET /healthz", c.handleHealth)
	mux.HandleFunc("GET /statsz", c.handleStats)
}

// apiCodec is the shared HTTP/JSON request codec over an api.Service.
type apiCodec struct {
	svc         api.Service
	observeStep func(total, decode, encode time.Duration)
}

// WriteJSON writes v as the JSON response body with the given status.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// WriteError renders err through the canonical error envelope: the
// api.ErrorOf code picks the HTTP status and the body carries
// {"error": message, "code": code}.
func WriteError(w http.ResponseWriter, err error) {
	e := api.ErrorOf(err)
	WriteJSON(w, e.Code.HTTPStatus(), errorBody{Error: e.Message, Code: e.Code})
}

func writeJSON(w http.ResponseWriter, status int, v any) { WriteJSON(w, status, v) }
func writeError(w http.ResponseWriter, err error)        { WriteError(w, err) }

func decodeJSON(r *http.Request, v any, limit int64) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, limit))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("server: bad request body: %w", err)
	}
	return nil
}

func (c *apiCodec) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req api.CreateSessionRequest
	if err := decodeJSON(r, &req, maxBodyBytes); err != nil {
		WriteError(w, err)
		return
	}
	info, err := c.svc.CreateSession(req)
	if err != nil {
		WriteError(w, err)
		return
	}
	WriteJSON(w, http.StatusCreated, info)
}

func (c *apiCodec) handleList(w http.ResponseWriter, r *http.Request) {
	req := api.ListSessionsRequest{Cursor: r.URL.Query().Get("cursor")}
	if raw := r.URL.Query().Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil {
			WriteError(w, api.Errf(api.CodeInvalidArgument, "server: bad limit: "+raw))
			return
		}
		req.Limit = n
	}
	page, err := c.svc.ListSessions(req)
	if err != nil {
		WriteError(w, err)
		return
	}
	WriteJSON(w, http.StatusOK, page)
}

func (c *apiCodec) handleGet(w http.ResponseWriter, r *http.Request) {
	info, err := c.svc.GetSession(r.PathValue("id"))
	if err != nil {
		WriteError(w, err)
		return
	}
	WriteJSON(w, http.StatusOK, info)
}

func (c *apiCodec) handleDelete(w http.ResponseWriter, r *http.Request) {
	if err := c.svc.DeleteSession(r.PathValue("id")); err != nil {
		WriteError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (c *apiCodec) handleStep(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req api.StepRequest
	if err := decodeJSON(r, &req, maxBodyBytes); err != nil {
		WriteError(w, err)
		return
	}
	decode := time.Since(start)
	resp, err := c.svc.Step(r.Context(), r.PathValue("id"), req.Loc)
	if err != nil {
		if r.Context().Err() != nil {
			// Client gone; any in-flight worker completes into the
			// buffered channel. Nothing useful to write.
			return
		}
		WriteError(w, err)
		return
	}
	encStart := time.Now()
	WriteJSON(w, http.StatusOK, resp)
	if c.observeStep != nil {
		c.observeStep(time.Since(start), decode, time.Since(encStart))
	}
}

func (c *apiCodec) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req api.BatchStepRequest
	if err := decodeJSON(r, &req, maxBodyBytes); err != nil {
		WriteError(w, err)
		return
	}
	WriteJSON(w, http.StatusOK, api.BatchStepResponse{Results: c.svc.StepBatch(r.Context(), req.Steps)})
}

func (c *apiCodec) handleExport(w http.ResponseWriter, r *http.Request) {
	exp, err := c.svc.ExportSession(r.Context(), r.PathValue("id"))
	if err != nil {
		WriteError(w, err)
		return
	}
	WriteJSON(w, http.StatusOK, exp)
}

func (c *apiCodec) handleImport(w http.ResponseWriter, r *http.Request) {
	var exp api.SessionExport
	if err := decodeJSON(r, &exp, maxImportBodyBytes); err != nil {
		WriteError(w, err)
		return
	}
	info, err := c.svc.ImportSession(exp)
	if err != nil {
		WriteError(w, err)
		return
	}
	WriteJSON(w, http.StatusCreated, info)
}

func (c *apiCodec) handleHealth(w http.ResponseWriter, _ *http.Request) {
	h := c.svc.Health()
	status := http.StatusOK
	if h.Status != "ok" {
		// "draining": graceful shutdown in progress (or, on a router, no
		// reachable backends). 503 pulls the instance out of
		// load-balancer rotation before the listener closes.
		status = http.StatusServiceUnavailable
	}
	WriteJSON(w, status, h)
}

func (c *apiCodec) handleStats(w http.ResponseWriter, _ *http.Request) {
	WriteJSON(w, http.StatusOK, c.svc.Stats())
}
