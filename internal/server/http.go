package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"priste/internal/api"
	"priste/internal/obs"
)

// Wire types and error codes live in the transport-neutral api package;
// the aliases keep the historical server-qualified names working.
type (
	// CreateSessionRequest is the body of POST /v1/sessions.
	CreateSessionRequest = api.CreateSessionRequest
	// SessionInfo is a session's public state.
	SessionInfo = api.SessionInfo
	// StepRequest is the body of POST /v1/sessions/{id}/step.
	StepRequest = api.StepRequest
	// StepResponse is one certified release.
	StepResponse = api.StepResponse
	// BatchStepItem is one entry of POST /v1/step.
	BatchStepItem = api.BatchStepItem
	// BatchStepRequest is the body of POST /v1/step.
	BatchStepRequest = api.BatchStepRequest
	// BatchStepResponse is the body of the batch response.
	BatchStepResponse = api.BatchStepResponse
	// SessionExport is a session's complete migratable state.
	SessionExport = api.SessionExport
	// SessionPage is one page of GET /v1/sessions.
	SessionPage = api.SessionPage
	// Stats is the /statsz document.
	Stats = api.Stats
	// StoreStats is the /statsz durability section.
	StoreStats = api.StoreStats
	// CertCacheStats is the /statsz certified-release cache section.
	CertCacheStats = api.CertCacheStats
	// PlanStats is the /statsz plan-registry section.
	PlanStats = api.PlanStats
)

// errorBody is the JSON error envelope: the canonical code plus a
// human-readable message.
type errorBody struct {
	Error string   `json:"error"`
	Code  api.Code `json:"code,omitempty"`
}

// maxBodyBytes bounds ordinary request bodies; imports carry a whole
// release history, so they get a larger cap of their own.
const (
	maxBodyBytes       = 1 << 20
	maxImportBodyBytes = 64 << 20
)

// Handler returns the HTTP/JSON transport: a thin codec over the
// api.Service the server implements.
//
//	POST   /v1/sessions             create a session
//	GET    /v1/sessions             list sessions (limit/cursor pagination)
//	GET    /v1/sessions/{id}        session state
//	DELETE /v1/sessions/{id}        close a session
//	POST   /v1/sessions/{id}/step   release one location
//	POST   /v1/sessions/{id}/stream windowed micro-batch stream ingest
//	GET    /v1/sessions/{id}/stream SSE push stream of certified releases
//	GET    /v1/sessions/{id}/export export a session for migration
//	POST   /v1/sessions/import      import a migrated session
//	POST   /v1/step                 batch multi-user ingest
//	GET    /healthz                 liveness (503 while draining)
//	GET    /statsz                  service counters
//	GET    /metricsz                Prometheus-text metrics
//
// Every request is traced: a client-supplied X-Priste-Trace header
// (16 hex digits, see obs.TraceHeader) is propagated through the step
// pipeline into the slow-step logs, a missing or malformed one is
// replaced by a server-generated ID, and the effective trace is echoed
// on the response — so every response names the ID to grep the server
// logs for.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", s.handleCreate)
	mux.HandleFunc("GET /v1/sessions", s.handleList)
	mux.HandleFunc("GET /v1/sessions/{id}", s.handleGet)
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleDelete)
	mux.HandleFunc("POST /v1/sessions/{id}/step", s.handleStep)
	mux.HandleFunc("POST /v1/sessions/{id}/stream", s.handleStreamStep)
	mux.HandleFunc("GET /v1/sessions/{id}/stream", s.handleSessionStream)
	mux.HandleFunc("GET /v1/sessions/{id}/export", s.handleExport)
	mux.HandleFunc("POST /v1/sessions/import", s.handleImport)
	mux.HandleFunc("POST /v1/step", s.handleBatch)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /statsz", s.handleStats)
	mux.Handle("GET /metricsz", s.metrics.Handler())
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		trace := obs.ParseTrace(r.Header.Get(obs.TraceHeader))
		if trace == 0 {
			trace = obs.NewTraceID()
		}
		w.Header().Set(obs.TraceHeader, obs.FormatTrace(trace))
		ctx := obs.WithTrace(obs.WithTransport(r.Context(), "http"), trace)
		mux.ServeHTTP(w, r.WithContext(ctx))
		s.metrics.observeTransport(transportHTTP, time.Since(start))
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	e := api.ErrorOf(err)
	writeJSON(w, e.Code.HTTPStatus(), errorBody{Error: e.Message, Code: e.Code})
}

func decodeJSON(r *http.Request, v any, limit int64) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, limit))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("server: bad request body: %w", err)
	}
	return nil
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req api.CreateSessionRequest
	if err := decodeJSON(r, &req, maxBodyBytes); err != nil {
		writeError(w, err)
		return
	}
	info, err := s.CreateSession(req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	req := api.ListSessionsRequest{Cursor: r.URL.Query().Get("cursor")}
	if raw := r.URL.Query().Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil {
			writeError(w, api.Errf(api.CodeInvalidArgument, "server: bad limit: "+raw))
			return
		}
		req.Limit = n
	}
	page, err := s.ListSessions(req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, page)
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	info, err := s.GetSession(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if err := s.DeleteSession(r.PathValue("id")); err != nil {
		writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleStep(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req api.StepRequest
	if err := decodeJSON(r, &req, maxBodyBytes); err != nil {
		writeError(w, err)
		return
	}
	decode := time.Since(start)
	resp, err := s.Step(r.Context(), r.PathValue("id"), req.Loc)
	if err != nil {
		if r.Context().Err() != nil {
			// Client gone; any in-flight worker completes into the
			// buffered channel. Nothing useful to write.
			return
		}
		writeError(w, err)
		return
	}
	encStart := time.Now()
	writeJSON(w, http.StatusOK, resp)
	s.metrics.observeServedStep(transportHTTP, time.Since(start), decode, time.Since(encStart))
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req api.BatchStepRequest
	if err := decodeJSON(r, &req, maxBodyBytes); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, api.BatchStepResponse{Results: s.StepBatch(r.Context(), req.Steps)})
}

func (s *Server) handleExport(w http.ResponseWriter, r *http.Request) {
	exp, err := s.ExportSession(r.Context(), r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, exp)
}

func (s *Server) handleImport(w http.ResponseWriter, r *http.Request) {
	var exp api.SessionExport
	if err := decodeJSON(r, &exp, maxImportBodyBytes); err != nil {
		writeError(w, err)
		return
	}
	info, err := s.ImportSession(exp)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	h := s.Health()
	status := http.StatusOK
	if h.Status != "ok" {
		// "draining": graceful shutdown in progress. 503 pulls the
		// instance out of load-balancer rotation before the listener
		// closes.
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}
