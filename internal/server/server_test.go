package server

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"sync"
	"testing"

	"priste/internal/api"
	"priste/internal/core"
	"priste/internal/eventspec"
	"priste/internal/grid"
	"priste/internal/lppm"
	"priste/internal/markov"
	"priste/internal/world"
)

// directFramework builds a core.Framework exactly the way the server
// does for testConfig and the given seed — the reference for the
// same-semantics acceptance check.
func directFramework(t *testing.T, cfg Config, seed int64) *core.Framework {
	t.Helper()
	g, err := grid.New(cfg.GridW, cfg.GridH, cfg.Cell)
	if err != nil {
		t.Fatal(err)
	}
	chain, err := markov.GaussianChain(g, cfg.Sigma)
	if err != nil {
		t.Fatal(err)
	}
	events, err := eventspec.ParseAll(cfg.Events, g.States(), 0)
	if err != nil {
		t.Fatal(err)
	}
	coreCfg := core.DefaultConfig(cfg.Epsilon, cfg.Alpha)
	coreCfg.QPTimeout = cfg.QPTimeout
	fw, err := core.New(lppm.NewPlanarLaplace(g), world.NewHomogeneous(chain), events, coreCfg, core.NewSessionRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	return fw
}

// TestConcurrentSessions steps 32 sessions concurrently (run under
// -race) and checks each session's releases come back in FIFO order
// with consecutive timestamps.
func TestConcurrentSessions(t *testing.T) {
	const (
		sessions = 32
		steps    = 8
	)
	srv := newTestServer(t, testConfig())
	var wg sync.WaitGroup
	errc := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		id := fmt.Sprintf("user-%d", i)
		seed := int64(i + 1)
		if _, err := srv.CreateSession(CreateSessionRequest{ID: id, Seed: &seed}); err != nil {
			t.Fatalf("create %s: %v", id, err)
		}
		wg.Add(1)
		go func(id string, seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			m := srv.Config().GridW * srv.Config().GridH
			// Enqueue all steps up front, then await: completion order
			// must equal enqueue order.
			dones := make([]chan stepOutcome, steps)
			for k := range dones {
				done, err := srv.stepAsync(context.Background(), id, rng.Intn(m))
				if err != nil {
					errc <- fmt.Errorf("%s step %d: %w", id, k, err)
					return
				}
				dones[k] = done
			}
			for k, done := range dones {
				out := <-done
				if out.err != nil {
					errc <- fmt.Errorf("%s step %d: %w", id, k, out.err)
					return
				}
				if out.res.T != k {
					errc <- fmt.Errorf("%s step %d released T=%d (out of order)", id, k, out.res.T)
					return
				}
			}
		}(id, seed)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	st := srv.metrics.Snapshot()
	if st.Steps.Served != sessions*steps {
		t.Fatalf("steps served = %d, want %d", st.Steps.Served, sessions*steps)
	}
	if st.Sessions.Live != sessions {
		t.Fatalf("live = %d, want %d", st.Sessions.Live, sessions)
	}
	if st.Latency.Samples == 0 || st.Latency.P99Micros < st.Latency.P50Micros {
		t.Fatalf("bad latency stats: %+v", st.Latency)
	}
}

// TestBatchSemantics checks the batch endpoint against direct
// core.Framework.Step calls: same seed, same trajectory, identical
// StepResults — and that in-batch order is preserved per session even
// when a session appears several times in one batch.
func TestBatchSemantics(t *testing.T) {
	cfg := testConfig()
	srv := newTestServer(t, cfg)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := NewClient(ts.URL, nil)
	ctx := context.Background()

	const T = 6
	m := cfg.GridW * cfg.GridH
	users := []string{"alice", "bob"}
	trajs := make(map[string][]int)
	for i, u := range users {
		seed := int64(100 + i)
		if _, err := client.CreateSession(ctx, CreateSessionRequest{ID: u, Seed: &seed}); err != nil {
			t.Fatalf("create %s: %v", u, err)
		}
		pathRNG := rand.New(rand.NewSource(seed * 7))
		traj := make([]int, T)
		for k := range traj {
			traj[k] = pathRNG.Intn(m)
		}
		trajs[u] = traj
	}

	// Interleave both users' trajectories into batches of 4: two
	// consecutive steps per user per batch.
	var all []StepResponse
	for k := 0; k < T; k += 2 {
		var batch []BatchStepItem
		for _, u := range users {
			batch = append(batch,
				BatchStepItem{SessionID: u, Loc: trajs[u][k]},
				BatchStepItem{SessionID: u, Loc: trajs[u][k+1]})
		}
		results, err := client.StepBatch(ctx, batch)
		if err != nil {
			t.Fatalf("StepBatch: %v", err)
		}
		if len(results) != len(batch) {
			t.Fatalf("got %d results for %d items", len(results), len(batch))
		}
		all = append(all, results...)
	}

	// Split the responses back per user; order within a user must be
	// FIFO (T = 0,1,2,...).
	perUser := make(map[string][]StepResponse)
	for _, r := range all {
		if r.Error != "" {
			t.Fatalf("batch item failed: %+v", r)
		}
		perUser[r.SessionID] = append(perUser[r.SessionID], r)
	}
	for i, u := range users {
		got := perUser[u]
		if len(got) != T {
			t.Fatalf("%s: %d results, want %d", u, len(got), T)
		}
		fw := directFramework(t, cfg, int64(100+i))
		want, err := fw.Run(trajs[u])
		if err != nil {
			t.Fatalf("direct run: %v", err)
		}
		for k := range want {
			g, w := got[k], want[k]
			if g.T != w.T || g.Obs != w.Obs || g.Alpha != w.Alpha ||
				g.Attempts != w.Attempts || g.Uniform != w.Uniform ||
				g.ConservativeRejections != w.ConservativeRejections {
				t.Errorf("%s step %d: server %+v != direct %+v", u, k, g, w)
			}
		}
	}
}

// TestHTTPRoundTrip exercises the full JSON API through httptest.
func TestHTTPRoundTrip(t *testing.T) {
	cfg := testConfig()
	srv := newTestServer(t, cfg)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := NewClient(ts.URL, nil)
	ctx := context.Background()

	if err := client.Health(ctx); err != nil {
		t.Fatalf("healthz: %v", err)
	}

	seed := int64(5)
	info, err := client.CreateSession(ctx, CreateSessionRequest{
		Seed:    &seed,
		Epsilon: 0.8,
		Events:  []string{"0-3@1-2"},
	})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if info.ID == "" || info.T != 0 || info.Epsilon != 0.8 {
		t.Fatalf("create info = %+v", info)
	}
	if info.Mechanism != MechanismLaplace {
		t.Fatalf("mechanism = %q, want default %q", info.Mechanism, MechanismLaplace)
	}

	for k := 0; k < 3; k++ {
		res, err := client.Step(ctx, info.ID, k)
		if err != nil {
			t.Fatalf("step %d: %v", k, err)
		}
		if res.T != k {
			t.Fatalf("step %d: T = %d", k, res.T)
		}
		if res.Obs < 0 || res.Obs >= cfg.GridW*cfg.GridH {
			t.Fatalf("step %d: released %d outside map", k, res.Obs)
		}
	}

	got, err := client.Session(ctx, info.ID)
	if err != nil || got.T != 3 {
		t.Fatalf("session info = %+v, %v; want T=3", got, err)
	}

	st, err := client.Stats(ctx)
	if err != nil {
		t.Fatalf("statsz: %v", err)
	}
	if st.Steps.Served != 3 || st.Sessions.Created != 1 || st.Sessions.Live != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Steps.SuppressionRate < 0 || st.Steps.SuppressionRate > 1 {
		t.Fatalf("suppression_rate = %g", st.Steps.SuppressionRate)
	}

	if err := client.DeleteSession(ctx, info.ID); err != nil {
		t.Fatalf("delete: %v", err)
	}
	// The typed client reconstructs the canonical error, so errors.Is
	// matches the service sentinels across the wire.
	if _, err := client.Step(ctx, info.ID, 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("step after delete: %v, want ErrNotFound", err)
	}
	if _, err := client.Session(ctx, info.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("get after delete: %v, want ErrNotFound", err)
	}
}

// TestHTTPErrors covers the API's failure envelope.
func TestHTTPErrors(t *testing.T) {
	srv := newTestServer(t, testConfig())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := NewClient(ts.URL, nil)
	ctx := context.Background()

	// Bad event spec.
	if _, err := client.CreateSession(ctx, CreateSessionRequest{Events: []string{"nope"}}); api.CodeOf(err) != api.CodeInvalidArgument {
		t.Fatalf("bad event spec: %v, want invalid_argument", err)
	}
	// Bad mechanism.
	if _, err := client.CreateSession(ctx, CreateSessionRequest{Mechanism: "rot13"}); api.CodeOf(err) != api.CodeInvalidArgument {
		t.Fatalf("bad mechanism: %v, want invalid_argument", err)
	}
	// Duplicate id.
	if _, err := client.CreateSession(ctx, CreateSessionRequest{ID: "dup"}); err != nil {
		t.Fatal(err)
	}
	if _, err := client.CreateSession(ctx, CreateSessionRequest{ID: "dup"}); !errors.Is(err, ErrSessionExists) {
		t.Fatalf("duplicate id: %v, want ErrSessionExists", err)
	}
	// Out-of-range location is a per-request 400; the session survives.
	if _, err := client.Step(ctx, "dup", 9999); api.CodeOf(err) != api.CodeInvalidArgument {
		t.Fatalf("bad loc: %v, want invalid_argument", err)
	}
	if _, err := client.Step(ctx, "dup", 0); err != nil {
		t.Fatalf("step after bad loc: %v", err)
	}
	// Batch reports unknown sessions inline.
	results, err := client.StepBatch(ctx, []BatchStepItem{
		{SessionID: "dup", Loc: 1},
		{SessionID: "ghost", Loc: 1},
	})
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	if results[0].Error != "" {
		t.Fatalf("batch item 0 failed: %+v", results[0])
	}
	if results[1].Code != api.CodeNotFound {
		t.Fatalf("batch item 1 = %+v, want code not_found", results[1])
	}
}

// TestDeltaMechanismSession runs a session on the δ-location-set
// mechanism end to end.
func TestDeltaMechanismSession(t *testing.T) {
	cfg := testConfig()
	srv := newTestServer(t, cfg)
	seed := int64(3)
	delta := 0.05
	sess, err := srv.CreateSession(CreateSessionRequest{
		ID: "d", Seed: &seed, Mechanism: MechanismDelta, Delta: &delta,
	})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if sess.Mechanism != MechanismDelta {
		t.Fatalf("mechanism = %q", sess.Mechanism)
	}
	for k := 0; k < 3; k++ {
		if _, err := srv.Step(bg, "d", k); err != nil {
			t.Fatalf("step %d: %v", k, err)
		}
	}
}

// TestServerClose verifies shutdown fails pending work cleanly and is
// idempotent.
func TestServerClose(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = -1
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.CreateSession(CreateSessionRequest{ID: "u"}); err != nil {
		t.Fatal(err)
	}
	done, err := srv.stepAsync(context.Background(), "u", 0)
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	srv.Close()
	out := <-done
	if !errors.Is(out.err, ErrSessionClosed) {
		t.Fatalf("pending step after Close: %v, want ErrSessionClosed", out.err)
	}
}
