// Package certcache implements the shared certified-release cache: a
// sharded, bounded-LRU map from the identity of one Theorem IV.1 release
// check to its certified qp.ReleaseDecision.
//
// The planar Laplace mechanism (and every other history-independent LPPM)
// emits the same column for a given budget at every timestamp, so the
// certified verdict for a candidate observation is fully determined by
// (plan, event, timestamp, committed (alphaBits, obs) history, candidate
// alphaBits, candidate obs) — the Key below. Thousands of sessions sharing
// one compiled plan therefore repeat each other's QP work exactly, and a
// hit replaces an O(m²) quantifier check plus a branch-and-bound solve
// with one map lookup. Stateful mechanisms (δ-location-set) have
// session-dependent emissions and must bypass the cache entirely.
//
// Unknown (conservative) verdicts are never stored: they encode an
// expired time budget, not a property of the release, and replaying them
// would turn one slow solve into a permanent rejection.
package certcache

import (
	"container/list"
	"sync"
	"sync/atomic"

	"priste/internal/qp"
)

// Key identifies one release check under a shared plan. History is the
// rolling fingerprint of the committed (alphaBits, obs) pairs maintained
// by world.Quantifier; AlphaBits is math.Float64bits of the candidate
// budget (0 for the uniform fallback column).
type Key struct {
	Plan      uint64
	Event     int
	T         int
	History   uint64
	AlphaBits uint64
	Obs       int
}

// hash mixes the key fields with FNV-1a for shard selection.
func (k Key) hash() uint64 {
	const (
		offset uint64 = 14695981039346656037
		prime  uint64 = 1099511628211
	)
	h := offset
	for _, w := range [...]uint64{k.Plan, uint64(k.Event), uint64(k.T), k.History, k.AlphaBits, uint64(k.Obs)} {
		for shift := 0; shift < 64; shift += 8 {
			h ^= (w >> shift) & 0xff
			h *= prime
		}
	}
	return h
}

// numShards stripes the cache's mutexes so concurrent sessions do not
// serialise on one lock.
const numShards = 64

type entry struct {
	key Key
	dec qp.ReleaseDecision
}

type shard struct {
	mu      sync.Mutex
	ll      *list.List // most recently used at the front
	entries map[Key]*list.Element
}

// Cache is a sharded, bounded-LRU certified-release cache. Safe for
// concurrent use.
type Cache struct {
	shards   [numShards]shard
	perShard int

	hits, misses, evictions atomic.Int64
}

// New returns a cache bounded to roughly capacity entries (rounded up to
// a whole number per shard). A non-positive capacity panics; use a nil
// *Cache to disable caching.
func New(capacity int) *Cache {
	if capacity <= 0 {
		panic("certcache: capacity must be positive")
	}
	per := (capacity + numShards - 1) / numShards
	c := &Cache{perShard: per}
	for i := range c.shards {
		c.shards[i].ll = list.New()
		c.shards[i].entries = make(map[Key]*list.Element)
	}
	return c
}

func (c *Cache) shardFor(k Key) *shard {
	return &c.shards[k.hash()%numShards]
}

// Get returns the cached decision for k, marking it most recently used.
func (c *Cache) Get(k Key) (qp.ReleaseDecision, bool) {
	sh := c.shardFor(k)
	sh.mu.Lock()
	el, ok := sh.entries[k]
	if !ok {
		sh.mu.Unlock()
		c.misses.Add(1)
		return qp.ReleaseDecision{}, false
	}
	sh.ll.MoveToFront(el)
	dec := el.Value.(*entry).dec
	sh.mu.Unlock()
	c.hits.Add(1)
	return dec, true
}

// Put stores a decision, evicting the shard's least recently used entry
// beyond capacity. Callers must not store Unknown/conservative verdicts
// (see the package comment); Put panics if they do.
func (c *Cache) Put(k Key, dec qp.ReleaseDecision) {
	if dec.Conservative || dec.Eq15.Verdict == qp.Unknown || dec.Eq16.Verdict == qp.Unknown {
		panic("certcache: conservative/Unknown verdicts must not be cached")
	}
	sh := c.shardFor(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.entries[k]; ok {
		sh.ll.MoveToFront(el)
		el.Value.(*entry).dec = dec
		return
	}
	sh.entries[k] = sh.ll.PushFront(&entry{key: k, dec: dec})
	for len(sh.entries) > c.perShard {
		back := sh.ll.Back()
		sh.ll.Remove(back)
		delete(sh.entries, back.Value.(*entry).key)
		c.evictions.Add(1)
	}
}

// Range calls f for every cached (key, decision) pair until f returns
// false. Iteration holds one shard lock at a time and visits shards in
// order; entries inserted or evicted concurrently may or may not be
// seen. Used by the persistence layer to warm-save the cache.
func (c *Cache) Range(f func(Key, qp.ReleaseDecision) bool) {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for el := sh.ll.Front(); el != nil; el = el.Next() {
			e := el.Value.(*entry)
			if !f(e.key, e.dec) {
				sh.mu.Unlock()
				return
			}
		}
		sh.mu.Unlock()
	}
}

// Len returns the number of cached decisions.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}

// Stats is a point-in-time view of the cache counters.
type Stats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Entries   int64 `json:"entries"`
}

// Stats returns the lifetime counters and current size.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Entries:   int64(c.Len()),
	}
}
