package certcache

import (
	"sync"
	"testing"

	"priste/internal/qp"
)

func okDecision() qp.ReleaseDecision {
	return qp.ReleaseDecision{
		OK:   true,
		Eq15: qp.Result{Verdict: qp.Satisfied},
		Eq16: qp.Result{Verdict: qp.Satisfied},
	}
}

func violatedDecision() qp.ReleaseDecision {
	return qp.ReleaseDecision{
		Eq15: qp.Result{Verdict: qp.Violated},
		Eq16: qp.Result{Verdict: qp.Satisfied},
	}
}

func TestGetPut(t *testing.T) {
	c := New(1024)
	k := Key{Plan: 1, Event: 0, T: 3, History: 42, AlphaBits: 7, Obs: 5}
	if _, ok := c.Get(k); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(k, okDecision())
	dec, ok := c.Get(k)
	if !ok || !dec.OK {
		t.Fatalf("lost stored decision: ok=%v dec=%+v", ok, dec)
	}
	// A differing field in the key must miss.
	for _, other := range []Key{
		{Plan: 2, Event: 0, T: 3, History: 42, AlphaBits: 7, Obs: 5},
		{Plan: 1, Event: 1, T: 3, History: 42, AlphaBits: 7, Obs: 5},
		{Plan: 1, Event: 0, T: 4, History: 42, AlphaBits: 7, Obs: 5},
		{Plan: 1, Event: 0, T: 3, History: 43, AlphaBits: 7, Obs: 5},
		{Plan: 1, Event: 0, T: 3, History: 42, AlphaBits: 8, Obs: 5},
		{Plan: 1, Event: 0, T: 3, History: 42, AlphaBits: 7, Obs: 6},
	} {
		if _, ok := c.Get(other); ok {
			t.Fatalf("key %+v unexpectedly hit", other)
		}
	}
	c.Put(k, violatedDecision())
	if dec, _ := c.Get(k); dec.OK {
		t.Fatal("overwrite did not take")
	}
	st := c.Stats()
	if st.Entries != 1 || st.Hits < 2 || st.Misses < 7 {
		t.Fatalf("stats %+v", st)
	}
}

func TestUnknownRejected(t *testing.T) {
	c := New(64)
	defer func() {
		if recover() == nil {
			t.Fatal("conservative decision accepted")
		}
	}()
	c.Put(Key{}, qp.ReleaseDecision{
		Conservative: true,
		Eq15:         qp.Result{Verdict: qp.Unknown},
		Eq16:         qp.Result{Verdict: qp.Unknown},
	})
}

func TestBoundedLRU(t *testing.T) {
	// numShards entries per shard max → capacity numShards means one per
	// shard; flooding far beyond capacity must evict, not grow.
	c := New(numShards)
	const n = 10 * numShards
	for i := 0; i < n; i++ {
		c.Put(Key{Plan: uint64(i)}, okDecision())
	}
	if got := c.Len(); got > numShards {
		t.Fatalf("cache grew to %d entries, capacity %d", got, numShards)
	}
	if st := c.Stats(); st.Evictions == 0 {
		t.Fatalf("no evictions recorded: %+v", st)
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(4096)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := Key{Plan: uint64(i % 64), T: g}
				c.Put(k, okDecision())
				c.Get(k)
			}
		}(g)
	}
	wg.Wait()
	if c.Len() == 0 {
		t.Fatal("empty after concurrent fills")
	}
}
