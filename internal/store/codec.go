package store

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
)

// On-disk framing. Every file starts with an 8-byte magic; WAL bodies
// are a sequence of self-checking records
//
//	[type:1][len:uvarint][payload:len][crc32(type‖payload):4]
//
// so a torn tail (crash mid-append) is detected by length or checksum
// and the valid prefix survives. Snapshot and cache files hold a single
// framed blob and are only ever replaced atomically (tmp + rename).
var (
	walMagic   = []byte("PRWAL001")
	snapMagic  = []byte("PRSNAP01")
	cacheMagic = []byte("PRCCH001")
)

// WAL record types.
const (
	recMeta      byte = 1 // JSON SessionMeta
	recStep      byte = 2 // binary StepRecord
	recTombstone byte = 3 // empty payload: session deleted
)

// maxRecordLen bounds a single record so a corrupt length prefix cannot
// drive a giant allocation on load. Step records are tens of bytes;
// snapshot and cache blobs are one framed record each and grow with
// session age / cache size, so the bound is generous (256 MiB ≈ a
// 16M-step session). Writers enforce the same bound (see checkFrameLen)
// so a file that was written can always be read back.
const maxRecordLen = 1 << 28

// checkFrameLen refuses payloads readFrame would reject: persisting an
// unloadable record silently destroys the state it claims to save.
func checkFrameLen(what string, n int) error {
	if n > maxRecordLen {
		return fmt.Errorf("store: %s payload %d bytes exceeds the %d-byte record bound", what, n, maxRecordLen)
	}
	return nil
}

// appendFrame appends one framed record to buf.
func appendFrame(buf []byte, typ byte, payload []byte) []byte {
	buf = append(buf, typ)
	buf = binary.AppendUvarint(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	crc := crc32.NewIEEE()
	crc.Write([]byte{typ})
	crc.Write(payload)
	return binary.LittleEndian.AppendUint32(buf, crc.Sum32())
}

// readFrame parses the record at data[off:]. Any truncation or checksum
// mismatch returns an error; the caller treats it as the end of the
// valid prefix.
func readFrame(data []byte, off int) (typ byte, payload []byte, next int, err error) {
	if off >= len(data) {
		return 0, nil, 0, fmt.Errorf("store: end of log")
	}
	typ = data[off]
	n, k := binary.Uvarint(data[off+1:])
	if k <= 0 || n > maxRecordLen {
		return 0, nil, 0, fmt.Errorf("store: bad record length")
	}
	body := off + 1 + k
	end := body + int(n) + 4
	if end > len(data) {
		return 0, nil, 0, fmt.Errorf("store: truncated record")
	}
	payload = data[body : body+int(n)]
	crc := crc32.NewIEEE()
	crc.Write([]byte{typ})
	crc.Write(payload)
	if crc.Sum32() != binary.LittleEndian.Uint32(data[body+int(n):]) {
		return 0, nil, 0, fmt.Errorf("store: record checksum mismatch")
	}
	return typ, payload, end, nil
}

func encodeStep(rec StepRecord) []byte {
	buf := make([]byte, 0, 40+len(rec.RNG))
	buf = binary.AppendUvarint(buf, uint64(rec.T))
	buf = binary.LittleEndian.AppendUint64(buf, rec.Tag.AlphaBits)
	buf = binary.AppendUvarint(buf, uint64(rec.Tag.Obs))
	buf = binary.LittleEndian.AppendUint64(buf, rec.Fingerprint)
	buf = binary.AppendUvarint(buf, uint64(len(rec.RNG)))
	return append(buf, rec.RNG...)
}

func decodeStep(p []byte) (StepRecord, error) {
	var rec StepRecord
	t, n := binary.Uvarint(p)
	if n <= 0 {
		return rec, fmt.Errorf("store: step record: bad t")
	}
	p = p[n:]
	if len(p) < 8 {
		return rec, fmt.Errorf("store: step record: short alpha")
	}
	rec.T = int(t)
	rec.Tag.AlphaBits = binary.LittleEndian.Uint64(p)
	p = p[8:]
	obs, n := binary.Uvarint(p)
	if n <= 0 {
		return rec, fmt.Errorf("store: step record: bad obs")
	}
	p = p[n:]
	rec.Tag.Obs = int(obs)
	if len(p) < 8 {
		return rec, fmt.Errorf("store: step record: short fingerprint")
	}
	rec.Fingerprint = binary.LittleEndian.Uint64(p)
	p = p[8:]
	rngLen, n := binary.Uvarint(p)
	if n <= 0 || int(rngLen) != len(p)-n {
		return rec, fmt.Errorf("store: step record: bad rng length")
	}
	if rngLen > 0 {
		rec.RNG = append([]byte(nil), p[n:]...)
	}
	return rec, nil
}

func encodeSnapshot(state SessionState) ([]byte, error) {
	meta, err := json.Marshal(state.Meta)
	if err != nil {
		return nil, fmt.Errorf("store: marshal meta: %w", err)
	}
	buf := make([]byte, 0, len(meta)+16*len(state.Tags)+len(state.RNG)+64)
	buf = binary.AppendUvarint(buf, uint64(len(meta)))
	buf = append(buf, meta...)
	buf = binary.AppendUvarint(buf, uint64(len(state.Tags)))
	for _, tag := range state.Tags {
		buf = binary.LittleEndian.AppendUint64(buf, tag.AlphaBits)
		buf = binary.AppendUvarint(buf, uint64(tag.Obs))
	}
	buf = binary.LittleEndian.AppendUint64(buf, state.Fingerprint)
	buf = binary.AppendUvarint(buf, uint64(len(state.RNG)))
	buf = append(buf, state.RNG...)
	if err := checkFrameLen("snapshot", len(buf)); err != nil {
		return nil, err
	}
	out := make([]byte, 0, len(snapMagic)+len(buf)+16)
	out = append(out, snapMagic...)
	return appendFrame(out, recMeta, buf), nil
}

func decodeSnapshot(data []byte) (SessionState, error) {
	var state SessionState
	if len(data) < len(snapMagic) || string(data[:len(snapMagic)]) != string(snapMagic) {
		return state, fmt.Errorf("store: bad snapshot magic")
	}
	_, p, _, err := readFrame(data, len(snapMagic))
	if err != nil {
		return state, err
	}
	metaLen, n := binary.Uvarint(p)
	// Compare in the uint64 domain: casting a huge corrupt length to int
	// would wrap negative and slip past the bound into a slice panic.
	if n <= 0 || metaLen > uint64(len(p)-n) {
		return state, fmt.Errorf("store: snapshot: bad meta length")
	}
	if err := json.Unmarshal(p[n:n+int(metaLen)], &state.Meta); err != nil {
		return state, fmt.Errorf("store: snapshot meta: %w", err)
	}
	p = p[n+int(metaLen):]
	nTags, n := binary.Uvarint(p)
	// A tag occupies at least 9 bytes (8-byte alpha + 1-byte obs), so a
	// count the payload cannot hold is corruption — reject it before it
	// can drive a giant allocation (CRC32 does not make that impossible).
	if n <= 0 || nTags > uint64(len(p)-n)/9 {
		return state, fmt.Errorf("store: snapshot: bad tag count")
	}
	p = p[n:]
	state.Tags = make([]Tag, 0, nTags)
	for i := uint64(0); i < nTags; i++ {
		if len(p) < 8 {
			return state, fmt.Errorf("store: snapshot: truncated tags")
		}
		var tag Tag
		tag.AlphaBits = binary.LittleEndian.Uint64(p)
		p = p[8:]
		obs, n := binary.Uvarint(p)
		if n <= 0 {
			return state, fmt.Errorf("store: snapshot: bad tag obs")
		}
		p = p[n:]
		tag.Obs = int(obs)
		state.Tags = append(state.Tags, tag)
	}
	if len(p) < 8 {
		return state, fmt.Errorf("store: snapshot: short fingerprint")
	}
	state.Fingerprint = binary.LittleEndian.Uint64(p)
	p = p[8:]
	rngLen, n := binary.Uvarint(p)
	if n <= 0 || int(rngLen) != len(p)-n {
		return state, fmt.Errorf("store: snapshot: bad rng length")
	}
	if rngLen > 0 {
		state.RNG = append([]byte(nil), p[n:]...)
	}
	return state, nil
}

func encodeCache(entries []CacheEntry) ([]byte, error) {
	buf := make([]byte, 0, 64*len(entries)+16)
	buf = binary.AppendUvarint(buf, uint64(len(entries)))
	for _, e := range entries {
		buf = binary.AppendUvarint(buf, uint64(len(e.PlanKey)))
		buf = append(buf, e.PlanKey...)
		buf = binary.AppendUvarint(buf, uint64(e.Event))
		buf = binary.AppendUvarint(buf, uint64(e.T))
		buf = binary.LittleEndian.AppendUint64(buf, e.History)
		buf = binary.LittleEndian.AppendUint64(buf, e.AlphaBits)
		buf = binary.AppendUvarint(buf, uint64(e.Obs))
		var flags byte
		if e.Eq15OK {
			flags |= 1
		}
		if e.Eq16OK {
			flags |= 2
		}
		buf = append(buf, flags)
	}
	if err := checkFrameLen("cache", len(buf)); err != nil {
		return nil, err
	}
	out := make([]byte, 0, len(cacheMagic)+len(buf)+16)
	out = append(out, cacheMagic...)
	return appendFrame(out, recMeta, buf), nil
}

func decodeCache(data []byte) ([]CacheEntry, error) {
	if len(data) < len(cacheMagic) || string(data[:len(cacheMagic)]) != string(cacheMagic) {
		return nil, fmt.Errorf("store: bad cache magic")
	}
	_, p, _, err := readFrame(data, len(cacheMagic))
	if err != nil {
		return nil, err
	}
	count, n := binary.Uvarint(p)
	// An entry occupies at least 21 bytes (two u64s, four uvarints, one
	// flag byte); reject counts the payload cannot hold before allocating.
	if n <= 0 || count > uint64(len(p)-n)/21 {
		return nil, fmt.Errorf("store: cache: bad count")
	}
	p = p[n:]
	uvarint := func() (uint64, error) {
		v, n := binary.Uvarint(p)
		if n <= 0 {
			return 0, fmt.Errorf("store: cache: truncated")
		}
		p = p[n:]
		return v, nil
	}
	u64 := func() (uint64, error) {
		if len(p) < 8 {
			return 0, fmt.Errorf("store: cache: truncated")
		}
		v := binary.LittleEndian.Uint64(p)
		p = p[8:]
		return v, nil
	}
	entries := make([]CacheEntry, 0, count)
	for i := uint64(0); i < count; i++ {
		var e CacheEntry
		keyLen, err := uvarint()
		if err != nil {
			return nil, err
		}
		if keyLen > uint64(len(p)) {
			return nil, fmt.Errorf("store: cache: truncated key")
		}
		e.PlanKey = string(p[:keyLen])
		p = p[keyLen:]
		ev, err := uvarint()
		if err != nil {
			return nil, err
		}
		t, err := uvarint()
		if err != nil {
			return nil, err
		}
		if e.History, err = u64(); err != nil {
			return nil, err
		}
		if e.AlphaBits, err = u64(); err != nil {
			return nil, err
		}
		obs, err := uvarint()
		if err != nil {
			return nil, err
		}
		if len(p) < 1 {
			return nil, fmt.Errorf("store: cache: truncated flags")
		}
		e.Event, e.T, e.Obs = int(ev), int(t), int(obs)
		e.Eq15OK = p[0]&1 != 0
		e.Eq16OK = p[0]&2 != 0
		p = p[1:]
		entries = append(entries, e)
	}
	return entries, nil
}
