//go:build unix

package store

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// lockDir takes an exclusive advisory flock on <dir>/LOCK so two
// processes cannot journal into the same store directory — concurrent
// appenders with independent file offsets would silently shred each
// other's WALs. Returns the held lock file; releasing is closing it.
func lockDir(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, "LOCK"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: directory %s is locked by another process: %w", dir, err)
	}
	return f, nil
}
