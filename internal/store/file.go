package store

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"priste/internal/world"
)

// FileStore is the default durable Store: one append-only WAL plus one
// snapshot file per session under dir/sessions (filenames are the hex of
// the session id, so arbitrary ids are safe), and a single
// certified-release cache file. WriteSnapshot compacts a session's WAL
// to empty after atomically replacing its snapshot, so recovery reads
// snapshot + WAL suffix. With fsync enabled every append is synced
// before the step is acknowledged (durable to power loss); without it,
// appends rely on the page cache (durable to process crash only).
type FileStore struct {
	dir   string
	fsync bool

	// lock is the held <dir>/LOCK flock guarding against a second
	// process journaling into the same directory; closed on Close.
	lock *os.File

	mu      sync.Mutex
	handles map[string]*walHandle
	closed  bool

	appends, appendBytes, fsyncs atomic.Int64
	fsyncNanos                   atomic.Int64
	snapshots, tombstones        atomic.Int64
	sessionsLoaded, loadFailures atomic.Int64
	corruptSuffixes              atomic.Int64

	// gens mints journal generation tokens (see Store.CreateSession).
	gens atomic.Uint64

	// syncObs, when set, receives the duration of every WAL append sync
	// (the serving-path fsync; see SetSyncObserver).
	syncObs atomic.Pointer[func(time.Duration)]
	// logger reports load-time anomalies; defaults to discard.
	logger atomic.Pointer[slog.Logger]
}

// SetSyncObserver installs fn to receive the wall time of every WAL
// append fsync — the serving layer feeds it into the wal_fsync latency
// histogram. Pass nil to remove. Safe to call concurrently with appends.
func (s *FileStore) SetSyncObserver(fn func(time.Duration)) {
	if fn == nil {
		s.syncObs.Store(nil)
		return
	}
	s.syncObs.Store(&fn)
}

// SetLogger installs a structured logger for load-time anomalies
// (sessions skipped as corrupt, truncated WAL suffixes). Nil restores
// the silent default.
func (s *FileStore) SetLogger(l *slog.Logger) { s.logger.Store(l) }

func (s *FileStore) log() *slog.Logger {
	if l := s.logger.Load(); l != nil {
		return l
	}
	return slog.New(slog.DiscardHandler)
}

// walHandle serialises writes to one session's WAL. gen is the
// incarnation token handed out when the journal was opened; appends and
// snapshots carrying a different token are refused. The descriptor is
// lazy: LoadSessions registers handles without opening files, so a
// store directory with far more journaled sessions than the fd limit
// (or than MaxSessions) costs nothing until a session actually appends.
type walHandle struct {
	mu   sync.Mutex
	f    *os.File // nil when not yet opened (lazy) or already closed
	dead bool     // tombstoned / store closed: refuse writes
	path string
	meta SessionMeta
	gen  uint64
}

// file returns the WAL descriptor, opening it for appending on first
// use. Caller holds h.mu.
func (h *walHandle) file() (*os.File, error) {
	if h.dead {
		return nil, ErrUnknownSession
	}
	if h.f != nil {
		return h.f, nil
	}
	f, err := os.OpenFile(h.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: reopen wal: %w", err)
	}
	h.f = f
	return f, nil
}

// closeLocked closes the descriptor and marks the handle dead when asked.
// Caller holds h.mu.
func (h *walHandle) closeLocked(dead bool) {
	if h.f != nil {
		h.f.Close()
		h.f = nil
	}
	if dead {
		h.dead = true
	}
}

// Open opens (creating if needed) a file store rooted at dir. With fsync
// true, every WAL append and file replacement is synced to stable
// storage before returning.
func Open(dir string, fsync bool) (*FileStore, error) {
	if err := os.MkdirAll(filepath.Join(dir, "sessions"), 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	lock, err := lockDir(dir)
	if err != nil {
		return nil, err
	}
	return &FileStore{dir: dir, fsync: fsync, lock: lock, handles: make(map[string]*walHandle)}, nil
}

// Dir returns the store's root directory.
func (s *FileStore) Dir() string { return s.dir }

func (s *FileStore) walPath(id string) string {
	return filepath.Join(s.dir, "sessions", hex.EncodeToString([]byte(id))+".wal")
}

func (s *FileStore) snapPath(id string) string {
	return filepath.Join(s.dir, "sessions", hex.EncodeToString([]byte(id))+".snap")
}

func (s *FileStore) cachePath() string { return filepath.Join(s.dir, "certcache.snap") }

func (s *FileStore) maybeSync(f *os.File) error {
	if !s.fsync {
		return nil
	}
	start := time.Now()
	if err := f.Sync(); err != nil {
		return err
	}
	d := time.Since(start)
	s.fsyncs.Add(1)
	s.fsyncNanos.Add(int64(d))
	if fn := s.syncObs.Load(); fn != nil {
		(*fn)(d)
	}
	return nil
}

// syncDir fsyncs the directory containing path so file creations,
// renames and unlinks survive power loss — file data syncs alone do not
// persist the directory entry. No-op without the fsync policy (which
// only promises crash durability).
func (s *FileStore) syncDir(path string) error {
	if !s.fsync {
		return nil
	}
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return err
	}
	defer d.Close()
	start := time.Now()
	if err := d.Sync(); err != nil {
		return err
	}
	s.fsyncs.Add(1)
	s.fsyncNanos.Add(int64(time.Since(start)))
	return nil
}

// newWAL writes a fresh WAL (magic + meta record) to path.
func (s *FileStore) newWAL(path string, meta SessionMeta) (*os.File, error) {
	metaJSON, err := json.Marshal(meta)
	if err != nil {
		return nil, fmt.Errorf("store: marshal meta: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	buf := append([]byte(nil), walMagic...)
	buf = appendFrame(buf, recMeta, metaJSON)
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %w", err)
	}
	if err := s.maybeSync(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %w", err)
	}
	return f, nil
}

// CreateSession implements Store.
func (s *FileStore) CreateSession(meta SessionMeta) (uint64, error) {
	return s.openJournal(meta, nil)
}

// ImportSession implements Store: the migrated history is persisted as
// the session's snapshot before its fresh WAL opens, so a crash at any
// point either recovers the complete imported state (snapshot with or
// without the WAL — load creates a missing WAL) or, before the snapshot
// rename lands, nothing at all.
func (s *FileStore) ImportSession(state SessionState) (uint64, error) {
	data, err := encodeSnapshot(state)
	if err != nil {
		return 0, err
	}
	return s.openJournal(state.Meta, data)
}

// openJournal reserves the id and opens its journal: an optional
// pre-encoded snapshot (imports), then a fresh WAL. The handle is
// reserved under s.mu but all file I/O (including fsyncs) runs under
// its own lock only: every step append's handle lookup takes s.mu, so
// create-time disk work must not sit on the store-wide mutex.
func (s *FileStore) openJournal(meta SessionMeta, snapshot []byte) (uint64, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, ErrClosed
	}
	if _, ok := s.handles[meta.ID]; ok {
		s.mu.Unlock()
		return 0, fmt.Errorf("%w: %q", ErrAlreadyJournaled, meta.ID)
	}
	gen := s.gens.Add(1)
	h := &walHandle{path: s.walPath(meta.ID), meta: meta, gen: gen}
	h.mu.Lock()
	defer h.mu.Unlock()
	s.handles[meta.ID] = h
	s.mu.Unlock()

	unreserve := func(err error) (uint64, error) {
		s.mu.Lock()
		if s.handles[meta.ID] == h {
			delete(s.handles, meta.ID)
		}
		s.mu.Unlock()
		return 0, err
	}
	if snapshot == nil {
		// A re-created id (deleted or lost in a previous life) starts
		// fresh.
		_ = os.Remove(s.snapPath(meta.ID))
	} else {
		// Imported history becomes the snapshot first: a WAL existing
		// without it would recover an empty session under this id. The
		// stale WAL (if any) must go before the snapshot so a crash
		// in between cannot pair the new history with old records.
		_ = os.Remove(s.walPath(meta.ID))
		if err := s.replaceFile(s.snapPath(meta.ID), snapshot); err != nil {
			return unreserve(fmt.Errorf("store: import snapshot: %w", err))
		}
		s.snapshots.Add(1)
	}
	f, err := s.newWAL(h.path, meta)
	if err == nil {
		if serr := s.syncDir(h.path); serr != nil {
			f.Close()
			f, err = nil, fmt.Errorf("store: %w", serr)
		}
	}
	if err != nil {
		return unreserve(err)
	}
	h.f = f
	return gen, nil
}

func (s *FileStore) handle(id string, gen uint64) (*walHandle, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	h, ok := s.handles[id]
	if !ok || h.gen != gen {
		return nil, ErrUnknownSession
	}
	return h, nil
}

// AppendStep implements Store.
func (s *FileStore) AppendStep(id string, gen uint64, rec StepRecord) error {
	h, err := s.handle(id, gen)
	if err != nil {
		return err
	}
	frame := appendFrame(nil, recStep, encodeStep(rec))
	h.mu.Lock()
	defer h.mu.Unlock()
	f, err := h.file()
	if err != nil {
		return err
	}
	if _, err := f.Write(frame); err != nil {
		return fmt.Errorf("store: append: %w", err)
	}
	if err := s.maybeSync(f); err != nil {
		return fmt.Errorf("store: append sync: %w", err)
	}
	s.appends.Add(1)
	s.appendBytes.Add(int64(len(frame)))
	return nil
}

// replaceFile atomically writes data at path via tmp + rename.
func (s *FileStore) replaceFile(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	// A snapshot that survives a rename but not its own write is a
	// corrupt primary, so sync the data regardless of the fsync policy.
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	return s.syncDir(path)
}

// WriteSnapshot implements Store.
func (s *FileStore) WriteSnapshot(state SessionState, gen uint64) error {
	h, err := s.handle(state.Meta.ID, gen)
	if err != nil {
		return err
	}
	data, err := encodeSnapshot(state)
	if err != nil {
		return err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.dead {
		return ErrUnknownSession
	}
	if err := s.replaceFile(s.snapPath(state.Meta.ID), data); err != nil {
		return fmt.Errorf("store: snapshot: %w", err)
	}
	// Compact: the snapshot now carries the whole history, so the WAL
	// restarts empty. A crash between the two renames leaves pre-snapshot
	// records in the WAL; replay skips them by timestamp.
	tmpPath := s.walPath(state.Meta.ID) + ".rotate"
	nf, err := s.newWAL(tmpPath, h.meta)
	if err != nil {
		return err
	}
	if err := os.Rename(tmpPath, s.walPath(state.Meta.ID)); err != nil {
		nf.Close()
		return fmt.Errorf("store: wal rotate: %w", err)
	}
	// The renamed file is the live WAL from here on: swap the handle
	// before reporting any directory-sync failure, so appends never land
	// on the unlinked old inode.
	h.closeLocked(false)
	h.f = nf
	s.snapshots.Add(1)
	if err := s.syncDir(s.walPath(state.Meta.ID)); err != nil {
		return fmt.Errorf("store: wal rotate: %w", err)
	}
	return nil
}

// DeleteSession implements Store. An id the store is not journaling and
// has no files for reports ErrUnknownSession so callers can distinguish
// a real tombstone from a no-op.
func (s *FileStore) DeleteSession(id string) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	h := s.handles[id]
	delete(s.handles, id)
	s.mu.Unlock()
	if h != nil {
		h.mu.Lock()
		// Durable tombstone first: if the unlinks never happen (crash),
		// the record still kills the session on load.
		if f, err := h.file(); err == nil {
			if _, err := f.Write(appendFrame(nil, recTombstone, nil)); err == nil {
				_ = s.maybeSync(f)
			}
		}
		h.closeLocked(true)
		h.mu.Unlock()
	}
	snapErr := os.Remove(s.snapPath(id))
	walErr := os.Remove(s.walPath(id))
	if h == nil && snapErr != nil && walErr != nil {
		return ErrUnknownSession
	}
	s.tombstones.Add(1)
	// Best-effort: the tombstone record already kills the session on
	// load even if the unlinks' directory entry update is lost, so a
	// failed dir sync must not make a completed delete report failure.
	_ = s.syncDir(s.walPath(id))
	return nil
}

// LoadSessions implements Store.
func (s *FileStore) LoadSessions() ([]SessionState, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	entries, err := os.ReadDir(filepath.Join(s.dir, "sessions"))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	ids := make(map[string]bool)
	for _, e := range entries {
		name := e.Name()
		ext := filepath.Ext(name)
		if ext != ".wal" && ext != ".snap" {
			continue
		}
		raw, err := hex.DecodeString(strings.TrimSuffix(name, ext))
		if err != nil {
			continue
		}
		ids[string(raw)] = true
	}
	var out []SessionState
	for id := range ids {
		state, ok := s.loadSession(id)
		if !ok {
			continue
		}
		out = append(out, state)
		s.sessionsLoaded.Add(1)
	}
	return out, nil
}

// loadSession recovers one session: snapshot as the base, then the WAL
// suffix, verifying the fingerprint chain throughout. It registers an
// append handle (minting state.Gen) on success. A session with an
// unreadable snapshot counts a load failure and its files are left for
// post-mortem; a CRC-valid WAL suffix that fails the fingerprint chain,
// leaves a timestamp gap, or will not decode is real corruption — the
// session loads from the consistent prefix, the damaged original is
// preserved as a .corrupt sidecar, and CorruptSuffixes counts it.
func (s *FileStore) loadSession(id string) (SessionState, bool) {
	var state SessionState
	state.Fingerprint = world.FingerprintSeed
	hasMeta := false
	fail := func() (SessionState, bool) {
		s.loadFailures.Add(1)
		s.log().Warn("store: session load failed; files preserved for post-mortem",
			"session", id, "wal", s.walPath(id))
		// Register a write-refusing placeholder so the id's surviving
		// files — the post-mortem evidence — cannot be silently wiped by
		// a later CreateSession (it reports ErrAlreadyJournaled; an
		// explicit DeleteSession reclaims the id).
		s.handles[id] = &walHandle{path: s.walPath(id), dead: true, meta: SessionMeta{ID: id}, gen: s.gens.Add(1)}
		return SessionState{}, false
	}

	if snapData, err := os.ReadFile(s.snapPath(id)); err == nil {
		snap, err := decodeSnapshot(snapData)
		if err != nil || snap.Meta.ID != id {
			return fail()
		}
		fp := world.FingerprintSeed
		for _, tag := range snap.Tags {
			fp = world.FingerprintFold(fp, tag.AlphaBits, tag.Obs)
		}
		if fp != snap.Fingerprint {
			return fail()
		}
		state = snap
		hasMeta = true
	}

	walData, err := os.ReadFile(s.walPath(id))
	if err != nil && !os.IsNotExist(err) {
		return fail()
	}
	validLen := 0
	corrupt := false
	if len(walData) >= len(walMagic) && string(walData[:len(walMagic)]) == string(walMagic) {
		off := len(walMagic)
	scan:
		for {
			typ, payload, next, err := readFrame(walData, off)
			if err != nil {
				break // torn tail: the expected crash artifact, not corruption
			}
			switch typ {
			case recMeta:
				var meta SessionMeta
				if err := json.Unmarshal(payload, &meta); err == nil && meta.ID == id && !hasMeta {
					state.Meta = meta
					hasMeta = true
				}
			case recStep:
				rec, err := decodeStep(payload)
				if err != nil {
					corrupt = true
					break scan
				}
				switch {
				case rec.T < len(state.Tags):
					// Pre-snapshot duplicate (crash between snapshot rename
					// and WAL rotation): already folded into the base.
				case rec.T == len(state.Tags):
					want := world.FingerprintFold(state.Fingerprint, rec.Tag.AlphaBits, rec.Tag.Obs)
					if want != rec.Fingerprint {
						corrupt = true
						break scan
					}
					state.Tags = append(state.Tags, rec.Tag)
					state.Fingerprint = want
					if len(rec.RNG) > 0 {
						state.RNG = rec.RNG
					}
				default:
					// Gap: records lost; the contiguous prefix stands.
					corrupt = true
					break scan
				}
			case recTombstone:
				_ = os.Remove(s.snapPath(id))
				_ = os.Remove(s.walPath(id))
				return SessionState{}, false
			}
			off = next
			validLen = off
		}
	}
	gen, ok := s.finishLoad(id, state, hasMeta, validLen, corrupt)
	if !ok {
		return SessionState{}, false
	}
	state.Gen = gen
	return state, true
}

// finishLoad truncates the WAL past its valid prefix — preserving the
// original as a .corrupt sidecar when the suffix was real corruption
// rather than a torn tail — and re-opens it for appending under a fresh
// generation. A session with no recoverable meta is a load failure.
func (s *FileStore) finishLoad(id string, state SessionState, hasMeta bool, validLen int, corrupt bool) (uint64, bool) {
	if !hasMeta {
		s.loadFailures.Add(1)
		s.log().Warn("store: session journal has no recoverable meta record", "session", id)
		return 0, false
	}
	path := s.walPath(id)
	if corrupt {
		s.corruptSuffixes.Add(1)
		s.log().Warn("store: wal suffix corrupt; loaded consistent prefix",
			"session", id, "recovered_steps", len(state.Tags), "sidecar", path+".corrupt")
		if orig, err := os.ReadFile(path); err == nil {
			_ = os.WriteFile(path+".corrupt", orig, 0o644)
		}
	}
	// Handles are registered without a descriptor (lazy): a store may
	// hold orders of magnitude more journaled sessions than the process
	// fd limit, and only sessions that actually step need a file.
	register := func() (uint64, bool) {
		gen := s.gens.Add(1)
		s.handles[id] = &walHandle{path: path, meta: state.Meta, gen: gen}
		return gen, true
	}
	failLoad := func() (uint64, bool) {
		s.loadFailures.Add(1)
		s.handles[id] = &walHandle{path: path, dead: true, meta: state.Meta, gen: s.gens.Add(1)}
		return 0, false
	}
	if validLen < len(walMagic) {
		// Header never made it to disk (or no WAL at all): start fresh.
		f, err := s.newWAL(path, state.Meta)
		if err != nil {
			return failLoad()
		}
		f.Close()
		return register()
	}
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return failLoad()
	}
	if err := f.Truncate(int64(validLen)); err != nil {
		f.Close()
		return failLoad()
	}
	f.Close()
	return register()
}

// SaveCache implements Store.
func (s *FileStore) SaveCache(entries []CacheEntry) error {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return ErrClosed
	}
	data, err := encodeCache(entries)
	if err != nil {
		return err
	}
	if err := s.replaceFile(s.cachePath(), data); err != nil {
		return fmt.Errorf("store: save cache: %w", err)
	}
	return nil
}

// LoadCache implements Store.
func (s *FileStore) LoadCache() ([]CacheEntry, error) {
	data, err := os.ReadFile(s.cachePath())
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: load cache: %w", err)
	}
	entries, err := decodeCache(data)
	if err != nil {
		// A corrupt warm-start file only costs recomputation.
		return nil, nil
	}
	return entries, nil
}

// Stats implements Store.
func (s *FileStore) Stats() Stats {
	return Stats{
		Enabled:         true,
		Appends:         s.appends.Load(),
		AppendBytes:     s.appendBytes.Load(),
		Fsyncs:          s.fsyncs.Load(),
		FsyncMicros:     float64(s.fsyncNanos.Load()) / 1e3,
		Snapshots:       s.snapshots.Load(),
		Tombstones:      s.tombstones.Load(),
		SessionsLoaded:  s.sessionsLoaded.Load(),
		LoadFailures:    s.loadFailures.Load(),
		CorruptSuffixes: s.corruptSuffixes.Load(),
	}
}

// Close implements Store.
func (s *FileStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	for _, h := range s.handles {
		h.mu.Lock()
		h.closeLocked(true)
		h.mu.Unlock()
	}
	s.handles = nil
	if s.lock != nil {
		s.lock.Close()
	}
	return nil
}
