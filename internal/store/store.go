// Package store is the pluggable durability layer behind pristed
// sessions. A session's mutable engine state is fully determined by its
// committed release-tag history — the (alphaBits, obs) pair of every
// released timestamp — plus its RNG state (see core.Snapshot), so
// durability is a thin, deterministic log rather than matrix
// serialization: each session owns an append-only write-ahead log of
// step records, periodically compacted into an atomic snapshot file, and
// restarts rebuild live sessions by replaying the log through the shared
// compiled core.Plan.
//
// Two implementations ship: FileStore (one WAL + snapshot file per
// session under a directory, with optional per-append fsync) and Null
// (in-memory no-op for deployments that accept losing sessions on
// restart). The same store also persists the certified-release cache so
// a restarted server starts warm.
package store

import "errors"

// Sentinel errors.
var (
	// ErrUnknownSession reports an append for a session the store is not
	// journaling (never created, tombstoned, or lost to corruption).
	ErrUnknownSession = errors.New("store: unknown session")
	// ErrClosed reports use after Close.
	ErrClosed = errors.New("store: closed")
	// ErrAlreadyJournaled reports a CreateSession for an id the store is
	// already journaling (a live session, or a surviving journal whose
	// session is not in memory). The caller decides whether that is a
	// conflict or grounds for reclamation (DeleteSession first).
	ErrAlreadyJournaled = errors.New("store: session already journaled")
)

// Tag is one committed release: math.Float64bits of the certified budget
// (0 for the uniform fallback) and the released observation. It mirrors
// core.ReleaseTag without importing the engine.
type Tag struct {
	AlphaBits uint64
	Obs       int
}

// SessionMeta is the immutable identity of a journaled session — enough
// for the serving layer to recompile the session's plan after a restart.
type SessionMeta struct {
	ID string `json:"id"`
	// World canonically identifies the world model (grid, cell size,
	// mobility) the session's releases were certified against. A restart
	// under a different world must refuse to replay the session: its
	// verdicts and history are meaningless there.
	World           string   `json:"world,omitempty"`
	Seed            int64    `json:"seed"`
	Epsilon         float64  `json:"epsilon"`
	Alpha           float64  `json:"alpha"`
	Mechanism       string   `json:"mechanism"`
	Delta           float64  `json:"delta,omitempty"`
	Events          []string `json:"events"`
	CreatedUnixNano int64    `json:"created_unix_nano"`
}

// StepRecord is one WAL entry: the committed tag of timestamp T, the
// rolling history fingerprint after committing it (verified on load and
// again after replay), and the post-step session RNG state.
type StepRecord struct {
	T           int
	Tag         Tag
	Fingerprint uint64
	RNG         []byte
}

// SessionState is a complete persisted session: what LoadSessions
// returns for rehydration and what WriteSnapshot compacts the WAL into.
type SessionState struct {
	Meta        SessionMeta
	Tags        []Tag
	Fingerprint uint64
	RNG         []byte
	// Gen is the journal generation LoadSessions (re-)opened this
	// session under; pass it back to AppendStep/WriteSnapshot.
	Gen uint64
}

// Steps returns the number of committed releases.
func (s SessionState) Steps() int { return len(s.Tags) }

// CacheEntry is one persisted certified-release verdict. Plan ids are
// process-unique, so entries are keyed by the serving layer's canonical
// plan-key string and remapped onto fresh plan ids on load. Only the
// verdicts survive persistence — solver diagnostics (bounds, witness,
// node counts) are dropped; a warm-loaded entry is verdict-for-verdict
// identical to the entry that produced it.
type CacheEntry struct {
	PlanKey   string
	Event     int
	T         int
	History   uint64
	AlphaBits uint64
	Obs       int
	Eq15OK    bool
	Eq16OK    bool
}

// Stats counts store activity for /statsz.
type Stats struct {
	// Enabled is false for the Null store.
	Enabled bool `json:"enabled"`
	// Appends counts step records written; AppendBytes their total size.
	Appends     int64 `json:"appends"`
	AppendBytes int64 `json:"append_bytes"`
	// Fsyncs counts explicit data syncs (0 when running without -fsync);
	// FsyncMicros is their total wall time. Fsync batches appends from
	// every transport, so the timing is reported here rather than in the
	// per-transport stage breakdown.
	Fsyncs      int64   `json:"fsyncs"`
	FsyncMicros float64 `json:"fsync_us"`
	// Snapshots counts snapshot compactions; Tombstones deleted sessions.
	Snapshots  int64 `json:"snapshots"`
	Tombstones int64 `json:"tombstones"`
	// SessionsLoaded counts sessions recovered by LoadSessions;
	// LoadFailures counts persisted sessions skipped as corrupt.
	SessionsLoaded int64 `json:"sessions_loaded"`
	LoadFailures   int64 `json:"load_failures"`
	// CorruptSuffixes counts WALs whose CRC-valid suffix failed the
	// fingerprint chain, had a timestamp gap, or would not decode: the
	// session loaded from the consistent prefix and the damaged original
	// was preserved as a .corrupt sidecar.
	CorruptSuffixes int64 `json:"corrupt_suffixes"`
}

// Store persists session release histories and the certified-release
// cache. Implementations must be safe for concurrent use; appends for
// one session are always issued by a single writer at a time (the
// session's step worker).
type Store interface {
	// CreateSession starts journaling a session and returns the
	// journal's generation token. Any stale state under the same id is
	// discarded. The token scopes appends and snapshots to THIS
	// incarnation of the id: a stale writer holding the token of a
	// deleted session can never corrupt a re-created session's journal.
	CreateSession(meta SessionMeta) (uint64, error)
	// AppendStep appends one committed release to the session's WAL. The
	// serving layer calls it write-ahead: before acknowledging the step.
	// gen must match the id's current journal generation
	// (ErrUnknownSession otherwise).
	AppendStep(id string, gen uint64, rec StepRecord) error
	// WriteSnapshot atomically replaces the session's snapshot with the
	// full state and compacts the WAL to empty. gen as for AppendStep.
	WriteSnapshot(state SessionState, gen uint64) error
	// ImportSession starts journaling a migrated session that already
	// carries history: the full state is persisted as the session's
	// snapshot and a fresh WAL is opened, atomically enough that a crash
	// at any point either recovers the complete imported history or
	// (before the snapshot lands) nothing. Like CreateSession it returns
	// the new journal generation and refuses an id the store already
	// journals (ErrAlreadyJournaled) — migrated history must never
	// silently overwrite existing state.
	ImportSession(state SessionState) (uint64, error)
	// DeleteSession tombstones a session (explicit delete or eviction);
	// a tombstoned session is never returned by LoadSessions.
	DeleteSession(id string) error
	// LoadSessions returns every surviving session for rehydration and
	// re-opens their logs for appending. Call once, before any
	// CreateSession/AppendStep.
	LoadSessions() ([]SessionState, error)
	// SaveCache atomically replaces the persisted certified-release
	// cache; LoadCache returns it (nil when none was saved).
	SaveCache(entries []CacheEntry) error
	LoadCache() ([]CacheEntry, error)
	Stats() Stats
	Close() error
}

// Null is the in-memory no-op store: nothing is persisted and nothing is
// recovered. The zero value is ready to use.
type Null struct{}

// CreateSession implements Store.
func (Null) CreateSession(SessionMeta) (uint64, error) { return 0, nil }

// AppendStep implements Store.
func (Null) AppendStep(string, uint64, StepRecord) error { return nil }

// ImportSession implements Store.
func (Null) ImportSession(SessionState) (uint64, error) { return 0, nil }

// WriteSnapshot implements Store.
func (Null) WriteSnapshot(SessionState, uint64) error { return nil }

// DeleteSession implements Store.
func (Null) DeleteSession(string) error { return nil }

// LoadSessions implements Store.
func (Null) LoadSessions() ([]SessionState, error) { return nil, nil }

// SaveCache implements Store.
func (Null) SaveCache([]CacheEntry) error { return nil }

// LoadCache implements Store.
func (Null) LoadCache() ([]CacheEntry, error) { return nil, nil }

// Stats implements Store.
func (Null) Stats() Stats { return Stats{} }

// Close implements Store.
func (Null) Close() error { return nil }
