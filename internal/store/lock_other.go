//go:build !unix

package store

import "os"

// lockDir is a no-op on platforms without flock; single-writer
// discipline is then the operator's responsibility.
func lockDir(string) (*os.File, error) { return nil, nil }
