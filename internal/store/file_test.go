package store

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"priste/internal/world"
)

func testMeta(id string) SessionMeta {
	return SessionMeta{
		ID:        id,
		Seed:      42,
		Epsilon:   0.5,
		Alpha:     1.0,
		Mechanism: "laplace",
		Events:    []string{"0-9@3-7"},
	}
}

// appendTagged appends n steps with a consistent fingerprint chain
// starting from fp and returns the final fingerprint.
func appendTagged(t *testing.T, s Store, id string, gen uint64, startT int, fp uint64, tags []Tag, rng []byte) uint64 {
	t.Helper()
	for i, tag := range tags {
		fp = world.FingerprintFold(fp, tag.AlphaBits, tag.Obs)
		if err := s.AppendStep(id, gen, StepRecord{T: startT + i, Tag: tag, Fingerprint: fp, RNG: rng}); err != nil {
			t.Fatalf("AppendStep %d: %v", startT+i, err)
		}
	}
	return fp
}

// mustCreate journals a session and returns its generation token.
func mustCreate(t *testing.T, s Store, meta SessionMeta) uint64 {
	t.Helper()
	gen, err := s.CreateSession(meta)
	if err != nil {
		t.Fatalf("CreateSession %s: %v", meta.ID, err)
	}
	return gen
}

func TestFileStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	meta := testMeta("alice")
	gen := mustCreate(t, s, meta)
	tags := []Tag{{AlphaBits: 100, Obs: 3}, {AlphaBits: 0, Obs: 7}, {AlphaBits: 55, Obs: 1}}
	rng := []byte("pcg:0123456789abcdef")
	fp := appendTagged(t, s, "alice", gen, 0, world.FingerprintSeed, tags, rng)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	states, err := s2.LoadSessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 1 {
		t.Fatalf("loaded %d sessions, want 1", len(states))
	}
	got := states[0]
	if got.Meta.ID != "alice" || got.Meta.Seed != 42 || got.Meta.Mechanism != "laplace" {
		t.Fatalf("meta = %+v", got.Meta)
	}
	if len(got.Tags) != len(tags) {
		t.Fatalf("tags = %d, want %d", len(got.Tags), len(tags))
	}
	for i := range tags {
		if got.Tags[i] != tags[i] {
			t.Fatalf("tag %d = %+v, want %+v", i, got.Tags[i], tags[i])
		}
	}
	if got.Fingerprint != fp {
		t.Fatalf("fingerprint %#x, want %#x", got.Fingerprint, fp)
	}
	if string(got.RNG) != string(rng) {
		t.Fatalf("rng = %q", got.RNG)
	}
	// The reloaded store keeps accepting appends for the session under
	// its fresh generation.
	appendTagged(t, s2, "alice", got.Gen, 3, fp, []Tag{{AlphaBits: 9, Obs: 0}}, nil)

	// Re-creating the id mints a new generation; a stale writer holding
	// the old token must not be able to touch the new journal.
	if err := s2.DeleteSession("alice"); err != nil {
		t.Fatal(err)
	}
	gen2 := mustCreate(t, s2, meta)
	if gen2 == got.Gen {
		t.Fatal("generation reused across incarnations")
	}
	if err := s2.AppendStep("alice", got.Gen, StepRecord{}); !errors.Is(err, ErrUnknownSession) {
		t.Fatalf("append under dead generation: %v, want ErrUnknownSession", err)
	}
	if err := s2.WriteSnapshot(SessionState{Meta: meta}, got.Gen); !errors.Is(err, ErrUnknownSession) {
		t.Fatalf("snapshot under dead generation: %v, want ErrUnknownSession", err)
	}
	appendTagged(t, s2, "alice", gen2, 0, world.FingerprintSeed, []Tag{{AlphaBits: 1, Obs: 1}}, nil)
}

func TestFileStoreSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	meta := testMeta("bob")
	gen := mustCreate(t, s, meta)
	tags := []Tag{{AlphaBits: 1, Obs: 1}, {AlphaBits: 2, Obs: 2}}
	fp := appendTagged(t, s, "bob", gen, 0, world.FingerprintSeed, tags, nil)
	if err := s.WriteSnapshot(SessionState{Meta: meta, Tags: tags, Fingerprint: fp, RNG: []byte("state")}, gen); err != nil {
		t.Fatal(err)
	}
	// Post-snapshot WAL suffix.
	suffix := []Tag{{AlphaBits: 3, Obs: 3}}
	fp = appendTagged(t, s, "bob", gen, 2, fp, suffix, nil)
	// The compacted WAL holds only the suffix.
	wal, err := os.ReadFile(s.walPath("bob"))
	if err != nil {
		t.Fatal(err)
	}
	if len(wal) > 300 {
		t.Fatalf("compacted WAL is %d bytes — rotation failed?", len(wal))
	}
	s.Close()

	s2, err := Open(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	states, err := s2.LoadSessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 1 || len(states[0].Tags) != 3 || states[0].Fingerprint != fp {
		t.Fatalf("recovered %+v, want 3 tags fp %#x", states, fp)
	}
	if st := s2.Stats(); st.SessionsLoaded != 1 || st.LoadFailures != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFileStoreTombstone(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	gen := mustCreate(t, s, testMeta("gone"))
	appendTagged(t, s, "gone", gen, 0, world.FingerprintSeed, []Tag{{AlphaBits: 4, Obs: 4}}, nil)
	if err := s.DeleteSession("gone"); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendStep("gone", gen, StepRecord{}); !errors.Is(err, ErrUnknownSession) {
		t.Fatalf("append after delete: %v, want ErrUnknownSession", err)
	}
	if err := s.DeleteSession("never-existed"); !errors.Is(err, ErrUnknownSession) {
		t.Fatalf("delete of unknown id: %v, want ErrUnknownSession", err)
	}
	s.Close()

	s2, err := Open(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	states, err := s2.LoadSessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 0 {
		t.Fatalf("tombstoned session resurrected: %+v", states)
	}
}

// TestFileStoreTornTail simulates a crash mid-append: the torn record is
// dropped, the valid prefix survives, and appending resumes cleanly.
func TestFileStoreTornTail(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	gen := mustCreate(t, s, testMeta("torn"))
	tags := []Tag{{AlphaBits: 1, Obs: 1}, {AlphaBits: 2, Obs: 2}}
	fp := appendTagged(t, s, "torn", gen, 0, world.FingerprintSeed, tags, nil)
	s.Close()

	// Tear the final record in half.
	path := s.walPath("torn")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	states, err := s2.LoadSessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 1 || len(states[0].Tags) != 1 {
		t.Fatalf("recovered %+v, want 1 session with 1 tag", states)
	}
	if states[0].Fingerprint != world.FingerprintFold(world.FingerprintSeed, 1, 1) {
		t.Fatalf("prefix fingerprint wrong: %#x", states[0].Fingerprint)
	}
	// A torn tail is a normal crash artifact, not corruption.
	if st := s2.Stats(); st.CorruptSuffixes != 0 {
		t.Fatalf("torn tail counted as corruption: %+v", st)
	}
	// Appends after recovery continue the prefix, not the torn record.
	appendTagged(t, s2, "torn", states[0].Gen, 1, states[0].Fingerprint, []Tag{{AlphaBits: 8, Obs: 0}}, nil)
	s2.Close()

	s3, err := Open(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	states, err = s3.LoadSessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 1 || len(states[0].Tags) != 2 {
		t.Fatalf("after resume: %+v, want 2 tags", states)
	}
	if states[0].Tags[1] != (Tag{AlphaBits: 8, Obs: 0}) {
		t.Fatalf("resumed tag = %+v", states[0].Tags[1])
	}
	if fp == states[0].Fingerprint {
		t.Fatal("fingerprint should differ from the untorn history")
	}
}

// TestFileStoreBrokenChain: a record whose fingerprint does not extend
// the chain ends the valid prefix.
func TestFileStoreBrokenChain(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	gen := mustCreate(t, s, testMeta("chain"))
	fp := appendTagged(t, s, "chain", gen, 0, world.FingerprintSeed, []Tag{{AlphaBits: 1, Obs: 1}}, nil)
	// Valid frame, wrong fingerprint.
	if err := s.AppendStep("chain", gen, StepRecord{T: 1, Tag: Tag{AlphaBits: 2, Obs: 2}, Fingerprint: fp ^ 0xdead}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := Open(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	states, err := s2.LoadSessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 1 || len(states[0].Tags) != 1 {
		t.Fatalf("recovered %+v, want the 1-tag prefix", states)
	}
	// Real corruption is counted and the damaged original preserved.
	if st := s2.Stats(); st.CorruptSuffixes != 1 {
		t.Fatalf("corrupt_suffixes = %d, want 1", st.CorruptSuffixes)
	}
	if _, err := os.Stat(s2.walPath("chain") + ".corrupt"); err != nil {
		t.Fatalf("corrupt sidecar missing: %v", err)
	}
}

func TestFileStoreCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got, err := s.LoadCache(); err != nil || got != nil {
		t.Fatalf("LoadCache on empty store = %v, %v", got, err)
	}
	entries := []CacheEntry{
		{PlanKey: "eps=0.5;alpha=1", Event: 0, T: 3, History: 12345, AlphaBits: 77, Obs: 4, Eq15OK: true, Eq16OK: true},
		{PlanKey: "eps=0.5;alpha=1", Event: 1, T: 0, History: 99, AlphaBits: 0, Obs: 0, Eq15OK: false, Eq16OK: true},
	}
	if err := s.SaveCache(entries); err != nil {
		t.Fatal(err)
	}
	got, err := s.LoadCache()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(entries) {
		t.Fatalf("loaded %d entries, want %d", len(got), len(entries))
	}
	for i := range entries {
		if got[i] != entries[i] {
			t.Fatalf("entry %d = %+v, want %+v", i, got[i], entries[i])
		}
	}
	// Corrupt cache file is ignored, not fatal.
	if err := os.WriteFile(filepath.Join(dir, "certcache.snap"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got, err := s.LoadCache(); err != nil || got != nil {
		t.Fatalf("corrupt cache: %v, %v; want nil, nil", got, err)
	}
}

func TestFileStoreWeirdSessionIDs(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	id := "../../etc/passwd\x00/.."
	gen := mustCreate(t, s, testMeta(id))
	appendTagged(t, s, id, gen, 0, world.FingerprintSeed, []Tag{{AlphaBits: 5, Obs: 5}}, nil)
	s.Close()
	s2, err := Open(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	states, err := s2.LoadSessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 1 || states[0].Meta.ID != id {
		t.Fatalf("hostile id round-trip failed: %+v", states)
	}
}

// TestFileStoreCorruptLoadBlocksRecreate: a session whose snapshot is
// unreadable fails to load, but its files — the post-mortem evidence —
// must not be silently wiped by a re-create; an explicit delete
// reclaims the id.
func TestFileStoreCorruptLoadBlocksRecreate(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	meta := testMeta("hurt")
	gen := mustCreate(t, s, meta)
	fp := appendTagged(t, s, "hurt", gen, 0, world.FingerprintSeed, []Tag{{AlphaBits: 1, Obs: 1}}, nil)
	if err := s.WriteSnapshot(SessionState{Meta: meta, Tags: []Tag{{AlphaBits: 1, Obs: 1}}, Fingerprint: fp}, gen); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := os.WriteFile(s.snapPath("hurt"), []byte("PRSNAP01garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	states, err := s2.LoadSessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 0 {
		t.Fatalf("corrupt session loaded: %+v", states)
	}
	if st := s2.Stats(); st.LoadFailures != 1 {
		t.Fatalf("load_failures = %d, want 1", st.LoadFailures)
	}
	if _, err := s2.CreateSession(meta); !errors.Is(err, ErrAlreadyJournaled) {
		t.Fatalf("re-create over failed-load files: %v, want ErrAlreadyJournaled", err)
	}
	if _, err := os.Stat(s2.snapPath("hurt")); err != nil {
		t.Fatalf("post-mortem snapshot gone: %v", err)
	}
	if err := s2.DeleteSession("hurt"); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.CreateSession(meta); err != nil {
		t.Fatalf("create after explicit delete: %v", err)
	}
}

// TestFileStoreDirLock: two stores must not journal into one directory.
func TestFileStoreDirLock(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, false); err == nil {
		t.Fatal("second Open on a locked directory succeeded")
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, false)
	if err != nil {
		t.Fatalf("Open after release: %v", err)
	}
	s2.Close()
}

func TestNullStore(t *testing.T) {
	var s Null
	if _, err := s.CreateSession(testMeta("x")); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendStep("x", 0, StepRecord{}); err != nil {
		t.Fatal(err)
	}
	states, err := s.LoadSessions()
	if err != nil || states != nil {
		t.Fatalf("Null.LoadSessions = %v, %v", states, err)
	}
	if s.Stats().Enabled {
		t.Fatal("Null store reports Enabled")
	}
}

// TestFileStoreImportSession: an imported session's history is
// persisted immediately (snapshot + fresh WAL), survives a reload,
// accepts further appends under its generation, and an id the store
// already journals refuses the import.
func TestFileStoreImportSession(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	tags := []Tag{{AlphaBits: 100, Obs: 3}, {AlphaBits: 0, Obs: 7}}
	fp := world.FingerprintSeed
	for _, tag := range tags {
		fp = world.FingerprintFold(fp, tag.AlphaBits, tag.Obs)
	}
	state := SessionState{
		Meta:        testMeta("mig"),
		Tags:        tags,
		Fingerprint: fp,
		RNG:         []byte("pcg:fedcba9876543210"),
	}
	gen, err := s.ImportSession(state)
	if err != nil {
		t.Fatalf("ImportSession: %v", err)
	}
	// The id is journaled now: a second import or create must refuse.
	if _, err := s.ImportSession(state); !errors.Is(err, ErrAlreadyJournaled) {
		t.Fatalf("re-import: %v, want ErrAlreadyJournaled", err)
	}
	if _, err := s.CreateSession(testMeta("mig")); !errors.Is(err, ErrAlreadyJournaled) {
		t.Fatalf("create over import: %v, want ErrAlreadyJournaled", err)
	}
	// The journal accepts appends under the import's generation.
	appendTagged(t, s, "mig", gen, len(tags), fp, []Tag{{AlphaBits: 77, Obs: 5}}, []byte("pcg:aa"))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	states, err := s2.LoadSessions()
	if err != nil || len(states) != 1 {
		t.Fatalf("LoadSessions = %d states, %v; want 1", len(states), err)
	}
	got := states[0]
	if got.Meta.ID != "mig" || len(got.Tags) != 3 {
		t.Fatalf("recovered %q with %d tags, want mig with 3", got.Meta.ID, len(got.Tags))
	}
	if got.Tags[2].AlphaBits != 77 || got.Tags[2].Obs != 5 {
		t.Fatalf("appended tag = %+v", got.Tags[2])
	}
}
