// Package metrics implements the utility metrics of §V-A: the PLM privacy
// budget actually used (per timestamp and averaged over the horizon) and
// the Euclidean distance between true and released locations, aggregated
// over repeated runs.
package metrics

import (
	"fmt"
	"math"

	"priste/internal/core"
	"priste/internal/grid"
)

// Summary holds basic descriptive statistics.
type Summary struct {
	Mean, Std, Min, Max float64
	N                   int
}

// Summarize computes a Summary; an empty input yields zero values with
// N = 0.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	if len(xs) == 0 {
		s.Min, s.Max = 0, 0
		return s
	}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var sq float64
	for _, x := range xs {
		d := x - s.Mean
		sq += d * d
	}
	if len(xs) > 1 {
		s.Std = math.Sqrt(sq / float64(len(xs)-1))
	}
	return s
}

// Series is a per-timestamp mean/std aggregate over runs (the quantity
// plotted in Figs. 7–10).
type Series struct {
	Mean, Std []float64
}

// BudgetSeries aggregates the released budget at each timestamp across
// runs. All runs must share a horizon.
func BudgetSeries(runs [][]core.StepResult) (Series, error) {
	if len(runs) == 0 {
		return Series{}, fmt.Errorf("metrics: no runs")
	}
	horizon := len(runs[0])
	for i, r := range runs {
		if len(r) != horizon {
			return Series{}, fmt.Errorf("metrics: run %d has %d steps, want %d", i, len(r), horizon)
		}
	}
	s := Series{Mean: make([]float64, horizon), Std: make([]float64, horizon)}
	col := make([]float64, len(runs))
	for t := 0; t < horizon; t++ {
		for i, r := range runs {
			col[i] = r[t].Alpha
		}
		sum := Summarize(col)
		s.Mean[t] = sum.Mean
		s.Std[t] = sum.Std
	}
	return s, nil
}

// AvgBudget returns the budget averaged over timestamps and runs (left
// panels of Figs. 11–13).
func AvgBudget(runs [][]core.StepResult) (Summary, error) {
	if len(runs) == 0 {
		return Summary{}, fmt.Errorf("metrics: no runs")
	}
	perRun := make([]float64, 0, len(runs))
	for _, r := range runs {
		if len(r) == 0 {
			return Summary{}, fmt.Errorf("metrics: empty run")
		}
		var sum float64
		for _, step := range r {
			sum += step.Alpha
		}
		perRun = append(perRun, sum/float64(len(r)))
	}
	return Summarize(perRun), nil
}

// AvgEuclid returns the Euclidean distance between the true and released
// cells, averaged over timestamps and runs, in the grid's user units
// (right panels of Figs. 11–13).
func AvgEuclid(g *grid.Grid, trajs [][]int, runs [][]core.StepResult) (Summary, error) {
	if len(runs) != len(trajs) {
		return Summary{}, fmt.Errorf("metrics: %d runs but %d trajectories", len(runs), len(trajs))
	}
	if len(runs) == 0 {
		return Summary{}, fmt.Errorf("metrics: no runs")
	}
	perRun := make([]float64, 0, len(runs))
	for k, r := range runs {
		if len(r) != len(trajs[k]) {
			return Summary{}, fmt.Errorf("metrics: run %d has %d steps but trajectory has %d", k, len(r), len(trajs[k]))
		}
		if len(r) == 0 {
			return Summary{}, fmt.Errorf("metrics: empty run")
		}
		var sum float64
		for t, step := range r {
			sum += g.Dist(trajs[k][t], step.Obs)
		}
		perRun = append(perRun, sum/float64(len(r)))
	}
	return Summarize(perRun), nil
}

// ConservativeCount totals the conservative rejections across a run
// (Table III's "# of Conservative Release").
func ConservativeCount(run []core.StepResult) int {
	n := 0
	for _, s := range run {
		n += s.ConservativeRejections
	}
	return n
}

// TotalCheckTime sums the QP check time across a run.
func TotalCheckTime(run []core.StepResult) (total float64) {
	for _, s := range run {
		total += s.CheckTime.Seconds()
	}
	return total
}
