package metrics

import (
	"math"
	"testing"
	"time"

	"priste/internal/core"
	"priste/internal/grid"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.Mean != 2.5 || s.Min != 1 || s.Max != 4 || s.N != 4 {
		t.Fatalf("summary = %+v", s)
	}
	want := math.Sqrt((2.25 + 0.25 + 0.25 + 2.25) / 3)
	if math.Abs(s.Std-want) > 1e-12 {
		t.Fatalf("std = %v want %v", s.Std, want)
	}
	empty := Summarize(nil)
	if empty.N != 0 || empty.Mean != 0 || empty.Min != 0 || empty.Max != 0 {
		t.Fatalf("empty summary = %+v", empty)
	}
	one := Summarize([]float64{7})
	if one.Mean != 7 || one.Std != 0 {
		t.Fatalf("single summary = %+v", one)
	}
}

func run(alphas ...float64) []core.StepResult {
	out := make([]core.StepResult, len(alphas))
	for i, a := range alphas {
		out[i] = core.StepResult{T: i, Alpha: a, Obs: i % 3}
	}
	return out
}

func TestBudgetSeries(t *testing.T) {
	runs := [][]core.StepResult{run(1, 0.5), run(0, 0.5)}
	s, err := BudgetSeries(runs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Mean[0]-0.5) > 1e-12 || math.Abs(s.Mean[1]-0.5) > 1e-12 {
		t.Fatalf("mean = %v", s.Mean)
	}
	if s.Std[1] != 0 {
		t.Fatalf("std[1] = %v", s.Std[1])
	}
	if _, err := BudgetSeries(nil); err == nil {
		t.Error("no runs accepted")
	}
	if _, err := BudgetSeries([][]core.StepResult{run(1), run(1, 2)}); err == nil {
		t.Error("ragged runs accepted")
	}
}

func TestAvgBudget(t *testing.T) {
	s, err := AvgBudget([][]core.StepResult{run(1, 0), run(0.5, 0.5)})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Mean-0.5) > 1e-12 {
		t.Fatalf("mean = %v", s.Mean)
	}
	if _, err := AvgBudget(nil); err == nil {
		t.Error("no runs accepted")
	}
	if _, err := AvgBudget([][]core.StepResult{{}}); err == nil {
		t.Error("empty run accepted")
	}
}

func TestAvgEuclid(t *testing.T) {
	g := grid.MustNew(3, 1, 2) // 1-D map, 2 km cells
	trajs := [][]int{{0, 0}}
	runs := [][]core.StepResult{{
		{T: 0, Obs: 0},
		{T: 1, Obs: 2},
	}}
	s, err := AvgEuclid(g, trajs, runs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Mean-2) > 1e-12 { // (0 + 4 km)/2
		t.Fatalf("mean = %v", s.Mean)
	}
	if _, err := AvgEuclid(g, trajs, nil); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := AvgEuclid(g, [][]int{{0}}, runs); err == nil {
		t.Error("step-count mismatch accepted")
	}
}

func TestConservativeCountAndCheckTime(t *testing.T) {
	r := []core.StepResult{
		{ConservativeRejections: 2, CheckTime: time.Second},
		{ConservativeRejections: 1, CheckTime: 500 * time.Millisecond},
	}
	if ConservativeCount(r) != 3 {
		t.Fatalf("count = %d", ConservativeCount(r))
	}
	if math.Abs(TotalCheckTime(r)-1.5) > 1e-12 {
		t.Fatalf("time = %v", TotalCheckTime(r))
	}
}
