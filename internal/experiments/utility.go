package experiments

import (
	"fmt"
	"time"

	"priste/internal/event"
	"priste/internal/metrics"
)

// Figs. 11–13: average budget and average Euclidean distance over the
// whole horizon, swept over ε and a second mechanism parameter.

// UtilityFigConfig parameterises the utility sweeps.
type UtilityFigConfig struct {
	// Workload is pre-built so that Geolife and synthetic variants share
	// the runner.
	Workload *Workload
	Windows  [][2]int
	States   [2]int
	Epsilons []float64
	// Variants are the second-dimension series: one ReleaseSpec template
	// per line of the figure (α values for Fig. 11, δ values for Fig. 12,
	// one per σ-workload for Fig. 13).
	Variants  []ReleaseSpec
	Labels    []string
	QPTimeout time.Duration
}

// UtilityFig produces a table with one row per ε and, per variant, the
// average released budget and average Euclidean distance (user units).
func UtilityFig(name string, cfg UtilityFigConfig) (*Table, error) {
	if len(cfg.Variants) != len(cfg.Labels) {
		return nil, fmt.Errorf("experiments: %d variants but %d labels", len(cfg.Variants), len(cfg.Labels))
	}
	if cfg.Workload == nil {
		return nil, fmt.Errorf("experiments: nil workload")
	}
	events, err := BudgetFigConfig{States: cfg.States, Windows: cfg.Windows}.events(cfg.Workload)
	if err != nil {
		return nil, err
	}
	cols := []string{"eps"}
	for _, l := range cfg.Labels {
		cols = append(cols, l+" budget", l+" dist")
	}
	tab := &Table{
		Name:    name,
		Note:    fmt.Sprintf("events: %v, runs: %d", eventNames(events), len(cfg.Workload.Trajs)),
		Columns: cols,
	}
	for _, eps := range cfg.Epsilons {
		row := []string{f3(eps)}
		for i, v := range cfg.Variants {
			spec := v
			spec.Epsilon = eps
			if spec.QPTimeout == 0 {
				spec.QPTimeout = cfg.QPTimeout
			}
			runs, err := RunReleases(cfg.Workload, events, spec)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s eps=%g: %w", cfg.Labels[i], eps, err)
			}
			budget, err := metrics.AvgBudget(runs)
			if err != nil {
				return nil, err
			}
			dist, err := metrics.AvgEuclid(cfg.Workload.Grid, cfg.Workload.Trajs, runs)
			if err != nil {
				return nil, err
			}
			row = append(row, f4(budget.Mean), f4(dist.Mean))
		}
		tab.AddRow(row...)
	}
	return tab, nil
}

// Fig11 sweeps PLM budgets on the Geolife-substitute workload
// (α ∈ {0.5,1,3,5}, ε ∈ {0.1,0.5,1,2} at paper scale).
func Fig11(geo GeolifeConfig, alphas, epsilons []float64) (*Table, error) {
	w, err := Geolife(geo)
	if err != nil {
		return nil, err
	}
	cfg := UtilityFigConfig{
		Workload: w,
		Windows:  [][2]int{{4, 8}},
		States:   [2]int{1, 10},
		Epsilons: epsilons,
	}
	for _, a := range alphas {
		cfg.Variants = append(cfg.Variants, ReleaseSpec{Kind: PLM, Alpha: a})
		cfg.Labels = append(cfg.Labels, fmt.Sprintf("%g-PLM", a))
	}
	return UtilityFig("Fig11 PRESENCE(S={1:10},T={4:8}) on Geolife-like data", cfg)
}

// Fig12 sweeps δ for the δ-location-set mechanism on the
// Geolife-substitute workload (α = 0.5, δ ∈ {0.1,0.3,0.5,0.7},
// ε ∈ {0.1,1,2,3} at paper scale).
func Fig12(geo GeolifeConfig, alpha float64, deltas, epsilons []float64) (*Table, error) {
	w, err := Geolife(geo)
	if err != nil {
		return nil, err
	}
	cfg := UtilityFigConfig{
		Workload: w,
		Windows:  [][2]int{{4, 8}},
		States:   [2]int{1, 10},
		Epsilons: epsilons,
	}
	for _, d := range deltas {
		cfg.Variants = append(cfg.Variants, ReleaseSpec{Kind: DeltaLoc, Alpha: alpha, Delta: d})
		cfg.Labels = append(cfg.Labels, fmt.Sprintf("delta=%g", d))
	}
	return UtilityFig(fmt.Sprintf("Fig12 PRESENCE(S={1:10},T={4:8}) on Geolife-like data (%g-PLM, delta-loc-set)", alpha), cfg)
}

// Fig13 sweeps the transition-pattern strength σ on synthetic workloads
// (σ ∈ {0.01,0.1,1,10}, 1-PLM, ε ∈ {0.1,0.5,1,2} at paper scale). Each σ
// is a separate workload, so the runner is driven once per σ and merged.
func Fig13(synth SyntheticConfig, sigmas []float64, alpha float64, epsilons []float64) (*Table, error) {
	cols := []string{"eps"}
	for _, s := range sigmas {
		cols = append(cols, fmt.Sprintf("sigma=%g budget", s), fmt.Sprintf("sigma=%g dist", s))
	}
	tab := &Table{
		Name:    fmt.Sprintf("Fig13 PRESENCE(S={1:10},T={4:8}) on synthetic data (%g-PLM), varying sigma", alpha),
		Columns: cols,
	}
	type cell struct{ budget, dist float64 }
	results := make(map[float64]map[float64]cell) // sigma -> eps -> cell
	for _, sigma := range sigmas {
		sc := synth
		sc.Sigma = sigma
		w, err := Synthetic(sc)
		if err != nil {
			return nil, err
		}
		events, err := BudgetFigConfig{States: [2]int{1, 10}, Windows: [][2]int{{4, 8}}}.events(w)
		if err != nil {
			return nil, err
		}
		results[sigma] = make(map[float64]cell)
		for _, eps := range epsilons {
			runs, err := RunReleases(w, events, ReleaseSpec{Kind: PLM, Alpha: alpha, Epsilon: eps})
			if err != nil {
				return nil, fmt.Errorf("experiments: sigma=%g eps=%g: %w", sigma, eps, err)
			}
			budget, err := metrics.AvgBudget(runs)
			if err != nil {
				return nil, err
			}
			dist, err := metrics.AvgEuclid(w.Grid, w.Trajs, runs)
			if err != nil {
				return nil, err
			}
			results[sigma][eps] = cell{budget.Mean, dist.Mean}
		}
	}
	for _, eps := range epsilons {
		row := []string{f3(eps)}
		for _, sigma := range sigmas {
			c := results[sigma][eps]
			row = append(row, f4(c.budget), f4(c.dist))
		}
		tab.AddRow(row...)
	}
	return tab, nil
}

// AppendixPattern mirrors Fig. 11 for a PATTERN event (the paper defers
// PATTERN utility results to its appendices): a two-step pattern through
// the event region.
func AppendixPattern(geo GeolifeConfig, alphas, epsilons []float64) (*Table, error) {
	w, err := Geolife(geo)
	if err != nil {
		return nil, err
	}
	m := w.Grid.States()
	ev, err := PatternRange(m, [][2]int{{1, 10}, {1, 10}}, 4)
	if err != nil {
		return nil, err
	}
	cols := []string{"eps"}
	for _, a := range alphas {
		cols = append(cols, fmt.Sprintf("%g-PLM budget", a), fmt.Sprintf("%g-PLM dist", a))
	}
	tab := &Table{
		Name:    "Appendix PATTERN(S={1:10}x2, T={4:5}) on Geolife-like data",
		Note:    fmt.Sprintf("event: %v, runs: %d", ev, len(w.Trajs)),
		Columns: cols,
	}
	for _, eps := range epsilons {
		row := []string{f3(eps)}
		for _, a := range alphas {
			runs, err := RunReleases(w, []event.Event{ev}, ReleaseSpec{Kind: PLM, Alpha: a, Epsilon: eps})
			if err != nil {
				return nil, err
			}
			budget, err := metrics.AvgBudget(runs)
			if err != nil {
				return nil, err
			}
			dist, err := metrics.AvgEuclid(w.Grid, w.Trajs, runs)
			if err != nil {
				return nil, err
			}
			row = append(row, f4(budget.Mean), f4(dist.Mean))
		}
		tab.AddRow(row...)
	}
	return tab, nil
}
