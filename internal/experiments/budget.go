package experiments

import (
	"fmt"
	"time"

	"priste/internal/event"
	"priste/internal/metrics"
)

// Figs. 7–10: average PLM budget at each timestamp while protecting
// PRESENCE events, for sweeps over ε and over the PLM's initial budget α.

// BudgetFigConfig parameterises the per-timestamp budget figures. All
// state/time ranges use the paper's 1-based inclusive notation, e.g.
// PRESENCE(S={1:10}, T={4:8}).
type BudgetFigConfig struct {
	Synth SyntheticConfig
	// Windows lists the protected PRESENCE events, one [start,end] time
	// window each over the state range States (Fig. 9 protects two).
	Windows [][2]int
	States  [2]int
	// Panel (a): a fixed α-PLM swept over ε.
	FixedAlpha float64
	Epsilons   []float64
	// Panel (b): a fixed ε swept over PLM budgets.
	FixedEpsilon float64
	Alphas       []float64
	// Mechanism selects Algorithm 2 (PLM) or Algorithm 3 (DeltaLoc).
	Mechanism MechanismKind
	Delta     float64 // δ for DeltaLoc
	QPTimeout time.Duration
}

// DefaultFig7 returns a scaled-down Fig. 7 configuration: the paper's
// event PRESENCE(S={1:10}, T={4:8}) under a 0.2-PLM for ε ∈ {0.1,0.5,1}
// and under {0.1,0.5,1}-PLMs for ε = 0.5.
func DefaultFig7(synth SyntheticConfig) BudgetFigConfig {
	return BudgetFigConfig{
		Synth:        synth,
		Windows:      [][2]int{{4, 8}},
		States:       [2]int{1, 10},
		FixedAlpha:   0.2,
		Epsilons:     []float64{0.1, 0.5, 1},
		FixedEpsilon: 0.5,
		Alphas:       []float64{0.1, 0.5, 1},
		Mechanism:    PLM,
	}
}

// DefaultFig8 is Fig. 7 with the later window T={16:20}.
func DefaultFig8(synth SyntheticConfig) BudgetFigConfig {
	cfg := DefaultFig7(synth)
	cfg.Windows = [][2]int{{16, 20}}
	return cfg
}

// DefaultFig9 protects both windows simultaneously.
func DefaultFig9(synth SyntheticConfig) BudgetFigConfig {
	cfg := DefaultFig7(synth)
	cfg.Windows = [][2]int{{4, 8}, {16, 20}}
	return cfg
}

// DefaultFig10 is the δ-location-set variant (Algorithm 3) of Fig. 7 with
// δ = 0.2.
func DefaultFig10(synth SyntheticConfig) BudgetFigConfig {
	cfg := DefaultFig7(synth)
	cfg.Mechanism = DeltaLoc
	cfg.Delta = 0.2
	return cfg
}

// BudgetFig runs both panels and returns their tables: (a) fixed α,
// varying ε; (b) fixed ε, varying α.
func BudgetFig(name string, cfg BudgetFigConfig) (panelA, panelB *Table, err error) {
	w, err := Synthetic(cfg.Synth)
	if err != nil {
		return nil, nil, err
	}
	events, err := cfg.events(w)
	if err != nil {
		return nil, nil, err
	}
	specA := make([]ReleaseSpec, len(cfg.Epsilons))
	labelsA := make([]string, len(cfg.Epsilons))
	for i, eps := range cfg.Epsilons {
		specA[i] = ReleaseSpec{Kind: cfg.Mechanism, Alpha: cfg.FixedAlpha, Delta: cfg.Delta,
			Epsilon: eps, QPTimeout: cfg.QPTimeout}
		labelsA[i] = fmt.Sprintf("eps=%g", eps)
	}
	panelA, err = budgetPanel(name+"(a) "+fmt.Sprintf("%g-PLM, varying eps", cfg.FixedAlpha),
		w, events, specA, labelsA)
	if err != nil {
		return nil, nil, err
	}
	specB := make([]ReleaseSpec, len(cfg.Alphas))
	labelsB := make([]string, len(cfg.Alphas))
	for i, a := range cfg.Alphas {
		specB[i] = ReleaseSpec{Kind: cfg.Mechanism, Alpha: a, Delta: cfg.Delta,
			Epsilon: cfg.FixedEpsilon, QPTimeout: cfg.QPTimeout}
		labelsB[i] = fmt.Sprintf("alpha=%g", a)
	}
	panelB, err = budgetPanel(name+"(b) "+fmt.Sprintf("eps=%g, varying alpha", cfg.FixedEpsilon),
		w, events, specB, labelsB)
	if err != nil {
		return nil, nil, err
	}
	return panelA, panelB, nil
}

func (cfg BudgetFigConfig) events(w *Workload) ([]event.Event, error) {
	m := w.Grid.States()
	if cfg.States[1] > m {
		return nil, fmt.Errorf("experiments: event states %v exceed map size %d", cfg.States, m)
	}
	var events []event.Event
	for _, win := range cfg.Windows {
		if win[1] > len(w.Trajs[0]) {
			return nil, fmt.Errorf("experiments: event window %v exceeds horizon %d", win, len(w.Trajs[0]))
		}
		ev, err := PresenceRange(m, cfg.States[0], cfg.States[1], win[0], win[1])
		if err != nil {
			return nil, err
		}
		events = append(events, ev)
	}
	return events, nil
}

// budgetPanel runs each spec over the workload and tabulates the mean and
// std of the released budget at every timestamp.
func budgetPanel(name string, w *Workload, events []event.Event, specs []ReleaseSpec, labels []string) (*Table, error) {
	series := make([]metrics.Series, len(specs))
	for i, spec := range specs {
		runs, err := RunReleases(w, events, spec)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", labels[i], err)
		}
		s, err := metrics.BudgetSeries(runs)
		if err != nil {
			return nil, err
		}
		series[i] = s
	}
	cols := []string{"t"}
	for _, l := range labels {
		cols = append(cols, l+" mean", l+" std")
	}
	tab := &Table{
		Name:    name,
		Note:    fmt.Sprintf("events: %v, runs: %d", eventNames(events), len(w.Trajs)),
		Columns: cols,
	}
	horizon := len(series[0].Mean)
	for t := 0; t < horizon; t++ {
		row := []string{fmt.Sprintf("%d", t+1)} // report in the paper's 1-based time
		for _, s := range series {
			row = append(row, f4(s.Mean[t]), f4(s.Std[t]))
		}
		tab.AddRow(row...)
	}
	return tab, nil
}

func eventNames(events []event.Event) []string {
	out := make([]string, len(events))
	for i, ev := range events {
		out[i] = ev.String()
	}
	return out
}
