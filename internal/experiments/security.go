package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"priste/internal/attack"
	"priste/internal/core"
	"priste/internal/event"
	"priste/internal/lppm"
	"priste/internal/mat"
	"priste/internal/world"
)

// SecuritySweep evaluates the end-to-end guarantee empirically: guilty
// trajectories (which make the protected event true) are released through
// PriSTE at each ε and handed to the Bayesian adversary of
// internal/attack. Reported per ε: the worst observed odds shift against
// the certified bound e^ε, the adversary's event-detection rate on guilty
// runs, and the detection rate of the *unprotected* mechanism as the
// baseline. This table has no direct counterpart in the paper; it is the
// security-evaluation complement of its utility figures.
func SecuritySweep(synth SyntheticConfig, alpha float64, epsilons []float64) (*Table, error) {
	w, err := Synthetic(synth)
	if err != nil {
		return nil, err
	}
	events, err := BudgetFigConfig{States: [2]int{1, 10}, Windows: [][2]int{{4, 8}}}.events(w)
	if err != nil {
		return nil, err
	}
	ev := events[0]
	m := w.Grid.States()
	adv, err := attack.NewAdversary(w.Chain, w.Pi, w.Grid)
	if err != nil {
		return nil, err
	}
	// Make every trajectory guilty: pin an in-window timestamp inside the
	// event region.
	start, _ := ev.Window()
	regionStates := ev.RegionAt(start).States()
	guilty := make([][]int, len(w.Trajs))
	for k, traj := range w.Trajs {
		g := append([]int(nil), traj...)
		g[start] = regionStates[k%len(regionStates)]
		guilty[k] = g
	}
	plm := lppm.NewPlanarLaplace(w.Grid)
	uniCol := mat.NewVector(m)
	for i := range uniCol {
		uniCol[i] = 1 / float64(m)
	}

	tab := &Table{
		Name:    fmt.Sprintf("Security sweep: adversary vs PriSTE (%g-PLM, guilty runs)", alpha),
		Note:    fmt.Sprintf("event %v; detection = final posterior ≥ 1/2; runs: %d", ev, len(guilty)),
		Columns: []string{"eps", "bound_e^eps", "max_odds_shift", "detect_rate", "unprotected_detect_rate", "unprotected_max_shift"},
	}

	// Baseline: bare PLM at the full budget.
	baseDetect, baseShift, err := attackRuns(adv, ev, guilty, func(k int) ([]mat.Vector, error) {
		rng := rand.New(rand.NewSource(w.Seed + 31*int64(k+1)))
		em, err := plm.Emission(alpha)
		if err != nil {
			return nil, err
		}
		cols := make([]mat.Vector, len(guilty[k]))
		for t, u := range guilty[k] {
			o, err := lppm.SampleRow(rng, em, u)
			if err != nil {
				return nil, err
			}
			cols[t] = em.Col(o)
		}
		return cols, nil
	})
	if err != nil {
		return nil, err
	}

	tp := world.NewHomogeneous(w.Chain)
	for _, eps := range epsilons {
		detect, shift, err := attackRuns(adv, ev, guilty, func(k int) ([]mat.Vector, error) {
			rng := rand.New(rand.NewSource(w.Seed + 71*int64(k+1)))
			fw, err := core.New(plm, tp, events, core.DefaultConfig(eps, alpha), rng)
			if err != nil {
				return nil, err
			}
			results, err := fw.Run(guilty[k])
			if err != nil {
				return nil, err
			}
			cols := make([]mat.Vector, len(results))
			for t, r := range results {
				if r.Uniform {
					cols[t] = uniCol
					continue
				}
				em, err := plm.Emission(r.Alpha)
				if err != nil {
					return nil, err
				}
				cols[t] = em.Col(r.Obs)
			}
			return cols, nil
		})
		if err != nil {
			return nil, err
		}
		tab.AddRow(f3(eps), f3(math.Exp(eps)), f3(shift), f3(detect), f3(baseDetect), f3(baseShift))
	}
	return tab, nil
}

// attackRuns releases every guilty trajectory via the supplied closure and
// aggregates the adversary's detection rate and worst odds shift.
func attackRuns(adv *attack.Adversary, ev event.Event, guilty [][]int,
	release func(k int) ([]mat.Vector, error)) (detectRate, maxShift float64, err error) {
	detections := 0
	for k := range guilty {
		cols, err := release(k)
		if err != nil {
			return 0, 0, err
		}
		inf, err := adv.InferEvent(ev, cols)
		if err != nil {
			return 0, 0, err
		}
		if inf.Guess {
			detections++
		}
		if inf.OddsShift > maxShift {
			maxShift = inf.OddsShift
		}
	}
	return float64(detections) / float64(len(guilty)), maxShift, nil
}
