package experiments

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

// tinySynth is a fast workload for tests: 4×4 map, short horizon, 2 runs.
func tinySynth() SyntheticConfig {
	return SyntheticConfig{W: 4, H: 4, Cell: 1, Sigma: 1, T: 10, Runs: 2, Seed: 3}
}

func tinyGeo() GeolifeConfig {
	return GeolifeConfig{W: 4, H: 4, CellKm: 1, Days: 6, T: 10, Runs: 2, Seed: 4}
}

func TestSyntheticWorkload(t *testing.T) {
	w, err := Synthetic(tinySynth())
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Trajs) != 2 || len(w.Trajs[0]) != 10 {
		t.Fatalf("trajectories %dx%d", len(w.Trajs), len(w.Trajs[0]))
	}
	if w.Grid.States() != 16 || w.Chain.States() != 16 {
		t.Fatal("dimensions wrong")
	}
	if _, err := Synthetic(SyntheticConfig{W: 0, H: 4, Cell: 1, Sigma: 1, T: 5, Runs: 1}); err == nil {
		t.Error("bad grid accepted")
	}
	if _, err := Synthetic(SyntheticConfig{W: 4, H: 4, Cell: 1, Sigma: 1, T: 0, Runs: 1}); err == nil {
		t.Error("T=0 accepted")
	}
}

func TestGeolifeWorkload(t *testing.T) {
	w, err := Geolife(tinyGeo())
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Trajs) != 2 || len(w.Trajs[0]) != 10 {
		t.Fatalf("trajectories %dx%d", len(w.Trajs), len(w.Trajs[0]))
	}
	if !w.Pi.IsDistribution(1e-8) {
		t.Fatal("pi not a distribution")
	}
	if _, err := Geolife(GeolifeConfig{W: 4, H: 4, CellKm: 1, T: 0, Runs: 1}); err == nil {
		t.Error("T=0 accepted")
	}
}

func TestPresenceAndPatternRange(t *testing.T) {
	ev, err := PresenceRange(16, 1, 10, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if s, e := ev.Window(); s != 3 || e != 7 {
		t.Fatalf("window = %d..%d", s, e)
	}
	if ev.Width() != 10 {
		t.Fatalf("width = %d", ev.Width())
	}
	if _, err := PresenceRange(16, 1, 20, 4, 8); err == nil {
		t.Error("oversized state range accepted")
	}
	p, err := PatternRange(16, [][2]int{{1, 3}, {2, 4}}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s, e := p.Window(); s != 2 || e != 3 {
		t.Fatalf("pattern window = %d..%d", s, e)
	}
}

func TestRunReleasesBothMechanisms(t *testing.T) {
	w, err := Synthetic(tinySynth())
	if err != nil {
		t.Fatal(err)
	}
	events, err := BudgetFigConfig{States: [2]int{1, 4}, Windows: [][2]int{{3, 5}}}.events(w)
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range []ReleaseSpec{
		{Kind: PLM, Alpha: 0.5, Epsilon: 1},
		{Kind: DeltaLoc, Alpha: 0.5, Delta: 0.3, Epsilon: 1},
	} {
		runs, err := RunReleases(w, events, spec)
		if err != nil {
			t.Fatalf("%+v: %v", spec, err)
		}
		if len(runs) != 2 || len(runs[0]) != 10 {
			t.Fatalf("runs shape wrong")
		}
	}
	if _, err := RunReleases(w, events, ReleaseSpec{Kind: MechanismKind(9), Alpha: 1, Epsilon: 1}); err == nil {
		t.Error("unknown mechanism accepted")
	}
}

func TestBudgetFigSmall(t *testing.T) {
	cfg := DefaultFig7(tinySynth())
	cfg.States = [2]int{1, 4}
	cfg.Windows = [][2]int{{3, 5}}
	cfg.Epsilons = []float64{0.5, 2}
	cfg.Alphas = []float64{0.2, 1}
	a, b, err := BudgetFig("Fig7", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != 10 || len(b.Rows) != 10 {
		t.Fatalf("rows %d/%d", len(a.Rows), len(b.Rows))
	}
	if len(a.Columns) != 1+2*2 {
		t.Fatalf("columns %v", a.Columns)
	}
	// Larger eps must not use less budget on average (panel a).
	avg := func(tab *Table, col int) float64 {
		var s float64
		for _, r := range tab.Rows {
			v, err := strconv.ParseFloat(r[col], 64)
			if err != nil {
				t.Fatal(err)
			}
			s += v
		}
		return s / float64(len(tab.Rows))
	}
	if tight, loose := avg(a, 1), avg(a, 3); tight > loose*1.2 {
		t.Fatalf("eps=0.5 budget %v much above eps=2 budget %v", tight, loose)
	}
	if got := a.CSV(); !strings.Contains(got, "eps=0.5 mean") {
		t.Fatalf("CSV header missing: %q", got[:60])
	}
	if got := a.String(); !strings.Contains(got, "== Fig7(a)") {
		t.Fatalf("text header missing: %q", got[:60])
	}
}

func TestBudgetFigDeltaLoc(t *testing.T) {
	cfg := DefaultFig10(tinySynth())
	cfg.States = [2]int{1, 4}
	cfg.Windows = [][2]int{{3, 5}}
	cfg.Epsilons = []float64{1}
	cfg.Alphas = []float64{0.5}
	a, b, err := BudgetFig("Fig10", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) == 0 || len(b.Rows) == 0 {
		t.Fatal("empty tables")
	}
}

func TestBudgetFigValidation(t *testing.T) {
	cfg := DefaultFig7(tinySynth())
	cfg.States = [2]int{1, 99} // exceeds 16 states
	if _, _, err := BudgetFig("x", cfg); err == nil {
		t.Error("oversized event accepted")
	}
	cfg = DefaultFig7(tinySynth())
	cfg.Windows = [][2]int{{4, 99}} // exceeds T=10
	if _, _, err := BudgetFig("x", cfg); err == nil {
		t.Error("oversized window accepted")
	}
}

func TestFig11Small(t *testing.T) {
	tab, err := Fig11(tinyGeo(), []float64{0.5, 2}, []float64{0.5, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 || len(tab.Columns) != 1+2*2 {
		t.Fatalf("shape %dx%d", len(tab.Rows), len(tab.Columns))
	}
}

func TestFig12Small(t *testing.T) {
	tab, err := Fig12(tinyGeo(), 0.5, []float64{0.3, 0.7}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 1 {
		t.Fatalf("rows %d", len(tab.Rows))
	}
}

func TestFig13Small(t *testing.T) {
	tab, err := Fig13(tinySynth(), []float64{0.1, 10}, 1, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 1 || len(tab.Columns) != 1+2*2 {
		t.Fatalf("shape wrong: %v", tab.Columns)
	}
}

func TestFig14Small(t *testing.T) {
	cfg := DefaultRuntime(tinySynth())
	cfg.Lengths = []int{2, 3}
	cfg.Widths = []int{2, 3}
	cfg.FixedLength = 2
	cfg.FixedWidth = 2
	cfg.Trials = 2
	lenTab, widTab, err := Fig14(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(lenTab.Rows) != 2 || len(widTab.Rows) != 2 {
		t.Fatal("row counts wrong")
	}
	// Both methods must have produced timings (baseline affordable here).
	for _, r := range lenTab.Rows {
		if r[1] == "-" {
			t.Fatalf("baseline skipped unexpectedly: %v", r)
		}
	}
}

func TestFig14BaselineCapSkips(t *testing.T) {
	cfg := DefaultRuntime(tinySynth())
	cfg.Lengths = []int{6}
	cfg.FixedWidth = 4
	cfg.Trials = 1
	cfg.BaselineCap = 10 // 4^6 = 4096 > 10 → skip
	lenTab, _, err := Fig14(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if lenTab.Rows[0][1] != "-" {
		t.Fatalf("baseline not skipped: %v", lenTab.Rows[0])
	}
}

func TestTableIIISmall(t *testing.T) {
	cfg := DefaultTableIII(tinySynth())
	cfg.Thresholds = []time.Duration{time.Millisecond, 0}
	tab, err := TableIII(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows %d", len(tab.Rows))
	}
	if tab.Rows[1][0] != "none" {
		t.Fatalf("unlimited row label %q", tab.Rows[1][0])
	}
}

func TestAppendixPatternSmall(t *testing.T) {
	tab, err := AppendixPattern(tinyGeo(), []float64{0.5}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 1 {
		t.Fatal("rows wrong")
	}
}

func TestUtilityFigValidation(t *testing.T) {
	if _, err := UtilityFig("x", UtilityFigConfig{Labels: []string{"a"}}); err == nil {
		t.Error("variant/label mismatch accepted")
	}
	if _, err := UtilityFig("x", UtilityFigConfig{}); err == nil {
		t.Error("nil workload accepted")
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{Name: "T", Note: "n", Columns: []string{"a", "b"}}
	tab.AddRow("1")           // short row padded
	tab.AddRow("2", "3", "4") // long row truncated
	csv := tab.CSV()
	if !strings.HasPrefix(csv, "a,b\n1,\n2,3\n") {
		t.Fatalf("csv = %q", csv)
	}
	s := tab.String()
	if !strings.Contains(s, "== T ==") || !strings.Contains(s, "n\n") {
		t.Fatalf("text = %q", s)
	}
}

func TestAblationDecay(t *testing.T) {
	tab, err := AblationDecay(tinySynth(), []float64{0.25, 0.75}, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows %d", len(tab.Rows))
	}
	// A smaller decay factor must not need more attempts per step.
	a25, _ := strconv.ParseFloat(tab.Rows[0][2], 64)
	a75, _ := strconv.ParseFloat(tab.Rows[1][2], 64)
	if a25 > a75+0.5 {
		t.Fatalf("decay=0.25 attempts %v should not exceed decay=0.75 attempts %v", a25, a75)
	}
}

func TestAblationModelMismatch(t *testing.T) {
	tab, err := AblationModelMismatch(tinySynth(), 1, []float64{1, 0.3}, 1, 0.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows %d", len(tab.Rows))
	}
	// The matching model (true sigma == model sigma) must respect epsilon.
	if tab.Rows[0][3] != "false" {
		t.Fatalf("matching model exceeded epsilon: %v", tab.Rows[0])
	}
}

func TestSecuritySweep(t *testing.T) {
	tab, err := SecuritySweep(tinySynth(), 2.0, []float64{0.3})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 1 {
		t.Fatalf("rows %d", len(tab.Rows))
	}
	shift, _ := strconv.ParseFloat(tab.Rows[0][2], 64)
	bound, _ := strconv.ParseFloat(tab.Rows[0][1], 64)
	if shift > bound*(1+1e-6) {
		t.Fatalf("protected odds shift %v exceeds bound %v", shift, bound)
	}
	baseShift, _ := strconv.ParseFloat(tab.Rows[0][5], 64)
	if baseShift <= shift {
		t.Fatalf("unprotected shift %v should exceed protected %v", baseShift, shift)
	}
}
