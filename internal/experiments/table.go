package experiments

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result: a name, column headers and string
// rows, convertible to CSV or aligned text.
type Table struct {
	Name    string
	Note    string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row, padding or truncating to the column count.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// CSV renders the table as RFC-4180-ish CSV (no quoting needed for the
// numeric content produced here).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, ","))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		b.WriteString(strings.Join(r, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// String renders an aligned text table with the name and note as headers.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, cell := range r {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Name)
	if t.Note != "" {
		fmt.Fprintf(&b, "%s\n", t.Note)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func f4(v float64) string { return fmt.Sprintf("%.4f", v) }
func f6(v float64) string { return fmt.Sprintf("%.6g", v) }
