package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"priste/internal/core"
	"priste/internal/lppm"
	"priste/internal/mat"
	"priste/internal/metrics"
	"priste/internal/qp"
	"priste/internal/world"
)

// Ablations beyond the paper's figures, for the design choices DESIGN.md
// calls out:
//
//   - AblationDecay sweeps the budget-decay factor of Algorithm 2 (the
//     paper fixes 1/2 and notes it trades efficiency against utility).
//   - AblationModelMismatch implements the paper's stated future work
//     (§IV-C privacy analysis): the realised privacy loss when the true
//     mobility correlations differ from the modelled transition matrix.

// AblationDecay reports, per decay factor, the average released budget,
// the average number of candidate draws per timestamp and the Euclidean
// utility. Small decays converge in fewer attempts but over-perturb;
// large decays spend more attempts to keep more budget (§IV-C).
func AblationDecay(synth SyntheticConfig, decays []float64, alpha, epsilon float64) (*Table, error) {
	w, err := Synthetic(synth)
	if err != nil {
		return nil, err
	}
	events, err := BudgetFigConfig{States: [2]int{1, 10}, Windows: [][2]int{{4, 8}}}.events(w)
	if err != nil {
		return nil, err
	}
	tab := &Table{
		Name:    fmt.Sprintf("Ablation: budget decay factor (%g-PLM, eps=%g)", alpha, epsilon),
		Note:    "paper's Algorithm 2 fixes decay=0.5; the factor trades attempts against retained budget",
		Columns: []string{"decay", "avg_budget", "avg_attempts_per_step", "avg_dist", "uniform_fallbacks"},
	}
	for _, d := range decays {
		runs, err := RunReleases(w, events, ReleaseSpec{
			Kind: PLM, Alpha: alpha, Epsilon: epsilon, Decay: d,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: decay=%g: %w", d, err)
		}
		budget, err := metrics.AvgBudget(runs)
		if err != nil {
			return nil, err
		}
		dist, err := metrics.AvgEuclid(w.Grid, w.Trajs, runs)
		if err != nil {
			return nil, err
		}
		var attempts, steps, uniform int
		for _, r := range runs {
			for _, s := range r {
				attempts += s.Attempts
				steps++
				if s.Uniform {
					uniform++
				}
			}
		}
		tab.AddRow(f3(d), f4(budget.Mean),
			f3(float64(attempts)/float64(steps)), f4(dist.Mean), fmt.Sprintf("%d", uniform))
	}
	return tab, nil
}

// AblationModelMismatch calibrates releases against a *modelled* chain
// (Gaussian scale modelSigma) while the user actually moves — and the
// adversary actually reasons — according to chains of different true
// scales. For each true σ it reports the worst realised privacy loss over
// sampled adversary priors, measured under the true chain, against the
// nominal ε. Matching σ must respect ε; mismatched σ may exceed it, which
// quantifies the sensitivity the paper defers to future work.
func AblationModelMismatch(synth SyntheticConfig, modelSigma float64, trueSigmas []float64, alpha, epsilon float64, priors int) (*Table, error) {
	modelCfg := synth
	modelCfg.Sigma = modelSigma
	modelW, err := Synthetic(modelCfg)
	if err != nil {
		return nil, err
	}
	events, err := BudgetFigConfig{States: [2]int{1, 10}, Windows: [][2]int{{4, 8}}}.events(modelW)
	if err != nil {
		return nil, err
	}
	ev := events[0]
	modelTP := world.NewHomogeneous(modelW.Chain)
	tab := &Table{
		Name:    fmt.Sprintf("Ablation: transition-model mismatch (model sigma=%g, %g-PLM, eps=%g)", modelSigma, alpha, epsilon),
		Note:    "release calibrated under the modelled chain; loss measured under the true chain",
		Columns: []string{"true_sigma", "max_realized_loss", "mean_realized_loss", "exceeds_eps"},
	}
	plm := lppm.NewPlanarLaplace(modelW.Grid)
	uniCol := mat.NewVector(modelW.Grid.States())
	for i := range uniCol {
		uniCol[i] = 1 / float64(len(uniCol))
	}
	for _, ts := range trueSigmas {
		trueCfg := synth
		trueCfg.Sigma = ts
		trueW, err := Synthetic(trueCfg)
		if err != nil {
			return nil, err
		}
		trueTP := world.NewHomogeneous(trueW.Chain)
		trueMD, err := world.NewModel(trueTP, ev)
		if err != nil {
			return nil, err
		}
		var maxLoss, sumLoss float64
		var lossCount int
		for k, traj := range trueW.Trajs {
			rng := rand.New(rand.NewSource(trueW.Seed + 7919*int64(k+1)))
			fw, err := core.New(plm, modelTP, events, core.DefaultConfig(epsilon, alpha), rng)
			if err != nil {
				return nil, err
			}
			results, err := fw.Run(traj)
			if err != nil {
				return nil, err
			}
			// Recover the emission columns actually used and replay them
			// through a quantifier built on the TRUE chain.
			cols := make([]mat.Vector, len(results))
			for t, r := range results {
				if r.Uniform {
					cols[t] = uniCol
					continue
				}
				em, err := plm.Emission(r.Alpha)
				if err != nil {
					return nil, err
				}
				cols[t] = em.Col(r.Obs)
			}
			q := world.NewQuantifier(trueMD)
			for _, c := range cols {
				if err := q.Commit(c); err != nil {
					return nil, err
				}
			}
			chk := q.Current()
			prng := rand.New(rand.NewSource(13 * int64(k+1)))
			for p := 0; p < priors; p++ {
				pi := randomPrior(prng, len(uniCol), p)
				loss, err := qp.FixedPiLoss(chk, pi)
				if err != nil || math.IsInf(loss, 1) {
					continue
				}
				sumLoss += loss
				lossCount++
				if loss > maxLoss {
					maxLoss = loss
				}
			}
		}
		mean := 0.0
		if lossCount > 0 {
			mean = sumLoss / float64(lossCount)
		}
		tab.AddRow(f3(ts), f4(maxLoss), f4(mean), fmt.Sprintf("%t", maxLoss > epsilon*(1+1e-9)))
	}
	return tab, nil
}

// randomPrior produces a spread of adversary priors: uniform first, then
// increasingly concentrated random beliefs.
func randomPrior(rng *rand.Rand, m, k int) mat.Vector {
	pi := mat.NewVector(m)
	if k == 0 {
		for i := range pi {
			pi[i] = 1 / float64(m)
		}
		return pi
	}
	// Dirichlet-ish: exponential weights raised to a growing power.
	pow := 1.0 + float64(k%5)
	for i := range pi {
		pi[i] = math.Pow(rng.ExpFloat64(), pow)
	}
	pi.Normalize()
	return pi
}
