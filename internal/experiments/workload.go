// Package experiments regenerates every table and figure of the paper's
// evaluation section (§V): per-timestamp budget calibration (Figs. 7–10),
// utility sweeps over ε, α, δ and σ (Figs. 11–13), the runtime comparison
// against the naive baseline (Fig. 14) and the conservative-release
// threshold trade-off (Table III). Each runner accepts a scale
// configuration so the same code drives quick benchmarks and full
// paper-scale runs.
package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"priste/internal/core"
	"priste/internal/event"
	"priste/internal/geolife"
	"priste/internal/grid"
	"priste/internal/lppm"
	"priste/internal/markov"
	"priste/internal/mat"
	"priste/internal/world"
)

// Workload bundles a map, a mobility model and the true trajectories of
// the repeated runs.
type Workload struct {
	Grid  *grid.Grid
	Chain *markov.Chain
	Pi    mat.Vector
	Trajs [][]int
	Seed  int64
}

// SyntheticConfig describes the §V-A synthetic workload: a W×H grid with a
// Gaussian-kernel transition matrix of scale Sigma, and trajectories of
// length T sampled from the chain.
type SyntheticConfig struct {
	W, H  int
	Cell  float64
	Sigma float64
	T     int
	Runs  int
	Seed  int64
}

// PaperSynthetic returns the full-scale synthetic parameters of §V-A
// (20×20 cells, 50 timestamps, 100 runs).
func PaperSynthetic() SyntheticConfig {
	return SyntheticConfig{W: 20, H: 20, Cell: 1, Sigma: 1, T: 50, Runs: 100, Seed: 1}
}

// Synthetic builds the workload.
func Synthetic(cfg SyntheticConfig) (*Workload, error) {
	g, err := grid.New(cfg.W, cfg.H, cfg.Cell)
	if err != nil {
		return nil, err
	}
	chain, err := markov.GaussianChain(g, cfg.Sigma)
	if err != nil {
		return nil, err
	}
	if cfg.T <= 0 || cfg.Runs <= 0 {
		return nil, fmt.Errorf("experiments: T and Runs must be positive")
	}
	pi := markov.Uniform(g.States())
	rng := rand.New(rand.NewSource(cfg.Seed))
	trajs := make([][]int, cfg.Runs)
	for k := range trajs {
		trajs[k] = chain.SamplePath(rng, pi, cfg.T)
	}
	return &Workload{Grid: g, Chain: chain, Pi: pi, Trajs: trajs, Seed: cfg.Seed}, nil
}

// GeolifeConfig describes the Geolife-substitute workload: traces from the
// synthetic generator, a chain trained on them, and evaluation
// trajectories sliced from held-out days.
type GeolifeConfig struct {
	W, H   int
	CellKm float64
	Days   int
	T      int
	Runs   int
	Seed   int64
}

// PaperGeolife returns the full-scale Geolife-substitute parameters
// (20×20 km map, 50-step trajectories, 100 runs).
func PaperGeolife() GeolifeConfig {
	return GeolifeConfig{W: 20, H: 20, CellKm: 1, Days: 120, T: 50, Runs: 100, Seed: 2}
}

// Geolife builds the workload: generate, train, then slice evaluation
// trajectories from the generated days round-robin.
func Geolife(cfg GeolifeConfig) (*Workload, error) {
	g, err := grid.New(cfg.W, cfg.H, cfg.CellKm)
	if err != nil {
		return nil, err
	}
	if cfg.T <= 0 || cfg.Runs <= 0 {
		return nil, fmt.Errorf("experiments: T and Runs must be positive")
	}
	days := cfg.Days
	if days <= 0 {
		days = 60
	}
	ds, err := geolife.Generate(geolife.Config{
		Grid: g,
		Days: days,
		// Each day must be long enough to slice a T-step evaluation run.
		StepsPerDay: maxInt(cfg.T, 48),
		Seed:        cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	chain, pi, err := ds.Train(0.001)
	if err != nil {
		return nil, err
	}
	trajs := make([][]int, cfg.Runs)
	for k := range trajs {
		day := ds.States[k%len(ds.States)]
		trajs[k] = day[:cfg.T]
	}
	return &Workload{Grid: g, Chain: chain, Pi: pi, Trajs: trajs, Seed: cfg.Seed}, nil
}

// MechanismKind selects the case-study mechanism.
type MechanismKind int

const (
	// PLM is PriSTE with geo-indistinguishability (Algorithm 2).
	PLM MechanismKind = iota
	// DeltaLoc is PriSTE with δ-location-set privacy (Algorithm 3).
	DeltaLoc
)

// ReleaseSpec parameterises one release experiment.
type ReleaseSpec struct {
	Kind      MechanismKind
	Alpha     float64
	Delta     float64 // δ-location set only
	Epsilon   float64
	QPTimeout time.Duration
	// Decay overrides the budget decay factor (0 = the paper's 1/2).
	Decay float64
}

// RunReleases executes the PriSTE loop over every trajectory of the
// workload and returns the per-run step results.
func RunReleases(w *Workload, events []event.Event, spec ReleaseSpec) ([][]core.StepResult, error) {
	tp := world.NewHomogeneous(w.Chain)
	cfg := core.DefaultConfig(spec.Epsilon, spec.Alpha)
	if spec.QPTimeout > 0 {
		cfg.QPTimeout = spec.QPTimeout
	} else if spec.QPTimeout < 0 {
		cfg.QPTimeout = 0 // negative spec timeout means "no limit"
	}
	if spec.Decay > 0 {
		cfg.Decay = spec.Decay
	}
	// A shared stateless PLM lets the emission cache amortise across runs.
	var sharedPLM *lppm.PlanarLaplace
	if spec.Kind == PLM {
		sharedPLM = lppm.NewPlanarLaplace(w.Grid)
	}
	out := make([][]core.StepResult, len(w.Trajs))
	for k, traj := range w.Trajs {
		rng := rand.New(rand.NewSource(w.Seed + 1000003*int64(k+1)))
		var mech lppm.Perturber
		switch spec.Kind {
		case PLM:
			mech = sharedPLM
		case DeltaLoc:
			d, err := lppm.NewDeltaLocationSet(w.Grid, w.Chain, w.Pi, spec.Delta)
			if err != nil {
				return nil, err
			}
			mech = d
		default:
			return nil, fmt.Errorf("experiments: unknown mechanism kind %d", spec.Kind)
		}
		f, err := core.New(mech, tp, events, cfg, rng)
		if err != nil {
			return nil, err
		}
		results, err := f.Run(traj)
		if err != nil {
			return nil, err
		}
		out[k] = results
	}
	return out, nil
}

// PresenceRange builds the paper's PRESENCE(S={lo:hi}, T={start:end})
// event using the paper's 1-based inclusive notation, converting to the
// 0-based representation used internally.
func PresenceRange(m, stateLo, stateHi, timeStart, timeEnd int) (*event.Presence, error) {
	region, err := grid.RegionRange(m, stateLo-1, stateHi-1)
	if err != nil {
		return nil, err
	}
	return event.NewPresence(region, timeStart-1, timeEnd-1)
}

// PatternRange builds a PATTERN over consecutive timestamps with one
// region of the given 1-based state range per step.
func PatternRange(m int, stateRanges [][2]int, timeStart int) (*event.Pattern, error) {
	regions := make([]*grid.Region, len(stateRanges))
	for i, r := range stateRanges {
		region, err := grid.RegionRange(m, r[0]-1, r[1]-1)
		if err != nil {
			return nil, err
		}
		regions[i] = region
	}
	return event.NewPattern(regions, timeStart-1)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
