package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"priste/internal/event"
	"priste/internal/grid"
	"priste/internal/lppm"
	"priste/internal/mat"
	"priste/internal/metrics"
	"priste/internal/world"
)

// Fig. 14: runtime of the two-possible-world quantification versus the
// naive exponential baseline (Algorithm 4) as the PATTERN event grows in
// time length and region width. Table III: the conservative-release
// threshold trade-off.

// RuntimeConfig parameterises Fig. 14.
type RuntimeConfig struct {
	Synth SyntheticConfig
	// Lengths are the event time lengths swept at FixedWidth; Widths the
	// event widths swept at FixedLength (paper: 5..15 and 5..15 at 5).
	Lengths     []int
	Widths      []int
	FixedWidth  int
	FixedLength int
	// Trials is the number of random events averaged per point (paper:
	// 100).
	Trials int
	// BaselineCap skips the naive baseline when width^length exceeds it
	// (the baseline is exponential; the paper lets it run to ~10⁴ s,
	// which a test harness cannot afford). Skipped cells show "-".
	BaselineCap float64
	Alpha       float64
	Seed        int64
}

// DefaultRuntime returns a configuration whose baseline cells finish in
// seconds; widen Lengths/Widths and raise BaselineCap to approach the
// paper's ranges.
func DefaultRuntime(synth SyntheticConfig) RuntimeConfig {
	return RuntimeConfig{
		Synth:       synth,
		Lengths:     []int{2, 4, 6, 8, 10},
		Widths:      []int{2, 4, 6, 8, 10},
		FixedWidth:  3,
		FixedLength: 5,
		Trials:      5,
		BaselineCap: 5e6,
		Alpha:       1,
		Seed:        7,
	}
}

// Fig14 measures quantification runtime and returns two tables: runtime
// versus event length and versus event width.
func Fig14(cfg RuntimeConfig) (lenTable, widthTable *Table, err error) {
	w, err := Synthetic(cfg.Synth)
	if err != nil {
		return nil, nil, err
	}
	lenTable, err = runtimeSweep(w, cfg, true)
	if err != nil {
		return nil, nil, err
	}
	widthTable, err = runtimeSweep(w, cfg, false)
	if err != nil {
		return nil, nil, err
	}
	return lenTable, widthTable, nil
}

func runtimeSweep(w *Workload, cfg RuntimeConfig, byLength bool) (*Table, error) {
	var sweep []int
	var name, varying string
	if byLength {
		sweep, varying = cfg.Lengths, "length"
		name = fmt.Sprintf("Fig14 runtime vs event length (width=%d)", cfg.FixedWidth)
	} else {
		sweep, varying = cfg.Widths, "width"
		name = fmt.Sprintf("Fig14 runtime vs event width (length=%d)", cfg.FixedLength)
	}
	tab := &Table{
		Name:    name,
		Note:    fmt.Sprintf("PATTERN events, %d trials per point; baseline skipped above %g trajectories", cfg.Trials, cfg.BaselineCap),
		Columns: []string{varying, "baseline_s", "priste_s", "trajectories"},
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	plm := lppm.NewPlanarLaplace(w.Grid)
	em, err := plm.Emission(cfg.Alpha)
	if err != nil {
		return nil, err
	}
	tp := world.NewHomogeneous(w.Chain)
	for _, v := range sweep {
		length, width := cfg.FixedLength, cfg.FixedWidth
		if byLength {
			length = v
		} else {
			width = v
		}
		trajCount := math.Pow(float64(width), float64(length))
		var baseTotal, fastTotal time.Duration
		baseRuns := 0
		for trial := 0; trial < cfg.Trials; trial++ {
			ev, obs, cols, err := randomPatternInstance(rng, w, em, length, width)
			if err != nil {
				return nil, err
			}
			// PriSTE: two-possible-world joint probability.
			md, err := world.NewModel(tp, ev)
			if err != nil {
				return nil, err
			}
			start := time.Now()
			if _, _, err := world.JointAndMarginal(md, w.Pi, cols); err != nil {
				return nil, err
			}
			fastTotal += time.Since(start)
			// Baseline: Algorithm 4, when affordable.
			if trajCount <= cfg.BaselineCap {
				evStart, evEnd := ev.Window()
				emFn := func(t, o, s int) float64 { return em.At(s, o) }
				start = time.Now()
				if _, err := event.NaivePatternJoint(w.Chain, w.Pi, ev, obs[evStart:evEnd+1], emFn); err != nil {
					return nil, err
				}
				baseTotal += time.Since(start)
				baseRuns++
			}
		}
		base := "-"
		if baseRuns > 0 {
			base = f6(baseTotal.Seconds() / float64(baseRuns))
		}
		tab.AddRow(fmt.Sprintf("%d", v), base,
			f6(fastTotal.Seconds()/float64(cfg.Trials)), f6(trajCount))
	}
	return tab, nil
}

// randomPatternInstance builds a random PATTERN event of the given length
// and width starting at 0-based time 2, plus an observation sequence
// covering timestamps 0..end and the matching emission columns.
func randomPatternInstance(rng *rand.Rand, w *Workload, em *mat.Matrix, length, width int) (*event.Pattern, []int, []mat.Vector, error) {
	m := w.Grid.States()
	regions := make([]*grid.Region, length)
	for i := range regions {
		r, err := randomContiguousRegion(rng, m, width)
		if err != nil {
			return nil, nil, nil, err
		}
		regions[i] = r
	}
	const start = 2
	ev, err := event.NewPattern(regions, start)
	if err != nil {
		return nil, nil, nil, err
	}
	_, end := ev.Window()
	traj := w.Chain.SamplePath(rng, w.Pi, end+1)
	obs := make([]int, end+1)
	cols := make([]mat.Vector, end+1)
	for t := range obs {
		o, err := lppm.SampleRow(rng, em, traj[t])
		if err != nil {
			return nil, nil, nil, err
		}
		obs[t] = o
		cols[t] = em.Col(o)
	}
	return ev, obs, cols, nil
}

// TableIIIConfig parameterises the conservative-release threshold sweep.
type TableIIIConfig struct {
	Synth SyntheticConfig
	// Thresholds are the QP time budgets; 0 means "none" (unlimited).
	Thresholds []time.Duration
	Alpha      float64
	Epsilon    float64
}

// DefaultTableIII mirrors Table III with thresholds scaled to this
// solver's speed (the paper's CPLEX checks take orders of magnitude
// longer than the rank-one branch-and-bound here).
func DefaultTableIII(synth SyntheticConfig) TableIIIConfig {
	return TableIIIConfig{
		Synth:      synth,
		Thresholds: []time.Duration{50 * time.Microsecond, 200 * time.Microsecond, time.Millisecond, 10 * time.Millisecond, 0},
		Alpha:      1,
		Epsilon:    0.5,
	}
}

// TableIII runs the release loop under each threshold and reports average
// total runtime, conservative-release count, released budget and
// Euclidean distance.
func TableIII(cfg TableIIIConfig) (*Table, error) {
	w, err := Synthetic(cfg.Synth)
	if err != nil {
		return nil, err
	}
	events, err := BudgetFigConfig{States: [2]int{1, 10}, Windows: [][2]int{{4, 8}}}.events(w)
	if err != nil {
		return nil, err
	}
	tab := &Table{
		Name:    "TableIII runtime vs conservative-release threshold",
		Note:    fmt.Sprintf("%g-PLM, eps=%g, runs: %d", cfg.Alpha, cfg.Epsilon, len(w.Trajs)),
		Columns: []string{"threshold", "avg_total_runtime_s", "conservative_releases", "avg_budget", "avg_dist"},
	}
	for _, th := range cfg.Thresholds {
		spec := ReleaseSpec{Kind: PLM, Alpha: cfg.Alpha, Epsilon: cfg.Epsilon, QPTimeout: th}
		if th == 0 {
			spec.QPTimeout = -1 // "none": RunReleases maps this to unlimited
		}
		start := time.Now()
		runs, err := RunReleases(w, events, spec)
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start).Seconds() / float64(len(runs))
		conservative := 0
		for _, r := range runs {
			conservative += metrics.ConservativeCount(r)
		}
		budget, err := metrics.AvgBudget(runs)
		if err != nil {
			return nil, err
		}
		dist, err := metrics.AvgEuclid(w.Grid, w.Trajs, runs)
		if err != nil {
			return nil, err
		}
		label := "none"
		if th > 0 {
			label = th.String()
		}
		tab.AddRow(label, f4(elapsed), fmt.Sprintf("%d", conservative), f4(budget.Mean), f4(dist.Mean))
	}
	return tab, nil
}

// randomContiguousRegion picks a contiguous run of `width` states starting
// at a random offset.
func randomContiguousRegion(rng *rand.Rand, m, width int) (*grid.Region, error) {
	if width > m {
		return nil, fmt.Errorf("experiments: width %d exceeds map size %d", width, m)
	}
	lo := rng.Intn(m - width + 1)
	return grid.RegionRange(m, lo, lo+width-1)
}
