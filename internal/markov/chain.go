// Package markov implements the first-order time-homogeneous Markov
// mobility model the paper uses to capture temporal correlation between a
// user's consecutive locations (§III-A), together with training from
// trajectories (replacing the R package "markovchain" used in §V-A) and the
// Gaussian-kernel synthetic transition builder of the evaluation section.
package markov

import (
	"fmt"
	"math"
	"math/rand"

	"priste/internal/mat"
)

// Chain is a finite Markov chain over m states with a row-stochastic
// transition matrix: M[i][j] = Pr(u_{t+1} = s_j | u_t = s_i).
type Chain struct {
	m int
	t *mat.Matrix
}

// StochasticTol is the tolerance used when validating row sums.
const StochasticTol = 1e-8

// NewChain validates and wraps a transition matrix. The matrix is cloned so
// later caller mutations cannot corrupt the chain.
func NewChain(t *mat.Matrix) (*Chain, error) {
	if t.Rows != t.Cols {
		return nil, fmt.Errorf("markov: transition matrix must be square, got %d×%d", t.Rows, t.Cols)
	}
	if t.Rows == 0 {
		return nil, fmt.Errorf("markov: empty transition matrix")
	}
	for i := 0; i < t.Rows; i++ {
		row := t.Row(i)
		for _, v := range row {
			if v < 0 || math.IsNaN(v) {
				return nil, fmt.Errorf("markov: row %d has invalid probability %g", i, v)
			}
		}
		if s := row.Sum(); math.Abs(s-1) > StochasticTol {
			return nil, fmt.Errorf("markov: row %d sums to %g, want 1", i, s)
		}
	}
	return &Chain{m: t.Rows, t: t.Clone()}, nil
}

// MustNewChain is NewChain that panics on error; for tests and literals.
func MustNewChain(t *mat.Matrix) *Chain {
	c, err := NewChain(t)
	if err != nil {
		panic(err)
	}
	return c
}

// States returns the number of states m.
func (c *Chain) States() int { return c.m }

// Matrix returns the transition matrix. Callers must not mutate it.
func (c *Chain) Matrix() *mat.Matrix { return c.t }

// Prob returns Pr(u_{t+1}=s_j | u_t=s_i).
func (c *Chain) Prob(i, j int) float64 { return c.t.At(i, j) }

// Step returns p·M, the one-step evolution of a distribution p.
func (c *Chain) Step(p mat.Vector) mat.Vector {
	return c.t.VecMul(p)
}

// StepInto stores p·M into dst. dst must not alias p.
func (c *Chain) StepInto(dst, p mat.Vector) mat.Vector {
	return c.t.VecMulInto(dst, p)
}

// StepN returns p·Mⁿ.
func (c *Chain) StepN(p mat.Vector, n int) mat.Vector {
	cur := p.Clone()
	next := mat.NewVector(c.m)
	for k := 0; k < n; k++ {
		c.StepInto(next, cur)
		cur, next = next, cur
	}
	return cur
}

// Sample draws the next state given the current state using rng.
func (c *Chain) Sample(rng *rand.Rand, cur int) int {
	return sampleIndex(rng, c.t.Row(cur))
}

// SamplePath draws a trajectory of length n starting from a state drawn
// from the initial distribution pi.
func (c *Chain) SamplePath(rng *rand.Rand, pi mat.Vector, n int) []int {
	if n <= 0 {
		return nil
	}
	path := make([]int, n)
	path[0] = sampleIndex(rng, pi)
	for t := 1; t < n; t++ {
		path[t] = c.Sample(rng, path[t-1])
	}
	return path
}

// Stationary returns an approximate stationary distribution by power
// iteration from the uniform distribution. For periodic chains the result
// is the Cesàro-style late iterate rather than a true fixed point; the
// returned residual lets callers judge convergence.
func (c *Chain) Stationary(maxIter int, tol float64) (pi mat.Vector, residual float64) {
	pi = Uniform(c.m)
	next := mat.NewVector(c.m)
	for k := 0; k < maxIter; k++ {
		c.StepInto(next, pi)
		residual = 0
		for i := range pi {
			if d := math.Abs(next[i] - pi[i]); d > residual {
				residual = d
			}
		}
		pi, next = next, pi
		if residual <= tol {
			break
		}
	}
	return pi, residual
}

// Uniform returns the uniform distribution over m states.
func Uniform(m int) mat.Vector {
	p := mat.NewVector(m)
	for i := range p {
		p[i] = 1 / float64(m)
	}
	return p
}

// Delta returns the point-mass distribution on state s.
func Delta(m, s int) mat.Vector {
	if s < 0 || s >= m {
		panic(fmt.Sprintf("markov: delta state %d outside [0,%d)", s, m))
	}
	p := mat.NewVector(m)
	p[s] = 1
	return p
}

// PatternStrength summarises how "significant" the mobility pattern encoded
// by the chain is (§V-C, Fig. 13 discussion): the mean over rows of the
// maximum transition probability. A uniform chain scores 1/m; a
// deterministic chain scores 1.
func (c *Chain) PatternStrength() float64 {
	var s float64
	for i := 0; i < c.m; i++ {
		s += c.t.Row(i).Max()
	}
	return s / float64(c.m)
}

func sampleIndex(rng *rand.Rand, p mat.Vector) int {
	u := rng.Float64()
	var acc float64
	for i, v := range p {
		acc += v
		if u < acc {
			return i
		}
	}
	// Rounding: return the last state with non-zero probability.
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] > 0 {
			return i
		}
	}
	return len(p) - 1
}
