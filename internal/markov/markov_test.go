package markov

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"priste/internal/grid"
	"priste/internal/mat"
)

// paperM is the transition matrix of Example III.1 (Eq. 2).
func paperM() *mat.Matrix {
	return mat.FromRows([][]float64{
		{0.1, 0.2, 0.7},
		{0.4, 0.1, 0.5},
		{0, 0.1, 0.9},
	})
}

func TestNewChainValidation(t *testing.T) {
	if _, err := NewChain(mat.NewMatrix(2, 3)); err == nil {
		t.Error("expected error for non-square")
	}
	if _, err := NewChain(mat.NewMatrix(0, 0)); err == nil {
		t.Error("expected error for empty")
	}
	bad := mat.FromRows([][]float64{{0.5, 0.4}, {0.5, 0.5}})
	if _, err := NewChain(bad); err == nil {
		t.Error("expected error for row sum != 1")
	}
	neg := mat.FromRows([][]float64{{1.5, -0.5}, {0.5, 0.5}})
	if _, err := NewChain(neg); err == nil {
		t.Error("expected error for negative entry")
	}
	if _, err := NewChain(paperM()); err != nil {
		t.Errorf("paper matrix rejected: %v", err)
	}
}

func TestChainClonesInput(t *testing.T) {
	m := paperM()
	c := MustNewChain(m)
	m.Set(0, 0, 99)
	if c.Prob(0, 0) != 0.1 {
		t.Fatal("chain shares storage with caller matrix")
	}
}

func TestStepMatchesPaperExample(t *testing.T) {
	// p2 = pi·M with pi uniform over the Example III.1 chain.
	c := MustNewChain(paperM())
	pi := Uniform(3)
	p2 := c.Step(pi)
	want := mat.Vector{(0.1 + 0.4 + 0) / 3, (0.2 + 0.1 + 0.1) / 3, (0.7 + 0.5 + 0.9) / 3}
	if !p2.EqualApprox(want, 1e-12) {
		t.Fatalf("p2 = %v want %v", p2, want)
	}
	if math.Abs(p2.Sum()-1) > 1e-12 {
		t.Fatalf("step does not preserve mass: %v", p2.Sum())
	}
}

func TestStepNMatchesIteratedStep(t *testing.T) {
	c := MustNewChain(paperM())
	p := Delta(3, 0)
	got := c.StepN(p, 4)
	want := p.Clone()
	for i := 0; i < 4; i++ {
		want = c.Step(want)
	}
	if !got.EqualApprox(want, 1e-12) {
		t.Fatalf("StepN = %v want %v", got, want)
	}
}

func TestStationary(t *testing.T) {
	c := MustNewChain(paperM())
	pi, res := c.Stationary(1000, 1e-12)
	if res > 1e-10 {
		t.Fatalf("did not converge, residual %v", res)
	}
	if !c.Step(pi).EqualApprox(pi, 1e-9) {
		t.Fatalf("pi not stationary: %v", pi)
	}
	if !pi.IsDistribution(1e-9) {
		t.Fatalf("pi not a distribution: %v", pi)
	}
}

func TestSamplePathRespectsSupport(t *testing.T) {
	// Deterministic cycle 0->1->2->0.
	c := MustNewChain(mat.FromRows([][]float64{
		{0, 1, 0}, {0, 0, 1}, {1, 0, 0},
	}))
	rng := rand.New(rand.NewSource(1))
	path := c.SamplePath(rng, Delta(3, 0), 9)
	for i, s := range path {
		if s != i%3 {
			t.Fatalf("path[%d] = %d, want %d", i, s, i%3)
		}
	}
	if c.SamplePath(rng, Delta(3, 0), 0) != nil {
		t.Error("zero-length path should be nil")
	}
}

func TestSampleDistributionConverges(t *testing.T) {
	c := MustNewChain(paperM())
	rng := rand.New(rand.NewSource(7))
	const n = 200000
	counts := make([]float64, 3)
	for i := 0; i < n; i++ {
		counts[c.Sample(rng, 0)]++
	}
	for j := 0; j < 3; j++ {
		got := counts[j] / n
		if math.Abs(got-c.Prob(0, j)) > 0.01 {
			t.Fatalf("empirical Pr(0->%d) = %v want %v", j, got, c.Prob(0, j))
		}
	}
}

func TestDeltaPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Delta(3, 3)
}

func TestTrainRecoversDeterministicChain(t *testing.T) {
	trajs := [][]int{{0, 1, 2, 0, 1, 2, 0, 1, 2, 0}}
	c, err := Train(trajs, TrainOptions{States: 3})
	if err != nil {
		t.Fatal(err)
	}
	if c.Prob(0, 1) != 1 || c.Prob(1, 2) != 1 || c.Prob(2, 0) != 1 {
		t.Fatalf("trained matrix wrong:\n%v", c.Matrix())
	}
}

func TestTrainSmoothing(t *testing.T) {
	c, err := Train([][]int{{0, 1}}, TrainOptions{States: 3, Smoothing: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Row 0: counts [0,1,0] + 1 smoothing each => [1,2,1]/4.
	if math.Abs(c.Prob(0, 1)-0.5) > 1e-12 {
		t.Fatalf("Prob(0,1) = %v", c.Prob(0, 1))
	}
	// Unvisited rows become uniform under smoothing.
	if math.Abs(c.Prob(2, 0)-1.0/3) > 1e-12 {
		t.Fatalf("Prob(2,0) = %v", c.Prob(2, 0))
	}
}

func TestTrainUnvisitedSelfLoop(t *testing.T) {
	c, err := Train([][]int{{0, 1, 0}}, TrainOptions{States: 3})
	if err != nil {
		t.Fatal(err)
	}
	if c.Prob(2, 2) != 1 {
		t.Fatalf("unvisited state should self-loop, got row %v", c.Matrix().Row(2))
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, TrainOptions{States: 0}); err == nil {
		t.Error("expected error for zero states")
	}
	if _, err := Train(nil, TrainOptions{States: 3}); err == nil {
		t.Error("expected error for no data, no smoothing")
	}
	if _, err := Train([][]int{{0, 5}}, TrainOptions{States: 3}); err == nil {
		t.Error("expected error for out-of-range state")
	}
	if _, err := Train([][]int{{0, 1}}, TrainOptions{States: 3, Smoothing: -1}); err == nil {
		t.Error("expected error for negative smoothing")
	}
}

func TestTrainProperty(t *testing.T) {
	// Training on paths sampled from a known chain approaches that chain.
	src := MustNewChain(paperM())
	rng := rand.New(rand.NewSource(3))
	var trajs [][]int
	for i := 0; i < 50; i++ {
		trajs = append(trajs, src.SamplePath(rng, Uniform(3), 500))
	}
	got, err := Train(trajs, TrainOptions{States: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Matrix().EqualApprox(src.Matrix(), 0.02) {
		t.Fatalf("trained chain far from source:\n%v\nvs\n%v", got.Matrix(), src.Matrix())
	}
}

func TestEmpiricalInitial(t *testing.T) {
	p, err := EmpiricalInitial([][]int{{0}, {0}, {2}}, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !p.EqualApprox(mat.Vector{2.0 / 3, 0, 1.0 / 3}, 1e-12) {
		t.Fatalf("initial = %v", p)
	}
	if _, err := EmpiricalInitial(nil, 3, 0); err == nil {
		t.Error("expected error for no data")
	}
	if _, err := EmpiricalInitial([][]int{{9}}, 3, 0); err == nil {
		t.Error("expected error for out-of-range")
	}
}

func TestGaussianChainStochasticAndLocal(t *testing.T) {
	g := grid.MustNew(5, 5, 1)
	c, err := GaussianChain(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Matrix().IsRowStochastic(1e-9) {
		t.Fatal("not stochastic")
	}
	// With small sigma, self-transition dominates any far cell.
	center := g.State(2, 2)
	far := g.State(4, 4)
	if c.Prob(center, center) <= c.Prob(center, far) {
		t.Fatalf("locality violated: self %v far %v", c.Prob(center, center), c.Prob(center, far))
	}
}

func TestGaussianChainSigmaOrdersPatternStrength(t *testing.T) {
	g := grid.MustNew(6, 6, 1)
	small, _ := GaussianChain(g, 0.1)
	large, _ := GaussianChain(g, 10)
	if small.PatternStrength() <= large.PatternStrength() {
		t.Fatalf("sigma=0.1 strength %v should exceed sigma=10 strength %v",
			small.PatternStrength(), large.PatternStrength())
	}
	u, _ := UniformChain(36)
	if math.Abs(u.PatternStrength()-1.0/36) > 1e-12 {
		t.Fatalf("uniform strength = %v", u.PatternStrength())
	}
}

func TestGaussianChainValidation(t *testing.T) {
	g := grid.MustNew(3, 3, 1)
	for _, sigma := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := GaussianChain(g, sigma); err == nil {
			t.Errorf("sigma=%v accepted", sigma)
		}
	}
}

func TestSparsified(t *testing.T) {
	g := grid.MustNew(8, 8, 1)
	chain, err := GaussianChain(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := chain.Sparsified(1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if !sp.Matrix().IsRowStochastic(1e-9) {
		t.Fatal("sparsified chain not row-stochastic")
	}
	zeros := 0
	for i := 0; i < sp.States(); i++ {
		row := sp.Matrix().Row(i)
		if row.Max() == 0 {
			t.Fatalf("row %d lost all mass", i)
		}
		// The dominant transition must survive at the argmax of the
		// original row.
		if k := chain.Matrix().Row(i).ArgMax(); row[k] == 0 {
			t.Fatalf("row %d dropped its dominant transition", i)
		}
		for _, v := range row {
			if v == 0 {
				zeros++
			}
		}
	}
	if zeros == 0 {
		t.Fatal("cutoff dropped nothing — test premise broken")
	}
	// The original chain is untouched.
	if n := CSRDensityOf(chain.Matrix()); n != 1 {
		t.Fatalf("original chain density %v after Sparsified", n)
	}
	for _, bad := range []float64{0, -1, 1, 1.5, math.NaN()} {
		if _, err := chain.Sparsified(bad); err == nil {
			t.Errorf("cutoff %v accepted", bad)
		}
	}
}

// CSRDensityOf reports the nonzero density of a matrix.
func CSRDensityOf(m *mat.Matrix) float64 { return mat.CSRFromDense(m).Density() }

func TestLazyRandomWalk(t *testing.T) {
	g := grid.MustNew(3, 3, 1)
	c, err := LazyRandomWalk(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Matrix().IsRowStochastic(1e-12) {
		t.Fatal("not stochastic")
	}
	// Corner cell has 2 neighbours.
	if math.Abs(c.Prob(0, 1)-0.25) > 1e-12 {
		t.Fatalf("corner neighbour prob = %v", c.Prob(0, 1))
	}
	if _, err := LazyRandomWalk(g, 1.5); err == nil {
		t.Error("expected error for stay > 1")
	}
}

func TestUniformChainErrors(t *testing.T) {
	if _, err := UniformChain(0); err == nil {
		t.Error("expected error for m=0")
	}
}

// Property: any valid chain preserves total probability mass under Step.
func TestStepPreservesMassProperty(t *testing.T) {
	g := grid.MustNew(4, 4, 1)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sigma := 0.1 + rng.Float64()*5
		c, err := GaussianChain(g, sigma)
		if err != nil {
			return false
		}
		p := mat.NewVector(16)
		for i := range p {
			p[i] = rng.Float64()
		}
		p.Normalize()
		q := c.Step(p)
		return math.Abs(q.Sum()-1) < 1e-9 && q.Min() >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
