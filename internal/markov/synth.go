package markov

import (
	"fmt"
	"math"

	"priste/internal/grid"
	"priste/internal/mat"
)

// GaussianChain builds the synthetic mobility model of §V-A: on a grid map,
// the transition probability from one cell to another is proportional to a
// two-dimensional Gaussian kernel with scale parameter sigma centred on the
// current cell:
//
//	Pr(u_{t+1}=j | u_t=i) ∝ exp(−d(i,j)² / (2σ²))
//
// A small sigma concentrates mass on adjacent cells — a "significant"
// mobility pattern — while a large sigma approaches the uniform chain.
// Distances are in the grid's user units.
func GaussianChain(g *grid.Grid, sigma float64) (*Chain, error) {
	if sigma <= 0 || math.IsNaN(sigma) || math.IsInf(sigma, 0) {
		return nil, fmt.Errorf("markov: sigma must be positive and finite, got %g", sigma)
	}
	m := g.States()
	t := mat.NewMatrix(m, m)
	inv := 1 / (2 * sigma * sigma)
	for i := 0; i < m; i++ {
		row := t.Row(i)
		for j := 0; j < m; j++ {
			d := g.Dist(i, j)
			row[j] = math.Exp(-d * d * inv)
		}
		row.Normalize()
	}
	return NewChain(t)
}

// LazyRandomWalk returns a chain that stays put with probability stay and
// otherwise moves to a uniformly chosen 4-neighbour (reflecting at map
// edges). A simple, strongly-local baseline mobility model used in tests
// and examples.
func LazyRandomWalk(g *grid.Grid, stay float64) (*Chain, error) {
	if stay < 0 || stay > 1 || math.IsNaN(stay) {
		return nil, fmt.Errorf("markov: stay probability %g outside [0,1]", stay)
	}
	m := g.States()
	t := mat.NewMatrix(m, m)
	for s := 0; s < m; s++ {
		x, y := g.XY(s)
		var nbrs []int
		for _, d := range [][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
			nx, ny := x+d[0], y+d[1]
			if g.Contains(nx, ny) {
				nbrs = append(nbrs, g.State(nx, ny))
			}
		}
		row := t.Row(s)
		row[s] = stay
		if len(nbrs) == 0 {
			row[s] = 1
			continue
		}
		p := (1 - stay) / float64(len(nbrs))
		for _, n := range nbrs {
			row[n] += p
		}
	}
	return NewChain(t)
}

// Sparsified returns a copy of the chain with every transition
// probability below cutoff×(row maximum) dropped and each row
// renormalised. A Gaussian mobility kernel is mathematically dense —
// exp(−d²/2σ²) never reaches exact zero — but its mass is concentrated
// on a handful of neighbour cells, so a small cutoff (e.g. 1e-4) turns
// it into a structurally sparse chain that the quantifier compiles to
// CSR kernels; each row's dominant transition always survives. cutoff
// must lie in (0,1).
func (c *Chain) Sparsified(cutoff float64) (*Chain, error) {
	if cutoff <= 0 || cutoff >= 1 || math.IsNaN(cutoff) {
		return nil, fmt.Errorf("markov: sparsify cutoff %g outside (0,1)", cutoff)
	}
	t := c.t.Clone()
	for i := 0; i < c.m; i++ {
		row := t.Row(i)
		floor := cutoff * row.Max()
		for j, v := range row {
			if v < floor {
				row[j] = 0
			}
		}
		row.Normalize()
	}
	return NewChain(t)
}

// UniformChain returns the chain whose every row is uniform; the weakest
// possible mobility pattern.
func UniformChain(m int) (*Chain, error) {
	if m <= 0 {
		return nil, fmt.Errorf("markov: m must be positive")
	}
	t := mat.NewMatrix(m, m)
	for i := 0; i < m; i++ {
		row := t.Row(i)
		for j := range row {
			row[j] = 1 / float64(m)
		}
	}
	return NewChain(t)
}
