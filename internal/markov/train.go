package markov

import (
	"fmt"

	"priste/internal/mat"
)

// TrainOptions controls maximum-likelihood estimation of a transition
// matrix from trajectories.
type TrainOptions struct {
	// States is the size m of the state space. Required.
	States int
	// Smoothing is the additive (Laplace) smoothing constant applied to
	// every transition count. Zero gives the raw MLE; rows with no
	// observations fall back to self-loops unless Smoothing > 0.
	Smoothing float64
}

// Train estimates a first-order transition matrix from one or more
// trajectories, mirroring what the paper does with the R package
// "markovchain" on the Geolife traces. Each trajectory is a sequence of
// state indices.
func Train(trajs [][]int, opt TrainOptions) (*Chain, error) {
	m := opt.States
	if m <= 0 {
		return nil, fmt.Errorf("markov: TrainOptions.States must be positive, got %d", m)
	}
	if opt.Smoothing < 0 {
		return nil, fmt.Errorf("markov: negative smoothing %g", opt.Smoothing)
	}
	counts := mat.NewMatrix(m, m)
	total := 0
	for ti, traj := range trajs {
		for k := 0; k+1 < len(traj); k++ {
			a, b := traj[k], traj[k+1]
			if a < 0 || a >= m || b < 0 || b >= m {
				return nil, fmt.Errorf("markov: trajectory %d has state outside [0,%d) at step %d", ti, m, k)
			}
			counts.Set(a, b, counts.At(a, b)+1)
			total++
		}
	}
	if total == 0 && opt.Smoothing == 0 {
		return nil, fmt.Errorf("markov: no transitions observed and no smoothing requested")
	}
	t := mat.NewMatrix(m, m)
	for i := 0; i < m; i++ {
		row := counts.Row(i)
		sum := row.Sum() + opt.Smoothing*float64(m)
		out := t.Row(i)
		if sum == 0 {
			// Unvisited state with no smoothing: self-loop keeps the
			// matrix stochastic without inventing transitions.
			out[i] = 1
			continue
		}
		for j := range out {
			out[j] = (row[j] + opt.Smoothing) / sum
		}
	}
	return NewChain(t)
}

// EmpiricalInitial estimates an initial distribution from the first states
// of the given trajectories, with additive smoothing.
func EmpiricalInitial(trajs [][]int, m int, smoothing float64) (mat.Vector, error) {
	if m <= 0 {
		return nil, fmt.Errorf("markov: m must be positive")
	}
	if smoothing < 0 {
		return nil, fmt.Errorf("markov: negative smoothing %g", smoothing)
	}
	p := mat.NewVector(m)
	n := 0
	for ti, traj := range trajs {
		if len(traj) == 0 {
			continue
		}
		s := traj[0]
		if s < 0 || s >= m {
			return nil, fmt.Errorf("markov: trajectory %d starts outside [0,%d)", ti, m)
		}
		p[s]++
		n++
	}
	if n == 0 && smoothing == 0 {
		return nil, fmt.Errorf("markov: no trajectories and no smoothing")
	}
	for i := range p {
		p[i] = (p[i] + smoothing) / (float64(n) + smoothing*float64(m))
	}
	return p, nil
}
