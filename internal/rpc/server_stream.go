package rpc

import (
	"context"
	"encoding/binary"
	"sync/atomic"
	"time"

	"priste/internal/api"
)

// streamAckBatch caps how many releases coalesce into one opStreamAcks
// frame: enough to amortise the frame header and syscall, small enough
// that acks stay timely under sustained load.
const streamAckBatch = 32

// serverStream is one open step stream on one connection. The inbox is
// sized to the client-advertised window, so a compliant client can
// never fill it (it has at most `window` unacked steps outstanding);
// overflow is a protocol violation and kills the stream. The map entry,
// inboxClosed and all pushes belong to the connection's reader
// goroutine; dead is the only field shared with the pump.
type serverStream struct {
	id          string
	window      int
	inbox       chan int
	inboxClosed bool
	dead        atomic.Bool
}

// kill marks the stream terminal from the reader side and releases the
// pump. Reader goroutine only.
func (st *serverStream) kill() {
	st.dead.Store(true)
	if !st.inboxClosed {
		st.inboxClosed = true
		close(st.inbox)
	}
}

// syncStepper adapts a Service without the StepAsync fast path for the
// stream pump: each submission commits synchronously, degrading the
// stream to an effective window of 1 but preserving every semantic.
type syncStepper struct{ svc api.Service }

func (s syncStepper) StepAsync(ctx context.Context, id string, loc int) (<-chan api.StepOutcome, error) {
	resp, err := s.svc.Step(ctx, id, loc)
	if err != nil {
		return nil, err
	}
	ch := make(chan api.StepOutcome, 1)
	ch <- api.StepOutcome{Resp: resp}
	return ch, nil
}

// pumpStream is the per-stream worker: it submits inbox locations to
// the service in order, keeps the submissions' completion channels in
// FIFO, and flushes certified releases back as batched opStreamAcks
// frames. A full session queue is never surfaced to the client as an
// error — the pump settles its own head-of-line step (freeing a queue
// slot) and retries, so backpressure reaches the client only as
// withheld acks. Any step failure is terminal: the pump emits the
// releases that preceded it, then opError with the stream's reqID.
func (s *Server) pumpStream(ctx context.Context, w *connWriter, st *serverStream, stepper api.AsyncStepper, reqID, trace uint64) {
	defer s.wg.Done()
	type inflight struct {
		ch        <-chan api.StepOutcome
		submitted time.Time
	}
	var (
		pending     []inflight
		ackBuf      = make([]byte, 4, 4+streamAckBatch*stepRespLen)
		ackCount    int
		outstanding int
	)
	defer func() {
		if outstanding != 0 && s.ObserveStreamWindow != nil {
			s.ObserveStreamWindow(st.id, -outstanding)
		}
		if s.OnStreamClose != nil {
			s.OnStreamClose(st.id)
		}
	}()
	flush := func() {
		if ackCount == 0 {
			return
		}
		binary.BigEndian.PutUint32(ackBuf[:4], uint32(ackCount))
		w.send(opStreamAcks, reqID, trace, ackBuf)
		if s.ObserveStreamAcks != nil {
			s.ObserveStreamAcks(ackCount)
		}
		ackBuf = ackBuf[:4]
		ackCount = 0
	}
	terminate := func(err error) {
		flush()
		st.dead.Store(true)
		w.send(opError, reqID, trace, appendErrResp(nil, err))
	}
	settle := func(in inflight, out api.StepOutcome) bool {
		outstanding--
		if s.ObserveStreamWindow != nil {
			s.ObserveStreamWindow(st.id, -1)
		}
		if out.Err != nil {
			terminate(out.Err)
			return false
		}
		encStart := time.Now()
		ackBuf = appendStepResp(ackBuf, out.Resp)
		ackCount++
		s.observeStep(in.submitted, 0, time.Since(encStart))
		if ackCount >= streamAckBatch {
			flush()
		}
		return true
	}
	awaitHead := func() bool {
		in := pending[0]
		pending = pending[1:]
		select {
		case out := <-in.ch:
			return settle(in, out)
		case <-ctx.Done():
			return false
		}
	}
	// settleReady consumes completions that are already available
	// without blocking, so acks flow even while input keeps arriving.
	settleReady := func() bool {
		for len(pending) > 0 {
			select {
			case out := <-pending[0].ch:
				in := pending[0]
				pending = pending[1:]
				if !settle(in, out) {
					return false
				}
			default:
				return true
			}
		}
		return true
	}
	submit := func(loc int) bool {
		for {
			ch, err := stepper.StepAsync(ctx, st.id, loc)
			if err == nil {
				pending = append(pending, inflight{ch: ch, submitted: time.Now()})
				outstanding++
				if s.ObserveStreamWindow != nil {
					s.ObserveStreamWindow(st.id, 1)
				}
				return true
			}
			if api.ErrorOf(err).Code != api.CodeResourceExhausted {
				terminate(err)
				return false
			}
			// Session queue full. With our own steps in flight, settling
			// the head frees a slot; otherwise another writer owns the
			// queue — yield briefly and retry.
			if len(pending) > 0 {
				if !awaitHead() {
					return false
				}
				continue
			}
			flush()
			select {
			case <-time.After(200 * time.Microsecond):
			case <-ctx.Done():
				return false
			}
		}
	}
	for {
		if st.dead.Load() {
			return
		}
		if !settleReady() {
			return
		}
		if len(pending) == 0 {
			// Nothing in flight: deliver buffered acks now instead of
			// holding them for more input.
			flush()
			select {
			case loc, ok := <-st.inbox:
				if !ok {
					if st.dead.Load() {
						return
					}
					w.send(opStreamEnd, reqID, trace, nil)
					return
				}
				if !submit(loc) {
					return
				}
			case <-ctx.Done():
				return
			}
		} else {
			select {
			case loc, ok := <-st.inbox:
				if !ok {
					for len(pending) > 0 {
						if !awaitHead() {
							return
						}
					}
					if st.dead.Load() {
						return
					}
					flush()
					w.send(opStreamEnd, reqID, trace, nil)
					return
				}
				if !submit(loc) {
					return
				}
			case out := <-pending[0].ch:
				in := pending[0]
				pending = pending[1:]
				if !settle(in, out) {
					return
				}
			case <-ctx.Done():
				return
			}
		}
	}
}
