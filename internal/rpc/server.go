package rpc

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"priste/internal/api"
	"priste/internal/obs"
)

// Server serves the binary RPC protocol over any api.Service. One
// Server may serve many listeners and connections; each connection is a
// persistent session stream whose step frames are enqueued in arrival
// order (preserving per-session FIFO) while control calls and step
// completions run concurrently.
type Server struct {
	svc api.Service

	// Observe, when set before Serve, receives the service time of every
	// request served on this transport (the /statsz per-transport
	// section; see server.Server.ObserveRPC).
	Observe func(time.Duration)
	// ObserveStep, when set before Serve, receives the end-to-end, frame
	// decode and response encode times of every successfully served step
	// request (see server.Server.ObserveRPCStep). Streamed steps are
	// reported too, measured from submission to ack-batch append.
	ObserveStep func(total, decode, encode time.Duration)
	// OnStreamOpen / OnStreamClose, when set before Serve, bracket the
	// lifetime of every step stream (server.Server wires them to the
	// priste_stream_* gauges).
	OnStreamOpen  func(sessionID string)
	OnStreamClose func(sessionID string)
	// ObserveStreamWindow, when set before Serve, receives window-
	// occupancy deltas: +1 when a streamed step is submitted to the
	// service, -1 when its release is acked (or the stream dies). The
	// running sum is the stream's in-flight depth.
	ObserveStreamWindow func(sessionID string, delta int)
	// ObserveStreamAcks, when set before Serve, receives the size of
	// every flushed ack batch.
	ObserveStreamAcks func(n int)

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}
	closed    bool
	wg        sync.WaitGroup
}

// NewServer returns an RPC server over svc.
func NewServer(svc api.Service) *Server {
	return &Server{
		svc:       svc,
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[net.Conn]struct{}),
	}
}

// Serve accepts connections on lis until the listener fails or the
// server closes. It blocks; run it in a goroutine next to the HTTP
// listener. Returns nil after Close.
func (s *Server) Serve(lis net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		lis.Close()
		return errors.New("rpc: server closed")
	}
	s.listeners[lis] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, lis)
		s.mu.Unlock()
	}()
	for {
		conn, err := lis.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handleConn(conn)
	}
}

// Close stops every listener and connection and waits for the per-
// connection readers to exit. In-flight steps complete inside the
// service (and are journaled on durable deployments); only their
// responses are dropped with the connections.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for lis := range s.listeners {
		lis.Close()
	}
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// connWriter serialises response frames onto one connection.
type connWriter struct {
	mu   sync.Mutex
	conn net.Conn
	buf  []byte
}

func (w *connWriter) send(op byte, reqID, trace uint64, body []byte) {
	w.mu.Lock()
	w.buf = appendFrame(w.buf[:0], op, reqID, trace, body)
	_, _ = w.conn.Write(w.buf)
	w.mu.Unlock()
}

func (s *Server) observe(start time.Time) {
	if s.Observe != nil {
		s.Observe(time.Since(start))
	}
}

// handleConn is the per-connection reader loop. Step frames are
// enqueued synchronously (fixing their per-session FIFO position) with
// only the completion wait handed to a goroutine; control calls run in
// their own goroutine so a slow plan compile or export never blocks the
// step stream.
func (s *Server) handleConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	// ctx outlives individual requests and is cancelled with the
	// connection: a Step blocked on a dead peer must not leak forever.
	// Every request it spawns is tagged as RPC ingress for the per-
	// transport stage metrics.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ctx = obs.WithTransport(ctx, "rpc")
	w := &connWriter{conn: conn}
	br := bufio.NewReaderSize(conn, 32<<10)
	stepper, hasAsync := s.svc.(api.AsyncStepper)
	// Open streams on this connection, keyed by the reqID of their
	// opStreamOpen. The map and every inbox push belong to this reader
	// goroutine; pumps signal back only through the dead flag.
	streams := make(map[uint64]*serverStream)
	for {
		op, reqID, trace, body, err := readFrame(br)
		if err != nil {
			return // peer gone or protocol error: drop the connection
		}
		start := time.Now()
		if trace == 0 {
			// No client-supplied trace: generate one so the slow-step log
			// line and the echoed response frame still correlate.
			trace = obs.NewTraceID()
		}
		rctx := obs.WithTrace(ctx, trace)
		switch op {
		case opStep:
			id, loc, err := parseStepReq(body)
			if err != nil {
				s.fail(w, reqID, trace, start, err)
				continue
			}
			if hasAsync {
				ch, err := stepper.StepAsync(rctx, id, loc)
				if err != nil {
					s.fail(w, reqID, trace, start, err)
					continue
				}
				decode := time.Since(start)
				go func(reqID, trace uint64, start time.Time, decode time.Duration) {
					select {
					case out := <-ch:
						if out.Err != nil {
							s.fail(w, reqID, trace, start, out.Err)
							return
						}
						encStart := time.Now()
						w.send(opStepOK, reqID, trace, appendStepResp(nil, out.Resp))
						s.observeStep(start, decode, time.Since(encStart))
					case <-ctx.Done():
					}
				}(reqID, trace, start, decode)
			} else {
				// Without StepAsync the only way to preserve pipelined
				// same-session FIFO order is to serve the step before
				// reading the next frame. server.Server implements
				// StepAsync, so the real deployment never pays this.
				decode := time.Since(start)
				resp, err := s.svc.Step(rctx, id, loc)
				if err != nil {
					s.fail(w, reqID, trace, start, err)
					continue
				}
				encStart := time.Now()
				w.send(opStepOK, reqID, trace, appendStepResp(nil, resp))
				s.observeStep(start, decode, time.Since(encStart))
			}
		case opCall:
			if len(body) == 0 {
				s.fail(w, reqID, trace, start, api.Errf(api.CodeInvalidArgument, "rpc: empty call frame"))
				continue
			}
			method, payload := body[0], body[1:]
			go func(reqID, trace uint64, start time.Time) {
				resp, err := s.dispatch(rctx, method, payload)
				if err == nil && frameHeader+len(resp) > maxFrame {
					// A response the peer's readFrame would reject must
					// fail THIS request, not poison the shared connection
					// (e.g. exporting a session with tens of millions of
					// steps).
					err = api.Errf(api.CodeResourceExhausted, "rpc: response exceeds the frame limit; use the HTTP transport for this call")
				}
				if err != nil {
					s.fail(w, reqID, trace, start, err)
					return
				}
				w.send(opCallOK, reqID, trace, resp)
				s.observe(start)
			}(reqID, trace, start)
		case opStreamOpen:
			id, window, perr := parseStreamOpen(body)
			if perr != nil {
				s.fail(w, reqID, trace, start, perr)
				continue
			}
			if window <= 0 {
				window = api.DefaultStreamWindow
			}
			if window > api.MaxStreamWindow {
				s.fail(w, reqID, trace, start, api.Errf(api.CodeInvalidArgument, fmt.Sprintf("rpc: stream window %d exceeds the maximum %d", window, api.MaxStreamWindow)))
				continue
			}
			if _, ok := streams[reqID]; ok {
				s.fail(w, reqID, trace, start, api.Errf(api.CodeInvalidArgument, "rpc: stream id already open"))
				continue
			}
			info, err := s.svc.GetSession(id)
			if err != nil {
				s.fail(w, reqID, trace, start, err)
				continue
			}
			st := &serverStream{id: id, window: window, inbox: make(chan int, window)}
			streams[reqID] = st
			if s.OnStreamOpen != nil {
				s.OnStreamOpen(id)
			}
			pumpStepper := stepper
			if !hasAsync {
				pumpStepper = syncStepper{svc: s.svc}
			}
			s.wg.Add(1)
			go s.pumpStream(ctx, w, st, pumpStepper, reqID, trace)
			var tbuf [4]byte
			binary.BigEndian.PutUint32(tbuf[:], uint32(int32(info.T)))
			w.send(opStreamOK, reqID, trace, tbuf[:])
			s.observe(start)
		case opStreamStep:
			st, ok := streams[reqID]
			if !ok {
				s.fail(w, reqID, trace, start, api.Errf(api.CodeNotFound, "rpc: unknown stream"))
				continue
			}
			if st.dead.Load() || st.inboxClosed {
				continue // stream already terminal; in-flight frames are expected
			}
			loc, perr := parseStreamStep(body)
			if perr != nil {
				st.kill()
				s.fail(w, reqID, trace, start, perr)
				continue
			}
			select {
			case st.inbox <- loc:
			default:
				// A compliant client never has more than `window` unacked
				// steps in flight, so a full inbox is a protocol violation;
				// killing the stream (not the connection) keeps the reader
				// loop non-blocking.
				st.kill()
				s.fail(w, reqID, trace, start, api.Errf(api.CodeInvalidArgument, "rpc: stream window exceeded"))
			}
		case opStreamClose:
			st, ok := streams[reqID]
			if !ok {
				s.fail(w, reqID, trace, start, api.Errf(api.CodeNotFound, "rpc: unknown stream"))
				continue
			}
			if !st.dead.Load() && !st.inboxClosed {
				st.inboxClosed = true
				close(st.inbox)
			}
			s.observe(start)
		default:
			s.fail(w, reqID, trace, start, api.Errf(api.CodeInvalidArgument, "rpc: unknown op"))
		}
	}
}

// observeStep reports one successfully served step into both observer
// hooks: the request observer and the per-stage step observer.
func (s *Server) observeStep(start time.Time, decode, encode time.Duration) {
	total := time.Since(start)
	if s.Observe != nil {
		s.Observe(total)
	}
	if s.ObserveStep != nil {
		s.ObserveStep(total, decode, encode)
	}
}

func (s *Server) fail(w *connWriter, reqID, trace uint64, start time.Time, err error) {
	w.send(opError, reqID, trace, appendErrResp(nil, err))
	s.observe(start)
}

// idPayload is the JSON body of the id-addressed control calls.
type idPayload struct {
	ID string `json:"id"`
}

// dispatch runs one control-plane call: decode the JSON request, drive
// the service, encode the JSON response.
func (s *Server) dispatch(ctx context.Context, method byte, payload []byte) ([]byte, error) {
	switch method {
	case methodCreate:
		var req api.CreateSessionRequest
		if err := json.Unmarshal(payload, &req); err != nil {
			return nil, err
		}
		info, err := s.svc.CreateSession(req)
		if err != nil {
			return nil, err
		}
		return json.Marshal(info)
	case methodGet:
		var req idPayload
		if err := json.Unmarshal(payload, &req); err != nil {
			return nil, err
		}
		info, err := s.svc.GetSession(req.ID)
		if err != nil {
			return nil, err
		}
		return json.Marshal(info)
	case methodDelete:
		var req idPayload
		if err := json.Unmarshal(payload, &req); err != nil {
			return nil, err
		}
		if err := s.svc.DeleteSession(req.ID); err != nil {
			return nil, err
		}
		return []byte("{}"), nil
	case methodList:
		var req api.ListSessionsRequest
		if err := json.Unmarshal(payload, &req); err != nil {
			return nil, err
		}
		page, err := s.svc.ListSessions(req)
		if err != nil {
			return nil, err
		}
		return json.Marshal(page)
	case methodExport:
		var req idPayload
		if err := json.Unmarshal(payload, &req); err != nil {
			return nil, err
		}
		exp, err := s.svc.ExportSession(ctx, req.ID)
		if err != nil {
			return nil, err
		}
		return json.Marshal(exp)
	case methodImport:
		var exp api.SessionExport
		if err := json.Unmarshal(payload, &exp); err != nil {
			return nil, err
		}
		info, err := s.svc.ImportSession(exp)
		if err != nil {
			return nil, err
		}
		return json.Marshal(info)
	case methodStats:
		return json.Marshal(s.svc.Stats())
	case methodHealth:
		return json.Marshal(s.svc.Health())
	default:
		return nil, api.Errf(api.CodeInvalidArgument, "rpc: unknown method")
	}
}
