package rpc

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"

	"priste/internal/api"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	body := []byte("payload")
	buf.Write(appendFrame(nil, opCall, 42, 0xabcdef, body))
	op, reqID, trace, got, err := readFrame(&buf)
	if err != nil || op != opCall || reqID != 42 || trace != 0xabcdef || !bytes.Equal(got, body) {
		t.Fatalf("frame round trip: op=%d id=%d trace=%#x body=%q err=%v", op, reqID, trace, got, err)
	}
	// A frame length outside the bound is a protocol error.
	var bad bytes.Buffer
	bad.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, _, _, _, err := readFrame(&bad); err == nil {
		t.Fatal("oversized frame accepted")
	}
	// A torn frame reports an error rather than blocking forever.
	var torn bytes.Buffer
	torn.Write(appendFrame(nil, opStep, 1, 0, []byte("xxxx"))[:7])
	if _, _, _, _, err := readFrame(&torn); err == nil {
		t.Fatal("torn frame accepted")
	}
}

func TestStepCodecRoundTrip(t *testing.T) {
	body, err := appendStepReq(nil, "user-7", 1234)
	if err != nil {
		t.Fatal(err)
	}
	id, loc, err := parseStepReq(body)
	if err != nil || id != "user-7" || loc != 1234 {
		t.Fatalf("step request round trip: %q %d %v", id, loc, err)
	}
	resp := api.StepResponse{
		T: 9, Obs: 35, Alpha: 0.625, Attempts: 3,
		ConservativeRejections: 1, Uniform: true, CheckMicros: 123.5,
	}
	got, err := parseStepResp(appendStepResp(nil, resp))
	if err != nil || got != resp {
		t.Fatalf("step response round trip: %+v vs %+v (%v)", got, resp, err)
	}
	if _, _, err := parseStepReq([]byte{0}); err == nil {
		t.Fatal("short step request accepted")
	}
	if _, err := parseStepResp([]byte{1, 2, 3}); err == nil {
		t.Fatal("short step response accepted")
	}
}

func TestErrorCodecRoundTrip(t *testing.T) {
	in := api.Errf(api.CodeResourceExhausted, "queue full")
	out := parseErrResp(appendErrResp(nil, in))
	if out.Code != in.Code || out.Message != in.Message {
		t.Fatalf("error round trip: %+v vs %+v", out, in)
	}
	if !errors.Is(out, in) {
		t.Fatal("round-tripped error does not match sentinel")
	}
}

// fakeService is a minimal api.Service for transport-level tests; the
// full conformance suite against the real server lives in
// internal/server.
type fakeService struct {
	mu    sync.Mutex
	steps map[string]int
}

func newFakeService() *fakeService { return &fakeService{steps: make(map[string]int)} }

func (f *fakeService) CreateSession(req api.CreateSessionRequest) (api.SessionInfo, error) {
	if req.ID == "taken" {
		return api.SessionInfo{}, api.Errf(api.CodeAlreadyExists, "fake: taken")
	}
	f.mu.Lock()
	f.steps[req.ID] = 0
	f.mu.Unlock()
	return api.SessionInfo{ID: req.ID}, nil
}

func (f *fakeService) GetSession(id string) (api.SessionInfo, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	t, ok := f.steps[id]
	if !ok {
		return api.SessionInfo{}, api.Errf(api.CodeNotFound, "fake: no session")
	}
	return api.SessionInfo{ID: id, T: t}, nil
}

func (f *fakeService) DeleteSession(id string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.steps[id]; !ok {
		return api.Errf(api.CodeNotFound, "fake: no session")
	}
	delete(f.steps, id)
	return nil
}

func (f *fakeService) Step(_ context.Context, id string, loc int) (api.StepResponse, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	t, ok := f.steps[id]
	if !ok {
		return api.StepResponse{}, api.Errf(api.CodeNotFound, "fake: no session")
	}
	f.steps[id] = t + 1
	return api.StepResponse{T: t, Obs: loc, Alpha: 0.5, Attempts: 1}, nil
}

func (f *fakeService) StepBatch(ctx context.Context, steps []api.BatchStepItem) []api.StepResponse {
	out := make([]api.StepResponse, len(steps))
	for i, item := range steps {
		resp, err := f.Step(ctx, item.SessionID, item.Loc)
		if err != nil {
			out[i] = api.FailedStep(item.SessionID, err)
			continue
		}
		resp.SessionID = item.SessionID
		out[i] = resp
	}
	return out
}

func (f *fakeService) ListSessions(api.ListSessionsRequest) (api.SessionPage, error) {
	return api.SessionPage{}, nil
}

func (f *fakeService) ExportSession(_ context.Context, id string) (api.SessionExport, error) {
	return api.SessionExport{Version: api.V1, ID: id, World: "fake"}, nil
}

func (f *fakeService) ImportSession(exp api.SessionExport) (api.SessionInfo, error) {
	return api.SessionInfo{ID: exp.ID, T: exp.T}, nil
}

func (f *fakeService) Stats() api.Stats   { return api.Stats{} }
func (f *fakeService) Health() api.Health { return api.Health{Status: "ok"} }

func dialFake(t *testing.T) (*fakeService, *Client) {
	t.Helper()
	svc := newFakeService()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(svc)
	go func() { _ = srv.Serve(lis) }()
	t.Cleanup(func() { srv.Close() })
	client, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return svc, client
}

// TestTransportRoundTrip drives one of everything through a real TCP
// connection against the fake service.
func TestTransportRoundTrip(t *testing.T) {
	_, client := dialFake(t)
	ctx := context.Background()

	if _, err := client.CreateSession(ctx, api.CreateSessionRequest{ID: "u"}); err != nil {
		t.Fatal(err)
	}
	if _, err := client.CreateSession(ctx, api.CreateSessionRequest{ID: "taken"}); !errors.Is(err, api.Errf(api.CodeAlreadyExists, "")) {
		t.Fatalf("typed error lost: %v", err)
	}
	for k := 0; k < 3; k++ {
		res, err := client.Step(ctx, "u", 10+k)
		if err != nil || res.T != k || res.Obs != 10+k {
			t.Fatalf("step %d = %+v, %v", k, res, err)
		}
	}
	info, err := client.Session(ctx, "u")
	if err != nil || info.T != 3 {
		t.Fatalf("session = %+v, %v", info, err)
	}
	results, err := client.StepBatch(ctx, []api.BatchStepItem{
		{SessionID: "u", Loc: 1},
		{SessionID: "ghost", Loc: 2},
		{SessionID: "u", Loc: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].T != 3 || results[2].T != 4 {
		t.Fatalf("batch order broken: %+v", results)
	}
	if results[1].Code != api.CodeNotFound {
		t.Fatalf("batch inline error = %+v", results[1])
	}
	exp, err := client.ExportSession(ctx, "u")
	if err != nil || exp.World != "fake" {
		t.Fatalf("export = %+v, %v", exp, err)
	}
	if _, err := client.ImportSession(ctx, exp); err != nil {
		t.Fatal(err)
	}
	if err := client.Health(ctx); err != nil {
		t.Fatal(err)
	}
	if err := client.DeleteSession(ctx, "u"); err != nil {
		t.Fatal(err)
	}
	if err := client.DeleteSession(ctx, "u"); api.CodeOf(err) != api.CodeNotFound {
		t.Fatalf("second delete: %v", err)
	}
}

// TestConcurrentCalls hammers one connection with concurrent steps from
// many goroutines (run under -race): the request-id multiplexing must
// route every response to its caller.
func TestConcurrentCalls(t *testing.T) {
	_, client := dialFake(t)
	ctx := context.Background()
	const goroutines = 8
	const steps = 50
	for g := 0; g < goroutines; g++ {
		id := fmt.Sprintf("u%d", g)
		if _, err := client.CreateSession(ctx, api.CreateSessionRequest{ID: id}); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			id := fmt.Sprintf("u%d", g)
			for k := 0; k < steps; k++ {
				res, err := client.Step(ctx, id, g*1000+k)
				if err != nil {
					errc <- err
					return
				}
				// Obs echoes loc in the fake: a cross-wired response would
				// carry another goroutine's payload.
				if res.Obs != g*1000+k {
					errc <- fmt.Errorf("goroutine %d step %d got obs %d", g, k, res.Obs)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestClientReconnect: after the server side drops the connection, the
// next call redials transparently.
func TestClientReconnect(t *testing.T) {
	svc := newFakeService()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(svc)
	go func() { _ = srv.Serve(lis) }()
	client, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	ctx := context.Background()
	if _, err := client.CreateSession(ctx, api.CreateSessionRequest{ID: "u"}); err != nil {
		t.Fatal(err)
	}
	// Kill every live connection server-side; the listener stays up.
	srv.mu.Lock()
	for conn := range srv.conns {
		conn.Close()
	}
	srv.mu.Unlock()
	// The next call may land on the corpse once, then must recover.
	ok := false
	for attempt := 0; attempt < 3 && !ok; attempt++ {
		if _, err := client.Session(ctx, "u"); err == nil {
			ok = true
		}
	}
	if !ok {
		t.Fatal("client never recovered after connection loss")
	}
	srv.Close()
}
