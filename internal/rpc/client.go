package rpc

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"priste/internal/api"
	"priste/internal/obs"
)

// Client is the typed binary-RPC client. It implements api.Client — the
// same interface as the HTTP client — over one persistent, multiplexed
// TCP connection: concurrent calls pipeline their frames and are
// matched to responses by request id, so the hot step path pays no
// per-request connection setup, headers or JSON. The connection is
// dialed lazily and redialed transparently after an I/O failure
// (in-flight calls on the broken connection fail; the next call
// reconnects).
type Client struct {
	addr        string
	dialTimeout time.Duration

	mu     sync.Mutex // guards cc/seq and redial
	cc     *clientConn
	seq    uint64
	closed bool
}

var _ api.Client = (*Client)(nil)

// clientConn is one live connection with its own in-flight table, so a
// redial can never orphan or steal another connection's pending calls.
type clientConn struct {
	conn net.Conn
	bw   *bufio.Writer

	mu      sync.Mutex // guards pending/streams and writes
	pending map[uint64]chan response
	streams map[uint64]*clientStream
	dead    bool
}

type response struct {
	op   byte
	body []byte
}

// Dial returns a client for the pristed RPC listener at addr (e.g.
// "localhost:8378"). The connection is established on first use.
func Dial(addr string) (*Client, error) {
	if addr == "" {
		return nil, fmt.Errorf("rpc: empty address")
	}
	return &Client{addr: addr, dialTimeout: 10 * time.Second}, nil
}

// Close tears the connection down; in-flight calls fail and later calls
// return errors instead of redialing.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	cc := c.cc
	c.cc = nil
	c.mu.Unlock()
	if cc != nil {
		return cc.conn.Close()
	}
	return nil
}

// ensureConn dials and starts the reader if needed. Caller holds c.mu.
func (c *Client) ensureConn() (*clientConn, error) {
	if c.closed {
		return nil, api.Errf(api.CodeUnavailable, "rpc: client closed")
	}
	if c.cc != nil {
		return c.cc, nil
	}
	conn, err := net.DialTimeout("tcp", c.addr, c.dialTimeout)
	if err != nil {
		return nil, fmt.Errorf("rpc: dial %s: %w", c.addr, err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		// The protocol writes one small frame per step; letting Nagle
		// hold it back would add RTTs to every release.
		_ = tc.SetNoDelay(true)
	}
	cc := &clientConn{
		conn:    conn,
		bw:      bufio.NewWriterSize(conn, 32<<10),
		pending: make(map[uint64]chan response),
		streams: make(map[uint64]*clientStream),
	}
	c.cc = cc
	go c.readLoop(cc)
	return cc, nil
}

// fail marks the connection dead and fails everything in flight on it,
// open streams included.
func (cc *clientConn) fail() {
	cc.conn.Close()
	cc.mu.Lock()
	cc.dead = true
	stale := cc.pending
	cc.pending = nil
	staleStreams := cc.streams
	cc.streams = nil
	cc.mu.Unlock()
	for _, ch := range stale {
		close(ch) // closed channel = connection failure
	}
	for _, st := range staleStreams {
		st.terminate(api.Errf(api.CodeUnavailable, "rpc: connection lost"))
	}
}

// readLoop dispatches response frames to their pending calls until the
// connection dies.
func (c *Client) readLoop(cc *clientConn) {
	br := bufio.NewReaderSize(cc.conn, 32<<10)
	for {
		op, reqID, _, body, err := readFrame(br)
		if err != nil {
			c.mu.Lock()
			if c.cc == cc {
				c.cc = nil // next call redials
			}
			c.mu.Unlock()
			cc.fail()
			return
		}
		cc.mu.Lock()
		ch := cc.pending[reqID]
		delete(cc.pending, reqID)
		var st *clientStream
		if ch == nil {
			// Stream frames reuse one reqID for the stream's lifetime, so
			// the entry is not consumed per frame.
			st = cc.streams[reqID]
		}
		cc.mu.Unlock()
		if ch != nil {
			ch <- response{op: op, body: body}
		} else if st != nil {
			st.handleFrame(op, body)
		}
	}
}

// send enqueues one request frame and returns the connection it went
// out on plus its response channel. trace is the request's trace ID (0:
// none; the server generates one).
func (c *Client) send(op byte, trace uint64, body []byte) (*clientConn, uint64, chan response, error) {
	if frameHeader+len(body) > maxFrame {
		// The server's readFrame would kill the connection — and every
		// concurrent request on it — over this one oversized request
		// (e.g. importing an enormous session). Fail it locally instead.
		return nil, 0, nil, api.Errf(api.CodeInvalidArgument, "rpc: request exceeds the frame limit; use the HTTP transport for this call")
	}
	c.mu.Lock()
	cc, err := c.ensureConn()
	if err != nil {
		c.mu.Unlock()
		return nil, 0, nil, err
	}
	c.seq++
	reqID := c.seq
	c.mu.Unlock()

	ch := make(chan response, 1)
	cc.mu.Lock()
	if cc.dead {
		cc.mu.Unlock()
		return nil, 0, nil, api.Errf(api.CodeUnavailable, "rpc: connection lost")
	}
	cc.pending[reqID] = ch
	frame := appendFrame(nil, op, reqID, trace, body)
	_, werr := cc.bw.Write(frame)
	if werr == nil {
		werr = cc.bw.Flush()
	}
	cc.mu.Unlock()
	if werr != nil {
		c.mu.Lock()
		if c.cc == cc {
			c.cc = nil
		}
		c.mu.Unlock()
		cc.fail()
		return nil, 0, nil, fmt.Errorf("rpc: write: %w", werr)
	}
	return cc, reqID, ch, nil
}

// await blocks for the response (or ctx expiry / connection loss).
func (c *Client) await(ctx context.Context, cc *clientConn, reqID uint64, ch chan response) (response, error) {
	select {
	case resp, ok := <-ch:
		if !ok {
			return response{}, api.Errf(api.CodeUnavailable, "rpc: connection lost")
		}
		if resp.op == opError {
			return response{}, parseErrResp(resp.body)
		}
		return resp, nil
	case <-ctx.Done():
		cc.mu.Lock()
		delete(cc.pending, reqID) // the late response, if any, is dropped
		cc.mu.Unlock()
		return response{}, ctx.Err()
	}
}

// step issues one binary step round-trip. A trace ID on ctx
// (obs.WithTrace) rides the request frame and correlates the server's
// logs and metrics with this call.
func (c *Client) step(ctx context.Context, id string, loc int) (api.StepResponse, error) {
	body, err := appendStepReq(nil, id, loc)
	if err != nil {
		return api.StepResponse{}, err
	}
	cc, reqID, ch, err := c.send(opStep, obs.TraceFrom(ctx), body)
	if err != nil {
		return api.StepResponse{}, err
	}
	resp, err := c.await(ctx, cc, reqID, ch)
	if err != nil {
		return api.StepResponse{}, err
	}
	if resp.op != opStepOK {
		return api.StepResponse{}, api.Errf(api.CodeInternal, "rpc: unexpected response op")
	}
	return parseStepResp(resp.body)
}

// call issues one JSON control-plane round-trip; out nil discards the
// response body.
func (c *Client) call(ctx context.Context, method byte, in, out any) error {
	payload, err := json.Marshal(in)
	if err != nil {
		return err
	}
	body := append([]byte{method}, payload...)
	cc, reqID, ch, err := c.send(opCall, obs.TraceFrom(ctx), body)
	if err != nil {
		return err
	}
	resp, err := c.await(ctx, cc, reqID, ch)
	if err != nil {
		return err
	}
	if resp.op != opCallOK {
		return api.Errf(api.CodeInternal, "rpc: unexpected response op")
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(resp.body, out)
}

// CreateSession implements api.Client.
func (c *Client) CreateSession(ctx context.Context, req api.CreateSessionRequest) (api.SessionInfo, error) {
	var info api.SessionInfo
	err := c.call(ctx, methodCreate, req, &info)
	return info, err
}

// Session implements api.Client.
func (c *Client) Session(ctx context.Context, id string) (api.SessionInfo, error) {
	var info api.SessionInfo
	err := c.call(ctx, methodGet, idPayload{ID: id}, &info)
	return info, err
}

// DeleteSession implements api.Client.
func (c *Client) DeleteSession(ctx context.Context, id string) error {
	return c.call(ctx, methodDelete, idPayload{ID: id}, nil)
}

// Step implements api.Client over the binary fast path.
func (c *Client) Step(ctx context.Context, id string, loc int) (api.StepResponse, error) {
	return c.step(ctx, id, loc)
}

// StepBatch implements api.Client by pipelining one binary step frame
// per item on the shared connection: items are written in slice order
// (so same-session items keep their FIFO order server-side, exactly
// like the HTTP batch endpoint) and completions are collected
// positionally, with per-item failures reported inline.
func (c *Client) StepBatch(ctx context.Context, steps []api.BatchStepItem) ([]api.StepResponse, error) {
	type inflight struct {
		cc    *clientConn
		reqID uint64
		ch    chan response
	}
	calls := make([]inflight, len(steps))
	results := make([]api.StepResponse, len(steps))
	trace := obs.TraceFrom(ctx)
	for i, item := range steps {
		body, err := appendStepReq(nil, item.SessionID, item.Loc)
		if err == nil {
			calls[i].cc, calls[i].reqID, calls[i].ch, err = c.send(opStep, trace, body)
		}
		if err != nil {
			results[i] = api.FailedStep(item.SessionID, err)
			calls[i].ch = nil
		}
	}
	for i, call := range calls {
		if call.ch == nil {
			continue
		}
		resp, err := c.await(ctx, call.cc, call.reqID, call.ch)
		if err == nil && resp.op != opStepOK {
			err = api.Errf(api.CodeInternal, "rpc: unexpected response op")
		}
		if err != nil {
			results[i] = api.FailedStep(steps[i].SessionID, err)
			continue
		}
		sr, err := parseStepResp(resp.body)
		if err != nil {
			results[i] = api.FailedStep(steps[i].SessionID, err)
			continue
		}
		sr.SessionID = steps[i].SessionID
		results[i] = sr
	}
	return results, nil
}

// ListSessions implements api.Client.
func (c *Client) ListSessions(ctx context.Context, req api.ListSessionsRequest) (api.SessionPage, error) {
	var page api.SessionPage
	err := c.call(ctx, methodList, req, &page)
	return page, err
}

// ExportSession implements api.Client.
func (c *Client) ExportSession(ctx context.Context, id string) (api.SessionExport, error) {
	var exp api.SessionExport
	err := c.call(ctx, methodExport, idPayload{ID: id}, &exp)
	return exp, err
}

// ImportSession implements api.Client.
func (c *Client) ImportSession(ctx context.Context, exp api.SessionExport) (api.SessionInfo, error) {
	var info api.SessionInfo
	err := c.call(ctx, methodImport, exp, &info)
	return info, err
}

// Stats implements api.Client.
func (c *Client) Stats(ctx context.Context) (api.Stats, error) {
	var st api.Stats
	err := c.call(ctx, methodStats, struct{}{}, &st)
	return st, err
}

// Health implements api.Client.
func (c *Client) Health(ctx context.Context) error {
	var h api.Health
	if err := c.call(ctx, methodHealth, struct{}{}, &h); err != nil {
		return err
	}
	if h.Status != "ok" {
		return api.Errf(api.CodeUnavailable, "rpc: health status "+h.Status)
	}
	return nil
}
