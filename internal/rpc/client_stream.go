package rpc

import (
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"priste/internal/api"
	"priste/internal/obs"
)

// clientStream is the client half of one step stream. Flow control is
// a token bucket of size `window`: Send takes a token, Recv returns
// one when it consumes a release, so at most `window` steps are ever
// in flight (sent but not consumed) and a full bucket blocks Send —
// the client-side face of server backpressure. Because tokens come
// back only at Recv time, the recv buffer can never overflow and the
// connection's shared read loop never blocks on a slow stream
// consumer.
type clientStream struct {
	c     *Client
	cc    *clientConn
	reqID uint64
	trace uint64
	ctx   context.Context

	tokens chan struct{}
	recv   chan api.StepResponse
	done   chan struct{} // closed when the stream turns terminal

	openPending atomic.Bool
	openCh      chan error

	mu         sync.Mutex
	termErr    error
	sendClosed bool
}

var _ api.StepStream = (*clientStream)(nil)
var _ api.StreamClient = (*Client)(nil)

// StreamSteps implements api.StreamClient: it opens a windowed step
// stream into the session over the shared connection and returns once
// the server acknowledges it.
func (c *Client) StreamSteps(ctx context.Context, id string, window int) (api.StepStream, error) {
	if window <= 0 {
		window = api.DefaultStreamWindow
	}
	if window > api.MaxStreamWindow {
		window = api.MaxStreamWindow
	}
	body, err := appendStreamOpen(nil, id, window)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	cc, err := c.ensureConn()
	if err != nil {
		c.mu.Unlock()
		return nil, err
	}
	c.seq++
	reqID := c.seq
	c.mu.Unlock()

	st := &clientStream{
		c:      c,
		cc:     cc,
		reqID:  reqID,
		trace:  obs.TraceFrom(ctx),
		ctx:    ctx,
		tokens: make(chan struct{}, window),
		recv:   make(chan api.StepResponse, window+2),
		done:   make(chan struct{}),
		openCh: make(chan error, 1),
	}
	st.openPending.Store(true)
	for i := 0; i < window; i++ {
		st.tokens <- struct{}{}
	}

	// Register before writing so the open ack cannot race the read loop.
	cc.mu.Lock()
	if cc.dead {
		cc.mu.Unlock()
		return nil, api.Errf(api.CodeUnavailable, "rpc: connection lost")
	}
	cc.streams[reqID] = st
	cc.mu.Unlock()
	if err := c.writeRaw(cc, appendFrame(nil, opStreamOpen, reqID, st.trace, body)); err != nil {
		return nil, err
	}
	select {
	case err := <-st.openCh:
		if err != nil {
			st.unregister()
			return nil, err
		}
		return st, nil
	case <-st.done:
		st.unregister()
		return nil, st.terminal()
	case <-ctx.Done():
		st.unregister()
		return nil, ctx.Err()
	}
}

// writeRaw writes one pre-built frame on cc, tearing the connection
// down (and failing everything on it) on a write error.
func (c *Client) writeRaw(cc *clientConn, frame []byte) error {
	cc.mu.Lock()
	if cc.dead {
		cc.mu.Unlock()
		return api.Errf(api.CodeUnavailable, "rpc: connection lost")
	}
	_, err := cc.bw.Write(frame)
	if err == nil {
		err = cc.bw.Flush()
	}
	cc.mu.Unlock()
	if err != nil {
		c.mu.Lock()
		if c.cc == cc {
			c.cc = nil
		}
		c.mu.Unlock()
		cc.fail()
		return fmt.Errorf("rpc: write: %w", err)
	}
	return nil
}

// handleFrame dispatches one stream frame. Runs on the connection's
// read loop, so it must never block: recv is bounded by the window
// invariant, and overflow — a server protocol violation — kills the
// stream rather than the loop.
func (st *clientStream) handleFrame(op byte, body []byte) {
	switch op {
	case opStreamOK:
		if st.openPending.CompareAndSwap(true, false) {
			st.openCh <- nil
		}
	case opStreamAcks:
		resps, err := parseStreamAcks(body)
		if err != nil {
			st.terminate(err)
			return
		}
		for _, r := range resps {
			select {
			case st.recv <- r:
			default:
				st.terminate(api.Errf(api.CodeInternal, "rpc: stream ack overflow"))
				return
			}
		}
	case opStreamEnd:
		st.terminate(io.EOF)
	case opError:
		err := parseErrResp(body)
		if st.openPending.CompareAndSwap(true, false) {
			st.openCh <- err
			return
		}
		st.terminate(err)
	}
}

// terminate makes the stream terminal with err (first caller wins) and
// removes it from the connection's stream table.
func (st *clientStream) terminate(err error) {
	st.mu.Lock()
	if st.termErr == nil {
		st.termErr = err
		close(st.done)
	}
	st.mu.Unlock()
	st.unregister()
}

func (st *clientStream) unregister() {
	st.cc.mu.Lock()
	if st.cc.streams != nil {
		delete(st.cc.streams, st.reqID)
	}
	st.cc.mu.Unlock()
}

func (st *clientStream) terminal() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.termErr == nil {
		return api.Errf(api.CodeUnavailable, "rpc: stream closed")
	}
	return st.termErr
}

// Send implements api.StepStream.
func (st *clientStream) Send(loc int) error {
	st.mu.Lock()
	if st.sendClosed {
		st.mu.Unlock()
		return api.Errf(api.CodeInvalidArgument, "rpc: send on closed stream")
	}
	term := st.termErr
	st.mu.Unlock()
	if term != nil {
		return term
	}
	select {
	case <-st.tokens:
	case <-st.done:
		return st.terminal()
	case <-st.ctx.Done():
		return st.ctx.Err()
	}
	return st.c.writeRaw(st.cc, appendFrame(nil, opStreamStep, st.reqID, st.trace, appendStreamStep(nil, loc)))
}

// Recv implements api.StepStream.
func (st *clientStream) Recv() (api.StepResponse, error) {
	// Buffered releases outrank the terminal state: everything acked
	// before the stream died is still delivered in order.
	select {
	case r := <-st.recv:
		st.releaseToken()
		return r, nil
	default:
	}
	select {
	case r := <-st.recv:
		st.releaseToken()
		return r, nil
	case <-st.done:
		select {
		case r := <-st.recv:
			st.releaseToken()
			return r, nil
		default:
		}
		return api.StepResponse{}, st.terminal()
	case <-st.ctx.Done():
		return api.StepResponse{}, st.ctx.Err()
	}
}

func (st *clientStream) releaseToken() {
	select {
	case st.tokens <- struct{}{}:
	default:
	}
}

// CloseSend implements api.StepStream.
func (st *clientStream) CloseSend() error {
	st.mu.Lock()
	if st.sendClosed {
		st.mu.Unlock()
		return nil
	}
	st.sendClosed = true
	term := st.termErr
	st.mu.Unlock()
	if term != nil {
		return nil // already terminal; the server side is gone
	}
	return st.c.writeRaw(st.cc, appendFrame(nil, opStreamClose, st.reqID, st.trace, nil))
}

// Close implements api.StepStream.
func (st *clientStream) Close() error {
	_ = st.CloseSend()
	st.terminate(api.Errf(api.CodeUnavailable, "rpc: stream closed"))
	return nil
}
