// Package rpc is the binary transport of the pristed API: a
// length-prefixed frame protocol over a persistent TCP connection,
// designed so the hot step path pays a fixed few dozen bytes and zero
// JSON work per release while the control plane (create, list, export,
// import, stats) rides JSON payloads inside the same framing. Both ends
// are thin codecs over the transport-neutral internal/api package: the
// Server drives any api.Service and the Client implements api.Client,
// so every caller written against the shared interfaces runs unchanged
// on either transport.
//
// # Framing
//
// Every message — request or response — is one frame:
//
//	[len:4 BE][op:1][reqID:8 BE][trace:8 BE][body:len-17]
//
// len counts the bytes after the length prefix. A connection carries
// any number of concurrent requests; responses are matched to requests
// by reqID and may arrive in any order. Steps for one session keep
// their FIFO order because the server enqueues them in frame-arrival
// order before answering anything.
//
// trace is the request's observability trace ID (obs.NewTraceID); 0
// means "none supplied", in which case the server generates one. The
// server echoes the effective trace in the response frame, so a client
// that sent 0 still learns the ID its request was logged under. The
// trace carries no request semantics — it only correlates transports,
// slow-step log lines and client-side records.
//
// Request ops:
//
//	opStep: [idLen:2 BE][sessionID:idLen][loc:4 BE]  — hot path, binary
//	opCall: [method:1][JSON request body]            — control plane
//
// Response ops:
//
//	opStepOK: [t:4][obs:4][alphaBits:8][attempts:4][conservative:4]
//	          [uniform:1][checkNanos:8]  (all BE)
//	opCallOK: [JSON response body]
//	opError:  [code:1][message:utf8]     — code is api.Code.Wire()
//
// # Streaming
//
// The streaming mode turns one reqID into a long-lived step pipe with
// windowed acks; every frame of a stream carries the reqID of its
// opStreamOpen. The client advertises a window W — the maximum number
// of steps in flight (sent, release not yet consumed) — and the server
// sizes its inbox accordingly: a client that exceeds its own window is
// in protocol violation and the stream dies with opError. Within the
// window, submission is fire-and-forget; the server batches certified
// releases into opStreamAcks frames, strictly in submission order, so
// per-session FIFO is preserved end to end.
//
//	opStreamOpen:  [window:4 BE][idLen:2 BE][sessionID:idLen]  c→s
//	opStreamOK:    [t:4 BE]  — session's next timestamp         s→c
//	opStreamStep:  [loc:4 BE]                                   c→s
//	opStreamAcks:  [count:4 BE][opStepOK body × count]          s→c
//	opStreamClose: (empty) — no more steps                      c→s
//	opStreamEnd:   (empty) — every pending release acked        s→c
//
// A server that cannot enqueue a streamed step (session queue full)
// does not fail it: it waits for in-flight steps to drain and
// retries — backpressure propagates to the client through withheld
// acks and, once the window fills, a blocked Send. An opError frame
// carrying a stream's reqID is terminal for that stream (and only
// that stream); the connection and its other streams live on.
package rpc

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"priste/internal/api"
)

// Frame ops. Part of the wire protocol: never renumber, only append.
const (
	opStep   byte = 1
	opCall   byte = 2
	opStepOK byte = 3
	opCallOK byte = 4
	opError  byte = 5

	opStreamOpen  byte = 6
	opStreamOK    byte = 7
	opStreamStep  byte = 8
	opStreamAcks  byte = 9
	opStreamClose byte = 10
	opStreamEnd   byte = 11
)

// Control-plane methods carried by opCall. Same stability rule.
const (
	methodCreate byte = 1
	methodGet    byte = 2
	methodDelete byte = 3
	methodList   byte = 4
	methodExport byte = 5
	methodImport byte = 6
	methodStats  byte = 7
	methodHealth byte = 8
)

// maxFrame bounds a single frame; a session export carries a whole
// release history, so the bound is generous. A peer announcing more is
// a protocol error and kills the connection.
const maxFrame = 64 << 20

// frameHeader is op + reqID + trace.
const frameHeader = 1 + 8 + 8

// appendFrame appends one framed message to buf.
func appendFrame(buf []byte, op byte, reqID, trace uint64, body []byte) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(frameHeader+len(body)))
	buf = append(buf, op)
	buf = binary.BigEndian.AppendUint64(buf, reqID)
	buf = binary.BigEndian.AppendUint64(buf, trace)
	return append(buf, body...)
}

// readFrame reads one frame from r.
func readFrame(r io.Reader) (op byte, reqID, trace uint64, body []byte, err error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return 0, 0, 0, nil, err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n < frameHeader || n > maxFrame {
		return 0, 0, 0, nil, fmt.Errorf("rpc: bad frame length %d", n)
	}
	msg := make([]byte, n)
	if _, err := io.ReadFull(r, msg); err != nil {
		return 0, 0, 0, nil, err
	}
	return msg[0], binary.BigEndian.Uint64(msg[1:9]), binary.BigEndian.Uint64(msg[9:17]), msg[17:], nil
}

// appendStepReq encodes an opStep body.
func appendStepReq(buf []byte, id string, loc int) ([]byte, error) {
	if len(id) > math.MaxUint16 {
		return nil, api.Errf(api.CodeInvalidArgument, "rpc: session id too long")
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(id)))
	buf = append(buf, id...)
	return binary.BigEndian.AppendUint32(buf, uint32(int32(loc))), nil
}

// parseStepReq decodes an opStep body.
func parseStepReq(body []byte) (id string, loc int, err error) {
	if len(body) < 2 {
		return "", 0, fmt.Errorf("rpc: short step request")
	}
	n := int(binary.BigEndian.Uint16(body))
	if len(body) != 2+n+4 {
		return "", 0, fmt.Errorf("rpc: step request length %d does not match id length %d", len(body), n)
	}
	id = string(body[2 : 2+n])
	loc = int(int32(binary.BigEndian.Uint32(body[2+n:])))
	return id, loc, nil
}

// stepRespLen is the fixed opStepOK body size.
const stepRespLen = 4 + 4 + 8 + 4 + 4 + 1 + 8

// appendStepResp encodes an opStepOK body.
func appendStepResp(buf []byte, r api.StepResponse) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(int32(r.T)))
	buf = binary.BigEndian.AppendUint32(buf, uint32(int32(r.Obs)))
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(r.Alpha))
	buf = binary.BigEndian.AppendUint32(buf, uint32(int32(r.Attempts)))
	buf = binary.BigEndian.AppendUint32(buf, uint32(int32(r.ConservativeRejections)))
	var uniform byte
	if r.Uniform {
		uniform = 1
	}
	buf = append(buf, uniform)
	return binary.BigEndian.AppendUint64(buf, uint64(int64(r.CheckMicros*1e3)))
}

// parseStepResp decodes an opStepOK body.
func parseStepResp(body []byte) (api.StepResponse, error) {
	if len(body) != stepRespLen {
		return api.StepResponse{}, fmt.Errorf("rpc: step response length %d, want %d", len(body), stepRespLen)
	}
	return api.StepResponse{
		T:                      int(int32(binary.BigEndian.Uint32(body[0:]))),
		Obs:                    int(int32(binary.BigEndian.Uint32(body[4:]))),
		Alpha:                  math.Float64frombits(binary.BigEndian.Uint64(body[8:])),
		Attempts:               int(int32(binary.BigEndian.Uint32(body[16:]))),
		ConservativeRejections: int(int32(binary.BigEndian.Uint32(body[20:]))),
		Uniform:                body[24] == 1,
		CheckMicros:            float64(int64(binary.BigEndian.Uint64(body[25:]))) / 1e3,
	}, nil
}

// appendStreamOpen encodes an opStreamOpen body.
func appendStreamOpen(buf []byte, id string, window int) ([]byte, error) {
	if len(id) > math.MaxUint16 {
		return nil, api.Errf(api.CodeInvalidArgument, "rpc: session id too long")
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(int32(window)))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(id)))
	return append(buf, id...), nil
}

// parseStreamOpen decodes an opStreamOpen body.
func parseStreamOpen(body []byte) (id string, window int, err error) {
	if len(body) < 6 {
		return "", 0, fmt.Errorf("rpc: short stream open")
	}
	window = int(int32(binary.BigEndian.Uint32(body)))
	n := int(binary.BigEndian.Uint16(body[4:]))
	if len(body) != 6+n {
		return "", 0, fmt.Errorf("rpc: stream open length %d does not match id length %d", len(body), n)
	}
	return string(body[6:]), window, nil
}

// appendStreamStep encodes an opStreamStep body.
func appendStreamStep(buf []byte, loc int) []byte {
	return binary.BigEndian.AppendUint32(buf, uint32(int32(loc)))
}

// parseStreamStep decodes an opStreamStep body.
func parseStreamStep(body []byte) (int, error) {
	if len(body) != 4 {
		return 0, fmt.Errorf("rpc: stream step length %d, want 4", len(body))
	}
	return int(int32(binary.BigEndian.Uint32(body))), nil
}

// parseStreamAcks decodes an opStreamAcks body into its releases.
func parseStreamAcks(body []byte) ([]api.StepResponse, error) {
	if len(body) < 4 {
		return nil, fmt.Errorf("rpc: short stream ack frame")
	}
	n := int(binary.BigEndian.Uint32(body))
	if n < 0 || len(body) != 4+n*stepRespLen {
		return nil, fmt.Errorf("rpc: stream ack frame length %d does not match count %d", len(body), n)
	}
	out := make([]api.StepResponse, n)
	for i := range out {
		resp, err := parseStepResp(body[4+i*stepRespLen : 4+(i+1)*stepRespLen])
		if err != nil {
			return nil, err
		}
		out[i] = resp
	}
	return out, nil
}

// appendErrResp encodes an opError body.
func appendErrResp(buf []byte, err error) []byte {
	e := api.ErrorOf(err)
	buf = append(buf, e.Code.Wire())
	return append(buf, e.Message...)
}

// parseErrResp decodes an opError body into the typed client error.
// The wire byte is the canonical code table's append-only numbering
// (api.Code.Wire), so new codes round-trip with no protocol change:
// byte 10 reconstructs api.CodeWrongBackend, which callers classify as
// retryable-after-reroute via api.RetryAfterReroute — the session
// exists but lives on a different fleet backend than the one addressed.
func parseErrResp(body []byte) *api.Error {
	if len(body) == 0 {
		return api.Errf(api.CodeInternal, "rpc: empty error frame")
	}
	return &api.Error{Code: api.CodeFromWire(body[0]), Message: string(body[1:])}
}
